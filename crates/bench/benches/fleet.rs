//! Fleet-scale serving baseline: the `FleetRouter` front door at
//! 64/256/1024 sessions, with an overload run and a migration-cost row.
//!
//! Row families (all on one shared rig, grid coarsened 8× so a
//! 1024-session fleet is tractable on a laptop — the committed numbers
//! are a *relative* baseline, not paper-fidelity decode cost). The
//! sustained/overload rows synthesize endless monotone-time streams on
//! the fly (every offered report is fresh decode work — a finite
//! pre-generated stream would wrap its timestamps and measure the
//! late-drop path instead); the migration and lifecycle rows use
//! `rfid_sim::traffic` session streams, like the committed `overload`
//! experiment:
//!
//! * `fleet/step/sessions{N}` and `…/p99` — sustained serving:
//!   every session offered one chunk per round, drained; the sample is
//!   per-drained-report wall time for one round, so rows are
//!   work-normalized and comparable across fleet sizes and load.
//!   Every session is first warmed [`WARM`] reports deep: the wander
//!   stream's decode frontier grows over roughly the first 256 reports
//!   before plateauing, so sampling an un-warmed fleet would compare
//!   ramp-up cost against steady-state cost and the overload/unloaded
//!   ratio would measure stream depth, not load. Recorded via
//!   `Bench::record_ns` because rounds mutate the fleet (queues,
//!   controller state) and are not interchangeable iterations.
//!   Aggregate reports/s per fleet size lands in the notes.
//! * `fleet/step/sessions256/overload8x` and `…/p99` — the same fleet
//!   offered 8× its queue capacity each round: backpressure defers the
//!   excess and the `DegradePolicy` ladder steps in. The committed
//!   no-collapse floor (`scripts/bench.sh --suite fleet`) gates this
//!   row's p99 at ≤ 10× the unloaded `sessions256` p50 — degradation,
//!   not collapse, under 8× overload.
//! * `fleet/migrate/warm` — one live migration (drain → checkpoint →
//!   re-adopt on the other shard) of a warmed session, ping-ponged
//!   between shards.
//! * `fleet/recover/session` — per-session crash recovery: a warmed,
//!   checkpointed one-shard fleet is killed and recovered each
//!   iteration; the sample is `recover()` wall time ÷ sessions
//!   (checkpoint open + CRC verify + tracker rebuild at a boundary
//!   kill, so the escrow replay tail is empty). The committed gate
//!   (`scripts/bench.sh --suite fleet`) holds this row under an
//!   absolute ceiling — recovery must stay interactive.
//! * `fleet/lifecycle/sessions64/threads{1,8}` — full short lifecycle
//!   at 1 vs 8 worker threads per shard for the core-count-aware
//!   scaling gate (same contract as the serve drain matrix).

use experiments::setup::{polardraw_config_for, TrialSetup};
use polardraw_bench::harness::Bench;
use polardraw_core::fleet::{FleetConfig, FleetRouter};
use polardraw_core::OnlineOptions;
use rfid_sim::traffic::{TrafficConfig, TrafficModel};
use rfid_sim::TagReport;
use std::time::Instant;

/// Grid coarsening for every row (see module docs).
const COARSEN: f64 = 8.0;

/// Reports offered per session per sustained round.
const CHUNK: usize = 8;

/// Stream depth every session is warmed to before sampling: past the
/// decode frontier's ramp-up (~256 reports on this rig), so all rows
/// measure steady-state per-report cost.
const WARM: usize = 512;

/// Pre-generated stream length per session (rounds cycle through it).
const STREAM: usize = 192;

fn rig() -> polardraw_core::PolarDrawConfig {
    let mut setup = TrialSetup::letter('L');
    setup.cell_scale *= COARSEN;
    polardraw_config_for(&setup)
}

/// Traffic-generated per-session streams: one `SessionPlan` per fleet
/// session, its report stream truncated/padded to [`STREAM`] reports.
fn traffic_streams(n: usize) -> Vec<Vec<TagReport>> {
    let model = TrafficModel::generate(
        TrafficConfig {
            sessions: n,
            horizon_s: 240.0,
            report_hz: 100.0,
            write_min_s: 4.0,
            ..TrafficConfig::default()
        },
        0x0F1EE7,
    );
    model
        .plans()
        .iter()
        .map(|plan| {
            let mut reports = model.reports_for(plan, 0.0, model.config().horizon_s);
            reports.truncate(STREAM);
            if reports.is_empty() {
                // A plan arriving at the very end of the horizon can
                // emit nothing in-window; give it one seed report.
                reports = model.reports_for(plan, plan.start_s, plan.end_s());
                reports.truncate(1);
            }
            // Short plans wrap around so every session has STREAM
            // reports to cycle through (content only matters as decode
            // work here).
            let base = reports.len().max(1);
            while !reports.is_empty() && reports.len() < STREAM {
                let r = reports[reports.len() % base];
                reports.push(r);
            }
            reports
        })
        .collect()
}

/// Endless synthetic stream: monotone 10 ms-spaced timestamps (5
/// reports per 50 ms pre-processing window), alternating antennas,
/// per-session phase offset. Cheap enough that generation is noise
/// next to decode.
fn endless_report(session: usize, k: usize) -> TagReport {
    TagReport {
        t: k as f64 * 0.01,
        antenna: k % 2,
        rssi_dbm: -55.0 - (session % 7) as f64,
        phase_rad: rf_core::wrap_tau(0.02 * k as f64 + 0.37 * session as f64),
        channel: (k / 64) % 50,
        epc: 0xF1EE7 + session as u64,
    }
}

struct RoundLoop {
    fleet: FleetRouter,
    ids: Vec<usize>,
    /// Next stream position per session (admitted reports only, so
    /// deferral never rewinds time within a session).
    cursors: Vec<usize>,
}

impl RoundLoop {
    fn new(n: usize, queue_cap: usize) -> RoundLoop {
        let cfg = rig();
        let mut fleet = FleetRouter::new(FleetConfig {
            shards: 8,
            threads_per_shard: 1,
            queue_cap,
            // Everyone shares one rig; a low soft cap makes affinity
            // spill the colony across shards instead of pinning the
            // whole fleet to shard 0.
            soft_session_cap: 32,
            ..FleetConfig::default()
        });
        let ids: Vec<usize> =
            (0..n).map(|_| fleet.add_session(cfg, OnlineOptions::default())).collect();
        RoundLoop { fleet, ids, cursors: vec![0; n] }
    }

    /// Warm every session at least `target` reports deep in rounds
    /// small enough (16/session) that the queue watermark never trips
    /// on the way there.
    fn warm(&mut self, target: usize) {
        while self.cursors.iter().any(|&c| c < target) {
            self.round(16);
        }
    }

    /// Offer `per_session` fresh reports to every session, drain, and
    /// return `(elapsed_ns, reports_drained)`. Each session's cursor
    /// advances only past *admitted* reports, so what an overloaded
    /// shard defers is re-offered (same stream position) next round.
    fn round(&mut self, per_session: usize) -> (f64, usize) {
        let mut chunk = Vec::with_capacity(per_session);
        let t0 = Instant::now();
        for (i, &id) in self.ids.iter().enumerate() {
            let at = self.cursors[i];
            chunk.clear();
            chunk.extend((0..per_session).map(|k| endless_report(i, at + k)));
            self.cursors[i] += self.fleet.offer(id, &chunk);
        }
        let report = self.fleet.drain();
        (t0.elapsed().as_nanos() as f64, report.reports)
    }
}

fn main() {
    let mut bench = Bench::from_args("fleet");
    let quick = std::env::var_os("POLARDRAW_BENCH_QUICK").is_some()
        || std::env::args().any(|a| a == "--quick");
    let rounds = if quick { 4 } else { 48 };
    let warm_depth = if quick { 64 } else { WARM };
    let nproc = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // Sustained serving vs fleet size. Per-report sample keeps rows
    // comparable across sizes; p99 is published as its own row so
    // bench_check can gate on it by name.
    let mut throughput_lines = Vec::new();
    for &n in &[64usize, 256, 1024] {
        let mut run = RoundLoop::new(n, usize::MAX / 2);
        run.warm(warm_depth); // artifact cache, queue capacity, frontier plateau
        let mut samples = Vec::with_capacity(rounds);
        let (mut total_ns, mut total_reports) = (0.0f64, 0usize);
        for _ in 0..rounds {
            let (ns, reports) = run.round(CHUNK);
            samples.push(ns / reports.max(1) as f64);
            total_ns += ns;
            total_reports += reports;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let p99 = samples[((samples.len() - 1) as f64 * 0.99).round() as usize];
        bench.record_ns(&format!("fleet/step/sessions{n}"), &samples);
        bench.record_ns(&format!("fleet/step/sessions{n}/p99"), &[p99]);
        throughput_lines
            .push(format!("{n}: {:.0} reports/s", total_reports as f64 / (total_ns * 1e-9)));
    }
    bench.note(format!(
        "sustained aggregate drain throughput by fleet size ({CHUNK} reports/session/round, \
         {rounds} rounds, {COARSEN}x-coarsened grid, 8 shards): {}",
        throughput_lines.join(", ")
    ));

    // Overload: 256 sessions offered 8x the shard queue capacity per
    // round. Admission is bounded (the rest is deferred to the next
    // round's offer), the controller walks the degradation ladder, and
    // per-report cost *drops* as rungs engage — that is the
    // no-collapse contract the committed gate checks.
    {
        let queue_cap = 2048;
        let mut run = RoundLoop::new(256, queue_cap);
        run.warm(warm_depth);
        let per_session = (8 * queue_cap * run.fleet.shards()) / 256;
        let mut samples = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let (ns, reports) = run.round(per_session);
            samples.push(ns / reports.max(1) as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let p99 = samples[((samples.len() - 1) as f64 * 0.99).round() as usize];
        bench.record_ns("fleet/step/sessions256/overload8x", &samples);
        bench.record_ns("fleet/step/sessions256/overload8x/p99", &[p99]);
        let stats = run.fleet.stats();
        bench.note(format!(
            "overload run: offered {per_session} reports/session/round against a \
             {queue_cap}-report shard cap; peak rung {}/{} (degrade/recover steps {}/{}), \
             peak queue {} of cap, {} of {} offered reports admitted (rest deferred, \
             none dropped: {} of {} sessions live at finish)",
            stats.peak_level,
            run.fleet.config().policy.max_level(),
            stats.degrade_steps,
            stats.recover_steps,
            stats.peak_pending,
            stats.admitted,
            stats.offered,
            stats.live,
            stats.sessions,
        ));
    }

    // Live migration cost: ping-pong one warmed session between two
    // shards. Each iteration is a full drain → checkpoint → restore →
    // re-adopt round trip.
    {
        let cfg = rig();
        let mut fleet = FleetRouter::new(FleetConfig {
            shards: 2,
            threads_per_shard: 1,
            ..FleetConfig::default()
        });
        let streams = traffic_streams(1);
        let id = fleet.add_session(cfg, OnlineOptions::default());
        let _ = fleet.offer(id, &streams[0][..128]);
        fleet.drain();
        let mut text_len = 0;
        bench.bench("fleet/migrate/warm", || {
            let to = 1 - fleet.shard_of(id);
            text_len = fleet.migrate(id, to);
            to
        });
        bench.note(format!(
            "migration round trip carries the full bitwise checkpoint \
             ({text_len} bytes for a 128-report warm session); equivalence to never \
             having moved is proven by tests/fleet.rs"
        ));
    }

    // Crash recovery cost: kill a warmed, checkpointed one-shard fleet
    // and rebuild every session from the store. Boundary kills (the
    // checkpoint policy seals every drain) keep the escrow tail empty,
    // so the sample isolates restore cost — parse + CRC verify +
    // decoder rebuild — not replay decode work.
    {
        use polardraw_core::durability::CheckpointStore;
        use polardraw_core::fleet::CheckpointPolicy;
        let cfg = rig();
        let sessions = 16usize;
        let mut fleet = FleetRouter::new(FleetConfig {
            shards: 1,
            threads_per_shard: 1,
            queue_cap: usize::MAX / 2,
            soft_session_cap: usize::MAX / 2,
            checkpoint: CheckpointPolicy { every_drains: 1, ..CheckpointPolicy::default() },
            ..FleetConfig::default()
        });
        fleet.attach_store(CheckpointStore::in_memory(3));
        let streams = traffic_streams(sessions);
        let ids: Vec<usize> = (0..sessions)
            .map(|_| fleet.add_session(cfg, OnlineOptions::default()))
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            let _ = fleet.offer(id, &streams[i][..128]);
        }
        fleet.drain(); // seals generation 1 for every session
        let iters = if quick { 4 } else { 24 };
        let mut samples = Vec::with_capacity(iters);
        for _ in 0..iters {
            fleet.kill_shard(0);
            let t0 = Instant::now();
            let rec = fleet.recover(0);
            let ns = t0.elapsed().as_nanos() as f64;
            assert_eq!(rec.restored, sessions, "every session restores from the store");
            samples.push(ns / sessions as f64);
        }
        bench.record_ns("fleet/recover/session", &samples);
        bench.note(format!(
            "recover row: {sessions} x 128-report warm sessions on one shard, killed and \
             restored from an in-memory CheckpointStore (keep 3, boundary kills, empty \
             escrow tail); bitwise equivalence to never crashing is proven by tests/chaos.rs"
        ));
    }

    // Lifecycle at 1 vs 8 threads per shard for the scaling gate.
    {
        let cfg = rig();
        let streams = traffic_streams(64);
        for &threads in &[1usize, 8] {
            bench.bench(&format!("fleet/lifecycle/sessions64/threads{threads}"), || {
                let mut fleet = FleetRouter::new(FleetConfig {
                    shards: 4,
                    threads_per_shard: threads,
                    queue_cap: usize::MAX / 2,
                    ..FleetConfig::default()
                });
                let ids: Vec<usize> = (0..64)
                    .map(|_| fleet.add_session(cfg, OnlineOptions::default()))
                    .collect();
                let mut at = 0;
                while at < 64 {
                    for (i, &id) in ids.iter().enumerate() {
                        let s = &streams[i];
                        let _ = fleet.offer(id, &s[at..(at + 16).min(s.len())]);
                    }
                    fleet.drain();
                    at += 16;
                }
                fleet.finish().len()
            });
        }
    }

    bench.note(format!(
        "measurement host has {nproc} hardware thread(s); the threads8 lifecycle row \
         needs real cores to beat threads1 (scripts/bench.sh scales its floor with the \
         core count), and every row is wall-clock on a {COARSEN}x-coarsened grid — \
         paper-fidelity per-report decode cost lives in BENCH_throughput.json"
    ));
    bench.finish();
}
