//! Measurement noise models.
//!
//! Separates *channel* randomness (handled in `channel`) from *receiver*
//! measurement noise: the RSSI jitter and phase jitter a real reader
//! reports even for a perfectly static tag. ImpinJ-class readers show
//! roughly ±0.5 dB RSSI granularity and ~0.1 rad phase spread at good
//! SNR, degrading as the backscatter approaches the sensitivity floor.

use rf_core::rng::{gaussian, Rng64};

/// Receiver noise configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Reader noise floor, dBm (thermal + NF over the backscatter BW).
    pub noise_floor_dbm: f64,
    /// RSSI measurement std-dev at high SNR, dB.
    pub rssi_sigma_db: f64,
    /// Phase measurement std-dev at high SNR, radians.
    pub phase_sigma_rad: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel {
            noise_floor_dbm: -85.0,
            rssi_sigma_db: 0.4,
            phase_sigma_rad: 0.10,
        }
    }
}

impl NoiseModel {
    /// Signal-to-noise ratio in dB for a backscatter at `rx_dbm`.
    pub fn snr_db(&self, rx_dbm: f64) -> f64 {
        rx_dbm - self.noise_floor_dbm
    }

    /// Effective phase std-dev at the given receive power: the high-SNR
    /// floor inflated by `1/√SNR` (the CRLB scaling for phase estimation).
    pub fn phase_sigma_at(&self, rx_dbm: f64) -> f64 {
        let snr = rf_core::db_to_ratio(self.snr_db(rx_dbm)).max(1e-6);
        // At 30 dB SNR the CRLB term is ~0.022 rad; the quadrature sum
        // with the floor keeps high-SNR behaviour at `phase_sigma_rad`.
        let crlb = (1.0 / (2.0 * snr)).sqrt();
        (self.phase_sigma_rad.powi(2) + crlb.powi(2)).sqrt()
    }

    /// Effective RSSI std-dev at the given receive power.
    pub fn rssi_sigma_at(&self, rx_dbm: f64) -> f64 {
        let snr = rf_core::db_to_ratio(self.snr_db(rx_dbm)).max(1e-6);
        let crlb = 4.34 / snr.sqrt(); // ≈ 10/ln10 · 1/√SNR dB
        (self.rssi_sigma_db.powi(2) + crlb.powi(2)).sqrt()
    }

    /// Sample an RSSI perturbation, dB.
    pub fn sample_rssi_noise(&self, rng: &mut Rng64, rx_dbm: f64) -> f64 {
        gaussian(rng, self.rssi_sigma_at(rx_dbm))
    }

    /// Sample a phase perturbation, radians.
    pub fn sample_phase_noise(&self, rng: &mut Rng64, rx_dbm: f64) -> f64 {
        gaussian(rng, self.phase_sigma_at(rx_dbm))
    }
}

impl rf_core::json::ToJson for NoiseModel {
    fn to_json(&self) -> rf_core::Json {
        rf_core::Json::obj([
            ("noise_floor_dbm", rf_core::Json::Num(self.noise_floor_dbm)),
            ("rssi_sigma_db", rf_core::Json::Num(self.rssi_sigma_db)),
            ("phase_sigma_rad", rf_core::Json::Num(self.phase_sigma_rad)),
        ])
    }
}

impl rf_core::json::FromJson for NoiseModel {
    fn from_json(v: &rf_core::Json) -> Result<NoiseModel, rf_core::JsonError> {
        Ok(NoiseModel {
            noise_floor_dbm: v.req_f64("noise_floor_dbm")?,
            rssi_sigma_db: v.req_f64("rssi_sigma_db")?,
            phase_sigma_rad: v.req_f64("phase_sigma_rad")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_core::rng::rng_from_seed;

    #[test]
    fn snr_is_power_above_floor() {
        let n = NoiseModel::default();
        assert_eq!(n.snr_db(-25.0), 60.0);
    }

    #[test]
    fn high_snr_sigmas_approach_floors() {
        let n = NoiseModel::default();
        assert!((n.phase_sigma_at(-20.0) - n.phase_sigma_rad).abs() < 0.01);
        assert!((n.rssi_sigma_at(-20.0) - n.rssi_sigma_db).abs() < 0.05);
    }

    #[test]
    fn sigmas_grow_near_the_floor() {
        let n = NoiseModel::default();
        assert!(n.phase_sigma_at(-80.0) > 3.0 * n.phase_sigma_rad);
        assert!(n.rssi_sigma_at(-80.0) > 3.0 * n.rssi_sigma_db);
    }

    #[test]
    fn sigma_is_monotone_in_power() {
        let n = NoiseModel::default();
        let mut prev = f64::INFINITY;
        for dbm in [-84.0, -70.0, -55.0, -40.0, -25.0] {
            let s = n.phase_sigma_at(dbm);
            assert!(s < prev, "phase sigma must shrink with power");
            prev = s;
        }
    }

    #[test]
    fn noise_model_round_trips_through_json() {
        use rf_core::json::{FromJson, ToJson};
        let n = NoiseModel::default();
        let back =
            NoiseModel::from_json(&rf_core::Json::parse(&n.to_json().to_json_string()).unwrap())
                .unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn samples_have_requested_spread() {
        let n = NoiseModel::default();
        let mut rng = rng_from_seed(5);
        let xs: Vec<f64> = (0..10_000).map(|_| n.sample_phase_noise(&mut rng, -30.0)).collect();
        let var = xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64;
        let target = n.phase_sigma_at(-30.0).powi(2);
        assert!((var / target - 1.0).abs() < 0.1, "var {var} target {target}");
    }
}
