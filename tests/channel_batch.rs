//! Batched channel-engine equivalence gates (tier-1, named in
//! scripts/verify.sh).
//!
//! The batch engine (`rf_physics::batch`) carries three precision
//! contracts, each pinned here:
//!
//! 1. **Scalar bitwise** — over a derived-seed family of whiteboard
//!    rigs, `ChannelBatch` under `F64Exact` reproduces the per-link
//!    `ChannelModel` observation bit for bit on every pose and port
//!    (so the simulator's report streams — and every committed golden —
//!    cannot move). The rig-frozen *single-link* path
//!    (`RigFactors::evaluate`) is bitwise for **both** polarimetries.
//! 2. **Jones batch ≤ 1e-12** — the restructured Jones batch kernel
//!    reassociates per-path algebra for throughput; every observable
//!    stays within 1e-12 of the per-link Jones channel, across
//!    empirical and Fresnel reflectors, linear/circular/elliptical
//!    reader states, bystanders, and reconfigurable tags.
//! 3. **f32 tier by tolerance oracle** — the direct `f32` emission
//!    build is gated quantitatively (wrap-aware per-cell deltas vs the
//!    cast-of-f64 spec, plus fig13 reduced-config letter-accuracy
//!    parity), mirroring the PR-6 kernel oracle.
//!
//! Within each tier, thread counts 1/2/8 are bit-identical.

use experiments::setup::{polardraw_config_for, simulate_reports, TrialSetup};
use polardraw_core::distance::expected_dtheta21;
use polardraw_core::hmm::{
    artifacts_for, EmissionTable, EmissionTableF32, Grid, KernelOptions,
};
use polardraw_core::{OnlineOptions, OnlineTracker};
use recognition::LetterRecognizer;
use rf_core::rng::{derive_seed_indexed, rng_from_seed, Rng64};
use rf_core::{wrap_pi, Vec2, Vec3};
use rf_physics::batch::{BatchOptions, BatchPrecision, ChannelBatch, PoseBatch, RigFactors};
use rf_physics::{
    Bystander, BystanderMotion, ChannelModel, LinkObservation, Polarimetry, Polarization,
    PolState, Surface, TagPolarization,
};

const TOL: f64 = 1e-12;
const MASTER: u64 = 20_260_808;

/// Same whiteboard-rig family as tests/channel_equivalence.rs: γ ∈
/// [5°, 40°], spacing ∈ [0.3, 0.8] m, standoff ∈ [0.2, 1.0] m, every
/// third rig with a walking bystander.
fn sampled_rig(rng: &mut Rng64, with_bystander: bool) -> ChannelModel {
    let gamma = rng.gen_range(5.0..40.0).to_radians();
    let spacing = rng.gen_range(0.3..0.8);
    let standoff = rng.gen_range(0.2..1.0);
    let mut ch = ChannelModel::two_antenna_whiteboard(gamma, spacing, standoff);
    if with_bystander {
        ch.bystander = Some(Bystander {
            position: Vec3::new(rng.gen_range(-0.5..0.5), 1.0, rng.gen_range(1.0..2.0)),
            motion: BystanderMotion::Walking { amplitude_m: 0.5, frequency_hz: 0.6 },
            scattering: 0.2,
            depolarization: rng.gen_range(0.0..1.0),
        });
    }
    ch
}

/// Random tag pose in the writing volume (same distribution as
/// tests/channel_equivalence.rs).
fn sampled_pose(rng: &mut Rng64) -> (Vec3, Vec3) {
    let pos = Vec3::new(
        rng.gen_range(-0.3..0.3),
        rng.gen_range(0.5..1.0),
        rng.gen_range(-0.05..0.05),
    );
    let dipole = loop {
        let v = Vec3::new(
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
        );
        if let Some(u) = v.normalized() {
            break u;
        }
    };
    (pos, dipole)
}

/// A pose batch plus the matching per-link reference observations.
fn batch_and_reference(
    ch: &ChannelModel,
    rng: &mut Rng64,
    n: usize,
    port: usize,
) -> (PoseBatch, Vec<LinkObservation>) {
    let mut poses = PoseBatch::with_capacity(n);
    let mut reference = Vec::with_capacity(n);
    for _ in 0..n {
        let (pos, dipole) = sampled_pose(rng);
        let t = rng.gen_range(0.0..5.0);
        poses.push(pos, dipole, t);
        reference.push(ch.evaluate(port, pos, dipole, t));
    }
    (poses, reference)
}

fn assert_obs_bitwise(a: &LinkObservation, b: &LinkObservation, ctx: &str) {
    assert_eq!(a.forward_power_dbm.to_bits(), b.forward_power_dbm.to_bits(), "{ctx}: forward");
    assert_eq!(a.rx_power_dbm.to_bits(), b.rx_power_dbm.to_bits(), "{ctx}: rx");
    assert_eq!(a.phase_rad.to_bits(), b.phase_rad.to_bits(), "{ctx}: phase");
    assert_eq!(a.mismatch_rad.to_bits(), b.mismatch_rad.to_bits(), "{ctx}: mismatch");
    assert_eq!(a.tag_powered, b.tag_powered, "{ctx}: power gate");
}

/// Within TOL, treating a shared −inf (both below the amplitude floor)
/// as equal.
fn assert_db_close(a: f64, b: f64, what: &str, ctx: &str) {
    if a == f64::NEG_INFINITY && b == f64::NEG_INFINITY {
        return;
    }
    assert!((a - b).abs() <= TOL, "{what} diverged: {a:.15} vs {b:.15} ({ctx})");
}

// ---------------------------------------------------------------------
// 1. Scalar batch: bitwise vs the per-link channel.
// ---------------------------------------------------------------------

#[test]
fn scalar_batch_is_bitwise_vs_per_link_channel() {
    for rig_idx in 0..12u64 {
        let seed = derive_seed_indexed(MASTER, "batch-rig", rig_idx);
        let mut rng = rng_from_seed(seed);
        let mut ch = sampled_rig(&mut rng, rig_idx % 3 == 2);
        if rig_idx % 4 == 3 {
            ch.tag = TagPolarization::Reconfigurable;
        }
        let rig = RigFactors::freeze(&ch).expect("whiteboard rigs have a fixed plan");
        for port in 0..ch.antenna_count() {
            let (poses, reference) = batch_and_reference(&ch, &mut rng, 40, port);
            let got = ChannelBatch::new(&rig, BatchOptions::default()).evaluate(port, &poses);
            assert_eq!(got.len(), reference.len());
            for (i, (a, b)) in reference.iter().zip(&got).enumerate() {
                assert_obs_bitwise(a, b, &format!("rig {rig_idx} port {port} pose {i}"));
            }
        }
    }
}

/// The rig-frozen *single-link* path is bitwise for the Jones
/// polarimetry too — this is what the simulator's report generation
/// rides on under `--channel jones`.
#[test]
fn frozen_single_link_is_bitwise_for_jones() {
    for rig_idx in 0..8u64 {
        let seed = derive_seed_indexed(MASTER, "batch-jones-link", rig_idx);
        let mut rng = rng_from_seed(seed);
        let mut ch = sampled_rig(&mut rng, rig_idx % 3 == 2);
        ch.polarimetry = Polarimetry::Jones;
        if rig_idx % 2 == 1 {
            ch.antennas[0].polarization = Polarization::Circular;
        }
        let rig = RigFactors::freeze(&ch).expect("fixed plan");
        for sample in 0..40 {
            let (pos, dipole) = sampled_pose(&mut rng);
            let t = rng.gen_range(0.0..5.0);
            for port in 0..ch.antenna_count() {
                let a = ch.evaluate(port, pos, dipole, t);
                let b = rig.evaluate(port, pos, dipole, t);
                assert_obs_bitwise(&a, &b, &format!("rig {rig_idx} sample {sample} port {port}"));
            }
        }
    }
}

// ---------------------------------------------------------------------
// 2. Jones batch: ≤ 1e-12 per link, across every channel feature.
// ---------------------------------------------------------------------

#[test]
fn jones_batch_stays_within_1e12_of_per_link() {
    for rig_idx in 0..12u64 {
        let seed = derive_seed_indexed(MASTER, "batch-jones", rig_idx);
        let mut rng = rng_from_seed(seed);
        let mut ch = sampled_rig(&mut rng, rig_idx % 3 == 2);
        ch.polarimetry = Polarimetry::Jones;
        // Exercise every kernel branch across the family: Fresnel
        // boundaries, non-linear reader states, reconfigurable tags.
        if rig_idx % 2 == 0 && !ch.reflectors.is_empty() {
            ch.reflectors[0].surface = Surface::Fresnel { rel_permittivity: 4.0 };
        }
        match rig_idx % 4 {
            1 => ch.antennas[0].polarization = Polarization::Circular,
            2 => {
                let axis = Vec3::X;
                ch.antennas[1].polarization = Polarization::Jones {
                    axis,
                    state: PolState::Elliptical { psi_rad: 0.3, chi_rad: 0.2 },
                };
            }
            3 => ch.tag = TagPolarization::Reconfigurable,
            _ => {}
        }
        let rig = RigFactors::freeze(&ch).expect("fixed plan");
        for port in 0..ch.antenna_count() {
            let (poses, reference) = batch_and_reference(&ch, &mut rng, 40, port);
            let got = ChannelBatch::new(&rig, BatchOptions::default()).evaluate(port, &poses);
            for (i, (a, b)) in reference.iter().zip(&got).enumerate() {
                let ctx = format!("rig {rig_idx} port {port} pose {i}");
                assert_db_close(a.forward_power_dbm, b.forward_power_dbm, "forward", &ctx);
                assert_db_close(a.rx_power_dbm, b.rx_power_dbm, "rx", &ctx);
                assert_eq!(a.tag_powered, b.tag_powered, "{ctx}: power gate");
                if a.rx_power_dbm.is_finite() {
                    assert!(
                        (a.phase_rad - b.phase_rad).abs() <= TOL,
                        "{ctx}: phase {} vs {}",
                        a.phase_rad,
                        b.phase_rad
                    );
                }
                assert!(
                    (a.mismatch_rad - b.mismatch_rad).abs() <= TOL,
                    "{ctx}: mismatch {} vs {}",
                    a.mismatch_rad,
                    b.mismatch_rad
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// 3. Thread counts are bit-identical within each tier.
// ---------------------------------------------------------------------

#[test]
fn batch_thread_counts_are_bit_identical_within_each_tier() {
    for (label, jones) in [("scalar", false), ("jones", true)] {
        let seed = derive_seed_indexed(MASTER, "batch-threads", jones as u64);
        let mut rng = rng_from_seed(seed);
        let mut ch = sampled_rig(&mut rng, true);
        if jones {
            ch.polarimetry = Polarimetry::Jones;
        }
        let rig = RigFactors::freeze(&ch).expect("fixed plan");
        let (poses, _) = batch_and_reference(&ch, &mut rng, 67, 0);
        let one = ChannelBatch::new(&rig, BatchOptions::default()).evaluate(0, &poses);
        for threads in [2, 8] {
            let opts = BatchOptions { precision: BatchPrecision::F64Exact, threads };
            let got = ChannelBatch::new(&rig, opts).evaluate(0, &poses);
            assert_eq!(one.len(), got.len());
            for (i, (a, b)) in one.iter().zip(&got).enumerate() {
                assert_obs_bitwise(a, b, &format!("{label} threads {threads} pose {i}"));
            }
        }
    }
}

// ---------------------------------------------------------------------
// 4. Emission builds on the row kernels: bitwise at every worker count.
// ---------------------------------------------------------------------

fn paper_rig() -> ([Vec3; 2], Grid) {
    let antennas = [Vec3::new(-0.28, 0.15, 0.65), Vec3::new(0.28, 0.15, 0.65)];
    let grid = Grid::covering(Vec2::new(-0.45, 0.35), Vec2::new(0.45, 1.05), 0.01);
    (antennas, grid)
}

#[test]
fn emission_build_is_bitwise_vs_per_cell_spec_at_all_worker_counts() {
    let (antennas, grid) = paper_rig();
    let lambda = 0.3276;
    let seq = EmissionTable::build(&grid, antennas, lambda);
    for idx in 0..grid.len() {
        let want = expected_dtheta21(grid.center(idx), antennas, lambda);
        assert_eq!(want.to_bits(), seq.expected(idx).to_bits(), "cell {idx}");
    }
    for workers in [2, 8] {
        let par = EmissionTable::build_with_workers(&grid, antennas, lambda, workers);
        for idx in 0..grid.len() {
            assert_eq!(
                seq.expected(idx).to_bits(),
                par.expected(idx).to_bits(),
                "workers {workers} cell {idx}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// 5. The f32 tier: tolerance oracle (emission deltas + letter parity).
// ---------------------------------------------------------------------

#[test]
fn f32_direct_emission_build_stays_in_tolerance_and_is_thread_deterministic() {
    let (antennas, grid) = paper_rig();
    let lambda = 0.3276;
    let exact = EmissionTable::build(&grid, antennas, lambda);
    let cast = EmissionTableF32::from_table(&exact);
    let direct = EmissionTableF32::build_direct(&grid, antennas, lambda, 1);
    let mut worst = 0.0f64;
    for idx in 0..grid.len() {
        let delta = wrap_pi(direct.expected(idx) as f64 - cast.expected(idx) as f64).abs();
        worst = worst.max(delta);
        assert!(delta <= 1e-4, "cell {idx}: |Δ| = {delta} vs the cast spec");
    }
    println!("f32 direct-vs-cast worst wrap-aware delta: {worst:.3e} rad");
    for workers in [2, 8] {
        let par = EmissionTableF32::build_direct(&grid, antennas, lambda, workers);
        for idx in 0..grid.len() {
            assert_eq!(
                direct.expected(idx).to_bits(),
                par.expected(idx).to_bits(),
                "workers {workers} cell {idx}"
            );
        }
    }
}

fn track_with_kernel(setup: &TrialSetup, seed: u64, kernel: KernelOptions) -> Vec<Vec2> {
    let (_, reports) = simulate_reports(setup, seed);
    let cfg = polardraw_config_for(setup);
    let mut online = OnlineTracker::new(cfg, OnlineOptions::batch().with_kernel(kernel));
    online.extend(&reports);
    online.finalize().trail.points
}

/// The PR-6-style end-to-end oracle for the `F32Tolerance` grid tier:
/// with the fig13 reduced config's shared artifact entry prewarmed by
/// the *direct* f32 build (so the fast kernel decodes against
/// direct-built tables, not the cast), letter accuracy must hold parity
/// with the exact kernel up to the usual one-trial slack.
#[test]
fn f32_direct_letter_accuracy_parity_on_reduced_fig13() {
    const LETTERS: [char; 8] = ['C', 'I', 'L', 'N', 'O', 'S', 'U', 'Z'];
    // One rig serves every letter at this fidelity; win its f32 slot
    // with the direct build before any tracker resolves it.
    let cfg = polardraw_config_for(&TrialSetup::letter('L').with_cell_scale(8.0));
    let grid = Grid::covering(cfg.board_min, cfg.board_max, cfg.hmm.cell_m);
    let arts = artifacts_for(&grid, cfg.antennas, cfg.hmm.wavelength_m);
    assert!(
        arts.prewarm_f32_direct(2),
        "direct f32 build must win the artifact slot before any decode"
    );

    let rec = LetterRecognizer::new();
    let mut exact_correct = 0usize;
    let mut fast_correct = 0usize;
    let mut total = 0usize;
    for (i, ch) in LETTERS.into_iter().enumerate() {
        for t in 0..2u64 {
            let seed = derive_seed_indexed(42, "fig13_parity", i as u64 * 10 + t);
            let setup = TrialSetup::letter(ch).with_cell_scale(8.0);
            let exact = track_with_kernel(&setup, seed, KernelOptions::exact());
            let fast = track_with_kernel(&setup, seed, KernelOptions::fast());
            exact_correct += usize::from(rec.classify(&exact) == Some(ch));
            fast_correct += usize::from(rec.classify(&fast) == Some(ch));
            total += 1;
        }
    }
    println!(
        "fig13 direct-f32 parity: exact {exact_correct}/{total}, fast {fast_correct}/{total}"
    );
    assert!(
        fast_correct + 1 >= exact_correct,
        "direct f32 tables lost letter accuracy: {fast_correct}/{total} vs exact \
         {exact_correct}/{total}"
    );
}
