//! Figure 3: the §2 feasibility study.
//!
//! Case 1 (Fig. 3(b)): a tag on a turntable 2.5 m under a
//! linearly-polarized antenna rotates at constant angular velocity; RSS
//! must trace the cos⁴β law (peak when aligned, dropouts near 90°/270°)
//! while phase stays flat except for spurious jumps at the nulls.
//!
//! Case 2 (Fig. 3(c)): the tag translates back and forth over 8 cm with
//! fixed orientation; RSS must stay flat while phase sweeps with
//! distance.

use crate::report::Report;
use crate::runner::RunOpts;
use crate::setup::to_tag_poses;
use pen_sim::scene::{translation_session, turntable_session};
use rf_core::stats;
use rf_core::{Vec3};
use rf_physics::antenna::Antenna;
use rf_physics::ChannelModel;
use rfid_sim::Reader;

fn feasibility_rig() -> Reader {
    // One linearly-polarized antenna 2.5 m above the tag (Fig. 3(a)),
    // office clutter around it so the spurious-phase mechanism exists.
    let ant = Antenna::linear(Vec3::new(0.0, 0.0, 2.5), -Vec3::Z, Vec3::X);
    let mut ch = ChannelModel::free_space(vec![ant]);
    ch.reflectors = vec![
        rf_physics::Reflector {
            point: Vec3::new(2.0, 0.0, 0.0),
            normal: -Vec3::X,
            reflectivity: 0.35,
            depolarization: 0.9,
            surface: rf_physics::Surface::Empirical,
        },
        rf_physics::Reflector {
            point: Vec3::new(0.0, 2.5, 0.0),
            normal: -Vec3::Y,
            reflectivity: 0.3,
            depolarization: 0.6,
            surface: rf_physics::Surface::Empirical,
        },
    ];
    Reader::new(ch)
}

/// Run both feasibility cases.
pub fn run(opts: &RunOpts) -> Vec<Report> {
    let reader = feasibility_rig();

    // ---- Case 1: rotation ----
    let omega = 30f64.to_radians(); // 30°/s
    let poses = turntable_session(Vec3::ZERO, omega, 360.0 / 30.0, 0.002);
    let reports = reader.inventory(&to_tag_poses_pen(&poses), opts.seed);
    let mut rot = Report::new(
        "fig03b",
        "Rotating tag: RSS vs polarization mismatch, phase flat",
        "RSS peaks −24 dBm aligned, no reads near 90°/270°; phase roughly constant with spurious jumps at the nulls",
    )
    .headers(vec!["Mismatch bucket (°)", "Reads", "Mean RSS (dBm)", "Phase σ (rad)"]);

    // Bucket reads by true mismatch angle (known from ω·t).
    let mut buckets: Vec<Vec<&rfid_sim::TagReport>> = vec![Vec::new(); 9];
    for r in &reports {
        let angle = rf_core::wrap_tau(omega * r.t);
        // Fold to [0°, 90°] mismatch against the X-polarized antenna.
        let fold = {
            let a = angle.rem_euclid(std::f64::consts::PI);
            a.min(std::f64::consts::PI - a)
        };
        let b = ((fold.to_degrees() / 10.0) as usize).min(8);
        buckets[b].push(r);
    }
    for (b, reads) in buckets.iter().enumerate() {
        let rssis: Vec<f64> = reads.iter().map(|r| r.rssi_dbm).collect();
        let phases: Vec<f64> = reads.iter().map(|r| r.phase_rad).collect();
        let unwrapped = rf_core::angle::unwrap_phases(&phases);
        rot.push_row(vec![
            format!("{}–{}", b * 10, b * 10 + 10),
            reads.len().to_string(),
            stats::mean(&rssis).map_or("—".into(), |m| format!("{m:.1}")),
            stats::std_dev(&unwrapped).map_or("—".into(), |s| format!("{s:.2}")),
        ]);
    }
    let aligned_rss = buckets[0]
        .iter()
        .map(|r| r.rssi_dbm)
        .fold(f64::NEG_INFINITY, f64::max);
    rot.push_note(format!(
        "peak RSS {aligned_rss:.1} dBm when aligned; read count collapses toward 90° (tag loses power)"
    ));

    // ---- Case 2: translation ----
    // Aligned with the X-polarized antenna so the tag stays readable,
    // and offset sideways so the 8 cm motion has a radial component
    // (straight under the antenna, horizontal motion barely changes the
    // range and the phase would sit still).
    let poses = translation_session(Vec3::new(1.5, 0.0, 0.0), 0.0, 0.08, 6.0, 24.0, 0.002);
    let reports = reader.inventory(&to_tag_poses_pen(&poses), opts.seed + 1);
    let rssis: Vec<f64> = reports.iter().map(|r| r.rssi_dbm).collect();
    let phases: Vec<f64> = reports.iter().map(|r| r.phase_rad).collect();
    let unwrapped = rf_core::angle::unwrap_phases(&phases);
    let phase_span = unwrapped.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - unwrapped.iter().cloned().fold(f64::INFINITY, f64::min);
    let mut tr = Report::new(
        "fig03c",
        "Translating tag: RSS flat, phase sweeps with distance",
        "RSS roughly constant over 8 cm of motion; phase rises/falls with direction",
    )
    .headers(vec!["Metric", "Value"]);
    tr.push_row(vec!["Reads".to_string(), reports.len().to_string()]);
    tr.push_row(vec![
        "RSS σ (dB)".to_string(),
        stats::std_dev(&rssis).map_or("—".into(), |s| format!("{s:.2}")),
    ]);
    tr.push_row(vec!["Unwrapped phase span (rad)".to_string(), format!("{phase_span:.2}")]);
    tr.push_note("8 cm of motion at ~0.5 radial fraction: RSS flat, phase sweeps ≈1.6 rad per pass");

    vec![rot, tr]
}

fn to_tag_poses_pen(poses: &[pen_sim::kinematics::PenPose]) -> Vec<rfid_sim::reader::TagPose> {
    to_tag_poses(poses)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_case_shows_the_cos_law_shape() {
        let reports = run(&RunOpts { trials: 1, ..RunOpts::default() });
        let rot = &reports[0];
        assert_eq!(rot.id, "fig03b");
        // Aligned bucket must out-power the 60–70° bucket by ≥ 10 dB.
        let rss = |row: usize| rot.rows[row][2].parse::<f64>();
        if let (Ok(aligned), Ok(steep)) = (rss(0), rss(6)) {
            assert!(aligned > steep + 8.0, "aligned {aligned} vs 60–70° {steep}");
        }
        // The near-null bucket has far fewer reads than the aligned one.
        let reads = |row: usize| rot.rows[row][1].parse::<usize>().unwrap_or(0);
        assert!(reads(8) < reads(0) / 2, "null bucket {} aligned {}", reads(8), reads(0));
    }

    #[test]
    fn translation_case_has_flat_rss_and_sweeping_phase() {
        let reports = run(&RunOpts { trials: 1, ..RunOpts::default() });
        let tr = &reports[1];
        let rss_sigma: f64 = tr.rows[1][1].parse().unwrap();
        let span: f64 = tr.rows[2][1].parse().unwrap();
        assert!(rss_sigma < 1.5, "RSS must stay flat, σ = {rss_sigma}");
        assert!(span > 1.0, "phase must sweep, span = {span}");
    }
}
