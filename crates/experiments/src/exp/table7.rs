//! Table 7: sensitivity to the assumed pen elevation angle αe.
//!
//! The algorithm fixes αe to a constant (§3.3.1); the paper sweeps the
//! assumed value from −45° to 45° and finds accuracy essentially flat
//! (90–93 %), justifying the simplification. The *true* elevation in
//! our simulation stays at the writer's natural ~30°.

use crate::exp::SWEEP_LETTERS;
use crate::report::Report;
use crate::runner::{letter_accuracy, run_letter_trials, RunOpts};
use crate::setup::TrialSetup;

/// Assumed elevation angles swept, degrees.
pub const ALPHA_E_DEG: [f64; 6] = [-45.0, -30.0, -15.0, 15.0, 30.0, 45.0];

/// Run the αe sweep.
pub fn run(opts: &RunOpts) -> Vec<Report> {
    let mut report = Report::new(
        "table7",
        "Recognition accuracy vs assumed elevation angle αe",
        "91/91/92/91/93/90 % — flat across −45°…45°",
    )
    .headers(vec!["Assumed αe (°)", "Accuracy (%)", "Trials"]);
    for (i, &ae) in ALPHA_E_DEG.iter().enumerate() {
        let conditions: Vec<(char, TrialSetup)> = SWEEP_LETTERS
            .iter()
            .map(|&ch| {
                let mut s = TrialSetup::letter(ch);
                s.alpha_e_rad = ae.to_radians();
                (ch, s)
            })
            .collect();
        let trials = run_letter_trials(
            &conditions,
            opts.trials.div_ceil(2).max(1),
            opts.seed.wrapping_add(i as u64),
            opts,
        );
        report.push_row(vec![
            format!("{ae:.0}"),
            format!("{:.0}", 100.0 * letter_accuracy(&trials)),
            trials.len().to_string(),
        ]);
    }
    report.push_note("true writer elevation stays ≈30°; only the algorithm's assumption varies");
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_matches_the_papers_grid() {
        assert_eq!(ALPHA_E_DEG, [-45.0, -30.0, -15.0, 15.0, 30.0, 45.0]);
    }
}
