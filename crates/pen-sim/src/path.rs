//! Timed path synthesis.
//!
//! Turns glyph strokes into a constant-speed, arc-length parameterized
//! sequence of timestamped tip positions. Multi-stroke letters (and
//! letter-to-letter gaps in words) are joined by straight "transition"
//! segments written at the same speed — the tag keeps answering during
//! pen lifts, so the tracker sees them; the recognizer's templates are
//! rendered through this same pipeline, keeping the comparison fair.

use crate::glyph::Glyph;
use rf_core::Vec2;

/// A timestamped tip position, metres / seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedPoint {
    /// Time since the start of the writing session, seconds.
    pub t: f64,
    /// Tip position on the board plane, metres.
    pub pos: Vec2,
}

/// Scale and place a glyph: unit box → a `size_m`-tall letter with its
/// top-left corner at `origin` (board metres). Letters are rendered
/// slightly narrower than tall (aspect 0.7), like natural handwriting.
pub fn place_glyph(g: &Glyph, origin: Vec2, size_m: f64) -> Vec<Vec<Vec2>> {
    let aspect = 0.7;
    g.strokes
        .iter()
        .map(|stroke| {
            stroke
                .iter()
                .map(|p| Vec2::new(origin.x + p.x * size_m * aspect, origin.y + p.y * size_m))
                .collect()
        })
        .collect()
}

/// Concatenate strokes into one continuous polyline, inserting the
/// transition segments between stroke end-points.
pub fn join_strokes(strokes: &[Vec<Vec2>]) -> Vec<Vec2> {
    let mut out: Vec<Vec2> = Vec::new();
    for stroke in strokes {
        if stroke.is_empty() {
            continue;
        }
        // The straight hop from the previous stroke's end is implicit in
        // polyline form: just append (skipping an exact duplicate point).
        for &p in stroke {
            if out.last().map_or(true, |&last| last.distance(p) > 1e-12) {
                out.push(p);
            }
        }
    }
    out
}

/// Total length of a polyline, metres.
pub fn polyline_length(points: &[Vec2]) -> f64 {
    points.windows(2).map(|w| w[0].distance(w[1])).sum()
}

/// Position along a polyline at arc length `s` (clamped to the ends).
pub fn point_at_arc_length(points: &[Vec2], s: f64) -> Option<Vec2> {
    if points.is_empty() {
        return None;
    }
    if s <= 0.0 {
        return Some(points[0]);
    }
    let mut acc = 0.0;
    for w in points.windows(2) {
        let seg = w[0].distance(w[1]);
        if acc + seg >= s && seg > 0.0 {
            return Some(w[0].lerp(w[1], (s - acc) / seg));
        }
        acc += seg;
    }
    points.last().copied()
}

/// Sample a polyline into a constant-speed timed path.
///
/// * `speed_mps` — writing speed along the ink (the paper assumes normal
///   writing stays well under its 0.2 m/s `vmax`).
/// * `dt` — sampling period, seconds (the substrate samples much faster
///   than the reader reads, so interpolation error is negligible).
/// * `t0` — timestamp of the first sample.
pub fn timed_path(points: &[Vec2], speed_mps: f64, dt: f64, t0: f64) -> Vec<TimedPoint> {
    assert!(speed_mps > 0.0 && dt > 0.0, "speed and dt must be positive");
    let total = polyline_length(points);
    if points.is_empty() {
        return Vec::new();
    }
    let duration = total / speed_mps;
    let steps = (duration / dt).ceil() as usize;
    let mut out = Vec::with_capacity(steps + 1);
    for i in 0..=steps {
        let t = i as f64 * dt;
        let s = (t * speed_mps).min(total);
        let pos = point_at_arc_length(points, s).expect("non-empty polyline");
        out.push(TimedPoint { t: t0 + t, pos });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::glyph::glyph;

    #[test]
    fn place_glyph_scales_and_translates() {
        let g = glyph('I').unwrap();
        let placed = place_glyph(&g, Vec2::new(0.1, 0.6), 0.2);
        // 'I' is a vertical stroke at x = 0.5 of the unit box.
        assert!((placed[0][0].x - (0.1 + 0.5 * 0.2 * 0.7)).abs() < 1e-12);
        assert!((placed[0][0].y - 0.6).abs() < 1e-12);
        assert!((placed[0][1].y - 0.8).abs() < 1e-12);
    }

    #[test]
    fn join_strokes_dedups_shared_endpoints() {
        let strokes = vec![
            vec![Vec2::new(0.0, 0.0), Vec2::new(1.0, 0.0)],
            vec![Vec2::new(1.0, 0.0), Vec2::new(1.0, 1.0)],
        ];
        let joined = join_strokes(&strokes);
        assert_eq!(joined.len(), 3);
    }

    #[test]
    fn polyline_length_of_unit_square_path() {
        let pts = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(0.0, 1.0),
        ];
        assert!((polyline_length(&pts) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn arc_length_interpolation() {
        let pts = vec![Vec2::new(0.0, 0.0), Vec2::new(2.0, 0.0)];
        assert_eq!(point_at_arc_length(&pts, 0.5), Some(Vec2::new(0.5, 0.0)));
        assert_eq!(point_at_arc_length(&pts, -1.0), Some(Vec2::new(0.0, 0.0)));
        assert_eq!(point_at_arc_length(&pts, 99.0), Some(Vec2::new(2.0, 0.0)));
        assert_eq!(point_at_arc_length(&[], 0.0), None);
    }

    #[test]
    fn timed_path_has_constant_speed() {
        let pts = vec![Vec2::new(0.0, 0.0), Vec2::new(0.1, 0.0), Vec2::new(0.1, 0.1)];
        let tp = timed_path(&pts, 0.1, 0.01, 0.0);
        for w in tp.windows(2) {
            let v = w[0].pos.distance(w[1].pos) / (w[1].t - w[0].t);
            // Final partial step may be slower; all others at 0.1 m/s.
            assert!(v <= 0.1 + 1e-9, "speed {v}");
        }
        let mid_speeds: Vec<f64> = tp
            .windows(2)
            .take(tp.len().saturating_sub(2))
            .map(|w| w[0].pos.distance(w[1].pos) / (w[1].t - w[0].t))
            .collect();
        for v in mid_speeds {
            assert!((v - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn timed_path_duration_matches_length_over_speed() {
        let g = glyph('W').unwrap();
        let placed = place_glyph(&g, Vec2::new(0.0, 0.5), 0.2);
        let joined = join_strokes(&placed);
        let len = polyline_length(&joined);
        let tp = timed_path(&joined, 0.08, 0.005, 1.0);
        let dur = tp.last().unwrap().t - tp.first().unwrap().t;
        assert!((dur - len / 0.08).abs() < 0.01, "dur {dur} len/v {}", len / 0.08);
        assert_eq!(tp.first().unwrap().t, 1.0);
    }

    #[test]
    fn timed_path_reaches_both_endpoints() {
        let pts = vec![Vec2::new(0.0, 0.0), Vec2::new(0.05, 0.07)];
        let tp = timed_path(&pts, 0.1, 0.013, 0.0);
        assert_eq!(tp.first().unwrap().pos, pts[0]);
        assert!(tp.last().unwrap().pos.distance(pts[1]) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_speed_panics() {
        timed_path(&[Vec2::ZERO], 0.0, 0.01, 0.0);
    }
}
