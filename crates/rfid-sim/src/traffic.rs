//! Deterministic synthetic fleet traffic.
//!
//! The serving layers (`polardraw_core::serve`, `polardraw_core::fleet`)
//! need realistic *load shapes* — not realistic pen strokes — to be
//! exercised honestly: arrival rates that swing over a day, flash
//! crowds that pile sessions onto one rig at once, constant session
//! churn, and write durations with a heavy tail (most strokes are a
//! word, a few are a whiteboard lecture). This module generates all of
//! that from one seed via `rf_core::rng` derived seeds, so every
//! scenario is bit-identical run to run and across machines:
//!
//! * [`TrafficModel::generate`] samples a [`SessionPlan`] per session —
//!   arrival time by inverse-CDF over a diurnal × flash-crowd intensity
//!   profile, duration from a bounded Pareto tail, a rig assignment for
//!   shard-affinity testing.
//! * [`TrafficModel::reports_for`] renders any virtual-time slice of a
//!   session's report stream as a pure function of the plan (no
//!   sequential generator state), so a driver may slice the timeline
//!   arbitrarily — per drain round, per shard, per retry after
//!   backpressure — and always observe the same stream.
//!
//! The reports themselves are the same shape the serving tests use
//! (alternating antennas at the aggregate read rate, slowly advancing
//! phase): enough to push real windows through real trackers without
//! paying for full channel physics per session.

use crate::TagReport;
use rf_core::rng::{derive_seed, derive_seed_indexed, rng_from_seed};

/// Shape of the synthetic fleet workload.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Total sessions over the horizon.
    pub sessions: usize,
    /// Scenario length, virtual seconds.
    pub horizon_s: f64,
    /// Diurnal cycle period (a "day", compressed to taste).
    pub diurnal_period_s: f64,
    /// Trough-to-peak arrival-intensity ratio in `[0, 1]`
    /// (1 = flat load, 0 = dead troughs).
    pub diurnal_floor: f64,
    /// Number of flash crowds superimposed on the diurnal cycle.
    pub flash_crowds: usize,
    /// Peak extra intensity of each flash crowd, as a multiple of the
    /// local baseline.
    pub flash_boost: f64,
    /// Gaussian half-width of each flash crowd, seconds.
    pub flash_width_s: f64,
    /// Distinct rigs (board/antenna configurations) sessions are
    /// assigned to, uniformly. Shard routing keys on the rig.
    pub rigs: usize,
    /// Minimum write duration, seconds (the Pareto scale).
    pub write_min_s: f64,
    /// Pareto tail exponent for write durations (smaller = heavier
    /// tail; 1.1–1.5 is heavy).
    pub write_tail_alpha: f64,
    /// Hard cap on write duration, seconds (bounds the Pareto tail).
    pub write_max_s: f64,
    /// Per-session aggregate read rate, reports per second (the paper's
    /// rig delivers ~100 Hz).
    pub report_hz: f64,
}

impl Default for TrafficConfig {
    fn default() -> TrafficConfig {
        TrafficConfig {
            sessions: 256,
            horizon_s: 600.0,
            diurnal_period_s: 600.0,
            diurnal_floor: 0.2,
            flash_crowds: 2,
            flash_boost: 3.0,
            flash_width_s: 15.0,
            rigs: 4,
            write_min_s: 4.0,
            write_tail_alpha: 1.3,
            write_max_s: 90.0,
            report_hz: 100.0,
        }
    }
}

/// One planned session: when it arrives, how long it writes, which rig
/// it writes on, and the seed its report stream derives from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionPlan {
    /// Tag EPC (unique per session).
    pub epc: u64,
    /// Rig index in `0..config.rigs`.
    pub rig: usize,
    /// Arrival time, virtual seconds.
    pub start_s: f64,
    /// Write duration, virtual seconds.
    pub duration_s: f64,
    /// Derived seed the session's report stream is a pure function of.
    pub seed: u64,
}

impl SessionPlan {
    /// When the session stops writing.
    pub fn end_s(&self) -> f64 {
        self.start_s + self.duration_s
    }
}

/// Per-session report-stream parameters, derived once from the plan
/// seed so any report index is O(1) to render.
struct StreamParams {
    phase0: f64,
    phase_rate: f64,
    rssi0: f64,
    rssi_wobble: f64,
    channel0: usize,
}

fn stream_params(plan: &SessionPlan) -> StreamParams {
    let mut rng = rng_from_seed(plan.seed);
    StreamParams {
        phase0: std::f64::consts::TAU * rng.gen_f64(),
        phase_rate: 0.01 + 0.04 * rng.gen_f64(),
        rssi0: -58.0 + 6.0 * rng.gen_f64(),
        rssi_wobble: 1.5 * rng.gen_f64(),
        channel0: rng.gen_index(50),
    }
}

/// A generated fleet workload: the session plans plus the intensity
/// profile they were sampled from.
#[derive(Debug, Clone)]
pub struct TrafficModel {
    config: TrafficConfig,
    flash_centers: Vec<f64>,
    plans: Vec<SessionPlan>,
}

impl TrafficModel {
    /// Generate the workload. Deterministic: every random draw comes
    /// from `derive_seed`/`derive_seed_indexed` children of `seed`, and
    /// per-session draws are independently seeded (reordering sessions
    /// or adding more never perturbs existing ones).
    pub fn generate(config: TrafficConfig, seed: u64) -> TrafficModel {
        let mut flash_rng = rng_from_seed(derive_seed(seed, "traffic.flash"));
        let flash_centers: Vec<f64> = (0..config.flash_crowds)
            .map(|_| (0.1 + 0.8 * flash_rng.gen_f64()) * config.horizon_s)
            .collect();
        let mut model = TrafficModel { config, flash_centers, plans: Vec::new() };

        // Cumulative intensity on a fixed grid; arrivals are inverse-CDF
        // samples against it (linear interpolation within a bin).
        const BINS: usize = 2048;
        let h = model.config.horizon_s.max(1e-9);
        let mut cum = Vec::with_capacity(BINS + 1);
        cum.push(0.0);
        for b in 0..BINS {
            let t = (b as f64 + 0.5) / BINS as f64 * h;
            cum.push(cum[b] + model.intensity(t).max(0.0));
        }
        let total = *cum.last().expect("non-empty cumulative");

        let mut plans = Vec::with_capacity(model.config.sessions);
        for i in 0..model.config.sessions {
            let mut rng =
                rng_from_seed(derive_seed_indexed(seed, "traffic.session", i as u64));
            let target = rng.gen_f64() * total;
            let b = cum[1..].partition_point(|&c| c < target).min(BINS - 1);
            let (lo, hi) = (cum[b], cum[b + 1]);
            let frac = if hi > lo { (target - lo) / (hi - lo) } else { 0.5 };
            let start_s = (b as f64 + frac) / BINS as f64 * h;
            // Bounded Pareto: x = min · (1-u)^(-1/α), capped.
            let u = rng.gen_f64().min(1.0 - 1e-12);
            let duration_s = (model.config.write_min_s
                * (1.0 - u).powf(-1.0 / model.config.write_tail_alpha.max(1e-3)))
            .min(model.config.write_max_s);
            let rig = rng.gen_index(model.config.rigs.max(1));
            plans.push(SessionPlan {
                epc: 0xF1EE_0000_0000_0000 | i as u64,
                rig,
                start_s,
                duration_s,
                seed: derive_seed_indexed(seed, "traffic.stream", i as u64),
            });
        }
        // Arrival order (ties broken by EPC) — the order a front door
        // would admit them in.
        plans.sort_by(|a, b| a.start_s.total_cmp(&b.start_s).then(a.epc.cmp(&b.epc)));
        model.plans = plans;
        model
    }

    /// The workload's configuration.
    pub fn config(&self) -> &TrafficConfig {
        &self.config
    }

    /// Every session plan, in arrival order.
    pub fn plans(&self) -> &[SessionPlan] {
        &self.plans
    }

    /// The sampled flash-crowd centres, seconds.
    pub fn flash_centers(&self) -> &[f64] {
        &self.flash_centers
    }

    /// Relative arrival intensity at `t`: raised-cosine diurnal cycle
    /// times superimposed Gaussian flash bumps. Unnormalized — only
    /// ratios matter to the sampler.
    pub fn intensity(&self, t: f64) -> f64 {
        let c = &self.config;
        let phase = std::f64::consts::TAU * t / c.diurnal_period_s.max(1e-9);
        let diurnal = c.diurnal_floor + (1.0 - c.diurnal_floor) * 0.5 * (1.0 - phase.cos());
        let mut boost = 1.0;
        for &fc in &self.flash_centers {
            let z = (t - fc) / c.flash_width_s.max(1e-9);
            boost += c.flash_boost * (-0.5 * z * z).exp();
        }
        diurnal * boost
    }

    /// Sessions concurrently writing at `t` (the churn curve).
    pub fn active_at(&self, t: f64) -> usize {
        self.plans.iter().filter(|p| p.start_s <= t && t < p.end_s()).count()
    }

    /// Total reports the whole fleet offers in `[t0, t1)` — the offered
    /// load a front door must admit or defer.
    pub fn offered_in(&self, t0: f64, t1: f64) -> usize {
        self.plans.iter().map(|p| self.report_indices(p, t0, t1).len()).sum()
    }

    /// The reports session `plan` emits in `[t0, t1)`. A pure function
    /// of the plan: report `k` is fully determined by `(plan.seed, k)`,
    /// so slicing the timeline anywhere yields the same stream — see
    /// the module docs.
    pub fn reports_for(&self, plan: &SessionPlan, t0: f64, t1: f64) -> Vec<TagReport> {
        let mut out = Vec::new();
        self.reports_into(plan, t0, t1, &mut out);
        out
    }

    /// [`reports_for`](Self::reports_for), appending into a
    /// caller-owned buffer (ingest loops reuse one buffer across
    /// rounds).
    pub fn reports_into(&self, plan: &SessionPlan, t0: f64, t1: f64, out: &mut Vec<TagReport>) {
        let range = self.report_indices(plan, t0, t1);
        if range.is_empty() {
            return;
        }
        let dt = 1.0 / self.config.report_hz.max(1e-9);
        let p = stream_params(plan);
        out.reserve(range.len());
        for k in range {
            let t = plan.start_s + k as f64 * dt;
            out.push(TagReport {
                t,
                antenna: k % 2,
                rssi_dbm: p.rssi0 + p.rssi_wobble * (0.05 * k as f64).sin(),
                phase_rad: rf_core::wrap_tau(p.phase0 + p.phase_rate * k as f64),
                channel: (p.channel0 + k / 64) % 50,
                epc: plan.epc,
            });
        }
    }

    /// Report indices `k` (report `k` fires at `start_s + k/report_hz`)
    /// that land in `[t0, t1)` ∩ the session's lifetime. The boundary
    /// comparisons are on the identically-computed emission time, so a
    /// report lands in exactly one slice of any partition.
    fn report_indices(&self, plan: &SessionPlan, t0: f64, t1: f64) -> std::ops::Range<usize> {
        let dt = 1.0 / self.config.report_hz.max(1e-9);
        let lo = t0.max(plan.start_s);
        let hi = t1.min(plan.end_s());
        if hi <= lo {
            return 0..0;
        }
        // Start from a conservative underestimate and walk forward to
        // the first index whose emission time reaches `lo`; float error
        // in the seek never double-counts a boundary report because
        // membership is decided by the same `start_s + k·dt` both
        // slices compute.
        let mut k0 = (((lo - plan.start_s) / dt).floor() as usize).saturating_sub(1);
        while plan.start_s + k0 as f64 * dt < lo {
            k0 += 1;
        }
        let mut k1 = k0;
        while plan.start_s + k1 as f64 * dt < hi {
            k1 += 1;
        }
        k0..k1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> TrafficConfig {
        TrafficConfig { sessions: 64, flash_crowds: 0, ..TrafficConfig::default() }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TrafficModel::generate(TrafficConfig::default(), 7);
        let b = TrafficModel::generate(TrafficConfig::default(), 7);
        assert_eq!(a.plans(), b.plans());
        let p = a.plans()[0];
        assert_eq!(a.reports_for(&p, 0.0, 1e9), b.reports_for(&p, 0.0, 1e9));
        let c = TrafficModel::generate(TrafficConfig::default(), 8);
        assert_ne!(a.plans(), c.plans(), "different seed, different workload");
    }

    #[test]
    fn slicing_the_timeline_is_exact() {
        let m = TrafficModel::generate(TrafficConfig::default(), 11);
        let plan = m.plans()[3];
        let whole = m.reports_for(&plan, 0.0, m.config().horizon_s * 2.0);
        assert!(!whole.is_empty());
        // Arbitrary (non-window-aligned) cuts must tile the stream.
        for cuts in [3usize, 7, 41] {
            let mut tiled = Vec::new();
            let span = plan.duration_s + 2.0;
            for c in 0..cuts {
                let t0 = plan.start_s - 1.0 + span * c as f64 / cuts as f64;
                let t1 = plan.start_s - 1.0 + span * (c + 1) as f64 / cuts as f64;
                m.reports_into(&plan, t0, t1, &mut tiled);
            }
            assert_eq!(tiled, whole, "cuts={cuts}");
        }
    }

    #[test]
    fn reports_are_sorted_alternating_and_in_slice() {
        let m = TrafficModel::generate(TrafficConfig::default(), 5);
        let plan = m.plans()[0];
        let (t0, t1) = (plan.start_s + 0.33, plan.start_s + 1.77);
        let reports = m.reports_for(&plan, t0, t1);
        assert!(!reports.is_empty());
        for w in reports.windows(2) {
            assert!(w[0].t < w[1].t);
            assert_ne!(w[0].antenna, w[1].antenna, "ports alternate");
        }
        for r in &reports {
            assert!(r.t >= t0 && r.t < t1);
            assert_eq!(r.epc, plan.epc);
        }
    }

    #[test]
    fn diurnal_cycle_concentrates_arrivals_at_the_peak() {
        let cfg = TrafficConfig { diurnal_floor: 0.05, sessions: 512, ..quiet() };
        let m = TrafficModel::generate(cfg, 13);
        // Peak half of the cycle is the middle (cos phase π at t = T/2).
        let (h, q) = (m.config().horizon_s, m.config().horizon_s / 4.0);
        let mid = m.plans().iter().filter(|p| p.start_s >= q && p.start_s < h - q).count();
        let edges = m.plans().len() - mid;
        assert!(
            mid > 2 * edges,
            "arrivals should pile into the diurnal peak: mid={mid} edges={edges}"
        );
    }

    #[test]
    fn flash_crowds_spike_local_arrivals() {
        let base = TrafficModel::generate(quiet(), 17);
        let flashy = TrafficModel::generate(
            TrafficConfig {
                flash_crowds: 1,
                flash_boost: 20.0,
                flash_width_s: 8.0,
                sessions: 64,
                ..quiet()
            },
            17,
        );
        let c = flashy.flash_centers()[0];
        let near = |m: &TrafficModel| {
            m.plans().iter().filter(|p| (p.start_s - c).abs() < 16.0).count()
        };
        assert!(
            near(&flashy) > near(&base),
            "flash window should out-draw the same window without the flash: {} vs {}",
            near(&flashy),
            near(&base)
        );
        assert!(flashy.intensity(c) > 4.0 * base.intensity(c));
    }

    #[test]
    fn write_durations_are_bounded_and_heavy_tailed() {
        let cfg = TrafficConfig {
            sessions: 512,
            write_min_s: 2.0,
            write_tail_alpha: 1.1,
            write_max_s: 500.0,
            ..TrafficConfig::default()
        };
        let m = TrafficModel::generate(cfg, 23);
        for p in m.plans() {
            assert!(p.duration_s >= 2.0 && p.duration_s <= 500.0);
        }
        let long = m.plans().iter().filter(|p| p.duration_s > 10.0).count();
        let median = {
            let mut d: Vec<f64> = m.plans().iter().map(|p| p.duration_s).collect();
            d.sort_by(f64::total_cmp);
            d[d.len() / 2]
        };
        assert!(median < 5.0, "bulk stays near the minimum (median {median})");
        assert!(long > 10, "tail reaches past 5× the minimum ({long} sessions)");
    }

    #[test]
    fn active_count_tracks_lifetimes() {
        let m = TrafficModel::generate(TrafficConfig::default(), 29);
        let p = m.plans()[10];
        assert!(m.active_at(p.start_s) >= 1);
        assert!(m.active_at(p.start_s + p.duration_s / 2.0) >= 1);
        let before = m.active_at(-1.0);
        assert_eq!(before, 0, "nobody writes before the horizon opens");
        // Offered load over the whole horizon is every session's full
        // stream.
        let h = m.config().horizon_s;
        let all: usize =
            m.plans().iter().map(|p| m.reports_for(p, 0.0, h * 10.0).len()).sum();
        assert_eq!(m.offered_in(0.0, h * 10.0), all);
    }
}
