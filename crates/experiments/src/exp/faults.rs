//! Fault-injection robustness sweep (not in the paper).
//!
//! Sweeps the composite fault-intensity knob of
//! `rfid_sim::faults::FaultPlan::at_intensity` — burst dropouts, a
//! single-antenna-port outage, report duplication, bounded reordering,
//! clock jitter/drift, per-channel phase steps — and measures letter
//! accuracy for PolarDraw and the paper's two comparison baselines
//! (Tagoram and RF-IDraw, both in their native 4-antenna rigs), plus
//! PolarDraw's median Procrustes error as a finer-grained degradation
//! signal than the recognition hit rate.
//!
//! Intensity 0 uses the identity plan, so its column is bit-identical
//! to a faults-off run — the sweep's own internal control.

use crate::exp::SHORT_LETTERS;
use crate::report::Report;
use crate::runner::{letter_accuracy, run_letter_trials, LetterTrial, RunOpts};
use crate::setup::{TrackerKind, TrialSetup};
use rfid_sim::faults::FaultPlan;

/// The swept fault intensities (0 = clean control).
pub const INTENSITIES: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// The trackers compared, in column order.
pub const TRACKERS: [TrackerKind; 3] =
    [TrackerKind::PolarDraw, TrackerKind::Tagoram4, TrackerKind::RfIdraw4];

fn median_procrustes_cm(trials: &[LetterTrial]) -> Option<f64> {
    let mut ds: Vec<f64> = trials.iter().filter_map(|t| t.procrustes_m).collect();
    if ds.is_empty() {
        return None;
    }
    ds.sort_by(|a, b| a.total_cmp(b));
    Some(100.0 * ds[ds.len() / 2])
}

/// Run the intensity × tracker sweep.
pub fn run(opts: &RunOpts) -> Vec<Report> {
    let mut report = Report::new(
        "faults",
        "Accuracy under injected reader faults, by intensity",
        "not in the paper; robustness axis over burst dropouts, port outage, \
         duplication, reordering, clock jitter, channel phase steps",
    )
    .headers(vec![
        "Intensity",
        "PolarDraw (%)",
        "Tagoram-4 (%)",
        "RF-IDraw-4 (%)",
        "PolarDraw median Procrustes (cm)",
    ]);
    let trials_per = opts.trials.div_ceil(2).max(1);
    for (ii, &intensity) in INTENSITIES.iter().enumerate() {
        let mut accs = [0.0; TRACKERS.len()];
        let mut procrustes: Option<f64> = None;
        for (ti, &tracker) in TRACKERS.iter().enumerate() {
            let conditions: Vec<(char, TrialSetup)> = SHORT_LETTERS
                .iter()
                .map(|&ch| {
                    let mut s = TrialSetup::letter(ch).with_tracker(tracker);
                    s.faults = Some(FaultPlan::at_intensity(intensity));
                    (ch, s)
                })
                .collect();
            // Seed offsets by intensity only: every tracker (and every
            // intensity's injector stages) sees the same pen trajectories,
            // so columns differ by algorithm and rows by fault level.
            let trials = run_letter_trials(
                &conditions,
                trials_per,
                opts.seed.wrapping_add(700 + ii as u64),
                opts,
            );
            accs[ti] = 100.0 * letter_accuracy(&trials);
            if tracker == TrackerKind::PolarDraw {
                procrustes = median_procrustes_cm(&trials);
            }
        }
        report.push_row(vec![
            format!("{intensity:.2}"),
            format!("{:.0}", accs[0]),
            format!("{:.0}", accs[1]),
            format!("{:.0}", accs[2]),
            procrustes.map_or("n/a".to_string(), |d| format!("{d:.1}")),
        ]);
    }
    report.push_note(
        "intensity 0.00 is the identity FaultPlan: provably bit-identical to a run \
         with faults disabled (see tests/golden.rs)",
    );
    report.push_note(format!(
        "letters {:?}, {trials_per} trial(s) per letter per cell; baselines run their \
         native circular-polarized 4-antenna rigs",
        SHORT_LETTERS
    ));
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_axis_starts_clean_and_is_increasing() {
        assert_eq!(INTENSITIES[0], 0.0);
        assert!(INTENSITIES.windows(2).all(|w| w[0] < w[1]));
        assert!(FaultPlan::at_intensity(INTENSITIES[0]).is_identity());
        assert!(!FaultPlan::at_intensity(INTENSITIES[1]).is_identity());
    }

    #[test]
    fn median_procrustes_handles_degenerate_trials() {
        assert_eq!(median_procrustes_cm(&[]), None);
        let trials = vec![
            LetterTrial { actual: 'L', predicted: Some('L'), procrustes_m: Some(0.02) },
            LetterTrial { actual: 'L', predicted: None, procrustes_m: None },
            LetterTrial { actual: 'L', predicted: Some('C'), procrustes_m: Some(0.08) },
        ];
        assert_eq!(median_procrustes_cm(&trials), Some(8.0));
    }
}
