//! Pen pose kinematics: the paper's §3.2 writing model.
//!
//! While writing, wrist articulation couples the pen's azimuthal
//! rotation to its direction of travel: "wrist movements tend to cause
//! azimuthal rotations clockwise when the pen moves to the right, and
//! counterclockwise when the pen moves to the left". We model this as a
//! first-order lag of the azimuth toward a direction-dependent target:
//!
//! ```text
//! α_target(φ) = π/2 − g·cos(φ)         φ = travel direction from +X
//! dα/dt       = (α_target − α) / τ
//! ```
//!
//! With gain `g` ≈ 25–40° a rightward stroke (φ = 0) pulls the pen
//! clockwise below board-vertical, a leftward stroke pushes it above —
//! exactly the sector traversal PolarDraw's Table 3 logic decodes.
//! Vertical strokes leave the azimuth at rest. A "stiff" writer
//! (Fig. 21's User 2) is simply `g → small`.
//!
//! Elevation α_e stays near a per-user constant (the paper fixes it and
//! shows accuracy is insensitive to the choice, Table 7).

use crate::path::TimedPoint;
use rf_core::rng::{gaussian, Rng64};
use rf_core::{Vec2, Vec3};
use std::f64::consts::FRAC_PI_2;

/// A full pen pose: where the tip is and where the tag's dipole points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PenPose {
    /// Timestamp, seconds.
    pub t: f64,
    /// Tip position, metres (z = 0 on the board; nonzero in the air).
    pub tip: Vec3,
    /// Unit dipole orientation of the tag along the pen body.
    pub dipole: Vec3,
    /// Azimuthal angle α_a, radians from +X in the board plane.
    pub azimuth: f64,
    /// Elevation angle α_e out of the board plane, radians.
    pub elevation: f64,
}

/// The wrist articulation model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WristModel {
    /// Azimuthal deflection gain `g`, radians. 0 = perfectly stiff.
    pub gain_rad: f64,
    /// First-order lag time constant τ, seconds.
    pub lag_s: f64,
    /// Resting azimuth, radians (board-vertical π/2 for a natural grip).
    pub rest_azimuth_rad: f64,
    /// Mean elevation α_e, radians.
    pub elevation_rad: f64,
    /// Standard deviation of slow elevation wander, radians.
    pub elevation_jitter_rad: f64,
    /// Standard deviation of per-step azimuth tremor, radians.
    pub azimuth_jitter_rad: f64,
}

impl Default for WristModel {
    fn default() -> Self {
        WristModel {
            gain_rad: 52f64.to_radians(),
            lag_s: 0.12,
            rest_azimuth_rad: FRAC_PI_2,
            elevation_rad: 30f64.to_radians(),
            elevation_jitter_rad: 2f64.to_radians(),
            azimuth_jitter_rad: 1.2f64.to_radians(),
        }
    }
}

impl WristModel {
    /// Azimuth the wrist relaxes toward when travelling along `dir`.
    pub fn target_azimuth(&self, dir: Vec2) -> f64 {
        match dir.normalized() {
            Some(d) => self.rest_azimuth_rad - self.gain_rad * d.x,
            None => self.rest_azimuth_rad,
        }
    }

    /// Convert (azimuth, elevation) into the unit dipole direction: the
    /// in-plane component at `azimuth` from +X, lifted out of the board
    /// by `elevation`.
    pub fn dipole_from_angles(azimuth: f64, elevation: f64) -> Vec3 {
        let (se, ce) = elevation.sin_cos();
        let (sa, ca) = azimuth.sin_cos();
        Vec3::new(ca * ce, sa * ce, se)
    }

    /// Run the wrist model over a timed tip path, producing full poses.
    ///
    /// `rng` drives the tremor terms; pass a fixed-seed RNG for
    /// reproducible sessions.
    pub fn animate(&self, path: &[TimedPoint], rng: &mut Rng64) -> Vec<PenPose> {
        let mut out = Vec::with_capacity(path.len());
        let mut azimuth = self.rest_azimuth_rad;
        let mut elevation = self.elevation_rad;
        for (i, tp) in path.iter().enumerate() {
            let (dt, dir) = if i == 0 {
                (0.0, Vec2::ZERO)
            } else {
                let prev = path[i - 1];
                ((tp.t - prev.t).max(0.0), tp.pos - prev.pos)
            };
            if dt > 0.0 {
                let target = self.target_azimuth(dir);
                let alpha = 1.0 - (-dt / self.lag_s.max(1e-6)).exp();
                azimuth += (target - azimuth) * alpha;
                azimuth += gaussian(rng, self.azimuth_jitter_rad) * dt.sqrt();
                // Elevation wanders slowly around its mean.
                let e_pull = (self.elevation_rad - elevation) * (dt / 1.0);
                elevation += e_pull + gaussian(rng, self.elevation_jitter_rad) * dt.sqrt();
            }
            out.push(PenPose {
                t: tp.t,
                tip: tp.pos.with_z(0.0),
                dipole: Self::dipole_from_angles(azimuth, elevation),
                azimuth,
                elevation,
            });
        }
        out
    }
}

impl rf_core::json::ToJson for WristModel {
    fn to_json(&self) -> rf_core::Json {
        rf_core::Json::obj([
            ("gain_rad", rf_core::Json::Num(self.gain_rad)),
            ("lag_s", rf_core::Json::Num(self.lag_s)),
            ("rest_azimuth_rad", rf_core::Json::Num(self.rest_azimuth_rad)),
            ("elevation_rad", rf_core::Json::Num(self.elevation_rad)),
            ("elevation_jitter_rad", rf_core::Json::Num(self.elevation_jitter_rad)),
            ("azimuth_jitter_rad", rf_core::Json::Num(self.azimuth_jitter_rad)),
        ])
    }
}

impl rf_core::json::FromJson for WristModel {
    fn from_json(v: &rf_core::Json) -> Result<WristModel, rf_core::JsonError> {
        Ok(WristModel {
            gain_rad: v.req_f64("gain_rad")?,
            lag_s: v.req_f64("lag_s")?,
            rest_azimuth_rad: v.req_f64("rest_azimuth_rad")?,
            elevation_rad: v.req_f64("elevation_rad")?,
            elevation_jitter_rad: v.req_f64("elevation_jitter_rad")?,
            azimuth_jitter_rad: v.req_f64("azimuth_jitter_rad")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_core::rng::rng_from_seed;

    fn straight_path(dir: Vec2, n: usize) -> Vec<TimedPoint> {
        (0..n)
            .map(|i| TimedPoint { t: i as f64 * 0.01, pos: dir * (i as f64 * 0.001) })
            .collect()
    }

    fn quiet_wrist() -> WristModel {
        WristModel { azimuth_jitter_rad: 0.0, elevation_jitter_rad: 0.0, ..WristModel::default() }
    }

    #[test]
    fn rightward_motion_rotates_clockwise() {
        let w = quiet_wrist();
        let mut rng = rng_from_seed(1);
        let poses = w.animate(&straight_path(Vec2::new(1.0, 0.0), 200), &mut rng);
        let last = poses.last().unwrap();
        assert!(
            last.azimuth < FRAC_PI_2 - 0.9 * w.gain_rad,
            "azimuth should settle near π/2 − g, got {}",
            last.azimuth
        );
    }

    #[test]
    fn leftward_motion_rotates_counterclockwise() {
        let w = quiet_wrist();
        let mut rng = rng_from_seed(1);
        let poses = w.animate(&straight_path(Vec2::new(-1.0, 0.0), 200), &mut rng);
        assert!(poses.last().unwrap().azimuth > FRAC_PI_2 + 0.9 * w.gain_rad);
    }

    #[test]
    fn vertical_motion_leaves_azimuth_at_rest() {
        let w = quiet_wrist();
        let mut rng = rng_from_seed(1);
        let poses = w.animate(&straight_path(Vec2::new(0.0, 1.0), 200), &mut rng);
        assert!((poses.last().unwrap().azimuth - FRAC_PI_2).abs() < 1e-6);
    }

    #[test]
    fn stiff_wrist_barely_rotates() {
        let w = WristModel { gain_rad: 3f64.to_radians(), ..quiet_wrist() };
        let mut rng = rng_from_seed(1);
        let poses = w.animate(&straight_path(Vec2::new(1.0, 0.0), 200), &mut rng);
        let span = poses
            .iter()
            .map(|p| p.azimuth)
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), a| (lo.min(a), hi.max(a)));
        assert!(span.1 - span.0 < 4f64.to_radians());
    }

    #[test]
    fn lag_makes_rotation_gradual() {
        let w = quiet_wrist();
        let mut rng = rng_from_seed(1);
        let poses = w.animate(&straight_path(Vec2::new(1.0, 0.0), 200), &mut rng);
        // After one time constant (0.12 s = 12 samples) we are ~63 % of
        // the way; check we are neither instant nor frozen.
        let early = poses[12].azimuth;
        let settled = poses.last().unwrap().azimuth;
        assert!(early > settled + 0.05, "rotation must not be instantaneous");
        assert!(early < FRAC_PI_2 - 0.05, "rotation must have started");
    }

    #[test]
    fn dipole_matches_angles() {
        let d = WristModel::dipole_from_angles(FRAC_PI_2, 0.0);
        assert!((d.y - 1.0).abs() < 1e-12 && d.x.abs() < 1e-12 && d.z.abs() < 1e-12);
        let d = WristModel::dipole_from_angles(0.0, FRAC_PI_2);
        assert!((d.z - 1.0).abs() < 1e-12);
        // Always unit length.
        for (a, e) in [(0.3, 0.5), (2.0, -0.4), (5.0, 1.2)] {
            assert!((WristModel::dipole_from_angles(a, e).norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn poses_carry_input_timestamps_and_positions() {
        let w = WristModel::default();
        let mut rng = rng_from_seed(9);
        let path = straight_path(Vec2::new(0.5, 0.5), 10);
        let poses = w.animate(&path, &mut rng);
        assert_eq!(poses.len(), path.len());
        for (pose, tp) in poses.iter().zip(&path) {
            assert_eq!(pose.t, tp.t);
            assert_eq!(pose.tip.xy(), tp.pos);
            assert_eq!(pose.tip.z, 0.0);
        }
    }

    #[test]
    fn wrist_model_round_trips_through_json() {
        use rf_core::json::{FromJson, ToJson};
        let w = WristModel { gain_rad: 0.7, ..WristModel::default() };
        let text = w.to_json().to_json_string();
        let back = WristModel::from_json(&rf_core::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, w);
        assert!(WristModel::from_json(&rf_core::Json::parse("{}").unwrap()).is_err());
    }

    #[test]
    fn animation_is_deterministic_per_seed() {
        let w = WristModel::default();
        let path = straight_path(Vec2::new(1.0, 0.2), 50);
        let a = w.animate(&path, &mut rng_from_seed(4));
        let b = w.animate(&path, &mut rng_from_seed(4));
        assert_eq!(a, b);
    }
}
