//! Table 8: sensitivity to the inter-antenna mounting angle γ.
//!
//! Small γ keeps all three Fig. 8(c) sectors within the pen's natural
//! azimuth swing, so sector-boundary crossings (which correct the
//! azimuth estimate) happen often: accuracy is flat for γ ≤ 45° and
//! degrades at 60–75° when the pen rarely crosses a boundary.

use crate::exp::SWEEP_LETTERS;
use crate::report::Report;
use crate::runner::{letter_accuracy, run_letter_trials, RunOpts};
use crate::setup::TrialSetup;

/// Mounting angles swept, degrees.
pub const GAMMA_DEG: [f64; 5] = [15.0, 30.0, 45.0, 60.0, 75.0];

/// Run the γ sweep. Both the *physical rig* (antenna polarization axes)
/// and the algorithm's sector model follow the swept angle, as in the
/// paper ("we manually align the antenna orientation using a
/// protractor").
pub fn run(opts: &RunOpts) -> Vec<Report> {
    let mut report = Report::new(
        "table8",
        "Recognition accuracy vs inter-antenna angle γ",
        "92/90/91/85/80 % at 15/30/45/60/75° — flat then degrading",
    )
    .headers(vec!["γ (°)", "Accuracy (%)", "Trials"]);
    for (i, &g) in GAMMA_DEG.iter().enumerate() {
        let conditions: Vec<(char, TrialSetup)> = SWEEP_LETTERS
            .iter()
            .map(|&ch| {
                let mut s = TrialSetup::letter(ch);
                s.gamma_rad = g.to_radians();
                (ch, s)
            })
            .collect();
        let trials = run_letter_trials(
            &conditions,
            opts.trials.div_ceil(2).max(1),
            opts.seed.wrapping_add(100 + i as u64),
            opts,
        );
        report.push_row(vec![
            format!("{g:.0}"),
            format!("{:.0}", 100.0 * letter_accuracy(&trials)),
            trials.len().to_string(),
        ]);
    }
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{channel_for, TrackerKind};

    #[test]
    fn rig_polarization_follows_gamma() {
        for &g in &GAMMA_DEG {
            let ch = channel_for(TrackerKind::PolarDraw, g.to_radians(), 0.65);
            let p1 = ch.antennas[0].linear_axis().unwrap();
            let angle = p1.y.atan2(p1.x).to_degrees();
            assert!((angle - (90.0 + g)).abs() < 1e-6, "γ = {g}: axis at {angle}");
        }
    }
}
