//! Figure 9 / Table 3: two-antenna RSS trends during pen rotation
//! (γ = 30°).
//!
//! A scripted azimuth sweep (clockwise 150°→30°, then back) replaces the
//! human wrist so every window has a known true sector and rotation
//! sense; the experiment reports how often the Table 3 classifier
//! recovers them from the *measured* RSS trends.

use crate::report::Report;
use crate::runner::RunOpts;
use crate::setup::to_tag_poses;
use pen_sim::kinematics::{PenPose, WristModel};
use polardraw_core::model::{classify_rss_trend, Rotation, Sector};
use rf_core::Vec3;
use rf_physics::ChannelModel;
use rfid_sim::Reader;

const GAMMA_DEG: f64 = 30.0;

/// Scripted azimuth sweep under the whiteboard rig.
fn sweep_poses() -> Vec<PenPose> {
    let tip = Vec3::new(0.0, 0.7, 0.0);
    let dt = 0.002;
    let rate = 120f64.to_radians(); // matches wrist-transition speed (~6°/window)
    let (lo, hi) = (30f64.to_radians(), 150f64.to_radians());
    let mut poses = Vec::new();
    let mut t = 0.0;
    // Clockwise leg then counter-clockwise leg.
    for (from, dir) in [(hi, -1.0), (lo, 1.0)] {
        let duration = (hi - lo) / rate;
        let steps = (duration / dt) as usize;
        for i in 0..steps {
            let a = from + dir * rate * (i as f64 * dt);
            poses.push(PenPose {
                t,
                tip,
                dipole: WristModel::dipole_from_angles(a, 30f64.to_radians()),
                azimuth: a,
                elevation: 30f64.to_radians(),
            });
            t += dt;
        }
    }
    poses
}

/// Run the trend-classification audit.
pub fn run(opts: &RunOpts) -> Vec<Report> {
    let gamma = GAMMA_DEG.to_radians();
    let channel = ChannelModel::two_antenna_whiteboard(gamma, 0.56, 0.30);
    let reader = Reader::new(channel);
    let poses = sweep_poses();
    let reports = reader.inventory(&to_tag_poses(&poses), opts.seed);

    // Window RSS per antenna (50 ms).
    let windows = polardraw_core::preprocess::preprocess(
        &reports,
        &polardraw_core::preprocess::PreprocessConfig::default(),
    );

    let true_state = |t: f64| -> (Sector, Rotation) {
        let idx = poses.iter().position(|p| p.t >= t).unwrap_or(poses.len() - 1);
        let a = poses[idx].azimuth;
        let prev = poses[idx.saturating_sub(10)].azimuth;
        let rot = if a < prev { Rotation::Clockwise } else { Rotation::CounterClockwise };
        (Sector::of_azimuth(a, gamma), rot)
    };

    let mut per_sector: std::collections::HashMap<&'static str, (usize, usize)> =
        std::collections::HashMap::new();
    for pair in windows.windows(2) {
        let (Some(a0), Some(b0), Some(a1), Some(b1)) =
            (pair[0].rssi[0], pair[0].rssi[1], pair[1].rssi[0], pair[1].rssi[1])
        else {
            continue;
        };
        let (ds1, ds2) = (a1 - a0, b1 - b0);
        if ds1.abs() < 0.8 || ds2.abs() < 0.8 {
            continue; // below the sign-confidence floor
        }
        let Some((sector, rotation)) = classify_rss_trend(ds1, ds2) else { continue };
        let (true_sector, true_rot) = true_state(pair[1].t);
        let key = match true_sector {
            Sector::One => "Sector 1",
            Sector::Two => "Sector 2",
            Sector::Three => "Sector 3",
        };
        let entry = per_sector.entry(key).or_insert((0, 0));
        entry.1 += 1;
        if sector == true_sector && rotation == true_rot {
            entry.0 += 1;
        }
    }

    let mut report = Report::new(
        "fig09",
        "Table 3 sector/direction decoding from measured RSS trends (γ = 30°)",
        "RSS trends separate the three sectors and both rotation senses",
    )
    .headers(vec!["True sector", "Classified windows", "Correct (sector+sense)", "Rate (%)"]);
    let mut keys: Vec<&&str> = per_sector.keys().collect();
    keys.sort();
    for key in keys {
        let (ok, total) = per_sector[*key];
        report.push_row(vec![
            key.to_string(),
            total.to_string(),
            ok.to_string(),
            format!("{:.0}", 100.0 * ok as f64 / total.max(1) as f64),
        ]);
    }
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_sectors_both_ways() {
        let poses = sweep_poses();
        let gamma = GAMMA_DEG.to_radians();
        let sectors: std::collections::HashSet<_> = poses
            .iter()
            .map(|p| format!("{:?}", Sector::of_azimuth(p.azimuth, gamma)))
            .collect();
        assert_eq!(sectors.len(), 3, "sweep must visit all three sectors");
        // Azimuth goes down then up.
        let n = poses.len();
        assert!(poses[n / 4].azimuth > poses[n / 2 - 10].azimuth);
        assert!(poses[3 * n / 4].azimuth > poses[n / 2 + 10].azimuth);
    }
}
