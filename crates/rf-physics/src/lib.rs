//! # rf-physics — electromagnetic substrate for the PolarDraw reproduction
//!
//! The paper's measurements come from real UHF RFID hardware in a
//! cluttered office. This crate replaces that hardware with a
//! physics-grade simulation of the monostatic backscatter link:
//!
//! * [`polarization`] — the heart of the paper: coupling between a
//!   linearly-polarized reader antenna and the tag's dipole, computed by
//!   full 3-D projection onto the plane transverse to the line of sight.
//!   Reproduces the cos β law of Figure 1/3(b).
//! * [`antenna`] — linearly/circularly polarized antenna models with
//!   patch-like gain patterns.
//! * [`propagation`] — free-space and log-distance path loss.
//! * [`multipath`] — image-method planar reflectors (walls, the
//!   whiteboard's surroundings) and a bystander scatterer (static or
//!   walking), both of which rotate polarization on reflection. These
//!   produce the "spurious" phase readings of §2 that PolarDraw's
//!   pre-processing must reject, and the interference regimes of Fig. 16.
//! * [`channel`] — composes everything into a time-varying complex
//!   channel: one-way field sum `F = Σ_p f_p`, round-trip backscatter
//!   `h = m·F²`, forward tag power for the sensitivity gate.
//! * [`noise`] — thermal floor, RSS and phase measurement noise.
//! * [`spectrum`] — the FCC 902–928 MHz channel plan with an optional
//!   frequency-hopping sequence (the paper implicitly uses per-channel
//!   processing; fixed-channel is the default).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod antenna;
pub mod channel;
pub mod multipath;
pub mod noise;
pub mod polarization;
pub mod propagation;
pub mod spectrum;

pub use antenna::{Antenna, Polarization};
pub use channel::{ChannelModel, LinkObservation};
pub use multipath::{Bystander, BystanderMotion, Reflector};
pub use noise::NoiseModel;
pub use spectrum::ChannelPlan;
