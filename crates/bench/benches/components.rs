//! Component micro-benchmarks: the physics substrate and the stages of
//! the PolarDraw pipeline. Backs the §3.5 real-time claim: one 50 ms
//! window must be processable in far less than 50 ms.

use criterion::{criterion_group, criterion_main, Criterion};
use polardraw_bench::letter_reports;
use polardraw_core::hmm::{viterbi, Grid, HmmConfig, StepObservation};
use polardraw_core::preprocess::{preprocess, PreprocessConfig};
use rf_core::{Vec2, Vec3};
use rf_physics::ChannelModel;
use std::hint::black_box;

fn bench_channel_evaluate(c: &mut Criterion) {
    let ch = ChannelModel::two_antenna_whiteboard(15f64.to_radians(), 0.56, 0.30);
    let dipole = Vec3::new(0.1, 0.95, 0.3).normalized().unwrap();
    c.bench_function("channel/evaluate_one_link", |b| {
        b.iter(|| {
            black_box(ch.evaluate(0, black_box(Vec3::new(0.0, 0.7, 0.0)), dipole, 0.1));
        })
    });
}

fn bench_gen2_round(c: &mut Criterion) {
    let cfg = rfid_sim::gen2::Gen2Config::default();
    c.bench_function("gen2/round_timing", |b| {
        b.iter(|| black_box(cfg.successful_round_duration() + cfg.empty_round_duration()))
    });
}

fn bench_preprocess(c: &mut Criterion) {
    let reports = letter_reports('W', 7);
    let cfg = PreprocessConfig::default();
    c.bench_function("polardraw/preprocess_letter_stream", |b| {
        b.iter(|| black_box(preprocess(black_box(&reports), &cfg)))
    });
}

fn bench_viterbi(c: &mut Criterion) {
    let mut c = c.benchmark_group("viterbi");
    c.sample_size(10);
    c.measurement_time(std::time::Duration::from_secs(10));
    let grid = Grid::covering(Vec2::new(-0.3, 0.5), Vec2::new(0.3, 0.9), 0.0025);
    let rig = [Vec3::new(-0.28, 0.15, 0.65), Vec3::new(0.28, 0.15, 0.65)];
    let steps: Vec<StepObservation> = (0..100)
        .map(|i| StepObservation {
            region: polardraw_core::distance::FeasibleRegion {
                min_dist: 0.002,
                max_dist: 0.01,
            },
            direction: Some(Vec2::from_angle(i as f64 * 0.1)),
            dtheta21: Some(0.3),
            target_dist: 0.004,
        })
        .collect();
    c.bench_function("polardraw/viterbi_100_steps", |b| {
        b.iter(|| {
            black_box(viterbi(
                &grid,
                rig,
                Vec2::new(0.0, 0.7),
                black_box(&steps),
                &HmmConfig::default(),
            ))
        })
    });
    c.finish();
}

fn bench_full_inventory(c: &mut Criterion) {
    let mut g = c.benchmark_group("rfid");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(10));
    g.bench_function("inventory_one_letter_session", |b| {
        b.iter(|| black_box(letter_reports('I', 9)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_channel_evaluate,
    bench_gen2_round,
    bench_preprocess,
    bench_viterbi,
    bench_full_inventory
);
criterion_main!(benches);
