//! HMM trajectory decoding (§3.5, Eqs. 8–11).
//!
//! The whiteboard is discretized into equal cells; the hidden state is
//! the cell containing the pen. Transitions (Eq. 8) are uniform over the
//! feasible annulus — displacement between `max_j |Δl_j|` and
//! `v_max·Δt`. Emissions (Eq. 11) weight a candidate cell by (a) how
//! well its theoretical inter-antenna phase difference matches the
//! measurement (the hyperbola constraint, Fig. 12(c)) and (b) how close
//! it lies to the ray from the previous cell along the estimated moving
//! direction (Fig. 12(b)). Viterbi then extracts the most likely cell
//! sequence; complexity is linear in steps × cells × annulus size, which
//! is what lets the paper claim real-time decoding on a mini PC.
//!
//! Implementation note: the paper multiplies two `1 − x/…` factors; we
//! score in log-space with configurable sharpness weights, which
//! preserves the ranking the paper's product induces while letting the
//! ablation benches explore the weighting (see DESIGN.md).

use crate::distance::{expected_dtheta21, FeasibleRegion};
use rf_core::{wrap_pi, Vec2, Vec3};

/// A uniform cell grid over the board region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grid {
    /// Minimum corner of the board region, metres.
    pub min: Vec2,
    /// Cell edge, metres.
    pub cell_m: f64,
    /// Cells along X.
    pub nx: usize,
    /// Cells along Y.
    pub ny: usize,
}

impl Grid {
    /// Build a grid covering `[min, max]` with the given cell size.
    pub fn covering(min: Vec2, max: Vec2, cell_m: f64) -> Grid {
        assert!(cell_m > 0.0, "cell size must be positive");
        assert!(max.x > min.x && max.y > min.y, "degenerate board region");
        let nx = ((max.x - min.x) / cell_m).ceil() as usize + 1;
        let ny = ((max.y - min.y) / cell_m).ceil() as usize + 1;
        Grid { min, cell_m, nx, ny }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// Whether the grid is empty (never true for `covering`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Centre of cell `idx`.
    pub fn center(&self, idx: usize) -> Vec2 {
        let ix = idx % self.nx;
        let iy = idx / self.nx;
        Vec2::new(
            self.min.x + (ix as f64 + 0.5) * self.cell_m,
            self.min.y + (iy as f64 + 0.5) * self.cell_m,
        )
    }

    /// Cell index containing a point (clamped to the grid).
    pub fn index_of(&self, p: Vec2) -> usize {
        let ix = (((p.x - self.min.x) / self.cell_m).floor() as isize)
            .clamp(0, self.nx as isize - 1) as usize;
        let iy = (((p.y - self.min.y) / self.cell_m).floor() as isize)
            .clamp(0, self.ny as isize - 1) as usize;
        iy * self.nx + ix
    }

    /// Indices of cells whose centres lie within `radius` of cell
    /// `from`'s centre.
    pub fn neighbourhood(&self, from: usize, radius: f64) -> Vec<usize> {
        let c = self.center(from);
        let r_cells = (radius / self.cell_m).ceil() as isize + 1;
        let ix0 = (from % self.nx) as isize;
        let iy0 = (from / self.nx) as isize;
        let mut out = Vec::new();
        for dy in -r_cells..=r_cells {
            for dx in -r_cells..=r_cells {
                let ix = ix0 + dx;
                let iy = iy0 + dy;
                if ix < 0 || iy < 0 || ix >= self.nx as isize || iy >= self.ny as isize {
                    continue;
                }
                let idx = iy as usize * self.nx + ix as usize;
                if self.center(idx).distance(c) <= radius + 1e-12 {
                    out.push(idx);
                }
            }
        }
        out
    }
}

/// Per-step observation fed to the decoder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepObservation {
    /// Feasible displacement annulus (Eq. 8's bounds).
    pub region: FeasibleRegion,
    /// Estimated moving direction (unit), if any.
    pub direction: Option<Vec2>,
    /// Calibrated inter-antenna phase difference measurement, radians
    /// wrapped to `(−π, π]`, if both antennas reported.
    pub dtheta21: Option<f64>,
    /// Displacement estimate along the direction line, metres — the
    /// Fig. 12(b)×(c) intersection: each antenna's range change divided
    /// by the projection of its line-of-sight onto the moving direction.
    /// Falls back to the annulus lower bound when no direction is known.
    pub target_dist: f64,
}

/// Decoder tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HmmConfig {
    /// Cell edge, metres (accuracy/runtime trade-off).
    pub cell_m: f64,
    /// Carrier wavelength, metres.
    pub wavelength_m: f64,
    /// Log-score weight of the hyperbola term.
    pub hyperbola_weight: f64,
    /// Log-score weight of the direction-line term.
    pub direction_weight: f64,
    /// Multiplicative log-penalty for candidates *behind* the moving
    /// direction (Fig. 12(b) keeps only forward candidates).
    pub backward_penalty: f64,
    /// Log-score weight pulling the decoded displacement toward the
    /// phase-measured amount (the annulus lower bound). This is what
    /// keeps a still pen still and a moving pen moving at its measured
    /// speed despite cell quantization.
    pub distance_weight: f64,
    /// Distance weight used when *no* direction estimate exists for the
    /// step. Horizontal pen motion is nearly tangential to both
    /// antennas — per-antenna phases stay flat and the step classifies
    /// as "still" — but the inter-antenna difference Δθ^{2,1} still
    /// moves (its iso-lines run mostly vertically). A softer anchor
    /// lets the hyperbola term drag the track sideways in that regime.
    pub distance_weight_still: f64,
}

/// Beam width for the sparse Viterbi frontier (see [`viterbi`]).
pub const DEFAULT_BEAM_WIDTH: usize = 2500;

impl Default for HmmConfig {
    fn default() -> Self {
        HmmConfig {
            cell_m: 0.0025,
            wavelength_m: 0.3276,
            hyperbola_weight: 10.0,
            direction_weight: 6.0,
            backward_penalty: 4.0,
            distance_weight: 5.0,
            distance_weight_still: 1.5,
        }
    }
}

/// Viterbi decoding of the cell sequence, with a sparse beam frontier.
///
/// * `grid` — the state space.
/// * `antenna_xy` — antenna positions projected on the board.
/// * `start` — initial position estimate (the paper bootstraps from an
///   arbitrary point on a measured hyperbola; relative trajectories are
///   evaluated Procrustes-style so the translation washes out).
/// * `steps` — one observation per window transition.
///
/// Exact Viterbi over the full grid would cost `steps × cells ×
/// annulus`; since the posterior is sharply unimodal (the pen is one
/// object), we keep only the best [`DEFAULT_BEAM_WIDTH`] cells per step.
/// This is the standard beam approximation; the paper's linear-time
/// claim (§3.5) corresponds to the same pruned regime.
///
/// Returns one position per step (the position *after* each step).
pub fn viterbi(
    grid: &Grid,
    antennas: [Vec3; 2],
    start: Vec2,
    steps: &[StepObservation],
    config: &HmmConfig,
) -> Vec<Vec2> {
    viterbi_beam(grid, antennas, start, steps, config, DEFAULT_BEAM_WIDTH)
}

/// [`viterbi`] with an explicit beam width (ablation hook).
pub fn viterbi_beam(
    grid: &Grid,
    antennas: [Vec3; 2],
    start: Vec2,
    steps: &[StepObservation],
    config: &HmmConfig,
    beam_width: usize,
) -> Vec<Vec2> {
    if steps.is_empty() {
        return Vec::new();
    }
    let beam_width = beam_width.max(8);
    let n = grid.len();
    // Frontier: (cell, score) pairs; backpointer log per step.
    let mut frontier: Vec<(u32, f64)> = vec![(grid.index_of(start) as u32, 0.0)];
    let mut backptr: Vec<std::collections::HashMap<u32, u32>> = Vec::with_capacity(steps.len());
    // Dense scratch (score, backpointer) reused across steps; `touched`
    // tracks which entries to reset, keeping each step O(frontier ×
    // annulus) instead of O(cells).
    let mut dense: Vec<(f64, u32)> = vec![(f64::NEG_INFINITY, u32::MAX); n];
    let mut touched: Vec<u32> = Vec::new();

    for obs in steps {
        let max_r = obs.region.max_dist.max(grid.cell_m);
        let dmax = max_r;
        let target = obs.target_dist.min(obs.region.max_dist);
        // Outlier suppression: a candidate well below the (already
        // noise-compensated) lower bound is rejected outright — Eq. 8's
        // hard annulus with generous quantization slack.
        let hard_min = obs.region.min_dist - 2.0 * grid.cell_m;

        for &(from, s_from) in &frontier {
            let c_from = grid.center(from as usize);
            for to in grid.neighbourhood(from as usize, max_r) {
                let c_to = grid.center(to);
                let delta = c_to - c_from;
                let d = delta.norm();
                if d < hard_min {
                    continue;
                }
                let mut s = s_from;
                // Hyperbola term (Fig. 12(c)).
                if let Some(meas) = obs.dtheta21 {
                    let expected = expected_dtheta21(c_to, antennas, config.wavelength_m);
                    let err = wrap_pi(meas - expected).abs() / std::f64::consts::PI;
                    s -= config.hyperbola_weight * err;
                }
                // Distance-consistency term: decoded step length should
                // match the phase-measured displacement.
                let (d_along, w_dist) = match obs.direction {
                    Some(dir) => (dir.dot(delta), config.distance_weight),
                    None => (d, config.distance_weight_still),
                };
                s -= w_dist * ((d_along - target).abs() / dmax).min(2.0);
                // Direction-line term (Fig. 12(b)).
                if let Some(dir) = obs.direction {
                    if d > 1e-12 {
                        let perp = dir.cross(delta).abs();
                        s -= config.direction_weight * (perp / dmax).min(2.0);
                        if dir.dot(delta) < 0.0 {
                            s -= config.backward_penalty;
                        }
                    }
                }
                let entry = &mut dense[to];
                if entry.0 == f64::NEG_INFINITY && entry.1 == u32::MAX {
                    touched.push(to as u32);
                }
                if s > entry.0 {
                    *entry = (s, from);
                }
            }
        }

        if touched.is_empty() {
            // Inconsistent step: carry the frontier through unchanged.
            let bp: std::collections::HashMap<u32, u32> =
                frontier.iter().map(|&(c, _)| (c, c)).collect();
            backptr.push(bp);
            continue;
        }

        let mut next: Vec<(u32, f64)> =
            touched.iter().map(|&c| (c, dense[c as usize].0)).collect();
        // Keep the top `beam_width` states.
        next.sort_unstable_by(|a, b| b.1.total_cmp(&a.1));
        next.truncate(beam_width);
        let bp: std::collections::HashMap<u32, u32> = next
            .iter()
            .map(|&(c, _)| (c, dense[c as usize].1))
            .collect();
        backptr.push(bp);
        for &c in &touched {
            dense[c as usize] = (f64::NEG_INFINITY, u32::MAX);
        }
        touched.clear();
        frontier = next;
    }

    // Backtrack from the best final state.
    let mut idx = frontier
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|&(c, _)| c)
        .unwrap_or(0);
    let mut rev = Vec::with_capacity(steps.len());
    for bp in backptr.iter().rev() {
        rev.push(grid.center(idx as usize));
        match bp.get(&idx) {
            Some(&prev) => idx = prev,
            None => break,
        }
    }
    rev.reverse();
    rev
}

/// Eq. 10: rotate a trajectory about its first point by `−error_rad`
/// to undo the residual initial-azimuth error.
pub fn rotate_trajectory(points: &[Vec2], error_rad: f64) -> Vec<Vec2> {
    let pivot = match points.first() {
        Some(&p) => p,
        None => return Vec::new(),
    };
    let rot = rf_core::Mat2::rotation(-error_rad);
    points.iter().map(|&p| pivot + rot.apply(p - pivot)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> Grid {
        Grid::covering(Vec2::new(0.0, 0.0), Vec2::new(0.2, 0.1), 0.01)
    }

    fn rig() -> [Vec3; 2] {
        [Vec3::new(-0.28, 0.15, 0.65), Vec3::new(0.28, 0.15, 0.65)]
    }

    #[test]
    fn grid_indexing_round_trips() {
        let g = small_grid();
        for idx in [0, 5, g.len() - 1, g.nx + 3] {
            let c = g.center(idx);
            assert_eq!(g.index_of(c), idx);
        }
    }

    #[test]
    fn grid_clamps_out_of_range_points() {
        let g = small_grid();
        let idx = g.index_of(Vec2::new(-5.0, -5.0));
        assert_eq!(idx, 0);
        let idx = g.index_of(Vec2::new(5.0, 5.0));
        assert_eq!(idx, g.len() - 1);
    }

    #[test]
    fn neighbourhood_radius_is_respected() {
        let g = small_grid();
        let from = g.index_of(Vec2::new(0.1, 0.05));
        let hood = g.neighbourhood(from, 0.02);
        assert!(hood.contains(&from));
        for &idx in &hood {
            assert!(g.center(idx).distance(g.center(from)) <= 0.02 + 1e-9);
        }
        // 2-cell radius: at most a 5×5 patch.
        assert!(hood.len() <= 25);
    }

    #[test]
    fn neighbourhood_clips_at_edges() {
        let g = small_grid();
        let hood = g.neighbourhood(0, 0.02);
        assert!(!hood.is_empty());
        assert!(hood.iter().all(|&i| i < g.len()));
    }

    fn moving_step(min_dist: f64, max_dist: f64, dir: Option<Vec2>) -> StepObservation {
        StepObservation {
            region: FeasibleRegion { min_dist, max_dist },
            direction: dir,
            dtheta21: None,
            target_dist: min_dist,
        }
    }

    #[test]
    fn direction_prior_drives_a_straight_track() {
        let g = small_grid();
        let start = Vec2::new(0.02, 0.05);
        let dir = Vec2::new(1.0, 0.0);
        // Phase measures ~8 mm of motion per step along `dir`.
        let steps: Vec<StepObservation> =
            (0..10).map(|_| moving_step(0.008, 0.012, Some(dir))).collect();
        let track = viterbi(&g, rig(), start, &steps, &HmmConfig::default());
        assert_eq!(track.len(), 10);
        let end = track.last().unwrap();
        assert!(end.x > start.x + 0.05, "track must progress rightward, got {end:?}");
        assert!((end.y - start.y).abs() < 0.02, "and stay level");
    }

    #[test]
    fn annulus_lower_bound_forces_motion() {
        let g = small_grid();
        let start = Vec2::new(0.02, 0.05);
        let steps: Vec<StepObservation> = (0..5)
            .map(|_| StepObservation {
                region: FeasibleRegion { min_dist: 0.009, max_dist: 0.012 },
                direction: Some(Vec2::new(1.0, 0.0)),
                dtheta21: None,
                target_dist: 0.009,
            })
            .collect();
        let track = viterbi(&g, rig(), start, &steps, &HmmConfig::default());
        for w in track.windows(2) {
            let d = w[0].distance(w[1]);
            assert!(d > 0.004, "lower bound must prevent standing still, step {d}");
        }
    }

    #[test]
    fn hyperbola_term_pulls_toward_consistent_cells() {
        let g = Grid::covering(Vec2::new(-0.1, 0.55), Vec2::new(0.1, 0.75), 0.01);
        let rig = rig();
        let cfg = HmmConfig::default();
        let target = Vec2::new(0.06, 0.65);
        let meas = expected_dtheta21(target, rig, cfg.wavelength_m);
        // No direction prior; generous annulus; repeated consistent
        // measurements should walk the track onto the target hyperbola.
        let steps: Vec<StepObservation> = (0..12)
            .map(|_| StepObservation {
                region: FeasibleRegion { min_dist: 0.01, max_dist: 0.015 },
                direction: None,
                dtheta21: Some(meas),
                target_dist: 0.01,
            })
            .collect();
        let track = viterbi(&g, rig, Vec2::new(-0.05, 0.65), &steps, &cfg);
        let end = *track.last().unwrap();
        let end_err = wrap_pi(expected_dtheta21(end, rig, cfg.wavelength_m) - meas).abs();
        let start_err =
            wrap_pi(expected_dtheta21(Vec2::new(-0.05, 0.65), rig, cfg.wavelength_m) - meas)
                .abs();
        assert!(
            end_err < start_err * 0.5,
            "end phase error {end_err} should beat start {start_err}"
        );
    }

    #[test]
    fn empty_steps_give_empty_track() {
        let g = small_grid();
        assert!(viterbi(&g, rig(), Vec2::ZERO, &[], &HmmConfig::default()).is_empty());
    }

    #[test]
    fn inconsistent_annulus_does_not_derail_decoding() {
        let g = small_grid();
        let start = Vec2::new(0.05, 0.05);
        let mut steps: Vec<StepObservation> =
            (0..4).map(|_| moving_step(0.006, 0.012, Some(Vec2::new(1.0, 0.0)))).collect();
        // Impossible step: min > max (a spurious reading survived).
        steps.insert(
            2,
            StepObservation {
                region: FeasibleRegion { min_dist: 0.08, max_dist: 0.012 },
                direction: None,
                dtheta21: None,
                target_dist: 0.012,
            },
        );
        let track = viterbi(&g, rig(), start, &steps, &HmmConfig::default());
        assert_eq!(track.len(), steps.len(), "decoder must survive the bad step");
    }

    #[test]
    fn rotate_trajectory_pivots_on_first_point() {
        let pts = vec![Vec2::new(1.0, 1.0), Vec2::new(2.0, 1.0)];
        let rot = rotate_trajectory(&pts, std::f64::consts::FRAC_PI_2);
        assert_eq!(rot[0], pts[0], "pivot is fixed");
        // Rotating by −π/2 (cw on screen) maps +X offset to −Y... in our
        // y-down convention: (x=0, y=−1) offset.
        assert!((rot[1].x - 1.0).abs() < 1e-12);
        assert!((rot[1].y - 0.0).abs() < 1e-12);
    }

    #[test]
    fn rotate_empty_trajectory() {
        assert!(rotate_trajectory(&[], 1.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_grid_panics() {
        Grid::covering(Vec2::new(0.0, 0.0), Vec2::new(-1.0, 1.0), 0.01);
    }
}
