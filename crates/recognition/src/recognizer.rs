//! Template recognizers for letters and dictionary words.
//!
//! The LipiTk substitute: templates are rendered from the same glyph
//! definitions `pen-sim` writes with (including the inter-stroke
//! transition segments a continuously-read tag records), resampled and
//! normalized, then matched by rotation-constrained Procrustes residual.
//! Constraining rotation to ±30° is essential: free rotation would map
//! `M` exactly onto `W` and `Z` nearly onto `N`.

use crate::dtw::{dtw_distance, sakoe_chiba_band};
use crate::procrustes::align;
use crate::resample::prepare_whitened;
use pen_sim::path::{join_strokes, place_glyph};
use rf_core::Vec2;

/// Points per prepared trajectory.
pub const TEMPLATE_POINTS: usize = 64;
/// Rotation clamp for letter matching, radians. Free rotation would map
/// `M` onto `W`; a modest clamp absorbs residual tracker rotation
/// without folding the alphabet onto itself.
pub const MAX_MATCH_ROTATION: f64 = 20.0 * std::f64::consts::PI / 180.0;
/// Weight of the DTW term in the ensemble match cost (0 disables).
/// Procrustes alone won the recognizer sweep on tracked trajectories;
/// the DTW term is kept for the ablation benches.
pub const DTW_WEIGHT: f64 = 0.0;
/// Sakoe–Chiba band half-width for the ensemble's DTW term: ~10% of the
/// resample length ([`sakoe_chiba_band`]), the classic constraint that
/// forbids degenerate warpings and cuts the DP cost ~5×. On clean
/// glyphs banded and unbanded DTW agree (see tests); the band only
/// bites on pathological alignments.
pub const DTW_BAND: usize = sakoe_chiba_band(TEMPLATE_POINTS);

fn match_cost(template: &[Vec2], prepared: &[Vec2]) -> Option<f64> {
    let a = align(template, prepared, MAX_MATCH_ROTATION)?;
    if DTW_WEIGHT == 0.0 {
        return Some(a.rms_residual);
    }
    let dtw = dtw_distance(template, &a.aligned, DTW_BAND)?;
    Some(a.rms_residual + DTW_WEIGHT * dtw)
}

/// A ranked recognition candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate<L> {
    /// The candidate label.
    pub label: L,
    /// Match cost (normalized Procrustes RMS residual; lower = better).
    pub cost: f64,
}

fn render_template(text: &str) -> Option<Vec<Vec2>> {
    let size = 1.0;
    let advance = size * 0.7 + size * 0.25;
    let mut strokes = Vec::new();
    let mut cursor = Vec2::ZERO;
    for ch in text.chars() {
        let g = pen_sim::glyph(ch)?;
        strokes.extend(place_glyph(&g, cursor, size));
        cursor.x += advance;
    }
    let polyline = join_strokes(&strokes);
    prepare_whitened(&polyline, TEMPLATE_POINTS)
}

/// Nearest-template recognizer over the uppercase alphabet.
#[derive(Debug, Clone)]
pub struct LetterRecognizer {
    templates: Vec<(char, Vec<Vec2>)>,
}

impl Default for LetterRecognizer {
    fn default() -> Self {
        Self::new()
    }
}

impl LetterRecognizer {
    /// Build the recognizer (renders all 26 templates once).
    pub fn new() -> LetterRecognizer {
        let templates = pen_sim::glyph::ALPHABET
            .iter()
            .filter_map(|&ch| Some((ch, render_template(&ch.to_string())?)))
            .collect();
        LetterRecognizer { templates }
    }

    /// Rank all letters for a recovered trajectory, best first.
    /// Empty when the trajectory is degenerate.
    pub fn rank(&self, trajectory: &[Vec2]) -> Vec<Candidate<char>> {
        let prepared = match prepare_whitened(trajectory, TEMPLATE_POINTS) {
            Some(p) => p,
            None => return Vec::new(),
        };
        let mut out: Vec<Candidate<char>> = self
            .templates
            .iter()
            .filter_map(|(ch, tpl)| {
                match_cost(tpl, &prepared).map(|cost| Candidate { label: *ch, cost })
            })
            .collect();
        out.sort_by(|a, b| a.cost.total_cmp(&b.cost));
        out
    }

    /// Best-match letter; `None` for degenerate input.
    pub fn classify(&self, trajectory: &[Vec2]) -> Option<char> {
        self.rank(trajectory).first().map(|c| c.label)
    }
}

/// Dictionary-constrained word recognizer: whole-word templates, as the
/// Fig. 18 experiment requires (candidates are the 10 words per group).
#[derive(Debug, Clone)]
pub struct WordRecognizer {
    templates: Vec<(String, Vec<Vec2>)>,
}

impl WordRecognizer {
    /// Build from a candidate dictionary.
    pub fn new<S: AsRef<str>>(dictionary: &[S]) -> WordRecognizer {
        let templates = dictionary
            .iter()
            .filter_map(|w| {
                let w = w.as_ref().to_ascii_uppercase();
                Some((w.clone(), render_template(&w)?))
            })
            .collect();
        WordRecognizer { templates }
    }

    /// Rank the dictionary for a recovered trajectory, best first.
    pub fn rank(&self, trajectory: &[Vec2]) -> Vec<Candidate<String>> {
        let prepared = match prepare_whitened(trajectory, TEMPLATE_POINTS) {
            Some(p) => p,
            None => return Vec::new(),
        };
        let mut out: Vec<Candidate<String>> = self
            .templates
            .iter()
            .filter_map(|(w, tpl)| {
                match_cost(tpl, &prepared).map(|cost| Candidate { label: w.clone(), cost })
            })
            .collect();
        out.sort_by(|a, b| a.cost.total_cmp(&b.cost));
        out
    }

    /// Best-match word; `None` for degenerate input or empty dictionary.
    pub fn classify(&self, trajectory: &[Vec2]) -> Option<String> {
        self.rank(trajectory).first().map(|c| c.label.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pen_sim::scene::{write_text, Scene};
    use pen_sim::WriterProfile;

    fn clean_trajectory(text: &str, seed: u64) -> Vec<Vec2> {
        write_text(&Scene::default(), &WriterProfile::natural(), text, seed).truth.points
    }

    #[test]
    fn recognizes_clean_ground_truth_letters() {
        let rec = LetterRecognizer::new();
        // The ground-truth pen path is the glyph itself (plus constant
        // speed sampling): every letter must classify correctly.
        for ch in pen_sim::glyph::ALPHABET {
            let traj = clean_trajectory(&ch.to_string(), 7);
            assert_eq!(rec.classify(&traj), Some(ch), "letter {ch}");
        }
    }

    #[test]
    fn m_and_w_are_not_interchangeable() {
        let rec = LetterRecognizer::new();
        let w = clean_trajectory("W", 3);
        // Flip vertically: a W becomes an M shape; the rotation clamp
        // must prevent the W template from claiming it.
        let flipped: Vec<Vec2> = w.iter().map(|p| Vec2::new(p.x, -p.y)).collect();
        let got = rec.classify(&flipped);
        assert_ne!(got, Some('W'), "vertically flipped W must not match W");
    }

    #[test]
    fn noisy_trajectories_still_classify() {
        let rec = LetterRecognizer::new();
        let mut rng_state = 0x12345u64;
        let mut noise = || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 33) as f64 / 2f64.powi(31) - 1.0) * 0.008
        };
        let mut ok = 0;
        let letters = ['C', 'L', 'O', 'S', 'V', 'Z'];
        for ch in letters {
            let traj: Vec<Vec2> = clean_trajectory(&ch.to_string(), 5)
                .iter()
                .map(|p| Vec2::new(p.x + noise(), p.y + noise()))
                .collect();
            if rec.classify(&traj) == Some(ch) {
                ok += 1;
            }
        }
        assert!(ok >= 5, "only {ok}/{} noisy letters recognized", letters.len());
    }

    /// The default band must not change what the DTW term measures on
    /// clean glyphs: for every letter, banded and unbanded DTW between
    /// the prepared trajectory and its own template agree exactly
    /// (the optimal alignment stays inside the 10% band).
    #[test]
    fn banded_dtw_agrees_with_unbanded_on_clean_glyphs() {
        let rec = LetterRecognizer::new();
        for (ch, tpl) in &rec.templates {
            let traj = clean_trajectory(&ch.to_string(), 7);
            let prepared = prepare_whitened(&traj, TEMPLATE_POINTS).unwrap();
            let banded = dtw_distance(tpl, &prepared, DTW_BAND).unwrap();
            let free = dtw_distance(tpl, &prepared, usize::MAX).unwrap();
            assert!(
                (banded - free).abs() < 1e-9,
                "letter {ch}: banded {banded} vs unbanded {free}"
            );
        }
    }

    #[test]
    fn degenerate_input_returns_none() {
        let rec = LetterRecognizer::new();
        assert_eq!(rec.classify(&[]), None);
        assert_eq!(rec.classify(&[Vec2::ZERO; 10]), None);
        assert!(rec.rank(&[]).is_empty());
    }

    #[test]
    fn ranking_is_sorted_and_complete() {
        let rec = LetterRecognizer::new();
        let traj = clean_trajectory("Q", 2);
        let ranked = rec.rank(&traj);
        assert_eq!(ranked.len(), 26);
        for w in ranked.windows(2) {
            assert!(w[0].cost <= w[1].cost);
        }
        assert_eq!(ranked[0].label, 'Q');
    }

    #[test]
    fn word_recognizer_separates_dictionary_words() {
        let dict = ["CAT", "DOG", "PEN", "SKY"];
        let rec = WordRecognizer::new(&dict);
        for w in dict {
            let traj = clean_trajectory(w, 9);
            assert_eq!(rec.classify(&traj).as_deref(), Some(w), "word {w}");
        }
    }

    #[test]
    fn word_recognizer_handles_lowercase_dictionary() {
        let rec = WordRecognizer::new(&["cat", "dog"]);
        let traj = clean_trajectory("CAT", 1);
        assert_eq!(rec.classify(&traj).as_deref(), Some("CAT"));
    }

    #[test]
    fn empty_dictionary_never_classifies() {
        let rec = WordRecognizer::new::<&str>(&[]);
        let traj = clean_trajectory("CAT", 1);
        assert_eq!(rec.classify(&traj), None);
    }
}
