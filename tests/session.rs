//! Supervised-session recovery gates (tier-1, named in scripts/verify.sh).
//!
//! Pins the session layer's acceptance contract end to end — simulated
//! LLRP link → `SessionSupervisor` → `OnlineTracker` sink:
//!
//! 1. Under injected mid-glyph disconnects (Gilbert–Elliott presets
//!    plus a hard link outage), the session reconnects within the
//!    backoff schedule and the end-to-end Procrustes error stays within
//!    2× the clean-stream baseline — with zero panics across the
//!    derived-seed property sweep (`run_isolated` would surface one).
//! 2. A session killed mid-glyph and resumed from a checkpoint through
//!    the supervisor converges to bit-for-bit the uninterrupted
//!    supervised run.
//! 3. The hostile preset (worst sweep intensity: correlated loss, a
//!    single-port outage, aggressive reordering) plus garbage wire
//!    frames never panics and always yields a finite trail.

use experiments::setup::{polardraw_config_for, simulate_reports, TrialSetup};
use polardraw_core::{OnlineOptions, OnlineTracker, PolarDraw};
use recognition::procrustes_distance;
use rf_core::rng::derive_seed_indexed;
use rfid_sim::faults::FaultPlan;
use rfid_sim::session::{SessionConfig, SessionEvent, SessionSupervisor, SimulatedLink};
use rfid_sim::TagReport;

/// Coarse grid keeps the sweep fast; the gates here are about recovery
/// behaviour and relative error, not absolute paper-fidelity accuracy.
fn coarse_letter(ch: char) -> TrialSetup {
    TrialSetup::letter(ch).with_cell_scale(6.0)
}

fn span(reports: &[TagReport]) -> (f64, f64) {
    let lo = reports.iter().map(|r| r.t).fold(f64::INFINITY, f64::min);
    let hi = reports.iter().map(|r| r.t).fold(f64::NEG_INFINITY, f64::max);
    (lo, hi)
}

/// Drive one supervised session over `link`, tracking into a fresh
/// `OnlineTracker`, with panic isolation. Returns the supervisor (for
/// event/stat inspection) and the finalized trail points.
fn supervised_track(
    cfg: polardraw_core::PolarDrawConfig,
    link: SimulatedLink,
    session: SessionConfig,
    lag: usize,
    t_end: f64,
) -> (SessionSupervisor<SimulatedLink>, Vec<rf_core::Vec2>) {
    let mut sup = SessionSupervisor::new(session, link);
    let mut tracker = OnlineTracker::new(cfg, OnlineOptions { lag, hold: 2, ..OnlineOptions::default() });
    sup.run_isolated(&mut tracker, 0.0, t_end).expect("session must not panic");
    let out = tracker.finalize();
    (sup, out.trail.points)
}

#[test]
fn midglyph_disconnects_recover_within_2x_clean_baseline() {
    let session_cfg = SessionConfig::default();
    for (i, &ch) in ['L', 'S', 'W'].iter().enumerate() {
        for trial in 0..2u64 {
            let seed = derive_seed_indexed(0x5E55, "session.recovery", i as u64 * 10 + trial);

            // Clean-stream baseline: the batch tracker on the raw
            // (unfaulted, un-framed) stream.
            let clean_setup = coarse_letter(ch);
            let (truth, clean_reports) = simulate_reports(&clean_setup, seed);
            let cfg = polardraw_config_for(&clean_setup);
            let clean = PolarDraw::new(cfg).track_with_diagnostics(&clean_reports);
            let clean_err = procrustes_distance(&truth, &clean.trail.points, 64)
                .expect("clean baseline must produce a trail");

            // Same pen session, now through a flaky office (Gilbert–
            // Elliott bursts, duplication, reordering, clock faults) and
            // a reader link that hard-drops mid-glyph for 0.3 s.
            let mut setup = coarse_letter(ch);
            setup.faults = Some(FaultPlan::flaky_office());
            let (_, reports) = simulate_reports(&setup, seed);
            let (t_lo, t_hi) = span(&reports);
            let t_mid = 0.5 * (t_lo + t_hi);
            let link =
                SimulatedLink::from_reports(&reports, 0.05).with_outage(t_mid, t_mid + 0.3);

            // Lag 64 is the streaming default: enough hindsight that
            // losing a burst of windows costs an annulus widening, not
            // a committed wrong turn (lag 16 measurably exceeds 2× on
            // this sweep; the lag-accuracy tradeoff is the `streaming`
            // experiment's axis).
            let (sup, points) = supervised_track(cfg, link, session_cfg, 64, t_hi + 2.0);
            let stats = sup.stats();
            assert!(!stats.gave_up, "{ch}/{trial}: supervisor gave up: {stats:?}");
            assert!(stats.connects >= 2, "{ch}/{trial}: must reconnect: {stats:?}");

            // Reconnect must land within the worst-case backoff budget
            // of the outage's end (plus the watchdog time it takes to
            // notice the stall).
            let reconnect_t = sup
                .events()
                .iter()
                .filter_map(|e| match e {
                    SessionEvent::Reconnected { t, .. } => Some(*t),
                    _ => None,
                })
                .last()
                .expect("a Reconnected event");
            let budget = session_cfg
                .backoff
                .worst_case_total_s(session_cfg.max_reconnect_attempts);
            assert!(
                reconnect_t <= t_mid + 0.3 + session_cfg.t_watchdog_s + budget,
                "{ch}/{trial}: reconnected at {reconnect_t}, outside the schedule"
            );

            let err = procrustes_distance(&truth, &points, 64)
                .expect("supervised session must produce a trail");
            // The acceptance bound: within 2× the clean baseline. The
            // 5 mm absolute floor keeps an unusually sharp clean run on
            // a coarse grid from turning the ratio into a noise gate.
            let bound = (2.0 * clean_err).max(clean_err + 0.005);
            assert!(
                err <= bound,
                "{ch}/{trial}: supervised error {:.1} cm > bound {:.1} cm (clean {:.1} cm)",
                100.0 * err,
                100.0 * bound,
                100.0 * clean_err,
            );
        }
    }
}

#[test]
fn checkpoint_resume_through_supervisor_is_bitwise_uninterrupted() {
    let seed = derive_seed_indexed(0x5E55, "session.resume", 0);
    // The clean-lab preset: a pinned no-op, used here so the split/
    // uninterrupted comparison is about the session layer alone.
    let mut setup = coarse_letter('Z');
    setup.faults = Some(FaultPlan::clean_lab());
    let (_, reports) = simulate_reports(&setup, seed);
    let cfg = polardraw_config_for(&setup);
    let (t_lo, t_hi) = span(&reports);
    let t_end = t_hi + 1.0;
    let base_link = SimulatedLink::from_reports(&reports, 0.05);
    let options = OnlineOptions { lag: 12, hold: 2, ..OnlineOptions::default() };

    // The uninterrupted supervised run.
    let mut sup = SessionSupervisor::new(SessionConfig::default(), base_link.clone());
    let mut full = OnlineTracker::new(cfg, options);
    sup.run(&mut full, 0.0, t_end);
    let reference = full.finalize();
    assert!(!reference.trail.is_empty(), "reference run must track something");

    // Kill the session mid-glyph: run to t_cut, checkpoint the tracker
    // through JSON text, drop everything, then resume a fresh
    // supervisor + restored tracker over the rest of the wire stream.
    // `resume_after` continues exactly where the first leg's connection
    // stopped consuming (a time-based split can lose the frame whose
    // delivery instant falls between the first leg's final poll and
    // the cut time).
    let t_cut = t_lo + 0.5 * (t_hi - t_lo);
    let mut sup_a = SessionSupervisor::new(SessionConfig::default(), base_link.clone());
    let mut first_leg = OnlineTracker::new(cfg, options);
    sup_a.run(&mut first_leg, 0.0, t_cut);
    let checkpoint = first_leg.checkpoint_string();
    drop(first_leg);

    let mut resumed = OnlineTracker::restore_from_str(cfg, &checkpoint).expect("restore");
    let link_b = base_link.clone().resume_after(sup_a.link());
    drop(sup_a);
    let mut sup_b = SessionSupervisor::new(SessionConfig::default(), link_b);
    sup_b.run(&mut resumed, t_cut, t_end);
    let out = resumed.finalize();

    assert_eq!(out.trail.times.len(), reference.trail.times.len());
    for (a, b) in out.trail.points.iter().zip(&reference.trail.points) {
        assert_eq!(a.x.to_bits(), b.x.to_bits(), "resumed trail diverged");
        assert_eq!(a.y.to_bits(), b.y.to_bits(), "resumed trail diverged");
    }
    assert_eq!(out.steps, reference.steps);
    assert_eq!(out.degradation, reference.degradation);
}

#[test]
fn hostile_preset_sessions_never_panic_across_seed_sweep() {
    for trial in 0..4u64 {
        let ch = ['C', 'L', 'S', 'W'][trial as usize % 4];
        let seed = derive_seed_indexed(0x5E55, "session.hostile", trial);
        let mut setup = coarse_letter(ch);
        // The worst point of the fault sweep: heavy correlated loss, a
        // mid-stream single-port outage, strong clock/phase faults...
        setup.faults = Some(FaultPlan::hostile());
        let (_, reports) = simulate_reports(&setup, seed);
        if reports.is_empty() {
            continue; // hostile can eat everything; nothing to supervise
        }
        let (t_lo, t_hi) = span(&reports);
        let t_mid = 0.5 * (t_lo + t_hi);
        // ...plus a hard link outage and undecodable wire garbage.
        let link = SimulatedLink::from_reports(&reports, 0.05)
            .with_outage(t_mid, t_mid + 0.4)
            .with_garbage_every(4);

        let session_cfg = SessionConfig { seed, ..SessionConfig::default() };
        let (sup, points) =
            supervised_track(polardraw_config_for(&setup), link, session_cfg, 16, t_hi + 2.0);
        assert!(sup.stats().bad_frames > 0, "garbage frames must be seen and rejected");
        assert!(
            points.iter().all(|p| p.x.is_finite() && p.y.is_finite()),
            "trial {trial}: hostile session produced non-finite points"
        );
    }
}
