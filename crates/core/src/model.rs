//! The writing model (§3.2–§3.3): geometry, sectors, and the RSS/phase
//! trend decision tables.
//!
//! ## Geometry recap
//!
//! Board plane = X–Y (X rightward, Y down the board); the two antennas
//! hang above the top edge with polarization axes at `π/2 ± γ` from the
//! +X axis (antenna 1 tilted left to `π/2 + γ`, antenna 2 right to
//! `π/2 − γ`), exactly the construction of Fig. 8(c). The pen's azimuth
//! αa lives in the same plane; during natural writing it stays inside
//! `[γ, π − γ]`.
//!
//! The two polarization axes and their perpendiculars cut that range
//! into three sectors:
//!
//! ```text
//! Sector 3: [γ,         π/2 − γ]   (right of antenna 2's axis)
//! Sector 2: [π/2 − γ,   π/2 + γ]   (between the axes)
//! Sector 1: [π/2 + γ,   π − γ]    (left of antenna 1's axis)
//! ```
//!
//! Rotating the pen changes the mismatch angles β₁, β₂ differently in
//! each sector, producing the signature RSS trends of Table 3 that break
//! both the rotation-direction and azimuthal-angle ambiguities.

use std::f64::consts::{FRAC_PI_2, PI};

/// Which sector (Fig. 8(c)) the pen azimuth lies in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sector {
    /// `[π/2 + γ, π − γ]` — pen leaning left past antenna 1's axis.
    One,
    /// `[π/2 − γ, π/2 + γ]` — pen between the two axes.
    Two,
    /// `[γ, π/2 − γ]` — pen leaning right past antenna 2's axis.
    Three,
}

impl Sector {
    /// The azimuth interval `[lo, hi]` of this sector for mounting
    /// angle γ.
    pub fn bounds(self, gamma: f64) -> (f64, f64) {
        match self {
            Sector::One => (FRAC_PI_2 + gamma, PI - gamma),
            Sector::Two => (FRAC_PI_2 - gamma, FRAC_PI_2 + gamma),
            Sector::Three => (gamma, FRAC_PI_2 - gamma),
        }
    }

    /// Classify an azimuth (clamped into the writing range).
    pub fn of_azimuth(alpha: f64, gamma: f64) -> Sector {
        if alpha >= FRAC_PI_2 + gamma {
            Sector::One
        } else if alpha >= FRAC_PI_2 - gamma {
            Sector::Two
        } else {
            Sector::Three
        }
    }

    /// The boundary azimuth between two adjacent sectors; `None` when
    /// the sectors are not adjacent (or equal).
    pub fn boundary_between(a: Sector, b: Sector, gamma: f64) -> Option<f64> {
        match (a, b) {
            (Sector::One, Sector::Two) | (Sector::Two, Sector::One) => Some(FRAC_PI_2 + gamma),
            (Sector::Two, Sector::Three) | (Sector::Three, Sector::Two) => {
                Some(FRAC_PI_2 - gamma)
            }
            _ => None,
        }
    }
}

/// Pen rotation sense in the board plane.
///
/// Clockwise (azimuth decreasing, in our y-down frame leaning the pen
/// toward the right) accompanies rightward strokes; counter-clockwise
/// accompanies leftward strokes (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rotation {
    /// Azimuth decreasing — pen moving right.
    Clockwise,
    /// Azimuth increasing — pen moving left.
    CounterClockwise,
}

/// Table 3: classify a pair of per-antenna RSS deltas into (sector,
/// rotation sense).
///
/// `ds1`, `ds2` are the window-to-window RSS changes of antennas 1 and 2
/// (dB). Returns `None` when either trend is too small to call (the
/// caller screens with its own δ threshold first) or the pattern is
/// inconsistent (equal magnitudes with same signs).
pub fn classify_rss_trend(ds1: f64, ds2: f64) -> Option<(Sector, Rotation)> {
    let up1 = ds1 > 0.0;
    let up2 = ds2 > 0.0;
    match (up1, up2) {
        // Opposite trends: sector 2, direction by which antenna gains.
        (false, true) => Some((Sector::Two, Rotation::Clockwise)),
        (true, false) => Some((Sector::Two, Rotation::CounterClockwise)),
        // Same trends: sector 1 or 3 by relative magnitude.
        (true, true) => {
            if ds1.abs() < ds2.abs() {
                Some((Sector::One, Rotation::Clockwise))
            } else if ds1.abs() > ds2.abs() {
                Some((Sector::Three, Rotation::CounterClockwise))
            } else {
                None
            }
        }
        (false, false) => {
            if ds1.abs() < ds2.abs() {
                Some((Sector::One, Rotation::CounterClockwise))
            } else if ds1.abs() > ds2.abs() {
                Some((Sector::Three, Rotation::Clockwise))
            } else {
                None
            }
        }
    }
}

/// Eq. 2: the initial azimuth assigned when rotation is first detected —
/// the boundary of the detected sector that the pen is entering across,
/// given its rotation sense.
pub fn initial_azimuth(sector: Sector, rotation: Rotation, gamma: f64) -> f64 {
    match (rotation, sector) {
        (Rotation::Clockwise, Sector::One) => PI - gamma,
        (Rotation::Clockwise, Sector::Two) => FRAC_PI_2 + gamma,
        (Rotation::Clockwise, Sector::Three) => FRAC_PI_2 - gamma,
        (Rotation::CounterClockwise, Sector::One) => FRAC_PI_2 + gamma,
        (Rotation::CounterClockwise, Sector::Two) => FRAC_PI_2 - gamma,
        (Rotation::CounterClockwise, Sector::Three) => gamma,
    }
}

/// Eq. 1: translate the azimuthal angle αa (with the assumed constant
/// elevation αe) into the pen rotation angle αr projected on the board.
pub fn rotation_angle(alpha_a: f64, alpha_e: f64) -> f64 {
    PI - (-alpha_e.sin() / (alpha_e.cos() * alpha_a.cos())).atan()
}

/// Movement direction implied by a tracked azimuth and rotation sense:
/// the unit vector perpendicular to the pen's board-plane projection,
/// signed so that clockwise rotation maps to rightward (+X) travel
/// (Fig. 7).
pub fn direction_from_azimuth(alpha_a: f64, rotation: Rotation) -> rf_core::Vec2 {
    let angle = match rotation {
        Rotation::Clockwise => alpha_a - FRAC_PI_2,
        Rotation::CounterClockwise => alpha_a + FRAC_PI_2,
    };
    rf_core::Vec2::from_angle(angle)
}

/// The four coarse directions of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cardinal {
    /// Toward the antennas (−Y).
    Up,
    /// Away from the antennas (+Y).
    Down,
    /// −X.
    Left,
    /// +X.
    Right,
}

impl Cardinal {
    /// Unit vector in board coordinates (Y is downward).
    pub fn unit(self) -> rf_core::Vec2 {
        match self {
            Cardinal::Up => rf_core::Vec2::new(0.0, -1.0),
            Cardinal::Down => rf_core::Vec2::new(0.0, 1.0),
            Cardinal::Left => rf_core::Vec2::new(-1.0, 0.0),
            Cardinal::Right => rf_core::Vec2::new(1.0, 0.0),
        }
    }
}

/// Table 4: classify the pair of per-antenna phase deltas (antenna 1 on
/// the left, antenna 2 on the right) into a coarse direction. `None`
/// when both deltas are negligible (threshold: radians).
pub fn classify_phase_trend(dth1: f64, dth2: f64, threshold: f64) -> Option<Cardinal> {
    if dth1.abs() < threshold && dth2.abs() < threshold {
        return None;
    }
    match (dth1 > 0.0, dth2 > 0.0) {
        (false, false) => Some(Cardinal::Up),
        (true, true) => Some(Cardinal::Down),
        (false, true) => Some(Cardinal::Left),
        (true, false) => Some(Cardinal::Right),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_core::deg_to_rad;

    const GAMMA: f64 = 0.2618; // 15°

    #[test]
    fn sector_classification_covers_the_writing_range() {
        assert_eq!(Sector::of_azimuth(deg_to_rad(150.0), GAMMA), Sector::One);
        assert_eq!(Sector::of_azimuth(deg_to_rad(90.0), GAMMA), Sector::Two);
        assert_eq!(Sector::of_azimuth(deg_to_rad(30.0), GAMMA), Sector::Three);
    }

    #[test]
    fn sector_bounds_tile_the_range() {
        let (lo3, hi3) = Sector::Three.bounds(GAMMA);
        let (lo2, hi2) = Sector::Two.bounds(GAMMA);
        let (lo1, hi1) = Sector::One.bounds(GAMMA);
        assert!((hi3 - lo2).abs() < 1e-12);
        assert!((hi2 - lo1).abs() < 1e-12);
        assert!((lo3 - GAMMA).abs() < 1e-12);
        assert!((hi1 - (PI - GAMMA)).abs() < 1e-12);
    }

    #[test]
    fn boundaries_between_adjacent_sectors() {
        assert_eq!(
            Sector::boundary_between(Sector::One, Sector::Two, GAMMA),
            Some(FRAC_PI_2 + GAMMA)
        );
        assert_eq!(
            Sector::boundary_between(Sector::Three, Sector::Two, GAMMA),
            Some(FRAC_PI_2 - GAMMA)
        );
        assert_eq!(Sector::boundary_between(Sector::One, Sector::Three, GAMMA), None);
        assert_eq!(Sector::boundary_between(Sector::Two, Sector::Two, GAMMA), None);
    }

    /// Ground-truth RSS deltas for a small clockwise rotation at azimuth
    /// α: s_j ∝ cos²(α − pol_j) (one-way; the round trip squares it
    /// again but preserves signs of the deltas).
    fn rss_deltas(alpha: f64, dalpha: f64, gamma: f64) -> (f64, f64) {
        let pol1 = FRAC_PI_2 + gamma;
        let pol2 = FRAC_PI_2 - gamma;
        let s = |a: f64, pol: f64| 40.0 * (a - pol).cos().abs().max(1e-9).log10();
        (
            s(alpha + dalpha, pol1) - s(alpha, pol1),
            s(alpha + dalpha, pol2) - s(alpha, pol2),
        )
    }

    #[test]
    fn table3_recovers_sector_and_direction_from_physics() {
        // Sweep true azimuths through each sector and both senses; the
        // classifier must reproduce Table 3 exactly.
        let cases = [
            (deg_to_rad(130.0), -1.0, Sector::One, Rotation::Clockwise),
            (deg_to_rad(130.0), 1.0, Sector::One, Rotation::CounterClockwise),
            (deg_to_rad(90.0), -1.0, Sector::Two, Rotation::Clockwise),
            (deg_to_rad(90.0), 1.0, Sector::Two, Rotation::CounterClockwise),
            (deg_to_rad(50.0), -1.0, Sector::Three, Rotation::Clockwise),
            (deg_to_rad(50.0), 1.0, Sector::Three, Rotation::CounterClockwise),
        ];
        for (alpha, sense, sector, rotation) in cases {
            let d_alpha = sense * deg_to_rad(3.0);
            let (ds1, ds2) = rss_deltas(alpha, d_alpha, GAMMA);
            let got = classify_rss_trend(ds1, ds2);
            assert_eq!(
                got,
                Some((sector, rotation)),
                "α = {:.0}°, Δα = {:.0}°: ds1 = {ds1:.3}, ds2 = {ds2:.3}",
                alpha.to_degrees(),
                d_alpha.to_degrees()
            );
        }
    }

    #[test]
    fn table3_rejects_perfectly_balanced_trends() {
        assert_eq!(classify_rss_trend(0.5, 0.5), None);
        assert_eq!(classify_rss_trend(-0.5, -0.5), None);
    }

    #[test]
    fn eq2_initial_azimuth_is_the_entry_boundary() {
        // Entering sector 1 clockwise means coming from above: π − γ.
        assert!((initial_azimuth(Sector::One, Rotation::Clockwise, GAMMA) - (PI - GAMMA)).abs() < 1e-12);
        // Entering sector 1 counter-clockwise: from below, π/2 + γ.
        assert!(
            (initial_azimuth(Sector::One, Rotation::CounterClockwise, GAMMA)
                - (FRAC_PI_2 + GAMMA))
                .abs()
                < 1e-12
        );
        assert!((initial_azimuth(Sector::Three, Rotation::CounterClockwise, GAMMA) - GAMMA).abs() < 1e-12);
    }

    #[test]
    fn eq2_initial_azimuth_lies_inside_the_sector() {
        for sector in [Sector::One, Sector::Two, Sector::Three] {
            for rot in [Rotation::Clockwise, Rotation::CounterClockwise] {
                let a = initial_azimuth(sector, rot, GAMMA);
                let (lo, hi) = sector.bounds(GAMMA);
                assert!(
                    (lo - 1e-9..=hi + 1e-9).contains(&a),
                    "{sector:?}/{rot:?}: {a} outside [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn eq1_is_finite_and_its_line_is_continuous() {
        // αr as written jumps by π when cos αa crosses zero, but the
        // quantity the tracker consumes — the *line* through the pen at
        // slope −cot αr (Eq. 9) — is continuous: lines are modulo π.
        for ae_deg in [-45.0, -30.0, -15.0, 15.0, 30.0, 45.0] {
            let ae = deg_to_rad(ae_deg);
            let mut prev = rotation_angle(deg_to_rad(20.0), ae);
            for aa_deg in 21..160 {
                let cur = rotation_angle(deg_to_rad(f64::from(aa_deg)), ae);
                assert!(cur.is_finite());
                let line_jump = (cur - prev).rem_euclid(PI).min(PI - (cur - prev).rem_euclid(PI));
                assert!(line_jump < 0.2, "line jump at αa = {aa_deg}°, αe = {ae_deg}°");
                prev = cur;
            }
        }
    }

    #[test]
    fn eq1_vertical_pen_gives_vertical_line() {
        // αa = 90°: Eq. 1 degenerates to αr = 3π/2 — a vertical pen,
        // whose Eq. 9 slope −cot(3π/2) = 0 describes a horizontal
        // stroke direction, matching the wrist model.
        let ar = rotation_angle(FRAC_PI_2, deg_to_rad(30.0));
        assert!((ar - 3.0 * FRAC_PI_2).abs() < 1e-9, "αr = {ar}");
    }

    #[test]
    fn clockwise_rotation_implies_rightward_travel() {
        let d = direction_from_azimuth(FRAC_PI_2, Rotation::Clockwise);
        assert!((d.x - 1.0).abs() < 1e-12 && d.y.abs() < 1e-12);
        let d = direction_from_azimuth(FRAC_PI_2, Rotation::CounterClockwise);
        assert!((d.x + 1.0).abs() < 1e-12);
    }

    #[test]
    fn tilted_pen_direction_is_perpendicular_to_azimuth() {
        let alpha = deg_to_rad(70.0);
        let d = direction_from_azimuth(alpha, Rotation::Clockwise);
        let pen = rf_core::Vec2::from_angle(alpha);
        assert!(d.dot(pen).abs() < 1e-12, "direction must be ⊥ to the pen");
        assert!(d.x > 0.0, "clockwise still travels rightward");
    }

    #[test]
    fn table4_decodes_all_four_directions() {
        let th = 0.05;
        assert_eq!(classify_phase_trend(-0.3, -0.3, th), Some(Cardinal::Up));
        assert_eq!(classify_phase_trend(0.3, 0.3, th), Some(Cardinal::Down));
        assert_eq!(classify_phase_trend(-0.3, 0.3, th), Some(Cardinal::Left));
        assert_eq!(classify_phase_trend(0.3, -0.3, th), Some(Cardinal::Right));
        assert_eq!(classify_phase_trend(0.01, -0.01, th), None);
    }

    #[test]
    fn cardinal_units_are_consistent_with_board_frame() {
        assert_eq!(Cardinal::Up.unit().y, -1.0, "up = toward antennas = −Y");
        assert_eq!(Cardinal::Right.unit().x, 1.0);
    }
}
