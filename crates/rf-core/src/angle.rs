//! Angle wrapping, conversion, and circular arithmetic.
//!
//! RFID phase readings live on the circle `[0, 2π)`: an ImpinJ-class
//! reader reports `mod(4π·d/λ + offset, 2π)`. Comparing, differencing and
//! unwrapping such values correctly is foundational to the whole tracking
//! pipeline (Eqs. 5–7 of the paper), so every crate uses these helpers
//! instead of ad-hoc `%` arithmetic.

use std::f64::consts::{PI, TAU};

/// Convert degrees to radians.
pub fn deg_to_rad(deg: f64) -> f64 {
    deg * PI / 180.0
}

/// Convert radians to degrees.
pub fn rad_to_deg(rad: f64) -> f64 {
    rad * 180.0 / PI
}

/// Wrap an angle into `[0, 2π)`.
pub fn wrap_tau(a: f64) -> f64 {
    let w = a.rem_euclid(TAU);
    // `rem_euclid` may return exactly TAU for inputs like -1e-17.
    if w >= TAU {
        0.0
    } else {
        w
    }
}

/// Wrap an angle into `(−π, π]`.
pub fn wrap_pi(a: f64) -> f64 {
    let w = wrap_tau(a);
    if w > PI {
        w - TAU
    } else {
        w
    }
}

/// Signed circular difference `a − b`, wrapped into `(−π, π]`.
///
/// This is the correct way to subtract two phase readings: a tag moving
/// smoothly produces small `phase_diff` values even when the raw readings
/// straddle the 0/2π boundary.
pub fn phase_diff(a: f64, b: f64) -> f64 {
    wrap_pi(a - b)
}

/// Absolute circular distance between two angles, in `[0, π]`.
pub fn phase_distance(a: f64, b: f64) -> f64 {
    phase_diff(a, b).abs()
}

/// Unwrap a sequence of phase readings (each in `[0, 2π)`) into a
/// continuous series by removing 2π jumps, like NumPy's `unwrap`.
///
/// Returns an empty vector for empty input.
pub fn unwrap_phases(phases: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(phases.len());
    let mut prev_raw = match phases.first() {
        Some(&p) => p,
        None => return out,
    };
    let mut offset = 0.0;
    out.push(prev_raw);
    for &p in &phases[1..] {
        let d = p - prev_raw;
        if d > PI {
            offset -= TAU;
        } else if d < -PI {
            offset += TAU;
        }
        out.push(p + offset);
        prev_raw = p;
    }
    out
}

/// Circular mean of a set of angles, in `[0, 2π)`; `None` if the mean
/// resultant vector is (near-)zero (i.e. the angles are balanced around
/// the circle and no mean is defined).
pub fn circular_mean(angles: &[f64]) -> Option<f64> {
    if angles.is_empty() {
        return None;
    }
    let (mut s, mut c) = (0.0, 0.0);
    for &a in angles {
        s += a.sin();
        c += a.cos();
    }
    if s.hypot(c) < 1e-9 {
        None
    } else {
        Some(wrap_tau(s.atan2(c)))
    }
}

/// An angle newtype used where degree/radian mix-ups would be costly
/// (antenna mounting angles, pen elevation).
///
/// Stored internally in radians.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Angle(f64);

impl Angle {
    /// Zero angle.
    pub const ZERO: Angle = Angle(0.0);

    /// Construct from radians.
    pub const fn from_rad(rad: f64) -> Angle {
        Angle(rad)
    }

    /// Construct from degrees.
    pub fn from_deg(deg: f64) -> Angle {
        Angle(deg_to_rad(deg))
    }

    /// Value in radians.
    pub const fn rad(self) -> f64 {
        self.0
    }

    /// Value in degrees.
    pub fn deg(self) -> f64 {
        rad_to_deg(self.0)
    }

    /// Wrapped into `[0, 2π)`.
    pub fn wrapped_tau(self) -> Angle {
        Angle(wrap_tau(self.0))
    }

    /// Wrapped into `(−π, π]`.
    pub fn wrapped_pi(self) -> Angle {
        Angle(wrap_pi(self.0))
    }

    /// Sine.
    pub fn sin(self) -> f64 {
        self.0.sin()
    }

    /// Cosine.
    pub fn cos(self) -> f64 {
        self.0.cos()
    }
}

impl std::ops::Add for Angle {
    type Output = Angle;
    fn add(self, rhs: Angle) -> Angle {
        Angle(self.0 + rhs.0)
    }
}

impl std::ops::Sub for Angle {
    type Output = Angle;
    fn sub(self, rhs: Angle) -> Angle {
        Angle(self.0 - rhs.0)
    }
}

impl std::ops::Neg for Angle {
    type Output = Angle;
    fn neg(self) -> Angle {
        Angle(-self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_into_tau_range() {
        assert!((wrap_tau(-0.1) - (TAU - 0.1)).abs() < 1e-12);
        assert!((wrap_tau(TAU + 0.1) - 0.1).abs() < 1e-12);
        assert_eq!(wrap_tau(0.0), 0.0);
        assert_eq!(wrap_tau(-1e-18), 0.0, "tiny negatives must not map to TAU");
    }

    #[test]
    fn wrapping_into_pi_range() {
        assert!((wrap_pi(PI + 0.1) - (-PI + 0.1)).abs() < 1e-12);
        assert!((wrap_pi(-PI - 0.1) - (PI - 0.1)).abs() < 1e-12);
        assert_eq!(wrap_pi(PI), PI, "+π stays +π (half-open interval)");
    }

    #[test]
    fn phase_diff_across_boundary() {
        // 0.05 rad and 2π−0.05 rad are only 0.1 rad apart on the circle.
        let d = phase_diff(0.05, TAU - 0.05);
        assert!((d - 0.1).abs() < 1e-12);
        let d = phase_diff(TAU - 0.05, 0.05);
        assert!((d + 0.1).abs() < 1e-12);
    }

    #[test]
    fn unwrap_recovers_linear_ramp() {
        // A tag receding at constant speed makes phase a sawtooth; unwrap
        // must recover the underlying ramp.
        let true_phase: Vec<f64> = (0..100).map(|i| 0.3 * i as f64).collect();
        let wrapped: Vec<f64> = true_phase.iter().map(|&p| wrap_tau(p)).collect();
        let unwrapped = unwrap_phases(&wrapped);
        for (u, t) in unwrapped.iter().zip(&true_phase) {
            assert!((u - t).abs() < 1e-9);
        }
    }

    #[test]
    fn unwrap_handles_descending_ramp() {
        let true_phase: Vec<f64> = (0..100).map(|i| 50.0 - 0.4 * i as f64).collect();
        let wrapped: Vec<f64> = true_phase.iter().map(|&p| wrap_tau(p)).collect();
        let unwrapped = unwrap_phases(&wrapped);
        for w in unwrapped.windows(2) {
            assert!((w[1] - w[0] + 0.4).abs() < 1e-9);
        }
    }

    #[test]
    fn unwrap_empty_and_single() {
        assert!(unwrap_phases(&[]).is_empty());
        assert_eq!(unwrap_phases(&[1.5]), vec![1.5]);
    }

    #[test]
    fn circular_mean_near_boundary() {
        let m = circular_mean(&[0.1, TAU - 0.1]).unwrap();
        assert!(m < 1e-9 || (TAU - m) < 1e-9, "mean of ±0.1 is 0, got {m}");
    }

    #[test]
    fn circular_mean_balanced_is_none() {
        assert!(circular_mean(&[0.0, PI]).is_none());
        assert!(circular_mean(&[]).is_none());
    }

    #[test]
    fn angle_degree_round_trip() {
        let a = Angle::from_deg(30.0);
        assert!((a.rad() - PI / 6.0).abs() < 1e-12);
        assert!((a.deg() - 30.0).abs() < 1e-12);
    }
}
