//! Quickstart: write one letter, track it with PolarDraw, recognize it.
//!
//! ```text
//! cargo run --release --example quickstart [LETTER]
//! ```

use recognition::{procrustes_distance, LetterRecognizer};

fn main() {
    let letter = std::env::args()
        .nth(1)
        .and_then(|s| s.chars().next())
        .unwrap_or('W')
        .to_ascii_uppercase();

    println!("writing '{letter}' on the simulated whiteboard…");
    let (truth, recovered) = polardraw_suite::quick_track(&letter.to_string(), 42);
    println!("ground truth: {} points; recovered: {} points", truth.len(), recovered.len());

    let recognizer = LetterRecognizer::new();
    match recognizer.classify(&recovered) {
        Some(ch) => println!("recognized as: '{ch}'"),
        None => println!("trajectory too degenerate to classify"),
    }
    if let Some(d) = procrustes_distance(&truth, &recovered, 64) {
        println!("Procrustes distance to ground truth: {:.1} cm", d * 100.0);
    }

    // A crude terminal rendering of truth vs recovery.
    for (label, pts) in [("truth", &truth), ("recovered", &recovered)] {
        println!("\n{label}:");
        for line in render(pts, 36, 12) {
            println!("  {line}");
        }
    }
}

fn render(points: &[rf_core::Vec2], w: usize, h: usize) -> Vec<String> {
    if points.is_empty() {
        return vec!["(empty)".to_string()];
    }
    let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for p in points {
        x0 = x0.min(p.x);
        x1 = x1.max(p.x);
        y0 = y0.min(p.y);
        y1 = y1.max(p.y);
    }
    let mut grid = vec![vec![' '; w]; h];
    for p in points {
        let cx = (((p.x - x0) / (x1 - x0 + 1e-9)) * (w - 1) as f64) as usize;
        let cy = (((p.y - y0) / (y1 - y0 + 1e-9)) * (h - 1) as f64) as usize;
        grid[cy][cx] = '#';
    }
    grid.into_iter().map(|row| row.into_iter().collect()).collect()
}
