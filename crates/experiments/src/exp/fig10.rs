//! Figure 10: trajectory before and after the initial-azimuth
//! correction.
//!
//! The Eq. 2 bootstrap can be off by α̃a; sector-boundary crossings
//! estimate the error and Eq. 10 rotates the final trajectory to undo
//! it. We track the same report stream with the correction disabled and
//! enabled and compare trajectory fidelity.

use crate::report::Report;
use crate::runner::{parallel_map, RunOpts};
use crate::setup::{channel_for, to_tag_poses, TrackerKind, TrialSetup};
use polardraw_core::{PolarDraw, PolarDrawConfig};
use recognition::procrustes_distance;
use rf_core::rng::derive_seed_indexed;
use rf_core::stats;
use rfid_sim::Reader;

/// Run the correction A/B.
pub fn run(opts: &RunOpts) -> Vec<Report> {
    let words = ["WE", "ME", "CE"];
    let jobs: Vec<(String, u64)> = (0..opts.trials.max(2))
        .map(|i| {
            (
                words[i % words.len()].to_string(),
                derive_seed_indexed(opts.seed, "fig10", i as u64),
            )
        })
        .collect();

    let cell_scale = opts.cell_scale;
    let outcomes = parallel_map(jobs, opts.threads, |(word, seed)| {
        let setup = TrialSetup::word(word);
        let session = pen_sim::scene::write_text(
            &setup.scene,
            &setup.profile,
            word,
            rf_core::rng::derive_seed(*seed, "pen"),
        );
        let reader = Reader::new(channel_for(TrackerKind::PolarDraw, setup.gamma_rad, setup.standoff_m));
        let reports =
            reader.inventory(&to_tag_poses(&session.poses), rf_core::rng::derive_seed(*seed, "reader"));

        let track = |correct: bool| {
            let mut cfg = PolarDrawConfig::default();
            cfg.hmm.cell_m *= cell_scale.max(0.01);
            cfg.apply_rotation_correction = correct;
            let out = PolarDraw::new(cfg).track_with_diagnostics(&reports);
            (
                procrustes_distance(&session.truth.points, &out.trail.points, 64),
                out.initial_azimuth_error,
            )
        };
        let (before, _) = track(false);
        let (after, err) = track(true);
        (before, after, err)
    });

    let before: Vec<f64> = outcomes.iter().filter_map(|o| o.0).collect();
    let after: Vec<f64> = outcomes.iter().filter_map(|o| o.1).collect();
    let errs: Vec<f64> = outcomes.iter().map(|o| o.2.abs().to_degrees()).collect();

    let mut report = Report::new(
        "fig10",
        "Trajectory before vs after azimuthal-angle correction",
        "correction visibly straightens the recovered word (Fig. 10(b)→(c))",
    )
    .headers(vec!["Variant", "Mean Procrustes (cm)", "Trials"]);
    report.push_row(vec![
        "pre-correction".to_string(),
        stats::mean(&before).map_or("—".into(), |d| format!("{:.1}", d * 100.0)),
        before.len().to_string(),
    ]);
    report.push_row(vec![
        "post-correction".to_string(),
        stats::mean(&after).map_or("—".into(), |d| format!("{:.1}", d * 100.0)),
        after.len().to_string(),
    ]);
    report.push_note(format!(
        "mean |α̃a| estimated from boundary crossings: {:.1}°",
        stats::mean(&errs).unwrap_or(0.0)
    ));
    vec![report]
}

#[cfg(test)]
mod tests {
    use polardraw_core::hmm::rotate_trajectory;
    use rf_core::Vec2;

    #[test]
    fn eq10_rotation_is_what_the_correction_applies() {
        // Direct check of the correction primitive this experiment
        // exercises end-to-end.
        let pts = vec![Vec2::new(0.0, 0.0), Vec2::new(0.1, 0.0)];
        let rotated = rotate_trajectory(&pts, 0.3);
        let restored = rotate_trajectory(&rotated, -0.3);
        for (a, b) in pts.iter().zip(&restored) {
            assert!(a.distance(*b) < 1e-12);
        }
    }
}
