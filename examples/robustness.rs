//! Fault-injection tour: how PolarDraw degrades under adverse
//! conditions — a bystander pacing next to the board (Fig. 16), heavier
//! multipath, extra measurement noise, and frequency hopping (which the
//! paper side-steps by per-channel processing).
//!
//! ```text
//! cargo run --release --example robustness
//! ```

use experiments::setup::{to_tag_poses, TrackerKind, TrialSetup};
use recognition::{procrustes_distance, LetterRecognizer};
use rf_core::Vec3;
use rf_physics::{Bystander, BystanderMotion, ChannelPlan};
use rfid_sim::{Reader, TrajectoryTracker};

fn run_variant(name: &str, mutate: impl Fn(&mut rf_physics::ChannelModel)) {
    let setup = TrialSetup::letter('W').with_tracker(TrackerKind::PolarDraw);
    let session =
        pen_sim::scene::write_text(&setup.scene, &setup.profile, &setup.text, 5);
    let mut channel =
        rf_physics::ChannelModel::two_antenna_whiteboard(setup.gamma_rad, 0.56, setup.standoff_m);
    mutate(&mut channel);
    let reader = Reader::new(channel);
    let reports = reader.inventory(&to_tag_poses(&session.poses), 5);
    let tracker = polardraw_core::PolarDraw::new(polardraw_core::PolarDrawConfig::default());
    let trail = tracker.track(&reports);
    let rec = LetterRecognizer::new();
    let d = procrustes_distance(&session.truth.points, &trail.points, 64)
        .map_or("—".to_string(), |d| format!("{:.1} cm", d * 100.0));
    println!(
        "{name:<34} reads {:>4}  procrustes {:>8}  recognized {:?}",
        reports.len(),
        d,
        rec.classify(&trail.points)
    );
}

fn main() {
    println!("PolarDraw under adverse conditions (letter 'W'):\n");

    run_variant("baseline office", |_| {});

    run_variant("bystander standing at 30 cm", |ch| {
        ch.bystander = Some(Bystander {
            position: Vec3::new(0.25, 0.6, 0.3),
            motion: BystanderMotion::Static,
            scattering: 0.25,
            depolarization: 0.9,
        });
    });

    run_variant("bystander pacing at 30 cm", |ch| {
        ch.bystander = Some(Bystander {
            position: Vec3::new(0.25, 0.6, 0.3),
            motion: BystanderMotion::Walking { amplitude_m: 0.5, frequency_hz: 0.6 },
            scattering: 0.25,
            depolarization: 0.9,
        });
    });

    run_variant("metal-heavy room (strong echoes)", |ch| {
        for r in &mut ch.reflectors {
            r.reflectivity = (r.reflectivity * 2.2).min(0.9);
        }
    });

    run_variant("doubled receiver phase noise", |ch| {
        ch.noise.phase_sigma_rad *= 2.0;
    });

    run_variant("FCC frequency hopping (200 ms dwell)", |ch| {
        ch.plan = ChannelPlan::hopping_from_seed(1, 0.2);
    });

    println!("\n(the paper's Fig. 16 finding: graceful degradation under bystander");
    println!(" multipath; hopping breaks phase continuity unless handled per-channel)");
}
