//! Minimal complex arithmetic for baseband channel gains.
//!
//! The multipath channel seen by each reader antenna is a sum of complex
//! path gains; the reader measures its magnitude (→ RSS) and argument
//! (→ phase report). We implement only the operations the simulation
//! needs rather than pulling in a numerics crate.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Construct from rectangular components.
    pub const fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// Construct from polar form: `magnitude · e^{i·phase}`.
    pub fn from_polar(magnitude: f64, phase: f64) -> Complex {
        let (s, c) = phase.sin_cos();
        Complex::new(magnitude * c, magnitude * s)
    }

    /// `e^{i·phase}` — a pure phasor.
    pub fn cis(phase: f64) -> Complex {
        Complex::from_polar(1.0, phase)
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude (power, for unit-impedance conventions).
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument in `(−π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// Scale by a real factor.
    pub fn scale(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sq();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, s: f64) -> Complex {
        self.scale(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.5, 1.2);
        assert!((z.abs() - 2.5).abs() < 1e-12);
        assert!((z.arg() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn multiplication_adds_phases() {
        let a = Complex::cis(0.7);
        let b = Complex::cis(1.1);
        let p = a * b;
        assert!((p.arg() - 1.8).abs() < 1e-12);
        assert!((p.abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn i_squared_is_minus_one() {
        let m = Complex::I * Complex::I;
        assert!((m.re + 1.0).abs() < 1e-12 && m.im.abs() < 1e-12);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(3.0, -2.0);
        let b = Complex::new(-1.5, 0.5);
        let q = (a * b) / b;
        assert!((q.re - a.re).abs() < 1e-12 && (q.im - a.im).abs() < 1e-12);
    }

    #[test]
    fn conjugate_negates_argument() {
        let z = Complex::from_polar(1.0, FRAC_PI_2);
        assert!((z.conj().arg() + FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn destructive_interference_sums_to_zero() {
        // Two equal-magnitude paths π out of phase cancel — the mechanism
        // behind deep multipath fades.
        let sum = Complex::cis(0.3) + Complex::cis(0.3 + PI);
        assert!(sum.abs() < 1e-12);
    }
}
