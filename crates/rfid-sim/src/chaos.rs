//! Deterministic chaos plans for crash/soak testing the serving fleet.
//!
//! A [`ChaosPlan`] is a derived-seed schedule of faults against drain
//! -round boundaries: shard kills (with immediate or duplicated
//! recovery), corruption of the newest committed checkpoint before the
//! kill, and stalled drains. The plan is *pure data* — this crate sits
//! below the serving layer, so the harness that owns a fleet router
//! (`tests/chaos.rs`) interprets the actions; the same seed always
//! yields the same schedule, which is what makes a chaos soak a
//! regression test rather than a flake generator.
//!
//! [`mutate_bytes`] is the companion corruption model: given sealed
//! checkpoint bytes and a case seed it applies one of the mutation
//! families real storage exhibits (bit rot, truncation, garbage
//! extension, field rewrites, wholesale noise), mirroring the
//! [`llrp`](crate::llrp) decode sweep so both untrusted-byte surfaces
//! are exercised the same way.

use rf_core::rng::{derive_seed_indexed, rng_from_seed, Rng64};

/// One scheduled fault, attached to a drain-round boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Nothing this round — the fleet serves normally.
    Calm,
    /// After this round's drain: kill the shard, then recover it.
    KillRecover {
        /// Which shard dies.
        shard: usize,
    },
    /// Like [`ChaosAction::KillRecover`], but recovery is invoked
    /// twice — the second call must be a no-op (idempotence probe).
    DuplicateRecover {
        /// Which shard dies.
        shard: usize,
    },
    /// Corrupt the newest committed generation of every session on the
    /// shard (via [`mutate_bytes`] with `mutation` as the case seed),
    /// then kill and recover it: restore must walk back, surface the
    /// fallback, and still lose nothing.
    CorruptLatest {
        /// Which shard dies.
        shard: usize,
        /// Case seed fed to [`mutate_bytes`].
        mutation: u64,
    },
    /// The consumer stalls: skip this round's drain entirely, letting
    /// queues build against the ingest bound.
    StallDrain,
}

/// A deterministic schedule of [`ChaosAction`]s, one per drain round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    actions: Vec<ChaosAction>,
}

impl ChaosPlan {
    /// Derive a plan of `rounds` actions over a fleet of `shards`
    /// shards from `seed`. Roughly two thirds of rounds are calm; the
    /// rest draw uniformly from the fault families, so a soak of a few
    /// dozen rounds exercises every family. Deterministic: equal
    /// arguments yield equal plans.
    pub fn generate(seed: u64, rounds: usize, shards: usize) -> ChaosPlan {
        assert!(shards > 0, "a fleet has at least one shard");
        let actions = (0..rounds)
            .map(|round| {
                let mut rng: Rng64 =
                    rng_from_seed(derive_seed_indexed(seed, "chaos.round", round as u64));
                let shard = rng.gen_index(shards);
                match rng.gen_index(12) {
                    0 | 1 => ChaosAction::KillRecover { shard },
                    2 => ChaosAction::DuplicateRecover { shard },
                    3 => ChaosAction::CorruptLatest { shard, mutation: rng.next_u64() },
                    4 => ChaosAction::StallDrain,
                    _ => ChaosAction::Calm,
                }
            })
            .collect();
        ChaosPlan { actions }
    }

    /// A plan that is calm everywhere except one
    /// [`ChaosAction::KillRecover`] after round `kill_round` — the
    /// building block for sweeping kill cut points.
    pub fn kill_at(kill_round: usize, shard: usize, rounds: usize) -> ChaosPlan {
        let mut actions = vec![ChaosAction::Calm; rounds];
        if kill_round < rounds {
            actions[kill_round] = ChaosAction::KillRecover { shard };
        }
        ChaosPlan { actions }
    }

    /// A plan from an explicit action schedule (for hand-built cases
    /// the sweeps and generators do not cover).
    pub fn from_actions(actions: Vec<ChaosAction>) -> ChaosPlan {
        ChaosPlan { actions }
    }

    /// The action scheduled for `round` (calm past the plan's end).
    pub fn action(&self, round: usize) -> ChaosAction {
        self.actions.get(round).copied().unwrap_or(ChaosAction::Calm)
    }

    /// The full schedule.
    pub fn actions(&self) -> &[ChaosAction] {
        &self.actions
    }

    /// Number of scheduled rounds.
    pub fn rounds(&self) -> usize {
        self.actions.len()
    }

    /// Rounds at which a shard dies (any kill-family action).
    pub fn kill_rounds(&self) -> Vec<usize> {
        self.actions
            .iter()
            .enumerate()
            .filter(|(_, a)| {
                matches!(
                    a,
                    ChaosAction::KillRecover { .. }
                        | ChaosAction::DuplicateRecover { .. }
                        | ChaosAction::CorruptLatest { .. }
                )
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// Deterministically corrupt a byte string one of the ways storage
/// rots: bit flips, truncation, garbage extension, ASCII field
/// rewrites, splices, or wholesale noise. The same `(doc, case_seed)`
/// always yields the same corruption; distinct case seeds sweep the
/// families. The result may (rarely) equal the input — e.g. a
/// truncation at full length — which a consumer must treat as the
/// clean-restore case anyway.
pub fn mutate_bytes(doc: &[u8], case_seed: u64) -> Vec<u8> {
    let mut rng = rng_from_seed(derive_seed_indexed(case_seed, "chaos.mutate", 0));
    let mut out = doc.to_vec();
    if out.is_empty() {
        return out;
    }
    match rng.gen_index(6) {
        // Flip 1–8 random bits anywhere.
        0 => {
            for _ in 0..(1 + rng.gen_index(8)) {
                let i = rng.gen_index(out.len());
                out[i] ^= 1 << rng.gen_index(8);
            }
        }
        // Truncate to a random prefix (torn write).
        1 => out.truncate(rng.gen_index(out.len() + 1)),
        // Append 1–64 garbage bytes.
        2 => {
            for _ in 0..(1 + rng.gen_index(64)) {
                out.push((rng.next_u64() & 0xFF) as u8);
            }
        }
        // Rewrite a run of ASCII digits in place — the "field
        // mutation" family: generation counters, CRCs, and floats all
        // serialize as digit runs, so this models a targeted edit that
        // keeps the document JSON-shaped.
        3 => {
            let digits: Vec<usize> =
                out.iter().enumerate().filter(|(_, b)| b.is_ascii_digit()).map(|(i, _)| i).collect();
            if digits.is_empty() {
                out[rng.gen_index(doc.len())] ^= 0x20;
            } else {
                for _ in 0..(1 + rng.gen_index(4)) {
                    let i = digits[rng.gen_index(digits.len())];
                    out[i] = b'0' + (rng.gen_index(10) as u8);
                }
            }
        }
        // Splice a noise window over a random interior range.
        4 => {
            let start = rng.gen_index(out.len());
            let len = 1 + rng.gen_index((out.len() - start).min(32));
            for b in &mut out[start..start + len] {
                *b = (rng.next_u64() & 0xFF) as u8;
            }
        }
        // Replace wholesale with noise of random length (0–2·doc).
        5 => {
            let n = rng.gen_index(2 * doc.len() + 1);
            out = (0..n).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        }
        _ => unreachable!(),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_seed_sensitive() {
        let a = ChaosPlan::generate(7, 64, 4);
        let b = ChaosPlan::generate(7, 64, 4);
        let c = ChaosPlan::generate(8, 64, 4);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, c, "different seed, different plan");
        assert_eq!(a.rounds(), 64);
    }

    #[test]
    fn a_long_plan_exercises_every_fault_family() {
        let plan = ChaosPlan::generate(0xC4A05, 512, 3);
        let mut calm = 0;
        let (mut kill, mut dup, mut corrupt, mut stall) = (0, 0, 0, 0);
        for &a in plan.actions() {
            match a {
                ChaosAction::Calm => calm += 1,
                ChaosAction::KillRecover { shard } => {
                    assert!(shard < 3);
                    kill += 1;
                }
                ChaosAction::DuplicateRecover { shard } => {
                    assert!(shard < 3);
                    dup += 1;
                }
                ChaosAction::CorruptLatest { shard, .. } => {
                    assert!(shard < 3);
                    corrupt += 1;
                }
                ChaosAction::StallDrain => stall += 1,
            }
        }
        assert!(calm > 512 / 2, "most rounds are calm ({calm})");
        assert!(kill > 0 && dup > 0 && corrupt > 0 && stall > 0, "every family appears");
        assert_eq!(plan.kill_rounds().len(), kill + dup + corrupt);
    }

    #[test]
    fn kill_at_is_calm_everywhere_else() {
        let plan = ChaosPlan::kill_at(3, 1, 6);
        for round in 0..6 {
            if round == 3 {
                assert_eq!(plan.action(round), ChaosAction::KillRecover { shard: 1 });
            } else {
                assert_eq!(plan.action(round), ChaosAction::Calm);
            }
        }
        assert_eq!(plan.action(99), ChaosAction::Calm, "calm past the end");
    }

    #[test]
    fn mutate_bytes_is_deterministic_and_sweeps_families() {
        let doc = br#"{"crc":123456,"format":"x.v2","generation":9,"payload":{"a":1.5}}"#;
        assert_eq!(mutate_bytes(doc, 11), mutate_bytes(doc, 11), "deterministic");
        let mut changed = 0;
        let mut lengths = std::collections::BTreeSet::new();
        for case in 0..200u64 {
            let m = mutate_bytes(doc, case);
            lengths.insert(m.len());
            if m != doc.to_vec() {
                changed += 1;
            }
        }
        assert!(changed > 190, "mutations almost always change the bytes");
        assert!(lengths.len() > 10, "truncation/extension vary the length");
        assert!(mutate_bytes(b"", 1).is_empty(), "empty input stays empty");
    }
}
