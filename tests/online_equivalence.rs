//! Online/batch equivalence gates (tier-1, named in scripts/verify.sh).
//!
//! Pins the tentpole contract of the streaming engine:
//!
//! 1. Batch mode IS the online engine (a wrapper with infinite lag and
//!    hold) — checked implicitly by the golden-trace suite, and here by
//!    feeding real simulated streams report-by-report.
//! 2. Fixed-lag output with lag ≥ horizon is bit-for-bit the batch
//!    trail, even while committing through a finite hold.
//! 3. Checkpoint → JSON text → restore → resume converges to
//!    bit-for-bit the uninterrupted trail at EVERY cut point (seeded
//!    property sweep).

use experiments::setup::{polardraw_config_for, simulate_reports, TrialSetup};
use polardraw_core::{OnlineOptions, OnlineTracker, PolarDraw, TrackOutput};
use rf_core::rng::derive_seed_indexed;
use rfid_sim::faults::FaultPlan;
use rfid_sim::TagReport;

fn coarse_letter(ch: char) -> TrialSetup {
    // Coarse grid keeps the sweep fast; equivalence is bit-level, so
    // fidelity does not matter here.
    TrialSetup::letter(ch).with_cell_scale(6.0)
}

fn assert_outputs_bitwise_equal(a: &TrackOutput, b: &TrackOutput, ctx: &str) {
    assert_eq!(a.trail.times.len(), b.trail.times.len(), "{ctx}: times length");
    for (x, y) in a.trail.times.iter().zip(&b.trail.times) {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: time bits");
    }
    assert_eq!(a.trail.points.len(), b.trail.points.len(), "{ctx}: points length");
    for (p, q) in a.trail.points.iter().zip(&b.trail.points) {
        assert_eq!(p.x.to_bits(), q.x.to_bits(), "{ctx}: x bits");
        assert_eq!(p.y.to_bits(), q.y.to_bits(), "{ctx}: y bits");
    }
    assert_eq!(a.steps, b.steps, "{ctx}: steps");
    assert_eq!(a.windows, b.windows, "{ctx}: windows");
    assert_eq!(a.decode_stats, b.decode_stats, "{ctx}: decode stats");
    assert_eq!(a.degradation, b.degradation, "{ctx}: degradation report");
    assert_eq!(
        a.initial_azimuth_error.to_bits(),
        b.initial_azimuth_error.to_bits(),
        "{ctx}: azimuth correction"
    );
}

#[test]
fn streaming_push_equals_batch_on_real_simulated_streams() {
    for (ch, seed) in [('L', 1u64), ('S', 2), ('W', 3)] {
        let setup = coarse_letter(ch);
        let (_, reports) = simulate_reports(&setup, seed);
        let cfg = polardraw_config_for(&setup);
        let batch = PolarDraw::new(cfg).track_with_diagnostics(&reports);

        // Report-by-report streaming with a finite hold and infinite
        // lag: windows close while the pen is still writing, yet the
        // result is the batch output bit-for-bit.
        let mut online = OnlineTracker::new(cfg, OnlineOptions { lag: usize::MAX, hold: 2, ..OnlineOptions::default() });
        for &r in &reports {
            online.push(r);
        }
        assert_eq!(online.late_reports_dropped(), 0, "clean streams drop nothing");
        assert_outputs_bitwise_equal(&online.finalize(), &batch, &format!("letter {ch}"));
    }
}

#[test]
fn fixed_lag_at_or_beyond_horizon_is_bitwise_batch() {
    let setup = coarse_letter('Z');
    let (_, reports) = simulate_reports(&setup, 11);
    let cfg = polardraw_config_for(&setup);
    let batch = PolarDraw::new(cfg).track_with_diagnostics(&reports);
    let horizon = batch.steps.len();
    assert!(horizon > 10, "stream must be long enough to be interesting");

    for lag in [horizon, horizon + 1, 4 * horizon] {
        let mut online = OnlineTracker::new(cfg, OnlineOptions { lag, hold: 2, ..OnlineOptions::default() });
        online.extend(&reports);
        assert!(
            online.committed().is_empty(),
            "lag ≥ horizon must not commit early (lag {lag})"
        );
        assert_outputs_bitwise_equal(&online.finalize(), &batch, &format!("lag {lag}"));
    }
}

#[test]
fn finite_lag_commits_early_and_stays_finite() {
    let setup = coarse_letter('C');
    let (_, reports) = simulate_reports(&setup, 4);
    let cfg = polardraw_config_for(&setup);
    let mut online = OnlineTracker::new(cfg, OnlineOptions { lag: 8, hold: 2, ..OnlineOptions::default() });
    let mut committed_mid_stream = 0;
    for &r in &reports {
        online.push(r);
        committed_mid_stream = committed_mid_stream.max(online.committed().len());
    }
    assert!(committed_mid_stream > 0, "an 8-step lag must commit during the stream");
    let out = online.finalize();
    assert!(out.trail.len() >= committed_mid_stream);
    assert!(out.trail.points.iter().all(|p| p.x.is_finite() && p.y.is_finite()));
}

/// Satellite: the checkpoint/restore property sweep. Streams include
/// unsorted/duplicated adversarial input (flaky-office faults) so the
/// carry state being checkpointed is non-trivial.
#[test]
fn checkpoint_restore_resume_is_bitwise_at_every_cut_point() {
    // A synthetic clean stream swept at EVERY report boundary...
    let cfg_setup = coarse_letter('L');
    let cfg = polardraw_config_for(&cfg_setup);
    let synthetic: Vec<TagReport> = (0..150)
        .map(|i| TagReport {
            t: i as f64 * 0.01,
            antenna: i % 2,
            rssi_dbm: -40.0,
            phase_rad: (4.0 * std::f64::consts::PI * 0.06 * (i as f64 * 0.01) / 0.3276 + 1.0)
                .rem_euclid(std::f64::consts::TAU),
            channel: 24,
            epc: 1,
        })
        .collect();
    sweep_cuts(cfg, &synthetic, OnlineOptions { lag: 6, hold: 1, ..OnlineOptions::default() }, 1, "synthetic");

    // ...and real fault-injected letter streams at strided cut points,
    // across derived seeds.
    for trial in 0..3u64 {
        let mut setup = coarse_letter('S');
        setup.faults = Some(FaultPlan::flaky_office());
        let seed = derive_seed_indexed(0xC0FFEE, "ckpt.trial", trial);
        let (_, reports) = simulate_reports(&setup, seed);
        let cfg = polardraw_config_for(&setup);
        sweep_cuts(
            cfg,
            &reports,
            OnlineOptions { lag: 12, hold: 2, ..OnlineOptions::default() },
            reports.len() / 23 + 1,
            &format!("trial {trial}"),
        );
    }
}

fn sweep_cuts(
    cfg: polardraw_core::PolarDrawConfig,
    reports: &[TagReport],
    options: OnlineOptions,
    stride: usize,
    ctx: &str,
) {
    // The uninterrupted reference.
    let mut straight = OnlineTracker::new(cfg, options);
    straight.extend(reports);
    let reference = straight.finalize();

    for cut in (0..=reports.len()).step_by(stride) {
        let mut first = OnlineTracker::new(cfg, options);
        first.extend(&reports[..cut]);
        // Serialize through actual JSON text, not just the in-memory
        // value: the wire format is part of the contract.
        let text = first.checkpoint_string();
        drop(first);
        let mut resumed = OnlineTracker::restore_from_str(cfg, &text)
            .unwrap_or_else(|e| panic!("{ctx}: restore at cut {cut}: {e}"));
        resumed.extend(&reports[cut..]);
        assert_outputs_bitwise_equal(
            &resumed.finalize(),
            &reference,
            &format!("{ctx}, cut {cut}"),
        );
    }
}

#[test]
fn restore_rejects_tampered_and_mismatched_checkpoints() {
    let setup = coarse_letter('C');
    let (_, reports) = simulate_reports(&setup, 9);
    let cfg = polardraw_config_for(&setup);
    let mut online = OnlineTracker::new(cfg, OnlineOptions::default());
    online.extend(&reports[..reports.len() / 2]);
    let text = online.checkpoint_string();

    // A different configuration must be refused (fingerprint check).
    let other = cfg.with_wavelength(0.5);
    assert!(OnlineTracker::restore_from_str(other, &text).is_err());

    // Garbage and wrong-format documents error instead of panicking.
    assert!(OnlineTracker::restore_from_str(cfg, "not json").is_err());
    assert!(OnlineTracker::restore_from_str(cfg, "{\"format\": \"bogus.v0\"}").is_err());
}
