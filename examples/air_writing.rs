//! In-air writing (the paper's "whiteboard in the air", §5.2.3):
//! the same letters written on the board and in free space, showing the
//! accuracy cost of leaving the writing plane.
//!
//! ```text
//! cargo run --release --example air_writing
//! ```

use experiments::runner::{letter_accuracy, run_letter_trials, RunOpts};
use experiments::setup::TrialSetup;
use pen_sim::Scene;
use recognition::LetterRecognizer;
use rfid_sim::TrajectoryTracker;

fn main() {
    let letters = ['C', 'L', 'O', 'S', 'W'];
    let trials = 4;

    for (label, air) in [("whiteboard", false), ("in the air", true)] {
        let conditions: Vec<(char, TrialSetup)> = letters
            .iter()
            .map(|&ch| {
                let mut s = TrialSetup::letter(ch);
                if air {
                    s.scene = Scene::default().in_air();
                }
                (ch, s)
            })
            .collect();
        let results = run_letter_trials(&conditions, trials, 7, &RunOpts::default());
        println!(
            "{label:>11}: {:>3.0} % over {} trials",
            100.0 * letter_accuracy(&results),
            results.len()
        );
    }

    // Show one in-air session in detail.
    let scene = Scene::default().in_air();
    let profile = pen_sim::WriterProfile::natural();
    let session = pen_sim::scene::write_text(&scene, &profile, "W", 3);
    let max_wobble =
        session.poses.iter().map(|p| p.tip.z.abs()).fold(0.0, f64::max);
    println!("\nin-air session detail: peak out-of-plane wobble {:.1} cm", max_wobble * 100.0);

    let channel =
        rf_physics::ChannelModel::two_antenna_whiteboard(15f64.to_radians(), 0.56, 0.65);
    let reader = rfid_sim::Reader::new(channel);
    let poses: Vec<rfid_sim::reader::TagPose> = session
        .poses
        .iter()
        .map(|p| rfid_sim::reader::TagPose { t: p.t, position: p.tip, dipole: p.dipole })
        .collect();
    let reports = reader.inventory(&poses, 3);
    let tracker = polardraw_core::PolarDraw::new(polardraw_core::PolarDrawConfig::default());
    let trail = tracker.track(&reports);
    let rec = LetterRecognizer::new();
    println!(
        "tracked {} reports into {} trail points; recognized as {:?}",
        reports.len(),
        trail.len(),
        rec.classify(&trail.points)
    );
}
