//! Sharded fleet front door: the layer above [`ServePool`].
//!
//! One [`ServePool`] is one rig's worker pool; a deployment serving
//! thousands of pens needs a front door that routes sessions across
//! many pools and *keeps serving under overload*. [`FleetRouter`]
//! provides three mechanisms (see DESIGN.md "Fleet serving & overload
//! control"):
//!
//! * **Shard routing with rig affinity.** Sessions are keyed by
//!   [`ShardKey`] — the exact rig fingerprint
//!   [`hmm::artifacts_for`](crate::hmm::artifacts_for) keys its
//!   process-wide cache on (board extent, grid cell, antennas,
//!   wavelength, as f64 bit patterns). Sessions sharing a key land on
//!   the same shard until it fills past a soft cap, so every shard
//!   resolves its rigs' `Arc<DecodeArtifacts>` once and cache hits are
//!   maximized.
//! * **Bounded ingest with backpressure, never drops.**
//!   [`offer`](FleetRouter::offer) admits reports up to a per-shard
//!   queue bound and returns how many it accepted; the rest stay with
//!   the producer (reader links already buffer — `resume_after` in
//!   `rfid_sim::session`). No report, and no session, is ever dropped
//!   by the fleet.
//! * **Adaptive degradation with hysteresis.** A declarative
//!   [`DegradePolicy`] ladder (shorter lag → tighter adaptive beam →
//!   f32 kernel) is applied per shard when ingest occupancy stays above
//!   a high watermark, and unwound when it stays below a low one. The
//!   controller keys on queue occupancy only — never wall-clock — so
//!   fleet runs are deterministic and testable.
//!
//! Live sessions migrate between shards with
//! [`migrate`](FleetRouter::migrate): release from the source pool
//! (tracker + un-drained queue), round-trip through the bitwise
//! `polardraw.online.checkpoint.v1` format, adopt into the target, and
//! carry the queued reports over in order. When no rung change happens
//! in flight, the migrated session's output is bit-identical to never
//! having moved — `tests/fleet.rs` proves this at every cut point and
//! at thread counts 1/2/8.

use crate::hmm::{AdaptiveBeam, KernelPrecision};
use crate::online::{OnlineOptions, OnlineTracker};
use crate::serve::{DrainReport, PoolStats, ServePool, SessionId};
use crate::{PolarDrawConfig, TrackOutput};
use rfid_sim::TagReport;

/// Handle to one session behind the fleet front door (stable for the
/// router's lifetime, independent of which shard currently hosts it).
pub type FleetSessionId = usize;

/// The rig fingerprint used for shard affinity: exactly the fields
/// [`hmm::artifacts_for`](crate::hmm::artifacts_for) keys its
/// process-wide decode-artifact cache on, captured as f64 bit patterns
/// so keying is exact rather than approximate. Two sessions with equal
/// keys resolve to the same `Arc<DecodeArtifacts>` entry; a shard
/// hosting them pays for one emission table however many pens write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardKey {
    bits: [u64; 12],
}

impl ShardKey {
    /// The rig fingerprint of a session configuration.
    pub fn of(config: &PolarDrawConfig) -> ShardKey {
        let a = config.antennas;
        ShardKey {
            bits: [
                config.board_min.x.to_bits(),
                config.board_min.y.to_bits(),
                config.board_max.x.to_bits(),
                config.board_max.y.to_bits(),
                config.hmm.cell_m.to_bits(),
                config.hmm.wavelength_m.to_bits(),
                a[0].x.to_bits(),
                a[0].y.to_bits(),
                a[0].z.to_bits(),
                a[1].x.to_bits(),
                a[1].y.to_bits(),
                a[1].z.to_bits(),
            ],
        }
    }
}

/// One rung of the degradation ladder: the overrides that come into
/// effect when the controller steps down to (or past) this rung. Rungs
/// apply cumulatively — at level `k` every rung `0..k` is in effect —
/// and `None` fields leave the session's requested value untouched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradeRung {
    /// Cap the decoder decision lag at this many steps (commits come
    /// earlier; bounded-hindsight accuracy trade, no kernel change).
    pub max_lag: Option<usize>,
    /// Force the adaptive beam to (at least) this aggressive a setting.
    pub adaptive: Option<AdaptiveBeam>,
    /// Drop the kernel to f32 tables ([`KernelPrecision::F32Tolerance`]).
    pub f32_kernel: bool,
}

/// Declarative per-shard overload policy: watermark thresholds,
/// hysteresis counts, and the degradation ladder itself. The
/// controller runs once per [`FleetRouter::drain`] round on each
/// shard's ingest occupancy (queued reports ÷ `queue_cap`), entering
/// the round:
///
/// * occupancy ≥ `high_watermark` for `degrade_after` consecutive
///   rounds → step down one rung;
/// * occupancy ≤ `low_watermark` for `recover_after` consecutive
///   rounds → step back up one rung;
/// * anything in between resets both streaks (hysteresis — the fleet
///   neither flaps nor recovers into a still-loaded shard).
#[derive(Debug, Clone, PartialEq)]
pub struct DegradePolicy {
    /// Occupancy fraction at or above which a round counts as
    /// pressured.
    pub high_watermark: f64,
    /// Occupancy fraction at or below which a round counts as calm.
    pub low_watermark: f64,
    /// Consecutive pressured rounds before stepping down one rung.
    pub degrade_after: usize,
    /// Consecutive calm rounds before stepping back up one rung.
    pub recover_after: usize,
    /// The ladder, mildest first.
    pub ladder: Vec<DegradeRung>,
}

impl Default for DegradePolicy {
    fn default() -> DegradePolicy {
        DegradePolicy {
            high_watermark: 0.75,
            low_watermark: 0.25,
            degrade_after: 2,
            recover_after: 4,
            ladder: vec![
                // Rung 1: shorter hindsight. Pure latency/accuracy
                // trade, no kernel change — the mildest knob.
                DegradeRung { max_lag: Some(16), adaptive: None, f32_kernel: false },
                // Rung 2: tight adaptive beam — the frontier shrinks
                // wherever the survivor mass allows.
                DegradeRung {
                    max_lag: None,
                    adaptive: Some(AdaptiveBeam { margin: 4.0, min_keep: 64 }),
                    f32_kernel: false,
                },
                // Rung 3: f32 tables — the full fast kernel.
                DegradeRung { max_lag: None, adaptive: None, f32_kernel: true },
            ],
        }
    }
}

impl DegradePolicy {
    /// The effective streaming options at degradation `level` for a
    /// session that requested `requested` (level 0 = requested
    /// verbatim; levels clamp at the ladder length).
    pub fn options_at(&self, requested: OnlineOptions, level: usize) -> OnlineOptions {
        let mut out = requested;
        for rung in self.ladder.iter().take(level) {
            if let Some(cap) = rung.max_lag {
                out.lag = out.lag.min(cap.max(1));
            }
            if let Some(ab) = rung.adaptive {
                out.kernel.adaptive = Some(ab);
            }
            if rung.f32_kernel {
                out.kernel.precision = KernelPrecision::F32Tolerance;
            }
        }
        out
    }

    /// Number of rungs (the maximum degradation level).
    pub fn max_level(&self) -> usize {
        self.ladder.len()
    }
}

/// Front-door configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of [`ServePool`] shards.
    pub shards: usize,
    /// Worker threads per shard drain (thread count never changes any
    /// session's output — the `serve` bitwise contract).
    pub threads_per_shard: usize,
    /// Per-shard ingest bound: the most queued-but-undrained reports a
    /// shard accepts, summed over its sessions. [`FleetRouter::offer`]
    /// defers (returns short) past it.
    pub queue_cap: usize,
    /// Soft cap on live sessions per shard for affinity placement: a
    /// session whose rig already lives on a shard joins it only below
    /// this count, otherwise a new colony starts on the least-loaded
    /// shard (one giant rig must not pin the whole fleet to one shard).
    pub soft_session_cap: usize,
    /// Overload policy, applied independently per shard.
    pub policy: DegradePolicy,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            shards: 4,
            threads_per_shard: 1,
            queue_cap: 4096,
            soft_session_cap: 256,
            policy: DegradePolicy::default(),
        }
    }
}

/// Where one fleet session currently lives and what it asked for.
#[derive(Debug, Clone, Copy)]
struct Route {
    shard: usize,
    local: SessionId,
    key: ShardKey,
    requested: OnlineOptions,
    /// Degradation level currently applied to the session's tracker.
    applied_level: usize,
    live: bool,
    offered: usize,
    admitted: usize,
}

/// One shard: a pool plus its controller state.
#[derive(Debug)]
struct Shard {
    pool: ServePool,
    /// Fleet session ids currently hosted here (live only).
    sessions: Vec<FleetSessionId>,
    /// Reports admitted since the last drain (the ingest occupancy
    /// numerator; a drain consumes every queue, so this resets to 0).
    pending: usize,
    peak_pending: usize,
    level: usize,
    pressured_rounds: usize,
    calm_rounds: usize,
    degrade_steps: usize,
    recover_steps: usize,
}

/// What one [`FleetRouter::drain`] round did, summed over shards.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FleetDrainReport {
    /// Sessions woken across all shards.
    pub woken: usize,
    /// Reports consumed.
    pub reports: usize,
    /// Trail points committed.
    pub newly_committed: usize,
    /// Highest shard degradation level after this round.
    pub max_level: usize,
    /// Shards that stepped down a rung this round.
    pub degraded: usize,
    /// Shards that stepped back up a rung this round.
    pub recovered: usize,
}

/// Router-lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FleetStats {
    /// Sessions ever added.
    pub sessions: usize,
    /// Sessions still live (not finished). Migration never changes
    /// this — the fleet sheds fidelity, not sessions.
    pub live: usize,
    /// Reports offered through [`FleetRouter::offer`].
    pub offered: usize,
    /// Reports admitted (the difference was *deferred*, never dropped).
    pub admitted: usize,
    /// Live migrations performed.
    pub migrations: usize,
    /// Rung step-downs, summed over shards.
    pub degrade_steps: usize,
    /// Rung step-ups, summed over shards.
    pub recover_steps: usize,
    /// Highest degradation level any shard ever reached.
    pub peak_level: usize,
    /// Highest ingest occupancy (reports) any shard ever held.
    pub peak_pending: usize,
    /// Drain rounds run.
    pub drains: usize,
}

/// The sharded fleet front door. See the module docs.
///
/// ```
/// use polardraw_core::fleet::{FleetConfig, FleetRouter};
/// use polardraw_core::{OnlineOptions, PolarDrawConfig};
///
/// let mut fleet = FleetRouter::new(FleetConfig::default());
/// let pen = fleet.add_session(PolarDrawConfig::default(), OnlineOptions::default());
/// // … offer reports as they arrive (admission may be partial under
/// // load — re-offer what was deferred), then once per serving round:
/// let round = fleet.drain();
/// assert_eq!(round.woken, 0, "no reports yet");
/// let trails = fleet.finish();
/// assert_eq!(trails.len(), 1);
/// # let _ = pen;
/// ```
#[derive(Debug)]
pub struct FleetRouter {
    config: FleetConfig,
    shards: Vec<Shard>,
    routes: Vec<Route>,
    migrations: usize,
    peak_level: usize,
    drains: usize,
}

impl FleetRouter {
    /// Empty router with `config.shards` pools (clamped to ≥ 1).
    pub fn new(config: FleetConfig) -> FleetRouter {
        let n = config.shards.max(1);
        let shards = (0..n)
            .map(|_| Shard {
                pool: ServePool::new(config.threads_per_shard),
                sessions: Vec::new(),
                pending: 0,
                peak_pending: 0,
                level: 0,
                pressured_rounds: 0,
                calm_rounds: 0,
                degrade_steps: 0,
                recover_steps: 0,
            })
            .collect();
        FleetRouter { config, shards, routes: Vec::new(), migrations: 0, peak_level: 0, drains: 0 }
    }

    /// The router's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Affinity placement: among shards already hosting this rig key
    /// and still under the soft session cap, the least loaded; else the
    /// least-loaded shard overall (first index wins ties, so placement
    /// is deterministic).
    fn place(&self, key: ShardKey) -> usize {
        let mut affinity: Option<usize> = None;
        for (si, shard) in self.shards.iter().enumerate() {
            if shard.sessions.len() >= self.config.soft_session_cap {
                continue;
            }
            if shard.sessions.iter().any(|&id| self.routes[id].key == key) {
                let better = affinity
                    .map(|b| shard.sessions.len() < self.shards[b].sessions.len())
                    .unwrap_or(true);
                if better {
                    affinity = Some(si);
                }
            }
        }
        affinity.unwrap_or_else(|| {
            (0..self.shards.len())
                .min_by_key(|&si| self.shards[si].sessions.len())
                .expect("router has ≥ 1 shard")
        })
    }

    /// Add a session, routing it by rig key; returns its fleet handle.
    /// If the hosting shard is already degraded, the session starts at
    /// the shard's current rung.
    pub fn add_session(
        &mut self,
        config: PolarDrawConfig,
        options: OnlineOptions,
    ) -> FleetSessionId {
        let key = ShardKey::of(&config);
        let shard = self.place(key);
        let local = self.shards[shard].pool.add_session(config, options);
        let id = self.routes.len();
        self.routes.push(Route {
            shard,
            local,
            key,
            requested: options,
            applied_level: 0,
            live: true,
            offered: 0,
            admitted: 0,
        });
        self.shards[shard].sessions.push(id);
        self.apply_level(id);
        id
    }

    /// Offer reports for a session. Admits at most the hosting shard's
    /// remaining ingest budget and returns how many were accepted, from
    /// the front of `reports` in order; the caller keeps the rest and
    /// re-offers after the next drain. Nothing is ever dropped here —
    /// a deferred report is still the producer's.
    pub fn offer(&mut self, id: FleetSessionId, reports: &[TagReport]) -> usize {
        let route = self.routes[id];
        assert!(route.live, "session {id} already finished");
        let shard = &mut self.shards[route.shard];
        let budget = self.config.queue_cap.saturating_sub(shard.pending);
        let take = reports.len().min(budget);
        self.routes[id].offered += reports.len();
        if take > 0 {
            shard.pool.enqueue_batch(route.local, &reports[..take]);
            shard.pending += take;
            shard.peak_pending = shard.peak_pending.max(shard.pending);
            self.routes[id].admitted += take;
        }
        take
    }

    /// Remaining ingest budget of the shard hosting `id` — how many
    /// reports the next [`offer`](Self::offer) for it would accept.
    pub fn budget_for(&self, id: FleetSessionId) -> usize {
        let shard = &self.shards[self.routes[id].shard];
        self.config.queue_cap.saturating_sub(shard.pending)
    }

    /// One serving round over every shard: run the load controller on
    /// the occupancy entering the round (the backlog this drain is
    /// about to face), apply any rung change to the shard's live
    /// sessions, then drain the shard's pool.
    pub fn drain(&mut self) -> FleetDrainReport {
        self.drains += 1;
        let mut report = FleetDrainReport::default();
        for si in 0..self.shards.len() {
            let changed = self.run_controller(si, &mut report);
            if changed {
                for k in 0..self.shards[si].sessions.len() {
                    let id = self.shards[si].sessions[k];
                    self.apply_level(id);
                }
            }
            let shard = &mut self.shards[si];
            let round: DrainReport = shard.pool.drain();
            shard.pending = 0;
            report.woken += round.woken;
            report.reports += round.reports;
            report.newly_committed += round.newly_committed;
            report.max_level = report.max_level.max(shard.level);
        }
        self.peak_level = self.peak_level.max(report.max_level);
        report
    }

    /// The watermark/hysteresis controller for one shard. Returns
    /// whether the level changed.
    fn run_controller(&mut self, si: usize, report: &mut FleetDrainReport) -> bool {
        let policy = &self.config.policy;
        let cap = self.config.queue_cap.max(1);
        let shard = &mut self.shards[si];
        let occupancy = shard.pending as f64 / cap as f64;
        if occupancy >= policy.high_watermark {
            shard.calm_rounds = 0;
            shard.pressured_rounds += 1;
            if shard.pressured_rounds >= policy.degrade_after && shard.level < policy.ladder.len()
            {
                shard.level += 1;
                shard.pressured_rounds = 0;
                shard.degrade_steps += 1;
                report.degraded += 1;
                return true;
            }
        } else if occupancy <= policy.low_watermark {
            shard.pressured_rounds = 0;
            shard.calm_rounds += 1;
            if shard.calm_rounds >= policy.recover_after && shard.level > 0 {
                shard.level -= 1;
                shard.calm_rounds = 0;
                shard.recover_steps += 1;
                report.recovered += 1;
                return true;
            }
        } else {
            shard.pressured_rounds = 0;
            shard.calm_rounds = 0;
        }
        false
    }

    /// Sync one session's tracker to its hosting shard's current rung.
    fn apply_level(&mut self, id: FleetSessionId) {
        let (shard_idx, local, requested, applied) = {
            let r = &self.routes[id];
            (r.shard, r.local, r.requested, r.applied_level)
        };
        let level = self.shards[shard_idx].level;
        if applied == level {
            return;
        }
        let eff = self.config.policy.options_at(requested, level);
        let tracker = self.shards[shard_idx].pool.tracker_mut(local);
        tracker.set_kernel(eff.kernel);
        let _ = tracker.set_lag(eff.lag);
        self.routes[id].applied_level = level;
    }

    /// Live-migrate a session to `to_shard` through the bitwise
    /// `checkpoint.v1` round trip: release it from the source pool
    /// (tracker + un-drained queue), checkpoint, restore, adopt into
    /// the target, and carry the queued reports over in enqueue order.
    /// The migrated session observes exactly the push sequence it would
    /// have observed staying put, so when no rung change intervenes its
    /// output is bit-identical to never having moved (`tests/fleet.rs`
    /// proves this at every cut point). Carried reports bypass the
    /// target's ingest budget — migration must not lose what was
    /// already admitted. Afterwards the session runs the *target*
    /// shard's rung.
    ///
    /// Returns the checkpoint document's length in bytes (the migration
    /// payload). Migrating a session onto its own shard is a no-op
    /// returning 0.
    pub fn migrate(&mut self, id: FleetSessionId, to_shard: usize) -> usize {
        assert!(to_shard < self.shards.len(), "no shard {to_shard}");
        let route = self.routes[id];
        assert!(route.live, "session {id} already finished");
        if route.shard == to_shard {
            return 0;
        }
        let (tracker, queued) = self.shards[route.shard].pool.release(route.local);
        let config = *tracker.config();
        let text = tracker.checkpoint_string();
        drop(tracker);
        let restored = OnlineTracker::restore_from_str(config, &text)
            .expect("a live tracker's checkpoint always restores");
        let local = self.shards[to_shard].pool.adopt(restored);
        if !queued.is_empty() {
            self.shards[route.shard].pending -= queued.len();
            self.shards[to_shard].pool.enqueue_batch(local, &queued);
            self.shards[to_shard].pending += queued.len();
            self.shards[to_shard].peak_pending =
                self.shards[to_shard].peak_pending.max(self.shards[to_shard].pending);
        }
        self.shards[route.shard].sessions.retain(|&s| s != id);
        self.shards[to_shard].sessions.push(id);
        self.routes[id].shard = to_shard;
        self.routes[id].local = local;
        self.migrations += 1;
        // The target may run a different rung than the source did.
        self.apply_level(id);
        text.len()
    }

    /// Which shard currently hosts a session.
    pub fn shard_of(&self, id: FleetSessionId) -> usize {
        self.routes[id].shard
    }

    /// A shard's current degradation level (0 = full fidelity).
    pub fn level(&self, shard: usize) -> usize {
        self.shards[shard].level
    }

    /// Reports queued on a shard, not yet drained.
    pub fn pending(&self, shard: usize) -> usize {
        self.shards[shard].pending
    }

    /// Live sessions hosted on a shard.
    pub fn sessions_on(&self, shard: usize) -> usize {
        self.shards[shard].sessions.len()
    }

    /// The streaming options a session's tracker is currently running
    /// (its request, degraded to the hosting shard's applied rung).
    pub fn effective_options(&self, id: FleetSessionId) -> OnlineOptions {
        let r = &self.routes[id];
        self.config.policy.options_at(r.requested, r.applied_level)
    }

    /// Read-only access to a live session's tracker (checkpointing,
    /// committed-trail peeking, artifact-sharing assertions).
    pub fn tracker(&self, id: FleetSessionId) -> &OnlineTracker {
        let r = &self.routes[id];
        self.shards[r.shard].pool.tracker(r.local)
    }

    /// (offered, admitted) report counts for one session; the
    /// difference was deferred back to the producer, never dropped.
    pub fn session_flow(&self, id: FleetSessionId) -> (usize, usize) {
        let r = &self.routes[id];
        (r.offered, r.admitted)
    }

    /// A shard's pool-lifetime counters.
    pub fn pool_stats(&self, shard: usize) -> PoolStats {
        self.shards[shard].pool.stats()
    }

    /// Router-lifetime counters.
    pub fn stats(&self) -> FleetStats {
        let mut s = FleetStats {
            sessions: self.routes.len(),
            live: self.routes.iter().filter(|r| r.live).count(),
            migrations: self.migrations,
            peak_level: self.peak_level,
            drains: self.drains,
            ..FleetStats::default()
        };
        for r in &self.routes {
            s.offered += r.offered;
            s.admitted += r.admitted;
        }
        for sh in &self.shards {
            s.degrade_steps += sh.degrade_steps;
            s.recover_steps += sh.recover_steps;
            s.peak_pending = s.peak_pending.max(sh.peak_pending);
        }
        s
    }

    /// Finish one session now: drain its remaining queue and finalize
    /// its trail. The handle stays allocated.
    pub fn finish_session(&mut self, id: FleetSessionId) -> TrackOutput {
        let route = self.routes[id];
        assert!(route.live, "session {id} already finished");
        let shard = &mut self.shards[route.shard];
        shard.pending = shard.pending.saturating_sub(shard.pool.pending(route.local));
        shard.sessions.retain(|&s| s != id);
        self.routes[id].live = false;
        self.shards[route.shard].pool.finish_session(route.local)
    }

    /// Finalize every live session; trails in fleet-id order, paired
    /// with their ids (sessions finished earlier are omitted).
    pub fn finish(mut self) -> Vec<(FleetSessionId, TrackOutput)> {
        let mut out = Vec::new();
        for id in 0..self.routes.len() {
            if self.routes[id].live {
                out.push((id, self.finish_session(id)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coarse_config() -> PolarDrawConfig {
        let mut cfg = PolarDrawConfig::default();
        cfg.hmm.cell_m *= 8.0;
        cfg
    }

    fn other_rig() -> PolarDrawConfig {
        let mut cfg = PolarDrawConfig::default();
        cfg.hmm.cell_m *= 4.0;
        cfg
    }

    fn stream(n: usize, t0: f64) -> Vec<TagReport> {
        (0..n)
            .map(|i| TagReport {
                t: t0 + i as f64 * 0.01,
                antenna: i % 2,
                rssi_dbm: -55.0,
                phase_rad: rf_core::wrap_tau(0.02 * i as f64),
                channel: 0,
                epc: 0xF1EE7,
            })
            .collect()
    }

    #[test]
    fn shard_key_is_the_rig_fingerprint() {
        assert_eq!(ShardKey::of(&coarse_config()), ShardKey::of(&coarse_config()));
        assert_ne!(ShardKey::of(&coarse_config()), ShardKey::of(&other_rig()));
        let mut moved = coarse_config();
        moved.antennas[1].x += 1e-12;
        assert_ne!(ShardKey::of(&coarse_config()), ShardKey::of(&moved), "keying is exact");
    }

    #[test]
    fn same_rig_sessions_share_a_shard_distinct_rigs_spread() {
        let mut fleet = FleetRouter::new(FleetConfig { shards: 3, ..FleetConfig::default() });
        let a0 = fleet.add_session(coarse_config(), OnlineOptions::default());
        let b0 = fleet.add_session(other_rig(), OnlineOptions::default());
        let a1 = fleet.add_session(coarse_config(), OnlineOptions::default());
        let b1 = fleet.add_session(other_rig(), OnlineOptions::default());
        assert_eq!(fleet.shard_of(a0), fleet.shard_of(a1), "rig affinity");
        assert_eq!(fleet.shard_of(b0), fleet.shard_of(b1), "rig affinity");
        assert_ne!(fleet.shard_of(a0), fleet.shard_of(b0), "distinct rigs spread");
    }

    #[test]
    fn soft_cap_spills_a_giant_rig_across_shards() {
        let mut fleet = FleetRouter::new(FleetConfig {
            shards: 4,
            soft_session_cap: 3,
            ..FleetConfig::default()
        });
        for _ in 0..12 {
            fleet.add_session(coarse_config(), OnlineOptions::default());
        }
        for si in 0..4 {
            assert_eq!(fleet.sessions_on(si), 3, "soft cap balances the colony");
        }
    }

    #[test]
    fn offer_defers_past_the_queue_cap_and_never_drops() {
        let mut fleet = FleetRouter::new(FleetConfig {
            shards: 1,
            queue_cap: 100,
            ..FleetConfig::default()
        });
        let id = fleet.add_session(coarse_config(), OnlineOptions::default());
        let reports = stream(250, 0.0);
        let took = fleet.offer(id, &reports);
        assert_eq!(took, 100, "admission stops at the cap");
        assert_eq!(fleet.pending(0), 100);
        assert_eq!(fleet.offer(id, &reports[took..]), 0, "shard is full until drained");
        fleet.drain();
        assert_eq!(fleet.pending(0), 0, "drain clears the backlog");
        let took2 = fleet.offer(id, &reports[took..]);
        assert_eq!(took2, 100);
        let (offered, admitted) = fleet.session_flow(id);
        assert_eq!(offered, 250 + 150 + 150, "every offer (including re-offers) counted");
        assert_eq!(admitted, 200, "deferred ≠ dropped: the rest is still the producer's");
    }

    #[test]
    fn controller_degrades_under_pressure_and_recovers_with_hysteresis() {
        let policy = DegradePolicy::default();
        let mut fleet = FleetRouter::new(FleetConfig {
            shards: 1,
            queue_cap: 100,
            policy: policy.clone(),
            ..FleetConfig::default()
        });
        let id = fleet.add_session(coarse_config(), OnlineOptions::default());
        let requested = fleet.effective_options(id);

        // Pressure: fill to the cap each round.
        let burst = stream(100, 0.0);
        let mut t = 0.0;
        let mut seen_levels = Vec::new();
        for _ in 0..10 {
            let burst: Vec<TagReport> = burst.iter().map(|r| {
                let mut r = *r;
                r.t += t;
                r
            }).collect();
            fleet.offer(id, &burst);
            fleet.drain();
            seen_levels.push(fleet.level(0));
            t += 2.0;
        }
        assert_eq!(fleet.level(0), policy.max_level(), "sustained overload walks the ladder");
        for w in seen_levels.windows(2) {
            assert!(w[1] >= w[0], "degradation is monotone under sustained pressure");
        }
        let degraded = fleet.effective_options(id);
        assert!(degraded.lag < requested.lag);
        assert_eq!(degraded.kernel.precision, KernelPrecision::F32Tolerance);
        assert!(degraded.kernel.adaptive.is_some());

        // Calm: empty rounds. Recovery needs `recover_after` calm
        // rounds per rung — count them.
        let mut rounds_to_recover = 0;
        while fleet.level(0) > 0 {
            fleet.drain();
            rounds_to_recover += 1;
            assert!(rounds_to_recover < 100, "recovery must terminate");
        }
        assert_eq!(
            rounds_to_recover,
            policy.recover_after * policy.max_level(),
            "hysteresis: one rung per {} calm rounds",
            policy.recover_after
        );
        assert_eq!(fleet.effective_options(id), requested, "full fidelity restored");
        let s = fleet.stats();
        assert_eq!(s.degrade_steps, policy.max_level());
        assert_eq!(s.recover_steps, policy.max_level());
        assert_eq!(s.peak_level, policy.max_level());
        assert_eq!(s.live, 1, "no session was dropped");
    }

    #[test]
    fn migration_moves_the_session_and_its_queue() {
        let mut fleet = FleetRouter::new(FleetConfig {
            shards: 2,
            queue_cap: 1000,
            ..FleetConfig::default()
        });
        let id = fleet.add_session(coarse_config(), OnlineOptions::default());
        let from = fleet.shard_of(id);
        let to = 1 - from;
        fleet.offer(id, &stream(50, 0.0));
        assert_eq!(fleet.pending(from), 50);
        let bytes = fleet.migrate(id, to);
        assert!(bytes > 0, "checkpoint payload measured");
        assert_eq!(fleet.shard_of(id), to);
        assert_eq!(fleet.pending(from), 0, "queue went with the session");
        assert_eq!(fleet.pending(to), 50);
        assert_eq!(fleet.sessions_on(from), 0);
        assert_eq!(fleet.sessions_on(to), 1);
        assert_eq!(fleet.migrate(id, to), 0, "same-shard migration is a no-op");
        let round = fleet.drain();
        assert_eq!(round.reports, 50, "carried reports are served on the target");
        assert_eq!(fleet.stats().migrations, 1);
    }
}
