//! Durability-layer integration suite (tier 1).
//!
//! * **Mutation sweep** — 2000 deterministic corruptions of a sealed
//!   `checkpoint.v2` envelope through `rfid_sim::chaos::mutate_bytes`
//!   (bit flips, truncation, garbage extension, field rewrites,
//!   splices, wholesale noise). Restore must be total: every case is
//!   either a clean `Ok` whose state is bit-identical to the original,
//!   or a typed `RestoreError` that renders — never a panic. Mirrors
//!   the `llrp::decode_report` wire sweep, so both untrusted-byte
//!   surfaces get the same treatment.
//! * **v1 → v2 migration golden** — a legacy `checkpoint.v1` document
//!   opens as generation 0 and re-seals into a byte-pinned v2 envelope
//!   (snapshot under `tests/snapshots/`; regenerate with
//!   `GOLDEN_REGEN=1` and review the diff).
//! * **Store crash semantics** — staged-but-uncommitted writes stay
//!   invisible, walk-back recovery survives corrupted newest
//!   generations, and a fully rotten store returns a typed error.

use polardraw_core::{
    durability, open_checkpoint, seal_checkpoint, CheckpointStore, OnlineOptions, OnlineTracker,
    PolarDrawConfig, RestoreError,
};
use rfid_sim::chaos::mutate_bytes;
use rfid_sim::TagReport;
use std::path::PathBuf;

fn coarse_config() -> PolarDrawConfig {
    let mut cfg = PolarDrawConfig::default();
    cfg.hmm.cell_m *= 8.0;
    cfg
}

fn stream(n: usize, t0: f64) -> Vec<TagReport> {
    (0..n)
        .map(|i| TagReport {
            t: t0 + i as f64 * 0.01,
            antenna: i % 2,
            rssi_dbm: -52.0 - (i % 5) as f64 * 0.5,
            phase_rad: rf_core::wrap_tau(0.03 * i as f64),
            channel: i % 4,
            epc: 0xD0_0D5,
        })
        .collect()
}

/// A tracker with real decoded state (not a blank slate), so the sweep
/// exercises the full payload surface: frames, frontier, preprocess
/// windows, model state.
fn warmed_tracker() -> OnlineTracker {
    let mut tracker = OnlineTracker::new(coarse_config(), OnlineOptions::default());
    for r in stream(120, 0.0) {
        tracker.push(r);
    }
    tracker
}

fn snapshot_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/snapshots").join(name)
}

fn assert_matches_snapshot(name: &str, actual: &str) {
    let path = snapshot_path(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing snapshot {} ({e}); run GOLDEN_REGEN=1", path.display()));
    assert!(
        expected == actual,
        "{name}: the checkpoint envelope format drifted.\n\
         If this change is intentional, regenerate with GOLDEN_REGEN=1, review the \
         diff, and bump the format tag if old documents can no longer restore."
    );
}

#[test]
fn restore_survives_2000_mutated_envelopes() {
    let tracker = warmed_tracker();
    let reference = tracker.checkpoint_string();
    let sealed = seal_checkpoint(&tracker, 3);

    let mut accepted = 0;
    let mut rejected = 0;
    for case in 0..2000u64 {
        let mutated = mutate_bytes(sealed.as_bytes(), case);
        let opened = match std::str::from_utf8(&mutated) {
            Ok(text) => open_checkpoint(coarse_config(), text),
            // Non-UTF-8 corruption is rejected before parsing, the
            // same way `CheckpointStore::recover` rejects it.
            Err(_) => Err(RestoreError::Field("not UTF-8".into())),
        };
        match opened {
            Ok(restored) => {
                // The CRC admits only semantically identical bytes
                // (e.g. a truncation at full length): the restored
                // state must be bit-identical to the original.
                assert_eq!(restored.generation, 3, "case {case}");
                assert_eq!(
                    restored.tracker.checkpoint_string(),
                    reference,
                    "case {case}: corrupted bytes restored to different state"
                );
                accepted += 1;
            }
            Err(e) => {
                // Typed errors must render without panicking.
                let rendered = e.to_string();
                assert!(!rendered.is_empty(), "case {case}");
                rejected += 1;
            }
        }
    }
    // The sweep is only meaningful if the vast majority of corruptions
    // are actually caught.
    assert!(rejected > 1900, "only {rejected}/2000 rejected");
    assert!(accepted + rejected == 2000);
}

#[test]
fn v1_documents_migrate_to_a_pinned_v2_envelope() {
    let tracker = warmed_tracker();
    let v1 = tracker.checkpoint_string();
    assert!(
        v1.contains("polardraw.online.checkpoint.v1"),
        "precondition: the legacy format tag is intact"
    );

    // A bare v1 document opens as generation 0 …
    let restored = open_checkpoint(coarse_config(), &v1).expect("v1 opens");
    assert_eq!(restored.generation, 0);
    assert_eq!(restored.tracker.checkpoint_string(), v1, "v1 round trip is bitwise");

    // … and re-seals into a v2 envelope whose exact bytes are pinned:
    // any unreviewed format drift (field rename, CRC definition change,
    // serialization change) fails here before it strands old stores.
    let migrated = seal_checkpoint(&restored.tracker, 1);
    assert_matches_snapshot("checkpoint_v2_migration.json", &migrated);

    // The pinned envelope itself restores, to the same v1 payload.
    let reopened = open_checkpoint(coarse_config(), &migrated).expect("v2 opens");
    assert_eq!(reopened.generation, 1);
    assert_eq!(reopened.tracker.checkpoint_string(), v1);

    // And its recorded rig CRC matches the live computation.
    assert!(migrated
        .contains(&format!("\"rig_crc\":{}", durability::rig_crc(&coarse_config()))));
}

#[test]
fn store_walks_back_over_chaos_corruption() {
    let mut store = CheckpointStore::in_memory(3);
    let mut tracker = OnlineTracker::new(coarse_config(), OnlineOptions::default());
    let mut sealed_states = Vec::new();
    for round in 0..4 {
        for r in stream(60, round as f64 * 0.6) {
            tracker.push(r);
        }
        let generation = store.save(9, &tracker);
        sealed_states.push((generation, tracker.checkpoint_string()));
    }
    assert_eq!(store.generations(9), vec![2, 3, 4], "keep=3 pruned generation 1");

    // Chaos-corrupt the newest two generations; recovery must land on
    // generation 2 and reproduce exactly the state sealed then.
    for (i, &generation) in [4u64, 3].iter().enumerate() {
        let bytes = store.read(9, generation).unwrap();
        let mut corrupt = mutate_bytes(&bytes, 1000 + i as u64);
        if corrupt == bytes {
            corrupt.truncate(bytes.len() / 2);
        }
        store.overwrite(9, generation, &corrupt);
    }
    let recovered = store.recover(9, coarse_config()).expect("walk-back");
    assert_eq!(recovered.generation, 2);
    assert_eq!(recovered.fallbacks, 2);
    let expected = &sealed_states.iter().find(|(g, _)| *g == 2).unwrap().1;
    assert_eq!(&recovered.tracker.checkpoint_string(), expected);

    // Rot the last good one too: typed error, not a panic.
    store.overwrite(9, 2, b"\xFF\xFEnot a checkpoint");
    let err = store.recover(9, coarse_config()).unwrap_err();
    assert!(!err.to_string().is_empty());
    assert_eq!(store.recover(1234, coarse_config()).unwrap_err(), RestoreError::Missing);
}

#[test]
fn a_torn_write_never_becomes_visible() {
    let mut store = CheckpointStore::in_memory(2);
    let tracker = warmed_tracker();
    store.save(5, &tracker);

    // Writer crashes after staging generation 2 but before commit.
    let next = seal_checkpoint(&tracker, 2);
    store.stage(5, 2, next.as_bytes());
    assert_eq!(store.latest(5), Some(1), "staged bytes are invisible");
    assert_eq!(store.recover(5, coarse_config()).expect("recover").generation, 1);

    // The restarted writer completes the commit; only now it lands.
    assert!(store.commit(5, 2));
    assert_eq!(store.recover(5, coarse_config()).expect("recover").generation, 2);
}
