//! Figure 2: the teaser — recovered trajectories for "WoW, M, C, W, Z".

use crate::report::Report;
use crate::runner::RunOpts;
use crate::setup::{run_trial, TrialSetup};
use recognition::procrustes_distance;

/// The items of Fig. 2 (lowercase maps to uppercase glyphs).
pub const ITEMS: [&str; 5] = ["WOW", "M", "C", "W", "Z"];

/// Track each item once and report trajectory fidelity.
pub fn run(opts: &RunOpts) -> Vec<Report> {
    let mut report = Report::new(
        "fig02",
        "Recovered trajectory gallery: WoW, M, C, W, Z",
        "recognizable handwriting recovered with two antennas",
    )
    .headers(vec!["Item", "Truth points", "Trail points", "Procrustes (cm)"]);
    for (i, item) in ITEMS.iter().enumerate() {
        let setup = TrialSetup::word(item).with_cell_scale(opts.cell_scale);
        let run = run_trial(&setup, opts.seed.wrapping_add(i as u64));
        let d = procrustes_distance(&run.truth, &run.trail.points, 64);
        report.push_row(vec![
            item.to_string(),
            run.truth.len().to_string(),
            run.trail.len().to_string(),
            d.map_or("—".into(), |d| format!("{:.1}", d * 100.0)),
        ]);
    }
    report.push_note("trajectory CSVs are written next to this report by the repro harness");
    vec![report]
}

/// Recovered (truth, trail) point pairs for plotting — used by the
/// repro harness to dump per-item CSV files.
pub fn trajectories(opts: &RunOpts) -> Vec<(String, Vec<rf_core::Vec2>, Vec<rf_core::Vec2>)> {
    ITEMS
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let setup = TrialSetup::word(item).with_cell_scale(opts.cell_scale);
            let run = run_trial(&setup, opts.seed.wrapping_add(i as u64));
            (item.to_string(), run.truth, run.trail.points)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_match_the_figure() {
        assert_eq!(ITEMS, ["WOW", "M", "C", "W", "Z"]);
    }
}
