//! Smoke test: every registered experiment runs end to end on a
//! reduced configuration and produces sane output.
//!
//! The per-experiment tests elsewhere cover the headline artifacts in
//! depth; this sweep guarantees *coverage* — an experiment added to the
//! registry (or an id like fig14/fig20/fig22/table7/table8 produced as
//! a secondary report) cannot silently break, because every id is
//! executed here with `trials = 1`.

use experiments::runner::RunOpts;
use experiments::{all_experiments, Report};
use std::collections::BTreeSet;

fn smoke_opts() -> RunOpts {
    // The reduced configuration: one trial per condition, and every
    // tracker's grid coarsened 8× (2.5 mm → 2 cm cells). That trades
    // accuracy — which this test does not assert — for a sweep that
    // drives all 20 artifacts end to end in test-scale time.
    RunOpts { trials: 1, cell_scale: 8.0, ..RunOpts::default() }
}

/// A report cell is either non-numeric text (labels, letter names, the
/// occasional blank presentation cell) or a parseable finite number.
/// "nan"/"inf" leaking into a table is a bug.
fn assert_cells_sane(report: &Report) {
    assert!(!report.id.is_empty(), "report with empty id");
    assert!(!report.rows.is_empty(), "{}: no data rows", report.id);
    for (r, row) in report.rows.iter().enumerate() {
        assert!(!row.is_empty(), "{}: row {r} is empty", report.id);
        for (c, cell) in row.iter().enumerate() {
            if let Ok(x) = cell.trim().trim_end_matches('%').parse::<f64>() {
                assert!(
                    x.is_finite(),
                    "{}: non-finite value {cell:?} at row {r} col {c}",
                    report.id
                );
            } else {
                let lower = cell.to_ascii_lowercase();
                assert!(
                    !lower.contains("nan") && !lower.contains("inf"),
                    "{}: suspicious cell {cell:?} at row {r} col {c}",
                    report.id
                );
            }
        }
    }
}

#[test]
fn every_experiment_runs_on_reduced_config() {
    let opts = smoke_opts();
    let mut produced: BTreeSet<String> = BTreeSet::new();
    for def in all_experiments() {
        let reports = (def.run)(&opts);
        assert!(!reports.is_empty(), "{}: produced no reports", def.id);
        let got: Vec<&str> = reports.iter().map(|r| r.id.as_str()).collect();
        for want in def.produces {
            assert!(
                got.contains(want),
                "{}: promised report {want} missing (got {got:?})",
                def.id
            );
        }
        for report in &reports {
            assert_cells_sane(report);
            produced.insert(report.id.clone());
        }
    }
    // The full paper artifact set, including the secondary ids.
    for id in [
        "table1", "fig02", "fig03b", "fig03c", "fig09", "fig10", "fig13", "fig14", "fig15",
        "fig16", "fig18", "fig19", "fig20", "fig21", "fig22", "table5", "table6", "table7",
        "table8", "faults", "streaming", "fleet", "overload", "polarization",
    ] {
        assert!(produced.contains(id), "artifact {id} was never produced");
    }
}

#[test]
fn fast_kernel_path_runs_the_registry_pipeline() {
    // `repro --kernel fast` plumbing: a non-exact kernel selection in
    // RunOpts reaches every PolarDraw trial. Run a cheap full-pipeline
    // experiment under it and check the output stays sane and
    // deterministic (fast kernels trade f64-exactness, not
    // reproducibility).
    let opts = RunOpts {
        kernel: polardraw_core::hmm::KernelOptions::fast(),
        ..smoke_opts()
    };
    let def = experiments::registry::find("fig10").expect("fig10 registered");
    let a = (def.run)(&opts);
    let b = (def.run)(&opts);
    assert!(!a.is_empty());
    for report in &a {
        assert_cells_sane(report);
    }
    assert_eq!(a, b, "fast-kernel runs must stay run-to-run deterministic");
}

#[test]
fn jones_channel_runs_the_registry_pipeline() {
    // `repro --channel jones` plumbing: a non-scalar channel selection
    // in RunOpts reaches every trial's RF rig. Run a cheap
    // full-pipeline experiment under it and check the output stays sane
    // and deterministic.
    let opts = RunOpts { channel: pen_sim::scene::ChannelMode::Jones, ..smoke_opts() };
    let def = experiments::registry::find("fig10").expect("fig10 registered");
    let a = (def.run)(&opts);
    let b = (def.run)(&opts);
    assert!(!a.is_empty());
    for report in &a {
        assert_cells_sane(report);
    }
    assert_eq!(a, b, "jones-channel runs must stay run-to-run deterministic");
}

#[test]
fn reduced_runs_are_deterministic() {
    // Same seed ⇒ byte-identical reports, across two fresh runs of a
    // cheap experiment that exercises the whole pipeline.
    let opts = smoke_opts();
    let def = experiments::registry::find("fig10").expect("fig10 registered");
    let a = (def.run)(&opts);
    let b = (def.run)(&opts);
    assert_eq!(a, b, "fig10 not reproducible for seed {}", opts.seed);
}
