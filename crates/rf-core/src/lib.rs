//! # rf-core — foundations for the PolarDraw reproduction
//!
//! Small, dependency-light building blocks shared by every other crate in
//! the workspace:
//!
//! * [`vec`] — 2-D and 3-D vectors with the handful of operations an RF
//!   geometry simulation needs (dot/cross products, norms, projections).
//! * [`angle`] — angle wrapping and conversion helpers. Phase arithmetic on
//!   the unit circle is the single most bug-prone part of RFID tracking
//!   code, so it lives here behind a tested API.
//! * [`complex`] — a minimal `Complex` type for baseband channel gains.
//! * [`db`] — decibel/linear power conversions (dBm ↔ mW, dB ↔ ratio).
//! * [`mat`] — 2×2 matrices (rotations for trajectory correction, Eq. 10
//!   of the paper).
//! * [`stats`] — descriptive statistics used by the evaluation harness
//!   (means, percentiles, empirical CDFs).
//! * [`rng`] — the workspace-standard seeded PRNG (xoshiro256++) and
//!   seed derivation so that every experiment in the workspace is
//!   reproducible from a single `u64`.
//! * [`par`] — the workspace's scoped-thread fan-out primitives
//!   ([`parallel_map`] and [`par::parallel_for_each_mut`]), shared by
//!   experiment trial sweeps, the emission-table row build, and the
//!   multi-session serve pool.
//! * [`json`] — a minimal JSON writer/parser so result dumps and
//!   scenario configs need no external serialization crate.
//! * [`crc`] — CRC-32 (IEEE) for checksummed checkpoint envelopes.
//! * [`store`] — the [`store::BlobStore`] virtual key/bytes store the
//!   durability layer persists through (with [`store::MemBlobStore`]
//!   as the in-memory reference backend).
//!
//! Nothing in this crate knows about RFID, antennas, or pens; it is pure
//! math. Higher layers are `rf-physics` (electromagnetics), `rfid-sim`
//! (the reader/tag protocol), `pen-sim` (the workload), `polardraw-core`
//! (the paper's algorithm), `baselines`, `recognition`, and `experiments`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod angle;
pub mod complex;
pub mod crc;
pub mod db;
pub mod json;
pub mod store;
pub mod mat;
pub mod par;
pub mod rng;
pub mod stats;
pub mod vec;

pub use angle::{deg_to_rad, rad_to_deg, wrap_pi, wrap_tau, Angle};
pub use complex::Complex;
pub use crc::crc32;
pub use db::{db_to_ratio, dbm_to_mw, mw_to_dbm, ratio_to_db};
pub use json::{FromJson, Json, JsonError, ToJson};
pub use mat::Mat2;
pub use par::{chunk_bounds, parallel_for_each_mut, parallel_map};
pub use rng::Rng64;
pub use store::{BlobStore, MemBlobStore};
pub use vec::{Vec2, Vec3};

/// Speed of light in vacuum, metres per second.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Convert a carrier frequency in hertz to its wavelength in metres.
///
/// The UHF RFID band in the US spans 902–928 MHz, giving wavelengths of
/// roughly 32.3–33.2 cm; the paper's λ/2 ≈ 16 cm displacement bound
/// (§3.4) comes straight from this.
///
/// # Examples
/// ```
/// let lambda = rf_core::wavelength(915.0e6);
/// assert!((lambda - 0.3276).abs() < 1e-3);
/// ```
pub fn wavelength(freq_hz: f64) -> f64 {
    SPEED_OF_LIGHT / freq_hz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavelength_of_uhf_band() {
        // 902 and 928 MHz bracket the FCC band; both must be ~33 cm.
        assert!((wavelength(902.0e6) - 0.33236).abs() < 1e-4);
        assert!((wavelength(928.0e6) - 0.32305).abs() < 1e-4);
    }

    #[test]
    fn half_wavelength_matches_papers_16cm_bound() {
        let half = wavelength(915.0e6) / 2.0;
        assert!((half - 0.1638).abs() < 1e-3, "λ/2 ≈ 16 cm per §3.4");
    }
}
