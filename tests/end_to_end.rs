//! Cross-crate integration tests: the full simulate → read → track →
//! recognize stack.

use experiments::setup::{run_trial, TrackerKind, TrialSetup};
use recognition::{procrustes_distance, LetterRecognizer};
use rfid_sim::llrp;

#[test]
fn full_stack_tracks_and_recognizes_a_letter() {
    let setup = TrialSetup::letter('L');
    let run = run_trial(&setup, 42);
    assert!(!run.reports.is_empty(), "the reader must produce reports");
    assert!(!run.trail.is_empty(), "the tracker must produce a trail");

    let d = procrustes_distance(&run.truth, &run.trail.points, 64)
        .expect("both trajectories are non-degenerate");
    assert!(d < 0.10, "Procrustes distance {d} m is beyond the paper's error regime");

    let rec = LetterRecognizer::new();
    assert_eq!(rec.classify(&run.trail.points), Some('L'));
}

#[test]
fn all_five_trackers_produce_plausible_trails() {
    for kind in [
        TrackerKind::PolarDraw,
        TrackerKind::PolarDrawNoPolarization,
        TrackerKind::Tagoram2,
        TrackerKind::Tagoram4,
        TrackerKind::RfIdraw4,
    ] {
        let setup = TrialSetup::letter('I').with_tracker(kind);
        let run = run_trial(&setup, 7);
        assert!(!run.trail.is_empty(), "{kind:?} produced an empty trail");
        for p in &run.trail.points {
            assert!(p.x.is_finite() && p.y.is_finite(), "{kind:?} produced non-finite points");
            assert!(
                (-1.0..=2.0).contains(&p.x) && (-1.0..=2.5).contains(&p.y),
                "{kind:?} left the room: {p:?}"
            );
        }
    }
}

#[test]
fn trial_pipeline_is_deterministic_across_runs() {
    let setup = TrialSetup::letter('Z');
    let a = run_trial(&setup, 99);
    let b = run_trial(&setup, 99);
    assert_eq!(a.reports, b.reports);
    assert_eq!(a.trail.points, b.trail.points);
}

#[test]
fn real_report_streams_round_trip_through_llrp() {
    let setup = TrialSetup::letter('C');
    let run = run_trial(&setup, 3);
    let frame = llrp::encode_report(&run.reports, 1);
    let (_, decoded) = llrp::decode_report(&frame).expect("valid frame");
    assert_eq!(decoded.len(), run.reports.len());
    for (a, b) in run.reports.iter().zip(&decoded) {
        assert_eq!(a.antenna, b.antenna);
        assert!((a.t - b.t).abs() < 1e-5);
        assert!((a.rssi_dbm - b.rssi_dbm).abs() < 0.006);
    }
}

#[test]
fn quick_track_helper_works() {
    let (truth, recovered) = polardraw_suite::quick_track("I", 1);
    assert!(!truth.is_empty());
    assert!(!recovered.is_empty());
}

#[test]
fn two_users_tracked_independently_via_epc_separation() {
    // §7's multi-user sketch, end to end: two tagged pens write at the
    // same time; the Gen2 MAC arbitrates; each stream, separated by
    // EPC, still tracks its own pen.
    use experiments::setup::{channel_for, to_tag_poses};
    use rfid_sim::TrajectoryTracker;

    let mut left_scene = pen_sim::Scene::default();
    left_scene.origin = rf_core::Vec2::new(-0.25, 0.6);
    let mut right_scene = pen_sim::Scene::default();
    right_scene.origin = rf_core::Vec2::new(0.1, 0.6);
    let profile = pen_sim::WriterProfile::natural();
    let a = pen_sim::scene::write_text(&left_scene, &profile, "I", 1);
    let b = pen_sim::scene::write_text(&right_scene, &profile, "I", 2);

    let channel = channel_for(TrackerKind::PolarDraw, 15f64.to_radians(), 0.65);
    let reader = rfid_sim::Reader::new(channel);
    let mixed = reader.inventory_multi(
        &[(0xAA, to_tag_poses(&a.poses)), (0xBB, to_tag_poses(&b.poses))],
        7,
    );
    assert!(mixed.iter().any(|r| r.epc == 0xAA));
    assert!(mixed.iter().any(|r| r.epc == 0xBB));

    for (epc, scene) in [(0xAA_u64, &left_scene), (0xBB, &right_scene)] {
        let own: Vec<rfid_sim::TagReport> =
            mixed.iter().filter(|r| r.epc == epc).copied().collect();
        let mut cfg = polardraw_core::PolarDrawConfig::default();
        cfg.start_hint = rf_core::Vec2::new(scene.origin.x + 0.07, scene.origin.y + 0.1);
        cfg.board_min = scene.origin - rf_core::Vec2::new(0.12, 0.12);
        cfg.board_max = scene.origin + rf_core::Vec2::new(0.35, 0.35);
        let trail = polardraw_core::PolarDraw::new(cfg).track(&own);
        assert!(!trail.is_empty(), "tag {epc:#x} must still be trackable");
        // The trail stays in its own writer's area.
        let cx: f64 =
            trail.points.iter().map(|p| p.x).sum::<f64>() / trail.points.len() as f64;
        assert!(
            (cx - scene.origin.x).abs() < 0.3,
            "tag {epc:#x} wandered to x̄ = {cx}"
        );
    }
}

#[test]
fn pen_rotation_modulates_rss_but_not_for_a_stiff_writer() {
    // End-to-end check of the core physical premise (Fig. 3(b)): pen
    // rotation sweeps the polarization mismatch and swings the RSS —
    // the information PolarDraw decodes. A stiff writer produces a far
    // flatter RSS track.
    use experiments::setup::{channel_for, to_tag_poses};
    let scene = pen_sim::Scene::default();
    let rss_spread = |gain_rad: f64, text: &str| -> f64 {
        let mut profile = pen_sim::WriterProfile::natural();
        profile.wrist.gain_rad = gain_rad;
        let session = pen_sim::scene::write_text(&scene, &profile, text, 5);
        let channel = channel_for(TrackerKind::PolarDraw, 15f64.to_radians(), 0.65);
        let reader = rfid_sim::Reader::new(channel);
        let reports = reader.inventory(&to_tag_poses(&session.poses), 5);
        let rssi: Vec<f64> =
            reports.iter().filter(|r| r.antenna == 0).map(|r| r.rssi_dbm).collect();
        rf_core::stats::std_dev(&rssi).unwrap_or(0.0)
    };
    // 'Z' has strong horizontal strokes, maximizing wrist rotation.
    let rotating = rss_spread(70f64.to_radians(), "Z");
    let stiff = rss_spread(0.0, "Z");
    assert!(
        rotating > 2.0 * stiff + 1.0,
        "rotation must swing RSS: rotating σ = {rotating:.2} dB, stiff σ = {stiff:.2} dB"
    );
}

#[test]
fn single_antenna_outage_degrades_gracefully() {
    // ISSUE 3 acceptance: a mid-trajectory single-antenna-port outage
    // must yield a finite track, a populated DegradationReport, and a
    // Procrustes distance within a stated bound of the clean run.
    use experiments::setup::polardraw_config_for;
    use polardraw_core::PolarDraw;
    use rfid_sim::faults::{FaultInjector, FaultPlan, PortOutage};

    let setup = TrialSetup::letter('L');
    let clean = run_trial(&setup, 42);

    // Antenna 1 goes silent for the middle quarter of the session.
    let plan = FaultPlan {
        outages: vec![PortOutage { antenna: 1, start_frac: 0.40, end_frac: 0.65 }],
        ..FaultPlan::identity()
    };
    let faulty_reports = FaultInjector::new(plan, 7).inject(&clean.reports);
    assert!(faulty_reports.len() < clean.reports.len(), "the outage must drop reads");

    let tracker = PolarDraw::new(polardraw_config_for(&setup));
    let out = tracker.track_with_diagnostics(&faulty_reports);

    // Finite, non-empty track.
    assert!(!out.trail.is_empty());
    for p in &out.trail.points {
        assert!(p.x.is_finite() && p.y.is_finite(), "outage produced a non-finite point");
    }

    // Populated degradation report: the outage shows up as
    // single-antenna windows, and the pipeline owns up to being
    // degraded.
    let d = &out.degradation;
    assert!(d.single_antenna_windows > 0, "outage must be visible in the report: {d:?}");
    assert!(d.is_degraded());
    assert_eq!(d.input_reports, faulty_reports.len());

    // Accuracy bound: the degraded track stays in the clean run's error
    // regime. The clean full-stack test asserts < 0.10 m; allow the
    // outage to cost at most 5 cm of Procrustes distance on top.
    let clean_d = procrustes_distance(&clean.truth, &clean.trail.points, 64)
        .expect("clean run is non-degenerate");
    let degraded_d = procrustes_distance(&clean.truth, &out.trail.points, 64)
        .expect("degraded run is non-degenerate");
    assert!(
        degraded_d < clean_d + 0.05,
        "outage cost too much accuracy: clean {clean_d:.3} m, degraded {degraded_d:.3} m"
    );
}
