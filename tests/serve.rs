//! Multi-session serving gates (tier-1, named in scripts/verify.sh).
//!
//! Pins the serving engine's two contracts:
//!
//! 1. **Determinism** — a [`ServePool`] drains N sessions in parallel,
//!    yet every session's output is bit-for-bit what a lone
//!    `OnlineTracker` fed the same stream produces, at every tested
//!    thread count and under every fault preset. Parallelism is across
//!    sessions, never within one, so this is structural — these tests
//!    keep it that way.
//! 2. **Shared artifacts** — N sessions on one rig resolve one
//!    `DecodeArtifacts` entry (one `EmissionTable` build, one copy in
//!    memory), verified by `Arc` pointer identity and strong counts, so
//!    per-session memory is sublinear in N.

use experiments::setup::{polardraw_config_for, simulate_reports, TrialSetup};
use polardraw_core::hmm::KernelOptions;
use polardraw_core::serve::ServePool;
use polardraw_core::{OnlineOptions, OnlineTracker, PolarDrawConfig, TrackOutput};
use rf_core::rng::derive_seed_indexed;
use rfid_sim::faults::FaultPlan;
use rfid_sim::TagReport;
use std::sync::Arc;

/// One coarse-grid rig shared by every session in these tests: the
/// board depends only on the letter count, so every single-letter setup
/// below resolves to the *same* `PolarDrawConfig` — many pens, one rig.
fn fleet_config() -> PolarDrawConfig {
    polardraw_config_for(&TrialSetup::letter('L').with_cell_scale(6.0))
}

/// The mixed-fleet workload: `n` sessions cycling through letters,
/// fault presets (clean reader, lab, office, hostile), and derived
/// seeds. Every stream is distinct; every session shares the rig.
fn fleet_streams(n: usize) -> Vec<Vec<TagReport>> {
    let letters = ['L', 'S', 'W', 'Z', 'C'];
    (0..n)
        .map(|i| {
            let mut setup =
                TrialSetup::letter(letters[i % letters.len()]).with_cell_scale(6.0);
            setup.faults = match i % 4 {
                0 => None,
                1 => Some(FaultPlan::clean_lab()),
                2 => Some(FaultPlan::flaky_office()),
                _ => Some(FaultPlan::hostile()),
            };
            let seed = derive_seed_indexed(0x5E12E, "serve.fleet", i as u64);
            simulate_reports(&setup, seed).1
        })
        .collect()
}

fn options_for(i: usize) -> OnlineOptions {
    // Mixed lags exercise different commit cadences inside one pool.
    OnlineOptions { lag: 8 + 4 * (i % 3), hold: 2, ..OnlineOptions::default() }
}

fn assert_outputs_bitwise_equal(a: &TrackOutput, b: &TrackOutput, ctx: &str) {
    assert_eq!(a.trail.times.len(), b.trail.times.len(), "{ctx}: times length");
    for (x, y) in a.trail.times.iter().zip(&b.trail.times) {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: time bits");
    }
    assert_eq!(a.trail.points.len(), b.trail.points.len(), "{ctx}: points length");
    for (p, q) in a.trail.points.iter().zip(&b.trail.points) {
        assert_eq!(p.x.to_bits(), q.x.to_bits(), "{ctx}: x bits");
        assert_eq!(p.y.to_bits(), q.y.to_bits(), "{ctx}: y bits");
    }
    assert_eq!(a.steps, b.steps, "{ctx}: steps");
    assert_eq!(a.windows, b.windows, "{ctx}: windows");
    assert_eq!(a.decode_stats, b.decode_stats, "{ctx}: decode stats");
    assert_eq!(a.degradation, b.degradation, "{ctx}: degradation report");
    assert_eq!(
        a.initial_azimuth_error.to_bits(),
        b.initial_azimuth_error.to_bits(),
        "{ctx}: azimuth correction"
    );
}

/// Sequential reference: each session run alone, in order.
fn sequential_outputs(
    cfg: PolarDrawConfig,
    streams: &[Vec<TagReport>],
) -> Vec<TrackOutput> {
    streams
        .iter()
        .enumerate()
        .map(|(i, reports)| {
            let mut solo = OnlineTracker::new(cfg, options_for(i));
            solo.extend(reports);
            solo.finalize()
        })
        .collect()
}

/// Feed the streams through a pool in interleaved, per-session-skewed
/// chunks (sessions run out of reports at different rounds, so later
/// drains exercise the wake-only-pending path), then finish.
fn pool_outputs(
    cfg: PolarDrawConfig,
    streams: &[Vec<TagReport>],
    threads: usize,
) -> Vec<TrackOutput> {
    let mut pool = ServePool::new(threads);
    let ids: Vec<_> =
        (0..streams.len()).map(|i| pool.add_session(cfg, options_for(i))).collect();
    let mut cursors = vec![0usize; streams.len()];
    loop {
        let mut any = false;
        for (i, reports) in streams.iter().enumerate() {
            let at = cursors[i];
            if at >= reports.len() {
                continue;
            }
            // Skewed chunk sizes desynchronize the queues.
            let chunk = 29 + 11 * (i % 5);
            let hi = (at + chunk).min(reports.len());
            pool.enqueue_batch(ids[i], &reports[at..hi]);
            cursors[i] = hi;
            any = true;
        }
        let round = pool.drain();
        if !any {
            assert_eq!((round.woken, round.reports), (0, 0), "no queues → no wakes");
            break;
        }
    }
    let stats = pool.stats();
    let total: usize = streams.iter().map(|s| s.len()).sum();
    assert_eq!(stats.reports, total, "every enqueued report was consumed");
    pool.finish()
}

/// The tentpole determinism gate: 32 mixed-fault sessions, pool output
/// bitwise-identical to sequential at threads ∈ {1, 2, 8}.
#[test]
fn pool_is_bitwise_identical_to_sequential_across_threads() {
    let cfg = fleet_config();
    let streams = fleet_streams(32);
    let want = sequential_outputs(cfg, &streams);
    for threads in [1usize, 2, 8] {
        let got = pool_outputs(cfg, &streams, threads);
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_outputs_bitwise_equal(g, w, &format!("session {i}, threads {threads}"));
        }
    }
}

/// Kernel plumbing through the pool: sessions carrying mixed
/// `KernelOptions` (exact f64, fast f32+adaptive, f32-only) keep the
/// pool's bitwise-vs-sequential contract at every pool width. The
/// f32 kernels trade f64-exactness for speed but stay run-to-run
/// deterministic, and pool parallelism is across sessions only — so
/// the pool must reproduce each solo tracker bit-for-bit regardless
/// of which kernel the session chose.
#[test]
fn mixed_kernel_sessions_stay_bitwise_across_pool_widths() {
    let kernel_for = |i: usize| match i % 3 {
        0 => KernelOptions::exact(),
        1 => KernelOptions::fast(),
        _ => KernelOptions::fast().with_adaptive(None),
    };
    let cfg = fleet_config();
    let streams = fleet_streams(6);
    let want: Vec<TrackOutput> = streams
        .iter()
        .enumerate()
        .map(|(i, reports)| {
            let mut solo =
                OnlineTracker::new(cfg, options_for(i).with_kernel(kernel_for(i)));
            solo.extend(reports);
            solo.finalize()
        })
        .collect();
    for threads in [1usize, 2, 8] {
        let mut pool = ServePool::new(threads);
        let ids: Vec<_> = (0..streams.len())
            .map(|i| pool.add_session(cfg, options_for(i).with_kernel(kernel_for(i))))
            .collect();
        for (i, reports) in streams.iter().enumerate() {
            pool.enqueue_batch(ids[i], reports);
        }
        pool.drain();
        let got = pool.finish();
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_outputs_bitwise_equal(
                g,
                w,
                &format!("kernel session {i} ({:?}), threads {threads}", kernel_for(i)),
            );
        }
    }
}

/// The 2-thread stress run scripts/verify.sh names: repeated
/// single-report enqueues and drains after every report round, so the
/// pool's wake bookkeeping and per-drain deltas are exercised thousands
/// of times rather than a handful.
#[test]
fn two_thread_stress_single_report_drains() {
    let cfg = fleet_config();
    let streams = fleet_streams(6);
    let want = sequential_outputs(cfg, &streams);

    let mut pool = ServePool::new(2);
    let ids: Vec<_> =
        (0..streams.len()).map(|i| pool.add_session(cfg, options_for(i))).collect();
    let longest = streams.iter().map(|s| s.len()).max().unwrap_or(0);
    for k in 0..longest {
        for (i, reports) in streams.iter().enumerate() {
            if let Some(&r) = reports.get(k) {
                pool.enqueue(ids[i], r);
            }
        }
        pool.drain();
    }
    let stats = pool.stats();
    assert_eq!(stats.drains, longest);
    assert_eq!(stats.reports, streams.iter().map(|s| s.len()).sum::<usize>());
    let got = pool.finish();
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_outputs_bitwise_equal(g, w, &format!("stress session {i}"));
    }
}

/// Checkpoint/restore *through the pool*: cut every session at a swept
/// point, checkpoint via the wire format, adopt the restored trackers
/// into a fresh pool, feed the remainders — bitwise the uncut pool run.
#[test]
fn checkpoint_restore_through_the_pool_is_bitwise_at_swept_cuts() {
    let cfg = fleet_config();
    let streams = fleet_streams(4);
    let reference = pool_outputs(cfg, &streams, 2);
    let longest = streams.iter().map(|s| s.len()).max().unwrap_or(0);

    let stride = longest / 5 + 1;
    for cut in (0..=longest).step_by(stride) {
        // First half through a pool…
        let mut first = ServePool::new(2);
        let ids: Vec<_> =
            (0..streams.len()).map(|i| first.add_session(cfg, options_for(i))).collect();
        for (i, reports) in streams.iter().enumerate() {
            first.enqueue_batch(ids[i], &reports[..cut.min(reports.len())]);
        }
        first.drain();
        // …checkpoint every session over the wire format…
        let texts: Vec<String> =
            ids.iter().map(|&id| first.tracker(id).checkpoint_string()).collect();
        drop(first);
        // …adopt the restores into a fresh pool and feed the rest.
        let mut second = ServePool::new(2);
        let new_ids: Vec<_> = texts
            .iter()
            .map(|text| {
                let tracker = OnlineTracker::restore_from_str(cfg, text)
                    .unwrap_or_else(|e| panic!("restore at cut {cut}: {e}"));
                second.adopt(tracker)
            })
            .collect();
        for (i, reports) in streams.iter().enumerate() {
            second.enqueue_batch(new_ids[i], &reports[cut.min(reports.len())..]);
        }
        second.drain();
        let got = second.finish();
        for (i, (g, w)) in got.iter().zip(&reference).enumerate() {
            assert_outputs_bitwise_equal(g, w, &format!("session {i}, cut {cut}"));
        }
    }
}

/// The memory-sublinearity gate: every session on one rig shares ONE
/// `DecodeArtifacts` entry (pointer-identical emission table), so total
/// table memory is one table, not N — `Arc::strong_count` counts the
/// sharers.
#[test]
fn sessions_share_one_decode_artifact_entry() {
    let cfg = fleet_config();
    let streams = fleet_streams(8);
    let mut pool = ServePool::new(4);
    let ids: Vec<_> =
        (0..streams.len()).map(|i| pool.add_session(cfg, options_for(i))).collect();
    for (i, reports) in streams.iter().enumerate() {
        pool.enqueue_batch(ids[i], reports);
    }
    pool.drain();

    let first = pool
        .tracker(ids[0])
        .decoder()
        .artifacts()
        .expect("session 0 decoded steps with Δθ²¹ measurements")
        .clone();
    let mut sharers = 0;
    for &id in &ids {
        let decoder = pool.tracker(id).decoder();
        if let Some(a) = decoder.artifacts() {
            assert!(Arc::ptr_eq(a, &first), "session {id} resolved a different entry");
            sharers += 1;
            // The emission table inside is the same allocation too.
            if let (Some(t), Some(t0)) = (decoder.emission_table(), first.emission_if_built()) {
                assert!(Arc::ptr_eq(t, t0), "session {id} holds a different table");
            }
        }
    }
    assert!(sharers >= ids.len() / 2, "most sessions decode against shared artifacts");
    // The entry is held by each sharing session + the global cache +
    // our local handle: memory for the table is ONE allocation however
    // many sessions serve on the rig.
    assert!(
        Arc::strong_count(&first) >= sharers + 1,
        "strong count {} must cover {} sharers",
        Arc::strong_count(&first),
        sharers
    );
    let table = first.emission_if_built().expect("table built by first decode");
    let one_table_bytes = table.len() * std::mem::size_of::<f64>();
    assert!(one_table_bytes > 0, "table is real");
    // And finishing the fleet must release the sessions' holds.
    drop(pool.finish());
}
