//! Supervised reader sessions: a simulated LLRP connection with
//! stall detection, reconnect backoff, degraded-mode tracking, and
//! panic isolation.
//!
//! The paper's system tracks the pen *live*; production LLRP readers
//! stall, drop TCP connections, and lose antenna ports mid-session.
//! This module provides the supervision shell the streaming engine
//! (`polardraw_core::online`) runs under:
//!
//! * [`LlrpLink`] — the connection abstraction: connect, poll wire
//!   frames, observe drops. [`SimulatedLink`] implements it over a
//!   pre-faulted [`TagReport`] stream with configurable outage windows
//!   and garbage frames, entirely in virtual time (no real sleeping, no
//!   wall clock — deterministic by construction).
//! * [`BackoffPolicy`] — exponential backoff with deterministic,
//!   seed-derived jitter for reconnect pacing.
//! * [`SessionSupervisor`] — the run loop: polls the link on a fixed
//!   interval, hands decoded reports to a [`ReportSink`], trips a
//!   watchdog when the link goes silent for `t_watchdog_s`, reconnects
//!   through the backoff schedule, flags antenna ports that stay dead
//!   (single-antenna degraded mode), and can isolate a panicking sink
//!   so one bad session cannot take down a multi-session server.
//!
//! Everything is driven by a virtual clock passed through the API, so
//! supervision logic is unit-testable and bit-reproducible under seeds.

use crate::llrp;
use crate::TagReport;
use rf_core::rng::{derive_seed, rng_from_seed, Rng64};

/// Anything that consumes tracked reports one at a time. The streaming
/// tracker in `polardraw-core` implements this; so does a plain
/// `Vec<TagReport>` (capture for tests).
pub trait ReportSink {
    /// Consume one report.
    fn accept(&mut self, report: &TagReport);
}

impl ReportSink for Vec<TagReport> {
    fn accept(&mut self, report: &TagReport) {
        self.push(*report);
    }
}

/// The reader-connection abstraction the supervisor drives. All times
/// are virtual seconds on the session clock.
pub trait LlrpLink {
    /// Attempt to (re)connect at time `now`; returns success.
    fn connect(&mut self, now: f64) -> bool;
    /// True while the link believes it is connected (a poll may clear
    /// this when the connection drops).
    fn is_connected(&self) -> bool;
    /// Drain wire frames that arrived since the previous poll, up to
    /// `now`. Returns nothing while disconnected.
    fn poll(&mut self, now: f64) -> Vec<Vec<u8>>;
    /// True once the link will never produce another frame (simulated
    /// stream fully consumed).
    fn exhausted(&self) -> bool;
}

/// Deterministic exponential backoff with seeded jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// First retry delay, seconds.
    pub base_s: f64,
    /// Multiplier per attempt (≥ 1).
    pub factor: f64,
    /// Cap on any single delay, seconds.
    pub max_s: f64,
    /// Jitter amplitude as a fraction of the delay: the realized delay
    /// is `d · (1 + jitter_frac · u)` with `u` uniform in `[-1, 1)`
    /// from the supervisor's derived PRNG stream.
    pub jitter_frac: f64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy { base_s: 0.05, factor: 2.0, max_s: 1.0, jitter_frac: 0.1 }
    }
}

impl BackoffPolicy {
    /// The delay before reconnect attempt `attempt` (0-based).
    pub fn delay(&self, attempt: usize, rng: &mut Rng64) -> f64 {
        let expo = self.factor.max(1.0).powi(attempt.min(64) as i32);
        let d = (self.base_s.max(1e-4) * expo).min(self.max_s.max(1e-4));
        let u = 2.0 * rng.gen_f64() - 1.0;
        d * (1.0 + self.jitter_frac.clamp(0.0, 1.0) * u)
    }

    /// Upper bound on the total virtual time the full schedule of
    /// `attempts` retries can consume (used by tests to assert the
    /// supervisor reconnects "within the backoff schedule").
    pub fn worst_case_total_s(&self, attempts: usize) -> f64 {
        (0..attempts)
            .map(|a| {
                let expo = self.factor.max(1.0).powi(a.min(64) as i32);
                let d = (self.base_s.max(1e-4) * expo).min(self.max_s.max(1e-4));
                d * (1.0 + self.jitter_frac.clamp(0.0, 1.0))
            })
            .sum()
    }
}

/// Supervisor tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// Link poll period, seconds (one LLRP keepalive round).
    pub poll_interval_s: f64,
    /// Watchdog: a connected link that delivers no reports for this
    /// long is treated as stalled and recycled.
    pub t_watchdog_s: f64,
    /// Reconnect pacing.
    pub backoff: BackoffPolicy,
    /// Reconnect attempts per outage episode before giving up.
    pub max_reconnect_attempts: usize,
    /// An antenna port silent this long — while the other port keeps
    /// reading — is flagged dead (single-antenna degraded mode).
    pub port_dead_after_s: f64,
    /// Root seed; the backoff-jitter stream is derived from it.
    pub seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            poll_interval_s: 0.05,
            t_watchdog_s: 0.5,
            backoff: BackoffPolicy::default(),
            max_reconnect_attempts: 10,
            port_dead_after_s: 1.0,
            seed: 0,
        }
    }
}

/// One entry in the supervisor's event log.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionEvent {
    /// The link (re)connected.
    Connected {
        /// Virtual time, seconds.
        t: f64,
    },
    /// The watchdog tripped: no reports for `silent_for_s`.
    WatchdogStall {
        /// Virtual time, seconds.
        t: f64,
        /// How long the link had been silent.
        silent_for_s: f64,
    },
    /// The link reported itself disconnected.
    Disconnected {
        /// Virtual time, seconds.
        t: f64,
    },
    /// One reconnect attempt was scheduled.
    ReconnectAttempt {
        /// Virtual time the attempt was scheduled at, seconds.
        t: f64,
        /// 0-based attempt number within this episode.
        attempt: usize,
        /// Backoff delay before the attempt, seconds.
        delay_s: f64,
    },
    /// The reconnect cycle succeeded.
    Reconnected {
        /// Virtual time, seconds.
        t: f64,
        /// Attempts the episode took.
        attempts: usize,
    },
    /// The reconnect cycle exhausted its attempts.
    GaveUp {
        /// Virtual time, seconds.
        t: f64,
        /// Attempts made.
        attempts: usize,
    },
    /// A wire frame failed to decode and was discarded.
    BadFrame {
        /// Virtual time, seconds.
        t: f64,
    },
    /// An antenna port has been silent past the dead threshold while
    /// the other port keeps reading.
    PortDead {
        /// Virtual time, seconds.
        t: f64,
        /// The silent port.
        antenna: usize,
    },
    /// A dead port produced reads again.
    PortRecovered {
        /// Virtual time, seconds.
        t: f64,
        /// The recovered port.
        antenna: usize,
    },
    /// A sink panic was caught and contained.
    PanicIsolated {
        /// Panic payload rendered to text.
        context: String,
    },
}

/// Counters summarizing one supervised run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SessionStats {
    /// Reports handed to the sink.
    pub reports_delivered: usize,
    /// Wire frames decoded successfully.
    pub frames_delivered: usize,
    /// Wire frames rejected by the LLRP decoder.
    pub bad_frames: usize,
    /// Successful reconnects (incl. the initial connect).
    pub connects: usize,
    /// Individual reconnect attempts made.
    pub reconnect_attempts: usize,
    /// Watchdog trips.
    pub watchdog_stalls: usize,
    /// The final reconnect cycle gave up before the stream ended.
    pub gave_up: bool,
}

/// The supervision shell: owns a link, drives the poll/watchdog/
/// reconnect loop, and reports everything it did.
#[derive(Debug)]
pub struct SessionSupervisor<L: LlrpLink> {
    config: SessionConfig,
    link: L,
    rng: Rng64,
    events: Vec<SessionEvent>,
    stats: SessionStats,
    port_last_seen: [Option<f64>; 2],
    port_dead: [bool; 2],
}

impl<L: LlrpLink> SessionSupervisor<L> {
    /// New supervisor over `link`.
    pub fn new(config: SessionConfig, link: L) -> SessionSupervisor<L> {
        let rng = rng_from_seed(derive_seed(config.seed, "session.backoff"));
        SessionSupervisor {
            config,
            link,
            rng,
            events: Vec::new(),
            stats: SessionStats::default(),
            port_last_seen: [None; 2],
            port_dead: [false; 2],
        }
    }

    /// Everything that happened, in order.
    pub fn events(&self) -> &[SessionEvent] {
        &self.events
    }

    /// Run counters so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Which antenna ports are currently flagged dead.
    pub fn dead_ports(&self) -> [bool; 2] {
        self.port_dead
    }

    /// True when exactly one port is flagged dead — the session is
    /// running in single-antenna degraded mode.
    pub fn degraded_single_antenna(&self) -> bool {
        self.port_dead[0] != self.port_dead[1]
    }

    /// The link, for inspection after a run.
    pub fn link(&self) -> &L {
        &self.link
    }

    /// Drive the session on the virtual clock from `t_start` to `t_end`,
    /// delivering every decoded report to `sink`. Returns the final
    /// counters (also available via [`stats`](Self::stats)).
    pub fn run<S: ReportSink>(&mut self, sink: &mut S, t_start: f64, t_end: f64) -> SessionStats {
        let dt = self.config.poll_interval_s.max(1e-4);
        let mut now = t_start;
        let mut last_report_t = t_start;

        if !self.link.is_connected() && !self.reconnect(&mut now, t_end) {
            return self.stats;
        }

        while now <= t_end {
            let frames = self.link.poll(now);
            for frame in frames {
                match llrp::decode_report(&frame) {
                    Ok((_, reports)) => {
                        self.stats.frames_delivered += 1;
                        for r in &reports {
                            sink.accept(r);
                            self.stats.reports_delivered += 1;
                            self.note_port(r.antenna, now);
                        }
                        if !reports.is_empty() {
                            last_report_t = now;
                        }
                    }
                    Err(_) => {
                        self.stats.bad_frames += 1;
                        self.events.push(SessionEvent::BadFrame { t: now });
                    }
                }
            }
            self.watch_ports(now);

            if self.link.exhausted() {
                break;
            }
            let silent_for = now - last_report_t;
            let stalled = silent_for > self.config.t_watchdog_s;
            let dropped = !self.link.is_connected();
            if stalled || dropped {
                if stalled {
                    self.stats.watchdog_stalls += 1;
                    self.events.push(SessionEvent::WatchdogStall { t: now, silent_for_s: silent_for });
                }
                if dropped {
                    self.events.push(SessionEvent::Disconnected { t: now });
                }
                if !self.reconnect(&mut now, t_end) {
                    return self.stats;
                }
                last_report_t = now;
                continue;
            }
            now += dt;
        }
        self.stats
    }

    /// [`run`](Self::run) with panic isolation: a panicking sink is
    /// caught, logged as [`SessionEvent::PanicIsolated`], and returned
    /// as `Err` — the supervisor (and the process hosting other
    /// sessions) survives.
    pub fn run_isolated<S: ReportSink>(
        &mut self,
        sink: &mut S,
        t_start: f64,
        t_end: f64,
    ) -> Result<SessionStats, String> {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.run(sink, t_start, t_end)
        }));
        match outcome {
            Ok(stats) => Ok(stats),
            Err(payload) => {
                let context = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                self.events.push(SessionEvent::PanicIsolated { context: context.clone() });
                Err(context)
            }
        }
    }

    fn reconnect(&mut self, now: &mut f64, t_end: f64) -> bool {
        for attempt in 0..self.config.max_reconnect_attempts.max(1) {
            let delay = self.config.backoff.delay(attempt, &mut self.rng);
            self.stats.reconnect_attempts += 1;
            self.events.push(SessionEvent::ReconnectAttempt { t: *now, attempt, delay_s: delay });
            *now += delay;
            if *now > t_end + self.config.backoff.max_s {
                break;
            }
            if self.link.connect(*now) {
                self.stats.connects += 1;
                self.events.push(SessionEvent::Connected { t: *now });
                self.events.push(SessionEvent::Reconnected { t: *now, attempts: attempt + 1 });
                return true;
            }
        }
        self.stats.gave_up = true;
        self.events.push(SessionEvent::GaveUp {
            t: *now,
            attempts: self.config.max_reconnect_attempts.max(1),
        });
        false
    }

    fn note_port(&mut self, antenna: usize, now: f64) {
        if antenna >= 2 {
            return;
        }
        self.port_last_seen[antenna] = Some(now);
        if self.port_dead[antenna] {
            self.port_dead[antenna] = false;
            self.events.push(SessionEvent::PortRecovered { t: now, antenna });
        }
    }

    fn watch_ports(&mut self, now: f64) {
        for ant in 0..2 {
            if self.port_dead[ant] {
                continue;
            }
            let other = 1 - ant;
            let this_seen = self.port_last_seen[ant];
            let other_seen = self.port_last_seen[other];
            if let (Some(this_t), Some(other_t)) = (this_seen, other_seen) {
                let threshold = self.config.port_dead_after_s.max(1e-3);
                if now - this_t > threshold && now - other_t <= threshold {
                    self.port_dead[ant] = true;
                    self.events.push(SessionEvent::PortDead { t: now, antenna: ant });
                }
            }
        }
    }
}

/// A simulated LLRP reader connection over a pre-generated (optionally
/// fault-injected) report stream, driven entirely in virtual time.
///
/// Reports are grouped into RO_ACCESS_REPORT frames of
/// `frame_interval_s`; each frame is deliverable once the clock passes
/// its bucket end. Configured outage windows sever the connection:
/// polls inside a window drop the link, connects inside a window fail,
/// and frames whose delivery time falls inside a window are lost (the
/// reader had no connection to send them over). Garbage frames can be
/// interleaved to exercise the decoder's rejection path.
#[derive(Debug, Clone)]
pub struct SimulatedLink {
    frames: Vec<(f64, Vec<u8>)>,
    cursor: usize,
    connected: bool,
    outages: Vec<(f64, f64)>,
    frames_lost: usize,
}

impl SimulatedLink {
    /// Build a link over `reports`, framed every `frame_interval_s`.
    pub fn from_reports(reports: &[TagReport], frame_interval_s: f64) -> SimulatedLink {
        let interval = frame_interval_s.max(1e-4);
        let mut frames: Vec<(f64, Vec<u8>)> = Vec::new();
        if !reports.is_empty() {
            let t0 = reports.iter().map(|r| r.t).fold(f64::INFINITY, f64::min);
            // Group in arrival order; a frame holds the reports of one
            // interval-aligned bucket, delivered at the bucket's end.
            let mut buckets: std::collections::BTreeMap<u64, Vec<TagReport>> =
                std::collections::BTreeMap::new();
            for &r in reports {
                let idx = ((r.t - t0) / interval).floor().max(0.0) as u64;
                buckets.entry(idx).or_default().push(r);
            }
            for (idx, group) in &buckets {
                let deliver_at = t0 + (*idx as f64 + 1.0) * interval;
                frames.push((deliver_at, llrp::encode_report(group, *idx as u32)));
            }
        }
        SimulatedLink { frames, cursor: 0, connected: false, outages: Vec::new(), frames_lost: 0 }
    }

    /// Sever the connection over `[start_s, end_s]` of virtual time.
    /// May be called repeatedly for multiple outages.
    pub fn with_outage(mut self, start_s: f64, end_s: f64) -> SimulatedLink {
        self.outages.push((start_s.min(end_s), start_s.max(end_s)));
        self
    }

    /// Interleave a garbage frame (undecodable bytes) before every
    /// `every_n`-th real frame — deterministic, no PRNG needed.
    pub fn with_garbage_every(mut self, every_n: usize) -> SimulatedLink {
        if every_n == 0 {
            return self;
        }
        let mut out = Vec::with_capacity(self.frames.len() + self.frames.len() / every_n + 1);
        for (i, (t, frame)) in self.frames.iter().enumerate() {
            if i % every_n == every_n - 1 {
                // A header-sized blob of noise: wrong version, wrong
                // type, nonsense length.
                out.push((*t, vec![0xFF, 0xEE, 0xDD, 0xCC, 0xBB, 0xAA, 0x99, 0x88, 0x77, 0x66]));
            }
            out.push((*t, frame.clone()));
        }
        self.frames = out;
        self
    }

    /// Skip frames already delivered before `t` — a fresh connection
    /// resuming an interrupted session (e.g. from a checkpoint taken at
    /// `t`) only receives reports the reader produces from then on.
    /// Skipped frames are not counted as lost.
    pub fn resume_from(mut self, t: f64) -> SimulatedLink {
        while self.cursor < self.frames.len() && self.frames[self.cursor].0 <= t {
            self.cursor += 1;
        }
        self
    }

    /// Position the delivery cursor immediately after everything
    /// `predecessor` (an earlier connection over the same stream) has
    /// already consumed — the exact continuation of an interrupted
    /// session. Unlike [`resume_from`](Self::resume_from), this cannot
    /// lose or duplicate a frame to floating-point cracks between a
    /// poll instant and a frame's delivery time.
    pub fn resume_after(mut self, predecessor: &SimulatedLink) -> SimulatedLink {
        self.cursor = self.cursor.max(predecessor.cursor);
        self
    }

    /// Frames lost because their delivery time fell inside an outage.
    pub fn frames_lost(&self) -> usize {
        self.frames_lost
    }

    fn in_outage(&self, t: f64) -> bool {
        self.outages.iter().any(|&(lo, hi)| t >= lo && t <= hi)
    }
}

impl LlrpLink for SimulatedLink {
    fn connect(&mut self, now: f64) -> bool {
        self.connected = !self.in_outage(now);
        self.connected
    }

    fn is_connected(&self) -> bool {
        self.connected
    }

    fn poll(&mut self, now: f64) -> Vec<Vec<u8>> {
        if self.in_outage(now) {
            self.connected = false;
        }
        let mut out = Vec::new();
        // Frames come due in delivery order regardless of connection
        // state; ones due while severed are lost, not queued.
        while self.cursor < self.frames.len() && self.frames[self.cursor].0 <= now {
            let (t, frame) = &self.frames[self.cursor];
            if self.in_outage(*t) || !self.connected {
                self.frames_lost += 1;
            } else {
                out.push(frame.clone());
            }
            self.cursor += 1;
        }
        if !self.connected {
            return Vec::new();
        }
        out
    }

    fn exhausted(&self) -> bool {
        self.cursor >= self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: usize) -> Vec<TagReport> {
        (0..n)
            .map(|i| TagReport {
                t: i as f64 * 0.01,
                antenna: i % 2,
                rssi_dbm: -40.0,
                phase_rad: (i as f64 * 0.1).rem_euclid(std::f64::consts::TAU),
                channel: 24,
                epc: 0xE280,
            })
            .collect()
    }

    #[test]
    fn clean_link_delivers_every_report_in_order() {
        let reports = stream(200);
        let link = SimulatedLink::from_reports(&reports, 0.05);
        let mut sup = SessionSupervisor::new(SessionConfig::default(), link);
        let mut got: Vec<TagReport> = Vec::new();
        let stats = sup.run(&mut got, 0.0, 3.0);
        assert_eq!(stats.reports_delivered, 200);
        // The LLRP wire format quantizes (µs timestamps, centi-dBm,
        // 2π/65536 phase steps): compare within wire precision.
        assert_eq!(got.len(), reports.len());
        for (a, b) in reports.iter().zip(&got) {
            assert_eq!(a.antenna, b.antenna);
            assert_eq!(a.epc, b.epc);
            assert!((a.t - b.t).abs() < 1e-6);
            assert!((a.rssi_dbm - b.rssi_dbm).abs() < 0.005 + 1e-12);
            assert!((a.phase_rad - b.phase_rad).abs() < std::f64::consts::TAU / 65536.0);
        }
        assert_eq!(stats.bad_frames, 0);
        assert!(!stats.gave_up);
        assert_eq!(stats.connects, 1);
    }

    #[test]
    fn outage_trips_watchdog_and_reconnects_within_schedule() {
        let reports = stream(400); // 4 s of stream
        let link = SimulatedLink::from_reports(&reports, 0.05).with_outage(1.0, 1.8);
        let cfg = SessionConfig { seed: 7, ..SessionConfig::default() };
        let mut sup = SessionSupervisor::new(cfg, link);
        let mut got: Vec<TagReport> = Vec::new();
        let stats = sup.run(&mut got, 0.0, 6.0);
        assert!(!stats.gave_up);
        assert!(stats.connects >= 2, "must reconnect after the outage: {stats:?}");
        // Reconnect must land within the worst-case backoff schedule of
        // the outage's end.
        let reconnect_t = sup
            .events()
            .iter()
            .filter_map(|e| match e {
                SessionEvent::Reconnected { t, .. } => Some(*t),
                _ => None,
            })
            .last()
            .expect("a Reconnected event");
        let budget = cfg.backoff.worst_case_total_s(cfg.max_reconnect_attempts);
        assert!(
            reconnect_t <= 1.8 + budget + cfg.t_watchdog_s,
            "reconnected at {reconnect_t}, outside the schedule"
        );
        // Reports on both sides of the outage arrive.
        assert!(got.iter().any(|r| r.t < 1.0));
        assert!(got.iter().any(|r| r.t > 2.0));
        // Reports inside it are lost, not resurrected.
        assert!(got.iter().all(|r| !(1.05..=1.75).contains(&r.t)));
    }

    #[test]
    fn garbage_frames_are_rejected_without_stopping_the_session() {
        let reports = stream(200);
        let link = SimulatedLink::from_reports(&reports, 0.05).with_garbage_every(3);
        let mut sup = SessionSupervisor::new(SessionConfig::default(), link);
        let mut got: Vec<TagReport> = Vec::new();
        let stats = sup.run(&mut got, 0.0, 3.0);
        assert!(stats.bad_frames > 0, "garbage must be seen: {stats:?}");
        assert_eq!(stats.reports_delivered, 200, "garbage must not cost real reports");
    }

    #[test]
    fn dead_port_is_flagged_and_recovery_is_logged() {
        // Port 1 silent from t=1.0 onward, recovers at 3.0.
        let reports: Vec<TagReport> = stream(400)
            .into_iter()
            .filter(|r| r.antenna == 0 || r.t < 1.0 || r.t > 3.0)
            .collect();
        let link = SimulatedLink::from_reports(&reports, 0.05);
        let mut sup = SessionSupervisor::new(SessionConfig::default(), link);
        let mut got: Vec<TagReport> = Vec::new();
        sup.run(&mut got, 0.0, 5.0);
        let dead_events: Vec<_> = sup
            .events()
            .iter()
            .filter(|e| matches!(e, SessionEvent::PortDead { antenna: 1, .. }))
            .collect();
        assert_eq!(dead_events.len(), 1, "port 1 must be flagged dead exactly once");
        assert!(
            sup.events()
                .iter()
                .any(|e| matches!(e, SessionEvent::PortRecovered { antenna: 1, .. })),
            "port 1 must recover"
        );
        assert!(!sup.degraded_single_antenna(), "recovered by end of run");
    }

    #[test]
    fn permanently_dead_port_leaves_session_in_degraded_mode() {
        let reports: Vec<TagReport> =
            stream(400).into_iter().filter(|r| r.antenna == 0 || r.t < 1.0).collect();
        let link = SimulatedLink::from_reports(&reports, 0.05);
        let mut sup = SessionSupervisor::new(SessionConfig::default(), link);
        let mut got: Vec<TagReport> = Vec::new();
        sup.run(&mut got, 0.0, 5.0);
        assert!(sup.degraded_single_antenna());
        assert_eq!(sup.dead_ports(), [false, true]);
    }

    #[test]
    fn gave_up_after_exhausting_backoff_schedule() {
        let reports = stream(400);
        // Outage that never ends within the run.
        let link = SimulatedLink::from_reports(&reports, 0.05).with_outage(1.0, 1e9);
        let cfg = SessionConfig { max_reconnect_attempts: 3, ..SessionConfig::default() };
        let mut sup = SessionSupervisor::new(cfg, link);
        let mut got: Vec<TagReport> = Vec::new();
        let stats = sup.run(&mut got, 0.0, 6.0);
        assert!(stats.gave_up);
        assert!(sup.events().iter().any(|e| matches!(e, SessionEvent::GaveUp { .. })));
    }

    #[test]
    fn panicking_sink_is_isolated() {
        struct Bomb(usize);
        impl ReportSink for Bomb {
            fn accept(&mut self, _report: &TagReport) {
                self.0 += 1;
                if self.0 == 50 {
                    panic!("sink exploded on report 50");
                }
            }
        }
        let reports = stream(200);
        let link = SimulatedLink::from_reports(&reports, 0.05);
        let mut sup = SessionSupervisor::new(SessionConfig::default(), link);
        let err = sup.run_isolated(&mut Bomb(0), 0.0, 3.0).unwrap_err();
        assert!(err.contains("report 50"));
        assert!(sup
            .events()
            .iter()
            .any(|e| matches!(e, SessionEvent::PanicIsolated { .. })));
        // The supervisor itself is still usable: a fresh session on a
        // healthy sink completes — one bad stream didn't take down the
        // "server".
        let link2 = SimulatedLink::from_reports(&reports, 0.05);
        let mut sup2 = SessionSupervisor::new(SessionConfig::default(), link2);
        let mut got: Vec<TagReport> = Vec::new();
        let stats = sup2.run(&mut got, 0.0, 3.0);
        assert_eq!(stats.reports_delivered, 200);
    }

    #[test]
    fn backoff_delays_grow_and_are_deterministic_in_seed() {
        let policy = BackoffPolicy::default();
        let mut rng_a = rng_from_seed(derive_seed(9, "session.backoff"));
        let mut rng_b = rng_from_seed(derive_seed(9, "session.backoff"));
        let a: Vec<f64> = (0..6).map(|i| policy.delay(i, &mut rng_a)).collect();
        let b: Vec<f64> = (0..6).map(|i| policy.delay(i, &mut rng_b)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        // Nominal growth: each delay is within jitter of base·factor^i,
        // capped at max_s.
        for (i, d) in a.iter().enumerate() {
            let nominal = (policy.base_s * policy.factor.powi(i as i32)).min(policy.max_s);
            assert!((d - nominal).abs() <= policy.jitter_frac * nominal + 1e-12);
        }
        assert!(a[5] > a[0], "schedule must grow");
    }
}
