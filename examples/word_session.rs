//! A full whiteboard word session compared across all three systems
//! (PolarDraw, Tagoram, RF-IDraw), like the paper's §5.3.
//!
//! ```text
//! cargo run --release --example word_session [WORD]
//! ```

use experiments::setup::{run_trial, TrackerKind, TrialSetup};
use recognition::{procrustes_distance, WordRecognizer};

fn main() {
    let word = std::env::args().nth(1).unwrap_or_else(|| "CAT".to_string()).to_uppercase();
    let dictionary = ["CAT", "DOG", "PEN", "SKY", "WIN", "MAP"];
    if !dictionary.contains(&word.as_str()) {
        println!("note: '{word}' is outside the demo dictionary {dictionary:?};");
        println!("      recognition will pick the nearest dictionary word.");
    }
    let recognizer = WordRecognizer::new(&dictionary);

    println!("writing \"{word}\" once per tracking system…\n");
    println!(
        "{:<28} {:>10} {:>14} {:>12}",
        "system", "antennas", "procrustes", "recognized"
    );
    for kind in [TrackerKind::PolarDraw, TrackerKind::Tagoram4, TrackerKind::RfIdraw4] {
        let setup = TrialSetup::word(&word).with_tracker(kind);
        let run = run_trial(&setup, 11);
        let d = procrustes_distance(&run.truth, &run.trail.points, 64)
            .map_or("—".to_string(), |d| format!("{:.1} cm", d * 100.0));
        let got = recognizer.classify(&run.trail.points).unwrap_or_else(|| "?".to_string());
        let ports = match kind {
            TrackerKind::PolarDraw | TrackerKind::PolarDrawNoPolarization | TrackerKind::Tagoram2 => 2,
            _ => 4,
        };
        println!("{:<28} {:>10} {:>14} {:>12}", kind.label(), ports, d, got);
    }
    println!("\n(the two-antenna system competes with the four-antenna ones — Table 1's");
    println!(" cost argument: $443 of hardware vs $938 / $1508)");
}
