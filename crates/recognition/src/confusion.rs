//! Confusion matrices (Fig. 14) and accuracy aggregation.


/// A square confusion matrix over a fixed label set.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfusionMatrix {
    /// Class labels, in row/column order.
    pub labels: Vec<char>,
    counts: Vec<u32>, // row-major: counts[actual * n + predicted]
}

impl ConfusionMatrix {
    /// New empty matrix over the given labels.
    pub fn new(labels: Vec<char>) -> ConfusionMatrix {
        let n = labels.len();
        ConfusionMatrix { labels, counts: vec![0; n * n] }
    }

    fn index_of(&self, label: char) -> Option<usize> {
        self.labels.iter().position(|&l| l == label)
    }

    /// Record one classification outcome. Unknown labels are ignored.
    pub fn record(&mut self, actual: char, predicted: char) {
        if let (Some(a), Some(p)) = (self.index_of(actual), self.index_of(predicted)) {
            self.counts[a * self.labels.len() + p] += 1;
        }
    }

    /// Count at (actual, predicted).
    pub fn count(&self, actual: char, predicted: char) -> u32 {
        match (self.index_of(actual), self.index_of(predicted)) {
            (Some(a), Some(p)) => self.counts[a * self.labels.len() + p],
            _ => 0,
        }
    }

    /// Total recorded outcomes.
    pub fn total(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Overall accuracy; `None` when empty.
    pub fn accuracy(&self) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let n = self.labels.len();
        let correct: u32 = (0..n).map(|i| self.counts[i * n + i]).sum();
        Some(f64::from(correct) / f64::from(total))
    }

    /// Per-class accuracy (recall), `None` for classes never seen.
    pub fn class_accuracy(&self, label: char) -> Option<f64> {
        let a = self.index_of(label)?;
        let n = self.labels.len();
        let row: u32 = self.counts[a * n..(a + 1) * n].iter().sum();
        if row == 0 {
            None
        } else {
            Some(f64::from(self.counts[a * n + a]) / f64::from(row))
        }
    }

    /// Row of the matrix normalized to probabilities (for rendering the
    /// Fig. 14 heat map). `None` for unknown labels or empty rows.
    pub fn row_probabilities(&self, label: char) -> Option<Vec<f64>> {
        let a = self.index_of(label)?;
        let n = self.labels.len();
        let row = &self.counts[a * n..(a + 1) * n];
        let total: u32 = row.iter().sum();
        if total == 0 {
            return None;
        }
        Some(row.iter().map(|&c| f64::from(c) / f64::from(total)).collect())
    }

    /// The `k` most frequent off-diagonal confusions, as
    /// `(actual, predicted, count)`, most frequent first.
    pub fn top_confusions(&self, k: usize) -> Vec<(char, char, u32)> {
        let n = self.labels.len();
        let mut all: Vec<(char, char, u32)> = Vec::new();
        for a in 0..n {
            for p in 0..n {
                if a != p && self.counts[a * n + p] > 0 {
                    all.push((self.labels[a], self.labels[p], self.counts[a * n + p]));
                }
            }
        }
        all.sort_by(|x, y| y.2.cmp(&x.2).then(x.0.cmp(&y.0)).then(x.1.cmp(&y.1)));
        all.truncate(k);
        all
    }

    /// Merge another matrix over the same labels into this one.
    ///
    /// # Panics
    /// Panics if the label sets differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.labels, other.labels, "label sets must match");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> ConfusionMatrix {
        ConfusionMatrix::new(vec!['A', 'B', 'C'])
    }

    #[test]
    fn records_and_counts() {
        let mut m = abc();
        m.record('A', 'A');
        m.record('A', 'B');
        m.record('B', 'B');
        assert_eq!(m.count('A', 'A'), 1);
        assert_eq!(m.count('A', 'B'), 1);
        assert_eq!(m.count('B', 'B'), 1);
        assert_eq!(m.count('C', 'C'), 0);
        assert_eq!(m.total(), 3);
    }

    #[test]
    fn accuracy_is_diagonal_fraction() {
        let mut m = abc();
        m.record('A', 'A');
        m.record('B', 'B');
        m.record('C', 'A');
        m.record('C', 'C');
        assert_eq!(m.accuracy(), Some(0.75));
        assert_eq!(m.class_accuracy('C'), Some(0.5));
        assert_eq!(m.class_accuracy('A'), Some(1.0));
    }

    #[test]
    fn empty_matrix_has_no_accuracy() {
        assert_eq!(abc().accuracy(), None);
        assert_eq!(abc().class_accuracy('A'), None);
        assert_eq!(abc().row_probabilities('A'), None);
    }

    #[test]
    fn unknown_labels_are_ignored() {
        let mut m = abc();
        m.record('Z', 'A');
        m.record('A', 'Z');
        assert_eq!(m.total(), 0);
        assert_eq!(m.count('Z', 'A'), 0);
    }

    #[test]
    fn row_probabilities_sum_to_one() {
        let mut m = abc();
        m.record('A', 'A');
        m.record('A', 'B');
        m.record('A', 'B');
        m.record('A', 'C');
        let row = m.row_probabilities('A').unwrap();
        assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(row[1], 0.5);
    }

    #[test]
    fn top_confusions_ranks_off_diagonal() {
        let mut m = abc();
        for _ in 0..3 {
            m.record('A', 'B');
        }
        m.record('B', 'C');
        m.record('A', 'A');
        let top = m.top_confusions(5);
        assert_eq!(top[0], ('A', 'B', 3));
        assert_eq!(top[1], ('B', 'C', 1));
        assert_eq!(top.len(), 2, "diagonal must not appear");
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = abc();
        a.record('A', 'A');
        let mut b = abc();
        b.record('A', 'A');
        b.record('B', 'C');
        a.merge(&b);
        assert_eq!(a.count('A', 'A'), 2);
        assert_eq!(a.count('B', 'C'), 1);
    }

    #[test]
    #[should_panic(expected = "label sets must match")]
    fn merge_rejects_different_labels() {
        let mut a = abc();
        let b = ConfusionMatrix::new(vec!['X']);
        a.merge(&b);
    }
}
