//! # experiments — the paper's evaluation, end to end
//!
//! One module per table/figure of §5, each running the full stack:
//! `pen-sim` writes → `rf-physics` propagates → `rfid-sim` reads →
//! a tracker recovers → `recognition` scores. Everything is
//! deterministic in a single seed and scales with a trial-count knob.
//!
//! | module | paper result |
//! |---|---|
//! | [`exp::table1`] | infrastructure cost comparison |
//! | [`exp::fig02`] | recovered trajectory gallery |
//! | [`exp::fig03`] | feasibility: RSS/phase under rotation & translation |
//! | [`exp::fig09`] | two-antenna RSS trends while writing (γ = 30°) |
//! | [`exp::fig10`] | azimuth correction before/after |
//! | [`exp::fig13`] | per-letter recognition accuracy (+ Fig. 14 confusion) |
//! | [`exp::fig15`] | in-air vs whiteboard |
//! | [`exp::fig16`] | bystander multipath sweep |
//! | [`exp::fig18`] | word recognition vs word length, 3 systems |
//! | [`exp::fig19`] | Procrustes-distance CDF, 3 systems (+ Fig. 20 gallery) |
//! | [`exp::fig21`] | accuracy across users |
//! | [`exp::table5`] | accuracy vs tag–reader distance (+ Fig. 22) |
//! | [`exp::table6`] | with vs without polarization |
//! | [`exp::table7`] | accuracy vs assumed elevation αe |
//! | [`exp::table8`] | accuracy vs antenna mounting angle γ |
//!
//! Run them all via the `repro` binary in `crates/bench`:
//! `cargo run --release -p polardraw-bench --bin repro`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exp;
pub mod registry;
pub mod report;
pub mod runner;
pub mod setup;

pub use registry::{all_experiments, ExperimentDef};
pub use report::Report;
pub use runner::RunOpts;
