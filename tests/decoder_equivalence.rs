//! Exact-equivalence sweep between the optimized Viterbi decoder and
//! the retained naive reference (`viterbi_reference`).
//!
//! The optimized decoder's contract is *bit-for-bit* identity: same
//! floating-point operations per candidate in the same order, same
//! canonical beam order, same membership/pruning rules. Each sweep
//! below draws randomized grids, rigs, and observation sequences from
//! `derive_seed_indexed(BASE_SEED, label, i)` (the `tests/properties.rs`
//! convention — every failing case is reproducible from its printed
//! (label, index, seed)) and asserts the two decoders return identical
//! tracks, comparing `f64::to_bits`, not approximate distance.
//!
//! Coverage deliberately includes the awkward paths: inconsistent-step
//! carry-through (min_dist > max_dist), frontier collapse (annulus
//! pushed entirely off-board), tiny beam widths (`beam_width < 8`
//! engages the clamp), still steps (no direction), and hyperbola
//! measurements (exercising the emission table against direct
//! recomputation).

use polardraw_core::distance::{expected_dtheta21, FeasibleRegion};
use polardraw_core::hmm::{
    viterbi_beam, viterbi_reference, viterbi_with_kernel, viterbi_with_scratch,
    viterbi_with_stats, DecoderScratch, Grid, HmmConfig, KernelOptions, KernelPrecision,
    StepObservation,
};
use rf_core::rng::{derive_seed_indexed, Rng64};
use rf_core::{Vec2, Vec3};

/// Root seed, shared with `tests/properties.rs`.
const BASE_SEED: u64 = 42;

fn sweep<F: FnMut(&mut Rng64, &str)>(label: &str, cases: usize, mut body: F) {
    for i in 0..cases {
        let seed = derive_seed_indexed(BASE_SEED, label, i as u64);
        let mut rng = Rng64::from_seed(seed);
        let ctx = format!("{label} case {i} (seed {seed:#018x})");
        body(&mut rng, &ctx);
    }
}

/// A randomized decode scenario, kept small enough (≤ ~40×40 cells)
/// that the whole sweep stays a release-mode few-seconds job.
struct Scenario {
    grid: Grid,
    antennas: [Vec3; 2],
    start: Vec2,
    steps: Vec<StepObservation>,
    config: HmmConfig,
    beam_width: usize,
}

fn random_scenario(rng: &mut Rng64, beam_widths: &[usize]) -> Scenario {
    let cell_m = rng.gen_range(0.004..0.02);
    let min = Vec2::new(rng.gen_range(-0.3..0.1), rng.gen_range(0.3..0.6));
    let span = Vec2::new(rng.gen_range(0.05..0.35), rng.gen_range(0.05..0.35));
    let grid = Grid::covering(min, min + span, cell_m);
    let antennas = [
        Vec3::new(rng.gen_range(-0.5..-0.1), rng.gen_range(0.0..0.3), rng.gen_range(0.4..0.8)),
        Vec3::new(rng.gen_range(0.1..0.5), rng.gen_range(0.0..0.3), rng.gen_range(0.4..0.8)),
    ];
    let start = Vec2::new(
        rng.gen_range(min.x..min.x + span.x),
        rng.gen_range(min.y..min.y + span.y),
    );
    let config = HmmConfig { cell_m, ..HmmConfig::default() };
    let n_steps = 3 + rng.gen_index(10);
    let mut steps = Vec::with_capacity(n_steps);
    for _ in 0..n_steps {
        let min_dist = rng.gen_range(0.0..cell_m * 3.0);
        let max_dist = min_dist + rng.gen_range(cell_m * 0.5..cell_m * 4.0);
        let direction = if rng.gen_bool(0.7) {
            Some(Vec2::from_angle(rng.gen_range(0.0..std::f64::consts::TAU)))
        } else {
            None
        };
        let dtheta21 = if rng.gen_bool(0.6) {
            // A plausible measurement: the expected value at a random
            // board point, plus noise.
            let p = Vec2::new(
                rng.gen_range(min.x..min.x + span.x),
                rng.gen_range(min.y..min.y + span.y),
            );
            Some(rf_core::wrap_pi(
                expected_dtheta21(p, antennas, config.wavelength_m) + rng.gaussian(0.4),
            ))
        } else {
            None
        };
        let target_dist = rng.gen_range(0.0..max_dist * 1.2);
        steps.push(StepObservation {
            region: FeasibleRegion { min_dist, max_dist },
            direction,
            dtheta21,
            target_dist,
        });
    }
    let beam_width = beam_widths[rng.gen_index(beam_widths.len())];
    Scenario { grid, antennas, start, steps, config, beam_width }
}

fn assert_tracks_identical(fast: &[Vec2], slow: &[Vec2], ctx: &str) {
    assert_eq!(fast.len(), slow.len(), "{ctx}: track lengths differ");
    for (k, (a, b)) in fast.iter().zip(slow).enumerate() {
        assert!(
            a.x.to_bits() == b.x.to_bits() && a.y.to_bits() == b.y.to_bits(),
            "{ctx}: point {k} differs: optimized {a:?} vs reference {b:?}"
        );
    }
}

fn run_case(sc: &Scenario, ctx: &str) {
    let fast = viterbi_beam(&sc.grid, sc.antennas, sc.start, &sc.steps, &sc.config, sc.beam_width);
    let slow =
        viterbi_reference(&sc.grid, sc.antennas, sc.start, &sc.steps, &sc.config, sc.beam_width);
    assert_tracks_identical(&fast, &slow, ctx);
}

/// The main sweep: 160 randomized scenarios across grid sizes, rigs,
/// beam widths (including the `< 8` clamp region), mixed observation
/// kinds. Exceeds the ≥128-case floor.
#[test]
fn optimized_decoder_matches_reference_exactly() {
    sweep("viterbi_equivalence", 160, |rng, ctx| {
        let sc = random_scenario(rng, &[1, 5, 8, 16, 64, 256, 2500]);
        run_case(&sc, ctx);
    });
}

/// Inconsistent steps (empty annulus: min_dist > max_dist, or a lower
/// bound beyond every reachable cell) must take the carry-through path
/// in both decoders and still agree bit-for-bit afterwards.
#[test]
fn carry_through_steps_stay_equivalent() {
    sweep("viterbi_carry_through", 128, |rng, ctx| {
        let mut sc = random_scenario(rng, &[8, 32, 128]);
        // Corrupt 1–3 steps into infeasibility.
        let n_bad = 1 + rng.gen_index(3.min(sc.steps.len()));
        for _ in 0..n_bad {
            let k = rng.gen_index(sc.steps.len());
            if rng.gen_bool(0.5) {
                // min > max: the hard bound rejects every candidate.
                sc.steps[k].region =
                    FeasibleRegion { min_dist: 0.5, max_dist: sc.grid.cell_m };
            } else {
                // Huge lower bound with matching upper bound: annulus
                // wider than the whole board.
                sc.steps[k].region = FeasibleRegion { min_dist: 5.0, max_dist: 6.0 };
            }
        }
        run_case(&sc, ctx);
        // And the carry is actually exercised:
        let (_, stats) = viterbi_with_stats(
            &sc.grid, sc.antennas, sc.start, &sc.steps, &sc.config, sc.beam_width,
        );
        assert!(stats.carried_steps >= 1, "{ctx}: expected at least one carried step");
    });
}

/// Degenerate beam widths: `beam_width` 0 and 1 engage the `max(8)`
/// clamp; equivalence must hold through it.
#[test]
fn tiny_beam_widths_stay_equivalent() {
    sweep("viterbi_tiny_beam", 64, |rng, ctx| {
        let sc = random_scenario(rng, &[0, 1, 2, 7]);
        run_case(&sc, ctx);
    });
}

/// Intra-step-parallel expansion (SoA frontier split into contiguous
/// chunks, merged in chunk index order): threads 1/2/8 must be
/// bit-identical to the single-threaded SoA path — tracks AND work
/// counters — in both precisions. The corner cases ride along:
/// collapse (annulus off-board), carry-through (min > max), and tiny
/// beams (the `< 8` clamp).
#[test]
fn intra_step_parallel_expansion_is_bit_identical() {
    sweep("viterbi_intra_step_parallel", 96, |rng, ctx| {
        let mut sc = random_scenario(rng, &[0, 2, 8, 64, 2500]);
        // A third of the cases cross the degenerate paths while
        // chunked: corrupt 1–2 steps into infeasibility.
        if rng.gen_bool(0.33) {
            for _ in 0..1 + rng.gen_index(2.min(sc.steps.len())) {
                let k = rng.gen_index(sc.steps.len());
                sc.steps[k].region = if rng.gen_bool(0.5) {
                    FeasibleRegion { min_dist: 0.5, max_dist: sc.grid.cell_m }
                } else {
                    FeasibleRegion { min_dist: 5.0, max_dist: 6.0 }
                };
            }
        }
        for precision in [KernelPrecision::F64Exact, KernelPrecision::F32Tolerance] {
            let base = KernelOptions { precision, adaptive: None, threads: 1 };
            let (want, want_stats) = viterbi_with_kernel(
                &sc.grid, sc.antennas, sc.start, &sc.steps, &sc.config, sc.beam_width, base,
            );
            if precision == KernelPrecision::F64Exact {
                // The sequential SoA baseline itself is the reference.
                let slow = viterbi_reference(
                    &sc.grid, sc.antennas, sc.start, &sc.steps, &sc.config, sc.beam_width,
                );
                assert_tracks_identical(&want, &slow, &format!("{ctx} [f64 baseline]"));
            }
            for threads in [2usize, 8] {
                let (got, got_stats) = viterbi_with_kernel(
                    &sc.grid,
                    sc.antennas,
                    sc.start,
                    &sc.steps,
                    &sc.config,
                    sc.beam_width,
                    base.with_threads(threads),
                );
                let tctx = format!("{ctx} [{precision:?} threads {threads}]");
                assert_tracks_identical(&got, &want, &tctx);
                assert_eq!(got_stats, want_stats, "{tctx}: work counters differ");
            }
        }
    });
}

/// Reusing one `DecoderScratch` across many different scenarios (grids,
/// rigs, radii) must not leak state between decodes: warm-scratch
/// output equals the reference on every case.
#[test]
fn scratch_reuse_never_leaks_state() {
    let mut scratch = DecoderScratch::new();
    sweep("viterbi_scratch_reuse", 64, |rng, ctx| {
        let sc = random_scenario(rng, &[8, 64, 512]);
        let (fast, _) = viterbi_with_scratch(
            &sc.grid,
            sc.antennas,
            sc.start,
            &sc.steps,
            &sc.config,
            sc.beam_width,
            &mut scratch,
        );
        let slow = viterbi_reference(
            &sc.grid, sc.antennas, sc.start, &sc.steps, &sc.config, sc.beam_width,
        );
        assert_tracks_identical(&fast, &slow, ctx);
    });
}
