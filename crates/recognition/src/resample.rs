//! Arc-length resampling and normalization.
//!
//! Recovered trails and glyph templates have different point counts and
//! physical scales; every matcher in this crate works on trajectories
//! resampled to a fixed number of points equally spaced along the ink
//! and normalized to zero centroid / unit RMS radius.

use rf_core::Vec2;

/// Resample a polyline to `n` points equally spaced by arc length.
///
/// Returns `None` for degenerate input (fewer than 2 points, or zero
/// total length) — a "trajectory" that never moved cannot be matched.
pub fn resample(points: &[Vec2], n: usize) -> Option<Vec<Vec2>> {
    if points.len() < 2 || n < 2 {
        return None;
    }
    let total: f64 = points.windows(2).map(|w| w[0].distance(w[1])).sum();
    if total < 1e-12 {
        return None;
    }
    let step = total / (n - 1) as f64;
    let mut out = Vec::with_capacity(n);
    out.push(points[0]);
    let mut seg_idx = 0;
    let mut seg_start_s = 0.0;
    for i in 1..n {
        let target = step * i as f64;
        while seg_idx + 1 < points.len() - 1
            && seg_start_s + points[seg_idx].distance(points[seg_idx + 1]) < target
        {
            seg_start_s += points[seg_idx].distance(points[seg_idx + 1]);
            seg_idx += 1;
        }
        let seg_len = points[seg_idx].distance(points[seg_idx + 1]);
        let frac = if seg_len > 1e-12 { ((target - seg_start_s) / seg_len).clamp(0.0, 1.0) } else { 0.0 };
        out.push(points[seg_idx].lerp(points[seg_idx + 1], frac));
    }
    Some(out)
}

/// Centroid of a point set.
pub fn centroid(points: &[Vec2]) -> Vec2 {
    let mut c = Vec2::ZERO;
    for &p in points {
        c += p;
    }
    c / points.len().max(1) as f64
}

/// RMS radius about the centroid (the normalization scale).
pub fn rms_radius(points: &[Vec2]) -> f64 {
    let c = centroid(points);
    (points.iter().map(|p| (*p - c).norm_sq()).sum::<f64>() / points.len().max(1) as f64).sqrt()
}

/// Translate to zero centroid and scale to unit RMS radius.
///
/// Returns `None` when the point set is degenerate (all points equal).
pub fn normalize(points: &[Vec2]) -> Option<Vec<Vec2>> {
    let c = centroid(points);
    let r = rms_radius(points);
    if r < 1e-12 {
        return None;
    }
    Some(points.iter().map(|&p| (p - c) / r).collect())
}

/// The full preparation used by the matchers: resample then normalize.
pub fn prepare(points: &[Vec2], n: usize) -> Option<Vec<Vec2>> {
    normalize(&resample(points, n)?)
}

/// Resample then *whiten*: centre and scale each axis independently to
/// unit standard deviation.
///
/// Two-antenna phase tracking observes vertical (range-changing) motion
/// much more strongly than horizontal (tangential) motion, so recovered
/// letters come back anisotropically compressed. Whitening removes that
/// axis-dependent shrink from both template and trajectory before
/// matching; plain similarity normalization cannot (uniform scale only).
pub fn prepare_whitened(points: &[Vec2], n: usize) -> Option<Vec<Vec2>> {
    let r = resample(points, n)?;
    let c = centroid(&r);
    let nf = r.len() as f64;
    let sx = (r.iter().map(|p| (p.x - c.x).powi(2)).sum::<f64>() / nf).sqrt();
    let sy = (r.iter().map(|p| (p.y - c.y).powi(2)).sum::<f64>() / nf).sqrt();
    let m = sx.max(sy);
    if m < 1e-9 {
        return None;
    }
    // A nearly one-dimensional shape (the letter `I`) would blow up if
    // its thin axis were stretched to unit deviation; floor each axis at
    // a twentieth of the dominant one so thin letters stay thin.
    let sx = sx.max(0.05 * m);
    let sy = sy.max(0.05 * m);
    Some(r.iter().map(|p| Vec2::new((p.x - c.x) / sx, (p.y - c.y) / sy)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resample_straight_line_is_uniform() {
        let pts = vec![Vec2::new(0.0, 0.0), Vec2::new(1.0, 0.0)];
        let rs = resample(&pts, 5).unwrap();
        assert_eq!(rs.len(), 5);
        for (i, p) in rs.iter().enumerate() {
            assert!((p.x - 0.25 * i as f64).abs() < 1e-9);
            assert!(p.y.abs() < 1e-12);
        }
    }

    #[test]
    fn resample_preserves_endpoints() {
        let pts = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(0.1, 0.5),
            Vec2::new(-0.2, 0.9),
            Vec2::new(0.4, 1.4),
        ];
        let rs = resample(&pts, 17).unwrap();
        assert_eq!(rs[0], pts[0]);
        assert!(rs.last().unwrap().distance(*pts.last().unwrap()) < 1e-9);
    }

    #[test]
    fn resample_spacing_is_equal() {
        let pts = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(1.0, 2.0),
            Vec2::new(0.0, 2.0),
        ];
        let rs = resample(&pts, 33).unwrap();
        let steps: Vec<f64> = rs.windows(2).map(|w| w[0].distance(w[1])).collect();
        let expect = 4.0 / 32.0;
        for s in steps {
            assert!((s - expect).abs() < 1e-6, "step {s} vs {expect}");
        }
    }

    #[test]
    fn degenerate_inputs_are_none() {
        assert!(resample(&[], 8).is_none());
        assert!(resample(&[Vec2::ZERO], 8).is_none());
        assert!(resample(&[Vec2::ZERO, Vec2::ZERO], 8).is_none());
        assert!(resample(&[Vec2::ZERO, Vec2::new(1.0, 0.0)], 1).is_none());
        assert!(normalize(&[Vec2::new(2.0, 2.0), Vec2::new(2.0, 2.0)]).is_none());
    }

    #[test]
    fn normalize_centers_and_scales() {
        let pts = vec![Vec2::new(1.0, 1.0), Vec2::new(3.0, 1.0), Vec2::new(2.0, 3.0)];
        let n = normalize(&pts).unwrap();
        let c = centroid(&n);
        assert!(c.norm() < 1e-12);
        assert!((rms_radius(&n) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_is_scale_invariant() {
        let pts = vec![Vec2::new(0.0, 0.0), Vec2::new(0.1, 0.0), Vec2::new(0.1, 0.2)];
        let scaled: Vec<Vec2> = pts.iter().map(|&p| p * 37.0 + Vec2::new(5.0, -2.0)).collect();
        let a = normalize(&pts).unwrap();
        let b = normalize(&scaled).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!(x.distance(*y) < 1e-9);
        }
    }

    #[test]
    fn prepare_composes() {
        let pts = vec![Vec2::new(0.0, 0.0), Vec2::new(0.3, 0.4)];
        let p = prepare(&pts, 16).unwrap();
        assert_eq!(p.len(), 16);
        assert!((rms_radius(&p) - 1.0).abs() < 1e-9);
    }
}
