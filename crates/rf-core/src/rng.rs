//! Deterministic randomness plumbing — self-contained, zero-dependency.
//!
//! Every experiment in the workspace is reproducible from a single `u64`
//! seed. Sub-systems (channel noise, Gen2 slot selection, pen jitter,
//! per-trial variation) each derive an independent stream from the master
//! seed with [`derive_seed`], so adding a consumer in one module never
//! perturbs the stream seen by another.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded through a
//! SplitMix64 expansion of the `u64` seed — the same construction the
//! reference implementation recommends. It is fast, has a 2^256 − 1
//! period, passes BigCrush, and (critically for this repo) its output is
//! bit-identical on every platform and toolchain, so golden trajectories
//! pinned in the test suite never drift. This is not cryptography.

/// Derive a child seed from a parent seed and a domain label.
///
/// Uses the SplitMix64 finalizer over the parent seed mixed with an FNV-1a
/// hash of the label — cheap, stable across platforms/releases, and good
/// enough to decorrelate streams (this is not cryptography).
pub fn derive_seed(parent: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix64(parent ^ h)
}

/// Derive a child seed from a parent seed and an index (per-trial streams).
pub fn derive_seed_indexed(parent: u64, label: &str, index: u64) -> u64 {
    splitmix64(derive_seed(parent, label).wrapping_add(splitmix64(index)))
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The workspace-standard PRNG: xoshiro256++ with SplitMix64 seeding.
///
/// All simulation randomness flows through this type; there is no other
/// entropy source anywhere in the workspace, which is what makes
/// same-seed runs bit-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Seed the generator. Distinct seeds give decorrelated streams.
    pub fn from_seed(seed: u64) -> Rng64 {
        // SplitMix64 expansion, as recommended by the xoshiro authors:
        // consecutive outputs of a SplitMix64 stream fill the state.
        let mut z = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            *w = splitmix64(z.wrapping_sub(0x9e37_79b9_7f4a_7c15));
        }
        // The all-zero state is the one fixed point; unreachable from
        // SplitMix64 outputs in practice, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Rng64 { s }
    }

    /// Next raw 64-bit output (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`: the top 53 bits scaled by 2⁻⁵³.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn gen_range(&mut self, range: std::ops::Range<f64>) -> f64 {
        debug_assert!(range.start < range.end, "empty range");
        range.start + self.gen_f64() * (range.end - range.start)
    }

    /// Uniform index in `[0, n)`, unbiased (Lemire's method). Panics if
    /// `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index(0)");
        let n64 = n as u64;
        let mut m = u128::from(self.next_u64()) * u128::from(n64);
        let mut lo = m as u64;
        if lo < n64 {
            let threshold = n64.wrapping_neg() % n64;
            while lo < threshold {
                m = u128::from(self.next_u64()) * u128::from(n64);
                lo = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Bernoulli draw with success probability `p` (clamped to [0, 1]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Draw from a zero-mean Gaussian via Box–Muller (two uniforms).
    pub fn gaussian(&mut self, std_dev: f64) -> f64 {
        // Guard u1 away from 0 so ln() is finite.
        let u1 = self.gen_range(f64::MIN_POSITIVE..1.0);
        let u2 = self.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos() * std_dev
    }
}

/// Construct the workspace-standard RNG from a seed.
pub fn rng_from_seed(seed: u64) -> Rng64 {
    Rng64::from_seed(seed)
}

/// Draw from a zero-mean Gaussian via Box–Muller (two uniforms).
///
/// Free-function form kept because most of the workspace reads better as
/// `gaussian(&mut rng, σ)` inside longer sampling expressions.
pub fn gaussian(rng: &mut Rng64, std_dev: f64) -> f64 {
    rng.gaussian(std_dev)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_are_stable() {
        // Regression pins: changing these would silently change every
        // experiment in the workspace. Values frozen at the hermetic
        //-build migration; derive_seed itself predates it unchanged.
        assert_eq!(derive_seed(42, "channel"), DERIVE_SEED_42_CHANNEL);
        assert_eq!(derive_seed(42, "pen"), DERIVE_SEED_42_PEN);
        assert_eq!(derive_seed(43, "channel"), DERIVE_SEED_43_CHANNEL);
        assert_eq!(derive_seed_indexed(7, "trial", 0), DERIVE_SEED_IDX_7_TRIAL_0);
        assert_eq!(derive_seed_indexed(7, "trial", 1), DERIVE_SEED_IDX_7_TRIAL_1);
        assert_ne!(derive_seed(42, "channel"), derive_seed(42, "pen"));
        assert_ne!(derive_seed(42, "channel"), derive_seed(43, "channel"));
    }

    const DERIVE_SEED_42_CHANNEL: u64 = 0x62ec_0698_53f5_755b;
    const DERIVE_SEED_42_PEN: u64 = 0x3df8_8c92_d6ea_8194;
    const DERIVE_SEED_43_CHANNEL: u64 = 0x6a67_316b_e7fa_560f;
    const DERIVE_SEED_IDX_7_TRIAL_0: u64 = 0x1d30_f9d1_d19a_be24;
    const DERIVE_SEED_IDX_7_TRIAL_1: u64 = 0x37ae_9e37_6d34_a4ec;

    #[test]
    fn xoshiro_matches_reference_vectors() {
        // First outputs of xoshiro256++ from the state {1, 2, 3, 4},
        // per the public-domain reference implementation.
        let mut rng = Rng64 { s: [1, 2, 3, 4] };
        let expect: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for e in expect {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn indexed_seeds_differ_per_index() {
        let a = derive_seed_indexed(7, "trial", 0);
        let b = derive_seed_indexed(7, "trial", 1);
        assert_ne!(a, b);
        assert_eq!(a, derive_seed_indexed(7, "trial", 0));
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = rng_from_seed(11);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn gen_range_spans_the_interval() {
        let mut rng = rng_from_seed(12);
        let (mut lo, mut hi) = (f64::MAX, f64::MIN);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < -2.9 && hi > 4.9, "draws must fill [{lo}, {hi}]");
    }

    #[test]
    fn gen_index_is_roughly_uniform_and_in_range() {
        let mut rng = rng_from_seed(13);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[rng.gen_index(7)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
        for _ in 0..100 {
            assert_eq!(rng.gen_index(1), 0);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = rng_from_seed(14);
        let hits = (0..50_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((13_500..16_500).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gaussian_has_plausible_moments() {
        let mut rng = rng_from_seed(1);
        let xs: Vec<f64> = (0..20_000).map(|_| gaussian(&mut rng, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.06, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let mut a = rng_from_seed(99);
        let mut b = rng_from_seed(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_decorrelate() {
        let mut a = rng_from_seed(0);
        let mut b = rng_from_seed(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
