//! Fleet overload sweep: graceful degradation instead of collapse
//! (not in the paper).
//!
//! A foreground pen writes one real letter through the sharded fleet
//! front door (`polardraw_core::fleet::FleetRouter`) while a synthetic
//! background crowd (`rfid_sim::traffic`) — diurnal load with flash
//! crowds and session churn — floods the same rig at 1×/2×/4×/8× the
//! baseline session count. The table reports what the overload
//! controller *does*: reports deferred (never dropped), the bounded
//! ingest queue's peak, the degradation rung reached, and the
//! foreground pen's Procrustes error and completion round. Every
//! column is deterministic (reruns are byte-identical); wall-clock
//! latency percentiles live in `BENCH_fleet.json` (see
//! `scripts/bench.sh --suite fleet`).

use crate::report::Report;
use crate::runner::RunOpts;
use crate::setup::{polardraw_config_for, simulate_reports, TrialSetup};
use polardraw_core::fleet::{FleetConfig, FleetRouter};
use polardraw_core::OnlineOptions;
use recognition::procrustes_distance;
use rf_core::rng::derive_seed;
use rfid_sim::traffic::{TrafficConfig, TrafficModel};
use rfid_sim::TagReport;

/// Background-crowd multipliers swept (sessions = `BG_BASE`×load).
pub const LOADS: [usize; 4] = [1, 2, 4, 8];

/// Background sessions at load 1×.
pub const BG_BASE: usize = 12;

/// Per-shard ingest bound (reports). Small enough that the flash
/// crowds overrun it at the higher loads.
const QUEUE_CAP: usize = 512;

/// Foreground reports offered per serving round.
const FG_CHUNK: usize = 64;

/// Serving-round length in virtual traffic seconds.
const ROUND_S: f64 = 10.0;

/// Extra grid coarsening for the whole sweep: a ~hundred-session fleet
/// at paper-fidelity cells would take hours; the same controller runs
/// on the same code paths at a coarser grid, and every load row shares
/// the rig so rows stay comparable.
const COARSEN: f64 = 6.0;

/// One load row's outcome.
struct LoadRow {
    sessions: usize,
    offered: usize,
    admitted: usize,
    peak_queue: usize,
    peak_rung: usize,
    degrade_steps: usize,
    recover_steps: usize,
    dropped: usize,
    fg_done_round: usize,
    rounds: usize,
    fg_procrustes_m: Option<f64>,
}

fn traffic_for(load: usize, seed: u64) -> TrafficModel {
    TrafficModel::generate(
        TrafficConfig {
            sessions: BG_BASE * load,
            horizon_s: 300.0,
            diurnal_period_s: 300.0,
            flash_crowds: 2,
            flash_width_s: 30.0,
            report_hz: 12.0,
            ..TrafficConfig::default()
        },
        derive_seed(seed, "overload.traffic"),
    )
}

/// Run one load point end to end. Deterministic: the serving loop is
/// round-based (virtual traffic time), the controller keys on queue
/// occupancy only, and thread count never changes outputs.
fn run_load(load: usize, opts: &RunOpts) -> LoadRow {
    let setup = {
        let mut s = TrialSetup::letter('S');
        s.cell_scale *= opts.cell_scale * COARSEN;
        s
    };
    let cfg = polardraw_config_for(&setup);
    let (truth, fg_reports) = simulate_reports(&setup, derive_seed(opts.seed, "overload.fg"));

    let model = traffic_for(load, opts.seed);
    // One shard: this sweep isolates the overload controller (shard
    // routing and spill have their own tests and bench rows), so every
    // session contends for one bounded queue.
    let mut fleet = FleetRouter::new(FleetConfig {
        shards: 1,
        threads_per_shard: 1,
        queue_cap: QUEUE_CAP,
        soft_session_cap: 1024,
        ..FleetConfig::default()
    });

    let fg = fleet.add_session(cfg, OnlineOptions::default());
    let bg: Vec<_> = model
        .plans()
        .iter()
        .map(|_| fleet.add_session(cfg, OnlineOptions::default()))
        .collect();

    let base_rounds = (model.config().horizon_s / ROUND_S).ceil() as usize;
    let mut fg_backlog: Vec<TagReport> = fg_reports.clone();
    let mut bg_backlog: Vec<Vec<TagReport>> = vec![Vec::new(); bg.len()];
    let mut fg_done_round = 0;
    let mut rounds = 0;

    loop {
        let t0 = rounds as f64 * ROUND_S;
        // Admit this round's traffic into the backlogs…
        if rounds < base_rounds {
            for (i, plan) in model.plans().iter().enumerate() {
                model.reports_into(plan, t0, t0 + ROUND_S, &mut bg_backlog[i]);
            }
        }
        // …then offer every backlog; what the fleet defers stays put.
        let take = fg_backlog.len().min(FG_CHUNK);
        let admitted = fleet.offer(fg, &fg_backlog[..take]);
        fg_backlog.drain(..admitted);
        if fg_backlog.is_empty() && fg_done_round == 0 {
            fg_done_round = rounds + 1;
        }
        for (i, &id) in bg.iter().enumerate() {
            let admitted = fleet.offer(id, &bg_backlog[i]);
            bg_backlog[i].drain(..admitted);
        }
        fleet.drain();
        rounds += 1;

        let backlog: usize =
            fg_backlog.len() + bg_backlog.iter().map(|b| b.len()).sum::<usize>();
        if rounds >= base_rounds && backlog == 0 {
            break;
        }
        assert!(rounds < base_rounds * 20, "overload run failed to drain its backlog");
    }

    let stats = fleet.stats();
    let sessions = stats.sessions;
    let dropped = sessions - stats.live;
    let fg_trail = fleet.finish_session(fg);
    LoadRow {
        sessions,
        offered: stats.offered,
        admitted: stats.admitted,
        peak_queue: stats.peak_pending,
        peak_rung: stats.peak_level,
        degrade_steps: stats.degrade_steps,
        recover_steps: stats.recover_steps,
        dropped,
        fg_done_round,
        rounds,
        fg_procrustes_m: procrustes_distance(&truth, &fg_trail.trail.points, 64),
    }
}

/// Run the overload sweep.
pub fn run(opts: &RunOpts) -> Vec<Report> {
    let mut report = Report::new(
        "overload",
        "Fleet overload: background load vs degradation, deferral, and accuracy",
        "not in the paper; the front door's no-collapse contract — bounded \
         queues, deferred (never dropped) reports, and a declarative \
         degradation ladder with hysteresis",
    )
    .headers(vec![
        "Load".to_string(),
        "Sessions".to_string(),
        "Offered".to_string(),
        "Admitted".to_string(),
        "Deferred".to_string(),
        "Peak queue".to_string(),
        "Peak rung".to_string(),
        "Rung steps (down/up)".to_string(),
        "Dropped".to_string(),
        "FG done round".to_string(),
        "Rounds".to_string(),
        "FG Procrustes (mm)".to_string(),
    ]);

    for &load in &LOADS {
        let row = run_load(load, opts);
        report.push_row(vec![
            format!("{load}x"),
            row.sessions.to_string(),
            row.offered.to_string(),
            row.admitted.to_string(),
            (row.offered - row.admitted).to_string(),
            format!("{}/{}", row.peak_queue, QUEUE_CAP),
            format!("{}/3", row.peak_rung),
            format!("{}/{}", row.degrade_steps, row.recover_steps),
            row.dropped.to_string(),
            row.fg_done_round.to_string(),
            row.rounds.to_string(),
            row.fg_procrustes_m
                .map(|m| format!("{:.1}", m * 1e3))
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }

    report.push_note(format!(
        "one foreground pen writes 'S' while {BG_BASE}x load synthetic \
         background sessions (diurnal + 2 flash crowds, rfid_sim::traffic) \
         flood the same rig; queue cap {QUEUE_CAP} reports on one shard, \
         {COARSEN}x grid coarsening to keep the sweep tractable \
         (all rows share the rig, so rows are comparable)",
    ));
    report.push_note(
        "'Deferred' reports are re-offered by the producer and admitted in a \
         later round — the admission shortfall is backpressure, not loss; \
         'Dropped' counts sessions the fleet shed (the contract: always 0)",
    );
    report.push_note(
        "degradation is monotone in load (peak rung never decreases as load \
         grows) and recovery is hysteretic — see tests/fleet.rs for the \
         property test and BENCH_fleet.json for wall-clock latency",
    );
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_grow_and_traffic_scales_with_them() {
        assert!(LOADS.windows(2).all(|w| w[0] < w[1]));
        let a = traffic_for(1, 42);
        let b = traffic_for(8, 42);
        assert_eq!(a.plans().len(), BG_BASE);
        assert_eq!(b.plans().len(), 8 * BG_BASE);
    }
}
