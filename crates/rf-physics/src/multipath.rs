//! Multipath: image-method planar reflectors and a bystander scatterer.
//!
//! Two empirical facts from the paper's feasibility study (§2) drive this
//! module's requirements:
//!
//! 1. When the tag is cross-polarized to the reader (β ≈ 90°) it still
//!    occasionally responds "along non-line-of-sight signal propagation
//!    paths, where the signal bounces off nearby objects, changing the
//!    measured phase angle" — the *spurious phase* readings PolarDraw's
//!    pre-processor rejects. Reflections must therefore rotate
//!    polarization, so that some energy survives the LoS null.
//! 2. A bystander standing (static multipath) or walking (dynamic
//!    multipath) near the whiteboard perturbs accuracy only mildly beyond
//!    30 cm (Fig. 16). The bystander is modelled as a discrete scatterer
//!    whose path gain falls with both legs of the detour.

use crate::polarization::rotate_about_axis;
use rf_core::Vec3;

/// Electromagnetic boundary model of a reflecting surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Surface {
    /// The calibrated empirical bounce the paper-scale scenes use: a
    /// fixed amplitude `reflectivity` and a fixed `depolarization`
    /// rotation, independent of incidence angle. Cheap, and exactly what
    /// the scalar channel has always computed.
    Empirical,
    /// Lossless-dielectric Fresnel boundary: s/p reflection coefficients
    /// derived from the relative permittivity and the incidence angle,
    /// applied in the plane-of-incidence frame with the proper
    /// polarization-rotating geometry. Only the Jones channel resolves
    /// the s/p split; the scalar channel keeps the empirical transform
    /// for these reflectors (the reduction it is calibrated against).
    Fresnel {
        /// Relative permittivity εr ≥ 1 (drywall ≈ 2–3, concrete ≈ 5–7,
        /// glass ≈ 6–7).
        rel_permittivity: f64,
    },
}

/// Fresnel amplitude reflection coefficient for s-polarization
/// (E perpendicular to the plane of incidence, a.k.a. horizontal/TE) off
/// a lossless dielectric of relative permittivity `eps_r`, given the
/// cosine of the incidence angle (`1` = normal, `0` = grazing).
///
/// `r_s = (cos θ − √(εr − sin²θ)) / (cos θ + √(εr − sin²θ))` — exactly
/// `−1` at grazing incidence, `−(√εr−1)/(√εr+1)` at normal incidence.
pub fn fresnel_rs(eps_r: f64, cos_theta: f64) -> f64 {
    let root = (eps_r - (1.0 - cos_theta * cos_theta)).max(0.0).sqrt();
    (cos_theta - root) / (cos_theta + root)
}

/// Fresnel amplitude reflection coefficient for p-polarization
/// (E in the plane of incidence, a.k.a. vertical/TM):
/// `r_p = (εr·cos θ − √(εr − sin²θ)) / (εr·cos θ + √(εr − sin²θ))` —
/// zero at the Brewster angle `tan θ_B = √εr`, `−1` at grazing.
pub fn fresnel_rp(eps_r: f64, cos_theta: f64) -> f64 {
    let root = (eps_r - (1.0 - cos_theta * cos_theta)).max(0.0).sqrt();
    (eps_r * cos_theta - root) / (eps_r * cos_theta + root)
}

/// An infinite planar reflector (wall, ceiling, desk surface).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reflector {
    /// Any point on the plane.
    pub point: Vec3,
    /// Unit normal.
    pub normal: Vec3,
    /// Amplitude reflection coefficient in `[0, 1]` (drywall ≈ 0.3–0.5,
    /// metal ≈ 0.9). Used by the `Empirical` surface model.
    pub reflectivity: f64,
    /// Extra polarization rotation applied on reflection, radians.
    /// Real oblique reflections mix s- and p-components; a fixed
    /// per-reflector rotation captures the resulting cross-polarized
    /// leakage without a full Fresnel treatment. Used by the `Empirical`
    /// surface model.
    pub depolarization: f64,
    /// Boundary model: `Empirical` (reflectivity + depolarization) or a
    /// proper `Fresnel` dielectric (Jones channel).
    pub surface: Surface,
}

impl Reflector {
    /// A wall `offset` metres behind the whiteboard plane (z = −offset).
    pub fn wall_behind(offset: f64, reflectivity: f64, depolarization: f64) -> Reflector {
        Reflector {
            point: Vec3::new(0.0, 0.0, -offset),
            normal: Vec3::Z,
            reflectivity,
            depolarization,
            surface: Surface::Empirical,
        }
    }

    /// Switch this reflector's boundary model.
    pub fn with_surface(mut self, surface: Surface) -> Reflector {
        self.surface = surface;
        self
    }

    /// Mirror a point across the reflector plane.
    pub fn mirror(&self, p: Vec3) -> Vec3 {
        let d = (p - self.point).dot(self.normal);
        p - self.normal * (2.0 * d)
    }

    /// Mirror a *direction* (free vector) across the plane.
    pub fn mirror_dir(&self, v: Vec3) -> Vec3 {
        v - self.normal * (2.0 * v.dot(self.normal))
    }

    /// Geometry of the single-bounce path from `src` to `dst`:
    /// `(path_length, arrival_direction_at_dst)`.
    ///
    /// By the image method the reflected path has the length of the
    /// straight line from the mirrored source to the destination, and
    /// arrives from the mirrored source's direction.
    pub fn path(&self, src: Vec3, dst: Vec3) -> (f64, Vec3) {
        let image = self.mirror(src);
        let delta = dst - image;
        let len = delta.norm();
        let dir = delta.normalized().unwrap_or(Vec3::Z);
        (len, dir)
    }

    /// Transform a field polarization vector through the reflection:
    /// mirror it, then apply the depolarization rotation about the
    /// outgoing propagation axis `k_out`.
    pub fn reflect_polarization(&self, e: Vec3, k_out: Vec3) -> Vec3 {
        let mirrored = self.mirror_dir(e);
        rotate_about_axis(mirrored, k_out, self.depolarization) * self.reflectivity
    }
}

/// How the bystander moves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BystanderMotion {
    /// Standing still: static multipath.
    Static,
    /// Pacing sinusoidally along X with the given peak-to-peak amplitude
    /// (m) and cadence (Hz). Walking ≈ 0.5 m at 0.5–1 Hz.
    Walking {
        /// Peak-to-peak excursion, metres.
        amplitude_m: f64,
        /// Pacing frequency, hertz.
        frequency_hz: f64,
    },
}

/// A human bystander near the whiteboard, modelled as a point scatterer
/// with a fixed (random, per-scene) scattered polarization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bystander {
    /// Torso centre at t = 0.
    pub position: Vec3,
    /// Motion model.
    pub motion: BystanderMotion,
    /// Amplitude scattering coefficient (dimensionless, relative to an
    /// isotropic re-radiator); human torso at UHF ≈ 0.1–0.3.
    pub scattering: f64,
    /// Orientation of the scattered field's polarization, radians, about
    /// the outgoing propagation axis. Human tissue scatters with largely
    /// randomized polarization.
    pub depolarization: f64,
}

impl Bystander {
    /// Position at time `t` seconds.
    pub fn position_at(&self, t: f64) -> Vec3 {
        match self.motion {
            BystanderMotion::Static => self.position,
            BystanderMotion::Walking { amplitude_m, frequency_hz } => {
                let dx = 0.5
                    * amplitude_m
                    * (std::f64::consts::TAU * frequency_hz * t).sin();
                self.position + Vec3::new(dx, 0.0, 0.0)
            }
        }
    }

    /// Geometry of the scattered path `src → body(t) → dst`:
    /// `(leg1_length, leg2_length, arrival_direction_at_dst)`.
    pub fn path(&self, src: Vec3, dst: Vec3, t: f64) -> (f64, f64, Vec3) {
        let body = self.position_at(t);
        let l1 = (body - src).norm();
        let delta = dst - body;
        let l2 = delta.norm();
        (l1, l2, delta.normalized().unwrap_or(Vec3::Z))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_across_back_wall() {
        let wall = Reflector::wall_behind(1.0, 0.4, 0.3);
        let m = wall.mirror(Vec3::new(0.5, 0.2, 2.0));
        assert_eq!(m, Vec3::new(0.5, 0.2, -4.0));
        // Mirroring twice is the identity.
        assert_eq!(wall.mirror(m), Vec3::new(0.5, 0.2, 2.0));
    }

    #[test]
    fn mirror_dir_flips_normal_component_only() {
        let wall = Reflector::wall_behind(1.0, 0.4, 0.0);
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(wall.mirror_dir(v), Vec3::new(1.0, 2.0, -3.0));
    }

    #[test]
    fn reflected_path_is_longer_than_direct() {
        let wall = Reflector::wall_behind(1.5, 0.4, 0.0);
        let src = Vec3::new(0.0, 0.0, 2.0);
        let dst = Vec3::new(0.3, 0.1, 0.0);
        let (len, _) = wall.path(src, dst);
        assert!(len > src.distance(dst));
    }

    #[test]
    fn reflected_path_obeys_image_geometry() {
        // Source and destination equidistant from the wall: the bounce
        // path length equals the direct distance between the mirrored
        // endpoints (classic image construction).
        let wall = Reflector {
            point: Vec3::ZERO,
            normal: Vec3::Z,
            reflectivity: 1.0,
            depolarization: 0.0,
            surface: Surface::Empirical,
        };
        let src = Vec3::new(-1.0, 0.0, 1.0);
        let dst = Vec3::new(1.0, 0.0, 1.0);
        let (len, dir) = wall.path(src, dst);
        assert!((len - 2.0 * 2f64.sqrt()).abs() < 1e-12);
        // Arrives travelling up and to the right at 45°.
        assert!((dir.x - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((dir.z - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn reflection_attenuates_field() {
        let wall = Reflector::wall_behind(1.0, 0.4, 0.0);
        let e = Vec3::X;
        let r = wall.reflect_polarization(e, Vec3::Z);
        assert!((r.norm() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn depolarization_injects_cross_component() {
        // An X-polarized field reflecting with nonzero depolarization
        // acquires a Y component — the energy that survives the LoS
        // cross-polarization null and causes spurious phases.
        let wall = Reflector::wall_behind(1.0, 1.0, 0.5);
        let r = wall.reflect_polarization(Vec3::X, Vec3::Z);
        assert!(r.y.abs() > 0.4);
    }

    #[test]
    fn static_bystander_does_not_move() {
        let b = Bystander {
            position: Vec3::new(0.5, 0.0, 0.6),
            motion: BystanderMotion::Static,
            scattering: 0.2,
            depolarization: 0.7,
        };
        assert_eq!(b.position_at(0.0), b.position_at(10.0));
    }

    #[test]
    fn walking_bystander_oscillates() {
        let b = Bystander {
            position: Vec3::new(0.5, 0.0, 0.6),
            motion: BystanderMotion::Walking { amplitude_m: 0.5, frequency_hz: 0.5 },
            scattering: 0.2,
            depolarization: 0.7,
        };
        let quarter = b.position_at(0.5); // quarter period: peak excursion
        assert!((quarter.x - 0.75).abs() < 1e-9);
        let full = b.position_at(2.0); // full period: back to start
        assert!((full.x - 0.5).abs() < 1e-9);
    }

    #[test]
    fn bystander_path_lengths_are_positive_detours() {
        let b = Bystander {
            position: Vec3::new(0.3, 0.2, 0.5),
            motion: BystanderMotion::Static,
            scattering: 0.2,
            depolarization: 0.0,
        };
        let src = Vec3::new(0.0, -0.1, 1.5);
        let dst = Vec3::new(0.4, 0.3, 0.0);
        let (l1, l2, _) = b.path(src, dst, 0.0);
        assert!(l1 + l2 > src.distance(dst));
    }

    // ---- Fresnel closed-form laws --------------------------------------

    #[test]
    fn fresnel_vanishes_at_brewster_for_p_polarization() {
        // tan θ_B = √εr ⇒ r_p(θ_B) = 0, for any lossless dielectric.
        for eps_r in [1.5f64, 2.0, 4.0, 6.5, 9.0] {
            let theta_b = eps_r.sqrt().atan();
            let rp = fresnel_rp(eps_r, theta_b.cos());
            assert!(rp.abs() < 1e-12, "εr = {eps_r}: r_p(θ_B) = {rp}");
            // …and s-polarization does NOT vanish there.
            let rs = fresnel_rs(eps_r, theta_b.cos());
            assert!(rs.abs() > 0.1, "εr = {eps_r}: r_s(θ_B) = {rs}");
        }
    }

    #[test]
    fn fresnel_reaches_minus_one_at_grazing() {
        // cos θ → 0: total reflection with a π phase flip, both
        // polarizations (the V-pol/−1 limit of the satellite spec).
        for eps_r in [1.5, 2.0, 4.0, 6.5] {
            assert_eq!(fresnel_rs(eps_r, 0.0), -1.0);
            assert_eq!(fresnel_rp(eps_r, 0.0), -1.0);
        }
    }

    #[test]
    fn fresnel_normal_incidence_closed_form() {
        // At normal incidence the s/p distinction degenerates:
        // |r| = (√εr − 1)/(√εr + 1) for both (signs differ only by the
        // frame convention for the p axis).
        for eps_r in [2.0f64, 4.0, 7.0] {
            let want = (eps_r.sqrt() - 1.0) / (eps_r.sqrt() + 1.0);
            assert!((fresnel_rs(eps_r, 1.0) + want).abs() < 1e-12);
            assert!((fresnel_rp(eps_r, 1.0) - want).abs() < 1e-12);
        }
    }

    #[test]
    fn fresnel_magnitudes_stay_physical() {
        // Passive boundary: |r| ≤ 1 across the whole incidence range,
        // and r_p crosses zero exactly once (at Brewster).
        let eps_r = 5.0f64;
        let theta_b = eps_r.sqrt().atan();
        let mut sign_changes = 0;
        let mut prev = fresnel_rp(eps_r, 1.0);
        for i in 1..=1000 {
            let theta = i as f64 / 1000.0 * std::f64::consts::FRAC_PI_2;
            let rs = fresnel_rs(eps_r, theta.cos());
            let rp = fresnel_rp(eps_r, theta.cos());
            assert!(rs.abs() <= 1.0 + 1e-12 && rp.abs() <= 1.0 + 1e-12);
            if rp.signum() != prev.signum() && prev != 0.0 {
                sign_changes += 1;
                assert!(
                    (theta - theta_b).abs() < 0.01,
                    "r_p sign change at {theta}, Brewster is {theta_b}"
                );
            }
            prev = rp;
        }
        assert_eq!(sign_changes, 1);
    }

    #[test]
    fn with_surface_switches_the_boundary_model() {
        let wall = Reflector::wall_behind(1.0, 0.4, 0.3);
        assert_eq!(wall.surface, Surface::Empirical);
        let fresnel = wall.with_surface(Surface::Fresnel { rel_permittivity: 2.5 });
        assert_eq!(fresnel.surface, Surface::Fresnel { rel_permittivity: 2.5 });
        // The geometric helpers are surface-independent.
        assert_eq!(
            wall.path(Vec3::new(0.0, 0.0, 2.0), Vec3::new(0.3, 0.1, 0.0)),
            fresnel.path(Vec3::new(0.0, 0.0, 2.0), Vec3::new(0.3, 0.1, 0.0))
        );
    }
}
