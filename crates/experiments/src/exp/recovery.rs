//! Crash-recovery sweep: checkpoint interval × kill point (not in the
//! paper).
//!
//! Four pens write real letters through the self-healing fleet front
//! door with a durability store attached
//! (`polardraw_core::durability::CheckpointStore`). After a swept
//! serving round the hosting shard is killed — its pool, queues, and
//! controller state vanish — and `FleetRouter::recover` rebuilds every
//! session from the newest good checkpoint generation plus the escrow
//! ledger's replay tail. The table reports what durability *costs and
//! delivers* at each checkpoint interval K: checkpoints sealed,
//! escrowed reports replayed, restore walk-back fallbacks (for the
//! corrupted-store row), whether the recovered trails are bit-identical
//! to a run that never crashed (the contract: always yes), and the
//! foreground pen's Procrustes error. Deterministic: reruns are
//! byte-identical; the adversarial sweep lives in `tests/chaos.rs`.

use crate::report::Report;
use crate::runner::RunOpts;
use crate::setup::{polardraw_config_for, simulate_reports, TrialSetup};
use polardraw_core::durability::CheckpointStore;
use polardraw_core::fleet::{CheckpointPolicy, FleetConfig, FleetRouter};
use polardraw_core::{OnlineOptions, TrackOutput};
use recognition::procrustes_distance;
use rf_core::rng::derive_seed_indexed;
use rf_core::Vec2;
use rfid_sim::chaos::mutate_bytes;
use rfid_sim::TagReport;

/// Checkpoint intervals swept (seal every K-th drain round).
pub const INTERVALS: [usize; 3] = [1, 2, 4];

/// Serving rounds each stream is sliced into.
pub const ROUNDS: usize = 8;

/// Kill points swept (shard killed after this round's drain).
pub const KILL_ROUNDS: [usize; 3] = [2, 4, 6];

/// Letters the four pens write (all on one shared rig).
const LETTERS: [char; 4] = ['L', 'S', 'W', 'Z'];

/// Extra grid coarsening: same rationale as the overload sweep — the
/// recovery machinery runs the same code paths at a coarser grid, and
/// every row shares the rig so rows stay comparable.
const COARSEN: f64 = 6.0;

struct Pens {
    truth: Vec<Vec2>,
    streams: Vec<Vec<TagReport>>,
}

fn pens(opts: &RunOpts) -> Pens {
    let mut truth = Vec::new();
    let streams = LETTERS
        .iter()
        .enumerate()
        .map(|(i, &letter)| {
            let mut setup = TrialSetup::letter(letter);
            setup.cell_scale *= opts.cell_scale * COARSEN;
            let seed = derive_seed_indexed(opts.seed, "recovery.pen", i as u64);
            let (t, reports) = simulate_reports(&setup, seed);
            if i == 0 {
                truth = t;
            }
            reports
        })
        .collect();
    Pens { truth, streams }
}

struct CaseRow {
    checkpoints: usize,
    recoveries: usize,
    requeued: usize,
    fallbacks: usize,
    bitwise: bool,
    fg_procrustes_m: Option<f64>,
}

/// Serve all four pens in `ROUNDS` slices; optionally kill shard 0
/// after `kill_round` (corrupting every session's newest generation
/// first when `corrupt`), recover, and finish.
fn run_case(
    opts: &RunOpts,
    pens: &Pens,
    reference: Option<&[TrackOutput]>,
    every_drains: usize,
    kill_round: Option<usize>,
    corrupt: bool,
) -> (Vec<TrackOutput>, CaseRow) {
    let setup = {
        let mut s = TrialSetup::letter(LETTERS[0]);
        s.cell_scale *= opts.cell_scale * COARSEN;
        s
    };
    let cfg = polardraw_config_for(&setup);
    let mut fleet = FleetRouter::new(FleetConfig {
        shards: 1,
        threads_per_shard: 1,
        queue_cap: usize::MAX / 2,
        soft_session_cap: usize::MAX / 2,
        checkpoint: CheckpointPolicy { every_drains, ..CheckpointPolicy::default() },
        ..FleetConfig::default()
    });
    fleet.attach_store(CheckpointStore::in_memory(3));
    let ids: Vec<_> =
        pens.streams.iter().map(|_| fleet.add_session(cfg, OnlineOptions::default())).collect();

    let mut requeued = 0;
    for round in 0..ROUNDS {
        for (i, stream) in pens.streams.iter().enumerate() {
            let lo = stream.len() * round / ROUNDS;
            let hi = stream.len() * (round + 1) / ROUNDS;
            fleet.offer(ids[i], &stream[lo..hi]);
        }
        fleet.drain();
        if kill_round == Some(round) {
            if corrupt {
                for &id in &ids {
                    let store = fleet.store_mut().expect("store attached");
                    if let Some(generation) = store.latest(id as u64) {
                        let bytes = store.read(id as u64, generation).expect("committed");
                        let mut rotten = mutate_bytes(&bytes, opts.seed ^ id as u64);
                        if rotten == bytes {
                            rotten.truncate(bytes.len() / 2);
                        }
                        store.overwrite(id as u64, generation, &rotten);
                    }
                }
            }
            fleet.kill_shard(0);
            requeued = fleet.recover(0).requeued_reports;
        }
    }
    let stats = fleet.stats();
    let trails: Vec<TrackOutput> = fleet.finish().into_iter().map(|(_, t)| t).collect();
    let bitwise = reference.map_or(true, |want| {
        trails.len() == want.len()
            && trails.iter().zip(want).all(|(g, w)| {
                g.trail.points.len() == w.trail.points.len()
                    && g
                        .trail
                        .points
                        .iter()
                        .zip(&w.trail.points)
                        .all(|(p, q)| p.x.to_bits() == q.x.to_bits() && p.y.to_bits() == q.y.to_bits())
            })
    });
    let row = CaseRow {
        checkpoints: stats.checkpoints,
        recoveries: stats.recoveries,
        requeued,
        fallbacks: stats.restore_fallbacks,
        bitwise,
        fg_procrustes_m: procrustes_distance(&pens.truth, &trails[0].trail.points, 64),
    };
    (trails, row)
}

/// Run the recovery sweep.
pub fn run(opts: &RunOpts) -> Vec<Report> {
    let mut report = Report::new(
        "recovery",
        "Crash recovery: checkpoint interval x kill point vs durability cost and fidelity",
        "not in the paper; the durability layer's contract — checkpointed \
         sessions survive a shard crash with zero report loss and \
         bit-identical output, walking back over corrupted generations",
    )
    .headers(vec![
        "Interval K".to_string(),
        "Kill after round".to_string(),
        "Checkpoints".to_string(),
        "Recovered".to_string(),
        "Replayed reports".to_string(),
        "Fallbacks".to_string(),
        "Bitwise identical".to_string(),
        "FG Procrustes (mm)".to_string(),
    ]);

    let pens = pens(opts);
    // One calm reference: checkpointing never changes outputs, so a
    // single uncrashed run anchors every row's bitwise column.
    let (reference, calm) = run_case(opts, &pens, None, 1, None, false);
    report.push_row(vec![
        "1".to_string(),
        "-".to_string(),
        calm.checkpoints.to_string(),
        "0".to_string(),
        "0".to_string(),
        "0".to_string(),
        "-".to_string(),
        calm.fg_procrustes_m.map(|m| format!("{:.1}", m * 1e3)).unwrap_or_else(|| "-".into()),
    ]);

    for &every_drains in &INTERVALS {
        for &kill in &KILL_ROUNDS {
            let (_, row) =
                run_case(opts, &pens, Some(&reference), every_drains, Some(kill), false);
            report.push_row(vec![
                every_drains.to_string(),
                kill.to_string(),
                row.checkpoints.to_string(),
                row.recoveries.to_string(),
                row.requeued.to_string(),
                row.fallbacks.to_string(),
                if row.bitwise { "yes" } else { "NO" }.to_string(),
                row.fg_procrustes_m
                    .map(|m| format!("{:.1}", m * 1e3))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
    }
    // Adversarial row: every session's newest generation is rotten at
    // kill time; restore walks back and escrow replay still closes the
    // gap bitwise.
    let (_, rotten) = run_case(opts, &pens, Some(&reference), 2, Some(4), true);
    report.push_row(vec![
        "2 (corrupt)".to_string(),
        "4".to_string(),
        rotten.checkpoints.to_string(),
        rotten.recoveries.to_string(),
        rotten.requeued.to_string(),
        rotten.fallbacks.to_string(),
        if rotten.bitwise { "yes" } else { "NO" }.to_string(),
        rotten.fg_procrustes_m.map(|m| format!("{:.1}", m * 1e3)).unwrap_or_else(|| "-".into()),
    ]);

    report.push_note(format!(
        "four pens write '{}' on one shared rig (one shard, \
         {COARSEN}x grid coarsening); a CheckpointStore (keep 3) seals every \
         K-th drain; the shard is killed after the swept round and recovered \
         from the store plus the escrow ledger's replay tail",
        LETTERS.iter().collect::<String>(),
    ));
    report.push_note(
        "'Bitwise identical' compares every recovered trail bit-for-bit \
         against a run that never crashed — the contract is 'yes' in every \
         row, including the corrupted-store row, because the escrow ledger \
         replays exactly what the restored generation had not seen",
    );
    report.push_note(
        "smaller K seals more checkpoints and replays fewer reports; the \
         adversarial sweep (swept cut points x thread counts, random chaos \
         plans, stalled drains) is tests/chaos.rs, and per-recovery \
         wall-clock cost is the fleet/recover row in BENCH_fleet.json",
    );
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_axes_are_sane() {
        assert!(INTERVALS.windows(2).all(|w| w[0] < w[1]));
        assert!(KILL_ROUNDS.iter().all(|&k| k < ROUNDS));
    }
}
