//! Dynamic time warping over 2-D trajectories.
//!
//! Procrustes assumes a fixed point-to-point correspondence after
//! resampling; DTW instead allows elastic time alignment, which is more
//! forgiving of locally uneven writing speed. Used as a cross-check
//! matcher and in the recognizer ablation benches.

use rf_core::Vec2;

/// Default Sakoe–Chiba half-width for sequences resampled to `len`
/// points: ~10% of the length (the classic speech-recognition setting),
/// floored at 2 so very short sequences keep some elasticity. At 10%
/// the band prunes the pathological warpings (one point absorbing a
/// whole stroke) while leaving room for realistic speed variation —
/// and cuts the DP from `len²` to `~0.2·len²` cells.
pub const fn sakoe_chiba_band(len: usize) -> usize {
    let b = len / 10;
    if b < 2 {
        2
    } else {
        b
    }
}

/// DTW distance between two trajectories with a Sakoe–Chiba band of
/// half-width `band` (`usize::MAX` for unconstrained).
///
/// Returns the path-normalized mean step cost; `None` for empty inputs.
pub fn dtw_distance(a: &[Vec2], b: &[Vec2], band: usize) -> Option<f64> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let (n, m) = (a.len(), b.len());
    let inf = f64::INFINITY;
    // Rolling two-row DP over the (n+1)×(m+1) accumulated-cost matrix.
    let mut prev = vec![inf; m + 1];
    let mut cur = vec![inf; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        cur.fill(inf);
        let lo = if band == usize::MAX { 1 } else { i.saturating_sub(band).max(1) };
        let hi = if band == usize::MAX { m } else { (i + band).min(m) };
        for j in lo..=hi {
            let cost = a[i - 1].distance(b[j - 1]);
            let best = prev[j - 1].min(prev[j]).min(cur[j - 1]);
            if best < inf {
                cur[j] = cost + best;
            }
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let total = prev[m];
    if total.is_finite() {
        Some(total / (n + m) as f64)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, slope: f64) -> Vec<Vec2> {
        (0..n).map(|i| Vec2::new(i as f64 * 0.01, i as f64 * 0.01 * slope)).collect()
    }

    #[test]
    fn identical_sequences_have_zero_distance() {
        let a = ramp(20, 0.5);
        assert_eq!(dtw_distance(&a, &a, usize::MAX), Some(0.0));
    }

    #[test]
    fn time_warped_copies_match_closely() {
        // Same path, one traversed with doubled samples: DTW absorbs
        // the speed difference; naive lockstep would not.
        let a = ramp(20, 0.5);
        let mut b = Vec::new();
        for p in &a {
            b.push(*p);
            b.push(*p);
        }
        let d = dtw_distance(&a, &b, usize::MAX).unwrap();
        assert!(d < 1e-9, "d = {d}");
    }

    #[test]
    fn different_shapes_have_positive_distance() {
        let a = ramp(20, 0.5);
        let b = ramp(20, -0.5);
        let d = dtw_distance(&a, &b, usize::MAX).unwrap();
        assert!(d > 0.01);
    }

    #[test]
    fn band_constrains_warping() {
        let a = ramp(30, 0.5);
        let mut b = a.clone();
        b.rotate_left(10); // grossly misaligned in time
        let free = dtw_distance(&a, &b, usize::MAX).unwrap();
        let banded = dtw_distance(&a, &b, 2).unwrap();
        assert!(banded >= free, "banded {banded} free {free}");
    }

    #[test]
    fn sakoe_chiba_band_is_ten_percent_floored() {
        assert_eq!(sakoe_chiba_band(64), 6);
        assert_eq!(sakoe_chiba_band(100), 10);
        assert_eq!(sakoe_chiba_band(10), 2, "floor keeps short sequences elastic");
        assert_eq!(sakoe_chiba_band(0), 2);
    }

    #[test]
    fn default_band_matches_unbanded_on_aligned_sequences() {
        // Well-aligned sequences (the clean-glyph regime the recognizer
        // sees) never need warping beyond the 10% band, so banded and
        // unbanded DTW agree exactly.
        let a = ramp(40, 0.5);
        let mut b = ramp(40, 0.5);
        for (i, p) in b.iter_mut().enumerate() {
            p.y += 0.002 * (i as f64 * 0.7).sin(); // mild local jitter
        }
        let banded = dtw_distance(&a, &b, sakoe_chiba_band(40)).unwrap();
        let free = dtw_distance(&a, &b, usize::MAX).unwrap();
        assert!((banded - free).abs() < 1e-12, "banded {banded} free {free}");
    }

    #[test]
    fn empty_inputs_are_none() {
        assert_eq!(dtw_distance(&[], &ramp(5, 1.0), 3), None);
        assert_eq!(dtw_distance(&ramp(5, 1.0), &[], 3), None);
    }

    #[test]
    fn distance_is_symmetric_enough() {
        let a = ramp(15, 0.3);
        let b = ramp(18, 0.6);
        let ab = dtw_distance(&a, &b, usize::MAX).unwrap();
        let ba = dtw_distance(&b, &a, usize::MAX).unwrap();
        assert!((ab - ba).abs() < 1e-12);
    }
}
