//! Jones ↔ scalar channel equivalence: the full-polarimetric channel
//! must *reduce* to the legacy cos²β coupling on every rig the paper
//! (and every committed artifact) actually uses — broadside mounted,
//! linearly co-polarized antennas with empirical reflectors.
//!
//! Three layers:
//!
//! * **Link-level sweep** — over a derived-seed family of PolarDraw
//!   rigs (γ, spacing, standoff varied; some with a walking bystander),
//!   the Jones channel's RSS/phase/forward power agree with the scalar
//!   path within 1e-12 at every sampled tag pose on both ports, and the
//!   power gate decision is identical.
//! * **Trail parity** — a full-fidelity letter-L trial under
//!   `--channel jones` reproduces the `--channel scalar` report stream
//!   and recovered trail bit-for-bit (the reader's 0.5 dB RSSI and
//!   12-bit phase quantization absorb the sub-1e-12 ulp dust).
//! * **Non-degeneracy** — the Jones channel is not a no-op: a circular
//!   reader-polarization override produces a genuinely different link.

use experiments::setup::{rig_for, run_trial, TrialSetup};
use pen_sim::scene::ChannelMode;
use rf_core::rng::{derive_seed_indexed, rng_from_seed, Rng64};
use rf_core::Vec3;
use rf_physics::{Bystander, BystanderMotion, ChannelModel, PolState, Polarimetry};

const TOL: f64 = 1e-12;

/// Assert two dB quantities agree within TOL, treating a shared −inf
/// (both paths below the amplitude floor) as equal.
fn assert_db_close(a: f64, b: f64, what: &str, ctx: &str) {
    if a == f64::NEG_INFINITY && b == f64::NEG_INFINITY {
        return;
    }
    assert!(
        (a - b).abs() <= TOL,
        "{what} diverged: scalar {a:.15} vs jones {b:.15} ({ctx})"
    );
}

/// One broadside linear-copolarized rig drawn from the derived-seed
/// family: the paper's two-antenna whiteboard geometry with γ ∈
/// [5°, 40°], spacing ∈ [0.3, 0.8] m, standoff ∈ [0.2, 1.0] m.
fn sampled_rig(rng: &mut Rng64, with_bystander: bool) -> ChannelModel {
    let gamma = rng.gen_range(5.0..40.0).to_radians();
    let spacing = rng.gen_range(0.3..0.8);
    let standoff = rng.gen_range(0.2..1.0);
    let mut ch = ChannelModel::two_antenna_whiteboard(gamma, spacing, standoff);
    if with_bystander {
        ch.bystander = Some(Bystander {
            position: Vec3::new(rng.gen_range(-0.5..0.5), 1.0, rng.gen_range(1.0..2.0)),
            motion: BystanderMotion::Walking { amplitude_m: 0.5, frequency_hz: 0.6 },
            scattering: 0.2,
            depolarization: rng.gen_range(0.0..1.0),
        });
    }
    ch
}

/// Random tag pose in the writing volume: position near the board,
/// unit dipole in a random transverse-ish direction.
fn sampled_pose(rng: &mut Rng64) -> (Vec3, Vec3) {
    let pos = Vec3::new(
        rng.gen_range(-0.3..0.3),
        rng.gen_range(0.5..1.0),
        rng.gen_range(-0.05..0.05),
    );
    let dipole = loop {
        let v = Vec3::new(
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
        );
        if let Some(u) = v.normalized() {
            break u;
        }
    };
    (pos, dipole)
}

#[test]
fn jones_matches_scalar_on_every_broadside_rig() {
    let master = 20_260_808u64;
    for rig_idx in 0..12u64 {
        let seed = derive_seed_indexed(master, "equiv-rig", rig_idx);
        let mut rng = rng_from_seed(seed);
        let with_bystander = rig_idx % 3 == 2;
        let scalar = sampled_rig(&mut rng, with_bystander);
        let mut jones = scalar.clone();
        jones.polarimetry = Polarimetry::Jones;

        for sample in 0..40 {
            let (pos, dipole) = sampled_pose(&mut rng);
            let t = rng.gen_range(0.0..5.0);
            for port in 0..scalar.antenna_count() {
                let s = scalar.evaluate(port, pos, dipole, t);
                let j = jones.evaluate(port, pos, dipole, t);
                let ctx = format!(
                    "rig {rig_idx}, sample {sample}, port {port}, \
                     bystander={with_bystander}, pos={pos:?}"
                );
                assert_db_close(s.rx_power_dbm, j.rx_power_dbm, "rx_power_dbm", &ctx);
                assert_db_close(s.forward_power_dbm, j.forward_power_dbm, "forward_power_dbm", &ctx);
                assert_eq!(s.tag_powered, j.tag_powered, "power gate flipped ({ctx})");
                if s.rx_power_dbm.is_finite() {
                    assert!(
                        (s.phase_rad - j.phase_rad).abs() <= TOL,
                        "phase diverged: {} vs {} ({ctx})",
                        s.phase_rad,
                        j.phase_rad
                    );
                }
            }
        }
    }
}

#[test]
fn letter_trail_parity_between_scalar_and_jones() {
    // The end-to-end form of the reduction: `repro --channel jones`
    // must reproduce the committed scalar artifacts bit-for-bit on the
    // stock rig. Full fidelity, no cell coarsening.
    let scalar = run_trial(&TrialSetup::letter('L'), 42);
    let jones = run_trial(&TrialSetup::letter('L').with_channel(ChannelMode::Jones), 42);
    assert_eq!(scalar.reports, jones.reports, "report streams must be bit-identical");
    assert_eq!(scalar.trail.points, jones.trail.points);
    assert_eq!(scalar.trail.times, jones.trail.times);
}

#[test]
fn jones_channel_is_not_a_no_op() {
    // Guard against a vacuous equivalence: under a reader-polarization
    // override only the Jones path can express, the link must actually
    // change.
    let linear = TrialSetup::letter('L').with_channel(ChannelMode::Jones);
    let circular = linear
        .clone()
        .with_reader_pol(PolState::Circular { right_handed: true });
    let a = rig_for(&linear).evaluate(0, Vec3::new(0.0, 0.72, 0.0), Vec3::Y, 0.0);
    let b = rig_for(&circular).evaluate(0, Vec3::new(0.0, 0.72, 0.0), Vec3::Y, 0.0);
    assert!(
        (a.rx_power_dbm - b.rx_power_dbm).abs() > 0.5,
        "circular override changed nothing: {} vs {}",
        a.rx_power_dbm,
        b.rx_power_dbm
    );
}
