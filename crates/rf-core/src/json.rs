//! A minimal JSON value type, writer, and parser.
//!
//! The workspace is hermetic — no crates.io access — so the handful of
//! places that serialize results (the `repro` harness, the bench
//! harness) and deserialize scenario configs use this module instead of
//! `serde_json`. It supports exactly the JSON the workspace emits:
//! objects, arrays, strings, finite numbers, booleans, and null.
//!
//! Number fidelity: values are written with Rust's shortest round-trip
//! `f64` formatting, so `parse(write(x)) == x` bit-for-bit for every
//! finite `f64` including `-0.0` and extreme exponents. Non-finite
//! numbers have no JSON representation and are written as `null`
//! (matching `serde_json`'s lossy default).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (always carried as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap) so output is canonical —
    /// the same value always serializes to the same bytes.
    Obj(BTreeMap<String, Json>),
}

/// A parse error: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj<I, K>(pairs: I) -> Json
    where
        I: IntoIterator<Item = (K, Json)>,
        K: Into<String>,
    {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array by mapping `f` over `items`.
    pub fn arr<T, I, F>(items: I, f: F) -> Json
    where
        I: IntoIterator<Item = T>,
        F: Fn(T) -> Json,
    {
        Json::Arr(items.into_iter().map(f).collect())
    }

    /// A string value.
    pub fn str<S: Into<String>>(s: S) -> Json {
        Json::Str(s.into())
    }

    /// A number value.
    pub fn num(x: f64) -> Json {
        Json::Num(x)
    }

    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Fetch a required numeric field from an object.
    pub fn req_f64(&self, key: &str) -> Result<f64, JsonError> {
        self.get(key).and_then(Json::as_f64).ok_or_else(|| JsonError {
            message: format!("missing or non-numeric field `{key}`"),
            offset: 0,
        })
    }

    /// Serialize to a compact JSON string.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write_to(&mut out);
        out
    }

    fn write_to(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(*x, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_to(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_to(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. The whole input must be one value (plus
    /// surrounding whitespace).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

fn write_number(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's `{}` for f64 is the shortest string that parses back to the
    // same bits — ideal for fidelity. It writes `-0` for negative zero
    // and never produces a leading `.` or `+`, so it is always valid
    // JSON except for the exponent-free rendering of huge values, which
    // is also valid JSON (just long).
    let _ = write!(out, "{x}");
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Containers may nest at most this deep. The parser recurses once per
/// `[`/`{` level, so hostile input like `[[[[…` would otherwise turn a
/// parse call into a stack overflow (an abort, not a catchable error).
/// 128 levels is far beyond any document this workspace writes — the
/// checkpoint format nests 5 deep — while keeping worst-case stack use
/// a few tens of kilobytes.
const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), offset: self.pos }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.nested(Parser::array),
            Some(b'{') => self.nested(Parser::object),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    /// Run one container parse a level deeper, bounding total recursion.
    fn nested(
        &mut self,
        f: fn(&mut Parser<'a>) -> Result<Json, JsonError>,
    ) -> Result<Json, JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        let out = f(self);
        self.depth -= 1;
        out
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the plain (unescaped, ASCII-or-UTF-8) run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with a low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid code point"))?);
                            // hex4 advanced pos already; skip the +1 below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { message: format!("invalid number `{text}`"), offset: start })
    }
}

/// Types that can serialize themselves to a [`Json`] value.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Types that can reconstruct themselves from a [`Json`] value.
pub trait FromJson: Sized {
    /// Parse `self` out of a JSON value.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<f64, JsonError> {
        v.as_f64().ok_or_else(|| JsonError { message: "expected number".into(), offset: 0 })
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(x) => x.to_json(),
            None => Json::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Json) -> Json {
        Json::parse(&v.to_json_string()).expect("self-written JSON must parse")
    }

    #[test]
    fn nesting_depth_is_bounded() {
        // Inside the limit: parses fine (round-trips, even).
        let deep_ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(Json::parse(&deep_ok).is_ok());

        // One level past the limit: a typed error, not a stack overflow.
        let over = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        let err = Json::parse(&over).unwrap_err();
        assert!(err.message.contains("nesting"), "got: {err}");

        // Hostile depth (would overflow the stack without the limit);
        // mixed container kinds both count toward the same budget.
        let hostile = "[{\"k\":".repeat(50_000) + "null" + &"}]".repeat(50_000);
        let err = Json::parse(&hostile).unwrap_err();
        assert!(err.message.contains("nesting"), "got: {err}");

        // Siblings at the same level do not consume depth budget.
        let wide = format!("[{}]", vec!["[1]"; 10_000].join(","));
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn scalars_round_trip() {
        for v in [Json::Null, Json::Bool(true), Json::Bool(false), Json::Num(3.5)] {
            assert_eq!(round_trip(&v), v);
        }
    }

    #[test]
    fn f64_fidelity_including_negative_zero_and_extremes() {
        for x in [
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::MIN,
            5e-324, // smallest subnormal
            1e300,
            -2.2250738585072014e-308,
            std::f64::consts::PI,
            6.02214076e23,
        ] {
            let back = round_trip(&Json::Num(x));
            let y = back.as_f64().unwrap();
            assert_eq!(y.to_bits(), x.to_bits(), "fidelity lost for {x:e}: got {y:e}");
        }
    }

    #[test]
    fn non_finite_numbers_write_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_json_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_json_string(), "null");
        assert_eq!(Json::Num(f64::NEG_INFINITY).to_json_string(), "null");
    }

    #[test]
    fn strings_escape_and_round_trip() {
        for s in [
            "",
            "plain",
            "with \"quotes\" and \\backslash\\",
            "line\nbreak\ttab\rreturn",
            "control \u{1} char",
            "unicode: λ/2 ≈ 16 cm, 完全",
            "emoji \u{1F600} pair",
        ] {
            let v = Json::str(s);
            assert_eq!(round_trip(&v), v, "string {s:?}");
        }
    }

    #[test]
    fn parses_foreign_escapes() {
        let v = Json::parse(r#""aAé😀\/b\f\b""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "aAé😀/b\u{c}\u{8}");
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj([
            ("id", Json::str("fig13")),
            ("accuracy", Json::Num(0.914)),
            (
                "rows",
                Json::Arr(vec![
                    Json::Arr(vec![Json::str("A"), Json::Num(-0.0)]),
                    Json::Arr(vec![Json::str("B"), Json::Num(1e300)]),
                ]),
            ),
            ("nested", Json::obj([("deep", Json::obj([("x", Json::Null)]))])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::obj(Vec::<(&str, Json)>::new())),
        ]);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn canonical_output_is_stable() {
        let a = Json::obj([("b", Json::Num(2.0)), ("a", Json::Num(1.0))]);
        let b = Json::obj([("a", Json::Num(1.0)), ("b", Json::Num(2.0))]);
        assert_eq!(a.to_json_string(), b.to_json_string());
        assert_eq!(a.to_json_string(), r#"{"a":1,"b":2}"#);
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Json::parse(" \n\t{ \"k\" : [ 1 , 2.5e1 , -3 ] }\r\n").unwrap();
        assert_eq!(
            v.get("k").unwrap().as_arr().unwrap(),
            &[Json::Num(1.0), Json::Num(25.0), Json::Num(-3.0)]
        );
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{'single':1}",
            "[1] trailing",
            "\"bad \\x escape\"",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn accessors_behave() {
        let v = Json::parse(r#"{"x": 2.5, "s": "hi", "b": true, "a": [null]}"#).unwrap();
        assert_eq!(v.req_f64("x").unwrap(), 2.5);
        assert!(v.req_f64("s").is_err());
        assert!(v.req_f64("missing").is_err());
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(v.get("a").unwrap().as_f64(), None);
    }
}
