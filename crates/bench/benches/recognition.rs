//! Recognizer benchmarks: Procrustes alignment, DTW, and full
//! alphabet classification — plus the ablation comparing the whitened
//! Procrustes matcher against plain similarity normalization.

use criterion::{criterion_group, criterion_main, Criterion};
use pen_sim::{Scene, WriterProfile};
use recognition::dtw::dtw_distance;
use recognition::procrustes::align;
use recognition::resample::{prepare, prepare_whitened};
use recognition::LetterRecognizer;
use std::hint::black_box;

fn trajectory(ch: char) -> Vec<rf_core::Vec2> {
    pen_sim::scene::write_text(&Scene::default(), &WriterProfile::natural(), &ch.to_string(), 3)
        .truth
        .points
}

fn bench_procrustes(c: &mut Criterion) {
    let a = prepare(&trajectory('W'), 64).unwrap();
    let b = prepare(&trajectory('M'), 64).unwrap();
    c.bench_function("recognition/procrustes_align_64pt", |bch| {
        bch.iter(|| black_box(align(black_box(&a), black_box(&b), 0.35)))
    });
}

fn bench_dtw(c: &mut Criterion) {
    let a = prepare(&trajectory('S'), 64).unwrap();
    let b = prepare(&trajectory('Z'), 64).unwrap();
    c.bench_function("recognition/dtw_64pt_band12", |bch| {
        bch.iter(|| black_box(dtw_distance(black_box(&a), black_box(&b), 12)))
    });
}

fn bench_preparation_ablation(c: &mut Criterion) {
    let raw = trajectory('Q');
    let mut group = c.benchmark_group("recognition/preparation");
    group.bench_function("similarity_normalized", |b| {
        b.iter(|| black_box(prepare(black_box(&raw), 64)))
    });
    group.bench_function("whitened", |b| {
        b.iter(|| black_box(prepare_whitened(black_box(&raw), 64)))
    });
    group.finish();
}

fn bench_classify(c: &mut Criterion) {
    let rec = LetterRecognizer::new();
    let traj = trajectory('G');
    c.bench_function("recognition/classify_against_26_templates", |b| {
        b.iter(|| black_box(rec.classify(black_box(&traj))))
    });
}

criterion_group!(benches, bench_procrustes, bench_dtw, bench_preparation_ablation, bench_classify);
criterion_main!(benches);
