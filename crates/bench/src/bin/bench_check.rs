//! Gate on a bench report: parse it, compare against a committed
//! baseline, and enforce the optimized-vs-reference speedup floor.
//!
//! ```text
//! bench_check <report.json> [--baseline BASE.json] [--max-regression X]
//!             [--min-speedup X] [--opt NAME] [--ref NAME]
//!             [--max-median NAME=NS]...
//! ```
//!
//! * With no flags: the report must parse as an `experiments::Report`
//!   and every row's `median_ns` must be a positive finite number.
//! * `--baseline` + `--max-regression X`: for every bench name present
//!   in both reports, `current_median / baseline_median` must stay
//!   ≤ X (default 1.5 when `--baseline` is given without a limit).
//! * `--min-speedup X`: `median(--ref) / median(--opt)` must be ≥ X.
//!   Defaults compare the paper-fidelity headline pair
//!   `decode/ref/cell2.5mm/beam2500/steps100` vs
//!   `decode/opt/cell2.5mm/beam2500/steps100`.
//! * `--max-median NAME=NS` (repeatable): bench `NAME` must be present
//!   and its median must stay ≤ `NS` nanoseconds — an absolute latency
//!   ceiling rather than a relative one (used to gate the online
//!   per-window decode step against the real-time window period).
//!
//! Exits 0 when every requested check passes, 1 otherwise, 2 on usage
//! errors — so `scripts/verify.sh --quick-bench` and `scripts/bench.sh`
//! can gate on it.

use experiments::Report;
use rf_core::json::FromJson as _;
use rf_core::Json;
use std::collections::HashMap;

const DEFAULT_OPT: &str = "decode/opt/cell2.5mm/beam2500/steps100";
const DEFAULT_REF: &str = "decode/ref/cell2.5mm/beam2500/steps100";

fn usage() -> ! {
    eprintln!(
        "usage: bench_check <report.json> [--baseline BASE.json] [--max-regression X] \
         [--min-speedup X] [--opt NAME] [--ref NAME] [--max-median NAME=NS]..."
    );
    std::process::exit(2);
}

fn load_report(path: &str) -> Report {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let json = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench_check: {path} is not valid JSON: {e}");
            std::process::exit(1);
        }
    };
    match Report::from_json(&json) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_check: {path} is not a Report: {e}");
            std::process::exit(1);
        }
    }
}

/// Extract `bench name → median_ns` from a bench-suite report.
fn medians(report: &Report, path: &str) -> HashMap<String, f64> {
    let name_col = report.headers.iter().position(|h| h == "bench");
    let median_col = report.headers.iter().position(|h| h == "median_ns");
    let (Some(nc), Some(mc)) = (name_col, median_col) else {
        eprintln!(
            "bench_check: {path} lacks bench/median_ns columns (headers: {:?})",
            report.headers
        );
        std::process::exit(1);
    };
    let mut out = HashMap::new();
    for (i, row) in report.rows.iter().enumerate() {
        let name = match row.get(nc) {
            Some(n) => n.clone(),
            None => {
                eprintln!("bench_check: {path} row {i} is short");
                std::process::exit(1);
            }
        };
        let median: f64 = match row.get(mc).and_then(|v| v.parse().ok()) {
            Some(m) => m,
            None => {
                eprintln!("bench_check: {path} row {i} ({name}) has unparsable median");
                std::process::exit(1);
            }
        };
        if !(median.is_finite() && median > 0.0) {
            eprintln!("bench_check: {path} row {i} ({name}) has non-positive median {median}");
            std::process::exit(1);
        }
        out.insert(name, median);
    }
    out
}

fn main() {
    let mut report_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut max_regression: Option<f64> = None;
    let mut min_speedup: Option<f64> = None;
    let mut opt_name = DEFAULT_OPT.to_string();
    let mut ref_name = DEFAULT_REF.to_string();
    let mut max_medians: Vec<(String, f64)> = Vec::new();

    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |flag: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("bench_check: {flag} requires a value");
                usage()
            })
        };
        match a.as_str() {
            "--baseline" => baseline_path = Some(val("--baseline")),
            "--max-regression" => {
                max_regression = Some(val("--max-regression").parse().unwrap_or_else(|_| usage()))
            }
            "--min-speedup" => {
                min_speedup = Some(val("--min-speedup").parse().unwrap_or_else(|_| usage()))
            }
            "--opt" => opt_name = val("--opt"),
            "--ref" => ref_name = val("--ref"),
            "--max-median" => {
                let spec = val("--max-median");
                let Some((name, ns)) = spec.split_once('=') else { usage() };
                let ns: f64 = ns.parse().unwrap_or_else(|_| usage());
                max_medians.push((name.to_string(), ns));
            }
            "--help" | "-h" => usage(),
            p if !p.starts_with('-') && report_path.is_none() => report_path = Some(p.to_string()),
            _ => usage(),
        }
    }
    let Some(report_path) = report_path else { usage() };

    let report = load_report(&report_path);
    let current = medians(&report, &report_path);
    if current.is_empty() {
        eprintln!("bench_check: {report_path} has no bench rows");
        std::process::exit(1);
    }
    println!("bench_check: {report_path} parses; {} bench rows OK", current.len());
    let mut failed = false;

    if let Some(base_path) = baseline_path {
        let limit = max_regression.unwrap_or(1.5);
        let base = medians(&load_report(&base_path), &base_path);
        let mut compared = 0usize;
        let mut names: Vec<&String> = current.keys().filter(|n| base.contains_key(*n)).collect();
        names.sort();
        for name in names {
            let ratio = current[name] / base[name];
            compared += 1;
            if ratio > limit {
                eprintln!(
                    "bench_check: REGRESSION {name}: {:.1} ns vs baseline {:.1} ns \
                     ({ratio:.2}x > {limit}x)",
                    current[name], base[name]
                );
                failed = true;
            } else {
                println!("bench_check: {name}: {ratio:.2}x of baseline (limit {limit}x)");
            }
        }
        if compared == 0 {
            eprintln!("bench_check: no bench names shared with baseline {base_path}");
            failed = true;
        }
    }

    for (name, ceiling_ns) in &max_medians {
        match current.get(name) {
            Some(&m) if m <= *ceiling_ns => {
                println!("bench_check: {name}: {m:.1} ns ≤ ceiling {ceiling_ns:.1} ns");
            }
            Some(&m) => {
                eprintln!(
                    "bench_check: CEILING {name}: {m:.1} ns > allowed {ceiling_ns:.1} ns"
                );
                failed = true;
            }
            None => {
                eprintln!("bench_check: report lacks {name} (required by --max-median)");
                failed = true;
            }
        }
    }

    if let Some(floor) = min_speedup {
        match (current.get(&ref_name), current.get(&opt_name)) {
            (Some(&r), Some(&o)) => {
                let speedup = r / o;
                if speedup < floor {
                    eprintln!(
                        "bench_check: SPEEDUP {speedup:.2}x < required {floor}x \
                         ({ref_name} {r:.1} ns vs {opt_name} {o:.1} ns)"
                    );
                    failed = true;
                } else {
                    println!(
                        "bench_check: speedup {speedup:.2}x (≥ {floor}x): \
                         {ref_name} {r:.1} ns vs {opt_name} {o:.1} ns"
                    );
                }
            }
            _ => {
                eprintln!("bench_check: report lacks {ref_name} and/or {opt_name}");
                failed = true;
            }
        }
    }

    std::process::exit(if failed { 1 } else { 0 });
}
