//! Multi-session serving throughput: the `ServePool` drain matrix
//! (sessions × threads), steady-state contended step latency, and the
//! first-session cold-start (emission-table build) before/after
//! row-parallelization.
//!
//! Three row families, all at paper fidelity (2.5 mm cells, the
//! default rig):
//!
//! * `serve/drain/sessions{S}/threads{T}` — one iteration is a full
//!   session lifecycle: a fresh pool, S sessions on one rig fed
//!   simulated letter streams (150 reports each) in interleaved
//!   chunks, drained to completion, finalized. The committed
//!   `BENCH_throughput.json` carries the aggregate reports/sec derived
//!   from these medians in its notes; `scripts/bench.sh` gates
//!   `sessions8/threads1` vs `sessions8/threads8` with a
//!   core-count-aware floor (this is honest wall-clock — on a 1-core
//!   host the pool cannot beat sequential, and the gate only requires
//!   it not collapse).
//! * `serve/step/sessions8/threads8` — the contended regime: a
//!   long-lived pool with 8 sessions; one iteration enqueues one
//!   pre-processing window's worth of stream (5 reports at the 50 ms
//!   window, 10 ms report spacing) to EVERY session and drains, so the
//!   drain performs ~8 fixed-lag decode steps. `scripts/bench.sh`
//!   gates the median at 80 ms = 8 × the single-session 10 ms step
//!   guarantee `scripts/verify.sh --quick-bench` enforces — under full
//!   8-session contention no session falls behind its reader.
//! * `serve/coldstart/emission_*` — the shared-artifact build a
//!   fleet's FIRST session pays (everyone after gets the cached
//!   `Arc`): the ~33k-cell paper-fidelity emission table, sequential
//!   vs `EmissionTable::build_parallel` at 2 and 8 threads.

use experiments::setup::{polardraw_config_for, simulate_reports, TrialSetup};
use polardraw_bench::harness::Bench;
use polardraw_core::hmm::{EmissionTable, Grid};
use polardraw_core::serve::ServePool;
use polardraw_core::{OnlineOptions, PolarDrawConfig};
use rf_core::rng::derive_seed_indexed;
use rfid_sim::TagReport;

/// Reports per session in the drain matrix (~1.5 s of stream, ~28
/// closed pre-processing windows per session).
const STREAM_CAP: usize = 150;

/// The drain-matrix workload: `n` letter streams on one shared rig
/// (the board depends only on the letter count, so every single-letter
/// setup resolves the same `PolarDrawConfig`), truncated to
/// [`STREAM_CAP`] reports.
fn fleet_streams(n: usize) -> Vec<Vec<TagReport>> {
    let letters = ['L', 'S', 'W', 'Z'];
    (0..n)
        .map(|i| {
            let setup = TrialSetup::letter(letters[i % letters.len()]);
            let seed = derive_seed_indexed(0x7B06, "throughput.pen", i as u64);
            let mut reports = simulate_reports(&setup, seed).1;
            reports.truncate(STREAM_CAP);
            reports
        })
        .collect()
}

/// One full serving lifecycle: fresh pool, enqueue in interleaved
/// chunks (so drains wake several sessions per round), drain to
/// completion, finalize. Returns total reports processed.
fn drain_once(cfg: PolarDrawConfig, streams: &[Vec<TagReport>], threads: usize) -> usize {
    let mut pool = ServePool::new(threads);
    let ids: Vec<_> = (0..streams.len())
        .map(|_| pool.add_session(cfg, OnlineOptions::default()))
        .collect();
    let chunk = 32;
    let longest = streams.iter().map(|s| s.len()).max().unwrap_or(0);
    let mut at = 0;
    while at < longest {
        for (i, reports) in streams.iter().enumerate() {
            let lo = at.min(reports.len());
            let hi = (at + chunk).min(reports.len());
            pool.enqueue_batch(ids[i], &reports[lo..hi]);
        }
        pool.drain();
        at += chunk;
    }
    let processed = pool.stats().reports;
    drop(pool.finish());
    processed
}

/// An endless synthetic stream for the steady-state contended row:
/// alternating antennas, slowly advancing phase, 10 ms report spacing
/// (5 reports per 50 ms pre-processing window).
fn synthetic_report(i: usize) -> TagReport {
    TagReport {
        t: i as f64 * 0.01,
        antenna: i % 2,
        rssi_dbm: -55.0,
        phase_rad: rf_core::wrap_tau(0.02 * i as f64),
        channel: 0,
        epc: 0xB00C,
    }
}

fn main() {
    let mut bench = Bench::from_args("throughput");
    let cfg = polardraw_config_for(&TrialSetup::letter('L'));
    let nproc = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // Drain matrix: sessions × threads, full lifecycle per iteration.
    const MATRIX_SESSIONS: [usize; 2] = [1, 8];
    const MATRIX_THREADS: [usize; 3] = [1, 2, 8];
    for &s in &MATRIX_SESSIONS {
        let streams = fleet_streams(s);
        for &t in &MATRIX_THREADS {
            bench.bench(&format!("serve/drain/sessions{s}/threads{t}"), || {
                drain_once(cfg, &streams, t)
            });
        }
    }

    // Contended steady state: 8 long-lived sessions, one window of
    // stream to every session per iteration, drained at 8 threads.
    {
        let mut pool = ServePool::new(8);
        let ids: Vec<_> =
            (0..8).map(|_| pool.add_session(cfg, OnlineOptions::default())).collect();
        let mut window = 0usize;
        bench.bench("serve/step/sessions8/threads8", || {
            for &id in &ids {
                for k in 0..5 {
                    pool.enqueue(id, synthetic_report(window * 5 + k));
                }
            }
            window += 1;
            pool.drain().reports
        });
    }

    // Cold start: the emission-table build the fleet's first session
    // pays; every later session on the rig shares the cached Arc.
    let grid = Grid::covering(cfg.board_min, cfg.board_max, cfg.hmm.cell_m);
    bench.bench("serve/coldstart/emission_seq", || {
        EmissionTable::build(&grid, cfg.antennas, cfg.hmm.wavelength_m)
    });
    for threads in [2usize, 8] {
        bench.bench(&format!("serve/coldstart/emission_par{threads}"), || {
            EmissionTable::build_parallel(&grid, cfg.antennas, cfg.hmm.wavelength_m, threads)
        });
    }

    // Derived numbers the raw rows can't carry: aggregate reports/sec
    // per matrix cell, per-session step latency in the contended
    // regime, and the cold-start ratio.
    let measured: Vec<(String, f64, f64)> =
        bench.stats().iter().map(|s| (s.name.clone(), s.median_ns, s.p90_ns)).collect();
    let median = |name: &str| {
        measured.iter().find(|(n, _, _)| n == name).map(|&(_, med, p90)| (med, p90))
    };
    let mut throughput_lines = Vec::new();
    for &s in &MATRIX_SESSIONS {
        for &t in &MATRIX_THREADS {
            if let Some((med, _)) = median(&format!("serve/drain/sessions{s}/threads{t}")) {
                let reports = (s * STREAM_CAP) as f64;
                throughput_lines
                    .push(format!("{s}x{t}: {:.0} reports/s", reports / (med * 1e-9)));
            }
        }
    }
    if !throughput_lines.is_empty() {
        bench.note(format!(
            "aggregate drain throughput (sessions x threads, {} reports/session, \
             paper-fidelity 2.5 mm grid): {}",
            STREAM_CAP,
            throughput_lines.join(", ")
        ));
    }
    if let Some((med, p90)) = median("serve/step/sessions8/threads8") {
        bench.note(format!(
            "contended per-session step: one drain advances 8 sessions one window each; \
             median {:.2} ms ({:.2} ms/session), p90 {:.2} ms ({:.2} ms/session) — \
             gated at 80 ms total = 8 x the 10 ms single-session guarantee",
            med / 1e6,
            med / 8e6,
            p90 / 1e6,
            p90 / 8e6,
        ));
    }
    if let (Some((seq, _)), Some((p2, _)), Some((p8, _))) = (
        median("serve/coldstart/emission_seq"),
        median("serve/coldstart/emission_par2"),
        median("serve/coldstart/emission_par8"),
    ) {
        bench.note(format!(
            "first-session cold start ({} cells): sequential build {:.2} ms; \
             row-parallel {:.2} ms @2 threads ({:.2}x), {:.2} ms @8 threads ({:.2}x); \
             later sessions on the rig skip this entirely via the shared-Arc cache",
            grid.len(),
            seq / 1e6,
            p2 / 1e6,
            seq / p2,
            p8 / 1e6,
            seq / p8,
        ));
    }
    bench.note(format!(
        "measurement host has {nproc} hardware thread(s); thread-count rows are honest \
         wall-clock — parallel speedup requires real cores, so on a 1-core host every \
         threads{{T}} column is expected ~1x of threads1 (the scripts/bench.sh scaling \
         gate scales its floor with the core count)"
    ));
    bench.finish();
}
