//! A live supervised tracking session over a fault-injected reader
//! stream — the streaming counterpart of `examples/robustness.rs`.
//!
//! The pipeline here is the production shape: a simulated LLRP reader
//! connection ([`SimulatedLink`]) carrying a flaky-office stream with a
//! hard mid-glyph outage and occasional wire garbage, supervised by a
//! [`SessionSupervisor`] (watchdog, reconnect backoff, dead-port
//! detection), feeding an [`OnlineTracker`] that commits trail points
//! behind a fixed decision lag. Mid-session the process "dies" — and
//! worse, the newest checkpoint generation in the durability store has
//! rotted on disk. [`CheckpointStore::recover`] rejects it with a
//! typed checksum error, walks back to the previous good generation,
//! and the session replays the gap from the reader link: kill and
//! recover, losing nothing.
//!
//! ```sh
//! cargo run --release --example live_session
//! ```

use experiments::setup::{polardraw_config_for, simulate_reports, TrialSetup};
use polardraw_core::durability::{open_checkpoint, CheckpointStore};
use polardraw_core::{OnlineOptions, OnlineTracker};
use recognition::procrustes_distance;
use rfid_sim::faults::FaultPlan;
use rfid_sim::session::{SessionConfig, SessionEvent, SessionSupervisor, SimulatedLink};

fn main() {
    // A pen writing the letter "W" in a flaky office: Gilbert–Elliott
    // burst dropouts, duplicated and reordered reads, clock jitter.
    let mut setup = TrialSetup::letter('W');
    setup.faults = Some(FaultPlan::flaky_office());
    let seed = 42;
    let (truth, reports) = simulate_reports(&setup, seed);
    let cfg = polardraw_config_for(&setup);
    let t_hi = reports.iter().map(|r| r.t).fold(f64::NEG_INFINITY, f64::max);
    let t_mid = 0.5 * t_hi;

    println!("stream: {} reports over {:.1} s of writing", reports.len(), t_hi);
    println!("faults: flaky office + link outage [{:.1}, {:.1}] s + wire garbage\n", t_mid, t_mid + 0.4);

    // The reader link: frames every 50 ms, a 0.4 s TCP drop mid-glyph,
    // and an undecodable garbage frame before every 6th real one.
    let link = SimulatedLink::from_reports(&reports, 0.05)
        .with_outage(t_mid, t_mid + 0.4)
        .with_garbage_every(6);
    let session_cfg = SessionConfig { seed, ..SessionConfig::default() };

    // The durability store: checksummed checkpoint.v2 envelopes, last
    // 3 generations retained. In-memory here; a real deployment plugs
    // any `rf_core::store::BlobStore` into `CheckpointStore::new`.
    let mut store = CheckpointStore::in_memory(3);
    let session_id = 7u64;

    // ---- First leg: supervise, sealing a generation mid-glyph. ----
    let mut sup = SessionSupervisor::new(session_cfg, link.clone());
    let mut tracker = OnlineTracker::new(cfg, OnlineOptions { lag: 64, hold: 2, ..OnlineOptions::default() });
    let t_ckpt = 0.4 * t_hi;
    let t_kill = 0.65 * t_hi;
    sup.run(&mut tracker, 0.0, t_ckpt);
    let gen1 = store.save(session_id, &tracker);
    println!(
        "first leg  [0.0, {t_ckpt:.1}] s: {} reports delivered, {} committed points; sealed generation {gen1}",
        sup.stats().reports_delivered,
        tracker.committed().len(),
    );

    // Continue to the kill point and seal a second generation.
    let link_mid = link.clone().resume_after(sup.link());
    let mut sup_mid = SessionSupervisor::new(session_cfg, link_mid);
    sup_mid.run(&mut tracker, t_ckpt, t_kill);
    let gen2 = store.save(session_id, &tracker);
    println!(
        "           [{t_ckpt:.1}, {t_kill:.1}] s: {} more reports, {} committed points; sealed generation {gen2}",
        sup_mid.stats().reports_delivered,
        tracker.committed().len(),
    );

    // ---- The crash, with insult added to injury: the process dies
    // AND the newest generation rots on disk (one flipped byte).
    drop(tracker);
    let mut rotten = store.read(session_id, gen2).expect("committed");
    // Nudge one digit somewhere in the middle: the document stays
    // well-formed JSON, so only the envelope CRC can tell.
    let mid = rotten.len() / 2;
    let digit = (mid..).find(|&i| rotten[i].is_ascii_digit() && rotten[i] != b'9').expect("a digit");
    rotten[digit] += 1;
    store.overwrite(session_id, gen2, &rotten);
    let refused = open_checkpoint(cfg, std::str::from_utf8(&rotten).unwrap_or(""));
    println!("\ncrash: session killed; generation {gen2} corrupted on disk");
    println!("  open_checkpoint(gen {gen2}) -> {}", refused.err().map(|e| e.to_string()).unwrap_or_default());

    // ---- Recover: walk back to the last good generation, then let
    // the reader link replay everything that generation never saw.
    let recovered = store.recover(session_id, cfg).expect("an older generation survives");
    println!(
        "  recover() -> generation {} after {} fallback(s); resuming from {:.1} s\n",
        recovered.generation, recovered.fallbacks, t_ckpt,
    );
    let mut tracker = recovered.tracker;
    let link_b = link.clone().resume_after(sup.link());
    let mut sup_b = SessionSupervisor::new(session_cfg, link_b);
    sup_b.run(&mut tracker, t_ckpt, t_hi + 2.0);
    println!(
        "second leg [{t_ckpt:.1}, end] s: {} reports delivered, {} committed points",
        sup_b.stats().reports_delivered,
        tracker.committed().len(),
    );

    // What the supervisors saw, in order.
    println!("\nsession events:");
    for (leg, events) in [("A", sup.events()), ("A'", sup_mid.events()), ("B", sup_b.events())] {
        for e in events {
            match e {
                SessionEvent::Connected { t } => println!("  [{leg}] {t:6.2} s  connected"),
                SessionEvent::WatchdogStall { t, silent_for_s } => {
                    println!("  [{leg}] {t:6.2} s  watchdog: silent for {silent_for_s:.2} s")
                }
                SessionEvent::Disconnected { t } => println!("  [{leg}] {t:6.2} s  link dropped"),
                SessionEvent::Reconnected { t, attempts } => {
                    println!("  [{leg}] {t:6.2} s  reconnected after {attempts} attempt(s)")
                }
                SessionEvent::GaveUp { t, attempts } => {
                    println!("  [{leg}] {t:6.2} s  gave up after {attempts} attempts")
                }
                SessionEvent::PortDead { t, antenna } => {
                    println!("  [{leg}] {t:6.2} s  antenna port {antenna} dead → degraded mode")
                }
                SessionEvent::PortRecovered { t, antenna } => {
                    println!("  [{leg}] {t:6.2} s  antenna port {antenna} recovered")
                }
                // Reconnect attempts and per-frame garbage are chatty;
                // they are summarized by the stats below.
                SessionEvent::ReconnectAttempt { .. } | SessionEvent::BadFrame { .. } => {}
                SessionEvent::PanicIsolated { context } => {
                    println!("  [{leg}]          sink panic isolated: {context}")
                }
            }
        }
    }
    println!(
        "  bad wire frames rejected: {} (leg A) + {} (leg A') + {} (leg B)",
        sup.stats().bad_frames,
        sup_mid.stats().bad_frames,
        sup_b.stats().bad_frames,
    );

    // Finalize: global rotation correction + smoothing over the full
    // trail, with the degradation census the whole way through.
    let out = tracker.finalize();
    println!("\ntrail: {} points ({} decoder steps)", out.trail.len(), out.steps.len());
    let d = &out.degradation;
    println!("degradation report:");
    println!("  input reports        {}", d.input_reports);
    println!("  duplicates removed   {}", d.duplicates_removed);
    println!("  spurious rejected    {}", d.spurious_rejected);
    println!("  empty windows        {} of {}", d.empty_windows, d.windows);
    println!("  single-antenna       {}", d.single_antenna_windows);
    println!("  gaps bridged         {} (largest {:.2} s)", d.gaps_bridged, d.largest_gap_bridged_s);
    if let Some(err) = procrustes_distance(&truth, &out.trail.points, 64) {
        println!("\nProcrustes error vs ground truth: {:.1} cm", 100.0 * err);
    }
}
