//! Stroke templates for the uppercase alphabet.
//!
//! Each glyph is a list of strokes; each stroke a polyline on the unit
//! box with X rightward in `[0, 1]` and Y *downward* in `[0, 1]` (top of
//! the letter at y = 0), matching the paper's plotting convention.
//!
//! These templates serve double duty: `pen-sim` renders them into pen
//! trajectories, and `recognition` uses the same shapes as matching
//! templates — mirroring how LipiTk was trained on the same alphabet the
//! volunteers wrote.

use rf_core::Vec2;

/// A letter shape: one or more polyline strokes on the unit box.
#[derive(Debug, Clone, PartialEq)]
pub struct Glyph {
    /// The character this glyph renders.
    pub ch: char,
    /// Strokes in writing order.
    pub strokes: Vec<Vec<Vec2>>,
}

impl Glyph {
    /// Total polyline length of all strokes (unit-box units).
    pub fn ink_length(&self) -> f64 {
        self.strokes
            .iter()
            .map(|s| s.windows(2).map(|w| w[0].distance(w[1])).sum::<f64>())
            .sum()
    }

    /// Number of strokes.
    pub fn stroke_count(&self) -> usize {
        self.strokes.len()
    }
}

fn pts(raw: &[(f64, f64)]) -> Vec<Vec2> {
    raw.iter().map(|&(x, y)| Vec2::new(x, y)).collect()
}

/// Look up the glyph for a character (case-insensitive; only A–Z).
pub fn glyph(ch: char) -> Option<Glyph> {
    let upper = ch.to_ascii_uppercase();
    let strokes: Vec<Vec<Vec2>> = match upper {
        'A' => vec![
            pts(&[(0.0, 1.0), (0.5, 0.0), (1.0, 1.0)]),
            pts(&[(0.2, 0.62), (0.8, 0.62)]),
        ],
        'B' => vec![
            pts(&[(0.0, 0.0), (0.0, 1.0)]),
            pts(&[
                (0.0, 0.0),
                (0.62, 0.05),
                (0.72, 0.25),
                (0.55, 0.45),
                (0.0, 0.5),
            ]),
            pts(&[(0.0, 0.5), (0.72, 0.58), (0.82, 0.8), (0.6, 0.97), (0.0, 1.0)]),
        ],
        'C' => vec![pts(&[
            (0.9, 0.15),
            (0.62, 0.0),
            (0.25, 0.05),
            (0.0, 0.35),
            (0.0, 0.65),
            (0.25, 0.95),
            (0.62, 1.0),
            (0.9, 0.85),
        ])],
        'D' => vec![
            pts(&[(0.0, 0.0), (0.0, 1.0)]),
            pts(&[(0.0, 0.0), (0.6, 0.06), (0.9, 0.3), (0.9, 0.7), (0.6, 0.94), (0.0, 1.0)]),
        ],
        'E' => vec![
            pts(&[(0.95, 0.0), (0.0, 0.0), (0.0, 1.0), (0.95, 1.0)]),
            pts(&[(0.0, 0.5), (0.7, 0.5)]),
        ],
        'F' => vec![
            pts(&[(0.95, 0.0), (0.0, 0.0), (0.0, 1.0)]),
            pts(&[(0.0, 0.5), (0.7, 0.5)]),
        ],
        'G' => vec![pts(&[
            (0.9, 0.15),
            (0.62, 0.0),
            (0.25, 0.05),
            (0.0, 0.35),
            (0.0, 0.65),
            (0.25, 0.95),
            (0.62, 1.0),
            (0.9, 0.88),
            (0.9, 0.55),
            (0.55, 0.55),
        ])],
        'H' => vec![
            pts(&[(0.0, 0.0), (0.0, 1.0)]),
            pts(&[(1.0, 0.0), (1.0, 1.0)]),
            pts(&[(0.0, 0.5), (1.0, 0.5)]),
        ],
        'I' => vec![pts(&[(0.5, 0.0), (0.5, 1.0)])],
        'J' => vec![pts(&[(0.7, 0.0), (0.7, 0.78), (0.52, 1.0), (0.22, 0.96), (0.1, 0.75)])],
        'K' => vec![
            pts(&[(0.0, 0.0), (0.0, 1.0)]),
            pts(&[(0.9, 0.0), (0.05, 0.55), (0.9, 1.0)]),
        ],
        'L' => vec![pts(&[(0.0, 0.0), (0.0, 1.0), (0.9, 1.0)])],
        'M' => vec![pts(&[(0.0, 1.0), (0.0, 0.0), (0.5, 0.6), (1.0, 0.0), (1.0, 1.0)])],
        'N' => vec![pts(&[(0.0, 1.0), (0.0, 0.0), (1.0, 1.0), (1.0, 0.0)])],
        'O' => vec![pts(&[
            (0.5, 0.0),
            (0.13, 0.13),
            (0.0, 0.5),
            (0.13, 0.87),
            (0.5, 1.0),
            (0.87, 0.87),
            (1.0, 0.5),
            (0.87, 0.13),
            (0.5, 0.0),
        ])],
        'P' => vec![pts(&[
            (0.0, 1.0),
            (0.0, 0.0),
            (0.68, 0.05),
            (0.8, 0.25),
            (0.6, 0.45),
            (0.0, 0.5),
        ])],
        'Q' => vec![
            pts(&[
                (0.5, 0.0),
                (0.13, 0.13),
                (0.0, 0.5),
                (0.13, 0.87),
                (0.5, 1.0),
                (0.87, 0.87),
                (1.0, 0.5),
                (0.87, 0.13),
                (0.5, 0.0),
            ]),
            pts(&[(0.62, 0.7), (1.0, 1.05)]),
        ],
        'R' => vec![
            pts(&[
                (0.0, 1.0),
                (0.0, 0.0),
                (0.68, 0.05),
                (0.8, 0.25),
                (0.6, 0.45),
                (0.0, 0.5),
            ]),
            pts(&[(0.3, 0.5), (0.9, 1.0)]),
        ],
        'S' => vec![pts(&[
            (0.9, 0.12),
            (0.6, 0.0),
            (0.2, 0.05),
            (0.1, 0.25),
            (0.35, 0.45),
            (0.7, 0.55),
            (0.9, 0.75),
            (0.72, 0.95),
            (0.35, 1.0),
            (0.05, 0.88),
        ])],
        'T' => vec![
            pts(&[(0.0, 0.0), (1.0, 0.0)]),
            pts(&[(0.5, 0.0), (0.5, 1.0)]),
        ],
        'U' => vec![pts(&[
            (0.0, 0.0),
            (0.0, 0.68),
            (0.18, 0.94),
            (0.5, 1.0),
            (0.82, 0.94),
            (1.0, 0.68),
            (1.0, 0.0),
        ])],
        'V' => vec![pts(&[(0.0, 0.0), (0.5, 1.0), (1.0, 0.0)])],
        'W' => vec![pts(&[
            (0.0, 0.0),
            (0.25, 1.0),
            (0.5, 0.3),
            (0.75, 1.0),
            (1.0, 0.0),
        ])],
        'X' => vec![
            pts(&[(0.0, 0.0), (1.0, 1.0)]),
            pts(&[(1.0, 0.0), (0.0, 1.0)]),
        ],
        'Y' => vec![
            pts(&[(0.0, 0.0), (0.5, 0.5), (1.0, 0.0)]),
            pts(&[(0.5, 0.5), (0.5, 1.0)]),
        ],
        'Z' => vec![pts(&[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)])],
        _ => return None,
    };
    Some(Glyph { ch: upper, strokes })
}

/// The full supported alphabet, in order.
pub const ALPHABET: [char; 26] = [
    'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'J', 'K', 'L', 'M', 'N', 'O', 'P', 'Q', 'R',
    'S', 'T', 'U', 'V', 'W', 'X', 'Y', 'Z',
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_letters_have_glyphs() {
        for ch in ALPHABET {
            let g = glyph(ch).unwrap_or_else(|| panic!("missing glyph for {ch}"));
            assert_eq!(g.ch, ch);
            assert!(!g.strokes.is_empty());
        }
    }

    #[test]
    fn lowercase_maps_to_uppercase() {
        let lower = glyph('w').unwrap();
        let upper = glyph('W').unwrap();
        assert_eq!(lower.strokes, upper.strokes);
        assert_eq!(lower.ch, 'W');
    }

    #[test]
    fn unsupported_characters_are_none() {
        assert!(glyph('3').is_none());
        assert!(glyph('!').is_none());
        assert!(glyph(' ').is_none());
    }

    #[test]
    fn glyphs_stay_near_the_unit_box() {
        for ch in ALPHABET {
            for stroke in &glyph(ch).unwrap().strokes {
                for p in stroke {
                    assert!((-0.05..=1.1).contains(&p.x), "{ch}: x = {}", p.x);
                    assert!((-0.05..=1.1).contains(&p.y), "{ch}: y = {}", p.y);
                }
            }
        }
    }

    #[test]
    fn every_stroke_has_at_least_two_points() {
        for ch in ALPHABET {
            for stroke in &glyph(ch).unwrap().strokes {
                assert!(stroke.len() >= 2, "{ch} has a degenerate stroke");
            }
        }
    }

    #[test]
    fn ink_length_is_positive_and_sane() {
        for ch in ALPHABET {
            let len = glyph(ch).unwrap().ink_length();
            assert!(len > 0.8, "{ch} too short: {len}");
            assert!(len < 6.0, "{ch} too long: {len}");
        }
    }

    #[test]
    fn single_stroke_letters_match_papers_observation() {
        // §5.2.2: single-stroke characters recognize best. Sanity-check a
        // few stroke counts used in commentary.
        assert_eq!(glyph('I').unwrap().stroke_count(), 1);
        assert_eq!(glyph('O').unwrap().stroke_count(), 1);
        assert_eq!(glyph('H').unwrap().stroke_count(), 3);
    }
}
