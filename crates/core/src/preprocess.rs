//! RFID data pre-processing (§3.1): window averaging and spurious data
//! rejection.
//!
//! The reader delivers an irregular ~100 Hz interleaved stream from both
//! antennas. PolarDraw divides time into fixed windows (50 ms in the
//! paper), averages the RSS and phase readings inside each window per
//! antenna, and then rejects windows whose phase jumps implausibly far
//! from the previous window — the signature of a cross-polarized tag
//! briefly powered through a reflection (§2's "spurious" readings).

use rf_core::angle::{circular_mean, phase_distance};
use rfid_sim::TagReport;

/// One aligned pre-processing window across both antennas.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Windowed {
    /// Window centre time, seconds.
    pub t: f64,
    /// Mean RSS per antenna, dBm (`None`: no reads in the window).
    pub rssi: [Option<f64>; 2],
    /// Circular-mean phase per antenna, radians (`None`: no reads, or
    /// rejected as spurious).
    pub phase: [Option<f64>; 2],
    /// Raw read counts per antenna (diagnostics).
    pub reads: [usize; 2],
}

/// Pre-processing configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreprocessConfig {
    /// Window length, seconds (paper: 50 ms).
    pub window_s: f64,
    /// Reject a window's phase when it differs from the previous valid
    /// window by more than this, radians (paper: 0.2 rad).
    pub spurious_threshold_rad: f64,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig { window_s: 0.05, spurious_threshold_rad: 0.25 }
    }
}

/// Window-average a report stream and reject spurious phases.
///
/// Returns one [`Windowed`] per window from the first to the last
/// report; windows with no reads on either antenna are retained (with
/// `None` entries) so that downstream timing stays uniform.
pub fn preprocess(reports: &[TagReport], config: &PreprocessConfig) -> Vec<Windowed> {
    let (first, last) = match (reports.first(), reports.last()) {
        (Some(f), Some(l)) => (f.t, l.t),
        _ => return Vec::new(),
    };
    assert!(config.window_s > 0.0, "window length must be positive");
    let n_windows = ((last - first) / config.window_s).floor() as usize + 1;
    let mut acc: Vec<[WindowAcc; 2]> = vec![Default::default(); n_windows];
    for r in reports {
        if r.antenna >= 2 {
            continue; // PolarDraw is strictly two-antenna
        }
        let w = (((r.t - first) / config.window_s).floor() as usize).min(n_windows - 1);
        acc[w][r.antenna].push(r.rssi_dbm, r.phase_rad);
    }

    let mut out: Vec<Windowed> = Vec::with_capacity(n_windows);
    for (i, pair) in acc.iter().enumerate() {
        let t = first + (i as f64 + 0.5) * config.window_s;
        let mut w = Windowed { t, ..Default::default() };
        for ant in 0..2 {
            w.reads[ant] = pair[ant].n;
            w.rssi[ant] = pair[ant].mean_rssi();
            w.phase[ant] = pair[ant].mean_phase();
        }
        out.push(w);
    }

    reject_spurious(&mut out, config.spurious_threshold_rad);
    out
}

/// Strike phases that jump more than `threshold` radians from the
/// previous window's phase on the same antenna (§3.1, second step).
///
/// The comparison reference is always the *measured* phase of the
/// previous window — even when that window itself was rejected — exactly
/// as the paper states ("comparing phase readings of adjacent windows").
/// Holding a stale reference instead would cascade: legitimate pen
/// motion drifts the phase away from it and every later window would be
/// rejected. The cost is that an isolated glitch rejects two windows
/// (the glitch and the re-entry jump), after which the stream is back.
fn reject_spurious(windows: &mut [Windowed], threshold: f64) {
    for ant in 0..2 {
        let mut prev_measured: Option<f64> = None;
        for w in windows.iter_mut() {
            if let Some(p) = w.phase[ant] {
                if let Some(prev) = prev_measured {
                    if phase_distance(p, prev) > threshold {
                        w.phase[ant] = None;
                    }
                }
                prev_measured = Some(p);
            }
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct WindowAcc {
    n: usize,
    rssi_sum: f64,
    sin_sum: f64,
    cos_sum: f64,
}

impl WindowAcc {
    fn push(&mut self, rssi: f64, phase: f64) {
        self.n += 1;
        self.rssi_sum += rssi;
        self.sin_sum += phase.sin();
        self.cos_sum += phase.cos();
    }

    fn mean_rssi(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.rssi_sum / self.n as f64)
        }
    }

    fn mean_phase(&self) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        // Circular mean: immune to 0/2π straddling inside a window.
        circular_mean(&[self.sin_sum.atan2(self.cos_sum)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    fn report(t: f64, antenna: usize, rssi: f64, phase: f64) -> TagReport {
        TagReport { t, antenna, rssi_dbm: rssi, phase_rad: phase, channel: 24, epc: 1 }
    }

    #[test]
    fn empty_stream_preprocesses_to_nothing() {
        assert!(preprocess(&[], &PreprocessConfig::default()).is_empty());
    }

    #[test]
    fn averages_within_windows() {
        let reports = vec![
            report(0.00, 0, -40.0, 1.0),
            report(0.01, 0, -42.0, 1.2),
            report(0.02, 1, -50.0, 2.0),
            report(0.06, 0, -44.0, 1.1),
        ];
        let w = preprocess(&reports, &PreprocessConfig::default());
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].rssi[0], Some(-41.0));
        assert_eq!(w[0].reads[0], 2);
        assert_eq!(w[0].rssi[1], Some(-50.0));
        let p = w[0].phase[0].unwrap();
        assert!((p - 1.1).abs() < 1e-6, "circular mean of 1.0, 1.2 is 1.1, got {p}");
        assert_eq!(w[1].rssi[0], Some(-44.0));
        assert_eq!(w[1].rssi[1], None);
    }

    #[test]
    fn circular_mean_straddles_wrap() {
        let reports = vec![
            report(0.00, 0, -40.0, 0.1),
            report(0.01, 0, -40.0, TAU - 0.1),
        ];
        let w = preprocess(&reports, &PreprocessConfig::default());
        let p = w[0].phase[0].unwrap();
        assert!(p < 0.01 || p > TAU - 0.01, "mean of ±0.1 wraps to ~0, got {p}");
    }

    #[test]
    fn spurious_jump_is_rejected_but_stream_recovers() {
        let cfg = PreprocessConfig::default();
        // Window-centre timestamps avoid binary-float boundary flapping.
        let reports = vec![
            report(0.000, 0, -40.0, 1.0),
            report(0.070, 0, -40.0, 1.05),
            report(0.120, 0, -58.0, 3.0), // cross-pol glitch: +1.95 rad
            report(0.170, 0, -40.0, 1.10),
            report(0.220, 0, -40.0, 1.15),
        ];
        let w = preprocess(&reports, &cfg);
        assert_eq!(w.len(), 5);
        assert_eq!(w[2].phase[0], None, "glitch window rejected");
        // The re-entry jump (3.0 → 1.10) is also over threshold, so the
        // window after the glitch is sacrificed too...
        assert_eq!(w[3].phase[0], None, "re-entry window also rejected");
        // ...but the stream is back one window later.
        assert!(w[4].phase[0].is_some(), "stream recovers after the glitch");
        // RSS is never rejected — only phase is screened.
        assert_eq!(w[2].rssi[0], Some(-58.0));
    }

    #[test]
    fn gradual_phase_motion_is_kept() {
        // 0.1 rad per window is a legitimate writing speed; nothing may
        // be rejected.
        let cfg = PreprocessConfig::default();
        let reports: Vec<TagReport> =
            (0..20).map(|i| report(i as f64 * 0.05, 0, -40.0, 1.0 + 0.1 * i as f64)).collect();
        let w = preprocess(&reports, &cfg);
        assert!(w.iter().all(|w| w.phase[0].is_some()));
    }

    #[test]
    fn antennas_are_screened_independently() {
        let cfg = PreprocessConfig::default();
        let reports = vec![
            report(0.00, 0, -40.0, 1.0),
            report(0.00, 1, -40.0, 2.0),
            report(0.07, 0, -40.0, 1.02),
            report(0.07, 1, -40.0, 4.5), // spurious on antenna 1 only
        ];
        let w = preprocess(&reports, &cfg);
        assert!(w[1].phase[0].is_some());
        assert_eq!(w[1].phase[1], None);
    }

    #[test]
    fn reports_from_extra_antennas_are_ignored() {
        let reports = vec![report(0.0, 0, -40.0, 1.0), report(0.0, 2, -30.0, 0.5)];
        let w = preprocess(&reports, &PreprocessConfig::default());
        assert_eq!(w[0].reads, [1, 0]);
    }

    #[test]
    fn window_boundary_wraparound_jump_not_spurious() {
        // A phase sequence crossing 2π→0 moves only slightly on the
        // circle; the circular distance must see through the wrap.
        let cfg = PreprocessConfig::default();
        let reports = vec![
            report(0.00, 0, -40.0, TAU - 0.05),
            report(0.07, 0, -40.0, 0.05),
        ];
        let w = preprocess(&reports, &cfg);
        assert!(w[1].phase[0].is_some(), "wrap crossing is not a spurious jump");
    }
}
