//! Deterministic chaos/soak gates for the self-healing fleet (tier 1,
//! named in scripts/verify.sh).
//!
//! A `rfid_sim::traffic` crowd (diurnal load, churn) is served through
//! a `FleetRouter` with a `CheckpointStore` attached while a derived
//! -seed `rfid_sim::chaos::ChaosPlan` injects faults at drain-round
//! boundaries: shard kills at swept cut points, corruption of the
//! newest committed checkpoint, duplicated recovery, stalled drains.
//! The gates:
//!
//! 1. **No panics** — any panic aborts the suite.
//! 2. **Zero report loss** — every generated report is eventually
//!    admitted exactly once and consumed.
//! 3. **Bitwise recovery** — the design's escrow ledger replays
//!    exactly what the restored generation had not seen, so recovery
//!    is bit-identical to an uncrashed run *even when the kill lands
//!    mid-window* (stronger than the lag-window divergence bound the
//!    durability design promises as its floor). Boundary kills restore
//!    with an empty replay tail; mid-window kills with a non-empty one
//!    — both asserted explicitly.
//! 4. **Corrupt-checkpoint fallback** — rotting the newest generation
//!    before the kill forces the restore walk-back; the failure is
//!    surfaced in `FleetStats::restore_fallbacks` and the output is
//!    *still* bit-identical, never a crash.

use experiments::setup::{polardraw_config_for, TrialSetup};
use polardraw_core::durability::CheckpointStore;
use polardraw_core::fleet::{CheckpointPolicy, FleetConfig, FleetRouter, RecoverReport};
use polardraw_core::{OnlineOptions, PolarDrawConfig, TrackOutput};
use rfid_sim::chaos::{mutate_bytes, ChaosAction, ChaosPlan};
use rfid_sim::traffic::{TrafficConfig, TrafficModel};
use rfid_sim::TagReport;

const ROUND_S: f64 = 10.0;
const ROUNDS: usize = 12;
const SOAK_SEED: u64 = 0xC4A0_5EED;

fn rig() -> PolarDrawConfig {
    polardraw_config_for(&TrialSetup::letter('L').with_cell_scale(8.0))
}

fn crowd() -> TrafficModel {
    TrafficModel::generate(
        TrafficConfig {
            sessions: 6,
            horizon_s: ROUNDS as f64 * ROUND_S,
            diurnal_period_s: 120.0,
            flash_crowds: 1,
            flash_width_s: 20.0,
            report_hz: 8.0,
            ..TrafficConfig::default()
        },
        SOAK_SEED,
    )
}

/// Serve the crowd through a chaos plan and return every trail plus
/// the router stats. Queue cap is effectively unbounded so the
/// degradation controller stays quiet — these gates isolate crash
/// recovery (overload has its own suite in tests/fleet.rs).
fn run_soak(
    plan: &ChaosPlan,
    threads: usize,
    every_drains: usize,
) -> (Vec<(usize, TrackOutput)>, polardraw_core::fleet::FleetStats) {
    let model = crowd();
    let cfg = rig();
    let mut fleet = FleetRouter::new(FleetConfig {
        shards: 2,
        threads_per_shard: threads,
        queue_cap: usize::MAX / 2,
        soft_session_cap: usize::MAX / 2,
        checkpoint: CheckpointPolicy { every_drains, ..CheckpointPolicy::default() },
        ..FleetConfig::default()
    });
    fleet.attach_store(CheckpointStore::in_memory(3));
    let ids: Vec<_> =
        model.plans().iter().map(|_| fleet.add_session(cfg, OnlineOptions::default())).collect();

    let mut generated = 0usize;
    let mut backlog: Vec<Vec<TagReport>> = vec![Vec::new(); ids.len()];
    for round in 0..ROUNDS {
        let t0 = round as f64 * ROUND_S;
        for (i, p) in model.plans().iter().enumerate() {
            let before = backlog[i].len();
            model.reports_into(p, t0, t0 + ROUND_S, &mut backlog[i]);
            generated += backlog[i].len() - before;
        }
        for (i, &id) in ids.iter().enumerate() {
            let admitted = fleet.offer(id, &backlog[i]);
            backlog[i].drain(..admitted);
        }
        let action = plan.action(round);
        if action != ChaosAction::StallDrain {
            fleet.drain();
        }
        match action {
            ChaosAction::Calm | ChaosAction::StallDrain => {}
            ChaosAction::KillRecover { shard } => {
                fleet.kill_shard(shard);
                fleet.recover(shard);
            }
            ChaosAction::DuplicateRecover { shard } => {
                fleet.kill_shard(shard);
                fleet.recover(shard);
                assert_eq!(
                    fleet.recover(shard),
                    RecoverReport::default(),
                    "round {round}: duplicated recovery must be a no-op"
                );
            }
            ChaosAction::CorruptLatest { shard, mutation } => {
                for &id in &ids {
                    if fleet.shard_of(id) != shard {
                        continue;
                    }
                    let store = fleet.store_mut().expect("store attached");
                    let Some(generation) = store.latest(id as u64) else {
                        continue;
                    };
                    let bytes = store.read(id as u64, generation).expect("committed bytes");
                    let mut rotten = mutate_bytes(&bytes, mutation ^ id as u64);
                    if rotten == bytes {
                        rotten.truncate(bytes.len() / 2);
                    }
                    store.overwrite(id as u64, generation, &rotten);
                }
                fleet.kill_shard(shard);
                fleet.recover(shard);
            }
        }
    }
    // Drain whatever the stalls deferred; nothing may be left behind.
    let mut settle = 0;
    while backlog.iter().any(|b| !b.is_empty()) {
        for (i, &id) in ids.iter().enumerate() {
            let admitted = fleet.offer(id, &backlog[i]);
            backlog[i].drain(..admitted);
        }
        fleet.drain();
        settle += 1;
        assert!(settle < 100, "soak failed to drain its backlog");
    }
    fleet.drain();

    let stats = fleet.stats();
    assert_eq!(stats.admitted, generated, "every generated report admitted exactly once");
    assert_eq!(stats.live, ids.len(), "no session shed");
    (fleet.finish(), stats)
}

fn assert_trails_bitwise_equal(
    got: &[(usize, TrackOutput)],
    want: &[(usize, TrackOutput)],
    ctx: &str,
) {
    assert_eq!(got.len(), want.len(), "{ctx}: session count");
    for ((gid, g), (wid, w)) in got.iter().zip(want) {
        assert_eq!(gid, wid, "{ctx}: session order");
        assert_eq!(g.trail.points.len(), w.trail.points.len(), "{ctx}/{gid}: trail length");
        for (p, q) in g.trail.points.iter().zip(&w.trail.points) {
            assert_eq!(p.x.to_bits(), q.x.to_bits(), "{ctx}/{gid}: x bits");
            assert_eq!(p.y.to_bits(), q.y.to_bits(), "{ctx}/{gid}: y bits");
        }
        for (x, y) in g.trail.times.iter().zip(&w.trail.times) {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}/{gid}: time bits");
        }
        assert_eq!(g.steps, w.steps, "{ctx}/{gid}: steps");
        assert_eq!(g.decode_stats, w.decode_stats, "{ctx}/{gid}: decode stats");
    }
}

fn reference() -> Vec<(usize, TrackOutput)> {
    let calm = ChaosPlan::kill_at(usize::MAX, 0, ROUNDS);
    run_soak(&calm, 1, 1).0
}

/// Gate 3a: a kill right after a checkpoint boundary (`every_drains =
/// 1` seals at every drain) restores with an empty escrow tail and is
/// bitwise invisible — at every swept cut point, both shards, and
/// thread counts 1/2/8.
#[test]
fn boundary_kill_recovery_is_bitwise_invisible() {
    let want = reference();
    for &threads in &[1usize, 2, 8] {
        for &kill in &[1usize, 4, 8, 11] {
            // Every session shares one rig, so affinity colonizes
            // shard 0 — that is the shard whose death hurts.
            let shard = 0;
            let plan = ChaosPlan::kill_at(kill, shard, ROUNDS);
            let (got, stats) = run_soak(&plan, threads, 1);
            assert_eq!(stats.shard_kills, 1);
            assert!(stats.recoveries > 0, "the killed shard hosted sessions");
            assert_eq!(stats.restore_fallbacks, 0, "clean store: no walk-back");
            assert_trails_bitwise_equal(
                &got,
                &want,
                &format!("kill@{kill} shard{shard} threads{threads}"),
            );
        }
    }
}

/// Gate 3b: a kill *between* checkpoints (`every_drains = 3`) forces a
/// non-empty escrow replay; the escrow ledger reconstructs the exact
/// push sequence, so the result is still bit-identical (the design's
/// lag-window divergence bound is its floor; the implementation
/// achieves zero divergence).
#[test]
fn mid_window_kill_replays_escrow_and_stays_bitwise() {
    let want = reference();
    for &(threads, kill) in &[(1usize, 2usize), (1, 7), (8, 5), (8, 10)] {
        let shard = 0;
        let plan = ChaosPlan::kill_at(kill, shard, ROUNDS);
        let (got, stats) = run_soak(&plan, threads, 3);
        assert_eq!(stats.shard_kills, 1);
        assert!(stats.recoveries > 0, "the killed shard hosted sessions");
        assert_trails_bitwise_equal(
            &got,
            &want,
            &format!("mid-window kill@{kill} shard{shard} threads{threads}"),
        );
    }
}

/// Gate 4: rot the newest committed generation of every session on a
/// shard, then kill it. Restore walks back to the previous good
/// generation, surfaces the rot in `FleetStats::restore_fallbacks`,
/// and the escrow replay still makes the outcome bit-identical.
#[test]
fn corrupted_checkpoints_fall_back_surface_and_stay_bitwise() {
    let want = reference();
    let mut actions = vec![ChaosAction::Calm; ROUNDS];
    actions[6] = ChaosAction::CorruptLatest { shard: 0, mutation: 0xBAD_F00D };
    let plan = ChaosPlan::from_actions(actions);
    let (got, stats) = run_soak(&plan, 1, 2);
    assert_eq!(stats.shard_kills, 1);
    assert!(
        stats.restore_fallbacks > 0,
        "rotten newest generation must be surfaced, not silently retried"
    );
    assert_trails_bitwise_equal(&got, &want, "corrupt-latest kill@6 shard0");
}

/// Gates 1 + 2 as a soak: a derived-seed random plan mixing every
/// fault family (kills, duplicate recovery, checkpoint rot, stalled
/// drains) over the traffic crowd — no panics, zero report loss, and
/// because escrow replay is exact and stalls only delay (never
/// reorder) pushes, the outcome is still bitwise equal to the calm
/// run.
#[test]
fn random_chaos_soak_loses_nothing_and_stays_bitwise() {
    let want = reference();
    for seed in [7u64, 0xD15EA5E] {
        let plan = ChaosPlan::generate(seed, ROUNDS, 2);
        let (got, stats) = run_soak(&plan, 2, 2);
        assert_eq!(stats.shard_kills, plan.kill_rounds().len());
        assert_trails_bitwise_equal(&got, &want, &format!("random soak seed {seed}"));
    }
}
