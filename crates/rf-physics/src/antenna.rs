//! Reader antenna models.
//!
//! PolarDraw replaces the reader's standard circularly-polarized antennas
//! with *linearly*-polarized ones (§1). We model both so the ablation
//! "what if we had kept circular polarization?" is expressible: a
//! circularly-polarized antenna couples to any dipole orientation with a
//! constant −3 dB factor, destroying the orientation information the
//! paper exploits.

use crate::polarization;
use crate::polarization::{JonesVector, PolBasis, PolState};
use rf_core::{db_to_ratio, Vec3};

/// Antenna polarization type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Polarization {
    /// Linear polarization along the given (unit) axis.
    Linear(Vec3),
    /// Circular polarization: orientation-independent −3 dB coupling to a
    /// linear dipole, no usable mismatch-angle information.
    Circular,
    /// Full Jones pattern: an arbitrary [`PolState`] radiated in the
    /// frame anchored to `axis` (the mounted reference direction). This
    /// is the general element the Jones channel propagates;
    /// `Jones { axis, state: Linear { psi_rad: 0 } }` is the same
    /// physics as `Linear(axis)`. The scalar channel handles these
    /// antennas magnitude-only — use `Polarimetry::Jones` for fidelity.
    Jones {
        /// Mounted reference direction the frame's `h` axis projects
        /// from (see [`PolBasis::from_reference`]).
        axis: Vec3,
        /// Radiated polarization state in that frame.
        state: PolState,
    },
}

/// A reader antenna: position, boresight, polarization, and a patch-like
/// gain pattern `G(θ) = G₀·cosⁿθ` clipped to the front hemisphere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Antenna {
    /// Phase-centre position, metres.
    pub position: Vec3,
    /// Boresight (main-beam) unit direction.
    pub boresight: Vec3,
    /// Polarization.
    pub polarization: Polarization,
    /// Boresight gain, dBi. The Laird antennas used by the paper are
    /// ~6 dBi panels.
    pub gain_dbi: f64,
    /// Pattern exponent `n` in `cosⁿθ`; larger = more directional.
    pub pattern_exponent: f64,
}

impl Antenna {
    /// A linearly-polarized panel antenna typical of the paper's setup.
    pub fn linear(position: Vec3, boresight: Vec3, pol_axis: Vec3) -> Antenna {
        Antenna {
            position,
            boresight,
            polarization: Polarization::Linear(pol_axis),
            gain_dbi: 6.0,
            pattern_exponent: 2.0,
        }
    }

    /// A circularly-polarized panel antenna (stock RFID deployment).
    pub fn circular(position: Vec3, boresight: Vec3) -> Antenna {
        Antenna {
            position,
            boresight,
            polarization: Polarization::Circular,
            gain_dbi: 6.0,
            pattern_exponent: 2.0,
        }
    }

    /// A panel radiating an arbitrary [`PolState`] in the frame anchored
    /// to `axis` — the generalized element for the Jones channel.
    pub fn with_state(position: Vec3, boresight: Vec3, axis: Vec3, state: PolState) -> Antenna {
        Antenna {
            position,
            boresight,
            polarization: Polarization::Jones { axis, state },
            gain_dbi: 6.0,
            pattern_exponent: 2.0,
        }
    }

    /// Linear *amplitude* gain toward `target` (√ of the power gain),
    /// including the pattern roll-off. Zero behind the antenna.
    pub fn amplitude_gain_towards(&self, target: Vec3) -> f64 {
        let dir = match (target - self.position).normalized() {
            Some(d) => d,
            None => return 0.0,
        };
        let cos_theta = self.boresight.dot(dir);
        if cos_theta <= 0.0 {
            return 0.0; // back hemisphere of a panel antenna
        }
        let pattern = cos_theta.powf(self.pattern_exponent);
        (db_to_ratio(self.gain_dbi) * pattern).sqrt()
    }

    /// Polarization coupling factor toward a dipole tag (signed, in
    /// `[−1, 1]`): `ê·u` for linear polarization, `1/√2` (−3 dB in
    /// power) independent of orientation for circular. For a `Jones`
    /// pattern this is the complex coupling collapsed for the scalar
    /// channel: the exact signed value for linear states (whose
    /// coupling is purely real) and the magnitude otherwise — phase
    /// structure needs the Jones channel.
    pub fn polarization_coupling(&self, tag_pos: Vec3, dipole: Vec3) -> f64 {
        match self.polarization {
            Polarization::Linear(axis) => {
                polarization::coupling(self.position, axis, tag_pos, dipole)
            }
            Polarization::Circular => std::f64::consts::FRAC_1_SQRT_2,
            Polarization::Jones { .. } => {
                let Some(dir) = (tag_pos - self.position).normalized() else { return 0.0 };
                let Some((basis, jv)) = self.jones_along(dir) else { return 0.0 };
                let Some(u) = dipole.normalized() else { return 0.0 };
                let c = jv.couple(&basis, u);
                if c.im == 0.0 {
                    c.re
                } else {
                    c.abs()
                }
            }
        }
    }

    /// Polarization mismatch angle β toward a dipole (radians, `[0, π/2]`).
    /// For circular polarization there is no mismatch concept; returns 0.
    /// For a `Jones` pattern: `arccos |⟨E, u⊥̂⟩|` with the normalized
    /// transverse dipole — the RSS-visible mismatch of the state.
    pub fn mismatch_angle(&self, tag_pos: Vec3, dipole: Vec3) -> f64 {
        match self.polarization {
            Polarization::Linear(axis) => {
                polarization::mismatch_angle(self.position, axis, tag_pos, dipole)
            }
            Polarization::Circular => 0.0,
            Polarization::Jones { .. } => {
                let half_pi = std::f64::consts::FRAC_PI_2;
                let Some(dir) = (tag_pos - self.position).normalized() else { return half_pi };
                let Some((basis, jv)) = self.jones_along(dir) else { return half_pi };
                let Some(u_t) = dipole.reject_from(dir).normalized() else { return half_pi };
                jv.couple(&basis, u_t).abs().clamp(0.0, 1.0).acos()
            }
        }
    }

    /// The polarization frame and radiated Jones vector along unit
    /// direction `dir` — the antenna as a Jones pattern. `None` when the
    /// frame degenerates (reference axis parallel to the ray).
    ///
    /// Linear antennas radiate `(1, 0)` in the frame anchored to their
    /// axis, so `couple` reduces bitwise to the scalar `ê·u`; circular
    /// antennas radiate right-hand circular in a deterministic frame.
    pub fn jones_along(&self, dir: Vec3) -> Option<(PolBasis, JonesVector)> {
        match self.polarization {
            Polarization::Linear(axis) => {
                Some((PolBasis::from_reference(axis, dir)?, JonesVector::H))
            }
            Polarization::Circular => Some((
                PolBasis::any(dir),
                PolState::Circular { right_handed: true }.jones(),
            )),
            Polarization::Jones { axis, state } => {
                Some((PolBasis::from_reference(axis, dir)?, state.jones()))
            }
        }
    }

    /// [`Antenna::jones_along`] toward a target position.
    pub fn jones_towards(&self, target: Vec3) -> Option<(PolBasis, JonesVector)> {
        self.jones_along((target - self.position).normalized()?)
    }

    /// The polarization axis for linear antennas; `None` for circular
    /// and general Jones patterns.
    pub fn linear_axis(&self) -> Option<Vec3> {
        match self.polarization {
            Polarization::Linear(a) => Some(a),
            Polarization::Circular | Polarization::Jones { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn downward_panel() -> Antenna {
        Antenna::linear(Vec3::new(0.0, 0.0, 2.0), -Vec3::Z, Vec3::X)
    }

    #[test]
    fn boresight_gain_matches_spec() {
        let a = downward_panel();
        let g = a.amplitude_gain_towards(Vec3::ZERO);
        // 6 dBi → power ratio ~3.98 → amplitude ~1.995.
        assert!((g * g - 3.981).abs() < 1e-2);
    }

    #[test]
    fn gain_rolls_off_away_from_boresight() {
        let a = downward_panel();
        let on_axis = a.amplitude_gain_towards(Vec3::ZERO);
        let off_axis = a.amplitude_gain_towards(Vec3::new(1.5, 0.0, 0.0));
        assert!(off_axis < on_axis);
        assert!(off_axis > 0.0);
    }

    #[test]
    fn back_hemisphere_is_dark() {
        let a = downward_panel();
        assert_eq!(a.amplitude_gain_towards(Vec3::new(0.0, 0.0, 5.0)), 0.0);
    }

    #[test]
    fn target_at_antenna_position_gains_zero() {
        let a = downward_panel();
        assert_eq!(a.amplitude_gain_towards(a.position), 0.0);
    }

    #[test]
    fn linear_coupling_depends_on_orientation_circular_does_not() {
        let lin = downward_panel();
        let circ = Antenna::circular(Vec3::new(0.0, 0.0, 2.0), -Vec3::Z);
        let aligned = lin.polarization_coupling(Vec3::ZERO, Vec3::X).abs();
        let crossed = lin.polarization_coupling(Vec3::ZERO, Vec3::Y).abs();
        assert!(aligned > 0.99 && crossed < 1e-9);
        let c1 = circ.polarization_coupling(Vec3::ZERO, Vec3::X);
        let c2 = circ.polarization_coupling(Vec3::ZERO, Vec3::Y);
        assert!((c1 - c2).abs() < 1e-12, "circular is orientation-blind");
        assert!((c1 * c1 - 0.5).abs() < 1e-12, "−3 dB coupling");
    }

    #[test]
    fn mismatch_angle_zero_for_circular() {
        let circ = Antenna::circular(Vec3::new(0.0, 0.0, 2.0), -Vec3::Z);
        assert_eq!(circ.mismatch_angle(Vec3::ZERO, Vec3::Y), 0.0);
    }

    #[test]
    fn linear_axis_accessor() {
        assert_eq!(downward_panel().linear_axis(), Some(Vec3::X));
        assert_eq!(Antenna::circular(Vec3::ZERO, Vec3::Z).linear_axis(), None);
        let jones = Antenna::with_state(
            Vec3::ZERO,
            Vec3::Z,
            Vec3::X,
            PolState::Linear { psi_rad: 0.0 },
        );
        assert_eq!(jones.linear_axis(), None);
    }

    #[test]
    fn jones_linear_zero_state_matches_plain_linear() {
        // Polarization::Jones with a ψ=0 linear state is the same
        // physics as Polarization::Linear, through both access paths.
        let lin = downward_panel();
        let jones = Antenna::with_state(
            lin.position,
            lin.boresight,
            Vec3::X,
            PolState::Linear { psi_rad: 0.0 },
        );
        for u in [Vec3::X, Vec3::Y, Vec3::new(0.6, 0.8, 0.0), Vec3::new(0.3, -0.4, 0.5)] {
            let tag = Vec3::new(0.2, -0.1, 0.0);
            assert!(
                (lin.polarization_coupling(tag, u) - jones.polarization_coupling(tag, u)).abs()
                    < 1e-12
            );
            assert!((lin.mismatch_angle(tag, u) - jones.mismatch_angle(tag, u)).abs() < 1e-12);
        }
    }

    #[test]
    fn jones_rotated_linear_state_rotates_the_null() {
        // ψ = 90° moves the coupling null from Y onto X.
        let rotated = Antenna::with_state(
            Vec3::new(0.0, 0.0, 2.0),
            -Vec3::Z,
            Vec3::X,
            PolState::Linear { psi_rad: std::f64::consts::FRAC_PI_2 },
        );
        assert!(rotated.polarization_coupling(Vec3::ZERO, Vec3::X).abs() < 1e-12);
        assert!(rotated.polarization_coupling(Vec3::ZERO, Vec3::Y).abs() > 0.999);
    }

    #[test]
    fn jones_circular_state_is_orientation_blind_at_3db() {
        let circ = Antenna::with_state(
            Vec3::new(0.0, 0.0, 2.0),
            -Vec3::Z,
            Vec3::X,
            PolState::Circular { right_handed: true },
        );
        for deg in [0.0, 30.0, 77.0, 145.0] {
            let a = (deg as f64).to_radians();
            let u = Vec3::new(a.cos(), a.sin(), 0.0);
            let c = circ.polarization_coupling(Vec3::ZERO, u);
            assert!((c * c - 0.5).abs() < 1e-12, "{deg}° → {c}");
        }
    }
}
