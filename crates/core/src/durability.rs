//! Crash-safe checkpoint durability.
//!
//! The online engine's `checkpoint.v1` documents (see
//! [`crate::online`]) are bitwise round-trippable but assume the bytes
//! come back exactly as written. This module makes them survive a
//! hostile world — crashes mid-write, bit rot at rest, truncation —
//! and makes *restore from untrusted bytes* a total function: every
//! failure is a typed [`RestoreError`], never a panic.
//!
//! Three pieces:
//!
//! * **The `checkpoint.v2` envelope** — a JSON wrapper around a full
//!   v1 payload carrying a `generation` counter, a `rig_crc`
//!   (CRC-32 of the canonical rig fingerprint, so a store can cheaply
//!   reject a checkpoint from the wrong rig), and a `crc` over the
//!   canonical serialization of the entire envelope minus the `crc`
//!   field itself. Because the workspace JSON writer is canonical
//!   (sorted keys, shortest-round-trip numbers), *any* semantic
//!   mutation of the document changes the CRC. Plain v1 documents
//!   (and v1 payloads inside the envelope) still parse; they restore
//!   as generation 0.
//! * **[`CheckpointStore`]** — generations of sealed envelopes per
//!   session in a virtual [`BlobStore`], written with
//!   stage-then-commit atomicity (a crash between the two leaves an
//!   ignored `stage/…` orphan, never a half-visible checkpoint),
//!   pruned to the last `keep` generations, and recovered by walking
//!   generations newest → oldest until one opens cleanly.
//! * **[`RestoreError`]** — the typed error surface shared with
//!   [`OnlineTracker::restore`](crate::online::OnlineTracker::restore).
//!
//! The fleet layer ([`crate::fleet`]) drives this with a checkpoint
//! policy and an escrow ledger so that crash recovery is loss-free;
//! the chaos harness (`rfid_sim::chaos` + `tests/chaos.rs`) proves it.

use rf_core::crc::crc32;
use rf_core::json::{Json, JsonError};
use rf_core::store::{BlobStore, MemBlobStore};

use crate::online::{fingerprint_json, OnlineTracker};
use crate::PolarDrawConfig;

/// Format tag carried by every sealed v2 envelope.
pub const CHECKPOINT_FORMAT_V2: &str = "polardraw.online.checkpoint.v2";

/// Why a checkpoint could not be restored. Every variant is reachable
/// from corrupted or hostile bytes; none of them panic.
#[derive(Debug, Clone, PartialEq)]
pub enum RestoreError {
    /// The bytes are not valid JSON (or not valid UTF-8).
    Parse(JsonError),
    /// The document's format tag is neither `checkpoint.v1` nor
    /// `checkpoint.v2`.
    Format {
        /// The format tag actually found (empty if absent/mistyped).
        found: String,
    },
    /// The envelope CRC does not cover the bytes that came back:
    /// the document was corrupted at rest.
    Checksum {
        /// CRC recorded in the envelope when it was sealed.
        recorded: u32,
        /// CRC recomputed over the document as read back.
        computed: u32,
    },
    /// The checkpoint was produced under a different rig
    /// configuration than the one supplied to restore.
    Fingerprint,
    /// A required field is missing, mistyped, or out of range.
    Field(String),
    /// No checkpoint exists at all for the requested session.
    Missing,
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Parse(e) => write!(f, "checkpoint is not valid JSON: {e}"),
            RestoreError::Format { found } => {
                write!(f, "unknown checkpoint format `{found}`")
            }
            RestoreError::Checksum { recorded, computed } => write!(
                f,
                "checkpoint checksum mismatch (recorded {recorded:#010x}, computed {computed:#010x})"
            ),
            RestoreError::Fingerprint => {
                write!(f, "checkpoint fingerprint does not match the supplied configuration")
            }
            RestoreError::Field(msg) => write!(f, "malformed checkpoint field: {msg}"),
            RestoreError::Missing => write!(f, "no checkpoint exists for this session"),
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<JsonError> for RestoreError {
    fn from(e: JsonError) -> RestoreError {
        RestoreError::Field(e.to_string())
    }
}

/// A checkpoint opened successfully, with its provenance.
#[derive(Debug)]
pub struct Restored {
    /// The rebuilt tracker.
    pub tracker: OnlineTracker,
    /// Generation counter from the envelope (0 for bare v1 documents).
    pub generation: u64,
}

/// CRC-32 of a configuration's canonical fingerprint document — the
/// cheap rig-identity check carried in every v2 envelope.
pub fn rig_crc(config: &PolarDrawConfig) -> u32 {
    crc32(fingerprint_json(config).to_json_string().as_bytes())
}

/// Seal a tracker's state into a `checkpoint.v2` envelope string.
///
/// The envelope is canonical JSON; `crc` covers the canonical
/// serialization of every other field (including the full v1 payload),
/// so any semantic corruption is detected on open. `generation` is the
/// caller's monotone counter ([`CheckpointStore::save`] manages it);
/// it must stay below 2^53 to survive the JSON number round trip,
/// which a per-session counter always does.
pub fn seal_checkpoint(tracker: &OnlineTracker, generation: u64) -> String {
    let mut doc = Json::obj([
        ("format", Json::str(CHECKPOINT_FORMAT_V2)),
        ("generation", Json::num(generation as f64)),
        ("rig_crc", Json::num(rig_crc(tracker.config()) as f64)),
        ("payload", tracker.checkpoint()),
    ]);
    let crc = crc32(doc.to_json_string().as_bytes());
    if let Json::Obj(map) = &mut doc {
        map.insert("crc".to_string(), Json::num(crc as f64));
    }
    doc.to_json_string()
}

/// Open a checkpoint document of either format from untrusted text.
///
/// v2 envelopes are CRC- and fingerprint-verified before the payload
/// is parsed; bare v1 documents restore directly as generation 0
/// (fingerprint-verified by [`OnlineTracker::restore`] itself).
pub fn open_checkpoint(
    config: PolarDrawConfig,
    text: &str,
) -> Result<Restored, RestoreError> {
    let doc = Json::parse(text).map_err(RestoreError::Parse)?;
    open_checkpoint_json(config, &doc)
}

/// [`open_checkpoint`] for an already-parsed document.
pub fn open_checkpoint_json(
    config: PolarDrawConfig,
    doc: &Json,
) -> Result<Restored, RestoreError> {
    let format = doc.get("format").and_then(Json::as_str).unwrap_or("");
    if format == OnlineTracker::CHECKPOINT_FORMAT {
        let tracker = OnlineTracker::restore(config, doc)?;
        return Ok(Restored { tracker, generation: 0 });
    }
    if format != CHECKPOINT_FORMAT_V2 {
        return Err(RestoreError::Format { found: format.to_string() });
    }

    // Integrity first: recompute the CRC over the canonical
    // serialization of the envelope minus its `crc` field. The writer
    // is canonical, so intact bytes always verify and any semantic
    // mutation (bit flip, truncation repaired by luck, type
    // confusion) is caught here.
    let recorded = req_u32(doc, "crc")?;
    let mut stripped = doc.clone();
    if let Json::Obj(map) = &mut stripped {
        map.remove("crc");
    }
    let computed = crc32(stripped.to_json_string().as_bytes());
    if recorded != computed {
        return Err(RestoreError::Checksum { recorded, computed });
    }

    // Identity second: the envelope-level rig CRC rejects a
    // checkpoint from a different rig without parsing the payload.
    if req_u32(doc, "rig_crc")? != rig_crc(&config) {
        return Err(RestoreError::Fingerprint);
    }

    let generation = req_u53(doc, "generation")?;
    let payload =
        doc.get("payload").ok_or_else(|| RestoreError::Field("missing `payload`".into()))?;
    let tracker = OnlineTracker::restore(config, payload)?;
    Ok(Restored { tracker, generation })
}

fn req_u32(doc: &Json, key: &str) -> Result<u32, RestoreError> {
    match doc.get(key).and_then(Json::as_f64) {
        Some(x) if x.fract() == 0.0 && (0.0..=u32::MAX as f64).contains(&x) => Ok(x as u32),
        _ => Err(RestoreError::Field(format!("missing or non-u32 field `{key}`"))),
    }
}

fn req_u53(doc: &Json, key: &str) -> Result<u64, RestoreError> {
    match doc.get(key).and_then(Json::as_f64) {
        Some(x) if x.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&x) => {
            Ok(x as u64)
        }
        _ => Err(RestoreError::Field(format!("missing or non-integer field `{key}`"))),
    }
}

/// A checkpoint recovered through the generation walk-back.
#[derive(Debug)]
pub struct Recovered {
    /// The rebuilt tracker.
    pub tracker: OnlineTracker,
    /// Generation it was rebuilt from.
    pub generation: u64,
    /// Newer generations that failed to open and were skipped.
    pub fallbacks: usize,
}

/// Generations of sealed checkpoints per session over a virtual
/// [`BlobStore`], with stage-then-commit writes and walk-back
/// recovery.
///
/// Key scheme: `ckpt/{session:016x}/{generation:016x}` — fixed-width
/// hex, so the store's sorted keys enumerate generations in order.
/// Writes go to `stage/…` first and are only then copied to their
/// final key; recovery never looks at `stage/…`, so a crash between
/// the two steps leaves the previous generation intact.
#[derive(Debug)]
pub struct CheckpointStore {
    backend: Box<dyn BlobStore>,
    keep: usize,
}

impl CheckpointStore {
    /// Store over `backend`, retaining the last `keep ≥ 1` generations
    /// per session.
    pub fn new(backend: Box<dyn BlobStore>, keep: usize) -> CheckpointStore {
        CheckpointStore { backend, keep: keep.max(1) }
    }

    /// In-memory store (the default for tests and single-process
    /// fleets).
    pub fn in_memory(keep: usize) -> CheckpointStore {
        CheckpointStore::new(Box::new(MemBlobStore::new()), keep)
    }

    /// How many generations are retained per session.
    pub fn keep(&self) -> usize {
        self.keep
    }

    fn final_key(session: u64, generation: u64) -> String {
        format!("ckpt/{session:016x}/{generation:016x}")
    }

    fn stage_key(session: u64, generation: u64) -> String {
        format!("stage/{session:016x}/{generation:016x}")
    }

    /// Committed generations for `session`, ascending.
    pub fn generations(&self, session: u64) -> Vec<u64> {
        let prefix = format!("ckpt/{session:016x}/");
        self.backend
            .keys()
            .iter()
            .filter_map(|k| k.strip_prefix(&prefix))
            .filter_map(|suffix| u64::from_str_radix(suffix, 16).ok())
            .collect()
    }

    /// Newest committed generation for `session`, if any.
    pub fn latest(&self, session: u64) -> Option<u64> {
        self.generations(session).last().copied()
    }

    /// Oldest retained generation for `session`, if any.
    pub fn oldest(&self, session: u64) -> Option<u64> {
        self.generations(session).first().copied()
    }

    /// Seal and durably write the next generation for `session`,
    /// returning the generation number. Stage + commit in one call.
    pub fn save(&mut self, session: u64, tracker: &OnlineTracker) -> u64 {
        let generation = self.latest(session).map_or(1, |g| g + 1);
        let text = seal_checkpoint(tracker, generation);
        self.stage(session, generation, text.as_bytes());
        self.commit(session, generation);
        generation
    }

    /// First half of a write: park the sealed bytes at a staging key.
    /// Recovery ignores staged bytes; only [`commit`](Self::commit)
    /// makes them visible. Exposed so the chaos harness can crash a
    /// writer between the two steps.
    pub fn stage(&mut self, session: u64, generation: u64, bytes: &[u8]) {
        self.backend.put(&Self::stage_key(session, generation), bytes);
    }

    /// Second half of a write: publish the staged bytes at their final
    /// key, drop the staging copy, and prune old generations. Returns
    /// `false` (and changes nothing) if nothing was staged.
    pub fn commit(&mut self, session: u64, generation: u64) -> bool {
        let stage = Self::stage_key(session, generation);
        let Some(bytes) = self.backend.get(&stage) else {
            return false;
        };
        self.backend.put(&Self::final_key(session, generation), &bytes);
        self.backend.remove(&stage);
        let gens = self.generations(session);
        for &old in gens.iter().take(gens.len().saturating_sub(self.keep)) {
            self.backend.remove(&Self::final_key(session, old));
        }
        true
    }

    /// Raw sealed bytes of one committed generation (for inspection
    /// and for the chaos harness's corruption hooks).
    pub fn read(&self, session: u64, generation: u64) -> Option<Vec<u8>> {
        self.backend.get(&Self::final_key(session, generation))
    }

    /// Overwrite one committed generation's bytes in place — the
    /// corruption hook the chaos harness uses to model bit rot.
    pub fn overwrite(&mut self, session: u64, generation: u64, bytes: &[u8]) {
        self.backend.put(&Self::final_key(session, generation), bytes);
    }

    /// Rebuild `session`'s tracker from the newest generation that
    /// opens cleanly, walking back over corrupted ones.
    ///
    /// `Err(RestoreError::Missing)` if no generation is committed;
    /// otherwise the last (oldest) failure if every generation is bad.
    pub fn recover(
        &self,
        session: u64,
        config: PolarDrawConfig,
    ) -> Result<Recovered, RestoreError> {
        let mut fallbacks = 0;
        let mut last_err = RestoreError::Missing;
        for &generation in self.generations(session).iter().rev() {
            let Some(bytes) = self.read(session, generation) else {
                continue;
            };
            let opened = match std::str::from_utf8(&bytes) {
                Ok(text) => open_checkpoint(config, text),
                Err(_) => {
                    Err(RestoreError::Field("checkpoint bytes are not UTF-8".into()))
                }
            };
            match opened {
                Ok(restored) if restored.generation == generation => {
                    return Ok(Recovered {
                        tracker: restored.tracker,
                        generation,
                        fallbacks,
                    });
                }
                Ok(_) => {
                    // Envelope opened but claims a different
                    // generation than its key: treat as corrupt.
                    fallbacks += 1;
                    last_err = RestoreError::Field(
                        "envelope generation does not match its key".into(),
                    );
                }
                Err(e) => {
                    fallbacks += 1;
                    last_err = e;
                }
            }
        }
        Err(last_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OnlineOptions;

    fn coarse_config() -> PolarDrawConfig {
        let mut cfg = PolarDrawConfig::default();
        cfg.hmm.cell_m *= 8.0;
        cfg
    }

    fn fresh_tracker() -> OnlineTracker {
        OnlineTracker::new(coarse_config(), OnlineOptions::default())
    }

    #[test]
    fn seal_open_round_trips_and_v1_still_opens() {
        let tracker = fresh_tracker();
        let sealed = seal_checkpoint(&tracker, 7);
        let restored = open_checkpoint(coarse_config(), &sealed).expect("open v2");
        assert_eq!(restored.generation, 7);
        assert_eq!(restored.tracker.checkpoint_string(), tracker.checkpoint_string());

        // A bare v1 document is generation 0.
        let v1 = tracker.checkpoint_string();
        let restored = open_checkpoint(coarse_config(), &v1).expect("open v1");
        assert_eq!(restored.generation, 0);
        assert_eq!(restored.tracker.checkpoint_string(), v1);
    }

    #[test]
    fn wrong_rig_is_a_fingerprint_error_cheaply() {
        let sealed = seal_checkpoint(&fresh_tracker(), 1);
        let mut other = coarse_config();
        other.hmm.cell_m *= 2.0;
        assert_eq!(
            open_checkpoint(other, &sealed).unwrap_err(),
            RestoreError::Fingerprint
        );
    }

    #[test]
    fn any_semantic_mutation_fails_the_checksum() {
        let sealed = seal_checkpoint(&fresh_tracker(), 3);
        // Flip the generation: a "valid JSON" corruption the payload
        // CRC of a naive scheme would miss — the whole-envelope CRC
        // catches it.
        let tampered = sealed.replace("\"generation\":3", "\"generation\":4");
        assert_ne!(tampered, sealed);
        match open_checkpoint(coarse_config(), &tampered) {
            Err(RestoreError::Checksum { .. }) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
        // Whitespace-only changes are semantically identical and
        // verify fine (the CRC is over the canonical re-serialization).
        let spaced = sealed.replace("\"generation\":3", "\"generation\": 3");
        assert!(open_checkpoint(coarse_config(), &spaced).is_ok());
    }

    #[test]
    fn store_saves_prunes_and_walks_back() {
        let mut store = CheckpointStore::in_memory(3);
        let tracker = fresh_tracker();
        for expect in 1..=5u64 {
            assert_eq!(store.save(42, &tracker), expect);
        }
        assert_eq!(store.generations(42), vec![3, 4, 5], "pruned to keep=3");
        assert_eq!(store.generations(7), Vec::<u64>::new(), "other sessions untouched");

        // Corrupt the newest two: recovery walks back to 3.
        store.overwrite(42, 5, b"garbage");
        let mut bytes = store.read(42, 4).unwrap();
        bytes[40] ^= 0x10;
        store.overwrite(42, 4, &bytes);
        let recovered = store.recover(42, coarse_config()).expect("walk back");
        assert_eq!(recovered.generation, 3);
        assert_eq!(recovered.fallbacks, 2);
        assert_eq!(recovered.tracker.checkpoint_string(), tracker.checkpoint_string());

        // All generations corrupt: a typed error, never a panic.
        store.overwrite(42, 3, &[0xFF, 0xFE]);
        assert!(store.recover(42, coarse_config()).is_err());
        // Unknown session: Missing.
        assert_eq!(store.recover(7, coarse_config()).unwrap_err(), RestoreError::Missing);
    }

    #[test]
    fn staged_but_uncommitted_writes_are_invisible() {
        let mut store = CheckpointStore::in_memory(2);
        let tracker = fresh_tracker();
        store.save(1, &tracker);
        // A writer crashes after staging generation 2.
        let sealed = seal_checkpoint(&tracker, 2);
        store.stage(1, 2, sealed.as_bytes());
        assert_eq!(store.latest(1), Some(1), "staged bytes are not visible");
        let recovered = store.recover(1, coarse_config()).expect("recover");
        assert_eq!(recovered.generation, 1);
        assert_eq!(recovered.fallbacks, 0);
        // A later writer (or the restarted one) commits; now it lands.
        assert!(store.commit(1, 2));
        assert_eq!(store.latest(1), Some(2));
        assert!(!store.commit(1, 2), "commit is idempotent-safe: nothing staged");
    }
}
