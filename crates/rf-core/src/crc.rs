//! CRC-32 (IEEE 802.3) over byte slices.
//!
//! The durability layer checksums checkpoint payloads before they go
//! to a blob store and verifies them on the way back; a mismatch means
//! the bytes were corrupted at rest (bit rot, truncation, a torn
//! write) and restore must walk back to an older generation. CRC-32 is
//! the right tool here: it is cheap, detects all single-bit errors and
//! all burst errors up to 32 bits, and needs no dependencies — the
//! table is built in a `const` context from the reflected polynomial.

/// Reflected IEEE 802.3 polynomial (the one used by zlib, PNG, …).
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, one byte of input per step.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (IEEE, reflected, init/xorout `0xFFFF_FFFF`).
///
/// Matches the classic zlib `crc32(0, …)` value, so externally
/// produced checksums over the same bytes agree.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Canonical zlib/PNG test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn single_bit_flips_always_detected() {
        let base = b"polardraw.online.checkpoint.v2 payload bytes".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn truncation_detected() {
        let base = b"generation 17 of session 3".to_vec();
        let reference = crc32(&base);
        for cut in 0..base.len() {
            assert_ne!(crc32(&base[..cut]), reference, "truncation to {cut} undetected");
        }
    }
}
