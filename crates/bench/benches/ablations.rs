//! Ablation benchmarks over the decoder's design knobs (DESIGN.md's
//! "design choices worth ablating"): HMM cell size, beam width, and
//! pre-processing window length. These measure the *runtime* half of
//! each trade-off; the accuracy half comes from the `repro` harness
//! with the corresponding config overrides.

use criterion::{criterion_group, criterion_main, Criterion};
use polardraw_bench::letter_reports;
use polardraw_core::hmm::DEFAULT_BEAM_WIDTH;
use polardraw_core::preprocess::{preprocess, PreprocessConfig};
use polardraw_core::{PolarDraw, PolarDrawConfig};
use rfid_sim::TrajectoryTracker;
use std::hint::black_box;
use std::time::Duration;

fn bench_cell_size(c: &mut Criterion) {
    let reports = letter_reports('S', 21);
    let mut group = c.benchmark_group("ablation/cell_size");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(15));
    for cell_mm in [2.5f64, 5.0, 10.0] {
        let mut cfg = PolarDrawConfig::default();
        cfg.hmm.cell_m = cell_mm / 1000.0;
        let pd = PolarDraw::new(cfg);
        group.bench_function(format!("{cell_mm}mm"), |b| {
            b.iter(|| black_box(pd.track(black_box(&reports))))
        });
    }
    group.finish();
}

fn bench_window_length(c: &mut Criterion) {
    let reports = letter_reports('S', 22);
    let mut group = c.benchmark_group("ablation/window_length");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    for window_ms in [25u64, 50, 100] {
        let cfg = PreprocessConfig {
            window_s: window_ms as f64 / 1000.0,
            ..PreprocessConfig::default()
        };
        group.bench_function(format!("{window_ms}ms"), |b| {
            b.iter(|| black_box(preprocess(black_box(&reports), &cfg)))
        });
    }
    group.finish();
}

fn bench_smoother_cost(c: &mut Criterion) {
    let reports = letter_reports('S', 23);
    let mut group = c.benchmark_group("ablation/output_smoother");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(15));
    for (label, on) in [("off", false), ("kalman_rts", true)] {
        let mut cfg = PolarDrawConfig::default();
        cfg.smooth_output = on;
        let pd = PolarDraw::new(cfg);
        group.bench_function(label, |b| {
            b.iter(|| black_box(pd.track(black_box(&reports))))
        });
    }
    group.finish();
}

fn bench_beam_width_note(_c: &mut Criterion) {
    // Beam width is exercised through `viterbi_beam` in the components
    // bench; assert here (cheaply, once) that the default stays within
    // the range the accuracy sweeps were tuned for.
    assert!(DEFAULT_BEAM_WIDTH >= 500 && DEFAULT_BEAM_WIDTH <= 10_000);
}

criterion_group!(
    benches,
    bench_cell_size,
    bench_window_length,
    bench_smoother_cost,
    bench_beam_width_note
);
criterion_main!(benches);
