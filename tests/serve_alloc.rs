//! Steady-state allocation gate for the serve drain path.
//!
//! `ServePool::drain` reuses its wake-list buffer across rounds and the
//! per-session ingest queues keep their capacity, so once a pool is
//! warm a single-threaded drain round allocates NOTHING: enqueue writes
//! into retained queue capacity, the wake scan fills the reused index
//! buffer, and late reports are dropped inside `OnlineTracker::push`
//! with a counter bump. This binary installs a counting global
//! allocator to prove it (which needs `unsafe`, so the test lives in
//! the workspace-root test crate rather than under the core crate's
//! `#![forbid(unsafe_code)]`), and keeps exactly one `#[test]` so no
//! sibling test thread allocates concurrently.

use experiments::setup::{polardraw_config_for, TrialSetup};
use polardraw_core::serve::ServePool;
use polardraw_core::OnlineOptions;
use rfid_sim::TagReport;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// System allocator wrapper that counts every allocation entry point.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn in_order_report(k: usize) -> TagReport {
    TagReport {
        t: 1_000.0 + k as f64 * 0.01,
        antenna: k % 2,
        rssi_dbm: -55.0,
        phase_rad: rf_core::wrap_tau(0.02 * k as f64),
        channel: 0,
        epc: 0xA110C,
    }
}

/// A report far older than the tracker's first window: dropped at
/// `OnlineTracker::push` with nothing but a counter increment.
fn late_report(k: usize) -> TagReport {
    TagReport { t: 1.0 + (k % 8) as f64 * 0.01, ..in_order_report(k) }
}

#[test]
fn warm_single_thread_drain_rounds_allocate_nothing() {
    const ROUND: usize = 32;

    // Warm up: real stream past several closed windows (so late
    // reports below hit the drop path), queue capacity established at
    // the steady-state chunk size, wake buffer filled once.
    let cfg = polardraw_config_for(&TrialSetup::letter('L').with_cell_scale(8.0));
    let mut pool = ServePool::new(1);
    let id = pool.add_session(cfg, OnlineOptions::default());
    let warm: Vec<TagReport> = (0..256).map(in_order_report).collect();
    for chunk in warm.chunks(ROUND) {
        pool.enqueue_batch(id, chunk);
        pool.drain();
    }
    let late: Vec<TagReport> = (0..ROUND).map(late_report).collect();
    pool.enqueue_batch(id, &late);
    pool.drain();
    let dropped_before = pool.tracker(id).late_reports_dropped();

    // Steady state: every round must be allocation-free.
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..100 {
        pool.enqueue_batch(id, &late);
        let round = pool.drain();
        assert_eq!(round.woken, 1);
        assert_eq!(round.reports, ROUND);
    }
    let after = ALLOCS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "warm threads=1 enqueue+drain rounds must not allocate"
    );
    assert_eq!(
        pool.tracker(id).late_reports_dropped(),
        dropped_before + 100 * ROUND,
        "every steady-state report took the late-drop path"
    );
    drop(pool.finish());
}
