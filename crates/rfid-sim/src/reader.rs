//! The reader: antenna multiplexing, inventory loop, measurement
//! quantization.
//!
//! Mirrors an ImpinJ Speedway driving multiple antenna ports: the reader
//! dwells on a port for a configurable number of inventory rounds, then
//! switches. Each successful round yields one [`TagReport`] whose RSSI
//! is quantized to 0.5 dB and phase to 12 bits over `[0, 2π)` — the
//! granularity real LLRP reports carry.

use crate::gen2::Gen2Config;
use crate::TagReport;
use rf_core::rng::{gaussian, rng_from_seed};
use rf_core::wrap_tau;
use rf_physics::batch::RigFactors;
use rf_physics::ChannelModel;

/// Reader configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReaderConfig {
    /// MAC/modulation timing.
    pub gen2: Gen2Config,
    /// RSSI quantization step, dB (ImpinJ: 0.5).
    pub rssi_step_db: f64,
    /// Phase quantization resolution, bits over `[0, 2π)` (ImpinJ: 12).
    pub phase_bits: u32,
    /// Inventory rounds per antenna before switching ports.
    pub dwell_rounds: usize,
    /// Relative jitter on round durations (reader scheduling slop).
    pub timing_jitter: f64,
    /// The tag's EPC.
    pub epc: u64,
}

impl Default for ReaderConfig {
    fn default() -> Self {
        ReaderConfig {
            gen2: Gen2Config::default(),
            rssi_step_db: 0.5,
            phase_bits: 12,
            dwell_rounds: 1,
            timing_jitter: 0.05,
            epc: 0xE280_1160_6000_0001,
        }
    }
}

/// A simulated multi-port reader bound to an RF environment.
#[derive(Debug, Clone)]
pub struct Reader {
    /// The RF environment (antennas, clutter, budgets).
    pub channel: ChannelModel,
    /// Reader behaviour.
    pub config: ReaderConfig,
}

/// Minimal pen-pose view the reader needs (avoids a dependency on
/// `pen-sim`): position and dipole at a timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TagPose {
    /// Timestamp, seconds.
    pub t: f64,
    /// Tag position, metres.
    pub position: rf_core::Vec3,
    /// Tag dipole orientation (unit).
    pub dipole: rf_core::Vec3,
}

impl Reader {
    /// Create a reader over a channel with default configuration.
    pub fn new(channel: ChannelModel) -> Reader {
        Reader { channel, config: ReaderConfig::default() }
    }

    /// One link observation, through the rig-frozen factors when the
    /// plan allows freezing (fixed carrier — the paper's mode), else
    /// the plain per-link model. `RigFactors::evaluate` is bitwise
    /// identical to `ChannelModel::evaluate`, so the report stream —
    /// and every golden snapshot derived from it — is unchanged; only
    /// the per-report forward-model cost drops.
    #[inline]
    fn observe(
        &self,
        frozen: Option<&RigFactors>,
        port: usize,
        pose: TagPose,
        t: f64,
    ) -> rf_physics::LinkObservation {
        match frozen {
            Some(rig) => rig.evaluate(port, pose.position, pose.dipole, t),
            None => self.channel.evaluate(port, pose.position, pose.dipole, t),
        }
    }

    /// Run the inventory loop across a pose trajectory, producing the
    /// LLRP-visible report stream. Deterministic in `seed`.
    ///
    /// Poses must be sorted by time; the reader samples the pose with
    /// the latest timestamp ≤ the current MAC time (zero-order hold, so
    /// pose sampling should be finer than the ~5–10 ms round time).
    pub fn inventory(&self, poses: &[TagPose], seed: u64) -> Vec<TagReport> {
        let mut reports = Vec::new();
        let (first, last) = match (poses.first(), poses.last()) {
            (Some(f), Some(l)) => (f.t, l.t),
            _ => return reports,
        };
        let mut rng = rng_from_seed(seed);
        let frozen = RigFactors::freeze(&self.channel);
        let n_ant = self.channel.antenna_count().max(1);
        let mut t = first;
        let mut pose_idx = 0usize;
        let mut port = 0usize;
        let mut rounds_on_port = 0usize;

        while t <= last {
            while pose_idx + 1 < poses.len() && poses[pose_idx + 1].t <= t {
                pose_idx += 1;
            }
            let pose = poses[pose_idx];
            let obs = self.observe(frozen.as_ref(), port, pose, t);

            let round = if obs.tag_powered {
                let snr = self.channel.noise.snr_db(obs.rx_power_dbm);
                let p_ok = self
                    .config
                    .gen2
                    .scheme
                    .packet_success(snr, crate::gen2::frame::EPC_BITS);
                if rng.gen_bool(p_ok) {
                    let rssi = obs.rx_power_dbm
                        + self.channel.noise.sample_rssi_noise(&mut rng, obs.rx_power_dbm);
                    let phase = obs.phase_rad
                        + self.channel.noise.sample_phase_noise(&mut rng, obs.rx_power_dbm);
                    reports.push(TagReport {
                        t,
                        antenna: port,
                        rssi_dbm: quantize_rssi(rssi, self.config.rssi_step_db),
                        phase_rad: quantize_phase(wrap_tau(phase), self.config.phase_bits),
                        channel: self.channel.plan.channel_at(t),
                        epc: self.config.epc,
                    });
                    self.config.gen2.successful_round_duration()
                } else {
                    // RN16 or EPC decode failure: the round is spent.
                    self.config.gen2.successful_round_duration()
                }
            } else {
                self.config.gen2.empty_round_duration()
            };

            let jitter = 1.0 + gaussian(&mut rng, self.config.timing_jitter).clamp(-0.5, 0.5);
            t += round * jitter;

            rounds_on_port += 1;
            if rounds_on_port >= self.config.dwell_rounds.max(1) {
                rounds_on_port = 0;
                port = (port + 1) % n_ant;
            }
        }
        reports
    }

    /// Multi-tag inventory (§7's multi-user extension): several tags
    /// share the reader, contending through the Gen2 Q-protocol. Each
    /// round, every powered tag draws a slot; collisions burn the round
    /// with no report, a singleton yields a report for that tag.
    ///
    /// `tags` maps an EPC to its pose trajectory (all trajectories
    /// should cover a similar time span; a tag is out of the running
    /// once its trajectory ends). Downstream, trackers separate the
    /// stream by EPC — exactly the per-tag phase separation the paper
    /// sketches for multi-user whiteboards.
    pub fn inventory_multi(&self, tags: &[(u64, Vec<TagPose>)], seed: u64) -> Vec<TagReport> {
        let mut reports = Vec::new();
        let first = tags
            .iter()
            .filter_map(|(_, p)| p.first().map(|p| p.t))
            .fold(f64::INFINITY, f64::min);
        let last = tags
            .iter()
            .filter_map(|(_, p)| p.last().map(|p| p.t))
            .fold(f64::NEG_INFINITY, f64::max);
        if !first.is_finite() || !last.is_finite() {
            return reports;
        }
        let mut rng = rng_from_seed(seed);
        let frozen = RigFactors::freeze(&self.channel);
        let n_ant = self.channel.antenna_count().max(1);
        let mut q = crate::gen2::QAlgorithm::new((tags.len() as f64).log2().ceil() as u32);
        let mut t = first;
        let mut pose_idx = vec![0usize; tags.len()];
        let mut port = 0usize;

        while t <= last {
            // Which tags are powered (and in time range) this round?
            let mut live: Vec<(usize, crate::reader::TagPose, f64)> = Vec::new();
            for (ti, (_, poses)) in tags.iter().enumerate() {
                while pose_idx[ti] + 1 < poses.len() && poses[pose_idx[ti] + 1].t <= t {
                    pose_idx[ti] += 1;
                }
                let Some(pose) = poses.get(pose_idx[ti]) else { continue };
                if pose.t > t || poses.last().map_or(true, |p| p.t < t) {
                    continue;
                }
                let obs = self.observe(frozen.as_ref(), port, *pose, t);
                if obs.tag_powered {
                    live.push((ti, *pose, obs.rx_power_dbm));
                }
            }

            let outcome = crate::gen2::slot_outcome(&mut rng, live.len(), q.q());
            q.update(outcome);
            let round = match outcome {
                crate::gen2::SlotOutcome::Single => {
                    // The responding tag is uniform among the live set.
                    let (ti, pose, rx) = live[rng.gen_index(live.len())];
                    let snr = self.channel.noise.snr_db(rx);
                    let p_ok = self
                        .config
                        .gen2
                        .scheme
                        .packet_success(snr, crate::gen2::frame::EPC_BITS);
                    if rng.gen_bool(p_ok) {
                        let obs = self.observe(frozen.as_ref(), port, pose, t);
                        let rssi =
                            obs.rx_power_dbm + self.channel.noise.sample_rssi_noise(&mut rng, rx);
                        let phase =
                            obs.phase_rad + self.channel.noise.sample_phase_noise(&mut rng, rx);
                        reports.push(TagReport {
                            t,
                            antenna: port,
                            rssi_dbm: quantize_rssi(rssi, self.config.rssi_step_db),
                            phase_rad: quantize_phase(wrap_tau(phase), self.config.phase_bits),
                            channel: self.channel.plan.channel_at(t),
                            epc: tags[ti].0,
                        });
                    }
                    self.config.gen2.successful_round_duration()
                }
                _ => self.config.gen2.empty_round_duration(),
            };
            let jitter = 1.0 + gaussian(&mut rng, self.config.timing_jitter).clamp(-0.5, 0.5);
            t += round * jitter;
            port = (port + 1) % n_ant;
        }
        reports
    }

    /// Aggregate read rate achieved over a report stream, Hz.
    pub fn achieved_rate_hz(reports: &[TagReport]) -> f64 {
        match (reports.first(), reports.last()) {
            (Some(f), Some(l)) if l.t > f.t => (reports.len() - 1) as f64 / (l.t - f.t),
            _ => 0.0,
        }
    }
}

/// Quantize an RSSI to the reader's reporting step.
pub fn quantize_rssi(rssi_dbm: f64, step_db: f64) -> f64 {
    if step_db <= 0.0 {
        return rssi_dbm;
    }
    (rssi_dbm / step_db).round() * step_db
}

/// Quantize a phase (already wrapped to `[0, 2π)`) to `bits` resolution.
pub fn quantize_phase(phase_rad: f64, bits: u32) -> f64 {
    let levels = f64::from(1u32 << bits.min(31));
    let tau = std::f64::consts::TAU;
    let q = (phase_rad / tau * levels).round() % levels;
    wrap_tau(q * tau / levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_core::Vec3;
    use rf_physics::antenna::Antenna;

    fn static_poses(duration: f64, dipole: Vec3) -> Vec<TagPose> {
        let dt = 0.002;
        let n = (duration / dt) as usize;
        (0..=n)
            .map(|i| TagPose { t: i as f64 * dt, position: Vec3::ZERO, dipole })
            .collect()
    }

    fn bench_reader(n_ant: usize) -> Reader {
        let antennas: Vec<Antenna> = (0..n_ant)
            .map(|i| {
                Antenna::linear(
                    Vec3::new(i as f64 * 0.3 - 0.15, 0.0, 1.0),
                    -Vec3::Z,
                    Vec3::X,
                )
            })
            .collect();
        Reader::new(ChannelModel::free_space(antennas))
    }

    #[test]
    fn static_aligned_tag_reads_at_expected_rate() {
        let reader = bench_reader(1);
        let reports = reader.inventory(&static_poses(2.0, Vec3::X), 1);
        let rate = Reader::achieved_rate_hz(&reports);
        let nominal = reader.config.gen2.read_rate_hz();
        assert!(
            (rate - nominal).abs() / nominal < 0.15,
            "rate {rate} vs nominal {nominal}"
        );
    }

    #[test]
    fn ports_alternate_with_dwell_one() {
        let reader = bench_reader(2);
        let reports = reader.inventory(&static_poses(1.0, Vec3::X), 1);
        let mut alternations = 0;
        for w in reports.windows(2) {
            if w[0].antenna != w[1].antenna {
                alternations += 1;
            }
        }
        assert!(alternations >= reports.len() - 2, "strict alternation expected");
    }

    #[test]
    fn cross_polarized_tag_produces_no_reports_in_free_space() {
        let reader = bench_reader(1);
        let reports = reader.inventory(&static_poses(1.0, Vec3::Y), 1);
        assert!(reports.is_empty(), "got {} reports", reports.len());
    }

    #[test]
    fn reports_are_time_ordered_and_quantized() {
        let reader = bench_reader(2);
        let reports = reader.inventory(&static_poses(1.0, Vec3::X), 9);
        assert!(!reports.is_empty());
        for w in reports.windows(2) {
            assert!(w[0].t < w[1].t);
        }
        for r in &reports {
            let q = (r.rssi_dbm / 0.5).round() * 0.5;
            assert!((r.rssi_dbm - q).abs() < 1e-9, "rssi not on 0.5 dB grid");
            assert!((0.0..std::f64::consts::TAU).contains(&r.phase_rad));
        }
    }

    #[test]
    fn inventory_is_deterministic_in_seed() {
        let reader = bench_reader(2);
        let poses = static_poses(0.5, Vec3::X);
        assert_eq!(reader.inventory(&poses, 5), reader.inventory(&poses, 5));
        assert_ne!(reader.inventory(&poses, 5), reader.inventory(&poses, 6));
    }

    #[test]
    fn empty_pose_list_yields_no_reports() {
        let reader = bench_reader(1);
        assert!(reader.inventory(&[], 1).is_empty());
    }

    #[test]
    fn rssi_quantization_grid() {
        assert_eq!(quantize_rssi(-40.26, 0.5), -40.5);
        assert_eq!(quantize_rssi(-40.24, 0.5), -40.0);
        assert_eq!(quantize_rssi(-40.3, 0.0), -40.3, "step 0 disables");
    }

    #[test]
    fn phase_quantization_wraps_and_grids() {
        let q = quantize_phase(std::f64::consts::TAU - 1e-9, 12);
        assert_eq!(q, 0.0, "top of the circle rounds to level 0");
        let step = std::f64::consts::TAU / 4096.0;
        let q = quantize_phase(2.5 * step, 12);
        assert!((q - 3.0 * step).abs() < 1e-12 || (q - 2.0 * step).abs() < 1e-12);
    }

    #[test]
    fn multi_tag_inventory_reports_all_tags_at_reduced_rate() {
        let reader = bench_reader(1);
        let poses_a = static_poses(2.0, Vec3::X);
        let poses_b = static_poses(2.0, Vec3::new(0.9, 0.3, 0.0).normalized().unwrap());
        let single = reader.inventory(&poses_a, 1).len();
        let multi =
            reader.inventory_multi(&[(0xA, poses_a.clone()), (0xB, poses_b.clone())], 1);
        let a_reads = multi.iter().filter(|r| r.epc == 0xA).count();
        let b_reads = multi.iter().filter(|r| r.epc == 0xB).count();
        assert!(a_reads > 10, "tag A read {a_reads} times");
        assert!(b_reads > 10, "tag B read {b_reads} times");
        // Contention: each tag reads slower than a lone tag would.
        assert!(a_reads < single, "contention must cost rate: {a_reads} vs {single}");
    }

    #[test]
    fn multi_tag_inventory_is_deterministic_and_handles_empty() {
        let reader = bench_reader(1);
        assert!(reader.inventory_multi(&[], 1).is_empty());
        let poses = static_poses(0.5, Vec3::X);
        let a = reader.inventory_multi(&[(1, poses.clone()), (2, poses.clone())], 9);
        let b = reader.inventory_multi(&[(1, poses.clone()), (2, poses)], 9);
        assert_eq!(a, b);
    }

    #[test]
    fn four_port_reader_covers_all_ports() {
        let reader = bench_reader(4);
        let reports = reader.inventory(&static_poses(2.0, Vec3::X), 2);
        for port in 0..4 {
            assert!(
                reports.iter().any(|r| r.antenna == port),
                "port {port} never reported"
            );
        }
    }
}
