//! # rfid-sim — EPC Gen2 UHF RFID reader/tag simulator
//!
//! Replaces the paper's ImpinJ Speedway R420 + Avery Dennison tag with a
//! protocol-level simulation. The tracking algorithms consume exactly
//! what LLRP delivers from real hardware — timestamped
//! `(antenna, RSSI, phase, channel)` tuples — so everything above this
//! crate is hardware-agnostic:
//!
//! * [`modulation`] — the Gen2 uplink encodings (FM0, Miller m = 2/4/8)
//!   with their link frequencies, bit durations and SNR→BER behaviour.
//!   The paper's §4 notes PolarDraw round-robins modulation schemes and
//!   picks the first whose phase variance is low enough; [`modselect`]
//!   reproduces that procedure.
//! * [`gen2`] — inventory-round timing: Query/QueryRep/ACK exchanges,
//!   the Q-algorithm slot counter, and the resulting read rate (~100 Hz
//!   aggregate, as the paper states).
//! * [`reader`] — the reader: multiplexes antenna ports, runs inventory
//!   rounds against the `rf-physics` channel, applies measurement noise
//!   and ImpinJ-style quantization (RSSI in 0.5 dB steps, phase in
//!   12-bit steps), and emits [`TagReport`]s.
//! * [`llrp`] — a compact LLRP-flavoured wire encoding of tag reports
//!   (RO_ACCESS_REPORT), so report streams can be serialized/replayed.
//! * [`faults`] — deterministic fault injection (burst dropouts, port
//!   outages, duplication, bounded reordering, clock jitter/drift,
//!   per-channel phase steps) for degradation testing; an identity
//!   [`faults::FaultPlan`] is a provable no-op.
//! * [`chaos`] — deterministic chaos plans (shard kills at swept cut
//!   points, checkpoint corruption, stalled drains) plus the
//!   byte-corruption model, for the crash/soak harness over the
//!   serving fleet.
//! * [`traffic`] — deterministic synthetic *fleet* workloads (diurnal
//!   arrival cycles, flash crowds, heavy-tail write durations, session
//!   churn) for exercising the serving layers at scale.
//! * [`tracking`] — the [`TrajectoryTracker`] trait implemented by
//!   `polardraw-core` and the `baselines` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod faults;
pub mod gen2;
pub mod llrp;
pub mod modselect;
pub mod modulation;
pub mod reader;
pub mod session;
pub mod tracking;
pub mod traffic;

pub use faults::{FaultInjector, FaultLog, FaultPlan};
pub use modulation::ModulationScheme;
pub use reader::{Reader, ReaderConfig};
pub use tracking::TrajectoryTracker;


/// One successful tag interrogation, as delivered by LLRP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TagReport {
    /// Timestamp, seconds since session start.
    pub t: f64,
    /// Reader antenna port (0-based).
    pub antenna: usize,
    /// Received signal strength, dBm (quantized).
    pub rssi_dbm: f64,
    /// Backscatter phase, radians in `[0, 2π)` (quantized).
    pub phase_rad: f64,
    /// FCC channel index in use for this read.
    pub channel: usize,
    /// Tag EPC (truncated to 64 bits for compactness).
    pub epc: u64,
}

impl rf_core::json::ToJson for TagReport {
    fn to_json(&self) -> rf_core::Json {
        rf_core::Json::obj([
            ("t", rf_core::Json::Num(self.t)),
            ("antenna", rf_core::Json::Num(self.antenna as f64)),
            ("rssi_dbm", rf_core::Json::Num(self.rssi_dbm)),
            ("phase_rad", rf_core::Json::Num(self.phase_rad)),
            ("channel", rf_core::Json::Num(self.channel as f64)),
            // EPCs use the full 64 bits; JSON numbers are f64 and would
            // lose precision past 2^53, so carry the EPC as hex text.
            ("epc", rf_core::Json::str(format!("{:016x}", self.epc))),
        ])
    }
}

impl rf_core::json::FromJson for TagReport {
    fn from_json(v: &rf_core::Json) -> Result<TagReport, rf_core::JsonError> {
        let epc_text = v.get("epc").and_then(rf_core::Json::as_str).ok_or_else(|| {
            rf_core::JsonError { message: "TagReport: missing `epc`".to_string(), offset: 0 }
        })?;
        let epc = u64::from_str_radix(epc_text, 16).map_err(|_| rf_core::JsonError {
            message: format!("TagReport: bad epc `{epc_text}`"),
            offset: 0,
        })?;
        Ok(TagReport {
            t: v.req_f64("t")?,
            antenna: v.req_f64("antenna")? as usize,
            rssi_dbm: v.req_f64("rssi_dbm")?,
            phase_rad: v.req_f64("phase_rad")?,
            channel: v.req_f64("channel")? as usize,
            epc,
        })
    }
}

/// Split a report stream per antenna port, preserving order.
pub fn split_by_antenna(reports: &[TagReport], n_antennas: usize) -> Vec<Vec<TagReport>> {
    let mut out = vec![Vec::new(); n_antennas];
    for r in reports {
        if r.antenna < n_antennas {
            out[r.antenna].push(*r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(t: f64, antenna: usize) -> TagReport {
        TagReport { t, antenna, rssi_dbm: -40.0, phase_rad: 1.0, channel: 24, epc: 0xAB }
    }

    #[test]
    fn split_by_antenna_partitions_in_order() {
        let reports = vec![report(0.0, 0), report(0.01, 1), report(0.02, 0), report(0.03, 1)];
        let split = split_by_antenna(&reports, 2);
        assert_eq!(split[0].len(), 2);
        assert_eq!(split[1].len(), 2);
        assert!(split[0][0].t < split[0][1].t);
    }

    #[test]
    fn split_ignores_out_of_range_ports() {
        let reports = vec![report(0.0, 5)];
        let split = split_by_antenna(&reports, 2);
        assert!(split[0].is_empty() && split[1].is_empty());
    }

    #[test]
    fn tag_report_round_trips_through_json_with_full_epc() {
        use rf_core::json::{FromJson, ToJson};
        let r = TagReport {
            t: 1.2345,
            antenna: 1,
            rssi_dbm: -43.5,
            phase_rad: 3.25,
            channel: 17,
            epc: 0xE280_1160_6000_0001, // > 2^53: would not survive as an f64
        };
        let back =
            TagReport::from_json(&rf_core::Json::parse(&r.to_json().to_json_string()).unwrap())
                .unwrap();
        assert_eq!(back, r);
    }
}
