//! Table 5 & Figure 22: recognition accuracy vs tag-to-reader distance.
//!
//! The paper sweeps 20–140 cm in 20 cm steps and finds a sweet spot:
//! accuracy is *lowest* close-in (RSS responds to both rotation and
//! translation there, §5.2.4), peaks around 100 cm, and sags slightly
//! at 140 cm as multipath-rotated reflections confuse the RSS trends.

use crate::exp::SHORT_LETTERS;
use crate::report::Report;
use crate::runner::{letter_accuracy, run_letter_trials, RunOpts};
use crate::setup::TrialSetup;

/// Distances swept, metres.
pub const DISTANCES_M: [f64; 7] = [0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4];

/// Run the distance sweep; returns the Table 5 report and the Fig. 22
/// view (same data, per-distance detail).
pub fn run(opts: &RunOpts) -> Vec<Report> {
    let mut table5 = Report::new(
        "table5",
        "Recognition accuracy vs tag-to-reader distance",
        "77/83/87/90/91/90/88 % at 20–140 cm (sweet spot near 100 cm)",
    )
    .headers(vec!["Distance (cm)", "Accuracy (%)", "Trials"]);
    let mut fig22 = Report::new(
        "fig22",
        "Accuracy over tag-to-reader distance (comparison-rig view)",
        "same sweep as Table 5, presented per distance",
    )
    .headers(vec!["Distance (cm)", "Accuracy (%)"]);

    for (di, &d) in DISTANCES_M.iter().enumerate() {
        let conditions: Vec<(char, TrialSetup)> = SHORT_LETTERS
            .iter()
            .map(|&ch| {
                let mut s = TrialSetup::letter(ch);
                s.standoff_m = d;
                (ch, s)
            })
            .collect();
        let trials = run_letter_trials(
            &conditions,
            opts.trials.div_ceil(2).max(1),
            opts.seed.wrapping_add(di as u64),
            opts,
        );
        let acc = 100.0 * letter_accuracy(&trials);
        table5.push_row(vec![
            format!("{:.0}", d * 100.0),
            format!("{acc:.0}"),
            trials.len().to_string(),
        ]);
        fig22.push_row(vec![format!("{:.0}", d * 100.0), format!("{acc:.0}")]);
    }
    table5.push_note("the antenna rig stands `distance` off the writing plane");
    vec![table5, fig22]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_papers_range() {
        assert_eq!(DISTANCES_M.len(), 7);
        assert_eq!(DISTANCES_M[0], 0.2);
        assert_eq!(DISTANCES_M[6], 1.4);
        for w in DISTANCES_M.windows(2) {
            assert!((w[1] - w[0] - 0.2).abs() < 1e-12, "20 cm steps");
        }
    }
}
