//! Viterbi decode throughput: the optimized beam decoder across a
//! (cell size × beam width × step count) matrix, plus the retained
//! naive reference at matching workloads so the speedup is measured,
//! not asserted.
//!
//! The workload is the paper-fidelity rig: the default `PolarDrawConfig`
//! board and antennas, a 100-step synthetic observation stream with a
//! slowly-turning direction prior and a hyperbola measurement on every
//! step — the same shape `repro`'s accuracy trials decode thousands of
//! times. `decode/opt/cell2.5mm/beam2500/steps100` versus
//! `decode/ref/cell2.5mm/beam2500/steps100` is the headline pair the
//! committed `BENCH_decode.json` tracks (`scripts/bench.sh` regenerates
//! it; `bench_check --min-speedup` enforces the speedup floor).
//!
//! Kernel rows (see `KernelOptions` in `polardraw_core::hmm`):
//!
//! * `decode/opt/…` — the fast kernel (`KernelOptions::fast()`: f32
//!   tables + adaptive beam), the headline the speedup floor gates.
//! * `decode/exact/…` — the bit-exact f64 SoA path (what every
//!   correctness-critical caller runs by default).
//! * `decode/f32/…` — f32 tables *without* the adaptive beam, so the
//!   adaptive contribution is `f32 / opt` and cannot silently regress
//!   (`scripts/bench.sh` gates it).

use polardraw_bench::harness::Bench;
use polardraw_core::distance::FeasibleRegion;
use polardraw_core::hmm::{
    viterbi_beam, viterbi_reference, viterbi_with_kernel, viterbi_with_stats, FixedLagDecoder,
    Grid, HmmConfig, KernelOptions, StepObservation,
};
use polardraw_core::PolarDrawConfig;
use rf_core::Vec2;

/// The synthetic observation stream every decode bench shares: steady
/// ~4 mm steps with a slowly-turning direction and a constant hyperbola
/// measurement (values match the long-standing `components.rs` decode
/// workload).
fn make_steps(n: usize) -> Vec<StepObservation> {
    (0..n)
        .map(|i| StepObservation {
            region: FeasibleRegion { min_dist: 0.002, max_dist: 0.01 },
            direction: Some(Vec2::from_angle(i as f64 * 0.1)),
            dtheta21: Some(0.3),
            target_dist: 0.004,
        })
        .collect()
}

fn main() {
    let mut bench = Bench::from_args("decode");
    let cfg = PolarDrawConfig::default();
    let hmm = HmmConfig::default();

    // Fast-kernel decoder: cell × beam matrix at the repro step count.
    let steps100 = make_steps(100);
    let fast = KernelOptions::fast();
    for (cell_label, cell_m) in [("cell2.5mm", 0.0025), ("cell5mm", 0.005), ("cell10mm", 0.01)] {
        let grid = Grid::covering(cfg.board_min, cfg.board_max, cell_m);
        let config = HmmConfig { cell_m, ..hmm };
        for beam in [500usize, 2500] {
            bench.bench(&format!("decode/opt/{cell_label}/beam{beam}/steps100"), || {
                viterbi_with_kernel(
                    &grid,
                    cfg.antennas,
                    cfg.start_hint,
                    &steps100,
                    &config,
                    beam,
                    fast,
                )
            });
        }
    }

    // Kernel layers in isolation at the headline workload: the exact
    // f64 SoA path (the default every correctness-critical caller
    // runs) and the f32 path without the adaptive beam (so the
    // adaptive contribution is measurable as `f32 / opt`).
    {
        let grid = Grid::covering(cfg.board_min, cfg.board_max, 0.0025);
        let config = HmmConfig { cell_m: 0.0025, ..hmm };
        bench.bench("decode/exact/cell2.5mm/beam2500/steps100", || {
            viterbi_beam(&grid, cfg.antennas, cfg.start_hint, &steps100, &config, 2500)
        });
        let f32_only = KernelOptions::fast().with_adaptive(None);
        bench.bench("decode/f32/cell2.5mm/beam2500/steps100", || {
            viterbi_with_kernel(
                &grid,
                cfg.antennas,
                cfg.start_hint,
                &steps100,
                &config,
                2500,
                f32_only,
            )
        });
    }

    // Step-count axis (decode cost is linear in steps; this guards it).
    {
        let cell_m = 0.005;
        let grid = Grid::covering(cfg.board_min, cfg.board_max, cell_m);
        let config = HmmConfig { cell_m, ..hmm };
        for n in [25usize, 400] {
            let steps = make_steps(n);
            bench.bench(&format!("decode/opt/cell5mm/beam2500/steps{n}"), || {
                viterbi_with_kernel(
                    &grid,
                    cfg.antennas,
                    cfg.start_hint,
                    &steps,
                    &config,
                    2500,
                    fast,
                )
            });
        }
    }

    // Online per-window step latency at paper fidelity: one
    // `FixedLagDecoder::step` on a long-lived decoder (lag 64, the
    // streaming default), cycling through the synthetic observations so
    // steady state looks like a live session. Each iteration is one
    // window of work; `scripts/verify.sh --quick-bench` gates the
    // median at 10 ms via `bench_check --max-median` — the decoder must
    // keep up with the stream's window period with room to spare.
    {
        let cell_m = 0.0025;
        let grid = Grid::covering(cfg.board_min, cfg.board_max, cell_m);
        let config = HmmConfig { cell_m, ..hmm };
        let mut decoder =
            FixedLagDecoder::new(grid, cfg.antennas, cfg.start_hint, config, 2500, 64);
        let mut i = 0usize;
        bench.bench("decode/online/step/cell2.5mm/beam2500/lag64", || {
            let committed = decoder.step(&steps100[i % steps100.len()]);
            i += 1;
            committed
        });

        // The same live-session step on the fast kernel: what a
        // throughput-first deployment (OnlineOptions::with_kernel)
        // actually pays per window.
        let mut fast_decoder =
            FixedLagDecoder::new(grid, cfg.antennas, cfg.start_hint, config, 2500, 64);
        fast_decoder.set_kernel(fast);
        let mut j = 0usize;
        bench.bench("decode/online/step/fast/cell2.5mm/beam2500/lag64", || {
            let committed = fast_decoder.step(&steps100[j % steps100.len()]);
            j += 1;
            committed
        });
    }

    // Retained naive reference at the two headline workloads.
    for (cell_label, cell_m) in [("cell2.5mm", 0.0025), ("cell5mm", 0.005)] {
        let grid = Grid::covering(cfg.board_min, cfg.board_max, cell_m);
        let config = HmmConfig { cell_m, ..hmm };
        bench.bench(&format!("decode/ref/{cell_label}/beam2500/steps100"), || {
            viterbi_reference(&grid, cfg.antennas, cfg.start_hint, &steps100, &config, 2500)
        });
    }

    // Work counters for the headline workload: what the decode did, not
    // just how long it took.
    {
        let grid = Grid::covering(cfg.board_min, cfg.board_max, 0.0025);
        let (_, stats) =
            viterbi_with_stats(&grid, cfg.antennas, cfg.start_hint, &steps100, &hmm, 2500);
        bench.note(format!(
            "decode/exact/cell2.5mm/beam2500/steps100 work: {} expansions, {} touched cells, \
             {} beam-pruned, {} below-min, mean frontier {:.0}, max frontier {}, \
             {} carried of {} steps",
            stats.expansions,
            stats.touched_cells,
            stats.pruned_beam,
            stats.pruned_below_min,
            stats.mean_frontier(),
            stats.max_frontier,
            stats.carried_steps,
            stats.steps,
        ));
        let (_, fstats) = viterbi_with_kernel(
            &grid,
            cfg.antennas,
            cfg.start_hint,
            &steps100,
            &hmm,
            2500,
            fast,
        );
        bench.note(format!(
            "decode/opt (fast kernel) work: {} expansions, {} touched cells, {} beam-pruned, \
             mean frontier {:.0}, max frontier {}, adaptive shrank {} of {} steps",
            fstats.expansions,
            fstats.touched_cells,
            fstats.pruned_beam,
            fstats.mean_frontier(),
            fstats.max_frontier,
            fstats.adaptive_shrunk_steps,
            fstats.steps,
        ));
        bench.note(format!(
            "grid {}x{} = {} cells; board {:?}..{:?}",
            grid.nx,
            grid.ny,
            grid.len(),
            cfg.board_min,
            cfg.board_max,
        ));
    }

    bench.finish();
}
