//! Ablation benchmarks over the decoder's design knobs (DESIGN.md's
//! "design choices worth ablating"): HMM cell size, beam width, and
//! pre-processing window length. These measure the *runtime* half of
//! each trade-off; the accuracy half comes from the `repro` harness
//! with the corresponding config overrides.

use polardraw_bench::harness::Bench;
use polardraw_bench::letter_reports;
use polardraw_core::hmm::DEFAULT_BEAM_WIDTH;
use polardraw_core::preprocess::{preprocess, PreprocessConfig};
use polardraw_core::{PolarDraw, PolarDrawConfig};
use rfid_sim::TrajectoryTracker;

fn main() {
    let mut bench = Bench::from_args("ablations");

    let cell_reports = letter_reports('S', 21);
    for cell_mm in [2.5f64, 5.0, 10.0] {
        let mut cfg = PolarDrawConfig::default();
        cfg.hmm.cell_m = cell_mm / 1000.0;
        let pd = PolarDraw::new(cfg);
        bench.bench(&format!("ablation/cell_size/{cell_mm}mm"), || pd.track(&cell_reports));
    }

    let window_reports = letter_reports('S', 22);
    for window_ms in [25u64, 50, 100] {
        let cfg = PreprocessConfig {
            window_s: window_ms as f64 / 1000.0,
            ..PreprocessConfig::default()
        };
        bench.bench(&format!("ablation/window_length/{window_ms}ms"), || {
            preprocess(&window_reports, &cfg)
        });
    }

    let smoother_reports = letter_reports('S', 23);
    for (label, on) in [("off", false), ("kalman_rts", true)] {
        let mut cfg = PolarDrawConfig::default();
        cfg.smooth_output = on;
        let pd = PolarDraw::new(cfg);
        bench.bench(&format!("ablation/output_smoother/{label}"), || {
            pd.track(&smoother_reports)
        });
    }

    // Beam width is exercised through `viterbi_beam` in the components
    // bench; assert here (cheaply, once) that the default stays within
    // the range the accuracy sweeps were tuned for.
    assert!((500..=10_000).contains(&DEFAULT_BEAM_WIDTH));

    bench.finish();
}
