//! Translational movement direction estimation (§3.3.2).
//!
//! When the RSS is quiet (little rotation), the pen is translating, and
//! the per-antenna phase trends decode a coarse direction (Table 4):
//! both phases falling = moving up (toward both antennas), both rising =
//! down, split = left/right toward whichever antenna's phase falls.
//!
//! The module also refines the coarse cardinal into a continuous
//! direction estimate by treating the two phase deltas as range-rate
//! measurements along the unit vectors toward each antenna — a tiny
//! least-squares velocity solve that the HMM consumes as its direction
//! prior.

use crate::distance::range_gradient;
use crate::model::{classify_phase_trend, Cardinal};
use rf_core::{wrap_pi, Vec2, Vec3};

/// Tuning for the translational estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranslationConfig {
    /// Carrier wavelength λ, metres.
    pub wavelength_m: f64,
    /// Ignore phase deltas smaller than this, radians (noise floor).
    pub phase_threshold_rad: f64,
}

impl Default for TranslationConfig {
    fn default() -> Self {
        TranslationConfig { wavelength_m: 0.3276, phase_threshold_rad: 0.09 }
    }
}

/// A translational step estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranslationStep {
    /// Coarse Table 4 direction.
    pub cardinal: Cardinal,
    /// Refined unit direction (least-squares over both antennas'
    /// range rates); falls back to the cardinal when the geometry is
    /// degenerate.
    pub direction: Vec2,
    /// Per-antenna range changes Δl_j implied by Eq. 5, metres.
    pub range_deltas: [f64; 2],
}

/// Estimate the translational direction for one window step.
///
/// * `dth` — per-antenna phase deltas (wrapped to `(−π, π]`), radians.
/// * `antenna_xy` — antenna positions projected on the board, metres.
/// * `from` — the pen's current position estimate (for the unit vectors
///   toward the antennas).
pub fn estimate_translation(
    dth: [f64; 2],
    antennas: [Vec3; 2],
    from: Vec2,
    config: &TranslationConfig,
) -> Option<TranslationStep> {
    let d1 = wrap_pi(dth[0]);
    let d2 = wrap_pi(dth[1]);
    let cardinal = classify_phase_trend(d1, d2, config.phase_threshold_rad)?;

    // Eq. 5: Δl_j = Δθ_j · λ / 4π.
    let k = config.wavelength_m / (4.0 * std::f64::consts::PI);
    let dl = [d1 * k, d2 * k];

    // Range-rate geometry: moving the pen by board vector v changes
    // l_j by g_j · v, with g_j the in-plane range gradient (3-D aware).
    // Solve the 2×2 system g_1·v = Δl_1, g_2·v = Δl_2. When the solved
    // displacement is below the noise-equivalent motion the angle is
    // meaningless — fall back to the coarse Table 4 cardinal.
    let noise_floor_m = config.phase_threshold_rad * k;
    let g1 = range_gradient(antennas[0], from);
    let g2 = range_gradient(antennas[1], from);
    let det = g1.x * g2.y - g1.y * g2.x;
    let direction = if det.abs() < 1e-3 {
        cardinal.unit()
    } else {
        let v = Vec2::new(
            (dl[0] * g2.y - dl[1] * g1.y) / det,
            (g1.x * dl[1] - g2.x * dl[0]) / det,
        );
        if v.norm() < noise_floor_m {
            cardinal.unit()
        } else {
            v.normalized().unwrap_or_else(|| cardinal.unit())
        }
    };

    Some(TranslationStep { cardinal, direction, range_deltas: dl })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rig() -> [Vec3; 2] {
        // Antennas 56 cm apart facing the writing block from 65 cm in
        // front, slightly above it (the Fig. 17 geometry).
        [Vec3::new(-0.28, 0.15, 0.65), Vec3::new(0.28, 0.15, 0.65)]
    }

    /// Phase deltas a motion `v` (metres over the window) produces at
    /// the rig: Δθ_j = 4π/λ · (g_j · v).
    fn phase_for_motion(from: Vec2, v: Vec2, cfg: &TranslationConfig) -> [f64; 2] {
        let k = 4.0 * std::f64::consts::PI / cfg.wavelength_m;
        let rig = rig();
        let mut out = [0.0; 2];
        for j in 0..2 {
            let g = range_gradient(rig[j], from);
            out[j] = k * g.dot(v);
        }
        out
    }

    #[test]
    fn cardinal_decoding_matches_table4_at_the_rig() {
        let cfg = TranslationConfig::default();
        // Slightly off the perpendicular bisector: exactly on it,
        // horizontal motion changes both ranges only to second order
        // and produces no measurable phase trend.
        let from = Vec2::new(0.15, 0.5);
        // 6 mm per window ≈ 0.12 m/s, a brisk but legal writing speed;
        // the raised noise threshold needs this much signal.
        let cases = [
            (Vec2::new(0.0, -0.006), Cardinal::Up),
            (Vec2::new(0.0, 0.006), Cardinal::Down),
            (Vec2::new(-0.006, 0.0), Cardinal::Left),
            (Vec2::new(0.006, 0.0), Cardinal::Right),
        ];
        for (v, expect) in cases {
            let dth = phase_for_motion(from, v, &cfg);
            let step = estimate_translation(dth, rig(), from, &cfg).unwrap();
            assert_eq!(step.cardinal, expect, "motion {v:?}");
        }
    }

    #[test]
    fn refined_direction_recovers_the_true_motion() {
        let cfg = TranslationConfig::default();
        let from = Vec2::new(0.18, 0.78); // off-centre: horizontal motion measurable
        for angle_deg in [0.0, 37.0, 90.0, 133.0, 180.0, 241.0, 305.0] {
            let dir = Vec2::from_angle(angle_deg * std::f64::consts::PI / 180.0);
            let v = dir * 0.006;
            let dth = phase_for_motion(from, v, &cfg);
            if let Some(step) = estimate_translation(dth, rig(), from, &cfg) {
                let err = step.direction.dot(dir).clamp(-1.0, 1.0).acos();
                assert!(
                    err < 0.05,
                    "angle {angle_deg}°: recovered off by {:.1}°",
                    err.to_degrees()
                );
            } else {
                panic!("motion at {angle_deg}° not detected");
            }
        }
    }

    #[test]
    fn still_pen_is_none() {
        let cfg = TranslationConfig::default();
        assert!(estimate_translation([0.01, -0.01], rig(), Vec2::new(0.0, 0.7), &cfg).is_none());
    }

    #[test]
    fn range_deltas_follow_eq5() {
        let cfg = TranslationConfig::default();
        let dth = [0.4, -0.2];
        let step = estimate_translation(dth, rig(), Vec2::new(0.0, 0.7), &cfg).unwrap();
        let k = cfg.wavelength_m / (4.0 * std::f64::consts::PI);
        assert!((step.range_deltas[0] - 0.4 * k).abs() < 1e-12);
        assert!((step.range_deltas[1] + 0.2 * k).abs() < 1e-12);
    }

    #[test]
    fn degenerate_geometry_falls_back_to_cardinal() {
        let cfg = TranslationConfig::default();
        // Pen on the rig's symmetry point far away: both gradients are
        // nearly parallel, the 2×2 system is singular.
        let far = Vec2::new(0.0, 50.0);
        let step = estimate_translation([0.3, 0.3], rig(), far, &cfg).unwrap();
        assert_eq!(step.direction, Cardinal::Down.unit());
    }

    #[test]
    fn wrapping_is_applied_to_inputs() {
        let cfg = TranslationConfig::default();
        let tau = std::f64::consts::TAU;
        // Deltas near ±2π are actually small motions.
        let step = estimate_translation([tau - 0.3, tau - 0.3], rig(), Vec2::new(0.0, 0.7), &cfg)
            .unwrap();
        assert_eq!(step.cardinal, Cardinal::Up, "2π − 0.3 wraps to −0.3");
    }
}
