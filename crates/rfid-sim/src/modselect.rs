//! Modulation-scheme selection (§4 of the paper).
//!
//! > "PolarDraw round-robins all available modulation schemes, selecting
//! > the first with the standard deviation of phase variances at most
//! > 0.1 rad² for tag interrogation."
//!
//! We reproduce that procedure: probe each scheme against a short window
//! of reads from a static tag, estimate the phase variance, and return
//! the first scheme under the threshold (falling back to the most robust
//! scheme if none qualifies).

use crate::modulation::ModulationScheme;
use crate::reader::{Reader, TagPose};
use rf_core::rng::derive_seed;

/// The paper's phase-variance acceptance threshold, rad².
pub const PHASE_VARIANCE_THRESHOLD: f64 = 0.1;

/// Result of probing one scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeResult {
    /// The probed scheme.
    pub scheme: ModulationScheme,
    /// Number of reads collected.
    pub reads: usize,
    /// Sample variance of the (unwrapped) phase, rad²; `None` when too
    /// few reads arrived to estimate it.
    pub phase_variance: Option<f64>,
}

/// Probe a single scheme for `probe_s` seconds against a static pose.
pub fn probe_scheme(
    reader: &Reader,
    scheme: ModulationScheme,
    pose: TagPose,
    probe_s: f64,
    seed: u64,
) -> ProbeResult {
    let mut probe_reader = reader.clone();
    probe_reader.config.gen2.scheme = scheme;
    let dt = 0.002;
    let n = (probe_s / dt).ceil() as usize;
    let poses: Vec<TagPose> = (0..=n)
        .map(|i| TagPose { t: pose.t + i as f64 * dt, ..pose })
        .collect();
    let reports = probe_reader.inventory(&poses, derive_seed(seed, "modselect"));
    let phases: Vec<f64> = reports.iter().map(|r| r.phase_rad).collect();
    let unwrapped = rf_core::angle::unwrap_phases(&phases);
    ProbeResult {
        scheme,
        reads: reports.len(),
        phase_variance: rf_core::stats::variance(&unwrapped),
    }
}

/// Run the §4 selection: round-robin all schemes fastest-first, pick the
/// first whose probed phase variance is at most
/// [`PHASE_VARIANCE_THRESHOLD`]; fall back to Miller-8.
pub fn select_scheme(reader: &Reader, pose: TagPose, probe_s: f64, seed: u64) -> ModulationScheme {
    for scheme in ModulationScheme::ALL {
        let probe = probe_scheme(reader, scheme, pose, probe_s, seed);
        if let Some(var) = probe.phase_variance {
            if var <= PHASE_VARIANCE_THRESHOLD {
                return scheme;
            }
        }
    }
    ModulationScheme::Miller8
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_core::Vec3;
    use rf_physics::antenna::Antenna;
    use rf_physics::ChannelModel;

    fn reader_at(height: f64) -> Reader {
        let ant = Antenna::linear(Vec3::new(0.0, 0.0, height), -Vec3::Z, Vec3::X);
        Reader::new(ChannelModel::free_space(vec![ant]))
    }

    fn aligned_pose() -> TagPose {
        TagPose { t: 0.0, position: Vec3::ZERO, dipole: Vec3::X }
    }

    #[test]
    fn strong_link_selects_the_fastest_scheme() {
        let reader = reader_at(1.0);
        let scheme = select_scheme(&reader, aligned_pose(), 0.3, 1);
        assert_eq!(scheme, ModulationScheme::Fm0, "high SNR: FM0 qualifies first");
    }

    #[test]
    fn probe_reports_read_counts_and_variance() {
        let reader = reader_at(1.0);
        let p = probe_scheme(&reader, ModulationScheme::Miller4, aligned_pose(), 0.5, 1);
        assert!(p.reads > 10);
        let var = p.phase_variance.expect("enough reads for a variance");
        assert!(var < PHASE_VARIANCE_THRESHOLD, "var = {var}");
    }

    #[test]
    fn unreadable_tag_falls_back_to_most_robust() {
        // Cross-polarized in free space: no reads at all, no variance,
        // nothing qualifies.
        let reader = reader_at(1.0);
        let pose = TagPose { dipole: Vec3::Y, ..aligned_pose() };
        let scheme = select_scheme(&reader, pose, 0.2, 1);
        assert_eq!(scheme, ModulationScheme::Miller8);
    }

    #[test]
    fn selection_is_deterministic() {
        let reader = reader_at(1.0);
        let a = select_scheme(&reader, aligned_pose(), 0.3, 7);
        let b = select_scheme(&reader, aligned_pose(), 0.3, 7);
        assert_eq!(a, b);
    }
}
