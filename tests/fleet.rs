//! Fleet front-door gates (tier-1, named in scripts/verify.sh).
//!
//! Pins the `FleetRouter` contracts on top of the serve-pool ones:
//!
//! 1. **Migration equivalence** — a live session migrated between
//!    shards (drain → bitwise checkpoint → re-adopt, queued reports
//!    carried over) produces output bit-for-bit identical to never
//!    having moved, at every swept cut point and at thread counts
//!    1/2/8.
//! 2. **No-collapse overload** — under offered load beyond the ingest
//!    bound the fleet defers (never drops) reports, keeps every queue
//!    within its cap, walks the degradation ladder monotonically in
//!    load, and recovers hysteretically once the pressure lifts.

use experiments::setup::{polardraw_config_for, simulate_reports, TrialSetup};
use polardraw_core::fleet::{FleetConfig, FleetRouter};
use polardraw_core::{OnlineOptions, OnlineTracker, PolarDrawConfig, TrackOutput};
use rf_core::rng::derive_seed_indexed;
use rfid_sim::faults::FaultPlan;
use rfid_sim::TagReport;

/// One coarse-grid rig shared by every session (same construction as
/// tests/serve.rs: the board depends only on the letter count).
fn fleet_config() -> PolarDrawConfig {
    polardraw_config_for(&TrialSetup::letter('L').with_cell_scale(6.0))
}

/// Mixed-fault session streams on the shared rig.
fn fleet_streams(n: usize) -> Vec<Vec<TagReport>> {
    let letters = ['L', 'S', 'W', 'Z'];
    (0..n)
        .map(|i| {
            let mut setup =
                TrialSetup::letter(letters[i % letters.len()]).with_cell_scale(6.0);
            setup.faults = match i % 3 {
                0 => None,
                1 => Some(FaultPlan::clean_lab()),
                _ => Some(FaultPlan::flaky_office()),
            };
            let seed = derive_seed_indexed(0xF1EE7, "fleet.pen", i as u64);
            simulate_reports(&setup, seed).1
        })
        .collect()
}

fn options_for(i: usize) -> OnlineOptions {
    OnlineOptions { lag: 8 + 4 * (i % 3), hold: 2, ..OnlineOptions::default() }
}

fn assert_outputs_bitwise_equal(a: &TrackOutput, b: &TrackOutput, ctx: &str) {
    assert_eq!(a.trail.times.len(), b.trail.times.len(), "{ctx}: times length");
    for (x, y) in a.trail.times.iter().zip(&b.trail.times) {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: time bits");
    }
    assert_eq!(a.trail.points.len(), b.trail.points.len(), "{ctx}: points length");
    for (p, q) in a.trail.points.iter().zip(&b.trail.points) {
        assert_eq!(p.x.to_bits(), q.x.to_bits(), "{ctx}: x bits");
        assert_eq!(p.y.to_bits(), q.y.to_bits(), "{ctx}: y bits");
    }
    assert_eq!(a.steps, b.steps, "{ctx}: steps");
    assert_eq!(a.windows, b.windows, "{ctx}: windows");
    assert_eq!(a.decode_stats, b.decode_stats, "{ctx}: decode stats");
    assert_eq!(a.degradation, b.degradation, "{ctx}: degradation report");
}

/// Admitting the first session on a never-seen rig fingerprint must
/// build the shared decode artifacts *at admission* — the first
/// measurement-bearing drain finds a warm cache instead of paying the
/// emission-table cold start on the session's critical path.
#[test]
fn new_rig_admission_prewarms_decode_artifacts() {
    // A cell scale no other test in this binary uses, so this artifact
    // entry is provably cold before the admission below.
    let config = polardraw_config_for(&TrialSetup::letter('O').with_cell_scale(9.0));
    let grid = polardraw_core::hmm::Grid::covering(
        config.board_min,
        config.board_max,
        config.hmm.cell_m,
    );
    let arts =
        polardraw_core::hmm::artifacts_for(&grid, config.antennas, config.hmm.wavelength_m);
    assert!(
        arts.emission_if_built().is_none(),
        "rig must start cold for the prewarm assertion to mean anything"
    );

    let mut fleet = FleetRouter::new(FleetConfig::default());
    let id = fleet.add_session(config, OnlineOptions::batch());
    assert!(
        arts.emission_if_built().is_some(),
        "admission on a new ShardKey must leave the emission table warm before any drain"
    );

    // The warm cache serves the session normally: feed a real stream
    // and check the fleet output matches a lone tracker's.
    let setup = TrialSetup::letter('O').with_cell_scale(9.0);
    let reports = simulate_reports(&setup, derive_seed_indexed(0xF1EE7, "fleet.warm", 0)).1;
    let mut offered = 0;
    while offered < reports.len() {
        offered += fleet.offer(id, &reports[offered..]);
        fleet.drain();
    }
    let fleet_out = fleet.finish_session(id);
    let mut solo = OnlineTracker::new(config, OnlineOptions::batch());
    solo.extend(&reports);
    assert_outputs_bitwise_equal(&fleet_out, &solo.finalize(), "prewarmed fleet vs solo");

    // A second session on the *same* key must not rebuild: same Arc,
    // now additionally held by this test and the cache.
    let before = std::sync::Arc::as_ptr(&arts);
    fleet.add_session(config, OnlineOptions::batch());
    let again =
        polardraw_core::hmm::artifacts_for(&grid, config.antennas, config.hmm.wavelength_m);
    assert_eq!(before, std::sync::Arc::as_ptr(&again), "repeat admission reuses the entry");
}

/// A router whose queue bound never bites and whose controller
/// therefore never degrades — migration must be provable in isolation.
fn unpressured_router(threads: usize) -> FleetRouter {
    FleetRouter::new(FleetConfig {
        shards: 2,
        threads_per_shard: threads,
        queue_cap: usize::MAX / 2,
        soft_session_cap: usize::MAX / 2,
        ..FleetConfig::default()
    })
}

/// The tentpole migration gate: every session cut at a swept point,
/// migrated to the other shard with part of its remainder still queued
/// (un-drained), then finished — bitwise what a lone tracker fed the
/// unbroken stream produces, at thread counts 1/2/8.
#[test]
fn migration_is_bitwise_equivalent_to_never_moving_at_every_cut() {
    let cfg = fleet_config();
    let streams = fleet_streams(4);
    let want: Vec<TrackOutput> = streams
        .iter()
        .enumerate()
        .map(|(i, reports)| {
            let mut solo = OnlineTracker::new(cfg, options_for(i));
            solo.extend(reports);
            solo.finalize()
        })
        .collect();
    let longest = streams.iter().map(|s| s.len()).max().unwrap_or(0);
    let stride = longest / 5 + 1;

    for threads in [1usize, 2, 8] {
        for cut in (0..=longest).step_by(stride) {
            let mut fleet = unpressured_router(threads);
            let ids: Vec<_> =
                (0..streams.len()).map(|i| fleet.add_session(cfg, options_for(i))).collect();
            // First segment, drained before the move…
            for (i, reports) in streams.iter().enumerate() {
                let lo = cut.min(reports.len());
                assert_eq!(fleet.offer(ids[i], &reports[..lo]), lo, "unpressured admits all");
            }
            fleet.drain();
            // …a bite of the remainder left *queued* so the migration
            // must carry live ingest, not just tracker state…
            let mut mids = Vec::new();
            for (i, reports) in streams.iter().enumerate() {
                let lo = cut.min(reports.len());
                let mid = (lo + 17).min(reports.len());
                fleet.offer(ids[i], &reports[lo..mid]);
                mids.push(mid);
            }
            // …the move itself…
            for &id in &ids {
                let from = fleet.shard_of(id);
                let to = (from + 1) % fleet.shards();
                let bytes = fleet.migrate(id, to);
                assert!(bytes > 0, "cut {cut}: migration serialized a checkpoint");
                assert_eq!(fleet.shard_of(id), to, "cut {cut}: session moved");
            }
            // …then the rest of every stream on the new shard.
            for (i, reports) in streams.iter().enumerate() {
                fleet.offer(ids[i], &reports[mids[i]..]);
            }
            fleet.drain();
            assert_eq!(fleet.stats().migrations, ids.len());
            for (id, got) in fleet.finish() {
                assert_outputs_bitwise_equal(
                    &got,
                    &want[id],
                    &format!("session {id}, cut {cut}, threads {threads}"),
                );
            }
        }
    }
}

/// Synthetic per-session load stream (content only matters as decode
/// work; overload behaviour is a queue/controller property).
fn synthetic_report(session: usize, k: usize) -> TagReport {
    TagReport {
        t: k as f64 * 0.01,
        antenna: k % 2,
        rssi_dbm: -55.0 - (session % 7) as f64,
        phase_rad: rf_core::wrap_tau(0.02 * k as f64 + session as f64),
        channel: 0,
        epc: 0xB00C + session as u64,
    }
}

/// Drive one load point against a small bounded queue; returns the
/// router after the loaded rounds (no recovery rounds yet).
fn overloaded_fleet(load: usize, cap: usize, rounds: usize) -> (FleetRouter, Vec<usize>) {
    let cfg = fleet_config();
    let mut fleet = FleetRouter::new(FleetConfig {
        shards: 1,
        threads_per_shard: 1,
        queue_cap: cap,
        soft_session_cap: usize::MAX / 2,
        ..FleetConfig::default()
    });
    let ids: Vec<_> = (0..8).map(|_| fleet.add_session(cfg, OnlineOptions::default())).collect();
    let per_session = 8 * load;
    for r in 0..rounds {
        for (i, &id) in ids.iter().enumerate() {
            let chunk: Vec<TagReport> =
                (0..per_session).map(|k| synthetic_report(i, r * per_session + k)).collect();
            fleet.offer(id, &chunk);
        }
        fleet.drain();
    }
    (fleet, ids)
}

/// The overload property gate: queues bounded by the cap, zero
/// sessions dropped, deferral only past the bound, degradation
/// monotone in load, and full hysteretic recovery once load stops.
#[test]
fn overload_is_bounded_monotone_and_recoverable() {
    let cap = 256;
    let rounds = 12;
    let mut peaks = Vec::new();
    for &load in &[1usize, 2, 4, 8] {
        let (mut fleet, ids) = overloaded_fleet(load, cap, rounds);
        let loaded = fleet.stats();

        // Bounded: the ingest queue never exceeded its cap.
        assert!(
            loaded.peak_pending <= cap,
            "load {load}: peak queue {} exceeds cap {cap}",
            loaded.peak_pending
        );
        // Never dropped: every session still live, every admitted
        // report consumed by a drain.
        assert_eq!(loaded.live, loaded.sessions, "load {load}: sessions shed");
        // Deferral appears only when offered load exceeds capacity.
        let offered_per_round = 8 * 8 * load;
        if offered_per_round <= cap {
            assert_eq!(loaded.offered, loaded.admitted, "load {load}: spurious deferral");
        } else {
            assert!(loaded.offered > loaded.admitted, "load {load}: overload must defer");
        }
        peaks.push(loaded.peak_level);

        // Recovery: calm rounds unwind the ladder completely, and the
        // sessions' effective options return to what they requested.
        for _ in 0..fleet.config().policy.recover_after * fleet.config().policy.max_level() + 1 {
            fleet.drain();
        }
        let recovered = fleet.stats();
        assert_eq!(fleet.level(0), 0, "load {load}: ladder fully unwound");
        assert_eq!(
            recovered.degrade_steps, recovered.recover_steps,
            "load {load}: every step down was stepped back up"
        );
        for &id in &ids {
            assert_eq!(
                fleet.effective_options(id),
                OnlineOptions::default(),
                "load {load}: session {id} back on requested options"
            );
        }
        drop(fleet.finish());
    }
    // Monotone: more load never degrades *less*.
    assert!(
        peaks.windows(2).all(|w| w[0] <= w[1]),
        "peak rung must be monotone in load: {peaks:?}"
    );
    // And the sweep actually exercises the ladder end to end.
    assert_eq!(peaks.first(), Some(&0), "baseline load must not degrade");
    assert_eq!(peaks.last(), Some(&3), "top load must reach the last rung");
}
