//! Online (fixed-lag) decoding sweep: decision lag × disconnect
//! intensity (not in the paper).
//!
//! The batch pipeline is a wrapper over the streaming engine, so the
//! only accuracy question the online mode adds is the decision lag:
//! how much hindsight the fixed-lag Viterbi gives up when it commits
//! points early. This experiment sweeps lag against the composite
//! fault-intensity knob (which includes a mid-stream single-port
//! outage from intensity 0.5 up — the disconnect axis) and reports
//! PolarDraw's median Procrustes error per cell, with the
//! infinite-lag (batch-identical) column as the control.

use crate::exp::SHORT_LETTERS;
use crate::report::Report;
use crate::runner::{parallel_map, RunOpts};
use crate::setup::{polardraw_config_for, simulate_reports, TrialSetup};
use polardraw_core::{OnlineOptions, OnlineTracker};
use recognition::procrustes_distance;
use rfid_sim::faults::FaultPlan;

/// The swept decision lags, in decoder steps (50 ms windows). The last
/// column runs `usize::MAX` — never commit early, i.e. exact batch
/// output.
pub const LAGS: [usize; 4] = [4, 16, 64, usize::MAX];

/// The swept disconnect/fault intensities (0 = clean control; ≥ 0.5
/// includes the single-port outage).
pub const INTENSITIES: [f64; 3] = [0.0, 0.5, 1.0];

fn lag_label(lag: usize) -> String {
    if lag == usize::MAX {
        "lag ∞ = batch (cm)".to_string()
    } else {
        format!("lag {lag} (cm)")
    }
}

fn median_cm(mut ds: Vec<f64>) -> Option<f64> {
    if ds.is_empty() {
        return None;
    }
    ds.sort_by(|a, b| a.total_cmp(b));
    Some(100.0 * ds[ds.len() / 2])
}

/// Run the lag × intensity sweep.
pub fn run(opts: &RunOpts) -> Vec<Report> {
    let mut report = Report::new(
        "streaming",
        "Online fixed-lag decoding: Procrustes error by lag and fault intensity",
        "not in the paper; streaming-engine accuracy cost of committing \
         trail points before the full glyph is observed",
    )
    .headers(
        std::iter::once("Intensity".to_string()).chain(LAGS.iter().map(|&l| lag_label(l))).collect(),
    );
    let trials_per = opts.trials.div_ceil(2).max(1);
    for (ii, &intensity) in INTENSITIES.iter().enumerate() {
        let mut row = vec![format!("{intensity:.2}")];
        for &lag in &LAGS {
            let mut jobs = Vec::new();
            for (ci, &ch) in SHORT_LETTERS.iter().enumerate() {
                let mut setup = TrialSetup::letter(ch);
                setup.cell_scale *= opts.cell_scale;
                setup.faults = Some(FaultPlan::at_intensity(intensity));
                for t in 0..trials_per {
                    // Seeds depend on intensity only — every lag column
                    // tracks the same degraded streams, so columns
                    // differ purely by decision lag.
                    let seed = rf_core::rng::derive_seed_indexed(
                        opts.seed.wrapping_add(900 + ii as u64),
                        "letter",
                        (ci * 10_000 + t) as u64,
                    );
                    jobs.push((setup.clone(), seed));
                }
            }
            let dists = parallel_map(jobs, opts.threads, |(setup, seed)| {
                let (truth, reports) = simulate_reports(setup, *seed);
                let cfg = polardraw_config_for(setup);
                let mut online = OnlineTracker::new(cfg, OnlineOptions { lag, hold: 2, ..OnlineOptions::default() });
                online.extend(&reports);
                let out = online.finalize();
                procrustes_distance(&truth, &out.trail.points, 64)
            });
            let med = median_cm(dists.into_iter().flatten().collect());
            row.push(med.map_or("n/a".to_string(), |d| format!("{d:.1}")));
        }
        report.push_row(row);
    }
    report.push_note(
        "the lag-∞ column is the batch pipeline bit-for-bit (batch mode is a wrapper \
         over the online engine; see tests/online_equivalence.rs)",
    );
    report.push_note(format!(
        "letters {:?}, {trials_per} trial(s) per letter per cell; hold = 2 windows; \
         intensity ≥ 0.5 includes a mid-stream single-port outage",
        SHORT_LETTERS
    ));
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_axis_ends_at_batch_and_intensities_start_clean() {
        assert_eq!(*LAGS.last().unwrap(), usize::MAX);
        assert!(LAGS.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(INTENSITIES[0], 0.0);
        assert!(FaultPlan::at_intensity(INTENSITIES[0]).is_identity());
    }

    #[test]
    fn median_cm_handles_degenerate_inputs() {
        assert_eq!(median_cm(vec![]), None);
        assert_eq!(median_cm(vec![0.02, 0.08, 0.04]), Some(4.0));
    }
}
