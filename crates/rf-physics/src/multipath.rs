//! Multipath: image-method planar reflectors and a bystander scatterer.
//!
//! Two empirical facts from the paper's feasibility study (§2) drive this
//! module's requirements:
//!
//! 1. When the tag is cross-polarized to the reader (β ≈ 90°) it still
//!    occasionally responds "along non-line-of-sight signal propagation
//!    paths, where the signal bounces off nearby objects, changing the
//!    measured phase angle" — the *spurious phase* readings PolarDraw's
//!    pre-processor rejects. Reflections must therefore rotate
//!    polarization, so that some energy survives the LoS null.
//! 2. A bystander standing (static multipath) or walking (dynamic
//!    multipath) near the whiteboard perturbs accuracy only mildly beyond
//!    30 cm (Fig. 16). The bystander is modelled as a discrete scatterer
//!    whose path gain falls with both legs of the detour.

use crate::polarization::rotate_about_axis;
use rf_core::Vec3;

/// An infinite planar reflector (wall, ceiling, desk surface).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reflector {
    /// Any point on the plane.
    pub point: Vec3,
    /// Unit normal.
    pub normal: Vec3,
    /// Amplitude reflection coefficient in `[0, 1]` (drywall ≈ 0.3–0.5,
    /// metal ≈ 0.9).
    pub reflectivity: f64,
    /// Extra polarization rotation applied on reflection, radians.
    /// Real oblique reflections mix s- and p-components; a fixed
    /// per-reflector rotation captures the resulting cross-polarized
    /// leakage without a full Fresnel treatment.
    pub depolarization: f64,
}

impl Reflector {
    /// A wall `offset` metres behind the whiteboard plane (z = −offset).
    pub fn wall_behind(offset: f64, reflectivity: f64, depolarization: f64) -> Reflector {
        Reflector {
            point: Vec3::new(0.0, 0.0, -offset),
            normal: Vec3::Z,
            reflectivity,
            depolarization,
        }
    }

    /// Mirror a point across the reflector plane.
    pub fn mirror(&self, p: Vec3) -> Vec3 {
        let d = (p - self.point).dot(self.normal);
        p - self.normal * (2.0 * d)
    }

    /// Mirror a *direction* (free vector) across the plane.
    pub fn mirror_dir(&self, v: Vec3) -> Vec3 {
        v - self.normal * (2.0 * v.dot(self.normal))
    }

    /// Geometry of the single-bounce path from `src` to `dst`:
    /// `(path_length, arrival_direction_at_dst)`.
    ///
    /// By the image method the reflected path has the length of the
    /// straight line from the mirrored source to the destination, and
    /// arrives from the mirrored source's direction.
    pub fn path(&self, src: Vec3, dst: Vec3) -> (f64, Vec3) {
        let image = self.mirror(src);
        let delta = dst - image;
        let len = delta.norm();
        let dir = delta.normalized().unwrap_or(Vec3::Z);
        (len, dir)
    }

    /// Transform a field polarization vector through the reflection:
    /// mirror it, then apply the depolarization rotation about the
    /// outgoing propagation axis `k_out`.
    pub fn reflect_polarization(&self, e: Vec3, k_out: Vec3) -> Vec3 {
        let mirrored = self.mirror_dir(e);
        rotate_about_axis(mirrored, k_out, self.depolarization) * self.reflectivity
    }
}

/// How the bystander moves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BystanderMotion {
    /// Standing still: static multipath.
    Static,
    /// Pacing sinusoidally along X with the given peak-to-peak amplitude
    /// (m) and cadence (Hz). Walking ≈ 0.5 m at 0.5–1 Hz.
    Walking {
        /// Peak-to-peak excursion, metres.
        amplitude_m: f64,
        /// Pacing frequency, hertz.
        frequency_hz: f64,
    },
}

/// A human bystander near the whiteboard, modelled as a point scatterer
/// with a fixed (random, per-scene) scattered polarization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bystander {
    /// Torso centre at t = 0.
    pub position: Vec3,
    /// Motion model.
    pub motion: BystanderMotion,
    /// Amplitude scattering coefficient (dimensionless, relative to an
    /// isotropic re-radiator); human torso at UHF ≈ 0.1–0.3.
    pub scattering: f64,
    /// Orientation of the scattered field's polarization, radians, about
    /// the outgoing propagation axis. Human tissue scatters with largely
    /// randomized polarization.
    pub depolarization: f64,
}

impl Bystander {
    /// Position at time `t` seconds.
    pub fn position_at(&self, t: f64) -> Vec3 {
        match self.motion {
            BystanderMotion::Static => self.position,
            BystanderMotion::Walking { amplitude_m, frequency_hz } => {
                let dx = 0.5
                    * amplitude_m
                    * (std::f64::consts::TAU * frequency_hz * t).sin();
                self.position + Vec3::new(dx, 0.0, 0.0)
            }
        }
    }

    /// Geometry of the scattered path `src → body(t) → dst`:
    /// `(leg1_length, leg2_length, arrival_direction_at_dst)`.
    pub fn path(&self, src: Vec3, dst: Vec3, t: f64) -> (f64, f64, Vec3) {
        let body = self.position_at(t);
        let l1 = (body - src).norm();
        let delta = dst - body;
        let l2 = delta.norm();
        (l1, l2, delta.normalized().unwrap_or(Vec3::Z))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_across_back_wall() {
        let wall = Reflector::wall_behind(1.0, 0.4, 0.3);
        let m = wall.mirror(Vec3::new(0.5, 0.2, 2.0));
        assert_eq!(m, Vec3::new(0.5, 0.2, -4.0));
        // Mirroring twice is the identity.
        assert_eq!(wall.mirror(m), Vec3::new(0.5, 0.2, 2.0));
    }

    #[test]
    fn mirror_dir_flips_normal_component_only() {
        let wall = Reflector::wall_behind(1.0, 0.4, 0.0);
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(wall.mirror_dir(v), Vec3::new(1.0, 2.0, -3.0));
    }

    #[test]
    fn reflected_path_is_longer_than_direct() {
        let wall = Reflector::wall_behind(1.5, 0.4, 0.0);
        let src = Vec3::new(0.0, 0.0, 2.0);
        let dst = Vec3::new(0.3, 0.1, 0.0);
        let (len, _) = wall.path(src, dst);
        assert!(len > src.distance(dst));
    }

    #[test]
    fn reflected_path_obeys_image_geometry() {
        // Source and destination equidistant from the wall: the bounce
        // path length equals the direct distance between the mirrored
        // endpoints (classic image construction).
        let wall = Reflector { point: Vec3::ZERO, normal: Vec3::Z, reflectivity: 1.0, depolarization: 0.0 };
        let src = Vec3::new(-1.0, 0.0, 1.0);
        let dst = Vec3::new(1.0, 0.0, 1.0);
        let (len, dir) = wall.path(src, dst);
        assert!((len - 2.0 * 2f64.sqrt()).abs() < 1e-12);
        // Arrives travelling up and to the right at 45°.
        assert!((dir.x - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((dir.z - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn reflection_attenuates_field() {
        let wall = Reflector::wall_behind(1.0, 0.4, 0.0);
        let e = Vec3::X;
        let r = wall.reflect_polarization(e, Vec3::Z);
        assert!((r.norm() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn depolarization_injects_cross_component() {
        // An X-polarized field reflecting with nonzero depolarization
        // acquires a Y component — the energy that survives the LoS
        // cross-polarization null and causes spurious phases.
        let wall = Reflector::wall_behind(1.0, 1.0, 0.5);
        let r = wall.reflect_polarization(Vec3::X, Vec3::Z);
        assert!(r.y.abs() > 0.4);
    }

    #[test]
    fn static_bystander_does_not_move() {
        let b = Bystander {
            position: Vec3::new(0.5, 0.0, 0.6),
            motion: BystanderMotion::Static,
            scattering: 0.2,
            depolarization: 0.7,
        };
        assert_eq!(b.position_at(0.0), b.position_at(10.0));
    }

    #[test]
    fn walking_bystander_oscillates() {
        let b = Bystander {
            position: Vec3::new(0.5, 0.0, 0.6),
            motion: BystanderMotion::Walking { amplitude_m: 0.5, frequency_hz: 0.5 },
            scattering: 0.2,
            depolarization: 0.7,
        };
        let quarter = b.position_at(0.5); // quarter period: peak excursion
        assert!((quarter.x - 0.75).abs() < 1e-9);
        let full = b.position_at(2.0); // full period: back to start
        assert!((full.x - 0.5).abs() < 1e-9);
    }

    #[test]
    fn bystander_path_lengths_are_positive_detours() {
        let b = Bystander {
            position: Vec3::new(0.3, 0.2, 0.5),
            motion: BystanderMotion::Static,
            scattering: 0.2,
            depolarization: 0.0,
        };
        let src = Vec3::new(0.0, -0.1, 1.5);
        let dst = Vec3::new(0.4, 0.3, 0.0);
        let (l1, l2, _) = b.path(src, dst, 0.0);
        assert!(l1 + l2 > src.distance(dst));
    }
}
