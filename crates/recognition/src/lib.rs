//! # recognition — trajectory similarity and handwriting recognition
//!
//! The paper measures PolarDraw three ways (§5.1): character/word
//! *recognition accuracy* (via the LipiTk recognizer), trajectory
//! *similarity* (Procrustes distance against ground truth), and the
//! letter *confusion matrix*. LipiTk is a Java toolkit we cannot ship,
//! so this crate provides a template recognizer with the same role:
//!
//! * [`resample`] — arc-length resampling and centroid/scale
//!   normalization of trajectories.
//! * [`procrustes`] — optimal similarity alignment (translation,
//!   rotation, scale — reflection excluded) and the residual distance
//!   the paper reports in Fig. 19.
//! * [`dtw`] — dynamic time warping, an alternative matcher used for
//!   cross-checks and ablations.
//! * [`recognizer`] — letter and dictionary-word recognition by nearest
//!   template under rotation-constrained Procrustes distance. Templates
//!   are rendered through the same `pen-sim` glyph pipeline the
//!   synthetic writer uses — mirroring how LipiTk's templates match the
//!   alphabet the volunteers wrote.
//! * [`confusion`] — confusion matrices (Fig. 14) and accuracy
//!   aggregation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod confusion;
pub mod dtw;
pub mod procrustes;
pub mod recognizer;
pub mod resample;

pub use confusion::ConfusionMatrix;
pub use procrustes::{procrustes_distance, ProcrustesAlignment};
pub use recognizer::{LetterRecognizer, WordRecognizer};
