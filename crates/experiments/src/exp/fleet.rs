//! Multi-session serving sweep: a fleet of pens on one rig through
//! `polardraw_core::serve::ServePool` (not in the paper).
//!
//! The paper's §3.5 real-time claim covers one pen; the ROADMAP's
//! north star is many concurrent sessions. This experiment sweeps the
//! session count and reports what the serving layer *does* —
//! wake/skip behaviour, artifact sharing, and the determinism check
//! against per-session sequential runs. The table's columns are
//! deterministic (reruns are byte-identical, like every other
//! committed result); wall-clock throughput lives in the notes because
//! it is a property of the measurement host, and the committed
//! throughput baseline lives in `BENCH_throughput.json` (see
//! `scripts/bench.sh`).

use crate::report::Report;
use crate::runner::RunOpts;
use crate::setup::{polardraw_config_for, simulate_reports, TrialSetup};
use polardraw_core::serve::ServePool;
use polardraw_core::{OnlineOptions, OnlineTracker, TrackOutput};
use rfid_sim::faults::FaultPlan;
use rfid_sim::TagReport;
use std::sync::Arc;
use std::time::Instant;

/// The swept fleet sizes.
pub const SESSIONS: [usize; 4] = [1, 2, 4, 8];

/// The letters the fleet cycles through (same rig: the board depends
/// only on the letter count, so every session shares one config).
const LETTERS: [char; 4] = ['L', 'S', 'W', 'Z'];

fn fleet_streams(n: usize, opts: &RunOpts) -> Vec<Vec<TagReport>> {
    (0..n)
        .map(|i| {
            let mut setup = TrialSetup::letter(LETTERS[i % LETTERS.len()]);
            setup.cell_scale *= opts.cell_scale;
            if i % 2 == 1 {
                setup.faults = Some(FaultPlan::flaky_office());
            }
            let seed = rf_core::rng::derive_seed_indexed(opts.seed, "fleet.pen", i as u64);
            simulate_reports(&setup, seed).1
        })
        .collect()
}

fn outputs_equal(a: &TrackOutput, b: &TrackOutput) -> bool {
    a.trail.points.len() == b.trail.points.len()
        && a.trail.points.iter().zip(&b.trail.points).all(|(p, q)| {
            p.x.to_bits() == q.x.to_bits() && p.y.to_bits() == q.y.to_bits()
        })
        && a.decode_stats == b.decode_stats
}

/// Run the session-count sweep.
pub fn run(opts: &RunOpts) -> Vec<Report> {
    let mut report = Report::new(
        "fleet",
        "Multi-session serving: fleet size vs pool behaviour on one rig",
        "not in the paper; the serving layer for the ROADMAP's many-user \
         north star — shared decode artifacts plus a session worker pool",
    )
    .headers(vec![
        "Sessions".to_string(),
        "Reports".to_string(),
        "Drains".to_string(),
        "Wakes".to_string(),
        "Idle skips".to_string(),
        "Points".to_string(),
        "Shared table".to_string(),
        "Bitwise == sequential".to_string(),
    ]);

    let mut pool_secs = Vec::new();
    let mut seq_secs = Vec::new();
    for &n in &SESSIONS {
        let setup0 = {
            let mut s = TrialSetup::letter(LETTERS[0]);
            s.cell_scale *= opts.cell_scale;
            s
        };
        let cfg = polardraw_config_for(&setup0);
        let streams = fleet_streams(n, opts);
        let options = OnlineOptions::default();

        // Sequential reference (and its wall time).
        let t0 = Instant::now();
        let want: Vec<TrackOutput> = streams
            .iter()
            .map(|reports| {
                let mut solo = OnlineTracker::new(cfg, options);
                solo.extend(reports);
                solo.finalize()
            })
            .collect();
        seq_secs.push(t0.elapsed().as_secs_f64());

        // Pool run, chunked enqueues so drains interleave sessions.
        let t1 = Instant::now();
        let mut pool = ServePool::new(opts.threads);
        let ids: Vec<_> = (0..n).map(|_| pool.add_session(cfg, options)).collect();
        let chunk = 64;
        let longest = streams.iter().map(|s| s.len()).max().unwrap_or(0);
        let mut at = 0;
        while at < longest {
            for (i, reports) in streams.iter().enumerate() {
                let lo = at.min(reports.len());
                let hi = (at + chunk).min(reports.len());
                pool.enqueue_batch(ids[i], &reports[lo..hi]);
            }
            pool.drain();
            at += chunk;
        }
        let stats = pool.stats();
        let shared = {
            let mut handles = ids
                .iter()
                .filter_map(|&id| pool.tracker(id).decoder().artifacts().cloned());
            match handles.next() {
                Some(first) => handles.all(|h| Arc::ptr_eq(&h, &first)),
                None => false,
            }
        };
        let got = pool.finish();
        pool_secs.push(t1.elapsed().as_secs_f64());

        let bitwise = got.len() == want.len()
            && got.iter().zip(&want).all(|(g, w)| outputs_equal(g, w));
        report.push_row(vec![
            n.to_string(),
            streams.iter().map(|s| s.len()).sum::<usize>().to_string(),
            stats.drains.to_string(),
            stats.wakes.to_string(),
            (stats.drains * n - stats.wakes).to_string(),
            stats.committed.to_string(),
            if shared { "yes" } else { "no" }.to_string(),
            if bitwise { "yes" } else { "no" }.to_string(),
        ]);
    }

    report.push_note(
        "every session shares one rig config, so all decoders resolve one \
         DecodeArtifacts entry (one EmissionTable build + one copy in memory); \
         'Idle skips' counts drain rounds that left a session asleep \
         (empty queue) — the wake model's saving",
    );
    report.push_note(format!(
        "host-dependent wall times this run (not committed as columns): \
         sequential {:?} s, pool@{} threads {:?} s per fleet size {:?}; the \
         committed throughput baseline is BENCH_throughput.json",
        seq_secs.iter().map(|s| (s * 1e3).round() / 1e3).collect::<Vec<_>>(),
        opts.threads,
        pool_secs.iter().map(|s| (s * 1e3).round() / 1e3).collect::<Vec<_>>(),
        SESSIONS,
    ));
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_sizes_grow_and_letters_share_a_board() {
        assert!(SESSIONS.windows(2).all(|w| w[0] < w[1]));
        // One rig for the whole fleet: every letter setup resolves the
        // same PolarDraw config (the board depends on letter count).
        let a = polardraw_config_for(&TrialSetup::letter(LETTERS[0]));
        let b = polardraw_config_for(&TrialSetup::letter(LETTERS[3]));
        assert_eq!(a.board_min, b.board_min);
        assert_eq!(a.board_max, b.board_max);
        assert_eq!(a.antennas, b.antennas);
    }
}
