//! Procrustes analysis: optimal similarity alignment of two point
//! sequences and the residual distance metric of Fig. 19.
//!
//! Given equal-length sequences `X` (reference / ground truth) and `Y`
//! (recovered), we find translation, rotation and uniform scale applied
//! to `Y` minimizing the sum of squared errors against `X`. Treating
//! points as complex numbers the optimum is closed-form:
//! `a = Σ x·conj(y) / Σ|y|²` after centering, giving scale `|a|` and
//! rotation `arg a`. Reflections are *excluded* (a mirrored letter is a
//! different letter).

use rf_core::{Complex, Vec2};

/// The result of aligning `recovered` onto `reference`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcrustesAlignment {
    /// Rotation applied, radians (counter-clockwise).
    pub rotation_rad: f64,
    /// Uniform scale applied.
    pub scale: f64,
    /// Translation applied after rotation/scale, metres.
    pub translation: Vec2,
    /// Root-mean-square residual after alignment, in the reference's
    /// units (the paper's "Procrustes distance", reported in cm).
    pub rms_residual: f64,
    /// The transformed recovered points.
    pub aligned: Vec<Vec2>,
}

fn as_complex(v: Vec2) -> Complex {
    Complex::new(v.x, v.y)
}

/// Align `recovered` onto `reference` with the optimal similarity
/// transform (no reflection). Sequences must have equal nonzero length.
///
/// `max_rotation_rad` clamps the rotation: pass `f64::INFINITY` for the
/// unconstrained classic solution, or a bound (e.g. 30°) when matching
/// letters — otherwise an `M` would align perfectly onto a `W`.
pub fn align(
    reference: &[Vec2],
    recovered: &[Vec2],
    max_rotation_rad: f64,
) -> Option<ProcrustesAlignment> {
    if reference.len() != recovered.len() || reference.is_empty() {
        return None;
    }
    let n = reference.len() as f64;
    let cx = crate::resample::centroid(reference);
    let cy = crate::resample::centroid(recovered);

    let mut num = Complex::ZERO;
    let mut den = 0.0;
    for (&x, &y) in reference.iter().zip(recovered) {
        let xc = as_complex(x - cx);
        let yc = as_complex(y - cy);
        num += xc * yc.conj();
        den += yc.norm_sq();
    }
    if den < 1e-18 {
        return None;
    }
    let a = num / Complex::new(den, 0.0);
    let mut rotation = a.arg();
    let mut scale = a.abs();
    if rotation.abs() > max_rotation_rad {
        // Clamp the rotation, then re-solve the scale for the clamped
        // rotation: s* = Re(Σ x·conj(y)·e^{jθ…}) — projection onto the
        // fixed-rotation direction, floored at zero.
        rotation = rotation.clamp(-max_rotation_rad, max_rotation_rad);
        let rotated = num * Complex::cis(-rotation);
        scale = (rotated.re / den).max(0.0);
    }

    let transform = Complex::from_polar(scale, rotation);
    let mut sse = 0.0;
    let mut aligned = Vec::with_capacity(recovered.len());
    for (&x, &y) in reference.iter().zip(recovered) {
        let yc = as_complex(y - cy);
        let mapped = transform * yc;
        let p = Vec2::new(mapped.re + cx.x, mapped.im + cx.y);
        aligned.push(p);
        sse += (p - x).norm_sq();
    }
    Some(ProcrustesAlignment {
        rotation_rad: rotation,
        scale,
        translation: cx - cy,
        rms_residual: (sse / n).sqrt(),
        aligned,
    })
}

/// The Fig. 19 metric: resample both trajectories to `n` points, align
/// with unconstrained rotation, and return the RMS residual in the
/// reference's physical units.
pub fn procrustes_distance(reference: &[Vec2], recovered: &[Vec2], n: usize) -> Option<f64> {
    let r = crate::resample::resample(reference, n)?;
    let y = crate::resample::resample(recovered, n)?;
    Some(align(&r, &y, f64::INFINITY)?.rms_residual)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_core::Mat2;

    fn sample_shape() -> Vec<Vec2> {
        // An asymmetric zig so rotation/reflection matter.
        vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(0.1, 0.02),
            Vec2::new(0.15, 0.12),
            Vec2::new(0.25, 0.05),
            Vec2::new(0.3, 0.2),
        ]
    }

    #[test]
    fn identical_shapes_have_zero_distance() {
        let s = sample_shape();
        let d = procrustes_distance(&s, &s, 32).unwrap();
        assert!(d < 1e-12);
    }

    #[test]
    fn similarity_transforms_are_fully_removed() {
        let s = sample_shape();
        let rot = Mat2::rotation(0.4);
        let moved: Vec<Vec2> =
            s.iter().map(|&p| rot.apply(p) * 2.5 + Vec2::new(1.0, -3.0)).collect();
        let d = procrustes_distance(&s, &moved, 32).unwrap();
        assert!(d < 1e-9, "distance {d}");
        let a = align(&s, &moved, f64::INFINITY).unwrap();
        assert!((a.rotation_rad + 0.4).abs() < 1e-9, "undoes the rotation");
        assert!((a.scale - 0.4).abs() < 1e-9, "undoes the 2.5× scale");
    }

    #[test]
    fn reflection_is_not_removed() {
        let s = sample_shape();
        let mirrored: Vec<Vec2> = s.iter().map(|&p| Vec2::new(-p.x, p.y)).collect();
        let d = procrustes_distance(&s, &mirrored, 32).unwrap();
        assert!(d > 0.01, "a mirrored shape must not match, d = {d}");
    }

    #[test]
    fn rotation_clamp_limits_alignment() {
        let s = sample_shape();
        let rot = Mat2::rotation(1.0);
        let moved: Vec<Vec2> = s.iter().map(|&p| rot.apply(p)).collect();
        let free = align(&s, &moved, f64::INFINITY).unwrap();
        assert!(free.rms_residual < 1e-9);
        let clamped = align(&s, &moved, 0.3).unwrap();
        assert!((clamped.rotation_rad.abs() - 0.3).abs() < 1e-12);
        assert!(clamped.rms_residual > free.rms_residual + 1e-6);
    }

    #[test]
    fn residual_measures_actual_error() {
        let s = sample_shape();
        // Perturb one point by 5 cm: RMS over 5 points ≈ 5/√5 ≈ 2.2 cm.
        let mut noisy = s.clone();
        noisy[2] += Vec2::new(0.05, 0.0);
        let a = align(&s, &noisy, f64::INFINITY).unwrap();
        assert!(a.rms_residual > 0.005 && a.rms_residual < 0.03, "rms {}", a.rms_residual);
    }

    #[test]
    fn mismatched_lengths_are_none() {
        assert!(align(&sample_shape(), &sample_shape()[1..], 1.0).is_none());
        assert!(align(&[], &[], 1.0).is_none());
    }

    #[test]
    fn degenerate_recovered_is_none() {
        let s = sample_shape();
        let flat = vec![Vec2::new(0.5, 0.5); 5];
        assert!(align(&s, &flat, f64::INFINITY).is_none());
    }

    #[test]
    fn aligned_points_are_returned() {
        let s = sample_shape();
        let moved: Vec<Vec2> = s.iter().map(|&p| p + Vec2::new(0.7, 0.7)).collect();
        let a = align(&s, &moved, f64::INFINITY).unwrap();
        for (orig, al) in s.iter().zip(&a.aligned) {
            assert!(orig.distance(*al) < 1e-9);
        }
    }
}
