//! Writing scenes: whiteboard sessions, in-air sessions, and the §2
//! feasibility rigs (turntable rotation, linear translation).

use crate::kinematics::{PenPose, WristModel};
use crate::path::{join_strokes, place_glyph, timed_path};
use crate::profile::WriterProfile;
use crate::{glyph, GroundTruth};
use rf_core::rng::{gaussian, rng_from_seed};
use rf_core::{Vec2, Vec3};

/// Out-of-plane wobble model for in-air writing.
///
/// Without the physical board, the hand drifts out of the virtual
/// writing plane; the tracker's planar distance inference then sees
/// phantom displacement, which is the paper's explanation for the ~8 %
/// accuracy drop in Fig. 15.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AirModel {
    /// Peak wobble out of the plane, metres (a few cm).
    pub wobble_amplitude_m: f64,
    /// Wobble period, seconds.
    pub wobble_period_s: f64,
    /// Additional random walk step per √s, metres.
    pub drift_sigma_m: f64,
}

impl Default for AirModel {
    fn default() -> Self {
        AirModel { wobble_amplitude_m: 0.03, wobble_period_s: 2.5, drift_sigma_m: 0.01 }
    }
}

/// Which polarization formalism the RF substrate should run for this
/// scene. pen-sim does not depend on rf-physics, so this is a plain
/// config tag; the experiment harness maps it onto the channel's
/// `Polarimetry` when it builds the rig.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChannelMode {
    /// The paper's scalar cos²β-per-leg reduction (default; what every
    /// committed artifact was produced under).
    #[default]
    Scalar,
    /// Full Jones-calculus propagation.
    Jones,
}

impl ChannelMode {
    /// Stable config-string form (`"scalar"` / `"jones"`).
    pub fn as_str(self) -> &'static str {
        match self {
            ChannelMode::Scalar => "scalar",
            ChannelMode::Jones => "jones",
        }
    }

    /// Parse the config-string form. `None` for unknown strings.
    pub fn parse(s: &str) -> Option<ChannelMode> {
        match s {
            "scalar" => Some(ChannelMode::Scalar),
            "jones" => Some(ChannelMode::Jones),
            _ => None,
        }
    }
}

/// Where and how the writing happens.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scene {
    /// Top-left corner of the writing area on the board, metres.
    /// The default antenna rig sits above y = 0, so y ≈ 0.6–0.9 m puts
    /// the pen at the paper's typical tag-to-reader distances.
    pub origin: Vec2,
    /// `Some` for in-air writing.
    pub air: Option<AirModel>,
    /// Pose sampling period, seconds. The RF substrate interpolates
    /// nothing: it evaluates the channel at every pose, so this must be
    /// finer than the reader's read interval (~10 ms).
    pub sample_dt: f64,
    /// Horizontal gap between letters as a fraction of letter size.
    pub letter_gap: f64,
    /// Polarization formalism for the RF substrate.
    pub channel: ChannelMode,
}

impl Default for Scene {
    fn default() -> Self {
        Scene {
            origin: Vec2::new(-0.2, 0.65),
            air: None,
            sample_dt: 0.002,
            letter_gap: 0.25,
            channel: ChannelMode::Scalar,
        }
    }
}

impl Scene {
    /// A whiteboard scene centred at the given tag-to-reader distance
    /// (approximately: the writing area is placed `distance` below the
    /// antenna midpoint).
    pub fn at_distance(distance_m: f64) -> Scene {
        Scene { origin: Vec2::new(-0.2, distance_m), ..Scene::default() }
    }

    /// The in-air variant of this scene.
    pub fn in_air(mut self) -> Scene {
        self.air = Some(AirModel::default());
        self
    }
}

impl rf_core::json::ToJson for AirModel {
    fn to_json(&self) -> rf_core::Json {
        rf_core::Json::obj([
            ("wobble_amplitude_m", rf_core::Json::Num(self.wobble_amplitude_m)),
            ("wobble_period_s", rf_core::Json::Num(self.wobble_period_s)),
            ("drift_sigma_m", rf_core::Json::Num(self.drift_sigma_m)),
        ])
    }
}

impl rf_core::json::FromJson for AirModel {
    fn from_json(v: &rf_core::Json) -> Result<AirModel, rf_core::JsonError> {
        Ok(AirModel {
            wobble_amplitude_m: v.req_f64("wobble_amplitude_m")?,
            wobble_period_s: v.req_f64("wobble_period_s")?,
            drift_sigma_m: v.req_f64("drift_sigma_m")?,
        })
    }
}

impl rf_core::json::ToJson for Scene {
    fn to_json(&self) -> rf_core::Json {
        rf_core::Json::obj([
            ("origin", self.origin.to_json()),
            ("air", self.air.as_ref().map_or(rf_core::Json::Null, |a| a.to_json())),
            ("sample_dt", rf_core::Json::Num(self.sample_dt)),
            ("letter_gap", rf_core::Json::Num(self.letter_gap)),
            ("channel", rf_core::Json::Str(self.channel.as_str().to_string())),
        ])
    }
}

impl rf_core::json::FromJson for Scene {
    fn from_json(v: &rf_core::Json) -> Result<Scene, rf_core::JsonError> {
        let air = match v.get("air") {
            None | Some(rf_core::Json::Null) => None,
            Some(a) => Some(AirModel::from_json(a)?),
        };
        let origin = v.get("origin").ok_or_else(|| rf_core::JsonError {
            message: "Scene: missing `origin`".to_string(),
            offset: 0,
        })?;
        // Scenes serialized before the Jones channel existed carry no
        // `channel` field: those are scalar by construction.
        let channel = match v.get("channel") {
            None | Some(rf_core::Json::Null) => ChannelMode::Scalar,
            Some(c) => c
                .as_str()
                .and_then(ChannelMode::parse)
                .ok_or_else(|| rf_core::JsonError {
                    message: "Scene: unknown `channel` (want \"scalar\" or \"jones\")".to_string(),
                    offset: 0,
                })?,
        };
        Ok(Scene {
            origin: rf_core::Vec2::from_json(origin)?,
            air,
            sample_dt: v.req_f64("sample_dt")?,
            letter_gap: v.req_f64("letter_gap")?,
            channel,
        })
    }
}

/// A complete writing session: the pen poses the RF substrate will
/// observe, and the planar ground truth the evaluation compares against.
#[derive(Debug, Clone, PartialEq)]
pub struct Session {
    /// Full pen poses (tip + dipole) over time.
    pub poses: Vec<PenPose>,
    /// Ground-truth tip trajectory on the (virtual) writing plane.
    pub truth: GroundTruth,
    /// The text that was written.
    pub text: String,
}

/// Write `text` (A–Z, case-insensitive; other characters skipped) in the
/// given scene with the given writer. Deterministic in `seed`.
pub fn write_text(scene: &Scene, profile: &WriterProfile, text: &str, seed: u64) -> Session {
    let mut rng = rng_from_seed(seed);
    let size = profile.letter_size_m;
    let advance = size * 0.7 + size * scene.letter_gap;

    // Lay out every letter's strokes left to right, then join into one
    // continuous polyline (the tag never stops responding).
    let mut strokes: Vec<Vec<Vec2>> = Vec::new();
    let mut cursor = scene.origin;
    for ch in text.chars() {
        if let Some(g) = glyph(ch) {
            strokes.extend(place_glyph(&g, cursor, size));
            cursor.x += advance;
        }
    }
    let polyline = join_strokes(&strokes);
    let path = timed_path(&polyline, profile.speed_mps, scene.sample_dt, 0.0);
    let mut poses = profile.wrist.animate(&path, &mut rng);

    // In-air wobble: displace the tip out of the plane and slightly
    // within it.
    if let Some(air) = &scene.air {
        let phase0: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let mut drift = 0.0;
        let mut prev_t = poses.first().map_or(0.0, |p| p.t);
        for pose in &mut poses {
            let dt = (pose.t - prev_t).max(0.0);
            prev_t = pose.t;
            drift += gaussian(&mut rng, air.drift_sigma_m) * dt.sqrt();
            let wobble = air.wobble_amplitude_m
                * (std::f64::consts::TAU * pose.t / air.wobble_period_s + phase0).sin();
            pose.tip.z += wobble + drift;
        }
    }

    let truth = GroundTruth {
        times: path.iter().map(|p| p.t).collect(),
        points: path.iter().map(|p| p.pos).collect(),
    };
    Session { poses, truth, text: text.to_string() }
}

/// The §2 feasibility rig, case 1: a tag on a turntable directly under
/// the antenna, rotating in the board-parallel plane at constant angular
/// velocity. The dipole sweeps through all polarization mismatch angles.
pub fn turntable_session(
    center: Vec3,
    angular_velocity_rad_s: f64,
    duration_s: f64,
    dt: f64,
) -> Vec<PenPose> {
    let steps = (duration_s / dt).ceil() as usize;
    (0..=steps)
        .map(|i| {
            let t = i as f64 * dt;
            let a = angular_velocity_rad_s * t;
            PenPose {
                t,
                tip: center,
                dipole: WristModel::dipole_from_angles(a, 0.0),
                azimuth: a,
                elevation: 0.0,
            }
        })
        .collect()
}

/// The §2 feasibility rig, case 2: a tag translated back and forth along
/// X over `extent_m` (peak-to-peak) with fixed orientation at board-plane
/// azimuth `azimuth_rad` (0 = aligned with an X-polarized antenna).
pub fn translation_session(
    center: Vec3,
    azimuth_rad: f64,
    extent_m: f64,
    period_s: f64,
    duration_s: f64,
    dt: f64,
) -> Vec<PenPose> {
    let steps = (duration_s / dt).ceil() as usize;
    let dipole = WristModel::dipole_from_angles(azimuth_rad, 0.0);
    (0..=steps)
        .map(|i| {
            let t = i as f64 * dt;
            let dx = 0.5 * extent_m * (std::f64::consts::TAU * t / period_s).sin();
            PenPose {
                t,
                tip: center + Vec3::new(dx, 0.0, 0.0),
                dipole,
                azimuth: azimuth_rad,
                elevation: 0.0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writing_produces_poses_and_truth_of_equal_length() {
        let s = write_text(&Scene::default(), &WriterProfile::natural(), "AB", 1);
        assert_eq!(s.poses.len(), s.truth.points.len());
        assert!(!s.poses.is_empty());
        assert_eq!(s.text, "AB");
    }

    #[test]
    fn writing_is_deterministic_in_seed() {
        let a = write_text(&Scene::default(), &WriterProfile::natural(), "HI", 7);
        let b = write_text(&Scene::default(), &WriterProfile::natural(), "HI", 7);
        assert_eq!(a, b);
        let c = write_text(&Scene::default(), &WriterProfile::natural(), "HI", 8);
        assert_ne!(a.poses, c.poses, "different seed, different tremor");
    }

    #[test]
    fn letters_advance_left_to_right() {
        let s = write_text(&Scene::default(), &WriterProfile::natural(), "II", 1);
        let first = s.truth.points.first().unwrap();
        let last = s.truth.points.last().unwrap();
        assert!(last.x > first.x + 0.05, "second I is to the right");
    }

    #[test]
    fn whiteboard_writing_stays_in_plane() {
        let s = write_text(&Scene::default(), &WriterProfile::natural(), "W", 3);
        for p in &s.poses {
            assert_eq!(p.tip.z, 0.0);
        }
    }

    #[test]
    fn air_writing_leaves_the_plane() {
        let s = write_text(&Scene::default().in_air(), &WriterProfile::natural(), "W", 3);
        let max_z = s.poses.iter().map(|p| p.tip.z.abs()).fold(0.0, f64::max);
        assert!(max_z > 0.005, "air wobble must displace the tip, max {max_z}");
    }

    #[test]
    fn unknown_characters_are_skipped() {
        let with_junk = write_text(&Scene::default(), &WriterProfile::natural(), "A1!B", 1);
        let without = write_text(&Scene::default(), &WriterProfile::natural(), "AB", 1);
        assert_eq!(with_junk.truth.points.len(), without.truth.points.len());
    }

    #[test]
    fn empty_text_is_empty_session() {
        let s = write_text(&Scene::default(), &WriterProfile::natural(), "", 1);
        assert!(s.poses.is_empty());
        assert_eq!(s.truth.duration(), 0.0);
    }

    #[test]
    fn turntable_sweeps_azimuth_uniformly() {
        let poses = turntable_session(Vec3::new(0.0, 0.0, 0.0), 1.0, 6.0, 0.01);
        assert!((poses.last().unwrap().azimuth - 6.0).abs() < 1e-9);
        for p in &poses {
            assert_eq!(p.tip, Vec3::ZERO);
            assert!((p.dipole.norm() - 1.0).abs() < 1e-12);
            assert_eq!(p.dipole.z, 0.0);
        }
    }

    #[test]
    fn translation_keeps_orientation_fixed() {
        let poses = translation_session(Vec3::new(0.0, 0.5, 0.0), 0.3, 0.08, 4.0, 8.0, 0.01);
        let d0 = poses[0].dipole;
        let xs: Vec<f64> = poses.iter().map(|p| p.tip.x).collect();
        let max_x = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min_x = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((max_x - min_x - 0.08).abs() < 1e-3, "peak-to-peak = extent");
        for p in &poses {
            assert_eq!(p.dipole, d0);
        }
    }

    #[test]
    fn scene_at_distance_places_writing_area() {
        let s = Scene::at_distance(1.2);
        assert_eq!(s.origin.y, 1.2);
    }

    #[test]
    fn scenes_round_trip_through_json() {
        use rf_core::json::{FromJson, ToJson};
        let jones = Scene { channel: ChannelMode::Jones, ..Scene::default() };
        for scene in [Scene::default(), Scene::at_distance(1.1).in_air(), jones] {
            let text = scene.to_json().to_json_string();
            let back = Scene::from_json(&rf_core::Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, scene);
        }
        assert!(Scene::from_json(&rf_core::Json::parse("{\"origin\":[0,0]}").unwrap()).is_err());
    }

    #[test]
    fn pre_jones_scenes_deserialize_as_scalar() {
        use rf_core::json::FromJson;
        // A scene JSON written before the `channel` field existed.
        let legacy = "{\"origin\":[-0.2,0.65],\"air\":null,\"sample_dt\":0.002,\"letter_gap\":0.25}";
        let back = Scene::from_json(&rf_core::Json::parse(legacy).unwrap()).unwrap();
        assert_eq!(back, Scene::default());
        assert_eq!(back.channel, ChannelMode::Scalar);
        // Unknown channel strings are a loud error, not a silent default.
        let bad = legacy.replace("0.25}", "0.25,\"channel\":\"quantum\"}");
        assert!(Scene::from_json(&rf_core::Json::parse(&bad).unwrap()).is_err());
    }

    #[test]
    fn channel_mode_string_round_trip() {
        for mode in [ChannelMode::Scalar, ChannelMode::Jones] {
            assert_eq!(ChannelMode::parse(mode.as_str()), Some(mode));
        }
        assert_eq!(ChannelMode::parse("circular"), None);
        assert_eq!(ChannelMode::default(), ChannelMode::Scalar);
    }
}
