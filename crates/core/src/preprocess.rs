//! RFID data pre-processing (§3.1): window averaging and spurious data
//! rejection.
//!
//! The reader delivers an irregular ~100 Hz interleaved stream from both
//! antennas. PolarDraw divides time into fixed windows (50 ms in the
//! paper), averages the RSS and phase readings inside each window per
//! antenna, and then rejects windows whose phase jumps implausibly far
//! from the previous window — the signature of a cross-polarized tag
//! briefly powered through a reflection (§2's "spurious" readings).

use rf_core::angle::{circular_mean, phase_distance};
use rfid_sim::TagReport;
use std::borrow::Cow;

/// One aligned pre-processing window across both antennas.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Windowed {
    /// Window centre time, seconds.
    pub t: f64,
    /// Mean RSS per antenna, dBm (`None`: no reads in the window).
    pub rssi: [Option<f64>; 2],
    /// Circular-mean phase per antenna, radians (`None`: no reads, or
    /// rejected as spurious).
    pub phase: [Option<f64>; 2],
    /// Raw read counts per antenna (diagnostics).
    pub reads: [usize; 2],
    /// Quality flags for this window (degradation diagnostics).
    pub flags: WindowFlags,
}

/// Per-window quality flags, set during pre-processing so downstream
/// stages (and the pipeline's `DegradationReport`) can tell *why* a
/// window is weak without re-deriving it from the raw fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowFlags {
    /// No reads landed on either antenna.
    pub empty: bool,
    /// Exactly one antenna produced reads (port outage signature).
    pub single_antenna: bool,
    /// The phase on this antenna was measured but struck as spurious.
    pub spurious: [bool; 2],
}

/// What pre-processing had to tolerate in one stream — returned by
/// [`preprocess_with_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PreprocessStats {
    /// Reports in the input stream.
    pub input_reports: usize,
    /// The input was not sorted by timestamp and had to be sorted.
    pub input_unsorted: bool,
    /// Exact duplicate reports removed after sorting.
    pub duplicates_removed: usize,
    /// Reports ignored because `antenna >= 2`.
    pub ignored_ports: usize,
    /// Total windows produced.
    pub windows: usize,
    /// Windows with no reads on either antenna.
    pub empty_windows: usize,
    /// Windows with reads on exactly one antenna.
    pub single_antenna_windows: usize,
    /// Phases struck by the spurious-rejection screen (both antennas).
    pub spurious_rejected: usize,
    /// Longest run of consecutive empty windows.
    pub largest_empty_run: usize,
}

/// Pre-processing configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreprocessConfig {
    /// Window length, seconds (paper: 50 ms).
    pub window_s: f64,
    /// Reject a window's phase when it differs from the previous valid
    /// window by more than this, radians (paper: 0.2 rad).
    pub spurious_threshold_rad: f64,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig { window_s: 0.05, spurious_threshold_rad: 0.25 }
    }
}

/// Window-average a report stream and reject spurious phases.
///
/// Returns one [`Windowed`] per window from the first to the last
/// report; windows with no reads on either antenna are retained (with
/// `None` entries) so that downstream timing stays uniform.
///
/// The input does **not** have to be sorted or duplicate-free: unsorted
/// streams are stably sorted by timestamp and exact adjacent duplicates
/// (LLRP redelivery) are removed before windowing. On an already-clean
/// stream normalization is a borrow — no copy, no behaviour change.
pub fn preprocess(reports: &[TagReport], config: &PreprocessConfig) -> Vec<Windowed> {
    preprocess_with_stats(reports, config).0
}

/// [`preprocess`], also returning [`PreprocessStats`] describing what
/// the stream needed tolerated.
pub fn preprocess_with_stats(
    reports: &[TagReport],
    config: &PreprocessConfig,
) -> (Vec<Windowed>, PreprocessStats) {
    let mut stats = PreprocessStats { input_reports: reports.len(), ..Default::default() };
    let reports = normalize(reports, &mut stats);
    let (first, last) = match (reports.first(), reports.last()) {
        (Some(f), Some(l)) => (f.t, l.t),
        _ => return (Vec::new(), stats),
    };
    assert!(config.window_s > 0.0, "window length must be positive");
    let n_windows = ((last - first) / config.window_s).floor() as usize + 1;
    let mut acc: Vec<[WindowAcc; 2]> = vec![Default::default(); n_windows];
    for r in reports.iter() {
        if r.antenna >= 2 {
            stats.ignored_ports += 1;
            continue; // PolarDraw is strictly two-antenna
        }
        let w = (((r.t - first) / config.window_s).floor() as usize).min(n_windows - 1);
        acc[w][r.antenna].push(r.rssi_dbm, r.phase_rad);
    }

    let mut out: Vec<Windowed> = Vec::with_capacity(n_windows);
    let mut empty_run = 0usize;
    for (i, pair) in acc.iter().enumerate() {
        let t = first + (i as f64 + 0.5) * config.window_s;
        let mut w = Windowed { t, ..Default::default() };
        for ant in 0..2 {
            w.reads[ant] = pair[ant].n;
            w.rssi[ant] = pair[ant].mean_rssi();
            w.phase[ant] = pair[ant].mean_phase();
        }
        w.flags.empty = w.reads == [0, 0];
        w.flags.single_antenna = (w.reads[0] == 0) != (w.reads[1] == 0);
        if w.flags.empty {
            stats.empty_windows += 1;
            empty_run += 1;
            stats.largest_empty_run = stats.largest_empty_run.max(empty_run);
        } else {
            empty_run = 0;
        }
        if w.flags.single_antenna {
            stats.single_antenna_windows += 1;
        }
        out.push(w);
    }
    stats.windows = out.len();

    stats.spurious_rejected = reject_spurious(&mut out, config.spurious_threshold_rad);
    (out, stats)
}

/// Sort-and-dedup tolerance: stable-sort by timestamp when the stream is
/// out of order and remove exact adjacent duplicates. Clean streams
/// (sorted, duplicate-free — what [`rfid_sim::Reader`] emits) take the
/// borrow path and are untouched.
///
/// The stable sort by `t` alone means reports sharing a timestamp keep
/// their arrival order, so window accumulation order — and therefore the
/// floating-point sums — are bit-identical to the unsorted-unaware code
/// on any already-sorted stream.
fn normalize<'a>(reports: &'a [TagReport], stats: &mut PreprocessStats) -> Cow<'a, [TagReport]> {
    let unsorted = reports.windows(2).any(|w| w[1].t < w[0].t);
    let has_adjacent_dupes = reports.windows(2).any(|w| w[1] == w[0]);
    if !unsorted && !has_adjacent_dupes {
        return Cow::Borrowed(reports);
    }
    stats.input_unsorted = unsorted;
    let mut v = reports.to_vec();
    v.sort_by(|a, b| a.t.total_cmp(&b.t));
    let before = v.len();
    v.dedup();
    stats.duplicates_removed = before - v.len();
    Cow::Owned(v)
}

/// Strike phases that jump more than `threshold` radians from the
/// previous window's phase on the same antenna (§3.1, second step).
///
/// The comparison reference is always the *measured* phase of the
/// previous window — even when that window itself was rejected — exactly
/// as the paper states ("comparing phase readings of adjacent windows").
/// Holding a stale reference instead would cascade: legitimate pen
/// motion drifts the phase away from it and every later window would be
/// rejected. The cost is that an isolated glitch rejects two windows
/// (the glitch and the re-entry jump), after which the stream is back.
fn reject_spurious(windows: &mut [Windowed], threshold: f64) -> usize {
    let mut rejected = 0;
    for ant in 0..2 {
        let mut prev_measured: Option<f64> = None;
        for w in windows.iter_mut() {
            if let Some(p) = w.phase[ant] {
                if let Some(prev) = prev_measured {
                    if phase_distance(p, prev) > threshold {
                        w.phase[ant] = None;
                        w.flags.spurious[ant] = true;
                        rejected += 1;
                    }
                }
                prev_measured = Some(p);
            }
        }
    }
    rejected
}

/// Build one window from its (already normalized) reports: the exact
/// accumulation, averaging, and flagging the batch path performs,
/// factored out so the online engine produces bit-identical windows.
/// Returns the window and how many reports were ignored for being on
/// `antenna >= 2`.
pub(crate) fn build_window(t: f64, reports: &[TagReport]) -> (Windowed, usize) {
    let mut acc: [WindowAcc; 2] = Default::default();
    let mut ignored = 0;
    for r in reports {
        if r.antenna >= 2 {
            ignored += 1;
            continue; // PolarDraw is strictly two-antenna
        }
        acc[r.antenna].push(r.rssi_dbm, r.phase_rad);
    }
    let mut w = Windowed { t, ..Default::default() };
    for ant in 0..2 {
        w.reads[ant] = acc[ant].n;
        w.rssi[ant] = acc[ant].mean_rssi();
        w.phase[ant] = acc[ant].mean_phase();
    }
    w.flags.empty = w.reads == [0, 0];
    w.flags.single_antenna = (w.reads[0] == 0) != (w.reads[1] == 0);
    (w, ignored)
}

#[derive(Debug, Clone, Copy, Default)]
struct WindowAcc {
    n: usize,
    rssi_sum: f64,
    sin_sum: f64,
    cos_sum: f64,
}

impl WindowAcc {
    fn push(&mut self, rssi: f64, phase: f64) {
        self.n += 1;
        self.rssi_sum += rssi;
        self.sin_sum += phase.sin();
        self.cos_sum += phase.cos();
    }

    fn mean_rssi(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.rssi_sum / self.n as f64)
        }
    }

    fn mean_phase(&self) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        // Circular mean: immune to 0/2π straddling inside a window.
        circular_mean(&[self.sin_sum.atan2(self.cos_sum)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    fn report(t: f64, antenna: usize, rssi: f64, phase: f64) -> TagReport {
        TagReport { t, antenna, rssi_dbm: rssi, phase_rad: phase, channel: 24, epc: 1 }
    }

    #[test]
    fn empty_stream_preprocesses_to_nothing() {
        assert!(preprocess(&[], &PreprocessConfig::default()).is_empty());
    }

    #[test]
    fn averages_within_windows() {
        let reports = vec![
            report(0.00, 0, -40.0, 1.0),
            report(0.01, 0, -42.0, 1.2),
            report(0.02, 1, -50.0, 2.0),
            report(0.06, 0, -44.0, 1.1),
        ];
        let w = preprocess(&reports, &PreprocessConfig::default());
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].rssi[0], Some(-41.0));
        assert_eq!(w[0].reads[0], 2);
        assert_eq!(w[0].rssi[1], Some(-50.0));
        let p = w[0].phase[0].unwrap();
        assert!((p - 1.1).abs() < 1e-6, "circular mean of 1.0, 1.2 is 1.1, got {p}");
        assert_eq!(w[1].rssi[0], Some(-44.0));
        assert_eq!(w[1].rssi[1], None);
    }

    #[test]
    fn circular_mean_straddles_wrap() {
        let reports = vec![
            report(0.00, 0, -40.0, 0.1),
            report(0.01, 0, -40.0, TAU - 0.1),
        ];
        let w = preprocess(&reports, &PreprocessConfig::default());
        let p = w[0].phase[0].unwrap();
        assert!(p < 0.01 || p > TAU - 0.01, "mean of ±0.1 wraps to ~0, got {p}");
    }

    #[test]
    fn spurious_jump_is_rejected_but_stream_recovers() {
        let cfg = PreprocessConfig::default();
        // Window-centre timestamps avoid binary-float boundary flapping.
        let reports = vec![
            report(0.000, 0, -40.0, 1.0),
            report(0.070, 0, -40.0, 1.05),
            report(0.120, 0, -58.0, 3.0), // cross-pol glitch: +1.95 rad
            report(0.170, 0, -40.0, 1.10),
            report(0.220, 0, -40.0, 1.15),
        ];
        let w = preprocess(&reports, &cfg);
        assert_eq!(w.len(), 5);
        assert_eq!(w[2].phase[0], None, "glitch window rejected");
        // The re-entry jump (3.0 → 1.10) is also over threshold, so the
        // window after the glitch is sacrificed too...
        assert_eq!(w[3].phase[0], None, "re-entry window also rejected");
        // ...but the stream is back one window later.
        assert!(w[4].phase[0].is_some(), "stream recovers after the glitch");
        // RSS is never rejected — only phase is screened.
        assert_eq!(w[2].rssi[0], Some(-58.0));
    }

    #[test]
    fn gradual_phase_motion_is_kept() {
        // 0.1 rad per window is a legitimate writing speed; nothing may
        // be rejected.
        let cfg = PreprocessConfig::default();
        let reports: Vec<TagReport> =
            (0..20).map(|i| report(i as f64 * 0.05, 0, -40.0, 1.0 + 0.1 * i as f64)).collect();
        let w = preprocess(&reports, &cfg);
        assert!(w.iter().all(|w| w.phase[0].is_some()));
    }

    #[test]
    fn antennas_are_screened_independently() {
        let cfg = PreprocessConfig::default();
        let reports = vec![
            report(0.00, 0, -40.0, 1.0),
            report(0.00, 1, -40.0, 2.0),
            report(0.07, 0, -40.0, 1.02),
            report(0.07, 1, -40.0, 4.5), // spurious on antenna 1 only
        ];
        let w = preprocess(&reports, &cfg);
        assert!(w[1].phase[0].is_some());
        assert_eq!(w[1].phase[1], None);
    }

    #[test]
    fn reports_from_extra_antennas_are_ignored() {
        let reports = vec![report(0.0, 0, -40.0, 1.0), report(0.0, 2, -30.0, 0.5)];
        let w = preprocess(&reports, &PreprocessConfig::default());
        assert_eq!(w[0].reads, [1, 0]);
    }

    #[test]
    fn unsorted_stream_buckets_like_its_sorted_self() {
        // Regression: the old code took `reports.first()/last()` as the
        // time extremes and clamped stragglers into the *last* window,
        // so an out-of-order stream silently mis-bucketed. Sorting must
        // make the two streams indistinguishable.
        let sorted = vec![
            report(0.00, 0, -40.0, 1.0),
            report(0.03, 1, -50.0, 2.0),
            report(0.06, 0, -42.0, 1.1),
            report(0.12, 0, -44.0, 1.2),
            report(0.16, 1, -52.0, 2.1),
        ];
        let mut shuffled = sorted.clone();
        shuffled.swap(0, 3); // first/last no longer the extremes
        shuffled.swap(1, 4);
        let cfg = PreprocessConfig::default();
        let (from_sorted, s1) = preprocess_with_stats(&sorted, &cfg);
        let (from_shuffled, s2) = preprocess_with_stats(&shuffled, &cfg);
        assert_eq!(from_sorted, from_shuffled);
        assert!(!s1.input_unsorted);
        assert!(s2.input_unsorted);
        // Every report must land in its own window, none clamped away:
        // 0.16 s span at 50 ms windows = 4 windows, reads [1,1,1]+[0]+...
        assert_eq!(from_shuffled.len(), 4);
        assert_eq!(from_shuffled.iter().map(|w| w.reads[0] + w.reads[1]).sum::<usize>(), 5);
        assert_eq!(from_shuffled[1].reads, [1, 0], "0.06 s read stays in window 1");
    }

    #[test]
    fn exact_duplicates_are_removed_once() {
        let base = vec![
            report(0.00, 0, -40.0, 1.0),
            report(0.02, 1, -50.0, 2.0),
            report(0.04, 0, -42.0, 1.1),
        ];
        let mut dup = base.clone();
        dup.insert(1, base[0]); // exact LLRP redelivery
        dup.push(base[2]);
        let cfg = PreprocessConfig::default();
        let (clean, _) = preprocess_with_stats(&base, &cfg);
        let (deduped, stats) = preprocess_with_stats(&dup, &cfg);
        assert_eq!(stats.duplicates_removed, 2);
        assert_eq!(clean, deduped, "duplicates must not bias window means");
    }

    #[test]
    fn clean_streams_take_the_borrow_path_bit_identically() {
        let reports: Vec<TagReport> =
            (0..40).map(|i| report(i as f64 * 0.011, i % 2, -40.0, 1.0 + 0.01 * i as f64)).collect();
        let cfg = PreprocessConfig::default();
        let (w, stats) = preprocess_with_stats(&reports, &cfg);
        assert!(!stats.input_unsorted);
        assert_eq!(stats.duplicates_removed, 0);
        assert_eq!(preprocess(&reports, &cfg), w);
    }

    #[test]
    fn quality_flags_and_stats_describe_the_stream() {
        let reports = vec![
            report(0.00, 0, -40.0, 1.0),
            report(0.01, 1, -50.0, 2.0),
            // windows 1-2 empty (gap 0.05..0.15)
            report(0.16, 0, -40.0, 1.05),
            // window 3: antenna 0 only
        ];
        let cfg = PreprocessConfig::default();
        let (w, stats) = preprocess_with_stats(&reports, &cfg);
        assert_eq!(w.len(), 4);
        assert!(!w[0].flags.empty && !w[0].flags.single_antenna);
        assert!(w[1].flags.empty && w[2].flags.empty);
        assert!(w[3].flags.single_antenna);
        assert_eq!(stats.windows, 4);
        assert_eq!(stats.empty_windows, 2);
        assert_eq!(stats.largest_empty_run, 2);
        assert_eq!(stats.single_antenna_windows, 1);
        assert_eq!(stats.input_reports, 3);
    }

    #[test]
    fn spurious_rejections_are_counted_and_flagged() {
        let cfg = PreprocessConfig::default();
        let reports = vec![
            report(0.000, 0, -40.0, 1.0),
            report(0.070, 0, -40.0, 1.05),
            report(0.120, 0, -58.0, 3.0), // glitch
            report(0.170, 0, -40.0, 1.10),
            report(0.220, 0, -40.0, 1.15),
        ];
        let (w, stats) = preprocess_with_stats(&reports, &cfg);
        assert_eq!(stats.spurious_rejected, 2);
        assert!(w[2].flags.spurious[0] && w[3].flags.spurious[0]);
        assert!(!w[4].flags.spurious[0]);
    }

    #[test]
    fn window_boundary_wraparound_jump_not_spurious() {
        // A phase sequence crossing 2π→0 moves only slightly on the
        // circle; the circular distance must see through the wrap.
        let cfg = PreprocessConfig::default();
        let reports = vec![
            report(0.00, 0, -40.0, TAU - 0.05),
            report(0.07, 0, -40.0, 0.05),
        ];
        let w = preprocess(&reports, &cfg);
        assert!(w[1].phase[0].is_some(), "wrap crossing is not a spurious jump");
    }
}
