//! Shared utilities for the baseline trackers: N-antenna window
//! averaging and a generic grid beam search.

use rf_core::angle::wrap_tau;
use rf_core::Vec2;
use rfid_sim::TagReport;

/// One time window, averaged per antenna (N antennas).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiWindow {
    /// Window centre time, seconds.
    pub t: f64,
    /// Circular-mean phase per antenna, radians (`None`: no reads).
    pub phase: Vec<Option<f64>>,
    /// Mean RSS per antenna, dBm (`None`: no reads).
    pub rssi: Vec<Option<f64>>,
}

/// Average a report stream into fixed windows across `n_antennas`.
pub fn window_reports(reports: &[TagReport], n_antennas: usize, window_s: f64) -> Vec<MultiWindow> {
    let (first, last) = match (reports.first(), reports.last()) {
        (Some(f), Some(l)) => (f.t, l.t),
        _ => return Vec::new(),
    };
    assert!(window_s > 0.0, "window length must be positive");
    let n_win = ((last - first) / window_s).floor() as usize + 1;
    let mut sin = vec![vec![0.0; n_antennas]; n_win];
    let mut cos = vec![vec![0.0; n_antennas]; n_win];
    let mut rssi_sum = vec![vec![0.0; n_antennas]; n_win];
    let mut count = vec![vec![0usize; n_antennas]; n_win];
    for r in reports {
        if r.antenna >= n_antennas {
            continue;
        }
        let w = (((r.t - first) / window_s).floor() as usize).min(n_win - 1);
        sin[w][r.antenna] += r.phase_rad.sin();
        cos[w][r.antenna] += r.phase_rad.cos();
        rssi_sum[w][r.antenna] += r.rssi_dbm;
        count[w][r.antenna] += 1;
    }
    (0..n_win)
        .map(|w| MultiWindow {
            t: first + (w as f64 + 0.5) * window_s,
            phase: (0..n_antennas)
                .map(|a| {
                    if count[w][a] == 0 {
                        None
                    } else {
                        Some(wrap_tau(sin[w][a].atan2(cos[w][a])))
                    }
                })
                .collect(),
            rssi: (0..n_antennas)
                .map(|a| {
                    if count[w][a] == 0 {
                        None
                    } else {
                        Some(rssi_sum[w][a] / count[w][a] as f64)
                    }
                })
                .collect(),
        })
        .collect()
}

/// A generic beam search over a uniform grid: per step, each frontier
/// cell expands to cells within `max_step_m` and is scored by
/// `score(from, to, step_index)` added to its accumulated score.
/// Returns the best path's positions (one per step).
pub struct GridBeam {
    /// Minimum corner of the grid.
    pub min: Vec2,
    /// Cell edge, metres.
    pub cell_m: f64,
    /// Cells along X / Y.
    pub nx: usize,
    /// Cells along Y.
    pub ny: usize,
    /// Beam width.
    pub beam: usize,
}

impl GridBeam {
    /// Grid covering `[min, max]`.
    pub fn covering(min: Vec2, max: Vec2, cell_m: f64, beam: usize) -> GridBeam {
        assert!(cell_m > 0.0 && max.x > min.x && max.y > min.y, "degenerate grid");
        GridBeam {
            min,
            cell_m,
            nx: ((max.x - min.x) / cell_m).ceil() as usize + 1,
            ny: ((max.y - min.y) / cell_m).ceil() as usize + 1,
            beam: beam.max(8),
        }
    }

    /// Cell centre.
    pub fn center(&self, idx: usize) -> Vec2 {
        Vec2::new(
            self.min.x + ((idx % self.nx) as f64 + 0.5) * self.cell_m,
            self.min.y + ((idx / self.nx) as f64 + 0.5) * self.cell_m,
        )
    }

    /// Cell containing a point (clamped).
    pub fn index_of(&self, p: Vec2) -> usize {
        let ix = (((p.x - self.min.x) / self.cell_m).floor() as isize)
            .clamp(0, self.nx as isize - 1) as usize;
        let iy = (((p.y - self.min.y) / self.cell_m).floor() as isize)
            .clamp(0, self.ny as isize - 1) as usize;
        iy * self.nx + ix
    }

    /// Run the beam search for `n_steps` steps from `start`.
    pub fn decode<F>(&self, start: Vec2, n_steps: usize, max_step_m: f64, mut score: F) -> Vec<Vec2>
    where
        F: FnMut(Vec2, Vec2, usize) -> f64,
    {
        if n_steps == 0 {
            return Vec::new();
        }
        let n = self.nx * self.ny;
        let r_cells = (max_step_m / self.cell_m).ceil() as isize;
        let mut frontier: Vec<(u32, f64)> = vec![(self.index_of(start) as u32, 0.0)];
        let mut backptr: Vec<std::collections::HashMap<u32, u32>> = Vec::with_capacity(n_steps);
        let mut dense: Vec<(f64, u32)> = vec![(f64::NEG_INFINITY, u32::MAX); n];
        let mut touched: Vec<u32> = Vec::new();

        for step in 0..n_steps {
            for &(from, s_from) in &frontier {
                let c_from = self.center(from as usize);
                let ix0 = (from as usize % self.nx) as isize;
                let iy0 = (from as usize / self.nx) as isize;
                for dy in -r_cells..=r_cells {
                    for dx in -r_cells..=r_cells {
                        let (ix, iy) = (ix0 + dx, iy0 + dy);
                        if ix < 0 || iy < 0 || ix >= self.nx as isize || iy >= self.ny as isize {
                            continue;
                        }
                        let to = iy as usize * self.nx + ix as usize;
                        let c_to = self.center(to);
                        if c_from.distance(c_to) > max_step_m + 1e-12 {
                            continue;
                        }
                        let s = s_from + score(c_from, c_to, step);
                        let entry = &mut dense[to];
                        if entry.1 == u32::MAX && entry.0 == f64::NEG_INFINITY {
                            touched.push(to as u32);
                        }
                        if s > entry.0 {
                            *entry = (s, from);
                        }
                    }
                }
            }
            let mut next: Vec<(u32, f64)> =
                touched.iter().map(|&c| (c, dense[c as usize].0)).collect();
            next.sort_unstable_by(|a, b| b.1.total_cmp(&a.1));
            next.truncate(self.beam);
            backptr.push(next.iter().map(|&(c, _)| (c, dense[c as usize].1)).collect());
            for &c in &touched {
                dense[c as usize] = (f64::NEG_INFINITY, u32::MAX);
            }
            touched.clear();
            if !next.is_empty() {
                frontier = next;
            }
        }

        let mut idx = frontier
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|&(c, _)| c)
            .unwrap_or(0);
        let mut rev = Vec::with_capacity(n_steps);
        for bp in backptr.iter().rev() {
            rev.push(self.center(idx as usize));
            match bp.get(&idx) {
                Some(&prev) => idx = prev,
                None => break,
            }
        }
        rev.reverse();
        rev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(t: f64, antenna: usize, phase: f64) -> TagReport {
        TagReport { t, antenna, rssi_dbm: -40.0, phase_rad: phase, channel: 24, epc: 1 }
    }

    #[test]
    fn windowing_averages_four_antennas() {
        let reports = vec![
            report(0.00, 0, 1.0),
            report(0.01, 1, 2.0),
            report(0.02, 2, 3.0),
            report(0.03, 3, 4.0),
            report(0.06, 0, 1.1),
        ];
        let w = window_reports(&reports, 4, 0.05);
        assert_eq!(w.len(), 2);
        for a in 0..4 {
            assert!(w[0].phase[a].is_some(), "antenna {a} missing");
        }
        assert!(w[1].phase[0].is_some());
        assert!(w[1].phase[1].is_none());
    }

    #[test]
    fn windowing_empty_input() {
        assert!(window_reports(&[], 4, 0.05).is_empty());
    }

    #[test]
    fn beam_decodes_a_pulled_path() {
        // Score pulls toward a target point; the decoded path must end
        // near it.
        let grid = GridBeam::covering(Vec2::new(0.0, 0.0), Vec2::new(0.2, 0.2), 0.01, 500);
        let target = Vec2::new(0.15, 0.12);
        let path = grid.decode(Vec2::new(0.02, 0.02), 30, 0.015, |_, to, _| {
            -to.distance(target)
        });
        assert_eq!(path.len(), 30);
        assert!(path.last().unwrap().distance(target) < 0.02);
        // Steps obey the cap.
        for w in path.windows(2) {
            assert!(w[0].distance(w[1]) <= 0.015 + 1e-9);
        }
    }

    #[test]
    fn beam_zero_steps() {
        let grid = GridBeam::covering(Vec2::new(0.0, 0.0), Vec2::new(0.1, 0.1), 0.01, 100);
        assert!(grid.decode(Vec2::ZERO, 0, 0.01, |_, _, _| 0.0).is_empty());
    }

    #[test]
    fn grid_index_round_trip() {
        let grid = GridBeam::covering(Vec2::new(-0.1, 0.2), Vec2::new(0.3, 0.5), 0.02, 100);
        for idx in [0usize, 7, 42] {
            assert_eq!(grid.index_of(grid.center(idx)), idx);
        }
    }
}
