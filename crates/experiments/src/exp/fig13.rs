//! Figures 13 & 14: per-letter recognition accuracy over the alphabet,
//! and the letter confusion matrix (both computed from one batch of
//! trials, as in the paper's §5.2.1–§5.2.2).

use crate::report::Report;
use crate::runner::{confusion_of, letter_accuracy, run_letter_trials, RunOpts};
use crate::setup::TrialSetup;

/// Run the alphabet experiment; returns the Fig. 13 accuracy table and
/// the Fig. 14 confusion summary.
pub fn run(opts: &RunOpts) -> Vec<Report> {
    let conditions: Vec<(char, TrialSetup)> = pen_sim::glyph::ALPHABET
        .iter()
        .map(|&ch| (ch, TrialSetup::letter(ch)))
        .collect();
    let trials = run_letter_trials(&conditions, opts.trials, opts.seed, opts);

    let mut fig13 = Report::new(
        "fig13",
        "Per-letter recognition accuracy (26 letters)",
        "93.6 % mean; 15/26 letters above 90 %, all above 80 %",
    )
    .headers(vec!["Letter", "Accuracy (%)"]);
    let matrix = confusion_of(&trials);
    for &ch in pen_sim::glyph::ALPHABET.iter() {
        let sub: Vec<_> = trials.iter().filter(|t| t.actual == ch).cloned().collect();
        fig13.push_row(vec![ch.to_string(), format!("{:.0}", 100.0 * letter_accuracy(&sub))]);
    }
    fig13.push_note(format!(
        "mean accuracy {:.1} % over {} trials",
        100.0 * letter_accuracy(&trials),
        trials.len()
    ));

    let mut fig14 = Report::new(
        "fig14",
        "Letter confusion matrix (top confusions)",
        "misclassifications concentrate on similar writing styles (e.g. L→I, V→U)",
    )
    .headers(vec!["Actual", "Predicted", "Count"]);
    for (a, p, c) in matrix.top_confusions(12) {
        fig14.push_row(vec![a.to_string(), p.to_string(), c.to_string()]);
    }
    fig14.push_note(format!(
        "diagonal mass {:.1} %",
        100.0 * matrix.accuracy().unwrap_or(0.0)
    ));

    vec![fig13, fig14]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_produces_both_reports() {
        // One trial on a reduced alphabet would not exercise this module
        // faithfully, but a single-trial full run is too slow for unit
        // tests; instead check plumbing via the public runner on two
        // letters.
        let conditions = vec![
            ('I', TrialSetup::letter('I')),
            ('L', TrialSetup::letter('L')),
        ];
        let opts = RunOpts { trials: 1, seed: 7, cell_scale: 4.0, ..RunOpts::default() };
        let trials = run_letter_trials(&conditions, 1, 7, &opts);
        assert_eq!(trials.len(), 2);
        let m = confusion_of(&trials);
        assert!(m.total() <= 2);
    }
}
