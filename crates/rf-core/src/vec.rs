//! 2-D and 3-D vector types.
//!
//! The whiteboard surface is modelled as the X–Y plane, so most tracking
//! code works with [`Vec2`]; the electromagnetic substrate needs [`Vec3`]
//! for antenna positions, pen/tag dipole orientation, and multipath
//! reflector geometry.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2-D vector / point on the whiteboard plane, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// Horizontal board coordinate (rightward positive).
    pub x: f64,
    /// Vertical board coordinate (paper plots use downward-positive Y).
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Construct from components.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean norm (avoids the `sqrt` when only comparing).
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Distance to another point.
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Unit vector in the same direction; `None` for (near-)zero vectors.
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n < 1e-12 {
            None
        } else {
            Some(self / n)
        }
    }

    /// The unit vector at `angle` radians from the +X axis.
    pub fn from_angle(angle: f64) -> Vec2 {
        Vec2::new(angle.cos(), angle.sin())
    }

    /// Angle of this vector from the +X axis, in (−π, π].
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Rotate by `angle` radians counter-clockwise.
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }

    /// Promote to a 3-D vector with the given z-component.
    pub fn with_z(self, z: f64) -> Vec3 {
        Vec3::new(self.x, self.y, z)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, s: f64) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, s: f64) -> Vec2 {
        Vec2::new(self.x / s, self.y / s)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

/// A 3-D vector / point, in metres.
///
/// Board convention: X rightward along the board, Y downward along the
/// board (matching the paper's trajectory plots), Z out of the board
/// toward the writer.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    /// Unit X.
    pub const X: Vec3 = Vec3 { x: 1.0, y: 0.0, z: 0.0 };
    /// Unit Y.
    pub const Y: Vec3 = Vec3 { x: 0.0, y: 1.0, z: 0.0 };
    /// Unit Z.
    pub const Z: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 1.0 };

    /// Construct from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm.
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Dot product.
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Distance to another point.
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Unit vector in the same direction; `None` for (near-)zero vectors.
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-12 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Component of `self` perpendicular to the (unit) direction `axis`.
    ///
    /// Used to project a tag's dipole onto the plane transverse to a
    /// line-of-sight: the transverse component is what couples to a
    /// linearly-polarized antenna.
    pub fn reject_from(self, axis: Vec3) -> Vec3 {
        self - axis * self.dot(axis)
    }

    /// Drop the z-component.
    pub fn xy(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl crate::json::ToJson for Vec2 {
    fn to_json(&self) -> crate::json::Json {
        crate::json::Json::Arr(vec![
            crate::json::Json::Num(self.x),
            crate::json::Json::Num(self.y),
        ])
    }
}

impl crate::json::FromJson for Vec2 {
    fn from_json(v: &crate::json::Json) -> Result<Vec2, crate::json::JsonError> {
        match v.as_arr() {
            Some([x, y]) => match (x.as_f64(), y.as_f64()) {
                (Some(x), Some(y)) => Ok(Vec2::new(x, y)),
                _ => Err(bad_vec("Vec2: non-numeric component")),
            },
            _ => Err(bad_vec("Vec2: expected [x, y]")),
        }
    }
}

impl crate::json::ToJson for Vec3 {
    fn to_json(&self) -> crate::json::Json {
        crate::json::Json::Arr(vec![
            crate::json::Json::Num(self.x),
            crate::json::Json::Num(self.y),
            crate::json::Json::Num(self.z),
        ])
    }
}

impl crate::json::FromJson for Vec3 {
    fn from_json(v: &crate::json::Json) -> Result<Vec3, crate::json::JsonError> {
        match v.as_arr() {
            Some([x, y, z]) => match (x.as_f64(), y.as_f64(), z.as_f64()) {
                (Some(x), Some(y), Some(z)) => Ok(Vec3::new(x, y, z)),
                _ => Err(bad_vec("Vec3: non-numeric component")),
            },
            _ => Err(bad_vec("Vec3: expected [x, y, z]")),
        }
    }
}

fn bad_vec(message: &str) -> crate::json::JsonError {
    crate::json::JsonError { message: message.to_string(), offset: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec2_basic_algebra() {
        let a = Vec2::new(3.0, 4.0);
        let b = Vec2::new(-1.0, 2.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a + b, Vec2::new(2.0, 6.0));
        assert_eq!(a - b, Vec2::new(4.0, 2.0));
        assert_eq!(a * 2.0, Vec2::new(6.0, 8.0));
        assert_eq!(a.dot(b), 5.0);
        assert_eq!(a.cross(b), 10.0);
    }

    #[test]
    fn vec2_rotation_quarter_turn() {
        let v = Vec2::new(1.0, 0.0).rotated(std::f64::consts::FRAC_PI_2);
        assert!(v.x.abs() < 1e-12);
        assert!((v.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vec2_angle_round_trip() {
        for k in 0..16 {
            let a = -3.0 + 0.4 * k as f64;
            let v = Vec2::from_angle(a);
            let diff = (v.angle() - a).rem_euclid(std::f64::consts::TAU);
            assert!(diff < 1e-9 || diff > std::f64::consts::TAU - 1e-9);
        }
    }

    #[test]
    fn vec2_normalized_zero_is_none() {
        assert!(Vec2::ZERO.normalized().is_none());
        assert!(Vec2::new(1e-15, 0.0).normalized().is_none());
    }

    #[test]
    fn vec2_lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(1.0, 2.0));
    }

    #[test]
    fn vec3_cross_follows_right_hand_rule() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn vec3_rejection_is_orthogonal_to_axis() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        let axis = Vec3::new(0.0, 0.0, 1.0);
        let r = v.reject_from(axis);
        assert!(r.dot(axis).abs() < 1e-12);
        assert_eq!(r, Vec3::new(1.0, 2.0, 0.0));
    }

    #[test]
    fn vec3_distance_symmetric() {
        let a = Vec3::new(1.0, 1.0, 1.0);
        let b = Vec3::new(2.0, 3.0, 5.0);
        assert_eq!(a.distance(b), b.distance(a));
        assert!((a.distance(b) - 21f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn vectors_round_trip_through_json() {
        use crate::json::{FromJson, Json, ToJson};
        let v2 = Vec2::new(-0.25, 1e-3);
        assert_eq!(Vec2::from_json(&Json::parse(&v2.to_json().to_json_string()).unwrap()).unwrap(), v2);
        let v3 = Vec3::new(0.1, -0.0, 2.5e8);
        assert_eq!(Vec3::from_json(&Json::parse(&v3.to_json().to_json_string()).unwrap()).unwrap(), v3);
        assert!(Vec2::from_json(&Json::parse("[1,2,3]").unwrap()).is_err());
        assert!(Vec3::from_json(&Json::parse("[1,2,\"x\"]").unwrap()).is_err());
    }
}
