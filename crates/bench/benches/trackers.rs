//! End-to-end tracker benchmarks: PolarDraw vs Tagoram vs RF-IDraw on
//! identical-length report streams — the runtime side of the §5.3
//! comparison (accuracy is the `repro` harness's job).

use baselines::{RfIdraw, RfIdrawConfig, Tagoram, TagoramConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use polardraw_bench::letter_reports;
use polardraw_core::{PolarDraw, PolarDrawConfig};
use rfid_sim::TrajectoryTracker;
use std::hint::black_box;

fn bench_trackers(c: &mut Criterion) {
    let reports = letter_reports('W', 11);
    let mut group = c.benchmark_group("trackers/letter_W");
    // A full-letter decode takes ~1 s; keep the suite in CI-scale time.
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(12));

    let pd = PolarDraw::new(PolarDrawConfig::default());
    group.bench_function("polardraw_2ant", |b| {
        b.iter(|| black_box(pd.track(black_box(&reports))))
    });

    let mut nopol_cfg = PolarDrawConfig::default();
    nopol_cfg.use_polarization = false;
    let nopol = PolarDraw::new(nopol_cfg);
    group.bench_function("polardraw_no_polarization", |b| {
        b.iter(|| black_box(nopol.track(black_box(&reports))))
    });

    let tagoram = Tagoram::new(TagoramConfig::two_antenna());
    group.bench_function("tagoram_2ant", |b| {
        b.iter(|| black_box(tagoram.track(black_box(&reports))))
    });

    let rfidraw = RfIdraw::new(RfIdrawConfig::four_antenna());
    group.bench_function("rfidraw_4ant", |b| {
        b.iter(|| black_box(rfidraw.track(black_box(&reports))))
    });

    group.finish();
}

fn bench_realtime_budget(c: &mut Criterion) {
    // §3.5: Viterbi decoding "can be computed in real-time even with an
    // embedded mini PC". One 50 ms window of a ~9 s letter session must
    // decode in ≪ 50 ms: we measure the whole track and Criterion
    // reports per-iteration time; divide by ~180 windows to compare.
    let reports = letter_reports('O', 13);
    let pd = PolarDraw::new(PolarDrawConfig::default());
    let mut group = c.benchmark_group("trackers/realtime");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(12));
    group.bench_function("full_letter_decode_budget", |b| {
        b.iter(|| black_box(pd.track(black_box(&reports))))
    });
    group.finish();
}

criterion_group!(benches, bench_trackers, bench_realtime_budget);
criterion_main!(benches);
