#!/usr/bin/env bash
# Tier-1 verification entrypoint (see ROADMAP.md).
#
# Builds and tests the whole workspace *offline* and then proves the
# dependency graph is hermetic: every crate in `cargo tree` must be a
# workspace member (path dependency). Any registry/git crate — even one
# that happens to be cached — fails the run.
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== verify: offline release build =="
cargo build --release --offline --workspace --benches

echo "== verify: offline test suite =="
cargo test -q --offline --workspace --release

echo "== verify: dependency graph is workspace-only =="
# Every line of `cargo tree` that names a crate must carry the marker of
# a local path dependency: "(/…)" pointing into this repo. Registry
# crates print "vX.Y.Z" with no path; catch them.
nonlocal=$(cargo tree --offline --workspace --edges normal,build,dev --prefix none \
    | sort -u \
    | grep -v "($(pwd)" || true)
if [ -n "$nonlocal" ]; then
    echo "FAIL: non-workspace dependencies found:" >&2
    echo "$nonlocal" >&2
    exit 1
fi

echo "verify: OK"
