//! Table 6: the polarization ablation.
//!
//! The paper's headline internal result: stripping the polarization-based
//! rotation estimation collapses letter recognition from 91 % to 23 % —
//! a ~4× gain from the polarization information itself.

use crate::exp::SWEEP_LETTERS;
use crate::report::Report;
use crate::runner::{letter_accuracy, run_letter_trials, RunOpts};
use crate::setup::{TrackerKind, TrialSetup};

/// Run the ablation.
pub fn run(opts: &RunOpts) -> Vec<Report> {
    let mut report = Report::new(
        "table6",
        "Recognition accuracy with and without polarization",
        "91 % with polarization vs 23 % without (≈4× gain)",
    )
    .headers(vec!["Algorithm", "Accuracy (%)", "Trials"]);

    for (kind, label) in [
        (TrackerKind::PolarDraw, "PolarDraw"),
        (TrackerKind::PolarDrawNoPolarization, "w/o polarization"),
    ] {
        let conditions: Vec<(char, TrialSetup)> = SWEEP_LETTERS
            .iter()
            .map(|&ch| (ch, TrialSetup::letter(ch).with_tracker(kind)))
            .collect();
        let trials = run_letter_trials(&conditions, opts.trials, opts.seed, opts);
        report.push_row(vec![
            label.to_string(),
            format!("{:.0}", 100.0 * letter_accuracy(&trials)),
            trials.len().to_string(),
        ]);
    }
    report.push_note(
        "the no-polarization variant keeps phase-based direction/distance but loses all \
         RSS-trend rotation estimation",
    );
    vec![report]
}

#[cfg(test)]
mod tests {
    use crate::setup::{tracker_for, TrackerKind, TrialSetup};

    #[test]
    fn ablation_uses_distinct_tracker_configs() {
        let a = tracker_for(&TrialSetup::letter('A').with_tracker(TrackerKind::PolarDraw));
        let b = tracker_for(
            &TrialSetup::letter('A').with_tracker(TrackerKind::PolarDrawNoPolarization),
        );
        assert_ne!(a.name(), b.name());
    }
}
