//! One module per paper table/figure.

pub mod faults;
pub mod fig02;
pub mod fig03;
pub mod fig09;
pub mod fig10;
pub mod fig13;
pub mod fig15;
pub mod fig16;
pub mod fig18;
pub mod fig19;
pub mod fig21;
pub mod fleet;
pub mod overload;
pub mod polarization;
pub mod recovery;
pub mod streaming;
pub mod table1;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod table8;

/// The ten-letter subset used by the microbenchmark-style sweeps
/// (the paper "randomly choose[s] 10 letters"; we fix a deterministic,
/// difficulty-balanced sample).
pub const SWEEP_LETTERS: [char; 10] = ['C', 'E', 'I', 'L', 'M', 'N', 'S', 'U', 'W', 'Z'];

/// The shorter subset for the most expensive sweeps (bystander,
/// distance), biased toward mid-difficulty letters.
pub const SHORT_LETTERS: [char; 5] = ['C', 'L', 'S', 'W', 'Z'];
