//! Figures 19 & 20: trajectory similarity across the three systems.
//!
//! Five letters × repetitions per system; Fig. 19 reports the CDF of
//! the Procrustes distance between recovered and ground-truth
//! trajectories (paper: 90th percentiles 13.8 cm PolarDraw / 10.2 cm
//! RF-IDraw / 11.3 cm Tagoram); Fig. 20 is the qualitative per-letter
//! gallery, which we report as per-letter mean distances.

use crate::exp::SHORT_LETTERS;
use crate::report::Report;
use crate::runner::{run_letter_trials, RunOpts};
use crate::setup::{TrackerKind, TrialSetup};
use rf_core::stats;

/// The systems compared.
pub const SYSTEMS: [TrackerKind; 3] =
    [TrackerKind::PolarDraw, TrackerKind::RfIdraw4, TrackerKind::Tagoram4];

/// Run the similarity comparison.
pub fn run(opts: &RunOpts) -> Vec<Report> {
    let mut fig19 = Report::new(
        "fig19",
        "Procrustes distance distribution per system",
        "90th pct: 13.8 cm (PolarDraw-2) vs 10.2 cm (RF-IDraw-4) vs 11.3 cm (Tagoram-4)",
    )
    .headers(vec!["System", "Median (cm)", "90th pct (cm)", "Trials"]);
    let mut fig20 = Report::new(
        "fig20",
        "Per-letter trajectory quality (gallery summary)",
        "all systems preserve the basic letter profile; trails stretch/rotate at stroke ends",
    )
    .headers(vec!["Letter", "PolarDraw (cm)", "RF-IDraw (cm)", "Tagoram (cm)"]);

    let mut per_letter: Vec<Vec<String>> =
        SHORT_LETTERS.iter().map(|ch| vec![ch.to_string()]).collect();

    for kind in SYSTEMS {
        let conditions: Vec<(char, TrialSetup)> = SHORT_LETTERS
            .iter()
            .map(|&ch| (ch, TrialSetup::letter(ch).with_tracker(kind)))
            .collect();
        let trials = run_letter_trials(&conditions, opts.trials, opts.seed, opts);
        let dists: Vec<f64> = trials.iter().filter_map(|t| t.procrustes_m).collect();
        fig19.push_row(vec![
            kind.label().to_string(),
            stats::median(&dists).map_or("—".into(), |d| format!("{:.1}", d * 100.0)),
            stats::percentile(&dists, 90.0).map_or("—".into(), |d| format!("{:.1}", d * 100.0)),
            dists.len().to_string(),
        ]);
        for (li, &ch) in SHORT_LETTERS.iter().enumerate() {
            let letter_d: Vec<f64> = trials
                .iter()
                .filter(|t| t.actual == ch)
                .filter_map(|t| t.procrustes_m)
                .collect();
            per_letter[li].push(
                stats::mean(&letter_d).map_or("—".into(), |d| format!("{:.1}", d * 100.0)),
            );
        }
    }
    for row in per_letter {
        fig20.push_row(row);
    }
    vec![fig19, fig20]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn systems_cover_the_papers_comparison() {
        assert!(SYSTEMS.contains(&TrackerKind::PolarDraw));
        assert!(SYSTEMS.contains(&TrackerKind::RfIdraw4));
        assert!(SYSTEMS.contains(&TrackerKind::Tagoram4));
    }
}
