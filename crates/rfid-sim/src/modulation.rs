//! Gen2 uplink modulation schemes.
//!
//! EPC Gen2 tags backscatter with FM0 baseband or Miller-modulated
//! subcarrier (m = 2, 4, 8). Higher Miller orders trade data rate for
//! robustness: each bit spans more subcarrier cycles, which integrates
//! more energy per bit and moves narrowband interference out of band.
//! The paper (§4) exploits exactly this trade-off, probing schemes until
//! the phase noise is acceptable.


/// A Gen2 uplink encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModulationScheme {
    /// FM0 baseband: fastest, least robust.
    Fm0,
    /// Miller subcarrier, m = 2.
    Miller2,
    /// Miller subcarrier, m = 4 (common reader default).
    Miller4,
    /// Miller subcarrier, m = 8: slowest, most robust.
    Miller8,
}

impl ModulationScheme {
    /// All schemes in the round-robin probe order used by §4
    /// (fastest first).
    pub const ALL: [ModulationScheme; 4] = [
        ModulationScheme::Fm0,
        ModulationScheme::Miller2,
        ModulationScheme::Miller4,
        ModulationScheme::Miller8,
    ];

    /// Miller order m (1 for FM0).
    pub fn miller_m(self) -> u32 {
        match self {
            ModulationScheme::Fm0 => 1,
            ModulationScheme::Miller2 => 2,
            ModulationScheme::Miller4 => 4,
            ModulationScheme::Miller8 => 8,
        }
    }

    /// Backscatter link frequency, Hz (typical 256 kHz divide ratio
    /// configuration).
    pub fn blf_hz(self) -> f64 {
        256_000.0
    }

    /// Uplink data rate, bits/s: `BLF / m`.
    pub fn data_rate_bps(self) -> f64 {
        self.blf_hz() / f64::from(self.miller_m())
    }

    /// Duration of `bits` uplink bits, seconds.
    pub fn uplink_duration(self, bits: u32) -> f64 {
        f64::from(bits) / self.data_rate_bps()
    }

    /// Effective per-bit SNR gain over FM0, linear. Each Miller bit
    /// integrates m subcarrier periods.
    pub fn processing_gain(self) -> f64 {
        f64::from(self.miller_m())
    }

    /// Bit error rate at the given post-antenna SNR (dB in the
    /// backscatter bandwidth), for non-coherent FSK-like detection:
    /// `BER = ½·exp(−SNR_eff/2)`.
    pub fn ber(self, snr_db: f64) -> f64 {
        let snr = 10f64.powf(snr_db / 10.0) * self.processing_gain();
        0.5 * (-snr / 2.0).exp()
    }

    /// Probability that a `bits`-long uplink message decodes cleanly.
    pub fn packet_success(self, snr_db: f64, bits: u32) -> f64 {
        (1.0 - self.ber(snr_db)).powi(bits as i32)
    }

    /// Residual phase-measurement variance contributed by the decoder at
    /// this scheme/SNR, rad² — the quantity the paper thresholds at
    /// 0.1 rad² when choosing a scheme.
    pub fn phase_variance(self, snr_db: f64) -> f64 {
        let snr = 10f64.powf(snr_db / 10.0) * self.processing_gain();
        1.0 / (2.0 * snr.max(1e-9))
    }
}

impl std::fmt::Display for ModulationScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ModulationScheme::Fm0 => "FM0",
            ModulationScheme::Miller2 => "Miller-2",
            ModulationScheme::Miller4 => "Miller-4",
            ModulationScheme::Miller8 => "Miller-8",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_rate_halves_with_each_miller_step() {
        assert_eq!(ModulationScheme::Fm0.data_rate_bps(), 256_000.0);
        assert_eq!(ModulationScheme::Miller2.data_rate_bps(), 128_000.0);
        assert_eq!(ModulationScheme::Miller4.data_rate_bps(), 64_000.0);
        assert_eq!(ModulationScheme::Miller8.data_rate_bps(), 32_000.0);
    }

    #[test]
    fn higher_miller_is_more_robust() {
        for snr in [-3.0, 0.0, 3.0, 6.0] {
            let mut prev = f64::INFINITY;
            for s in ModulationScheme::ALL {
                let ber = s.ber(snr);
                assert!(ber < prev, "{s} must beat the previous scheme at {snr} dB");
                prev = ber;
            }
        }
    }

    #[test]
    fn ber_is_monotone_in_snr() {
        let s = ModulationScheme::Miller4;
        assert!(s.ber(0.0) > s.ber(10.0));
        assert!(s.ber(10.0) > s.ber(20.0));
        assert!(s.ber(30.0) < 1e-6);
    }

    #[test]
    fn packet_success_approaches_one_at_high_snr() {
        let p = ModulationScheme::Fm0.packet_success(25.0, 128);
        assert!(p > 0.99, "p = {p}");
        let p_low = ModulationScheme::Fm0.packet_success(-2.0, 128);
        assert!(p_low < 0.5, "p = {p_low}");
    }

    #[test]
    fn uplink_duration_scales_with_bits_and_m() {
        let d_fm0 = ModulationScheme::Fm0.uplink_duration(128);
        let d_m8 = ModulationScheme::Miller8.uplink_duration(128);
        assert!((d_m8 / d_fm0 - 8.0).abs() < 1e-12);
        assert!((d_fm0 - 0.0005).abs() < 1e-9, "128 bits at 256 kbps = 0.5 ms");
    }

    #[test]
    fn phase_variance_threshold_behaviour() {
        // At poor SNR, FM0's decoder variance exceeds the paper's
        // 0.1 rad² threshold while Miller-8 stays below it.
        let snr = 1.0;
        assert!(ModulationScheme::Fm0.phase_variance(snr) > 0.1);
        assert!(ModulationScheme::Miller8.phase_variance(snr) < 0.1);
    }

    #[test]
    fn display_names() {
        assert_eq!(ModulationScheme::Miller4.to_string(), "Miller-4");
    }
}
