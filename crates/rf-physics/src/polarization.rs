//! Polarization coupling between a reader antenna and a dipole tag:
//! the scalar `ê · u` fast path and the full Jones calculus.
//!
//! A wave propagating along unit vector `k` carries an electric field
//! confined to the plane transverse to `k` (Figure 1 of the paper). For
//! a *linearly* polarized antenna the voltage induced on a dipole of
//! unit orientation `u` is proportional to `ê · u`, where `ê` is the
//! unit field polarization in that transverse plane. When antenna and
//! tag are coplanar and broadside (the whiteboard geometry), this
//! reduces to `cos β` with `β` the polarization mismatch angle — the
//! quantity PolarDraw's rotational estimator inverts.
//!
//! The general case needs two transverse components with independent
//! complex amplitudes: circular and elliptical states, and bounces that
//! mix horizontal/vertical components differently (Fresnel). That is
//! the [`Jones`] layer: a [`PolBasis`] orthonormal frame per ray, a
//! [`JonesVector`] field in that frame, 2×2 [`Jones`] matrices per
//! propagation leg, and [`PolState`] describing an antenna's radiated
//! state. The scalar functions above remain the fast path — for
//! linear-copolarized broadside rigs the two formulations agree to
//! floating-point accuracy (`tests/channel_equivalence.rs`).

use rf_core::{Complex, Vec3};

/// Field polarization of a linearly-polarized antenna as radiated toward
/// direction `k` (unit vector from antenna to observation point): the
/// antenna's polarization axis projected onto the transverse plane and
/// renormalized.
///
/// Returns `None` when `k` is (anti)parallel to the polarization axis —
/// the antenna radiates no co-polarized field in that direction.
pub fn transverse_field(pol_axis: Vec3, k: Vec3) -> Option<Vec3> {
    pol_axis.reject_from(k).normalized()
}

/// Complex-free coupling factor between a linearly-polarized antenna
/// (axis `pol_axis`, at `antenna_pos`) and a dipole tag (axis `dipole`,
/// at `tag_pos`): `ê · u`, in `[−1, 1]`.
///
/// The magnitude is the `cos β` of the paper; the sign flips when the
/// dipole crosses the polarization plane (irrelevant to power, which is
/// `cos² β` per link leg, but kept for field superposition).
///
/// The dot is taken against the *full 3-D unit dipole* rather than its
/// normalized transverse projection, so the dipole's own pattern null
/// (no response along its axis) is captured for free.
pub fn coupling(antenna_pos: Vec3, pol_axis: Vec3, tag_pos: Vec3, dipole: Vec3) -> f64 {
    let k = match (tag_pos - antenna_pos).normalized() {
        Some(k) => k,
        None => return 0.0, // co-located: undefined geometry, no coupling
    };
    let e = match transverse_field(pol_axis, k) {
        Some(e) => e,
        None => return 0.0,
    };
    let u = match dipole.normalized() {
        Some(u) => u,
        None => return 0.0,
    };
    e.dot(u)
}

/// Polarization mismatch angle β in `[0, π/2]` between antenna and tag,
/// as would be measured by the RSS drop: `β = arccos |ê · u⊥̂|`, where
/// `u⊥̂` is the *normalized* transverse dipole component.
///
/// This isolates pure polarization mismatch from the dipole pattern
/// roll-off; use [`coupling`] for link-budget work.
pub fn mismatch_angle(antenna_pos: Vec3, pol_axis: Vec3, tag_pos: Vec3, dipole: Vec3) -> f64 {
    let k = match (tag_pos - antenna_pos).normalized() {
        Some(k) => k,
        None => return std::f64::consts::FRAC_PI_2,
    };
    let e = match transverse_field(pol_axis, k) {
        Some(e) => e,
        None => return std::f64::consts::FRAC_PI_2,
    };
    let u_t = match dipole.reject_from(k).normalized() {
        Some(u) => u,
        None => return std::f64::consts::FRAC_PI_2,
    };
    e.dot(u_t).abs().clamp(0.0, 1.0).acos()
}

/// Rotate a field vector `e` by `angle` radians about the propagation
/// axis `k` (Rodrigues' formula restricted to the transverse plane).
///
/// Reflections off walls and furniture partially rotate polarization;
/// this is how the multipath module injects cross-polarized energy that
/// survives when the line-of-sight coupling nulls out at β = 90°.
pub fn rotate_about_axis(e: Vec3, k: Vec3, angle: f64) -> Vec3 {
    let (s, c) = angle.sin_cos();
    e * c + k.cross(e) * s + k * (k.dot(e) * (1.0 - c))
}

/// A right-handed orthonormal polarization frame attached to one ray:
/// `h` ("horizontal") and `v` ("vertical") span the plane transverse to
/// the unit propagation direction `k`, with `h × v = k`.
///
/// Jones vectors and matrices are meaningless without the frame they
/// are expressed in, so every frame is carried explicitly and
/// [`Jones::basis_change`] rotates between two frames sharing a `k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolBasis {
    /// First transverse axis (the reference the `h` component lives on).
    pub h: Vec3,
    /// Second transverse axis, `v = k × h`.
    pub v: Vec3,
    /// Unit propagation direction.
    pub k: Vec3,
}

impl PolBasis {
    /// The frame whose `h` axis is `reference` projected onto the plane
    /// transverse to `k` (and renormalized) — exactly
    /// [`transverse_field`], so a linear antenna's Jones `h` axis *is*
    /// its scalar field direction. `None` when `reference` is
    /// (anti)parallel to `k`.
    pub fn from_reference(reference: Vec3, k: Vec3) -> Option<PolBasis> {
        let h = transverse_field(reference, k)?;
        Some(PolBasis { h, v: k.cross(h), k })
    }

    /// Any valid frame for `k`, chosen deterministically (reference X,
    /// falling back to Y when `k` is along X). Used where only
    /// rotation-invariant quantities matter, e.g. circular states.
    pub fn any(k: Vec3) -> PolBasis {
        PolBasis::from_reference(Vec3::X, k)
            .or_else(|| PolBasis::from_reference(Vec3::Y, k))
            .expect("X or Y is transverse to any unit direction")
    }
}

/// A transverse field in a [`PolBasis`]: complex amplitudes on the
/// frame's `h` and `v` axes. The physical field phasor is
/// `E = h·ĥ + v·v̂` (a complex 3-vector).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JonesVector {
    /// Complex amplitude on the frame's `h` axis.
    pub h: Complex,
    /// Complex amplitude on the frame's `v` axis.
    pub v: Complex,
}

impl JonesVector {
    /// The unit horizontal state `(1, 0)` — a linear antenna radiating
    /// along its frame's `h` axis.
    pub const H: JonesVector = JonesVector { h: Complex::ONE, v: Complex::ZERO };

    /// Field intensity `|h|² + |v|²` (time-averaged power, up to the
    /// usual impedance constant).
    pub fn intensity(self) -> f64 {
        self.h.norm_sq() + self.v.norm_sq()
    }

    /// Complex voltage coupling onto a dipole of orientation `u`
    /// (3-vector, need not be transverse): `h·(ĥ·u) + v·(v̂·u)`.
    ///
    /// For the `H` state this is exactly the scalar path's `ê · u` —
    /// the reduction the equivalence suite pins.
    pub fn couple(self, basis: &PolBasis, u: Vec3) -> Complex {
        self.h * basis.h.dot(u) + self.v * basis.v.dot(u)
    }

    /// The field phasor as two real 3-vectors `(Re E, Im E)`.
    pub fn field(self, basis: &PolBasis) -> (Vec3, Vec3) {
        (
            basis.h * self.h.re + basis.v * self.v.re,
            basis.h * self.h.im + basis.v * self.v.im,
        )
    }
}

/// A 2×2 complex Jones matrix acting on [`JonesVector`]s:
/// `[h'; v'] = [hh hv; vh vv]·[h; v]`. One matrix per propagation leg
/// (emission frame change, Fresnel bounce, depolarizing scatter);
/// a path's end-to-end response is their ordered product.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Jones {
    /// Row h, column h.
    pub hh: Complex,
    /// Row h, column v.
    pub hv: Complex,
    /// Row v, column h.
    pub vh: Complex,
    /// Row v, column v.
    pub vv: Complex,
}

impl Jones {
    /// The identity leg.
    pub const IDENTITY: Jones = Jones {
        hh: Complex::ONE,
        hv: Complex::ZERO,
        vh: Complex::ZERO,
        vv: Complex::ONE,
    };

    /// A diagonal leg: independent complex gains on `h` and `v` (e.g.
    /// Fresnel `diag(r_s, r_p)` in the s/p frame of a bounce).
    pub fn diag(h: Complex, v: Complex) -> Jones {
        Jones { hh: h, hv: Complex::ZERO, vh: Complex::ZERO, vv: v }
    }

    /// An in-plane rotation of the transverse frame by `angle` radians:
    /// `[cos −sin; sin cos]`. Lossless (unitary).
    pub fn rotation(angle: f64) -> Jones {
        let (s, c) = angle.sin_cos();
        Jones {
            hh: Complex::new(c, 0.0),
            hv: Complex::new(-s, 0.0),
            vh: Complex::new(s, 0.0),
            vv: Complex::new(c, 0.0),
        }
    }

    /// The rotation re-expressing a `from`-frame vector in the `to`
    /// frame. Both frames must share the same propagation direction;
    /// the entries are the real direction cosines between the axes.
    pub fn basis_change(from: &PolBasis, to: &PolBasis) -> Jones {
        Jones {
            hh: Complex::new(to.h.dot(from.h), 0.0),
            hv: Complex::new(to.h.dot(from.v), 0.0),
            vh: Complex::new(to.v.dot(from.h), 0.0),
            vv: Complex::new(to.v.dot(from.v), 0.0),
        }
    }

    /// Apply this leg to a field.
    pub fn apply(self, e: JonesVector) -> JonesVector {
        JonesVector {
            h: self.hh * e.h + self.hv * e.v,
            v: self.vh * e.h + self.vv * e.v,
        }
    }

    /// Matrix product `self · inner`: the leg `inner` happens first.
    pub fn compose(self, inner: Jones) -> Jones {
        Jones {
            hh: self.hh * inner.hh + self.hv * inner.vh,
            hv: self.hh * inner.hv + self.hv * inner.vv,
            vh: self.vh * inner.hh + self.vv * inner.vh,
            vv: self.vh * inner.hv + self.vv * inner.vv,
        }
    }

    /// Conjugate transpose.
    pub fn dagger(self) -> Jones {
        Jones {
            hh: self.hh.conj(),
            hv: self.vh.conj(),
            vh: self.hv.conj(),
            vv: self.vv.conj(),
        }
    }

    /// Whether `J†J = I` within `tol` — the lossless-leg property
    /// (rotations, basis changes, pure phase delays).
    pub fn is_unitary(self, tol: f64) -> bool {
        let g = self.dagger().compose(self);
        (g.hh - Complex::ONE).abs() <= tol
            && g.hv.abs() <= tol
            && g.vh.abs() <= tol
            && (g.vv - Complex::ONE).abs() <= tol
    }
}

impl std::ops::Mul for Jones {
    type Output = Jones;
    fn mul(self, rhs: Jones) -> Jones {
        self.compose(rhs)
    }
}

impl std::ops::Mul<JonesVector> for Jones {
    type Output = JonesVector;
    fn mul(self, rhs: JonesVector) -> JonesVector {
        self.apply(rhs)
    }
}

/// The polarization state an antenna radiates, expressed in its own
/// `(h, v)` frame (see `Antenna::jones_along` for how the frame is
/// anchored to the mounted axis). All states are unit-intensity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolState {
    /// Linear at `psi_rad` from the `h` axis: `(cos ψ, sin ψ)`.
    Linear {
        /// Tilt from the frame's `h` axis, radians.
        psi_rad: f64,
    },
    /// Circular: `(1, ∓i)/√2` — `−i` for right-handed (IEEE convention
    /// with the physics `e^{−jkd}` phasor used by the channel).
    Circular {
        /// Right- vs left-hand sense.
        right_handed: bool,
    },
    /// General elliptical state: orientation `ψ` of the major axis and
    /// ellipticity angle `χ` (`tan χ` = minor/major, sign = sense);
    /// `R(ψ)·(cos χ, i·sin χ)`. `χ = 0` is linear, `χ = ±45°` circular.
    Elliptical {
        /// Major-axis tilt from the frame's `h` axis, radians.
        psi_rad: f64,
        /// Ellipticity angle, radians, in `[−π/4, π/4]`.
        chi_rad: f64,
    },
}

impl PolState {
    /// The state's Jones vector in its frame.
    pub fn jones(self) -> JonesVector {
        match self {
            PolState::Linear { psi_rad } => {
                let (s, c) = psi_rad.sin_cos();
                JonesVector { h: Complex::new(c, 0.0), v: Complex::new(s, 0.0) }
            }
            PolState::Circular { right_handed } => {
                let q = std::f64::consts::FRAC_1_SQRT_2;
                let sign = if right_handed { -1.0 } else { 1.0 };
                JonesVector { h: Complex::new(q, 0.0), v: Complex::new(0.0, sign * q) }
            }
            PolState::Elliptical { psi_rad, chi_rad } => {
                let (s, c) = chi_rad.sin_cos();
                Jones::rotation(psi_rad)
                    .apply(JonesVector { h: Complex::new(c, 0.0), v: Complex::new(0.0, s) })
            }
        }
    }

    /// Short human-readable label ("linear 15°", "circular RH", …).
    pub fn label(self) -> String {
        match self {
            PolState::Linear { psi_rad } => format!("linear {:.0}°", psi_rad.to_degrees()),
            PolState::Circular { right_handed } => {
                format!("circular {}", if right_handed { "RH" } else { "LH" })
            }
            PolState::Elliptical { psi_rad, chi_rad } => format!(
                "elliptical ψ={:.0}° χ={:.0}°",
                psi_rad.to_degrees(),
                chi_rad.to_degrees()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_core::deg_to_rad;
    use std::f64::consts::FRAC_PI_2;

    /// Broadside geometry used throughout: antenna above the origin on
    /// the +Z axis looking down, tag at the origin in the X–Y plane.
    fn broadside() -> (Vec3, Vec3) {
        (Vec3::new(0.0, 0.0, 2.5), Vec3::ZERO)
    }

    #[test]
    fn aligned_coupling_is_unity() {
        let (ant, tag) = broadside();
        let c = coupling(ant, Vec3::X, tag, Vec3::X);
        assert!((c.abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_coupling_is_zero() {
        let (ant, tag) = broadside();
        let c = coupling(ant, Vec3::X, tag, Vec3::Y);
        assert!(c.abs() < 1e-12);
    }

    #[test]
    fn coupling_follows_cos_beta_in_broadside() {
        // Rotating the tag in the transverse plane must trace cos β —
        // the law behind Figure 3(b).
        let (ant, tag) = broadside();
        for deg in [0.0, 15.0, 30.0, 45.0, 60.0, 75.0, 89.0] {
            let b = deg_to_rad(deg);
            let dipole = Vec3::new(b.cos(), b.sin(), 0.0);
            let c = coupling(ant, Vec3::X, tag, dipole);
            assert!(
                (c - b.cos()).abs() < 1e-12,
                "β = {deg}°: coupling {c} vs cos β {}",
                b.cos()
            );
        }
    }

    #[test]
    fn mismatch_angle_matches_rotation_in_broadside() {
        let (ant, tag) = broadside();
        for deg in [0.0, 10.0, 45.0, 80.0, 90.0] {
            let b = deg_to_rad(deg);
            let dipole = Vec3::new(b.cos(), b.sin(), 0.0);
            let m = mismatch_angle(ant, Vec3::X, tag, dipole);
            assert!((m - b.min(FRAC_PI_2)).abs() < 1e-9, "deg {deg} → {m}");
        }
    }

    #[test]
    fn dipole_along_los_has_no_coupling() {
        // A dipole pointing straight at the antenna is in its own pattern
        // null: no transverse component.
        let (ant, tag) = broadside();
        let c = coupling(ant, Vec3::X, tag, Vec3::Z);
        assert!(c.abs() < 1e-12);
    }

    #[test]
    fn tilted_dipole_couples_through_projection() {
        // Dipole tilted 45° out of the transverse plane, transverse
        // component along X: coupling is cos 45°, not 1.
        let (ant, tag) = broadside();
        let dipole = Vec3::new(1.0, 0.0, 1.0);
        let c = coupling(ant, Vec3::X, tag, dipole);
        assert!((c - FRAC_PI_2.sin() * 0.0f64.cos() / 2f64.sqrt() * 2.0 / 2f64.sqrt()).abs() < 0.3);
        assert!((c - 1.0 / 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mismatch_angle_ignores_elevation_tilt() {
        // Same tilted dipole: *mismatch angle* normalizes the transverse
        // component, so β = 0 even though coupling < 1.
        let (ant, tag) = broadside();
        let dipole = Vec3::new(1.0, 0.0, 1.0);
        let m = mismatch_angle(ant, Vec3::X, tag, dipole);
        assert!(m < 1e-9);
    }

    #[test]
    fn polarization_axis_parallel_to_los_is_null() {
        let ant = Vec3::new(0.0, 0.0, 2.5);
        // Antenna "polarized" along Z but the tag is straight below: no
        // transverse field at all.
        assert_eq!(transverse_field(Vec3::Z, -Vec3::Z), None);
        let c = coupling(ant, Vec3::Z, Vec3::ZERO, Vec3::X);
        assert_eq!(c, 0.0);
    }

    #[test]
    fn rotate_about_axis_quarter_turn() {
        let e = Vec3::X;
        let r = rotate_about_axis(e, Vec3::Z, FRAC_PI_2);
        assert!((r.x).abs() < 1e-12 && (r.y - 1.0).abs() < 1e-12 && r.z.abs() < 1e-12);
    }

    #[test]
    fn rotation_preserves_norm_and_transversality() {
        let k = Vec3::new(0.0, 0.0, 1.0);
        let e = Vec3::new(0.6, 0.8, 0.0);
        let r = rotate_about_axis(e, k, 1.234);
        assert!((r.norm() - 1.0).abs() < 1e-12);
        assert!(r.dot(k).abs() < 1e-12);
    }

    #[test]
    fn off_broadside_geometry_still_bounded() {
        // Oblique geometry: coupling must stay in [−1, 1].
        let ant = Vec3::new(0.3, -0.2, 1.0);
        for i in 0..50 {
            let a = i as f64 * 0.13;
            let dipole = Vec3::new(a.cos(), a.sin(), 0.3).normalized().unwrap();
            let c = coupling(ant, Vec3::new(0.2, 0.98, 0.0), Vec3::new(0.5, 0.3, 0.0), dipole);
            assert!((-1.0..=1.0).contains(&c));
        }
    }

    // ---- Jones-calculus laws -------------------------------------------

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-14
    }

    fn jones_close(a: Jones, b: Jones) -> bool {
        close(a.hh, b.hh) && close(a.hv, b.hv) && close(a.vh, b.vh) && close(a.vv, b.vv)
    }

    /// Three dissimilar legs for the algebra tests: a rotation, a lossy
    /// diagonal, and a complex mixer.
    fn sample_legs() -> [Jones; 3] {
        [
            Jones::rotation(0.7),
            Jones::diag(Complex::new(0.4, 0.1), Complex::new(-0.3, 0.8)),
            Jones {
                hh: Complex::new(0.2, -0.5),
                hv: Complex::new(0.9, 0.1),
                vh: Complex::new(-0.4, 0.3),
                vv: Complex::new(0.0, 0.6),
            },
        ]
    }

    #[test]
    fn jones_composition_is_associative() {
        let [a, b, c] = sample_legs();
        assert!(jones_close((a * b) * c, a * (b * c)));
        // …and on vectors: applying the product equals applying in turn.
        let e = PolState::Elliptical { psi_rad: 0.3, chi_rad: 0.2 }.jones();
        let via_product = ((a * b) * c).apply(e);
        let via_steps = a.apply(b.apply(c.apply(e)));
        assert!(close(via_product.h, via_steps.h) && close(via_product.v, via_steps.v));
    }

    #[test]
    fn lossless_legs_are_unitary() {
        // Rotations, pure phase diagonals, and frame changes between two
        // bases sharing a ray: all preserve intensity.
        assert!(Jones::rotation(1.234).is_unitary(1e-12));
        assert!(Jones::diag(Complex::cis(0.4), Complex::cis(-2.2)).is_unitary(1e-12));
        let k = Vec3::new(0.3, -0.4, 0.8661).normalized().unwrap();
        let b1 = PolBasis::from_reference(Vec3::X, k).unwrap();
        let b2 = PolBasis::from_reference(Vec3::new(0.2, 0.9, -0.1), k).unwrap();
        let change = Jones::basis_change(&b1, &b2);
        assert!(change.is_unitary(1e-12));
        // A lossy leg must NOT pass the gate.
        assert!(!Jones::diag(Complex::new(0.5, 0.0), Complex::ONE).is_unitary(1e-6));
        // Unitary legs preserve intensity on every state.
        for state in [
            PolState::Linear { psi_rad: 0.9 },
            PolState::Circular { right_handed: true },
            PolState::Elliptical { psi_rad: -0.5, chi_rad: 0.3 },
        ] {
            let out = change.apply(Jones::rotation(0.77).apply(state.jones()));
            assert!((out.intensity() - 1.0).abs() < 1e-12, "{state:?}");
        }
    }

    #[test]
    fn pol_states_are_unit_intensity() {
        for state in [
            PolState::Linear { psi_rad: 0.0 },
            PolState::Linear { psi_rad: 1.1 },
            PolState::Circular { right_handed: true },
            PolState::Circular { right_handed: false },
            PolState::Elliptical { psi_rad: 0.4, chi_rad: -0.6 },
        ] {
            assert!((state.jones().intensity() - 1.0).abs() < 1e-12, "{state:?}");
        }
    }

    #[test]
    fn elliptical_degenerates_to_linear_and_circular() {
        // χ = 0 → linear at ψ.
        let lin = PolState::Elliptical { psi_rad: 0.8, chi_rad: 0.0 }.jones();
        let want = PolState::Linear { psi_rad: 0.8 }.jones();
        assert!(close(lin.h, want.h) && close(lin.v, want.v));
        // χ = −45° → right-handed circular, up to the R(ψ) phase-free
        // rotation (circular states are rotation-invariant in magnitude
        // *and* acquire only a phase under rotation).
        let circ = PolState::Elliptical { psi_rad: 0.8, chi_rad: -std::f64::consts::FRAC_PI_4 }
            .jones();
        assert!((circ.intensity() - 1.0).abs() < 1e-12);
        assert!((circ.h.norm_sq() - 0.5).abs() < 1e-12);
        assert!((circ.v.norm_sq() - 0.5).abs() < 1e-12);
        // h and v components stay in quadrature.
        let rel = circ.v / circ.h;
        assert!((rel.re).abs() < 1e-12 && (rel.im + 1.0).abs() < 1e-12);
    }

    #[test]
    fn h_state_couples_exactly_like_the_scalar_path() {
        // The reduction the channel-equivalence suite relies on, at the
        // unit level: JonesVector::H in the from_reference frame gives
        // bitwise the scalar coupling.
        let ant = Vec3::new(0.2, -0.1, 1.3);
        let tag = Vec3::new(-0.1, 0.6, 0.0);
        let axis = Vec3::new(0.3, 0.95, 0.0);
        let u = Vec3::new(0.4, 0.8, 0.45).normalized().unwrap();
        let k = (tag - ant).normalized().unwrap();
        let basis = PolBasis::from_reference(axis, k).unwrap();
        let jones = JonesVector::H.couple(&basis, u);
        assert_eq!(jones.re, coupling(ant, axis, tag, u));
        assert_eq!(jones.im, 0.0);
    }

    #[test]
    fn pol_basis_is_right_handed_orthonormal() {
        let k = Vec3::new(-0.5, 0.3, 0.81).normalized().unwrap();
        for basis in [
            PolBasis::from_reference(Vec3::new(0.9, 0.1, 0.2), k).unwrap(),
            PolBasis::any(k),
            PolBasis::any(Vec3::X), // the X-reference fallback path
        ] {
            assert!((basis.h.norm() - 1.0).abs() < 1e-12);
            assert!((basis.v.norm() - 1.0).abs() < 1e-12);
            assert!(basis.h.dot(basis.v).abs() < 1e-12);
            assert!(basis.h.dot(basis.k).abs() < 1e-12);
            assert!(basis.v.dot(basis.k).abs() < 1e-12);
            let hxv = basis.h.cross(basis.v);
            assert!((hxv - basis.k).norm() < 1e-12, "h × v = k (right-handed)");
        }
    }
}
