//! The composite monostatic backscatter channel.
//!
//! For each (reader antenna, tag pose, time) triple we compute the
//! one-way complex field coupling onto the tag dipole,
//!
//! ```text
//! F = Σ_paths g_ant(path) · g_tag · A(L_path) · (ê_path · u) · e^{−j 2π L_path / λ}
//! ```
//!
//! summed over the line-of-sight path, image-method wall reflections and
//! the optional bystander scatter. By antenna reciprocity the monostatic
//! round trip is `h = m · F²` with `m` the tag's backscatter modulation
//! factor, so:
//!
//! * received backscatter power `P_rx = P_tx · |h|²` — the reader's RSS;
//! * measured phase `θ = arg h + φ_cable` — note `arg h = 2·arg F`,
//!   which is why phase advances by `4π/λ` per metre of tag motion
//!   (Eq. 5 of the paper);
//! * forward power at the tag `P_tag = P_tx · |F|²` — gated against the
//!   chip sensitivity to decide whether the tag responds at all. This is
//!   what makes reads vanish near β = 90° in Figure 3(b).

use crate::antenna::Antenna;
use crate::multipath::{fresnel_rp, fresnel_rs, Bystander, Reflector, Surface};
use crate::noise::NoiseModel;
use crate::polarization::{rotate_about_axis, transverse_field, Jones, PolBasis};
use crate::propagation::log_distance_amplitude;
use crate::spectrum::ChannelPlan;
use rf_core::{db_to_ratio, wrap_tau, Complex, Vec3};

/// Which polarization formalism [`ChannelModel::evaluate`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Polarimetry {
    /// The paper's reduction: one real coupling factor per path leg
    /// (`ê·u` for linear antennas, constant `1/√2` for circular). For
    /// linear-copolarized broadside rigs this is provably equivalent to
    /// `Jones` (`tests/channel_equivalence.rs`) at roughly half the
    /// per-sample cost — the default and the model every committed
    /// paper artifact was produced under.
    #[default]
    Scalar,
    /// Full Jones-calculus propagation: each path carries a complex
    /// two-component transverse field, bounces compose 2×2 Jones legs
    /// (including the s/p Fresnel split on `Surface::Fresnel`
    /// reflectors), and antennas may radiate circular or elliptical
    /// states.
    Jones,
}

/// How the tag's antenna responds to the incident field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TagPolarization {
    /// A single fixed dipole — the paper's pen tag.
    #[default]
    Dipole,
    /// A polarization-reconfigurable tag (Fara et al.): two orthogonal
    /// dipole states, with the chip driving whichever currently
    /// harvests more forward power. Dodges mismatch fades at the cost
    /// of scrambling the orientation information PolarDraw decodes.
    Reconfigurable,
}

/// Everything the reader can know about one interrogation attempt,
/// before receiver measurement noise and quantization (those live in
/// `rfid-sim`, which owns the reader).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkObservation {
    /// Power delivered to the tag chip, dBm (one-way).
    pub forward_power_dbm: f64,
    /// Backscatter power at the reader port, dBm (round trip).
    pub rx_power_dbm: f64,
    /// Noise-free carrier phase at the reader, radians in `[0, 2π)`.
    pub phase_rad: f64,
    /// Whether the tag chip received enough power to respond.
    pub tag_powered: bool,
    /// The raw round-trip complex gain (amplitude relative to `P_tx`).
    pub round_trip: Complex,
    /// Line-of-sight polarization mismatch angle β, radians (diagnostic).
    pub mismatch_rad: f64,
}

/// The full RF environment: antennas, clutter, regulatory plan, budgets.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelModel {
    /// Reader antennas (PolarDraw uses two; baselines up to four).
    pub antennas: Vec<Antenna>,
    /// Static planar reflectors (office clutter).
    pub reflectors: Vec<Reflector>,
    /// Optional bystander scatterer (Fig. 16 experiments).
    pub bystander: Option<Bystander>,
    /// Carrier schedule.
    pub plan: ChannelPlan,
    /// Receiver noise model (consumed by `rfid-sim`).
    pub noise: NoiseModel,
    /// Reader conducted transmit power, dBm (FCC limit: 30 dBm).
    pub tx_power_dbm: f64,
    /// Tag antenna gain, dBi (AD-227m5-class inlays ≈ 2 dBi).
    pub tag_gain_dbi: f64,
    /// Backscatter modulation loss, dB (power lost to the modulation
    /// depth of the chip; ≈ 5 dB for common chips).
    pub backscatter_loss_db: f64,
    /// Tag chip forward-power sensitivity, dBm (Monza-class ≈ −18 dBm).
    pub tag_sensitivity_dbm: f64,
    /// Per-antenna cable/connector phase offsets, radians.
    pub cable_phase_rad: Vec<f64>,
    /// Path-loss exponent (2.0 = free space; slightly above in clutter).
    pub path_loss_exponent: f64,
    /// Polarization formalism used by [`ChannelModel::evaluate`].
    pub polarimetry: Polarimetry,
    /// Tag antenna polarization behaviour.
    pub tag: TagPolarization,
}

impl ChannelModel {
    /// An empty free-space channel with the given antennas.
    pub fn free_space(antennas: Vec<Antenna>) -> ChannelModel {
        let n = antennas.len();
        ChannelModel {
            antennas,
            reflectors: Vec::new(),
            bystander: None,
            plan: ChannelPlan::fixed_mid_band(),
            noise: NoiseModel::default(),
            tx_power_dbm: 30.0,
            tag_gain_dbi: 2.0,
            backscatter_loss_db: 5.0,
            tag_sensitivity_dbm: -18.0,
            cable_phase_rad: vec![0.0; n],
            path_loss_exponent: 2.0,
            polarimetry: Polarimetry::Scalar,
            tag: TagPolarization::Dipole,
        }
    }

    /// The paper's deployment (Figs. 4/17): two linearly-polarized
    /// antennas mounted `spacing` apart above the writing block, facing
    /// it from `standoff` metres in front (the "tag-to-reader distance"
    /// of Table 5). Polarization axes lie in the board plane at ±γ from
    /// board-vertical; with the line of sight roughly perpendicular to
    /// the board, the transverse plane ≈ the board plane and the Fig. 8
    /// sector construction applies directly (the residual obliquity
    /// warps the *effective* γ slightly — a real deployment calibrates
    /// it, and `experiments::setup::effective_gamma` computes it).
    ///
    /// Board frame: X rightward, Y downward (write area around
    /// y ≈ 0.55–0.9 m), Z out of the board toward the antennas.
    pub fn two_antenna_whiteboard(gamma_rad: f64, spacing_m: f64, standoff_m: f64) -> ChannelModel {
        let pol1 = pol_axis_at(std::f64::consts::FRAC_PI_2 + gamma_rad);
        let pol2 = pol_axis_at(std::f64::consts::FRAC_PI_2 - gamma_rad);
        let write_center = Vec3::new(0.0, 0.72, 0.0);
        let mount = |x: f64| Vec3::new(x, 0.15, standoff_m.max(0.05));
        let a1_pos = mount(-spacing_m / 2.0);
        let a2_pos = mount(spacing_m / 2.0);
        let a1 = Antenna::linear(
            a1_pos,
            (write_center - a1_pos).normalized().unwrap(),
            pol1,
        );
        let a2 = Antenna::linear(
            a2_pos,
            (write_center - a2_pos).normalized().unwrap(),
            pol2,
        );
        let mut ch = ChannelModel::free_space(vec![a1, a2]);
        ch.reflectors = office_clutter();
        ch.cable_phase_rad = vec![0.9, 2.1];
        ch
    }

    /// Number of antenna ports.
    pub fn antenna_count(&self) -> usize {
        self.antennas.len()
    }

    /// Evaluate the link for `antenna_idx` with the tag at `tag_pos`
    /// (metres) and dipole orientation `dipole` (need not be unit) at
    /// time `t` seconds, under the configured [`Polarimetry`] and
    /// [`TagPolarization`].
    ///
    /// A [`TagPolarization::Reconfigurable`] tag evaluates both of its
    /// orthogonal dipole states and reports the one harvesting more
    /// forward power (ties keep the commanded orientation), so the
    /// returned `mismatch_rad` describes the state the chip actually
    /// selected.
    ///
    /// # Panics
    /// Panics if `antenna_idx` is out of range.
    pub fn evaluate(&self, antenna_idx: usize, tag_pos: Vec3, dipole: Vec3, t: f64) -> LinkObservation {
        match self.tag {
            TagPolarization::Dipole => self.evaluate_oriented(antenna_idx, tag_pos, dipole, t),
            TagPolarization::Reconfigurable => {
                let u = dipole.normalized().unwrap_or(Vec3::Z);
                let primary = self.evaluate_oriented(antenna_idx, tag_pos, u, t);
                let alt = self.evaluate_oriented(antenna_idx, tag_pos, orthogonal_dipole(u), t);
                if alt.forward_power_dbm > primary.forward_power_dbm {
                    alt
                } else {
                    primary
                }
            }
        }
    }

    fn evaluate_oriented(&self, antenna_idx: usize, tag_pos: Vec3, dipole: Vec3, t: f64) -> LinkObservation {
        match self.polarimetry {
            Polarimetry::Scalar => self.evaluate_scalar(antenna_idx, tag_pos, dipole, t),
            Polarimetry::Jones => self.evaluate_jones(antenna_idx, tag_pos, dipole, t),
        }
    }

    /// The paper's scalar reduction: every path leg contributes a real
    /// coupling factor. This is byte-for-byte the pre-Jones channel —
    /// golden traces pin its output.
    fn evaluate_scalar(&self, antenna_idx: usize, tag_pos: Vec3, dipole: Vec3, t: f64) -> LinkObservation {
        let ant = &self.antennas[antenna_idx];
        let lambda = self.plan.wavelength_at(t);
        let g_tag = db_to_ratio(self.tag_gain_dbi).sqrt();
        let u = dipole.normalized().unwrap_or(Vec3::Z);

        let mut f = Complex::ZERO;

        // Line of sight.
        let d_los = ant.position.distance(tag_pos);
        let los_amp = ant.amplitude_gain_towards(tag_pos)
            * g_tag
            * log_distance_amplitude(d_los, lambda, self.path_loss_exponent);
        let los_coupling = ant.polarization_coupling(tag_pos, u);
        f += Complex::from_polar(
            los_amp * los_coupling,
            -std::f64::consts::TAU * d_los / lambda,
        );

        // Wall reflections (image method, one bounce).
        for refl in &self.reflectors {
            if let Some(term) = reflector_term(ant, refl, tag_pos, u, lambda, g_tag, self.path_loss_exponent) {
                f += term;
            }
        }

        // Bystander scatter.
        if let Some(by) = &self.bystander {
            if let Some(term) = bystander_term(ant, by, tag_pos, u, lambda, g_tag, t, self.path_loss_exponent) {
                f += term;
            }
        }

        self.observe(f, antenna_idx, ant.mismatch_angle(tag_pos, u))
    }

    /// Full Jones-calculus propagation: every path carries a complex
    /// transverse field composed through per-leg Jones matrices before
    /// coupling onto the dipole. On linear-copolarized rigs with
    /// `Empirical` surfaces each leg's field is purely real and the sum
    /// reduces to [`ChannelModel::evaluate_scalar`] up to floating-point
    /// association (`tests/channel_equivalence.rs` pins ≤ 1e-12).
    fn evaluate_jones(&self, antenna_idx: usize, tag_pos: Vec3, dipole: Vec3, t: f64) -> LinkObservation {
        let ant = &self.antennas[antenna_idx];
        let lambda = self.plan.wavelength_at(t);
        let g_tag = db_to_ratio(self.tag_gain_dbi).sqrt();
        let u = dipole.normalized().unwrap_or(Vec3::Z);

        let mut f = Complex::ZERO;

        // Line of sight.
        let d_los = ant.position.distance(tag_pos);
        let los_amp = ant.amplitude_gain_towards(tag_pos)
            * g_tag
            * log_distance_amplitude(d_los, lambda, self.path_loss_exponent);
        if let Some((basis, jv)) = ant.jones_towards(tag_pos) {
            f += jv.couple(&basis, u)
                * Complex::from_polar(los_amp, -std::f64::consts::TAU * d_los / lambda);
        }

        // Wall reflections (image method, one Jones bounce each).
        for refl in &self.reflectors {
            if let Some(term) = jones_reflector_term(ant, refl, tag_pos, u, lambda, g_tag, self.path_loss_exponent) {
                f += term;
            }
        }

        // Bystander scatter.
        if let Some(by) = &self.bystander {
            if let Some(term) = jones_bystander_term(ant, by, tag_pos, u, lambda, g_tag, t, self.path_loss_exponent) {
                f += term;
            }
        }

        self.observe(f, antenna_idx, ant.mismatch_angle(tag_pos, u))
    }

    /// Shared measurement tail: fold the one-way field `F` into the
    /// monostatic observables. Both polarimetry paths funnel through
    /// here with an identical floating-point op sequence.
    fn observe(&self, f: Complex, antenna_idx: usize, mismatch_rad: f64) -> LinkObservation {
        let forward_power_dbm = self.tx_power_dbm + amp_to_db(f.abs());
        let tag_powered = forward_power_dbm >= self.tag_sensitivity_dbm;

        let m = db_to_ratio(-self.backscatter_loss_db).sqrt();
        let h = (f * f).scale(m);
        let rx_power_dbm = self.tx_power_dbm + amp_to_db(h.abs());
        let cable = self.cable_phase_rad.get(antenna_idx).copied().unwrap_or(0.0);
        // Readers report phase in the Eq.-6 convention of the paper:
        // θ = 4π·l/λ (mod 2π), i.e. *increasing* with distance — the
        // negation of the physical e^{−jkd} propagation argument.
        let phase_rad = wrap_tau(-h.arg() + cable);

        LinkObservation {
            forward_power_dbm,
            rx_power_dbm,
            phase_rad,
            tag_powered,
            round_trip: h,
            mismatch_rad,
        }
    }
}

/// The second dipole state of a reconfigurable tag: the in-board-plane
/// orthogonal of `u` (falling back to X for a board-normal dipole).
fn orthogonal_dipole(u: Vec3) -> Vec3 {
    Vec3::new(-u.y, u.x, 0.0).normalized().unwrap_or(Vec3::X)
}

/// Unit polarization axis in the board plane at `angle` radians from +X.
pub fn pol_axis_at(angle: f64) -> Vec3 {
    Vec3::new(angle.cos(), angle.sin(), 0.0)
}

/// The standard "cluttered office" reflector set used by the default
/// scenes: a wall behind the writer, the ceiling, and a side wall, each
/// with moderate reflectivity and some depolarization.
pub fn office_clutter() -> Vec<Reflector> {
    vec![
        // Wall 2 m behind the whiteboard plane (z = +2 m side is the
        // writer's side; the wall faces back toward the board).
        Reflector {
            point: Vec3::new(0.0, 0.0, 2.0),
            normal: -Vec3::Z,
            reflectivity: 0.35,
            depolarization: 0.7,
            surface: Surface::Empirical,
        },
        // Ceiling 1.5 m above the antennas (y = −1.5 in board frame).
        Reflector {
            point: Vec3::new(0.0, -1.5, 0.0),
            normal: Vec3::Y,
            reflectivity: 0.3,
            depolarization: 1.1,
            surface: Surface::Empirical,
        },
        // Side wall 2.5 m to the right.
        Reflector {
            point: Vec3::new(2.5, 0.0, 0.0),
            normal: -Vec3::X,
            reflectivity: 0.25,
            depolarization: 0.5,
            surface: Surface::Empirical,
        },
    ]
}

fn amp_to_db(a: f64) -> f64 {
    if a <= 0.0 {
        f64::NEG_INFINITY
    } else {
        20.0 * a.log10()
    }
}

fn reflector_term(
    ant: &Antenna,
    refl: &Reflector,
    tag_pos: Vec3,
    u: Vec3,
    lambda: f64,
    g_tag: f64,
    ple: f64,
) -> Option<Complex> {
    let (len, arrive_dir) = refl.path(ant.position, tag_pos);
    // Radiated field toward the mirror image of the tag.
    let image = refl.mirror(tag_pos);
    let emit_dir = (image - ant.position).normalized()?;
    let e0 = match ant.linear_axis() {
        Some(axis) => transverse_field(axis, emit_dir)?,
        // Circular antennas: use an arbitrary transverse reference at
        // −3 dB; orientation information is destroyed anyway.
        None => transverse_field(Vec3::X, emit_dir)? * std::f64::consts::FRAC_1_SQRT_2,
    };
    let e1 = refl.reflect_polarization(e0, arrive_dir);
    let coupling = e1.dot(u);
    let amp = ant.amplitude_gain_towards(image) * g_tag * log_distance_amplitude(len, lambda, ple);
    Some(Complex::from_polar(
        amp * coupling,
        -std::f64::consts::TAU * len / lambda,
    ))
}

/// One reflector's contribution under the Jones channel. `Empirical`
/// surfaces apply the scalar channel's exact field transform to the real
/// and imaginary field parts independently (the transform is linear, so
/// this is exact — and bitwise-identical for the purely real fields of
/// linear antennas). `Fresnel` surfaces split the field into s/p
/// components in the plane-of-incidence frame, apply `diag(r_s, r_p)`,
/// and re-express the bounced field in the arrival frame.
fn jones_reflector_term(
    ant: &Antenna,
    refl: &Reflector,
    tag_pos: Vec3,
    u: Vec3,
    lambda: f64,
    g_tag: f64,
    ple: f64,
) -> Option<Complex> {
    let (len, arrive_dir) = refl.path(ant.position, tag_pos);
    let image = refl.mirror(tag_pos);
    let emit_dir = (image - ant.position).normalized()?;
    let (emission_basis, jv) = ant.jones_along(emit_dir)?;
    let coupling = match refl.surface {
        Surface::Empirical => {
            let (re, im) = jv.field(&emission_basis);
            let re_out = refl.reflect_polarization(re, arrive_dir);
            let im_out = refl.reflect_polarization(im, arrive_dir);
            Complex::new(re_out.dot(u), im_out.dot(u))
        }
        Surface::Fresnel { rel_permittivity } => {
            let cos_i = emit_dir.dot(refl.normal).abs();
            // s axis: perpendicular to the plane of incidence. It is
            // shared by the incident and reflected rays; the p axis
            // rotates with the ray.
            let s = emit_dir
                .cross(refl.normal)
                .normalized()
                .unwrap_or(emission_basis.h); // normal incidence: s/p degenerate
            let in_basis = PolBasis { h: s, v: emit_dir.cross(s), k: emit_dir };
            let out_basis = PolBasis { h: s, v: arrive_dir.cross(s), k: arrive_dir };
            let rs = fresnel_rs(rel_permittivity, cos_i);
            let rp = fresnel_rp(rel_permittivity, cos_i);
            let bounce = Jones::diag(Complex::new(rs, 0.0), Complex::new(rp, 0.0))
                .compose(Jones::basis_change(&emission_basis, &in_basis));
            bounce.apply(jv).couple(&out_basis, u)
        }
    };
    let amp = ant.amplitude_gain_towards(image) * g_tag * log_distance_amplitude(len, lambda, ple);
    Some(coupling * Complex::from_polar(amp, -std::f64::consts::TAU * len / lambda))
}

/// The bystander's contribution under the Jones channel: the scalar
/// channel's depolarizing rotation applied to the real and imaginary
/// field parts independently (linear, hence exact).
fn jones_bystander_term(
    ant: &Antenna,
    by: &Bystander,
    tag_pos: Vec3,
    u: Vec3,
    lambda: f64,
    g_tag: f64,
    t: f64,
    ple: f64,
) -> Option<Complex> {
    let body = by.position_at(t);
    let (l1, l2, arrive_dir) = by.path(ant.position, tag_pos, t);
    let emit_dir = (body - ant.position).normalized()?;
    let (basis, jv) = ant.jones_along(emit_dir)?;
    let (re, im) = jv.field(&basis);
    let re_out = rotate_about_axis(re, arrive_dir, by.depolarization) * by.scattering;
    let im_out = rotate_about_axis(im, arrive_dir, by.depolarization) * by.scattering;
    let coupling = Complex::new(re_out.dot(u), im_out.dot(u));
    let total = l1 + l2;
    let amp = ant.amplitude_gain_towards(body) * g_tag * log_distance_amplitude(total, lambda, ple);
    Some(coupling * Complex::from_polar(amp, -std::f64::consts::TAU * total / lambda))
}

fn bystander_term(
    ant: &Antenna,
    by: &Bystander,
    tag_pos: Vec3,
    u: Vec3,
    lambda: f64,
    g_tag: f64,
    t: f64,
    ple: f64,
) -> Option<Complex> {
    let body = by.position_at(t);
    let (l1, l2, arrive_dir) = by.path(ant.position, tag_pos, t);
    let emit_dir = (body - ant.position).normalized()?;
    let e0 = match ant.linear_axis() {
        Some(axis) => transverse_field(axis, emit_dir)?,
        None => transverse_field(Vec3::X, emit_dir)? * std::f64::consts::FRAC_1_SQRT_2,
    };
    // Scattered field: depolarized rotation of the incident field,
    // attenuated by the body's scattering coefficient. The two legs are
    // combined as a single detour path (specular-point approximation).
    let e1 = rotate_about_axis(e0, arrive_dir, by.depolarization) * by.scattering;
    let coupling = e1.dot(u);
    let total = l1 + l2;
    let amp = ant.amplitude_gain_towards(body) * g_tag * log_distance_amplitude(total, lambda, ple);
    Some(Complex::from_polar(
        amp * coupling,
        -std::f64::consts::TAU * total / lambda,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multipath::BystanderMotion;
    use rf_core::deg_to_rad;
    use std::f64::consts::FRAC_PI_2;

    /// Single downward-looking antenna 1 m above the origin, X-polarized,
    /// free space: the cleanest testbed.
    fn bench_channel() -> ChannelModel {
        let ant = Antenna::linear(Vec3::new(0.0, 0.0, 1.0), -Vec3::Z, Vec3::X);
        ChannelModel::free_space(vec![ant])
    }

    #[test]
    fn aligned_tag_at_one_metre_hits_expected_budget() {
        let ch = bench_channel();
        let obs = ch.evaluate(0, Vec3::ZERO, Vec3::X, 0.0);
        // Analytic: F = g_ant · g_tag · λ/(4πd)
        //             = 1.995 · 1.259 · 0.02608 ≈ 0.0655
        // → P_tag = 30 + 20·log10 F ≈ +6.3 dBm;
        //   P_rx  = 30 + 20·log10(m·F²) ≈ −22.3 dBm (m = −5 dB).
        assert!(obs.tag_powered);
        assert!((obs.forward_power_dbm - 6.33).abs() < 0.1, "fwd {}", obs.forward_power_dbm);
        assert!((obs.rx_power_dbm - (-22.35)).abs() < 0.2, "rx {}", obs.rx_power_dbm);
    }

    #[test]
    fn rss_follows_cos4_law_under_rotation() {
        // Figure 3(b): rotating the tag sweeps RSS as 40·log10 cos β.
        let ch = bench_channel();
        let rss0 = ch.evaluate(0, Vec3::ZERO, Vec3::X, 0.0).rx_power_dbm;
        for deg in [15.0, 30.0, 45.0, 60.0] {
            let b = deg_to_rad(deg);
            let dipole = Vec3::new(b.cos(), b.sin(), 0.0);
            let rss = ch.evaluate(0, Vec3::ZERO, dipole, 0.0).rx_power_dbm;
            let expect_drop = -40.0 * b.cos().log10();
            assert!(
                ((rss0 - rss) - expect_drop).abs() < 0.05,
                "β = {deg}°: drop {} vs cos⁴ law {expect_drop}",
                rss0 - rss
            );
        }
    }

    #[test]
    fn cross_polarized_tag_loses_power_in_free_space() {
        let ch = bench_channel();
        let obs = ch.evaluate(0, Vec3::ZERO, Vec3::Y, 0.0);
        assert!(!obs.tag_powered, "no NLoS energy in free space at β = 90°");
        assert_eq!(obs.forward_power_dbm, f64::NEG_INFINITY);
    }

    #[test]
    fn cross_polarized_tag_may_survive_via_reflections() {
        let mut ch = bench_channel();
        // Side wall in the antenna's front hemisphere (a wall behind the
        // antenna would be in the panel's back null and contribute
        // nothing — tested by `back_hemisphere_is_dark`).
        ch.reflectors = vec![Reflector {
            point: Vec3::new(2.0, 0.0, 0.0),
            normal: -Vec3::X,
            reflectivity: 0.8,
            depolarization: 1.2,
            surface: Surface::Empirical,
        }];
        let obs = ch.evaluate(0, Vec3::ZERO, Vec3::Y, 0.0);
        // The depolarized reflection couples into the crossed dipole.
        assert!(obs.forward_power_dbm > f64::NEG_INFINITY);
        // And its phase is set by the *reflected* path — the "spurious
        // reading" mechanism of §2.
        let aligned = ch.evaluate(0, Vec3::ZERO, Vec3::X, 0.0);
        let spurious_gap = rf_core::angle::phase_distance(obs.phase_rad, aligned.phase_rad);
        assert!(spurious_gap > 0.2, "reflected path must shift phase, gap {spurious_gap}");
    }

    #[test]
    fn phase_advances_at_4pi_per_wavelength() {
        // Eq. 5: Δθ = 4π·Δd/λ — the round trip doubles the slope, and
        // the reported phase *increases* as the tag recedes (Eq. 6).
        let ch = bench_channel();
        let lambda = ch.plan.wavelength_at(0.0);
        let p1 = ch.evaluate(0, Vec3::ZERO, Vec3::X, 0.0).phase_rad;
        let dz = -0.01; // 1 cm farther from the antenna
        let p2 = ch.evaluate(0, Vec3::new(0.0, 0.0, dz), Vec3::X, 0.0).phase_rad;
        let measured = rf_core::angle::phase_diff(p2, p1);
        let expect = 2.0 * std::f64::consts::TAU * 0.01 / lambda;
        assert!(
            (measured - rf_core::wrap_pi(expect)).abs() < 1e-6,
            "measured {measured} expected {expect}"
        );
    }

    #[test]
    fn rss_insensitive_to_small_translation() {
        // Figure 3(c): 8 cm of motion moves RSS by well under a dB.
        let ch = bench_channel();
        let r1 = ch.evaluate(0, Vec3::new(0.0, 0.0, 0.0), Vec3::X, 0.0).rx_power_dbm;
        let r2 = ch.evaluate(0, Vec3::new(0.04, 0.0, 0.0), Vec3::X, 0.0).rx_power_dbm;
        assert!((r1 - r2).abs() < 1.0, "Δ = {}", (r1 - r2).abs());
    }

    #[test]
    fn whiteboard_preset_geometry() {
        let ch = ChannelModel::two_antenna_whiteboard(deg_to_rad(15.0), 0.56, 0.3);
        assert_eq!(ch.antenna_count(), 2);
        let p1 = ch.antennas[0].linear_axis().unwrap();
        let p2 = ch.antennas[1].linear_axis().unwrap();
        // Axes straddle board-vertical symmetrically.
        let a1 = p1.y.atan2(p1.x);
        let a2 = p2.y.atan2(p2.x);
        assert!((a1 - (FRAC_PI_2 + deg_to_rad(15.0))).abs() < 1e-9);
        assert!((a2 - (FRAC_PI_2 - deg_to_rad(15.0))).abs() < 1e-9);
        // A pen-like tag mid-board is readable by both antennas.
        let dipole = pol_axis_at(FRAC_PI_2);
        for idx in 0..2 {
            let obs = ch.evaluate(idx, Vec3::new(0.0, 0.7, 0.0), dipole, 0.0);
            assert!(obs.tag_powered, "antenna {idx} cannot power the tag");
        }
    }

    #[test]
    fn walking_bystander_makes_channel_time_varying() {
        let mut ch = bench_channel();
        ch.bystander = Some(Bystander {
            position: Vec3::new(0.4, 0.0, 0.5),
            motion: BystanderMotion::Walking { amplitude_m: 0.5, frequency_hz: 0.5 },
            scattering: 0.25,
            depolarization: 0.9,
        });
        let p0 = ch.evaluate(0, Vec3::ZERO, Vec3::X, 0.0).phase_rad;
        let p1 = ch.evaluate(0, Vec3::ZERO, Vec3::X, 0.7).phase_rad;
        assert!(
            rf_core::angle::phase_distance(p0, p1) > 1e-4,
            "moving scatterer must modulate the composite phase"
        );
    }

    #[test]
    fn static_scene_is_time_invariant() {
        let mut ch = bench_channel();
        ch.reflectors = office_clutter();
        let a = ch.evaluate(0, Vec3::new(0.1, 0.2, 0.0), Vec3::X, 0.0);
        let b = ch.evaluate(0, Vec3::new(0.1, 0.2, 0.0), Vec3::X, 5.0);
        assert_eq!(a, b);
    }

    // ---- Jones-channel physics laws ------------------------------------

    #[test]
    fn jones_reduces_to_scalar_on_the_whiteboard_rig() {
        // Spot check of the equivalence the dedicated suite sweeps:
        // linear-copolarized rig + empirical surfaces → same observables.
        let scalar = ChannelModel::two_antenna_whiteboard(deg_to_rad(15.0), 0.56, 0.3);
        let mut jones = scalar.clone();
        jones.polarimetry = Polarimetry::Jones;
        for (i, dipole) in [Vec3::X, Vec3::Y, Vec3::new(0.6, 0.8, 0.0), Vec3::new(0.3, -0.7, 0.4)]
            .into_iter()
            .enumerate()
        {
            let pos = Vec3::new(0.1 * i as f64 - 0.15, 0.72, 0.0);
            for idx in 0..2 {
                let a = scalar.evaluate(idx, pos, dipole, 0.0);
                let b = jones.evaluate(idx, pos, dipole, 0.0);
                assert!((a.rx_power_dbm - b.rx_power_dbm).abs() < 1e-12, "{a:?}\n{b:?}");
                assert!((a.phase_rad - b.phase_rad).abs() < 1e-12);
                assert!((a.forward_power_dbm - b.forward_power_dbm).abs() < 1e-12);
                assert_eq!(a.tag_powered, b.tag_powered);
            }
        }
    }

    #[test]
    fn circular_reader_pays_exactly_3db_at_every_rotation() {
        // Textbook circular→linear polarization loss: the coupling
        // magnitude is 1/√2 for *every* in-plane dipole angle, so forward
        // power sits 3.01 dB below the aligned linear antenna and the
        // round trip doubles that to 6.02 dB — flat across β, which is
        // exactly why the paper swaps the stock circular antennas out.
        let three_db = 10.0 * 2f64.log10();
        let mut lin = bench_channel();
        lin.polarimetry = Polarimetry::Jones;
        let lin0 = lin.evaluate(0, Vec3::ZERO, Vec3::X, 0.0);
        let mut circ =
            ChannelModel::free_space(vec![Antenna::circular(Vec3::new(0.0, 0.0, 1.0), -Vec3::Z)]);
        circ.polarimetry = Polarimetry::Jones;
        for deg in [0.0, 20.0, 45.0, 63.0, 90.0, 137.0] {
            let b = deg_to_rad(deg);
            let u = Vec3::new(b.cos(), b.sin(), 0.0);
            let obs = circ.evaluate(0, Vec3::ZERO, u, 0.0);
            let fwd_loss = lin0.forward_power_dbm - obs.forward_power_dbm;
            let rx_loss = lin0.rx_power_dbm - obs.rx_power_dbm;
            assert!((fwd_loss - three_db).abs() < 1e-9, "β = {deg}°: fwd loss {fwd_loss}");
            assert!((rx_loss - 2.0 * three_db).abs() < 1e-9, "β = {deg}°: rx loss {rx_loss}");
        }
    }

    #[test]
    fn brewster_angle_kills_the_p_polarized_bounce() {
        // Geometry arranged so the single wall bounce is (a) the only
        // propagation path and (b) purely p-polarized at exactly the
        // Brewster angle for εr = 2: antenna polarized along Z sees its
        // own LoS null toward the tag straight below it, and the wall at
        // x = 1/√8 puts the bounce at tan θ = √2 = √εr.
        let w = 1.0 / 8f64.sqrt();
        let wall = |surface| Reflector {
            point: Vec3::new(w, 0.0, 0.0),
            normal: -Vec3::X,
            reflectivity: 0.8,
            depolarization: 0.6,
            surface,
        };
        let image = Vec3::new(2.0 * w, 0.0, 0.0);
        let pos = Vec3::new(0.0, 0.0, 1.0);
        let ant = Antenna::linear(pos, (image - pos).normalized().unwrap(), Vec3::Z);
        let mut ch = ChannelModel::free_space(vec![ant]);
        ch.polarimetry = Polarimetry::Jones;

        ch.reflectors = vec![wall(Surface::Fresnel { rel_permittivity: 2.0 })];
        let brewster = ch.evaluate(0, Vec3::ZERO, Vec3::Z, 0.0);
        // r_p(θ_B) = 0: the bounce vanishes (to fp rounding of θ_B).
        assert!(
            brewster.forward_power_dbm < -150.0,
            "Brewster bounce must vanish, got {} dBm",
            brewster.forward_power_dbm
        );

        // Same geometry off Brewster (εr = 6) or with the empirical
        // boundary: the bounce survives.
        ch.reflectors = vec![wall(Surface::Fresnel { rel_permittivity: 6.0 })];
        let off = ch.evaluate(0, Vec3::ZERO, Vec3::Z, 0.0);
        assert!(off.forward_power_dbm > -60.0, "off-Brewster {}", off.forward_power_dbm);
        ch.reflectors = vec![wall(Surface::Empirical)];
        let emp = ch.evaluate(0, Vec3::ZERO, Vec3::Z, 0.0);
        assert!(emp.forward_power_dbm > -60.0, "empirical {}", emp.forward_power_dbm);
    }

    #[test]
    fn fresnel_s_bounce_tracks_rs_exactly() {
        // Bounce-only geometry: tag in the antenna's back hemisphere
        // (LoS gain is exactly zero), ceiling bounce oblique in the XZ
        // plane. A Y-polarized antenna radiates purely s-polarized into
        // that plane of incidence, so swapping the perfect mirror for a
        // Fresnel dielectric must shift forward power by 20·log10|r_s|
        // and nothing else.
        let pos = Vec3::new(0.0, 0.0, 1.0);
        let tag = Vec3::new(1.0, 0.0, 0.0);
        let ceiling = |surface| Reflector {
            point: Vec3::new(0.0, 0.0, 2.0),
            normal: -Vec3::Z,
            reflectivity: 1.0,
            depolarization: 0.0,
            surface,
        };
        let image = ceiling(Surface::Empirical).mirror(tag); // (1, 0, 4)
        let boresight = (image - pos).normalized().unwrap();
        // LoS direction (1, 0, −1) is behind this boresight.
        assert!(boresight.dot((tag - pos).normalized().unwrap()) < 0.0);
        let ant = Antenna::linear(pos, boresight, Vec3::Y);
        let mut ch = ChannelModel::free_space(vec![ant]);
        ch.polarimetry = Polarimetry::Jones;

        let eps_r = 3.0;
        let cos_i = boresight.dot(-Vec3::Z).abs();
        let rs = fresnel_rs(eps_r, cos_i);

        ch.reflectors = vec![ceiling(Surface::Fresnel { rel_permittivity: eps_r })];
        let fresnel = ch.evaluate(0, tag, Vec3::Y, 0.0);
        ch.reflectors = vec![ceiling(Surface::Empirical)];
        let mirror = ch.evaluate(0, tag, Vec3::Y, 0.0);
        let measured = fresnel.forward_power_dbm - mirror.forward_power_dbm;
        let want = 20.0 * rs.abs().log10();
        assert!((measured - want).abs() < 1e-9, "Δ = {measured}, 20·log10|r_s| = {want}");
    }

    #[test]
    fn reconfigurable_tag_dodges_the_cross_polarized_blackout() {
        // Fara-style tag: crossed dipole flips to its orthogonal state
        // and keeps harvesting; the fixed dipole blacks out.
        let mut ch = bench_channel();
        ch.tag = TagPolarization::Reconfigurable;
        let rec = ch.evaluate(0, Vec3::ZERO, Vec3::Y, 0.0);
        assert!(rec.tag_powered, "reconfigurable tag must dodge the null");
        let fixed = bench_channel().evaluate(0, Vec3::ZERO, Vec3::Y, 0.0);
        assert!(!fixed.tag_powered);
        // Aligned dipole: the primary state already wins, so the
        // reconfigurable observation matches the fixed one exactly.
        let a = bench_channel().evaluate(0, Vec3::ZERO, Vec3::X, 0.0);
        let b = ch.evaluate(0, Vec3::ZERO, Vec3::X, 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn cable_phase_shifts_reported_phase_only() {
        let mut ch = bench_channel();
        let base = ch.evaluate(0, Vec3::ZERO, Vec3::X, 0.0);
        ch.cable_phase_rad = vec![1.0];
        let shifted = ch.evaluate(0, Vec3::ZERO, Vec3::X, 0.0);
        assert_eq!(base.rx_power_dbm, shifted.rx_power_dbm);
        let d = rf_core::angle::phase_diff(shifted.phase_rad, base.phase_rad);
        assert!((d - 1.0).abs() < 1e-9);
    }
}
