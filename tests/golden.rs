//! Golden-trace snapshot tests: pin the Determinism contract in
//! DESIGN.md against committed artifacts.
//!
//! Two layers:
//!
//! * **Report snapshots** — four representative experiments (fig13,
//!   table5, table6, polarization) re-run on the reduced-fidelity
//!   configuration the registry smoke test uses (`trials = 1`,
//!   `cell_scale = 8`, seed 42) must serialize bit-identically to the
//!   JSON committed under `tests/snapshots/`.
//! * **Trace snapshots** — one full-fidelity letter trial ('L', seed 42)
//!   must reproduce its committed `TagReport` stream and recovered
//!   trail bit-for-bit, with faults disabled *and* under an identity
//!   `FaultPlan` (the injector's no-op guarantee); the same trial under
//!   the Jones channel is pinned separately.
//!
//! The snapshots were generated from the pre-fault-layer code, so these
//! tests prove the fault-injection PR changed nothing on clean input.
//!
//! To regenerate after an *intentional* behaviour change:
//! `GOLDEN_REGEN=1 cargo test --test golden` — then review the diff.

use experiments::runner::RunOpts;
use experiments::setup::{polardraw_config_for, run_trial, simulate_reports, TrialSetup};
use polardraw_core::hmm::KernelOptions;
use polardraw_core::{OnlineOptions, OnlineTracker};
use recognition::{procrustes_distance, LetterRecognizer};
use rf_core::json::{Json, ToJson};
use rf_core::Vec2;
use std::path::PathBuf;

fn snapshot_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/snapshots").join(name)
}

/// Compare `actual` against the committed snapshot, or rewrite the
/// snapshot when `GOLDEN_REGEN` is set.
fn assert_matches_snapshot(name: &str, actual: &str) {
    let path = snapshot_path(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing snapshot {} ({e}); run GOLDEN_REGEN=1", path.display()));
    assert!(
        expected == actual,
        "{name}: output drifted from the committed golden snapshot.\n\
         If this change is intentional, regenerate with GOLDEN_REGEN=1 \
         and review the diff.\n--- expected ---\n{expected}\n--- actual ---\n{actual}"
    );
}

/// The reduced-fidelity configuration shared with `registry_smoke.rs`.
fn golden_opts() -> RunOpts {
    RunOpts { trials: 1, cell_scale: 8.0, seed: 42, ..RunOpts::default() }
}

#[test]
fn golden_report_fig13() {
    run_report_snapshot("fig13");
}

#[test]
fn golden_report_table5() {
    run_report_snapshot("table5");
}

#[test]
fn golden_report_table6() {
    run_report_snapshot("table6");
}

#[test]
fn golden_report_polarization() {
    run_report_snapshot("polarization");
}

fn run_report_snapshot(id: &str) {
    let def = experiments::registry::find(id).unwrap_or_else(|| panic!("{id} registered"));
    let reports = (def.run)(&golden_opts());
    let report = reports
        .iter()
        .find(|r| r.id == id)
        .unwrap_or_else(|| panic!("{id} produced by its definition"));
    assert_matches_snapshot(&format!("{id}.json"), &report.to_json().to_json_string());
}

/// Serialize a full-fidelity trial (stream + recovered trail) with the
/// workspace JSON writer's shortest-round-trip `f64` formatting, so a
/// string comparison is a bit-for-bit comparison.
fn trace_json(run: &experiments::setup::TrialRun) -> String {
    Json::obj([
        ("letter", Json::str("L")),
        ("seed", Json::Num(42.0)),
        ("reports", Json::Arr(run.reports.iter().map(|r| r.to_json()).collect())),
        ("trail_times", Json::Arr(run.trail.times.iter().map(|&t| Json::Num(t)).collect())),
        (
            "trail_points",
            Json::Arr(
                run.trail
                    .points
                    .iter()
                    .map(|p| Json::Arr(vec![Json::Num(p.x), Json::Num(p.y)]))
                    .collect(),
            ),
        ),
    ])
    .to_json_string()
}

#[test]
fn golden_trace_letter_trial() {
    let run = run_trial(&TrialSetup::letter('L'), 42);
    assert_matches_snapshot("trace_letter_L.json", &trace_json(&run));
}

/// The same full-fidelity trial under the Jones channel. The
/// equivalence suite proves this stream is bit-identical to the scalar
/// one *today*; pinning it separately means a future change that
/// breaks the reduction (deliberately or not) shows up as golden drift
/// in the polarimetric path specifically.
#[test]
fn golden_trace_letter_trial_jones() {
    let setup = TrialSetup::letter('L').with_channel(pen_sim::scene::ChannelMode::Jones);
    let run = run_trial(&setup, 42);
    assert_matches_snapshot("trace_letter_L_jones.json", &trace_json(&run));
}

/// Decode a trial's stream through the online engine with an explicit
/// kernel (batch mode, so the result is the full-hindsight trail).
fn trail_with_kernel(setup: &TrialSetup, seed: u64, kernel: KernelOptions) -> Vec<Vec2> {
    let (_, reports) = simulate_reports(setup, seed);
    let cfg = polardraw_config_for(setup);
    let mut online = OnlineTracker::new(cfg, OnlineOptions::batch().with_kernel(kernel));
    online.extend(&reports);
    online.finalize().trail.points
}

/// The golden-trace workload (full-fidelity letter 'L', seed 42) under
/// the `F32Tolerance` fast kernel, pinned by the tolerance oracle
/// rather than bitwise: the fast trail must stay within 1 cm Procrustes
/// distance of the exact trail (the one `trace_letter_L.json` pins
/// bit-for-bit), must not classify differently, and must stay in the
/// paper's error regime against ground truth.
#[test]
fn golden_f32_letter_trail_within_tolerance_oracle() {
    let setup = TrialSetup::letter('L');
    let (truth, _) = simulate_reports(&setup, 42);
    let exact = trail_with_kernel(&setup, 42, KernelOptions::exact());
    let fast = trail_with_kernel(&setup, 42, KernelOptions::fast());
    assert_eq!(exact.len(), fast.len(), "trail lengths must agree");

    let d_kernels = procrustes_distance(&exact, &fast, 64).expect("non-degenerate trails");
    assert!(d_kernels < 0.01, "fast-vs-exact Procrustes {d_kernels:.4} m ≥ 1 cm");

    let d_exact = procrustes_distance(&truth, &exact, 64).expect("non-degenerate");
    let d_fast = procrustes_distance(&truth, &fast, 64).expect("non-degenerate");
    assert!(d_fast < 0.10, "fast kernel left the paper's error regime: {d_fast:.4} m");
    assert!(
        d_fast <= d_exact + 0.01,
        "fast kernel degraded truth error: {d_fast:.4} m vs exact {d_exact:.4} m"
    );

    let rec = LetterRecognizer::new();
    assert_eq!(rec.classify(&fast), rec.classify(&exact), "classification parity");
    eprintln!(
        "letter-L f32 deltas: fast-vs-exact {d_kernels:.5} m, \
         truth error exact {d_exact:.5} m / fast {d_fast:.5} m"
    );
}

/// Accuracy-parity snapshot on the fig13 reduced config: every letter
/// of the alphabet decoded once (seed 42, cell_scale 8) under both
/// kernels, with each trail's classification recorded. Classification
/// is discrete, so the table is a stable artifact even though the f32
/// trail itself is not bit-pinned. Regenerate with `GOLDEN_REGEN=1`
/// after an intentional kernel change and review the parity column.
#[test]
fn golden_fig13_precision_parity() {
    let rec = LetterRecognizer::new();
    let mut rows = Vec::new();
    let mut exact_correct = 0usize;
    let mut fast_correct = 0usize;
    for &ch in pen_sim::glyph::ALPHABET.iter() {
        let setup = TrialSetup::letter(ch).with_cell_scale(8.0);
        let exact = trail_with_kernel(&setup, 42, KernelOptions::exact());
        let fast = trail_with_kernel(&setup, 42, KernelOptions::fast());
        let e = rec.classify(&exact);
        let f = rec.classify(&fast);
        exact_correct += usize::from(e == Some(ch));
        fast_correct += usize::from(f == Some(ch));
        let as_str = |c: Option<char>| c.map(String::from).unwrap_or_else(|| "-".into());
        rows.push(Json::obj([
            ("letter", Json::str(ch.to_string())),
            ("exact", Json::str(as_str(e))),
            ("fast", Json::str(as_str(f))),
        ]));
    }
    assert!(
        fast_correct + 1 >= exact_correct,
        "fast kernel lost reduced-config letter accuracy: {fast_correct} vs {exact_correct}"
    );
    let doc = Json::obj([
        ("config", Json::str("fig13 reduced: trials=1, cell_scale=8, seed=42")),
        ("exact_correct", Json::Num(exact_correct as f64)),
        ("fast_correct", Json::Num(fast_correct as f64)),
        ("letters", Json::Arr(rows)),
    ])
    .to_json_string();
    assert_matches_snapshot("fig13_precision_parity.json", &doc);
}
