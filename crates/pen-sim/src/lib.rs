//! # pen-sim — handwriting workload generator
//!
//! The paper's evaluation is driven by volunteers writing letters and
//! words on a whiteboard (or in the air) with an RFID-tagged pen. This
//! crate is the synthetic volunteer:
//!
//! * [`glyph`] — stroke templates for the uppercase alphabet, defined on
//!   a unit box.
//! * [`path`] — turns glyphs/words into arc-length-parameterized,
//!   constant-speed timed polylines, including the inter-stroke
//!   transitions that a continuously-responding tag inevitably records
//!   (the paper notes in §7 that PolarDraw cannot detect pen lifts).
//! * [`kinematics`] — the §3.2 writing model: the wrist rotates the pen
//!   clockwise when moving right and counter-clockwise when moving left,
//!   with a first-order lag; elevation stays roughly constant. Produces
//!   the full 3-D pen pose (tip position + dipole orientation) that the
//!   RF substrate consumes.
//! * [`profile`] — per-user writing styles (speed, size, wrist gain /
//!   "stiffness", jitter): User 2 of Fig. 21 writes "stiff", i.e. with
//!   almost no azimuthal rotation.
//! * [`scene`] — whiteboard vs in-air sessions: in-air writing wobbles
//!   out of the board plane, which is exactly why Fig. 15 shows an ~8 %
//!   accuracy drop.
//! * [`words`] — word layout and the dictionary word lists used by the
//!   Fig. 18 groups.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod glyph;
pub mod kinematics;
pub mod path;
pub mod profile;
pub mod scene;
pub mod words;

pub use glyph::{glyph, Glyph};
pub use kinematics::{PenPose, WristModel};
pub use path::{timed_path, TimedPoint};
pub use profile::WriterProfile;
pub use scene::{Scene, Session};

use rf_core::Vec2;

/// A ground-truth trajectory: the pen tip's board-plane positions over
/// time, in metres.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruth {
    /// Timestamps, seconds.
    pub times: Vec<f64>,
    /// Tip positions on the board, metres.
    pub points: Vec<Vec2>,
}

impl GroundTruth {
    /// Total duration, seconds (0 for empty).
    pub fn duration(&self) -> f64 {
        match (self.times.first(), self.times.last()) {
            (Some(a), Some(b)) => b - a,
            _ => 0.0,
        }
    }

    /// Just the points.
    pub fn path(&self) -> &[Vec2] {
        &self.points
    }
}
