//! Experiment result reporting: aligned text tables plus CSV and JSON
//! export.

use rf_core::json::{FromJson, Json, JsonError, ToJson};

/// The outcome of one experiment: an identified, titled table with the
/// paper's claim alongside, ready to print or dump as CSV or JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Experiment id ("fig13", "table5", ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// What the paper reports for this experiment (for eyeballing the
    /// shape next to our measured rows).
    pub paper_claim: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (deviations, sub-results).
    pub notes: Vec<String>,
}

impl Report {
    /// Start a report.
    pub fn new(id: &str, title: &str, paper_claim: &str) -> Report {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            paper_claim: paper_claim.to_string(),
            headers: Vec::new(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Set the column headers.
    pub fn headers<S: Into<String>>(mut self, headers: Vec<S>) -> Report {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Append a data row.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        self.rows.push(row.into_iter().map(Into::into).collect());
    }

    /// Append a note.
    pub fn push_note<S: Into<String>>(&mut self, note: S) {
        self.notes.push(note.into());
    }

    /// Render as CSV (headers + rows; notes as trailing comments).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("# {note}\n"));
        }
        out
    }
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        let strings = |v: &[String]| Json::Arr(v.iter().map(|s| Json::str(s.clone())).collect());
        Json::obj([
            ("id", Json::str(self.id.clone())),
            ("title", Json::str(self.title.clone())),
            ("paper_claim", Json::str(self.paper_claim.clone())),
            ("headers", strings(&self.headers)),
            ("rows", Json::Arr(self.rows.iter().map(|r| strings(r)).collect())),
            ("notes", strings(&self.notes)),
        ])
    }
}

impl FromJson for Report {
    fn from_json(v: &Json) -> Result<Report, JsonError> {
        let field = |key: &str| {
            v.get(key).ok_or_else(|| JsonError {
                message: format!("Report: missing `{key}`"),
                offset: 0,
            })
        };
        let text = |j: &Json| {
            j.as_str().map(str::to_string).ok_or_else(|| JsonError {
                message: "Report: expected string".to_string(),
                offset: 0,
            })
        };
        let strings = |j: &Json| -> Result<Vec<String>, JsonError> {
            j.as_arr()
                .ok_or_else(|| JsonError {
                    message: "Report: expected array".to_string(),
                    offset: 0,
                })?
                .iter()
                .map(text)
                .collect()
        };
        Ok(Report {
            id: text(field("id")?)?,
            title: text(field("title")?)?,
            paper_claim: text(field("paper_claim")?)?,
            headers: strings(field("headers")?)?,
            rows: field("rows")?
                .as_arr()
                .ok_or_else(|| JsonError {
                    message: "Report: `rows` must be an array".to_string(),
                    offset: 0,
                })?
                .iter()
                .map(&strings)
                .collect::<Result<_, _>>()?,
            notes: strings(field("notes")?)?,
        })
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        writeln!(f, "paper: {}", self.paper_claim)?;
        // Column widths over headers + rows.
        let cols = self.headers.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        if !self.headers.is_empty() {
            writeln!(f, "{}", fmt_row(&self.headers))?;
            writeln!(f, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)))?;
        }
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        for note in &self.notes {
            writeln!(f, "note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("t1", "Demo", "claims 42").headers(vec!["k", "v"]);
        r.push_row(vec!["alpha", "1"]);
        r.push_row(vec!["beta", "2,3"]);
        r.push_note("a note");
        r
    }

    #[test]
    fn display_contains_everything() {
        let s = sample().to_string();
        assert!(s.contains("t1"));
        assert!(s.contains("claims 42"));
        assert!(s.contains("alpha"));
        assert!(s.contains("note: a note"));
    }

    #[test]
    fn csv_escapes_commas() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("k,v\n"));
        assert!(csv.contains("\"2,3\""));
        assert!(csv.contains("# a note"));
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = sample();
        let parsed = Json::parse(&r.to_json().to_json_string()).unwrap();
        assert_eq!(Report::from_json(&parsed).unwrap(), r);
    }

    #[test]
    fn display_aligns_columns() {
        let s = sample().to_string();
        let lines: Vec<&str> = s.lines().collect();
        // header line and first data row start at the same column for
        // the second field.
        let hpos = lines.iter().find(|l| l.starts_with("k")).unwrap().find('v').unwrap();
        let dpos = lines.iter().find(|l| l.starts_with("alpha")).unwrap().find('1').unwrap();
        assert_eq!(hpos, dpos);
    }
}
