//! Property-based tests over the workspace's core invariants.

use proptest::prelude::*;
use recognition::procrustes::align;
use recognition::resample::{prepare, resample};
use rf_core::angle::{phase_diff, unwrap_phases, wrap_pi, wrap_tau};
use rf_core::{Mat2, Vec2, Vec3};
use rfid_sim::llrp;
use rfid_sim::TagReport;

proptest! {
    #[test]
    fn wrap_tau_lands_in_range(a in -1e6f64..1e6) {
        let w = wrap_tau(a);
        prop_assert!((0.0..std::f64::consts::TAU).contains(&w));
        // Same point on the circle.
        prop_assert!((w.sin() - a.sin()).abs() < 1e-6);
        prop_assert!((w.cos() - a.cos()).abs() < 1e-6);
    }

    #[test]
    fn wrap_pi_lands_in_range(a in -1e6f64..1e6) {
        let w = wrap_pi(a);
        prop_assert!((-std::f64::consts::PI..=std::f64::consts::PI).contains(&w));
    }

    #[test]
    fn phase_diff_is_antisymmetric_on_the_circle(a in 0.0f64..6.28, b in 0.0f64..6.28) {
        let d1 = phase_diff(a, b);
        let d2 = phase_diff(b, a);
        // Antisymmetric except at the ±π branch point.
        if d1.abs() < std::f64::consts::PI - 1e-9 {
            prop_assert!((d1 + d2).abs() < 1e-9);
        }
    }

    #[test]
    fn unwrap_preserves_circle_positions(phases in prop::collection::vec(0.0f64..6.28, 1..80)) {
        let unwrapped = unwrap_phases(&phases);
        prop_assert_eq!(unwrapped.len(), phases.len());
        for (u, p) in unwrapped.iter().zip(&phases) {
            prop_assert!((wrap_tau(*u) - wrap_tau(*p)).abs() < 1e-9);
        }
        // Adjacent steps never exceed π in magnitude.
        for w in unwrapped.windows(2) {
            prop_assert!((w[1] - w[0]).abs() <= std::f64::consts::PI + 1e-9);
        }
    }

    #[test]
    fn rotation_matrices_preserve_length(angle in -10.0f64..10.0, x in -5.0f64..5.0, y in -5.0f64..5.0) {
        let v = Vec2::new(x, y);
        let r = Mat2::rotation(angle).apply(v);
        prop_assert!((r.norm() - v.norm()).abs() < 1e-9);
    }

    #[test]
    fn vec3_rejection_is_orthogonal(
        vx in -3.0f64..3.0, vy in -3.0f64..3.0, vz in -3.0f64..3.0,
        ax in -1.0f64..1.0, ay in -1.0f64..1.0, az in -1.0f64..1.0,
    ) {
        let v = Vec3::new(vx, vy, vz);
        if let Some(axis) = Vec3::new(ax, ay, az).normalized() {
            let r = v.reject_from(axis);
            prop_assert!(r.dot(axis).abs() < 1e-9);
        }
    }

    #[test]
    fn resample_preserves_endpoints_and_count(
        pts in prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 2..30),
        n in 2usize..100,
    ) {
        let pts: Vec<Vec2> = pts.into_iter().map(|(x, y)| Vec2::new(x, y)).collect();
        let length: f64 = pts.windows(2).map(|w| w[0].distance(w[1])).sum();
        prop_assume!(length > 1e-6);
        let rs = resample(&pts, n).expect("non-degenerate polyline");
        prop_assert_eq!(rs.len(), n);
        prop_assert!(rs[0].distance(pts[0]) < 1e-9);
        prop_assert!(rs[n - 1].distance(*pts.last().unwrap()) < 1e-6);
    }

    #[test]
    fn procrustes_removes_any_similarity_transform(
        pts in prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 4..20),
        angle in -3.0f64..3.0,
        scale in 0.2f64..4.0,
        tx in -2.0f64..2.0,
        ty in -2.0f64..2.0,
    ) {
        let pts: Vec<Vec2> = pts.into_iter().map(|(x, y)| Vec2::new(x, y)).collect();
        // Need genuine 2-D extent for a well-posed alignment.
        prop_assume!(prepare(&pts, 16).is_some());
        let rot = Mat2::rotation(angle);
        let moved: Vec<Vec2> =
            pts.iter().map(|&p| rot.apply(p) * scale + Vec2::new(tx, ty)).collect();
        let a = align(&pts, &moved, f64::INFINITY).expect("alignable");
        prop_assert!(a.rms_residual < 1e-6, "residual {}", a.rms_residual);
    }

    #[test]
    fn llrp_round_trips_arbitrary_reports(
        entries in prop::collection::vec(
            (0.0f64..1000.0, 0usize..4, -90.0f64..0.0, 0.0f64..6.283, 0usize..50u64 as usize, 0u64..u64::MAX),
            0..40,
        )
    ) {
        let reports: Vec<TagReport> = entries
            .into_iter()
            .map(|(t, antenna, rssi, phase, channel, epc)| TagReport {
                t, antenna, rssi_dbm: rssi, phase_rad: phase, channel, epc,
            })
            .collect();
        let frame = llrp::encode_report(&reports, 9);
        let (id, decoded) = llrp::decode_report(&frame).expect("self-encoded frame");
        prop_assert_eq!(id, 9);
        prop_assert_eq!(decoded.len(), reports.len());
        for (a, b) in reports.iter().zip(&decoded) {
            prop_assert_eq!(a.antenna, b.antenna);
            prop_assert_eq!(a.channel, b.channel);
            prop_assert_eq!(a.epc, b.epc);
            prop_assert!((a.t - b.t).abs() < 1e-5);
            prop_assert!((a.rssi_dbm - b.rssi_dbm).abs() <= 0.005 + 1e-9);
            prop_assert!(
                rf_core::angle::phase_distance(a.phase_rad, b.phase_rad)
                    <= std::f64::consts::TAU / 65536.0 + 1e-9
            );
        }
    }

    #[test]
    fn polarization_coupling_is_bounded(
        px in -1.0f64..1.0, py in -1.0f64..1.0, pz in 0.1f64..2.0,
        dx in -1.0f64..1.0, dy in -1.0f64..1.0, dz in -1.0f64..1.0,
        pol in 0.0f64..6.283,
    ) {
        let axis = Vec3::new(pol.cos(), pol.sin(), 0.0);
        let c = rf_physics::polarization::coupling(
            Vec3::new(px, py, pz),
            axis,
            Vec3::ZERO,
            Vec3::new(dx, dy, dz),
        );
        prop_assert!((-1.0..=1.0).contains(&c), "coupling {c}");
    }

    #[test]
    fn free_space_phase_slope_is_4pi_per_metre(
        x in -0.3f64..0.3, y in 0.4f64..0.9, step_mm in 0.5f64..3.0,
    ) {
        // Anywhere in the writing area, moving the tag radially away
        // from the antenna advances the reported phase at 4π/λ per
        // metre (Eq. 5's slope), in a clean free-space channel.
        use rf_physics::antenna::Antenna;
        let ant = Antenna::linear(Vec3::new(0.0, 0.15, 0.65), -Vec3::Z, Vec3::X);
        let ant_pos = ant.position;
        let ch = rf_physics::ChannelModel::free_space(vec![ant]);
        let lambda = ch.plan.wavelength_at(0.0);
        let p1 = Vec3::new(x, y, 0.0);
        let dir = (p1 - ant_pos).normalized().unwrap();
        let p2 = p1 + dir * (step_mm / 1000.0);
        let o1 = ch.evaluate(0, p1, Vec3::X, 0.0);
        let o2 = ch.evaluate(0, p2, Vec3::X, 0.0);
        prop_assume!(o1.tag_powered && o2.tag_powered);
        let d_true = p2.distance(ant_pos) - p1.distance(ant_pos);
        let expect = 4.0 * std::f64::consts::PI * d_true / lambda;
        let measured = phase_diff(o2.phase_rad, o1.phase_rad);
        prop_assert!((measured - expect).abs() < 1e-6,
            "measured {measured} expected {expect}");
    }

    #[test]
    fn free_space_rss_is_monotone_in_mismatch(
        b1 in 0.0f64..1.45, b2 in 0.0f64..1.45,
    ) {
        // Broadside free space: larger polarization mismatch, lower RSS.
        use rf_physics::antenna::Antenna;
        let ant = Antenna::linear(Vec3::new(0.0, 0.0, 1.0), -Vec3::Z, Vec3::X);
        let ch = rf_physics::ChannelModel::free_space(vec![ant]);
        let rss = |b: f64| {
            ch.evaluate(0, Vec3::ZERO, Vec3::new(b.cos(), b.sin(), 0.0), 0.0).rx_power_dbm
        };
        let (lo, hi) = (b1.min(b2), b1.max(b2));
        prop_assume!(hi - lo > 1e-3);
        prop_assert!(rss(lo) >= rss(hi) - 1e-9, "β {lo} vs {hi}");
    }

    #[test]
    fn reader_quantization_is_idempotent(rssi in -90.0f64..-10.0, phase in 0.0f64..6.283) {
        use rfid_sim::reader::{quantize_phase, quantize_rssi};
        let r1 = quantize_rssi(rssi, 0.5);
        prop_assert_eq!(quantize_rssi(r1, 0.5), r1);
        let p1 = quantize_phase(phase, 12);
        prop_assert!((quantize_phase(p1, 12) - p1).abs() < 1e-12);
    }

    #[test]
    fn kalman_smoother_preserves_length_and_stability(
        pts in prop::collection::vec((-0.3f64..0.3, 0.4f64..0.9), 3..60),
    ) {
        use polardraw_core::smoother::{smooth, SmootherConfig};
        let points: Vec<Vec2> = pts.into_iter().map(|(x, y)| Vec2::new(x, y)).collect();
        let times: Vec<f64> = (0..points.len()).map(|i| i as f64 * 0.05).collect();
        let out = smooth(&times, &points, &SmootherConfig::default());
        prop_assert_eq!(out.len(), points.len());
        // Smoothed points stay within the measurement cloud's bounding
        // box padded by a few sigmas — no runaway filter states.
        let (mut x0, mut x1, mut y0, mut y1) =
            (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
        for p in &points {
            x0 = x0.min(p.x); x1 = x1.max(p.x);
            y0 = y0.min(p.y); y1 = y1.max(p.y);
        }
        for p in &out {
            prop_assert!(p.x >= x0 - 0.05 && p.x <= x1 + 0.05);
            prop_assert!(p.y >= y0 - 0.05 && p.y <= y1 + 0.05);
            prop_assert!(p.x.is_finite() && p.y.is_finite());
        }
    }

    #[test]
    fn glyph_rendering_is_total_over_ascii_words(word in "[A-Z]{1,6}") {
        // Any uppercase word renders to a non-empty, finite session.
        let s = pen_sim::scene::write_text(
            &pen_sim::Scene::default(),
            &pen_sim::WriterProfile::natural(),
            &word,
            3,
        );
        prop_assert!(!s.poses.is_empty());
        for p in &s.poses {
            prop_assert!(p.tip.x.is_finite() && p.tip.y.is_finite());
            prop_assert!((p.dipole.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn feasible_region_is_monotone_in_phase(d1 in 0.0f64..3.0, d2 in 0.0f64..3.0) {
        let cfg = polardraw_core::distance::DistanceConfig::default();
        let small = polardraw_core::distance::feasible_region([Some(d1.min(d2)), None], 0.05, &cfg);
        let large = polardraw_core::distance::feasible_region([Some(d1.max(d2)), None], 0.05, &cfg);
        prop_assert!(small.min_dist <= large.min_dist + 1e-12);
    }
}
