//! Word lists for the Fig. 18 word-recognition experiment.
//!
//! The paper draws 10 random words per length group (2–5 letters) from
//! the Oxford English Dictionary. We fix a deterministic sample of
//! common English words per group so the experiment is reproducible.

/// Ten two-letter words.
pub const WORDS_2: [&str; 10] = ["AT", "BE", "DO", "GO", "IF", "IN", "IT", "ON", "TO", "UP"];

/// Ten three-letter words.
pub const WORDS_3: [&str; 10] =
    ["AND", "CAT", "DOG", "FAR", "HOT", "MAP", "PEN", "RUN", "SKY", "WIN"];

/// Ten four-letter words.
pub const WORDS_4: [&str; 10] =
    ["BLUE", "DARK", "FISH", "GOLD", "HAND", "LAMP", "MOON", "RAIN", "STAR", "WIND"];

/// Ten five-letter words.
pub const WORDS_5: [&str; 10] =
    ["APPLE", "BREAD", "CLOUD", "DREAM", "EARTH", "GREEN", "HOUSE", "LIGHT", "RIVER", "STONE"];

/// The word group for a given word length (2–5).
pub fn words_of_length(len: usize) -> Option<&'static [&'static str]> {
    match len {
        2 => Some(&WORDS_2),
        3 => Some(&WORDS_3),
        4 => Some(&WORDS_4),
        5 => Some(&WORDS_5),
        _ => None,
    }
}

/// All word groups with their lengths, in Fig. 18 order.
pub fn all_groups() -> [(usize, &'static [&'static str]); 4] {
    [(2, &WORDS_2), (3, &WORDS_3), (4, &WORDS_4), (5, &WORDS_5)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_have_ten_words_of_correct_length() {
        for (len, words) in all_groups() {
            assert_eq!(words.len(), 10);
            for w in words {
                assert_eq!(w.len(), len, "{w}");
                assert!(w.chars().all(|c| c.is_ascii_uppercase()));
            }
        }
    }

    #[test]
    fn words_are_unique_within_group() {
        for (_, words) in all_groups() {
            let mut sorted: Vec<&str> = words.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), words.len());
        }
    }

    #[test]
    fn lookup_by_length() {
        assert!(words_of_length(2).is_some());
        assert!(words_of_length(5).is_some());
        assert!(words_of_length(1).is_none());
        assert!(words_of_length(6).is_none());
    }
}
