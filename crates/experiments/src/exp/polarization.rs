//! Reader polarization × tag reconfiguration under the Jones channel
//! (not in the paper).
//!
//! The cos⁴β story — and with it PolarDraw's whole rotational estimator
//! — is derived for two *linearly* polarized antennas. The Jones channel
//! can express what the scalar reduction cannot: circular or elliptical
//! reader polarization and polarization-reconfigurable tags (Fara et
//! al.). This experiment sweeps those states against two observables:
//!
//! * the **rotation null**: spin a tag dipole through the board plane at
//!   the write centre and measure the RSS swing on one port. Linear
//!   readers trace the deep cos⁴β null the paper exploits; a circular
//!   reader flattens it to the multipath ripple — the textbook scenario
//!   where cos⁴β breaks.
//! * **letter accuracy**: the flattened null destroys exactly the
//!   orientation information the decoder inverts, so the ablation also
//!   shows *why* the paper swaps the stock circular antennas out.
//!
//! Committed results live in `results/polarization.{csv,json}`.

use crate::exp::SHORT_LETTERS;
use crate::report::Report;
use crate::runner::{letter_accuracy, run_letter_trials, RunOpts};
use crate::setup::{rig_for, TrialSetup};
use pen_sim::scene::ChannelMode;
use rf_core::Vec3;
use rf_physics::batch::{BatchOptions, ChannelBatch, PoseBatch, RigFactors};
use rf_physics::channel::pol_axis_at;
use rf_physics::{LinkObservation, PolState, TagPolarization};
use std::f64::consts::FRAC_PI_2;

/// One reader/tag polarization condition of the sweep.
struct Condition {
    label: &'static str,
    channel: ChannelMode,
    reader_pol: Option<PolState>,
    tag: TagPolarization,
}

fn conditions() -> Vec<Condition> {
    vec![
        Condition {
            label: "linear ±γ · fixed tag · scalar",
            channel: ChannelMode::Scalar,
            reader_pol: None,
            tag: TagPolarization::Dipole,
        },
        Condition {
            label: "linear ±γ · fixed tag · jones",
            channel: ChannelMode::Jones,
            reader_pol: None,
            tag: TagPolarization::Dipole,
        },
        Condition {
            label: "circular RH · fixed tag · jones",
            channel: ChannelMode::Jones,
            reader_pol: Some(PolState::Circular { right_handed: true }),
            tag: TagPolarization::Dipole,
        },
        Condition {
            label: "elliptical χ=22.5° · fixed tag · jones",
            channel: ChannelMode::Jones,
            reader_pol: Some(PolState::Elliptical { psi_rad: 0.0, chi_rad: 22.5f64.to_radians() }),
            tag: TagPolarization::Dipole,
        },
        Condition {
            label: "linear ±γ · reconfigurable tag · jones",
            channel: ChannelMode::Jones,
            reader_pol: None,
            tag: TagPolarization::Reconfigurable,
        },
        Condition {
            label: "circular RH · reconfigurable tag · jones",
            channel: ChannelMode::Jones,
            reader_pol: Some(PolState::Circular { right_handed: true }),
            tag: TagPolarization::Reconfigurable,
        },
    ]
}

fn setup_for(c: &Condition) -> TrialSetup {
    let mut s = TrialSetup::letter('L')
        .with_channel(c.channel)
        .with_tag_mode(c.tag);
    if let Some(state) = c.reader_pol {
        s = s.with_reader_pol(state);
    }
    s
}

/// Spin a unit dipole through the board plane at the write centre and
/// measure port 0: `(null_depth_db, blackout_fraction)`. The null depth
/// is the spread of the finite RSS samples; blackout is the fraction of
/// orientations where the forward-power gate silences the tag.
fn rotation_sweep(setup: &TrialSetup) -> (f64, f64) {
    let rig = rig_for(setup);
    let write_center = Vec3::new(0.0, 0.72, 0.0);
    let steps = 36; // 5° steps through a half turn
    // The whole sweep is one dense pose grid over a fixed rig — exactly
    // the batch engine's shape. Freeze the rig once and evaluate the 36
    // orientations in one call; a hopping plan (never this experiment,
    // but the setup is caller-supplied) falls back to per-link.
    let mut poses = PoseBatch::with_capacity(steps);
    for i in 0..steps {
        let beta = i as f64 / steps as f64 * std::f64::consts::PI;
        poses.push(write_center, pol_axis_at(FRAC_PI_2 + beta), 0.0);
    }
    let observations: Vec<LinkObservation> = match RigFactors::freeze(&rig) {
        Some(factors) => {
            ChannelBatch::new(&factors, BatchOptions::default()).evaluate(0, &poses)
        }
        None => (0..poses.len())
            .map(|i| rig.evaluate(0, poses.position(i), poses.dipole(i), poses.t(i)))
            .collect(),
    };
    let mut finite: Vec<f64> = Vec::new();
    let mut blackouts = 0usize;
    for obs in &observations {
        if !obs.tag_powered {
            blackouts += 1;
        }
        if obs.rx_power_dbm.is_finite() {
            finite.push(obs.rx_power_dbm);
        }
    }
    let depth = match (
        finite.iter().cloned().reduce(f64::max),
        finite.iter().cloned().reduce(f64::min),
    ) {
        (Some(max), Some(min)) => max - min,
        _ => f64::INFINITY, // every orientation below the noise floor
    };
    (depth, blackouts as f64 / steps as f64)
}

/// Run the polarization-state sweep.
pub fn run(opts: &RunOpts) -> Vec<Report> {
    let mut report = Report::new(
        "polarization",
        "Reader polarization × tag reconfiguration under the Jones channel",
        "not in paper: circular reader flattens the rotation null to the multipath ripple but costs letter accuracy; reconfigurable tags clear blackouts",
    )
    .headers(vec![
        "Condition",
        "Rotation null depth (dB)",
        "Blackout (% of sweep)",
        "Letter accuracy (%)",
    ]);
    let trials_per = opts.trials.div_ceil(2).max(1);
    for (ci, cond) in conditions().iter().enumerate() {
        let base = setup_for(cond);
        let (depth, blackout) = rotation_sweep(&base);
        let conditions: Vec<(char, TrialSetup)> = SHORT_LETTERS
            .iter()
            .map(|&ch| {
                let mut s = base.clone();
                s.text = ch.to_string();
                (ch, s)
            })
            .collect();
        let trials = run_letter_trials(
            &conditions,
            trials_per,
            opts.seed.wrapping_add(900 + ci as u64),
            opts,
        );
        report.push_row(vec![
            cond.label.to_string(),
            format!("{:.1}", depth),
            format!("{:.0}", 100.0 * blackout),
            format!("{:.0}", 100.0 * letter_accuracy(&trials)),
        ]);
    }
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conditions_are_distinct_and_cover_both_channels() {
        let conds = conditions();
        let mut labels: Vec<&str> = conds.iter().map(|c| c.label).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), conds.len());
        assert!(conds.iter().any(|c| c.channel == ChannelMode::Scalar));
        assert!(conds.iter().any(|c| c.channel == ChannelMode::Jones));
        assert!(conds.iter().any(|c| c.tag == TagPolarization::Reconfigurable));
    }

    #[test]
    fn circular_reader_flattens_the_rotation_null() {
        // The acceptance-criterion scenario: the scalar/linear rig's
        // deep rotation null collapses under a circular reader.
        let conds = conditions();
        let (linear_depth, _) = rotation_sweep(&setup_for(&conds[0]));
        let (circ_depth, circ_blackout) = rotation_sweep(&setup_for(&conds[2]));
        assert!(
            linear_depth > circ_depth + 6.0,
            "linear null {linear_depth:.1} dB must dwarf circular {circ_depth:.1} dB"
        );
        assert_eq!(circ_blackout, 0.0, "circular coupling never gates the tag off");
    }

    #[test]
    fn reconfigurable_tag_clears_linear_blackouts() {
        let conds = conditions();
        let (_, fixed_blackout) = rotation_sweep(&setup_for(&conds[1]));
        let (_, reconf_blackout) = rotation_sweep(&setup_for(&conds[4]));
        assert!(reconf_blackout <= fixed_blackout);
        assert_eq!(reconf_blackout, 0.0);
    }
}
