//! # polardraw-core — the PolarDraw tracking algorithm
//!
//! Faithful implementation of §3 of *"Leveraging Electromagnetic
//! Polarization in a Two-Antenna Whiteboard in the Air"* (CoNEXT 2016):
//! recover a pen's trajectory from the RSS and phase reported by **two**
//! linearly-polarized RFID antennas.
//!
//! The pipeline mirrors Figure 5 of the paper:
//!
//! 1. [`preprocess`] — 50 ms window averaging of RSS and phase, plus
//!    rejection of the "spurious" phase readings that occur when the tag
//!    is nearly cross-polarized and only multipath energy reaches it
//!    (§3.1).
//! 2. [`model`] — the writing model (§3.2): pen azimuth/elevation
//!    geometry (Eq. 1), the sector construction of Fig. 8(c), the
//!    Table 3 RSS-trend decision rules and the Table 4 phase-trend
//!    rules.
//! 3. [`rotation`] — rotational movement direction estimation (§3.3.1):
//!    continuous azimuth tracking (Eqs. 2–4) with sector-boundary
//!    correction.
//! 4. [`translation`] — translational movement direction estimation
//!    from inter-antenna phase trends (§3.3.2).
//! 5. [`distance`] — movement distance bounds from per-antenna phase
//!    deltas and the inter-antenna hyperbola constraint (§3.4,
//!    Eqs. 5–7).
//! 6. [`hmm`] — the discrete-cell HMM with Eq. 8 transitions and Eq. 11
//!    emissions, decoded with Viterbi (§3.5), plus the final trajectory
//!    rotation correction (Eq. 10).
//! 7. [`smoother`] — the paper's declared future work (§3.5 footnote):
//!    a constant-velocity Kalman/RTS smoother over the decoded trail,
//!    enabled by [`PolarDrawConfig::smooth_output`].
//!
//! The whole thing is wired together by [`PolarDraw`], which implements
//! [`rfid_sim::TrajectoryTracker`]. Setting
//! [`PolarDrawConfig::use_polarization`] to `false` reproduces the
//! Table 6 ablation (trajectory tracking without polarization).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distance;
pub mod durability;
pub mod fleet;
pub mod hmm;
pub mod model;
pub mod online;
pub mod preprocess;
pub mod rotation;
pub mod serve;
pub mod smoother;
pub mod translation;

mod pipeline;

pub use durability::{open_checkpoint, seal_checkpoint, CheckpointStore, RestoreError};
pub use fleet::{DegradePolicy, FleetConfig, FleetRouter, ShardKey};
pub use online::{OnlineOptions, OnlineTracker};
pub use serve::{ServePool, SupervisedFleet};
pub use pipeline::{DegradationReport, PolarDraw, PolarDrawConfig, StepEstimate, StepKind, TrackOutput};
