//! Online (streaming) tracking engine: fixed-lag decode with bounded
//! memory, incremental pre-processing, and checkpoint/restore.
//!
//! The batch API needs the whole report stream up front; a live
//! whiteboard does not have it. [`OnlineTracker`] consumes
//! [`TagReport`]s one at a time (or in bursts), window-averages them
//! incrementally, runs the same movement-type / direction / distance
//! estimators the batch pipeline runs, and decodes through a
//! [`FixedLagDecoder`] so trail points beyond the decision lag are
//! *committed* and their backpointer frames freed.
//!
//! ## Equivalence contract
//!
//! [`PolarDraw::track_with_diagnostics`](crate::PolarDraw) is a thin
//! wrapper over this engine ([`OnlineTracker::batch`]): infinite lag,
//! infinite hold, [`finalize`](OnlineTracker::finalize). Every stage is
//! the per-window restriction of the batch computation:
//!
//! * **Windowing** — a window's reports are stably sorted by timestamp
//!   and exact adjacent duplicates dropped. Reports sharing a timestamp
//!   share a window, so this is exactly the batch global
//!   sort-and-dedup restricted to the window — same accumulation
//!   order, bit-identical sums, identical duplicate counts.
//! * **Spurious screen** — the per-antenna previous-measured-phase
//!   reference is carried across window closes, in close order ==
//!   window order, so strikes land on the same windows.
//! * **Gap bridging** — runs of empty windows are buffered and
//!   resolved with the batch loop's exact one-window-at-a-time
//!   re-evaluation semantics; a trailing run (stream just ends) keeps
//!   every window individually, as batch does.
//! * **Decoding** — each kept-window pair produces the same
//!   [`StepObservation`] and feeds [`FixedLagDecoder::step`], which
//!   runs the identical `advance_frontier` hot path as the batch
//!   decoders. With lag ≥ steps the final backtrack is the batch
//!   backtrack — bit-for-bit.
//!
//! ## Checkpoint format
//!
//! [`checkpoint`](OnlineTracker::checkpoint) serializes the complete
//! logical state through [`rf_core::json`] (format tag
//! `polardraw.online.checkpoint.v1`): stream conditioning carry,
//! pre-processing census, bridge state, estimator state (azimuth
//! tracker snapshot, phase calibration, dead-reckoned position), all
//! windows/steps produced so far, and the decoder's frontier, retained
//! frames, committed points, and work counters. `f64`s round-trip
//! bit-exactly (shortest round-trip formatting), so a restored session
//! converges to the same trail as an uninterrupted one — asserted at
//! every cut point by `tests/online_equivalence.rs`.

use crate::distance::{directional_displacement, expected_dtheta21, feasible_region};
use crate::durability::RestoreError;
use crate::hmm::{
    rotate_trajectory, AdaptiveBeam, BeamFrame, DecodeStats, FixedLagDecoder, Grid,
    KernelOptions, KernelPrecision, StepObservation, DEFAULT_BEAM_WIDTH,
};
use crate::model::{direction_from_azimuth, rotation_angle, Cardinal, Rotation, Sector};
use crate::pipeline::{DegradationReport, PolarDrawConfig, StepEstimate, StepKind, TrackOutput};
use crate::preprocess::{build_window, PreprocessStats, Windowed};
use crate::rotation::{AzimuthSnapshot, AzimuthTracker};
use rf_core::angle::{phase_diff, phase_distance};
use rf_core::json::{FromJson, ToJson};
use rf_core::{wrap_pi, Json, JsonError, Vec2};
use rfid_sim::tracking::Trail;
use rfid_sim::TagReport;

/// Streaming knobs for an [`OnlineTracker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineOptions {
    /// Decoder decision lag, in steps: how many backpointer frames the
    /// fixed-lag Viterbi retains before committing the oldest point.
    /// `usize::MAX` never commits early (exact batch behaviour).
    pub lag: usize,
    /// Window hold-back, in windows: a pre-processing window is closed
    /// (averaged, screened, fed to the decoder) once the stream head
    /// has advanced more than this many windows past it. Late reports
    /// for already-closed windows are dropped (and counted).
    /// `usize::MAX` closes nothing until [`OnlineTracker::finalize`].
    pub hold: usize,
    /// Decode kernel configuration forwarded to the [`FixedLagDecoder`]:
    /// precision ([`KernelPrecision::F64Exact`] keeps the bit-exact
    /// batch-equivalence contract; `F32Tolerance` trades it for speed
    /// under the tolerance oracle), intra-step expansion threads, and
    /// the optional adaptive beam. Checkpoints carry it, so a restored
    /// session keeps running the same kernel.
    pub kernel: KernelOptions,
}

impl Default for OnlineOptions {
    fn default() -> Self {
        // 64 steps of lag is 3.2 s of hindsight at the paper's 50 ms
        // windows — glyph-scale, far beyond where the beam's survivor
        // paths merge in practice; hold 2 tolerates LLRP reorderings of
        // up to a full window without stalling commits.
        OnlineOptions { lag: 64, hold: 2, kernel: KernelOptions::default() }
    }
}

impl OnlineOptions {
    /// Batch-equivalent options: infinite lag, infinite hold, exact
    /// kernel.
    pub fn batch() -> OnlineOptions {
        OnlineOptions { lag: usize::MAX, hold: usize::MAX, kernel: KernelOptions::exact() }
    }

    /// Same options with a different decode kernel.
    pub fn with_kernel(self, kernel: KernelOptions) -> OnlineOptions {
        OnlineOptions { kernel, ..self }
    }
}

/// The streaming PolarDraw engine. See the module docs for the
/// equivalence contract with the batch pipeline.
#[derive(Debug)]
pub struct OnlineTracker {
    config: PolarDrawConfig,
    options: OnlineOptions,
    // Stream conditioning.
    first_t: Option<f64>,
    max_t: f64,
    prev_push_t: Option<f64>,
    pending: Vec<TagReport>,
    next_window: usize,
    late_dropped: usize,
    // Pre-processing carry.
    pre_stats: PreprocessStats,
    empty_run: usize,
    prev_measured: [Option<f64>; 2],
    // Diagnostics (retained for TrackOutput parity with batch).
    windows: Vec<Windowed>,
    steps: Vec<StepEstimate>,
    // Gap-bridge state.
    run_buf: Vec<Windowed>,
    has_kept: bool,
    last_kept_t: f64,
    prev_kept: Option<Windowed>,
    gaps_bridged: usize,
    largest_gap_bridged_s: f64,
    // Estimator carry.
    azimuth_tracker: AzimuthTracker,
    offset21: Option<f64>,
    pos_est: Vec2,
    // Decoder.
    decoder: FixedLagDecoder,
    // Scratch.
    close_buf: Vec<TagReport>,
}

impl OnlineTracker {
    /// New streaming tracker.
    pub fn new(config: PolarDrawConfig, options: OnlineOptions) -> OnlineTracker {
        let grid = Grid::covering(config.board_min, config.board_max, config.hmm.cell_m);
        let mut decoder = FixedLagDecoder::new(
            grid,
            config.antennas,
            config.start_hint,
            config.hmm,
            DEFAULT_BEAM_WIDTH,
            options.lag,
        );
        decoder.set_kernel(options.kernel);
        OnlineTracker {
            config,
            options,
            first_t: None,
            max_t: 0.0,
            prev_push_t: None,
            pending: Vec::new(),
            next_window: 0,
            late_dropped: 0,
            pre_stats: PreprocessStats::default(),
            empty_run: 0,
            prev_measured: [None; 2],
            windows: Vec::new(),
            steps: Vec::new(),
            run_buf: Vec::new(),
            has_kept: false,
            last_kept_t: 0.0,
            prev_kept: None,
            gaps_bridged: 0,
            largest_gap_bridged_s: 0.0,
            azimuth_tracker: AzimuthTracker::new(config.rotation),
            offset21: None,
            pos_est: config.start_hint,
            decoder,
            close_buf: Vec::new(),
        }
    }

    /// Batch-equivalent tracker: `new(config, OnlineOptions::batch())`.
    /// `extend` + `finalize` on this reproduces
    /// `PolarDraw::track_with_diagnostics` bit-for-bit on *any* input,
    /// including unsorted/duplicated adversarial streams.
    pub fn batch(config: PolarDrawConfig) -> OnlineTracker {
        OnlineTracker::new(config, OnlineOptions::batch())
    }

    /// The configuration this tracker runs.
    pub fn config(&self) -> &PolarDrawConfig {
        &self.config
    }

    /// The streaming options this tracker runs.
    pub fn options(&self) -> OnlineOptions {
        self.options
    }

    /// Swap the decode kernel at a push boundary — the fleet load
    /// controller's degradation knob. Takes effect on the next decoder
    /// step ([`FixedLagDecoder::set_kernel`] is safe at any step
    /// boundary), and the updated options are carried by subsequent
    /// checkpoints, so a migrated or restored session keeps running the
    /// kernel it was degraded to.
    pub fn set_kernel(&mut self, kernel: KernelOptions) {
        self.options.kernel = kernel;
        self.decoder.set_kernel(kernel);
    }

    /// Change the decoder decision lag (degradation knob; clamped to
    /// ≥ 1). Shrinking commits the now-over-lag frames immediately —
    /// the same commits the next steps would have produced — and
    /// returns how many points that committed; growing restores
    /// hindsight for future steps only (already-committed points stay
    /// committed). Carried by subsequent checkpoints.
    pub fn set_lag(&mut self, lag: usize) -> usize {
        self.options.lag = lag.max(1);
        self.decoder.set_lag(lag)
    }

    /// Consume one report.
    pub fn push(&mut self, r: TagReport) {
        self.pre_stats.input_reports += 1;
        if let Some(prev) = self.prev_push_t {
            if r.t < prev {
                self.pre_stats.input_unsorted = true;
            }
        }
        self.prev_push_t = Some(r.t);

        let wlen = self.config.preprocess.window_s;
        match self.first_t {
            None => {
                assert!(wlen > 0.0, "window length must be positive");
                self.first_t = Some(r.t);
                self.max_t = r.t;
            }
            Some(f) if r.t < f => {
                if self.next_window == 0 {
                    // Nothing closed yet: the window origin is still
                    // free to move back (batch anchors at the stream's
                    // minimum timestamp).
                    self.first_t = Some(r.t);
                } else {
                    self.late_dropped += 1;
                    return;
                }
            }
            _ => {}
        }
        // Invariant, not input validation: the match above always
        // leaves `first_t` set (a fresh stream takes the `None` arm).
        let first = self.first_t.unwrap();
        let idx = ((r.t - first) / wlen).floor() as usize;
        if idx < self.next_window {
            // Belongs to an already-closed window: too late.
            self.late_dropped += 1;
            return;
        }
        self.max_t = self.max_t.max(r.t);
        self.pending.push(r);

        // Close every window the stream head has left more than `hold`
        // windows behind.
        let cur = ((self.max_t - first) / wlen).floor() as usize;
        while self.next_window < cur.saturating_sub(self.options.hold) {
            self.close_window();
        }
    }

    /// Consume a burst of reports.
    pub fn extend(&mut self, reports: &[TagReport]) {
        for &r in reports {
            self.push(r);
        }
    }

    /// Trail points committed so far (beyond the decoder lag). These
    /// are raw decoded cell centres — the final rotation correction and
    /// smoothing are global and applied in [`finalize`](Self::finalize).
    pub fn committed(&self) -> &[Vec2] {
        self.decoder.committed()
    }

    /// Decoder steps taken so far.
    pub fn steps_so_far(&self) -> &[StepEstimate] {
        &self.steps
    }

    /// Windows closed so far.
    pub fn windows_so_far(&self) -> &[Windowed] {
        &self.windows
    }

    /// Reports dropped because they arrived after their window closed
    /// (streaming mode only; batch options never drop).
    pub fn late_reports_dropped(&self) -> usize {
        self.late_dropped
    }

    /// Decoder work counters so far.
    pub fn decode_stats(&self) -> DecodeStats {
        self.decoder.stats()
    }

    /// The underlying fixed-lag decoder (read-only) — lets serving
    /// tests assert that N sessions on one rig share one
    /// [`hmm::DecodeArtifacts`](crate::hmm::DecodeArtifacts) entry.
    pub fn decoder(&self) -> &FixedLagDecoder {
        &self.decoder
    }

    /// The degradation census as of now (same accounting the final
    /// [`TrackOutput`] carries, minus not-yet-closed windows).
    pub fn degradation_so_far(&self) -> DegradationReport {
        let mut d = DegradationReport::from_preprocess(&self.pre_stats);
        d.gaps_bridged = self.gaps_bridged;
        d.largest_gap_bridged_s = self.largest_gap_bridged_s;
        d.carried_steps = self.decoder.stats().carried_steps;
        d
    }

    /// Close the oldest open window: extract its reports, normalize
    /// them (the per-window restriction of batch sort-and-dedup),
    /// average, screen spurious phases, then hand the window to the
    /// gap-bridge / step machinery.
    fn close_window(&mut self) {
        let i = self.next_window;
        // Invariant, not input validation: every caller gates on a
        // non-empty stream (`first_t` set by the first `push`).
        let first = self.first_t.expect("close_window with no stream");
        let wlen = self.config.preprocess.window_s;

        // Drain window `i`'s reports, preserving arrival order both in
        // the extracted buffer and among the survivors.
        self.close_buf.clear();
        let mut kept = 0;
        for k in 0..self.pending.len() {
            let r = self.pending[k];
            let idx = ((r.t - first) / wlen).floor() as usize;
            if idx == i {
                self.close_buf.push(r);
            } else {
                self.pending[kept] = r;
                kept += 1;
            }
        }
        self.pending.truncate(kept);

        // Per-window normalize: stable sort by timestamp (equal stamps
        // keep arrival order — exactly the global stable sort restricted
        // to this window) and adjacent exact-duplicate removal.
        self.close_buf.sort_by(|a, b| a.t.total_cmp(&b.t));
        let before = self.close_buf.len();
        self.close_buf.dedup();
        self.pre_stats.duplicates_removed += before - self.close_buf.len();

        let t = first + (i as f64 + 0.5) * wlen;
        let (mut w, ignored) = build_window(t, &self.close_buf);
        self.pre_stats.ignored_ports += ignored;

        // Spurious screen, with the per-antenna previous-measured-phase
        // reference carried across closes (batch `reject_spurious`,
        // incrementalized; the reference updates to the measured value
        // even when the window is struck).
        let thr = self.config.preprocess.spurious_threshold_rad;
        for ant in 0..2 {
            if let Some(p) = w.phase[ant] {
                if let Some(prev) = self.prev_measured[ant] {
                    if phase_distance(p, prev) > thr {
                        w.phase[ant] = None;
                        w.flags.spurious[ant] = true;
                        self.pre_stats.spurious_rejected += 1;
                    }
                }
                self.prev_measured[ant] = Some(p);
            }
        }

        self.pre_stats.windows += 1;
        if w.flags.empty {
            self.pre_stats.empty_windows += 1;
            self.empty_run += 1;
            self.pre_stats.largest_empty_run = self.pre_stats.largest_empty_run.max(self.empty_run);
        } else {
            self.empty_run = 0;
        }
        if w.flags.single_antenna {
            self.pre_stats.single_antenna_windows += 1;
        }
        self.windows.push(w);
        self.next_window += 1;

        if w.flags.empty {
            // Empty windows buffer until we know whether the run is
            // interior (bridgeable) or trailing.
            self.run_buf.push(w);
        } else {
            self.resolve_run_then_keep(w);
        }
    }

    /// A non-empty window closed after a (possibly empty) run of empty
    /// ones: resolve the run with the batch loop's exact semantics —
    /// bridge the remaining run whenever it is long enough *and*
    /// anchored, else keep one window and re-evaluate — then keep the
    /// non-empty window.
    fn resolve_run_then_keep(&mut self, cur: Windowed) {
        let min_run = self.config.gap_bridge_min_windows.max(1);
        let mut s = 0;
        while s < self.run_buf.len() {
            let remaining = self.run_buf.len() - s;
            if remaining >= min_run && self.has_kept {
                // Bridge the rest of the run: the step from the last
                // kept window to `cur` spans the whole outage, so the
                // feasible annulus widens to `v_max · gap` automatically.
                self.gaps_bridged += 1;
                let gap_s = cur.t - self.last_kept_t;
                self.largest_gap_bridged_s = self.largest_gap_bridged_s.max(gap_s);
                break;
            }
            let w = self.run_buf[s];
            self.keep(w);
            s += 1;
        }
        self.run_buf.clear();
        self.keep(cur);
    }

    /// Admit a window to the kept chain; every consecutive kept pair
    /// becomes one estimator + decoder step.
    fn keep(&mut self, cur: Windowed) {
        if let Some(prev) = self.prev_kept {
            self.step_between(&prev, &cur);
        }
        self.prev_kept = Some(cur);
        self.has_kept = true;
        self.last_kept_t = cur.t;
    }

    /// One kept-window pair → movement classification, direction and
    /// distance estimation, one decoder step. Verbatim the batch
    /// pipeline's pair-loop body.
    fn step_between(&mut self, prev: &Windowed, cur: &Windowed) {
        let cfg = self.config;
        let dt = (cur.t - prev.t).max(1e-6);

        let ds = [delta(prev.rssi[0], cur.rssi[0]), delta(prev.rssi[1], cur.rssi[1])];
        let dth = [
            delta_phase(prev.phase[0], cur.phase[0]),
            delta_phase(prev.phase[1], cur.phase[1]),
        ];

        let region = feasible_region(dth, dt, &cfg.distance);

        // Movement-type detection (§3.3): RSS trend above δ ⇒
        // rotational (only meaningful with polarization enabled).
        let max_ds = ds.iter().flatten().map(|d| d.abs()).fold(0.0, f64::max);
        let rotational = cfg.use_polarization && max_ds > cfg.movement_rss_threshold_db;

        let (kind, direction, azimuth, alpha_r) = if rotational {
            match (ds[0], ds[1]) {
                (Some(d1), Some(d2)) => match self.azimuth_tracker.step(d1, d2) {
                    Some(step) => {
                        let ar = rotation_angle(step.azimuth, cfg.alpha_e_rad);
                        let dir = direction_from_azimuth(step.azimuth, step.rotation);
                        (
                            StepKind::Rotational { rotation: step.rotation, sector: step.sector },
                            Some(dir),
                            Some(step.azimuth),
                            Some(ar),
                        )
                    }
                    None => (StepKind::Still, None, self.azimuth_tracker.azimuth(), None),
                },
                _ => (StepKind::Still, None, self.azimuth_tracker.azimuth(), None),
            }
        } else {
            match (dth[0], dth[1]) {
                (Some(d1), Some(d2)) => {
                    match crate::translation::estimate_translation(
                        [d1, d2],
                        cfg.antennas,
                        self.pos_est,
                        &cfg.translation,
                    ) {
                        Some(tr) => {
                            let dir = if cfg.refine_translation {
                                tr.direction
                            } else {
                                tr.cardinal.unit()
                            };
                            (
                                StepKind::Translational(tr.cardinal),
                                Some(dir),
                                self.azimuth_tracker.azimuth(),
                                None,
                            )
                        }
                        None => (StepKind::Still, None, self.azimuth_tracker.azimuth(), None),
                    }
                }
                _ => (StepKind::Still, None, self.azimuth_tracker.azimuth(), None),
            }
        };

        // Calibrated inter-antenna phase difference at the current
        // window.
        let dtheta21 = match (cur.phase[0], cur.phase[1]) {
            (Some(p1), Some(p2)) => {
                let raw = wrap_pi(p2 - p1);
                let off = *self.offset21.get_or_insert_with(|| {
                    raw - expected_dtheta21(cfg.start_hint, cfg.antennas, cfg.distance.wavelength_m)
                });
                Some(wrap_pi(raw - off))
            }
            _ => None,
        };

        // Displacement along the estimated direction (Fig. 12(b)×(c)
        // intersection); plain lower bound when direction is unknown.
        let target_dist = match direction {
            Some(dir) => {
                directional_displacement(dth, cfg.antennas, self.pos_est, dir, &cfg.distance)
                    .min(region.max_dist)
            }
            None => region.min_dist,
        };

        // Dead-reckon a coarse position for the next step's
        // translational geometry.
        if let Some(dir) = direction {
            self.pos_est += dir * target_dist;
        }

        self.steps.push(StepEstimate {
            t: cur.t,
            kind,
            direction,
            azimuth,
            alpha_r,
            bounds: (region.min_dist, region.max_dist),
        });
        self.decoder.step(&StepObservation { region, direction, dtheta21, target_dist });
    }

    /// Close every remaining window, flush the trailing empty run, run
    /// the final backtrack, and assemble the [`TrackOutput`] — the same
    /// rotation correction, smoothing, and degradation accounting as
    /// the batch pipeline.
    pub fn finalize(mut self) -> TrackOutput {
        let cfg = self.config;
        if let Some(first) = self.first_t {
            let wlen = cfg.preprocess.window_s;
            let cur = ((self.max_t - first) / wlen).floor() as usize;
            while self.next_window <= cur {
                self.close_window();
            }
            // A trailing empty run has nothing to anchor a bridge after
            // it: keep every window individually (batch semantics).
            let mut k = 0;
            while k < self.run_buf.len() {
                let w = self.run_buf[k];
                self.keep(w);
                k += 1;
            }
            self.run_buf.clear();
        }

        let mut points = self.decoder.finish();
        let decode_stats = self.decoder.stats();

        let raw_error = self.azimuth_tracker.initial_error_estimate();
        let initial_azimuth_error =
            raw_error.clamp(-cfg.max_rotation_correction_rad, cfg.max_rotation_correction_rad);
        if cfg.apply_rotation_correction && initial_azimuth_error != 0.0 {
            points = rotate_trajectory(&points, initial_azimuth_error);
        }

        let times: Vec<f64> = self.steps.iter().map(|s| s.t).take(points.len()).collect();
        if cfg.smooth_output {
            points = crate::smoother::smooth(&times, &points, &cfg.smoother);
        }
        let trail = Trail::new(times, points);
        let mut degradation = DegradationReport::from_preprocess(&self.pre_stats);
        degradation.gaps_bridged = self.gaps_bridged;
        degradation.largest_gap_bridged_s = self.largest_gap_bridged_s;
        degradation.carried_steps = decode_stats.carried_steps;
        TrackOutput {
            trail,
            steps: self.steps,
            windows: self.windows,
            initial_azimuth_error,
            decode_stats,
            degradation,
        }
    }

    // ------------------------------------------------------------------
    // Checkpoint / restore.
    // ------------------------------------------------------------------

    /// Format tag carried by every checkpoint document.
    pub const CHECKPOINT_FORMAT: &'static str = "polardraw.online.checkpoint.v1";

    /// Serialize the complete logical state to a JSON value. See the
    /// module docs for the format.
    pub fn checkpoint(&self) -> Json {
        let cfg = &self.config;
        let snap = self.azimuth_tracker.snapshot();
        Json::obj([
            ("format", Json::str(Self::CHECKPOINT_FORMAT)),
            ("fingerprint", fingerprint_json(cfg)),
            (
                "options",
                Json::obj([
                    ("lag", usize_json(self.options.lag)),
                    ("hold", usize_json(self.options.hold)),
                    ("kernel", kernel_options_json(&self.options.kernel)),
                ]),
            ),
            (
                "stream",
                Json::obj([
                    ("first_t", self.first_t.to_json()),
                    ("max_t", Json::num(self.max_t)),
                    ("prev_push_t", self.prev_push_t.to_json()),
                    ("next_window", usize_json(self.next_window)),
                    ("late_dropped", usize_json(self.late_dropped)),
                    ("pending", Json::arr(self.pending.iter(), |r| r.to_json())),
                ]),
            ),
            (
                "pre",
                Json::obj([
                    ("input_reports", usize_json(self.pre_stats.input_reports)),
                    ("input_unsorted", Json::Bool(self.pre_stats.input_unsorted)),
                    ("duplicates_removed", usize_json(self.pre_stats.duplicates_removed)),
                    ("ignored_ports", usize_json(self.pre_stats.ignored_ports)),
                    ("windows", usize_json(self.pre_stats.windows)),
                    ("empty_windows", usize_json(self.pre_stats.empty_windows)),
                    (
                        "single_antenna_windows",
                        usize_json(self.pre_stats.single_antenna_windows),
                    ),
                    ("spurious_rejected", usize_json(self.pre_stats.spurious_rejected)),
                    ("largest_empty_run", usize_json(self.pre_stats.largest_empty_run)),
                    ("empty_run", usize_json(self.empty_run)),
                    ("prev_measured", Json::arr(self.prev_measured, |p| p.to_json())),
                ]),
            ),
            (
                "bridge",
                Json::obj([
                    ("run_buf", Json::arr(self.run_buf.iter(), windowed_json)),
                    ("has_kept", Json::Bool(self.has_kept)),
                    ("last_kept_t", Json::num(self.last_kept_t)),
                    (
                        "prev_kept",
                        match &self.prev_kept {
                            Some(w) => windowed_json(w),
                            None => Json::Null,
                        },
                    ),
                    ("gaps_bridged", usize_json(self.gaps_bridged)),
                    ("largest_gap_bridged_s", Json::num(self.largest_gap_bridged_s)),
                ]),
            ),
            (
                "estimator",
                Json::obj([
                    ("azimuth", snap.azimuth.to_json()),
                    ("sector", snap.sector.map(sector_code).to_json()),
                    ("accumulated_error", Json::num(snap.accumulated_error)),
                    ("corrections", usize_json(snap.corrections)),
                    ("offset21", self.offset21.to_json()),
                    ("pos_est", vec2_json(self.pos_est)),
                ]),
            ),
            ("windows", Json::arr(self.windows.iter(), windowed_json)),
            ("steps", Json::arr(self.steps.iter(), step_estimate_json)),
            (
                "decoder",
                Json::obj([
                    (
                        "frontier",
                        Json::arr(self.decoder.frontier().iter(), |&(c, s)| {
                            Json::Arr(vec![Json::num(c as f64), Json::num(s)])
                        }),
                    ),
                    (
                        "frames",
                        Json::arr(self.decoder.frames(), |f| {
                            Json::obj([
                                (
                                    "cells",
                                    Json::arr(f.cells.iter(), |&c| Json::num(c as f64)),
                                ),
                                (
                                    "prevs",
                                    Json::arr(f.prevs.iter(), |&c| Json::num(c as f64)),
                                ),
                            ])
                        }),
                    ),
                    ("committed", Json::arr(self.decoder.committed().iter(), |&p| vec2_json(p))),
                    ("stats", decode_stats_json(&self.decoder.stats())),
                ]),
            ),
        ])
    }

    /// [`checkpoint`](Self::checkpoint) as a compact JSON string.
    pub fn checkpoint_string(&self) -> String {
        self.checkpoint().to_json_string()
    }

    /// Rebuild a tracker from a checkpoint. `config` must be the same
    /// configuration the checkpointed tracker ran (verified against the
    /// embedded fingerprint, bit-exact); the streaming options are
    /// restored from the checkpoint itself.
    ///
    /// The document is treated as untrusted (it may have come off a
    /// disk or wire): every malformation — wrong format tag, foreign
    /// fingerprint, missing or mistyped fields, decoder state indexing
    /// outside the rig's grid — returns a typed
    /// [`RestoreError`](crate::durability::RestoreError); nothing
    /// panics.
    pub fn restore(config: PolarDrawConfig, v: &Json) -> Result<OnlineTracker, RestoreError> {
        let format = v.get("format").and_then(Json::as_str).unwrap_or("");
        if format != Self::CHECKPOINT_FORMAT {
            return Err(RestoreError::Format { found: format.to_string() });
        }
        let fp = v
            .get("fingerprint")
            .ok_or_else(|| RestoreError::Field("missing `fingerprint`".into()))?;
        if *fp != fingerprint_json(&config) {
            return Err(RestoreError::Fingerprint);
        }
        let opts = v.get("options").ok_or_else(|| jerr("missing `options`"))?;
        let options = OnlineOptions {
            lag: req_usize(opts, "lag")?,
            hold: req_usize(opts, "hold")?,
            // Absent in pre-kernel checkpoints: those ran the default
            // (exact, sequential) kernel, so default is the faithful
            // reading, not just a lenient one.
            kernel: match opts.get("kernel") {
                None | Some(Json::Null) => KernelOptions::default(),
                Some(k) => kernel_options_from(k)?,
            },
        };

        let mut tracker = OnlineTracker::new(config, options);

        let stream = v.get("stream").ok_or_else(|| jerr("missing `stream`"))?;
        tracker.first_t = opt_f64(stream, "first_t")?;
        tracker.max_t = stream.req_f64("max_t")?;
        tracker.prev_push_t = opt_f64(stream, "prev_push_t")?;
        tracker.next_window = req_usize(stream, "next_window")?;
        tracker.late_dropped = req_usize(stream, "late_dropped")?;
        tracker.pending = req_arr(stream, "pending")?
            .iter()
            .map(TagReport::from_json)
            .collect::<Result<_, _>>()?;

        let pre = v.get("pre").ok_or_else(|| jerr("missing `pre`"))?;
        tracker.pre_stats = PreprocessStats {
            input_reports: req_usize(pre, "input_reports")?,
            input_unsorted: req_bool(pre, "input_unsorted")?,
            duplicates_removed: req_usize(pre, "duplicates_removed")?,
            ignored_ports: req_usize(pre, "ignored_ports")?,
            windows: req_usize(pre, "windows")?,
            empty_windows: req_usize(pre, "empty_windows")?,
            single_antenna_windows: req_usize(pre, "single_antenna_windows")?,
            spurious_rejected: req_usize(pre, "spurious_rejected")?,
            largest_empty_run: req_usize(pre, "largest_empty_run")?,
        };
        tracker.empty_run = req_usize(pre, "empty_run")?;
        let pm = req_arr(pre, "prev_measured")?;
        if pm.len() != 2 {
            return Err(jerr("`prev_measured` must have 2 entries").into());
        }
        tracker.prev_measured = [null_or_f64(&pm[0])?, null_or_f64(&pm[1])?];

        let bridge = v.get("bridge").ok_or_else(|| jerr("missing `bridge`"))?;
        tracker.run_buf =
            req_arr(bridge, "run_buf")?.iter().map(windowed_from).collect::<Result<_, _>>()?;
        tracker.has_kept = req_bool(bridge, "has_kept")?;
        tracker.last_kept_t = bridge.req_f64("last_kept_t")?;
        tracker.prev_kept = match bridge.get("prev_kept") {
            None | Some(Json::Null) => None,
            Some(w) => Some(windowed_from(w)?),
        };
        tracker.gaps_bridged = req_usize(bridge, "gaps_bridged")?;
        tracker.largest_gap_bridged_s = bridge.req_f64("largest_gap_bridged_s")?;

        let est = v.get("estimator").ok_or_else(|| jerr("missing `estimator`"))?;
        let sector = match est.get("sector") {
            None | Some(Json::Null) => None,
            Some(s) => Some(sector_from_code(
                s.as_f64().ok_or_else(|| jerr("non-numeric `sector`"))? as u32,
            )?),
        };
        let snap = AzimuthSnapshot {
            azimuth: opt_f64(est, "azimuth")?,
            sector,
            accumulated_error: est.req_f64("accumulated_error")?,
            corrections: req_usize(est, "corrections")?,
        };
        tracker.azimuth_tracker = AzimuthTracker::restore(config.rotation, &snap);
        tracker.offset21 = opt_f64(est, "offset21")?;
        tracker.pos_est = vec2_from(est.get("pos_est").ok_or_else(|| jerr("missing `pos_est`"))?)?;

        tracker.windows =
            req_arr(v, "windows")?.iter().map(windowed_from).collect::<Result<_, _>>()?;
        tracker.steps =
            req_arr(v, "steps")?.iter().map(step_estimate_from).collect::<Result<_, _>>()?;

        let dec = v.get("decoder").ok_or_else(|| jerr("missing `decoder`"))?;
        let frontier = req_arr(dec, "frontier")?
            .iter()
            .map(|p| {
                let pair = p.as_arr().filter(|a| a.len() == 2).ok_or_else(|| {
                    jerr("frontier entries must be [cell, score] pairs")
                })?;
                let c = pair[0].as_f64().ok_or_else(|| jerr("non-numeric frontier cell"))?;
                let s = pair[1].as_f64().ok_or_else(|| jerr("non-numeric frontier score"))?;
                Ok((c as u32, s))
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        let frames = req_arr(dec, "frames")?
            .iter()
            .map(|f| {
                let cells = req_arr(f, "cells")?
                    .iter()
                    .map(|c| c.as_f64().map(|x| x as u32))
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| jerr("non-numeric frame cell"))?;
                let prevs = req_arr(f, "prevs")?
                    .iter()
                    .map(|c| c.as_f64().map(|x| x as u32))
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| jerr("non-numeric frame prev"))?;
                if cells.len() != prevs.len() {
                    return Err(jerr("frame cells/prevs length mismatch"));
                }
                Ok(BeamFrame { cells, prevs })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        let committed =
            req_arr(dec, "committed")?.iter().map(vec2_from).collect::<Result<Vec<_>, _>>()?;
        let stats = decode_stats_from(dec.get("stats").ok_or_else(|| jerr("missing `stats`"))?)?;
        let grid = Grid::covering(config.board_min, config.board_max, config.hmm.cell_m);

        // The decoder trusts its cell ids (they index straight into
        // the grid on backtrack), so a hostile checkpoint must not be
        // able to smuggle out-of-range ones past restore.
        let n_cells = grid.len() as u32;
        if frontier.is_empty() {
            return Err(RestoreError::Field("decoder frontier must not be empty".into()));
        }
        let cells_in_grid = |cells: &[u32]| cells.iter().all(|&c| c < n_cells);
        if !cells_in_grid(&frontier.iter().map(|&(c, _)| c).collect::<Vec<_>>()) {
            return Err(RestoreError::Field("frontier cell outside the rig's grid".into()));
        }
        for f in &frames {
            if !cells_in_grid(&f.cells) || !cells_in_grid(&f.prevs) {
                return Err(RestoreError::Field("frame cell outside the rig's grid".into()));
            }
        }

        tracker.decoder = FixedLagDecoder::from_parts(
            grid,
            config.antennas,
            config.hmm,
            DEFAULT_BEAM_WIDTH,
            options.lag,
            frontier,
            frames,
            committed,
            stats,
        );
        tracker.decoder.set_kernel(options.kernel);
        Ok(tracker)
    }

    /// [`restore`](Self::restore) from a JSON string.
    pub fn restore_from_str(
        config: PolarDrawConfig,
        text: &str,
    ) -> Result<OnlineTracker, RestoreError> {
        OnlineTracker::restore(config, &Json::parse(text).map_err(RestoreError::Parse)?)
    }
}

impl rfid_sim::session::ReportSink for OnlineTracker {
    fn accept(&mut self, report: &TagReport) {
        self.push(*report);
    }
}

fn delta(prev: Option<f64>, cur: Option<f64>) -> Option<f64> {
    match (prev, cur) {
        (Some(a), Some(b)) => Some(b - a),
        _ => None,
    }
}

fn delta_phase(prev: Option<f64>, cur: Option<f64>) -> Option<f64> {
    match (prev, cur) {
        (Some(a), Some(b)) => Some(phase_diff(b, a)),
        _ => None,
    }
}

// ----------------------------------------------------------------------
// JSON helpers (checkpoint plumbing).
// ----------------------------------------------------------------------

fn jerr(message: impl Into<String>) -> JsonError {
    JsonError { message: message.into(), offset: 0 }
}

fn usize_json(x: usize) -> Json {
    // `usize::MAX as f64` rounds to 2^64, which casts back saturating
    // to `usize::MAX` — the sentinel survives the round trip.
    Json::num(x as f64)
}

fn req_usize(v: &Json, key: &str) -> Result<usize, JsonError> {
    Ok(v.req_f64(key)? as usize)
}

fn req_bool(v: &Json, key: &str) -> Result<bool, JsonError> {
    v.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| jerr(format!("missing or non-bool field `{key}`")))
}

fn req_arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], JsonError> {
    v.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| jerr(format!("missing or non-array field `{key}`")))
}

fn null_or_f64(v: &Json) -> Result<Option<f64>, JsonError> {
    match v {
        Json::Null => Ok(None),
        Json::Num(x) => Ok(Some(*x)),
        _ => Err(jerr("expected number or null")),
    }
}

fn opt_f64(v: &Json, key: &str) -> Result<Option<f64>, JsonError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => null_or_f64(x),
    }
}

fn vec2_json(p: Vec2) -> Json {
    Json::Arr(vec![Json::num(p.x), Json::num(p.y)])
}

fn vec2_from(v: &Json) -> Result<Vec2, JsonError> {
    let a = v.as_arr().filter(|a| a.len() == 2).ok_or_else(|| jerr("expected [x, y]"))?;
    let x = a[0].as_f64().ok_or_else(|| jerr("non-numeric x"))?;
    let y = a[1].as_f64().ok_or_else(|| jerr("non-numeric y"))?;
    Ok(Vec2::new(x, y))
}

/// Canonical rig-identity document embedded in every checkpoint (and
/// CRC'd into v2 envelopes by [`crate::durability::rig_crc`]).
pub(crate) fn fingerprint_json(cfg: &PolarDrawConfig) -> Json {
    Json::obj([
        ("window_s", Json::num(cfg.preprocess.window_s)),
        ("spurious_threshold_rad", Json::num(cfg.preprocess.spurious_threshold_rad)),
        ("cell_m", Json::num(cfg.hmm.cell_m)),
        ("wavelength_m", Json::num(cfg.hmm.wavelength_m)),
        (
            "board",
            Json::Arr(vec![
                Json::num(cfg.board_min.x),
                Json::num(cfg.board_min.y),
                Json::num(cfg.board_max.x),
                Json::num(cfg.board_max.y),
            ]),
        ),
        ("start", vec2_json(cfg.start_hint)),
        (
            "antennas",
            Json::arr(cfg.antennas, |a| {
                Json::Arr(vec![Json::num(a.x), Json::num(a.y), Json::num(a.z)])
            }),
        ),
        ("gap_bridge_min_windows", usize_json(cfg.gap_bridge_min_windows)),
        ("use_polarization", Json::Bool(cfg.use_polarization)),
        ("movement_rss_threshold_db", Json::num(cfg.movement_rss_threshold_db)),
    ])
}

fn sector_code(s: Sector) -> f64 {
    match s {
        Sector::One => 1.0,
        Sector::Two => 2.0,
        Sector::Three => 3.0,
    }
}

fn sector_from_code(code: u32) -> Result<Sector, JsonError> {
    match code {
        1 => Ok(Sector::One),
        2 => Ok(Sector::Two),
        3 => Ok(Sector::Three),
        _ => Err(jerr(format!("bad sector code {code}"))),
    }
}

fn rotation_code(r: Rotation) -> Json {
    Json::str(match r {
        Rotation::Clockwise => "cw",
        Rotation::CounterClockwise => "ccw",
    })
}

fn rotation_from_code(v: &Json) -> Result<Rotation, JsonError> {
    match v.as_str() {
        Some("cw") => Ok(Rotation::Clockwise),
        Some("ccw") => Ok(Rotation::CounterClockwise),
        other => Err(jerr(format!("bad rotation code {other:?}"))),
    }
}

fn cardinal_code(c: Cardinal) -> Json {
    Json::str(match c {
        Cardinal::Up => "up",
        Cardinal::Down => "down",
        Cardinal::Left => "left",
        Cardinal::Right => "right",
    })
}

fn cardinal_from_code(v: &Json) -> Result<Cardinal, JsonError> {
    match v.as_str() {
        Some("up") => Ok(Cardinal::Up),
        Some("down") => Ok(Cardinal::Down),
        Some("left") => Ok(Cardinal::Left),
        Some("right") => Ok(Cardinal::Right),
        other => Err(jerr(format!("bad cardinal code {other:?}"))),
    }
}

fn windowed_json(w: &Windowed) -> Json {
    Json::obj([
        ("t", Json::num(w.t)),
        ("rssi", Json::arr(w.rssi, |x| x.to_json())),
        ("phase", Json::arr(w.phase, |x| x.to_json())),
        ("reads", Json::arr(w.reads, |n| usize_json(n))),
        ("empty", Json::Bool(w.flags.empty)),
        ("single_antenna", Json::Bool(w.flags.single_antenna)),
        ("spurious", Json::arr(w.flags.spurious, Json::Bool)),
    ])
}

fn windowed_from(v: &Json) -> Result<Windowed, JsonError> {
    let pair2 = |key: &str| -> Result<[Option<f64>; 2], JsonError> {
        let a = req_arr(v, key)?;
        if a.len() != 2 {
            return Err(jerr(format!("`{key}` must have 2 entries")));
        }
        Ok([null_or_f64(&a[0])?, null_or_f64(&a[1])?])
    };
    let reads = req_arr(v, "reads")?;
    if reads.len() != 2 {
        return Err(jerr("`reads` must have 2 entries"));
    }
    let spurious = req_arr(v, "spurious")?;
    if spurious.len() != 2 {
        return Err(jerr("`spurious` must have 2 entries"));
    }
    let mut w = Windowed {
        t: v.req_f64("t")?,
        rssi: pair2("rssi")?,
        phase: pair2("phase")?,
        ..Default::default()
    };
    for (i, r) in reads.iter().enumerate() {
        w.reads[i] = r.as_f64().ok_or_else(|| jerr("non-numeric reads"))? as usize;
    }
    w.flags.empty = req_bool(v, "empty")?;
    w.flags.single_antenna = req_bool(v, "single_antenna")?;
    for (i, s) in spurious.iter().enumerate() {
        w.flags.spurious[i] = s.as_bool().ok_or_else(|| jerr("non-bool spurious"))?;
    }
    Ok(w)
}

fn step_estimate_json(s: &StepEstimate) -> Json {
    let kind = match s.kind {
        StepKind::Rotational { rotation, sector } => Json::obj([
            ("k", Json::str("rot")),
            ("rotation", rotation_code(rotation)),
            ("sector", Json::num(sector_code(sector))),
        ]),
        StepKind::Translational(c) => {
            Json::obj([("k", Json::str("tr")), ("cardinal", cardinal_code(c))])
        }
        StepKind::Still => Json::obj([("k", Json::str("still"))]),
    };
    Json::obj([
        ("t", Json::num(s.t)),
        ("kind", kind),
        (
            "direction",
            match s.direction {
                Some(d) => vec2_json(d),
                None => Json::Null,
            },
        ),
        ("azimuth", s.azimuth.to_json()),
        ("alpha_r", s.alpha_r.to_json()),
        ("bounds", Json::Arr(vec![Json::num(s.bounds.0), Json::num(s.bounds.1)])),
    ])
}

fn step_estimate_from(v: &Json) -> Result<StepEstimate, JsonError> {
    let kind_v = v.get("kind").ok_or_else(|| jerr("missing `kind`"))?;
    let kind = match kind_v.get("k").and_then(Json::as_str) {
        Some("rot") => StepKind::Rotational {
            rotation: rotation_from_code(
                kind_v.get("rotation").ok_or_else(|| jerr("missing `rotation`"))?,
            )?,
            sector: sector_from_code(kind_v.req_f64("sector")? as u32)?,
        },
        Some("tr") => StepKind::Translational(cardinal_from_code(
            kind_v.get("cardinal").ok_or_else(|| jerr("missing `cardinal`"))?,
        )?),
        Some("still") => StepKind::Still,
        other => return Err(jerr(format!("bad step kind {other:?}"))),
    };
    let direction = match v.get("direction") {
        None | Some(Json::Null) => None,
        Some(d) => Some(vec2_from(d)?),
    };
    let bounds = req_arr(v, "bounds")?;
    if bounds.len() != 2 {
        return Err(jerr("`bounds` must have 2 entries"));
    }
    Ok(StepEstimate {
        t: v.req_f64("t")?,
        kind,
        direction,
        azimuth: opt_f64(v, "azimuth")?,
        alpha_r: opt_f64(v, "alpha_r")?,
        bounds: (
            bounds[0].as_f64().ok_or_else(|| jerr("non-numeric bound"))?,
            bounds[1].as_f64().ok_or_else(|| jerr("non-numeric bound"))?,
        ),
    })
}

fn decode_stats_json(s: &DecodeStats) -> Json {
    Json::obj([
        ("steps", usize_json(s.steps)),
        ("carried_steps", usize_json(s.carried_steps)),
        ("expansions", Json::num(s.expansions as f64)),
        ("pruned_below_min", Json::num(s.pruned_below_min as f64)),
        ("pruned_beam", Json::num(s.pruned_beam as f64)),
        ("touched_cells", Json::num(s.touched_cells as f64)),
        ("max_frontier", usize_json(s.max_frontier)),
        ("total_frontier", Json::num(s.total_frontier as f64)),
        ("adaptive_shrunk_steps", usize_json(s.adaptive_shrunk_steps)),
    ])
}

fn decode_stats_from(v: &Json) -> Result<DecodeStats, JsonError> {
    Ok(DecodeStats {
        steps: req_usize(v, "steps")?,
        carried_steps: req_usize(v, "carried_steps")?,
        expansions: v.req_f64("expansions")? as u64,
        pruned_below_min: v.req_f64("pruned_below_min")? as u64,
        pruned_beam: v.req_f64("pruned_beam")? as u64,
        touched_cells: v.req_f64("touched_cells")? as u64,
        max_frontier: req_usize(v, "max_frontier")?,
        total_frontier: v.req_f64("total_frontier")? as u64,
        // Absent in pre-kernel checkpoints (written before the adaptive
        // beam existed, which implies it never shrank a step).
        adaptive_shrunk_steps: match v.get("adaptive_shrunk_steps") {
            None | Some(Json::Null) => 0,
            Some(n) => n.as_f64().ok_or_else(|| jerr("non-numeric `adaptive_shrunk_steps`"))?
                as usize,
        },
    })
}

fn kernel_options_json(k: &KernelOptions) -> Json {
    Json::obj([
        (
            "precision",
            Json::str(match k.precision {
                KernelPrecision::F64Exact => "f64",
                KernelPrecision::F32Tolerance => "f32",
            }),
        ),
        ("threads", usize_json(k.threads)),
        (
            "adaptive",
            match &k.adaptive {
                Some(a) => Json::obj([
                    ("margin", Json::num(a.margin)),
                    ("min_keep", usize_json(a.min_keep)),
                ]),
                None => Json::Null,
            },
        ),
    ])
}

fn kernel_options_from(v: &Json) -> Result<KernelOptions, JsonError> {
    let precision = match v.get("precision").and_then(Json::as_str) {
        Some("f64") => KernelPrecision::F64Exact,
        Some("f32") => KernelPrecision::F32Tolerance,
        other => return Err(jerr(format!("bad kernel precision {other:?}"))),
    };
    let adaptive = match v.get("adaptive") {
        None | Some(Json::Null) => None,
        Some(a) => Some(AdaptiveBeam {
            margin: a.req_f64("margin")?,
            min_keep: req_usize(a, "min_keep")?,
        }),
    };
    Ok(KernelOptions { precision, adaptive, threads: req_usize(v, "threads")? })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PolarDraw;

    fn report(t: f64, antenna: usize, rssi: f64, phase: f64) -> TagReport {
        TagReport {
            t,
            antenna,
            rssi_dbm: rssi,
            phase_rad: rf_core::wrap_tau(phase),
            channel: 24,
            epc: 1,
        }
    }

    /// Same synthetic stream the pipeline tests use: pen moving straight
    /// down at constant speed.
    fn downward_stream(n_windows: usize) -> Vec<TagReport> {
        let mut out = Vec::new();
        let lambda = 0.3276;
        let speed = 0.06;
        for i in 0..n_windows * 5 {
            let t = i as f64 * 0.01;
            let ant = i % 2;
            let phase = 4.0 * std::f64::consts::PI * speed * t / lambda + 1.0;
            out.push(report(t, ant, -40.0, phase));
        }
        out
    }

    fn assert_trails_bitwise_equal(a: &Trail, b: &Trail) {
        assert_eq!(a.times.len(), b.times.len());
        for (x, y) in a.times.iter().zip(&b.times) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.points.len(), b.points.len());
        for (p, q) in a.points.iter().zip(&b.points) {
            assert!(p.x.to_bits() == q.x.to_bits() && p.y.to_bits() == q.y.to_bits());
        }
    }

    #[test]
    fn streaming_with_generous_lag_matches_batch_bitwise() {
        let cfg = PolarDrawConfig::default();
        let stream = downward_stream(30);
        let batch = PolarDraw::new(cfg).track_with_diagnostics(&stream);
        let mut online = OnlineTracker::new(cfg, OnlineOptions { lag: usize::MAX, hold: 2, ..OnlineOptions::default() });
        for &r in &stream {
            online.push(r);
        }
        assert_eq!(online.late_reports_dropped(), 0);
        let out = online.finalize();
        assert_trails_bitwise_equal(&out.trail, &batch.trail);
        assert_eq!(out.steps, batch.steps);
        assert_eq!(out.windows, batch.windows);
        assert_eq!(out.degradation, batch.degradation);
        assert_eq!(out.decode_stats, batch.decode_stats);
    }

    #[test]
    fn finite_lag_commits_while_streaming() {
        let cfg = PolarDrawConfig::default();
        let stream = downward_stream(40);
        let mut online = OnlineTracker::new(cfg, OnlineOptions { lag: 5, hold: 1, ..OnlineOptions::default() });
        let mut saw_commit_mid_stream = false;
        for &r in &stream {
            online.push(r);
            if !online.committed().is_empty() {
                saw_commit_mid_stream = true;
            }
        }
        assert!(saw_commit_mid_stream, "a 5-step lag must commit before the stream ends");
        let committed = online.committed().len();
        let out = online.finalize();
        assert!(out.trail.len() >= committed);
        assert!(out.trail.points.iter().all(|p| p.x.is_finite() && p.y.is_finite()));
    }

    #[test]
    fn checkpoint_round_trips_through_json_text() {
        let cfg = PolarDrawConfig::default();
        let stream = downward_stream(20);
        let mut online = OnlineTracker::new(cfg, OnlineOptions { lag: 8, hold: 1, ..OnlineOptions::default() });
        for &r in &stream[..70] {
            online.push(r);
        }
        let text = online.checkpoint_string();
        let restored = OnlineTracker::restore_from_str(cfg, &text).expect("restore");
        // The restored tracker checkpoints to the identical document.
        assert_eq!(restored.checkpoint_string(), text);
        // And a mismatched config is refused.
        let other = cfg.with_wavelength(0.4);
        assert!(OnlineTracker::restore_from_str(other, &text).is_err());
    }

    #[test]
    fn empty_stream_finalizes_to_empty_output() {
        let out = OnlineTracker::batch(PolarDrawConfig::default()).finalize();
        assert!(out.trail.is_empty());
        assert!(out.steps.is_empty());
        assert!(out.windows.is_empty());
        assert!(!out.degradation.is_degraded());
    }

    #[test]
    fn late_reports_are_dropped_and_counted_in_streaming_mode() {
        let cfg = PolarDrawConfig::default();
        let mut online = OnlineTracker::new(cfg, OnlineOptions { lag: 8, hold: 1, ..OnlineOptions::default() });
        for &r in &downward_stream(20) {
            online.push(r);
        }
        assert!(online.windows_so_far().len() > 2, "head must have advanced");
        // 0.01 s is many windows behind the closed frontier by now.
        online.push(report(0.01, 0, -40.0, 1.0));
        assert_eq!(online.late_reports_dropped(), 1);
    }
}
