//! Multi-session serving: many pens, one rig, one process.
//!
//! The paper's §3.5 real-time claim covers one pen on one reader; the
//! serving layer scales that to a fleet. Two pieces:
//!
//! * [`ServePool`] — a worker pool that owns many [`OnlineTracker`]
//!   sessions and drives them with the workspace fan-out primitive
//!   ([`rf_core::par::parallel_for_each_mut`]). Reports are *enqueued*
//!   per session at any time; a [`drain`](ServePool::drain) round wakes
//!   only the sessions that actually have pending reports and advances
//!   each one on some worker thread.
//! * [`SupervisedFleet`] — glue between [`SessionSupervisor`] reader
//!   links and the pool: each pen has its own supervised LLRP link
//!   (watchdog, backoff, degraded modes); the fleet runs all links over
//!   a virtual-time slice, fans the captured reports into the pool, and
//!   drains once per slice.
//!
//! ## Why pool output is bitwise-identical to sequential
//!
//! Parallelism is *across* sessions, never within one. A drain visits
//! each woken session exactly once, on exactly one worker, and feeds it
//! its own queue in enqueue order — so every session observes precisely
//! the `push` sequence it would observe running alone, and
//! [`OnlineTracker`] is deterministic given its input sequence. Thread
//! count, work stealing, and wake order can change *when* a session
//! advances relative to the others, but never *what* any session
//! computes. `tests/serve.rs` enforces this bit-for-bit at
//! `threads ∈ {1, 2, 8}` across mixed fault presets.
//!
//! Sessions choose their own decode kernel: `OnlineOptions::with_kernel`
//! carries a [`hmm::KernelOptions`](crate::hmm::KernelOptions) (exact
//! f64 vs f32-table fast path, adaptive beam, intra-step threads) into
//! each tracker, and the pool passes it through untouched. Every kernel
//! is deterministic given its input sequence — the f32 path trades
//! f64-exactness, not reproducibility — so the bitwise contract above
//! holds for mixed-kernel fleets too (same tests, mixed kernels). Note
//! a session with `kernel.threads > 1` parallelizes *within* its own
//! decode steps via the same [`rf_core::par`] primitives the pool uses;
//! a fleet deployment typically keeps session kernels single-threaded
//! and lets the pool own the cores.
//!
//! Memory stays sublinear in session count because every session on one
//! rig resolves the same [`hmm::DecodeArtifacts`](crate::hmm::DecodeArtifacts)
//! entry: one `EmissionTable` build (row-parallel) and one copy of the
//! table/stencils serve the whole fleet (see DESIGN.md "Multi-session
//! serving").

use crate::online::{OnlineOptions, OnlineTracker};
use crate::{PolarDrawConfig, TrackOutput};
use rf_core::par::parallel_for_each_mut;
use rfid_sim::session::{LlrpLink, SessionConfig, SessionStats, SessionSupervisor};
use rfid_sim::TagReport;

/// Handle to one session in a [`ServePool`] (its slot index; stable for
/// the pool's lifetime).
pub type SessionId = usize;

/// Per-session serving counters (cumulative over the pool's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SessionServeStats {
    /// Reports enqueued for this session.
    pub reports_enqueued: usize,
    /// Enqueue calls (batch or single) that delivered ≥ 1 report.
    pub batches_enqueued: usize,
    /// Drain rounds that actually woke this session.
    pub wakes: usize,
    /// Reports the session has consumed.
    pub reports_processed: usize,
    /// Trail points the session has committed (beyond its decoder lag).
    pub points_committed: usize,
}

/// What one [`ServePool::drain`] round did.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DrainReport {
    /// Sessions woken (had pending reports).
    pub woken: usize,
    /// Live sessions left asleep (empty queue) — the wake model's whole
    /// point: idle pens cost nothing per round.
    pub skipped: usize,
    /// Reports consumed this round, summed over woken sessions.
    pub reports: usize,
    /// Trail points committed this round, summed over woken sessions.
    pub newly_committed: usize,
}

/// Pool-lifetime counters (sums of every [`DrainReport`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PoolStats {
    /// Drain rounds run.
    pub drains: usize,
    /// Session wakes, summed over rounds.
    pub wakes: usize,
    /// Reports consumed.
    pub reports: usize,
    /// Trail points committed.
    pub committed: usize,
}

#[derive(Debug)]
struct Slot {
    /// `None` once the session was finished individually.
    tracker: Option<OnlineTracker>,
    queue: Vec<TagReport>,
    stats: SessionServeStats,
    /// Per-drain deltas, written by the worker that visited the slot
    /// and folded into the [`DrainReport`] after the round joins.
    last_reports: usize,
    last_committed: usize,
    /// Set when this session's `push` panicked mid-drain. A poisoned
    /// slot is never woken or finalized again (its tracker may be in
    /// an inconsistent state); its queue is left exactly as it was so
    /// a supervisor can move the reports elsewhere. Generalizes
    /// `rfid_sim::session::run_isolated` up to the pool: one bad
    /// session cannot take the drain round (or the process) down.
    poisoned: bool,
    /// Panic payload text from the poisoning push, for diagnostics.
    poison_context: Option<String>,
}

/// A work-stealing worker pool over many [`OnlineTracker`] sessions.
///
/// ```
/// use polardraw_core::serve::ServePool;
/// use polardraw_core::{OnlineOptions, PolarDrawConfig};
///
/// let mut pool = ServePool::new(4);
/// let pen = pool.add_session(PolarDrawConfig::default(), OnlineOptions::default());
/// // … enqueue reports as they arrive, then periodically:
/// let round = pool.drain();
/// assert_eq!(round.woken, 0, "no reports yet — the pen stayed asleep");
/// let trails = pool.finish();
/// assert_eq!(trails.len(), 1);
/// # let _ = pen;
/// ```
#[derive(Debug)]
pub struct ServePool {
    slots: Vec<Slot>,
    threads: usize,
    stats: PoolStats,
    /// Indices of the slots woken by the current drain round. Reused
    /// across rounds (capacity persists), so steady-state drains do not
    /// allocate — see [`drain`](Self::drain).
    wake: Vec<usize>,
}

impl ServePool {
    /// Empty pool draining on up to `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> ServePool {
        ServePool {
            slots: Vec::new(),
            threads: threads.max(1),
            stats: PoolStats::default(),
            wake: Vec::new(),
        }
    }

    /// Worker count used by [`drain`](Self::drain) / [`finish`](Self::finish).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Change the worker count (takes effect next drain). Thread count
    /// never affects any session's output, only wall-clock time.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Add a fresh session; returns its handle.
    pub fn add_session(&mut self, config: PolarDrawConfig, options: OnlineOptions) -> SessionId {
        self.adopt(OnlineTracker::new(config, options))
    }

    /// Adopt an existing tracker (e.g. one restored from a
    /// `polardraw.online.checkpoint.v1` checkpoint) as a pool session.
    pub fn adopt(&mut self, tracker: OnlineTracker) -> SessionId {
        self.slots.push(Slot {
            tracker: Some(tracker),
            queue: Vec::new(),
            stats: SessionServeStats::default(),
            last_reports: 0,
            last_committed: 0,
            poisoned: false,
            poison_context: None,
        });
        self.slots.len() - 1
    }

    /// Number of sessions ever added (including finished ones — handles
    /// are stable slot indices).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the pool has no sessions.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Queue one report for a session (consumed at the next drain).
    pub fn enqueue(&mut self, id: SessionId, report: TagReport) {
        let slot = &mut self.slots[id];
        assert!(slot.tracker.is_some(), "session {id} already finished");
        slot.queue.push(report);
        slot.stats.reports_enqueued += 1;
        slot.stats.batches_enqueued += 1;
    }

    /// Queue a batch of reports for a session.
    pub fn enqueue_batch(&mut self, id: SessionId, reports: &[TagReport]) {
        if reports.is_empty() {
            return;
        }
        let slot = &mut self.slots[id];
        assert!(slot.tracker.is_some(), "session {id} already finished");
        slot.queue.extend_from_slice(reports);
        slot.stats.reports_enqueued += reports.len();
        slot.stats.batches_enqueued += 1;
    }

    /// Reports queued (not yet consumed) for a session.
    pub fn pending(&self, id: SessionId) -> usize {
        self.slots[id].queue.len()
    }

    /// One serving round: wake every session with pending reports and
    /// advance it on the worker pool; sessions with empty queues are
    /// left untouched. Output is independent of thread count (see the
    /// module docs for why).
    ///
    /// The wake list is a pool-owned index buffer reused round to
    /// round, and queues keep their capacity after draining, so a
    /// warmed single-threaded pool drains with **zero** allocations in
    /// its own serving path (asserted by `tests/serve_alloc.rs`); the
    /// multi-threaded path's only per-round allocations are inside the
    /// fan-out primitive itself.
    pub fn drain(&mut self) -> DrainReport {
        self.stats.drains += 1;
        self.wake.clear();
        let mut live = 0;
        for (i, s) in self.slots.iter().enumerate() {
            if s.tracker.is_some() && !s.poisoned {
                live += 1;
                if !s.queue.is_empty() {
                    self.wake.push(i);
                }
            }
        }
        let mut round = DrainReport {
            woken: self.wake.len(),
            skipped: live - self.wake.len(),
            ..DrainReport::default()
        };
        fn visit(slot: &mut Slot) {
            let queue = &slot.queue;
            let tracker = slot.tracker.as_mut().expect("woken slots hold a tracker");
            let before = tracker.committed().len();
            let n = queue.len();
            // Pushed by index (not drained) so that a panic part-way
            // through leaves the queue bytes intact — the supervisor
            // can then quarantine the session with its reports instead
            // of losing them with the unwound stack frame.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                for r in queue.iter() {
                    tracker.push(*r);
                }
            }));
            slot.stats.wakes += 1;
            match outcome {
                Ok(()) => {
                    slot.queue.clear();
                    let committed = slot.tracker.as_ref().expect("still present").committed().len();
                    slot.last_reports = n;
                    slot.last_committed = committed - before;
                    slot.stats.reports_processed += n;
                    slot.stats.points_committed = committed;
                }
                Err(payload) => {
                    // Isolate, don't unwind further: the round (and
                    // every other session in it) continues untouched.
                    slot.poisoned = true;
                    slot.poison_context = Some(
                        payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_string()),
                    );
                    slot.last_reports = 0;
                    slot.last_committed = 0;
                }
            }
        }
        if self.threads == 1 || round.woken <= 1 {
            // Sequential fast path: visit woken slots in place through
            // the reused index buffer — no per-round allocation at all.
            for &i in &self.wake {
                visit(&mut self.slots[i]);
            }
        } else {
            // Parallel path: fan out over the whole slot slice and let
            // workers skip sleeping slots (one branch each). Same
            // visits, same per-session push order, so the bitwise
            // thread-count contract in the module docs holds unchanged.
            parallel_for_each_mut(&mut self.slots, self.threads, |slot| {
                if slot.tracker.is_some() && !slot.poisoned && !slot.queue.is_empty() {
                    visit(slot);
                }
            });
        }
        for &i in &self.wake {
            round.reports += self.slots[i].last_reports;
            round.newly_committed += self.slots[i].last_committed;
        }
        self.stats.wakes += round.woken;
        self.stats.reports += round.reports;
        self.stats.committed += round.newly_committed;
        round
    }

    /// Read-only access to a live session's tracker (checkpointing,
    /// committed-trail peeking, artifact-sharing assertions).
    ///
    /// # Panics
    /// If the session was already finished.
    pub fn tracker(&self, id: SessionId) -> &OnlineTracker {
        self.slots[id].tracker.as_ref().expect("session already finished")
    }

    /// Mutable access to a live session's tracker for in-crate control
    /// loops: the fleet degradation controller swaps kernels and lag at
    /// drain boundaries (`OnlineTracker::set_kernel` / `set_lag`).
    ///
    /// # Panics
    /// If the session was already finished or released.
    pub(crate) fn tracker_mut(&mut self, id: SessionId) -> &mut OnlineTracker {
        self.slots[id].tracker.as_mut().expect("session already finished")
    }

    /// Remove a live session from the pool *without* finalizing it,
    /// returning the tracker and any still-queued reports (in enqueue
    /// order). This is the live-migration primitive: checkpoint the
    /// returned tracker, adopt the restored copy into another pool, and
    /// re-enqueue the leftover reports there — the session then
    /// observes exactly the push sequence it would have observed
    /// staying put, so its output is bit-identical to never moving (as
    /// long as nothing changes its kernel options in between). The
    /// handle stays allocated (ids are stable slot indices); the slot
    /// reads as finished afterwards.
    ///
    /// # Panics
    /// If the session was already finished or released.
    pub fn release(&mut self, id: SessionId) -> (OnlineTracker, Vec<TagReport>) {
        let slot = &mut self.slots[id];
        let tracker = slot.tracker.take().expect("session already finished");
        (tracker, std::mem::take(&mut slot.queue))
    }

    /// Whether a session was poisoned (its `push` panicked mid-drain).
    /// Poisoned sessions are never woken or finalized again.
    pub fn poisoned(&self, id: SessionId) -> bool {
        self.slots[id].poisoned
    }

    /// Panic payload text from a poisoned session, if any.
    pub fn poison_context(&self, id: SessionId) -> Option<&str> {
        self.slots[id].poison_context.as_deref()
    }

    /// Drop a session's tracker without finalizing it and return its
    /// still-queued reports. This is the quarantine primitive: the
    /// fleet router uses it to pull a poisoned session out of a shard
    /// while keeping its reports (the tracker itself is unsalvageable
    /// in-process — recovery goes through the durability store).
    pub fn discard(&mut self, id: SessionId) -> Vec<TagReport> {
        let slot = &mut self.slots[id];
        slot.tracker = None;
        std::mem::take(&mut slot.queue)
    }

    /// Cumulative serving counters for one session.
    pub fn session_stats(&self, id: SessionId) -> SessionServeStats {
        self.slots[id].stats
    }

    /// Pool-lifetime counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Finish one session now: drain its queue (sequentially — one
    /// session needs no pool) and finalize its trail. Its handle stays
    /// allocated; the slot is empty afterwards.
    pub fn finish_session(&mut self, id: SessionId) -> TrackOutput {
        let slot = &mut self.slots[id];
        let mut tracker = slot.tracker.take().expect("session already finished");
        let n = slot.queue.len();
        for r in slot.queue.drain(..) {
            tracker.push(r);
        }
        slot.stats.reports_processed += n;
        slot.stats.points_committed = tracker.committed().len();
        tracker.finalize()
    }

    /// Drain any remaining reports, then finalize every live session in
    /// parallel. Returns trails in session-id order (sessions finished
    /// earlier via [`finish_session`](Self::finish_session) are
    /// omitted).
    pub fn finish(mut self) -> Vec<TrackOutput> {
        self.drain();
        let threads = self.threads;
        let mut cells: Vec<(Option<OnlineTracker>, Option<TrackOutput>)> = self
            .slots
            .into_iter()
            // A poisoned tracker is in an unknown state; finalizing it
            // could panic again. Quarantined sessions produce no trail.
            .map(|s| (if s.poisoned { None } else { s.tracker }, None))
            .collect();
        parallel_for_each_mut(&mut cells, threads, |cell| {
            if let Some(tracker) = cell.0.take() {
                cell.1 = Some(tracker.finalize());
            }
        });
        cells.into_iter().filter_map(|c| c.1).collect()
    }
}

/// Per-pen handle inside a [`SupervisedFleet`].
#[derive(Debug)]
struct Pen<L: LlrpLink> {
    id: SessionId,
    supervisor: SessionSupervisor<L>,
    capture: Vec<TagReport>,
}

/// A fleet of supervised reader sessions fanned into one [`ServePool`].
///
/// Each pen owns a [`SessionSupervisor`] over its own LLRP link; the
/// fleet advances all links over one virtual-time slice, captures the
/// reports each supervisor delivers, enqueues them into the pool, and
/// drains once per slice. Link-layer failure handling (reconnect
/// backoff, watchdog recycles, dead-port degraded mode) stays entirely
/// inside each pen's supervisor — the pool only ever sees clean decoded
/// reports.
#[derive(Debug)]
pub struct SupervisedFleet<L: LlrpLink> {
    pool: ServePool,
    pens: Vec<Pen<L>>,
}

impl<L: LlrpLink> SupervisedFleet<L> {
    /// Empty fleet serving on up to `threads` workers.
    pub fn new(threads: usize) -> SupervisedFleet<L> {
        SupervisedFleet { pool: ServePool::new(threads), pens: Vec::new() }
    }

    /// Add a pen: a tracker session in the pool plus a supervised link
    /// feeding it.
    pub fn add_pen(
        &mut self,
        config: PolarDrawConfig,
        options: OnlineOptions,
        session: SessionConfig,
        link: L,
    ) -> SessionId {
        let id = self.pool.add_session(config, options);
        self.pens.push(Pen { id, supervisor: SessionSupervisor::new(session, link), capture: Vec::new() });
        id
    }

    /// Drive every pen from `t_start` to `t_end` in slices of
    /// `slice_s` virtual seconds, draining the pool once per slice.
    /// Returns the number of drain rounds run.
    pub fn run(&mut self, t_start: f64, t_end: f64, slice_s: f64) -> usize {
        let slice = slice_s.max(1e-3);
        let mut rounds = 0;
        let mut t = t_start;
        while t < t_end {
            let t1 = (t + slice).min(t_end);
            for pen in &mut self.pens {
                pen.capture.clear();
                pen.supervisor.run(&mut pen.capture, t, t1);
                self.pool.enqueue_batch(pen.id, &pen.capture);
            }
            self.pool.drain();
            rounds += 1;
            t = t1;
        }
        rounds
    }

    /// The underlying pool (stats, trackers, checkpoints).
    pub fn pool(&self) -> &ServePool {
        &self.pool
    }

    /// A pen's supervisor (events, stats, degraded-mode flags).
    pub fn supervisor(&self, id: SessionId) -> &SessionSupervisor<L> {
        &self.pens.iter().find(|p| p.id == id).expect("unknown pen").supervisor
    }

    /// Link-layer counters for every pen, in pen order.
    pub fn link_stats(&self) -> Vec<(SessionId, SessionStats)> {
        self.pens.iter().map(|p| (p.id, p.supervisor.stats())).collect()
    }

    /// Finalize every session; trails in session-id order.
    pub fn finish(self) -> Vec<TrackOutput> {
        self.pool.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_sim::session::SimulatedLink;

    /// A tiny synthetic report stream: two antennas alternating at
    /// 10 ms, constant RSS, slowly advancing phase. Enough to push
    /// windows through the tracker without caring about the trail.
    fn stream(n: usize, t0: f64) -> Vec<TagReport> {
        (0..n)
            .map(|i| TagReport {
                t: t0 + i as f64 * 0.01,
                antenna: i % 2,
                rssi_dbm: -55.0,
                phase_rad: rf_core::wrap_tau(0.02 * i as f64),
                channel: 0,
                epc: 0xB00C,
            })
            .collect()
    }

    fn coarse_config() -> PolarDrawConfig {
        let mut cfg = PolarDrawConfig::default();
        cfg.hmm.cell_m *= 8.0;
        cfg
    }

    #[test]
    fn empty_queues_stay_asleep() {
        let mut pool = ServePool::new(4);
        let a = pool.add_session(coarse_config(), OnlineOptions::default());
        let b = pool.add_session(coarse_config(), OnlineOptions::default());
        pool.enqueue_batch(a, &stream(40, 0.0));
        let round = pool.drain();
        assert_eq!(round.woken, 1, "only the session with reports wakes");
        assert_eq!(round.skipped, 1);
        assert_eq!(round.reports, 40);
        assert_eq!(pool.session_stats(b).wakes, 0);
        assert_eq!(pool.pending(a), 0, "queue consumed");
        let round2 = pool.drain();
        assert_eq!((round2.woken, round2.reports), (0, 0), "nothing pending → no wakes");
    }

    #[test]
    fn pool_matches_sequential_tracker() {
        let reports = stream(300, 0.0);
        // Sequential reference.
        let mut solo = OnlineTracker::new(coarse_config(), OnlineOptions::default());
        solo.extend(&reports);
        let want = solo.finalize();
        // Pool, chunked enqueue, several threads.
        for threads in [1, 3] {
            let mut pool = ServePool::new(threads);
            let id = pool.add_session(coarse_config(), OnlineOptions::default());
            for chunk in reports.chunks(37) {
                pool.enqueue_batch(id, chunk);
                pool.drain();
            }
            let got = pool.finish().remove(0);
            assert_eq!(got.trail.points, want.trail.points, "threads={threads}");
        }
    }

    #[test]
    fn finish_session_removes_slot_and_finish_skips_it() {
        let mut pool = ServePool::new(2);
        let a = pool.add_session(coarse_config(), OnlineOptions::default());
        let b = pool.add_session(coarse_config(), OnlineOptions::default());
        pool.enqueue_batch(a, &stream(60, 0.0));
        pool.enqueue_batch(b, &stream(60, 0.0));
        let first = pool.finish_session(a);
        let rest = pool.finish();
        assert_eq!(rest.len(), 1, "only b remains");
        assert_eq!(first.trail.points, rest[0].trail.points, "same stream, same trail");
    }

    #[test]
    fn poisoned_session_is_isolated_and_the_pool_keeps_serving() {
        let mut pool = ServePool::new(2);
        let good = pool.add_session(coarse_config(), OnlineOptions::default());
        // `window_s = 0` trips the tracker's first-push assertion — a
        // deterministic stand-in for any mid-stream panic.
        let mut bad_cfg = coarse_config();
        bad_cfg.preprocess.window_s = 0.0;
        let bad = pool.add_session(bad_cfg, OnlineOptions::default());

        pool.enqueue_batch(good, &stream(60, 0.0));
        pool.enqueue_batch(bad, &stream(60, 0.0));
        let round = pool.drain();
        assert_eq!(round.woken, 2, "both woke; one blew up in isolation");
        assert!(pool.poisoned(bad));
        assert!(!pool.poisoned(good));
        assert_eq!(pool.pending(bad), 60, "poisoned queue left intact for escrow");
        assert!(pool.poison_context(bad).unwrap().contains("window length"));

        // The pool keeps serving; the poisoned slot never wakes again.
        pool.enqueue_batch(good, &stream(60, 0.6));
        let round2 = pool.drain();
        assert_eq!(round2.woken, 1);

        let escrow = pool.discard(bad);
        assert_eq!(escrow.len(), 60, "quarantine hands back every report");
        let trails = pool.finish();
        assert_eq!(trails.len(), 1, "only the healthy session finalizes");
    }

    #[test]
    fn fleet_runs_supervised_links_through_the_pool() {
        let reports = stream(400, 0.0);
        let mut fleet: SupervisedFleet<SimulatedLink> = SupervisedFleet::new(2);
        let session = SessionConfig::default();
        let a = fleet.add_pen(
            coarse_config(),
            OnlineOptions::default(),
            session,
            SimulatedLink::from_reports(&reports, 0.05),
        );
        let b = fleet.add_pen(
            coarse_config(),
            OnlineOptions::default(),
            session,
            SimulatedLink::from_reports(&reports, 0.05),
        );
        let rounds = fleet.run(0.0, 4.0, 0.5);
        assert_eq!(rounds, 8);
        assert!(fleet.pool().stats().reports > 0, "links delivered into the pool");
        assert_eq!(
            fleet.pool().session_stats(a).reports_processed,
            fleet.pool().session_stats(b).reports_processed,
            "identical links deliver identically"
        );
        assert!(!fleet.supervisor(a).degraded_single_antenna());
        let trails = fleet.finish();
        assert_eq!(trails.len(), 2);
        assert_eq!(trails[0].trail.points, trails[1].trail.points, "identical pens, identical trails");
    }
}
