//! Viterbi decode throughput: the optimized beam decoder across a
//! (cell size × beam width × step count) matrix, plus the retained
//! naive reference at matching workloads so the speedup is measured,
//! not asserted.
//!
//! The workload is the paper-fidelity rig: the default `PolarDrawConfig`
//! board and antennas, a 100-step synthetic observation stream with a
//! slowly-turning direction prior and a hyperbola measurement on every
//! step — the same shape `repro`'s accuracy trials decode thousands of
//! times. `decode/opt/cell2.5mm/beam2500/steps100` versus
//! `decode/ref/cell2.5mm/beam2500/steps100` is the headline pair the
//! committed `BENCH_decode.json` tracks (`scripts/bench.sh` regenerates
//! it; `bench_check --min-speedup` enforces the ≥3× floor).

use polardraw_bench::harness::Bench;
use polardraw_core::distance::FeasibleRegion;
use polardraw_core::hmm::{
    viterbi_beam, viterbi_reference, viterbi_with_stats, FixedLagDecoder, Grid, HmmConfig,
    StepObservation,
};
use polardraw_core::PolarDrawConfig;
use rf_core::Vec2;

/// The synthetic observation stream every decode bench shares: steady
/// ~4 mm steps with a slowly-turning direction and a constant hyperbola
/// measurement (values match the long-standing `components.rs` decode
/// workload).
fn make_steps(n: usize) -> Vec<StepObservation> {
    (0..n)
        .map(|i| StepObservation {
            region: FeasibleRegion { min_dist: 0.002, max_dist: 0.01 },
            direction: Some(Vec2::from_angle(i as f64 * 0.1)),
            dtheta21: Some(0.3),
            target_dist: 0.004,
        })
        .collect()
}

fn main() {
    let mut bench = Bench::from_args("decode");
    let cfg = PolarDrawConfig::default();
    let hmm = HmmConfig::default();

    // Optimized decoder: cell × beam matrix at the repro step count.
    let steps100 = make_steps(100);
    for (cell_label, cell_m) in [("cell2.5mm", 0.0025), ("cell5mm", 0.005), ("cell10mm", 0.01)] {
        let grid = Grid::covering(cfg.board_min, cfg.board_max, cell_m);
        let config = HmmConfig { cell_m, ..hmm };
        for beam in [500usize, 2500] {
            bench.bench(&format!("decode/opt/{cell_label}/beam{beam}/steps100"), || {
                viterbi_beam(&grid, cfg.antennas, cfg.start_hint, &steps100, &config, beam)
            });
        }
    }

    // Step-count axis (decode cost is linear in steps; this guards it).
    {
        let cell_m = 0.005;
        let grid = Grid::covering(cfg.board_min, cfg.board_max, cell_m);
        let config = HmmConfig { cell_m, ..hmm };
        for n in [25usize, 400] {
            let steps = make_steps(n);
            bench.bench(&format!("decode/opt/cell5mm/beam2500/steps{n}"), || {
                viterbi_beam(&grid, cfg.antennas, cfg.start_hint, &steps, &config, 2500)
            });
        }
    }

    // Online per-window step latency at paper fidelity: one
    // `FixedLagDecoder::step` on a long-lived decoder (lag 64, the
    // streaming default), cycling through the synthetic observations so
    // steady state looks like a live session. Each iteration is one
    // window of work; `scripts/verify.sh --quick-bench` gates the
    // median at 10 ms via `bench_check --max-median` — the decoder must
    // keep up with the stream's window period with room to spare.
    {
        let cell_m = 0.0025;
        let grid = Grid::covering(cfg.board_min, cfg.board_max, cell_m);
        let config = HmmConfig { cell_m, ..hmm };
        let mut decoder =
            FixedLagDecoder::new(grid, cfg.antennas, cfg.start_hint, config, 2500, 64);
        let mut i = 0usize;
        bench.bench("decode/online/step/cell2.5mm/beam2500/lag64", || {
            let committed = decoder.step(&steps100[i % steps100.len()]);
            i += 1;
            committed
        });
    }

    // Retained naive reference at the two headline workloads.
    for (cell_label, cell_m) in [("cell2.5mm", 0.0025), ("cell5mm", 0.005)] {
        let grid = Grid::covering(cfg.board_min, cfg.board_max, cell_m);
        let config = HmmConfig { cell_m, ..hmm };
        bench.bench(&format!("decode/ref/{cell_label}/beam2500/steps100"), || {
            viterbi_reference(&grid, cfg.antennas, cfg.start_hint, &steps100, &config, 2500)
        });
    }

    // Work counters for the headline workload: what the decode did, not
    // just how long it took.
    {
        let grid = Grid::covering(cfg.board_min, cfg.board_max, 0.0025);
        let (_, stats) =
            viterbi_with_stats(&grid, cfg.antennas, cfg.start_hint, &steps100, &hmm, 2500);
        bench.note(format!(
            "decode/opt/cell2.5mm/beam2500/steps100 work: {} expansions, {} touched cells, \
             {} beam-pruned, {} below-min, mean frontier {:.0}, max frontier {}, \
             {} carried of {} steps",
            stats.expansions,
            stats.touched_cells,
            stats.pruned_beam,
            stats.pruned_below_min,
            stats.mean_frontier(),
            stats.max_frontier,
            stats.carried_steps,
            stats.steps,
        ));
        bench.note(format!(
            "grid {}x{} = {} cells; board {:?}..{:?}",
            grid.nx,
            grid.ny,
            grid.len(),
            cfg.board_min,
            cfg.board_max,
        ));
    }

    bench.finish();
}
