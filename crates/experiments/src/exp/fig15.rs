//! Figure 15: writing in the air vs on the whiteboard.
//!
//! Four groups of letters, each written on the board and in the air.
//! Without the board the pen leaves the virtual plane, corrupting the
//! planar distance inference: the paper measures ≈91 % on the board
//! and an ~8 % drop in the air (still above 80 %).

use crate::report::Report;
use crate::runner::{letter_accuracy, run_letter_trials, RunOpts};
use crate::setup::TrialSetup;
use pen_sim::Scene;

/// The four letter groups ("randomly choose 10 letters" per group —
/// fixed here for determinism).
pub const GROUPS: [[char; 10]; 4] = [
    ['A', 'C', 'E', 'G', 'I', 'K', 'M', 'O', 'Q', 'S'],
    ['B', 'D', 'F', 'H', 'J', 'L', 'N', 'P', 'R', 'T'],
    ['U', 'V', 'W', 'X', 'Y', 'Z', 'C', 'E', 'L', 'S'],
    ['I', 'L', 'M', 'N', 'O', 'S', 'U', 'W', 'Z', 'A'],
];

/// Run all four groups, board vs air.
pub fn run(opts: &RunOpts) -> Vec<Report> {
    let mut report = Report::new(
        "fig15",
        "Writing in the air vs on the whiteboard",
        "≈91 % on the board; ~8 % lower in the air (still >80 %)",
    )
    .headers(vec!["Group", "Whiteboard (%)", "In air (%)"]);
    let trials_per = opts.trials.div_ceil(3).max(1);
    for (gi, group) in GROUPS.iter().enumerate() {
        let mut accs = [0.0; 2];
        for (mode, acc_slot) in [(false, 0), (true, 1)] {
            let conditions: Vec<(char, TrialSetup)> = group
                .iter()
                .map(|&ch| {
                    let mut s = TrialSetup::letter(ch);
                    if mode {
                        s.scene = Scene::default().in_air();
                    }
                    (ch, s)
                })
                .collect();
            let trials = run_letter_trials(
                &conditions,
                trials_per,
                opts.seed.wrapping_add(200 + gi as u64),
                opts,
            );
            accs[acc_slot] = 100.0 * letter_accuracy(&trials);
        }
        report.push_row(vec![
            format!("{}", gi + 1),
            format!("{:.0}", accs[0]),
            format!("{:.0}", accs[1]),
        ]);
    }
    report.push_note("in-air sessions add out-of-plane wobble + drift (pen-sim AirModel)");
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_have_ten_letters_each() {
        for g in GROUPS {
            assert_eq!(g.len(), 10);
            assert!(g.iter().all(|c| c.is_ascii_uppercase()));
        }
    }
}
