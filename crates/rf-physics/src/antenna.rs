//! Reader antenna models.
//!
//! PolarDraw replaces the reader's standard circularly-polarized antennas
//! with *linearly*-polarized ones (§1). We model both so the ablation
//! "what if we had kept circular polarization?" is expressible: a
//! circularly-polarized antenna couples to any dipole orientation with a
//! constant −3 dB factor, destroying the orientation information the
//! paper exploits.

use crate::polarization;
use rf_core::{db_to_ratio, Vec3};

/// Antenna polarization type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Polarization {
    /// Linear polarization along the given (unit) axis.
    Linear(Vec3),
    /// Circular polarization: orientation-independent −3 dB coupling to a
    /// linear dipole, no usable mismatch-angle information.
    Circular,
}

/// A reader antenna: position, boresight, polarization, and a patch-like
/// gain pattern `G(θ) = G₀·cosⁿθ` clipped to the front hemisphere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Antenna {
    /// Phase-centre position, metres.
    pub position: Vec3,
    /// Boresight (main-beam) unit direction.
    pub boresight: Vec3,
    /// Polarization.
    pub polarization: Polarization,
    /// Boresight gain, dBi. The Laird antennas used by the paper are
    /// ~6 dBi panels.
    pub gain_dbi: f64,
    /// Pattern exponent `n` in `cosⁿθ`; larger = more directional.
    pub pattern_exponent: f64,
}

impl Antenna {
    /// A linearly-polarized panel antenna typical of the paper's setup.
    pub fn linear(position: Vec3, boresight: Vec3, pol_axis: Vec3) -> Antenna {
        Antenna {
            position,
            boresight,
            polarization: Polarization::Linear(pol_axis),
            gain_dbi: 6.0,
            pattern_exponent: 2.0,
        }
    }

    /// A circularly-polarized panel antenna (stock RFID deployment).
    pub fn circular(position: Vec3, boresight: Vec3) -> Antenna {
        Antenna {
            position,
            boresight,
            polarization: Polarization::Circular,
            gain_dbi: 6.0,
            pattern_exponent: 2.0,
        }
    }

    /// Linear *amplitude* gain toward `target` (√ of the power gain),
    /// including the pattern roll-off. Zero behind the antenna.
    pub fn amplitude_gain_towards(&self, target: Vec3) -> f64 {
        let dir = match (target - self.position).normalized() {
            Some(d) => d,
            None => return 0.0,
        };
        let cos_theta = self.boresight.dot(dir);
        if cos_theta <= 0.0 {
            return 0.0; // back hemisphere of a panel antenna
        }
        let pattern = cos_theta.powf(self.pattern_exponent);
        (db_to_ratio(self.gain_dbi) * pattern).sqrt()
    }

    /// Polarization coupling factor toward a dipole tag (signed, in
    /// `[−1, 1]`): `ê·u` for linear polarization, `1/√2` (−3 dB in
    /// power) independent of orientation for circular.
    pub fn polarization_coupling(&self, tag_pos: Vec3, dipole: Vec3) -> f64 {
        match self.polarization {
            Polarization::Linear(axis) => {
                polarization::coupling(self.position, axis, tag_pos, dipole)
            }
            Polarization::Circular => std::f64::consts::FRAC_1_SQRT_2,
        }
    }

    /// Polarization mismatch angle β toward a dipole (radians, `[0, π/2]`).
    /// For circular polarization there is no mismatch concept; returns 0.
    pub fn mismatch_angle(&self, tag_pos: Vec3, dipole: Vec3) -> f64 {
        match self.polarization {
            Polarization::Linear(axis) => {
                polarization::mismatch_angle(self.position, axis, tag_pos, dipole)
            }
            Polarization::Circular => 0.0,
        }
    }

    /// The polarization axis for linear antennas; `None` for circular.
    pub fn linear_axis(&self) -> Option<Vec3> {
        match self.polarization {
            Polarization::Linear(a) => Some(a),
            Polarization::Circular => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn downward_panel() -> Antenna {
        Antenna::linear(Vec3::new(0.0, 0.0, 2.0), -Vec3::Z, Vec3::X)
    }

    #[test]
    fn boresight_gain_matches_spec() {
        let a = downward_panel();
        let g = a.amplitude_gain_towards(Vec3::ZERO);
        // 6 dBi → power ratio ~3.98 → amplitude ~1.995.
        assert!((g * g - 3.981).abs() < 1e-2);
    }

    #[test]
    fn gain_rolls_off_away_from_boresight() {
        let a = downward_panel();
        let on_axis = a.amplitude_gain_towards(Vec3::ZERO);
        let off_axis = a.amplitude_gain_towards(Vec3::new(1.5, 0.0, 0.0));
        assert!(off_axis < on_axis);
        assert!(off_axis > 0.0);
    }

    #[test]
    fn back_hemisphere_is_dark() {
        let a = downward_panel();
        assert_eq!(a.amplitude_gain_towards(Vec3::new(0.0, 0.0, 5.0)), 0.0);
    }

    #[test]
    fn target_at_antenna_position_gains_zero() {
        let a = downward_panel();
        assert_eq!(a.amplitude_gain_towards(a.position), 0.0);
    }

    #[test]
    fn linear_coupling_depends_on_orientation_circular_does_not() {
        let lin = downward_panel();
        let circ = Antenna::circular(Vec3::new(0.0, 0.0, 2.0), -Vec3::Z);
        let aligned = lin.polarization_coupling(Vec3::ZERO, Vec3::X).abs();
        let crossed = lin.polarization_coupling(Vec3::ZERO, Vec3::Y).abs();
        assert!(aligned > 0.99 && crossed < 1e-9);
        let c1 = circ.polarization_coupling(Vec3::ZERO, Vec3::X);
        let c2 = circ.polarization_coupling(Vec3::ZERO, Vec3::Y);
        assert!((c1 - c2).abs() < 1e-12, "circular is orientation-blind");
        assert!((c1 * c1 - 0.5).abs() < 1e-12, "−3 dB coupling");
    }

    #[test]
    fn mismatch_angle_zero_for_circular() {
        let circ = Antenna::circular(Vec3::new(0.0, 0.0, 2.0), -Vec3::Z);
        assert_eq!(circ.mismatch_angle(Vec3::ZERO, Vec3::Y), 0.0);
    }

    #[test]
    fn linear_axis_accessor() {
        assert_eq!(downward_panel().linear_axis(), Some(Vec3::X));
        assert_eq!(Antenna::circular(Vec3::ZERO, Vec3::Z).linear_axis(), None);
    }
}
