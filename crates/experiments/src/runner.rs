//! Trial execution: run options, parallel fan-out, and the letter/word
//! accuracy loops every accuracy experiment shares.

use crate::setup::{run_trial, TrialSetup};
use pen_sim::scene::ChannelMode;
use polardraw_core::hmm::KernelOptions;
use recognition::{procrustes_distance, ConfusionMatrix, LetterRecognizer, WordRecognizer};
use rf_core::rng::derive_seed_indexed;

/// Global run options every experiment receives.
#[derive(Debug, Clone, Copy)]
pub struct RunOpts {
    /// Master seed; all trial seeds derive from it.
    pub seed: u64,
    /// Repetitions per condition. The paper uses 10–100; 10 keeps the
    /// full suite in minutes on a laptop (scale up for smoother curves).
    pub trials: usize,
    /// Worker threads for trial fan-out.
    pub threads: usize,
    /// Grid coarsening factor forwarded to every tracker (1.0 = paper
    /// fidelity; >1 trades accuracy for speed — the registry smoke test
    /// and `repro --cell-scale` use this).
    pub cell_scale: f64,
    /// Decode kernel forwarded to every PolarDraw trial (`repro
    /// --kernel fast`). A non-exact selection overrides each setup's
    /// own kernel; the default `exact()` leaves setups untouched so
    /// experiments that pin a kernel keep it.
    pub kernel: KernelOptions,
    /// Polarization formalism forwarded to every trial (`repro
    /// --channel jones`). Selecting `Jones` overrides each setup's own
    /// channel; the default `Scalar` leaves setups untouched so
    /// experiments that pin a channel keep it.
    pub channel: ChannelMode,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            seed: 42,
            trials: 10,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            cell_scale: 1.0,
            kernel: KernelOptions::exact(),
            channel: ChannelMode::Scalar,
        }
    }
}

/// Fold the global run options into one condition's setup: compose the
/// grid coarsening multiplicatively and override the kernel/channel
/// when the run asks for a non-default one.
fn apply_opts(setup: &TrialSetup, opts: &RunOpts) -> TrialSetup {
    let mut setup = setup.clone().with_cell_scale(setup.cell_scale * opts.cell_scale);
    if opts.kernel != KernelOptions::exact() {
        setup.kernel = opts.kernel;
    }
    if opts.channel != ChannelMode::Scalar {
        setup = setup.with_channel(opts.channel);
    }
    setup
}

/// The workspace fan-out primitive, re-exported from `rf_core::par` so
/// existing experiment code (and external callers) keep their import
/// path. One implementation serves trial sweeps, the emission-table
/// row build, and the serve pool alike.
pub use rf_core::par::parallel_map;

/// Result of one recognition trial.
#[derive(Debug, Clone)]
pub struct LetterTrial {
    /// Ground-truth letter.
    pub actual: char,
    /// Recognized letter (None: degenerate trail).
    pub predicted: Option<char>,
    /// Procrustes distance to ground truth, metres.
    pub procrustes_m: Option<f64>,
}

/// Run `trials` repetitions of each `(letter, setup)` condition and
/// score them with a shared recognizer. `trials` and `seed` are passed
/// explicitly (experiments split and offset them per condition group);
/// `opts` supplies the thread fan-out and grid fidelity.
pub fn run_letter_trials(
    conditions: &[(char, TrialSetup)],
    trials: usize,
    seed: u64,
    opts: &RunOpts,
) -> Vec<LetterTrial> {
    let recognizer = LetterRecognizer::new();
    let mut jobs = Vec::new();
    for (ci, (ch, setup)) in conditions.iter().enumerate() {
        let setup = apply_opts(setup, opts);
        for t in 0..trials {
            jobs.push((*ch, setup.clone(), derive_seed_indexed(seed, "letter", (ci * 10_000 + t) as u64)));
        }
    }
    parallel_map(jobs, opts.threads, |(ch, setup, s)| {
        let run = run_trial(setup, *s);
        LetterTrial {
            actual: *ch,
            predicted: recognizer.classify(&run.trail.points),
            procrustes_m: procrustes_distance(&run.truth, &run.trail.points, 64),
        }
    })
}

/// Accuracy over letter trials (unrecognized counts as wrong).
pub fn letter_accuracy(trials: &[LetterTrial]) -> f64 {
    if trials.is_empty() {
        return 0.0;
    }
    trials.iter().filter(|t| t.predicted == Some(t.actual)).count() as f64 / trials.len() as f64
}

/// Fold letter trials into a confusion matrix over A–Z.
pub fn confusion_of(trials: &[LetterTrial]) -> ConfusionMatrix {
    let mut m = ConfusionMatrix::new(pen_sim::glyph::ALPHABET.to_vec());
    for t in trials {
        if let Some(p) = t.predicted {
            m.record(t.actual, p);
        }
    }
    m
}

/// Run word-recognition trials: each word in `words` is written
/// `trials` times and matched against the whole group as dictionary.
/// Returns accuracy.
pub fn run_word_trials(
    words: &[&str],
    base: &TrialSetup,
    trials: usize,
    seed: u64,
    opts: &RunOpts,
) -> f64 {
    let recognizer = WordRecognizer::new(words);
    let base = apply_opts(base, opts);
    let mut jobs = Vec::new();
    for (wi, w) in words.iter().enumerate() {
        for t in 0..trials {
            let mut setup = base.clone();
            setup.text = w.to_string();
            jobs.push((w.to_string(), setup, derive_seed_indexed(seed, "word", (wi * 10_000 + t) as u64)));
        }
    }
    let outcomes = parallel_map(jobs, opts.threads, |(w, setup, s)| {
        let run = run_trial(setup, *s);
        recognizer.classify(&run.trail.points).as_deref() == Some(w.as_str())
    });
    outcomes.iter().filter(|&&ok| ok).count() as f64 / outcomes.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let jobs: Vec<u64> = (0..100).collect();
        let out = parallel_map(jobs, 8, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_single_thread_and_empty() {
        assert_eq!(parallel_map(vec![1, 2, 3], 1, |&x| x + 1), vec![2, 3, 4]);
        assert!(parallel_map(Vec::<u8>::new(), 4, |&x| x).is_empty());
    }

    #[test]
    fn letter_accuracy_counts_exact_matches() {
        let trials = vec![
            LetterTrial { actual: 'A', predicted: Some('A'), procrustes_m: None },
            LetterTrial { actual: 'B', predicted: Some('C'), procrustes_m: None },
            LetterTrial { actual: 'C', predicted: None, procrustes_m: None },
            LetterTrial { actual: 'D', predicted: Some('D'), procrustes_m: None },
        ];
        assert!((letter_accuracy(&trials) - 0.5).abs() < 1e-12);
        assert_eq!(letter_accuracy(&[]), 0.0);
    }

    #[test]
    fn confusion_folds_predictions() {
        let trials = vec![
            LetterTrial { actual: 'A', predicted: Some('A'), procrustes_m: None },
            LetterTrial { actual: 'A', predicted: Some('B'), procrustes_m: None },
            LetterTrial { actual: 'B', predicted: None, procrustes_m: None },
        ];
        let m = confusion_of(&trials);
        assert_eq!(m.count('A', 'A'), 1);
        assert_eq!(m.count('A', 'B'), 1);
        assert_eq!(m.total(), 2, "unrecognized trials are not recorded");
    }
}
