//! Writer style profiles.
//!
//! Fig. 21 evaluates four users with distinct styles; §5.3.3 singles out
//! User 2, who was "instructed to write in an unnaturally 'stiff' style",
//! i.e. with minimal azimuthal pen rotation — the worst case for a
//! polarization-based direction estimator.

use crate::kinematics::WristModel;

/// A writer's style: kinematic parameters feeding the wrist model and
/// path synthesis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriterProfile {
    /// Display name.
    pub name: &'static str,
    /// Ink speed, m/s (normal handwriting on a board: 5–12 cm/s).
    pub speed_mps: f64,
    /// Letter height, metres (the paper's main experiments use 20 cm).
    pub letter_size_m: f64,
    /// Wrist articulation.
    pub wrist: WristModel,
}

impl WriterProfile {
    /// The default volunteer: natural wrist, 20 cm letters.
    pub fn natural() -> WriterProfile {
        WriterProfile {
            name: "user1-natural",
            speed_mps: 0.08,
            letter_size_m: 0.20,
            wrist: WristModel::default(),
        }
    }

    /// Fig. 21's User 2: stiff grip, barely any azimuthal rotation.
    pub fn stiff() -> WriterProfile {
        WriterProfile {
            name: "user2-stiff",
            speed_mps: 0.07,
            letter_size_m: 0.20,
            wrist: WristModel {
                gain_rad: 8f64.to_radians(),
                lag_s: 0.2,
                ..WristModel::default()
            },
        }
    }

    /// A quick writer with slightly exaggerated rotation.
    pub fn quick() -> WriterProfile {
        WriterProfile {
            name: "user3-quick",
            speed_mps: 0.11,
            letter_size_m: 0.18,
            wrist: WristModel {
                gain_rad: 58f64.to_radians(),
                lag_s: 0.09,
                azimuth_jitter_rad: 2.0f64.to_radians(),
                ..WristModel::default()
            },
        }
    }

    /// A careful writer: slow, small letters, steady hand.
    pub fn careful() -> WriterProfile {
        WriterProfile {
            name: "user4-careful",
            speed_mps: 0.05,
            letter_size_m: 0.22,
            wrist: WristModel {
                gain_rad: 46f64.to_radians(),
                azimuth_jitter_rad: 0.7f64.to_radians(),
                elevation_jitter_rad: 1.0f64.to_radians(),
                ..WristModel::default()
            },
        }
    }

    /// The four users of Fig. 21, in order.
    pub fn panel() -> [WriterProfile; 4] {
        [Self::natural(), Self::stiff(), Self::quick(), Self::careful()]
    }

    /// This profile with a different letter size (the microbenchmarks
    /// sweep writing size).
    pub fn with_letter_size(mut self, size_m: f64) -> WriterProfile {
        self.letter_size_m = size_m;
        self
    }

    /// This profile with a different elevation angle (Table 7 sweeps
    /// α_e).
    pub fn with_elevation(mut self, elevation_rad: f64) -> WriterProfile {
        self.wrist.elevation_rad = elevation_rad;
        self
    }
}

impl rf_core::json::ToJson for WriterProfile {
    fn to_json(&self) -> rf_core::Json {
        rf_core::Json::obj([
            ("name", rf_core::Json::str(self.name)),
            ("speed_mps", rf_core::Json::Num(self.speed_mps)),
            ("letter_size_m", rf_core::Json::Num(self.letter_size_m)),
            ("wrist", self.wrist.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_has_four_distinct_users() {
        let panel = WriterProfile::panel();
        assert_eq!(panel.len(), 4);
        let names: Vec<&str> = panel.iter().map(|p| p.name).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
    }

    #[test]
    fn stiff_user_has_least_wrist_gain() {
        let panel = WriterProfile::panel();
        let stiff = WriterProfile::stiff();
        for p in panel.iter().filter(|p| p.name != stiff.name) {
            assert!(p.wrist.gain_rad > stiff.wrist.gain_rad);
        }
    }

    #[test]
    fn all_speeds_stay_under_papers_vmax() {
        // §3.4 sets vmax = 0.2 m/s and argues normal writing is well
        // below it; our profiles must respect that.
        for p in WriterProfile::panel() {
            assert!(p.speed_mps < 0.2, "{} too fast", p.name);
            assert!(p.speed_mps > 0.0);
        }
    }

    #[test]
    fn builders_override_fields() {
        let p = WriterProfile::natural().with_letter_size(0.1).with_elevation(0.5);
        assert_eq!(p.letter_size_m, 0.1);
        assert_eq!(p.wrist.elevation_rad, 0.5);
    }
}
