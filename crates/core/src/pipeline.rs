//! The end-to-end PolarDraw tracker (Fig. 5's workflow).
//!
//! Wires pre-processing → movement-type detection → direction estimation
//! (rotational via polarization, translational via phase trends) →
//! distance bounds → HMM Viterbi decoding → trajectory rotation
//! correction, and exposes it all as a [`rfid_sim::TrajectoryTracker`].

use crate::distance::DistanceConfig;
use crate::hmm::{DecodeStats, HmmConfig};
use crate::model::{Cardinal, Rotation, Sector};
use crate::preprocess::{PreprocessConfig, PreprocessStats, Windowed};
use crate::rotation::RotationConfig;
use crate::translation::TranslationConfig;
use rf_core::{Vec2, Vec3};
use rfid_sim::tracking::{Trail, TrajectoryTracker};
use rfid_sim::TagReport;

/// Complete tracker configuration. Defaults reproduce the paper's
/// published parameter choices (§3, §5.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolarDrawConfig {
    /// Pre-processing (50 ms windows, spurious rejection).
    pub preprocess: PreprocessConfig,
    /// Azimuth tracking (γ, Δβ, step threshold).
    pub rotation: RotationConfig,
    /// Translational direction estimation.
    pub translation: TranslationConfig,
    /// Distance bounds (λ, v_max).
    pub distance: DistanceConfig,
    /// HMM decoding.
    pub hmm: HmmConfig,
    /// Movement-type threshold δ: RSS change above this (dB) in a window
    /// marks the step rotational (paper: 2 dBm).
    pub movement_rss_threshold_db: f64,
    /// Assumed constant pen elevation αe, radians (paper: 30°; Table 7
    /// shows insensitivity).
    pub alpha_e_rad: f64,
    /// Antenna positions, metres (board frame; the writing plane is
    /// z = 0 and the antennas stand off it).
    pub antennas: [Vec3; 2],
    /// Board region the HMM covers: minimum corner.
    pub board_min: Vec2,
    /// Board region: maximum corner.
    pub board_max: Vec2,
    /// Bootstrap position (the paper picks an arbitrary hyperbola
    /// point; evaluation is translation-invariant).
    pub start_hint: Vec2,
    /// `false` reproduces the Table 6 ablation: no polarization-based
    /// rotation estimation, direction from coarse phase trends only.
    pub use_polarization: bool,
    /// Apply the Eq. 10 final rotation correction.
    pub apply_rotation_correction: bool,
    /// Clamp on the Eq. 10 correction magnitude, radians. The boundary
    /// corrections that estimate α̃a are noisy; an unclamped estimate
    /// can swing the whole trail (paper's Fig. 10 corrections are small).
    pub max_rotation_correction_rad: f64,
    /// Apply the constant-velocity Kalman/RTS smoother to the decoded
    /// trail (the paper's declared future work, §3.5 footnote 5).
    pub smooth_output: bool,
    /// Smoother tuning.
    pub smoother: crate::smoother::SmootherConfig,
    /// Extension (on by default; not in the paper): refine translational
    /// direction by least-squares over both antennas' range rates
    /// instead of snapping to the four Table 4 cardinals. Set `false`
    /// for the strictly paper-faithful coarse-direction behaviour (the
    /// ablation benches sweep this).
    pub refine_translation: bool,
    /// Gap bridging: an interior run of at least this many consecutive
    /// completely-empty windows (no reads on either antenna — a total
    /// outage) is coalesced into a single decoder step whose `dt` spans
    /// the whole gap, so the feasible annulus widens to `v_max · gap`
    /// instead of emitting a chain of blind per-window steps. Clean
    /// streams never hit this (the reader reads every window), so the
    /// default changes nothing on healthy input. `usize::MAX` disables.
    pub gap_bridge_min_windows: usize,
}

impl Default for PolarDrawConfig {
    fn default() -> Self {
        PolarDrawConfig {
            preprocess: PreprocessConfig::default(),
            rotation: RotationConfig::default(),
            translation: TranslationConfig::default(),
            distance: DistanceConfig::default(),
            hmm: HmmConfig::default(),
            movement_rss_threshold_db: 2.0,
            alpha_e_rad: 30f64.to_radians(),
            antennas: [Vec3::new(-0.28, 0.15, 0.65), Vec3::new(0.28, 0.15, 0.65)],
            board_min: Vec2::new(-0.45, 0.35),
            board_max: Vec2::new(0.75, 1.1),
            start_hint: Vec2::new(-0.2, 0.7),
            use_polarization: true,
            apply_rotation_correction: true,
            max_rotation_correction_rad: 25f64.to_radians(),
            smooth_output: true,
            smoother: crate::smoother::SmootherConfig::default(),
            refine_translation: false,
            gap_bridge_min_windows: 4,
        }
    }
}

impl PolarDrawConfig {
    /// Keep λ consistent across the sub-configs.
    pub fn with_wavelength(mut self, lambda_m: f64) -> Self {
        self.translation.wavelength_m = lambda_m;
        self.distance.wavelength_m = lambda_m;
        self.hmm.wavelength_m = lambda_m;
        self
    }

    /// Set the antenna mounting angle γ everywhere it matters.
    pub fn with_gamma(mut self, gamma_rad: f64) -> Self {
        self.rotation.gamma_rad = gamma_rad;
        self
    }
}

/// What kind of movement a step was classified as.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepKind {
    /// RSS trend dominated: rotational movement (§3.3.1).
    Rotational {
        /// Rotation sense.
        rotation: Rotation,
        /// Sector the azimuth was classified into.
        sector: Sector,
    },
    /// Phase trend dominated: translational movement (§3.3.2).
    Translational(Cardinal),
    /// Nothing moved measurably.
    Still,
}

/// Per-step diagnostic record (consumed by the Fig. 9/10 experiments).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepEstimate {
    /// End-of-step window time, seconds.
    pub t: f64,
    /// Movement classification.
    pub kind: StepKind,
    /// Unit direction estimate, if any.
    pub direction: Option<Vec2>,
    /// Tracked azimuth αa after this step, if rotation tracking is
    /// initialized, radians.
    pub azimuth: Option<f64>,
    /// Pen rotation angle αr from Eq. 1 at the assumed αe, if azimuth is
    /// tracked, radians.
    pub alpha_r: Option<f64>,
    /// Feasible displacement bounds `(min, max)`, metres.
    pub bounds: (f64, f64),
}

/// The PolarDraw tracker.
#[derive(Debug, Clone)]
pub struct PolarDraw {
    /// Configuration (public: experiments sweep parameters directly).
    pub config: PolarDrawConfig,
    /// Decode kernel for the batch decode (private: set through
    /// [`PolarDraw::with_kernel`], defaults to the exact f64 path).
    kernel: crate::hmm::KernelOptions,
}

/// How degraded the input stream was and what the pipeline did about
/// it — carried on every [`TrackOutput`] so callers can tell a clean
/// track from one that survived faults, instead of silently getting
/// garbage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DegradationReport {
    /// Reports in the raw input stream.
    pub input_reports: usize,
    /// The stream arrived out of timestamp order and was sorted.
    pub input_unsorted: bool,
    /// Exact duplicate reports removed.
    pub duplicates_removed: usize,
    /// Total pre-processing windows.
    pub windows: usize,
    /// Windows with no reads at all (total outage).
    pub empty_windows: usize,
    /// Windows where only one antenna read (port outage signature).
    pub single_antenna_windows: usize,
    /// Phases struck by the spurious-rejection screen.
    pub spurious_rejected: usize,
    /// Interior empty-window runs coalesced into one bridged step.
    pub gaps_bridged: usize,
    /// Longest time span handed to the decoder as a single bridged
    /// step, seconds (0 when nothing was bridged).
    pub largest_gap_bridged_s: f64,
    /// Decoder steps whose observation was inconsistent and was carried
    /// through (from [`DecodeStats`]).
    pub carried_steps: usize,
}

impl DegradationReport {
    /// True when the stream needed *any* tolerance beyond the clean
    /// path: sorting, dedup, outage bridging, or missing-antenna spans.
    pub fn is_degraded(&self) -> bool {
        self.input_unsorted
            || self.duplicates_removed > 0
            || self.empty_windows > 0
            || self.single_antenna_windows > 0
            || self.gaps_bridged > 0
    }

    pub(crate) fn from_preprocess(stats: &PreprocessStats) -> DegradationReport {
        DegradationReport {
            input_reports: stats.input_reports,
            input_unsorted: stats.input_unsorted,
            duplicates_removed: stats.duplicates_removed,
            windows: stats.windows,
            empty_windows: stats.empty_windows,
            single_antenna_windows: stats.single_antenna_windows,
            spurious_rejected: stats.spurious_rejected,
            ..DegradationReport::default()
        }
    }
}

/// Everything a tracking run produces beyond the trail itself.
#[derive(Debug, Clone)]
pub struct TrackOutput {
    /// The recovered trail.
    pub trail: Trail,
    /// Per-step diagnostics.
    pub steps: Vec<StepEstimate>,
    /// Pre-processed windows (for the feasibility figures).
    pub windows: Vec<Windowed>,
    /// Estimated initial azimuth error α̃a, radians.
    pub initial_azimuth_error: f64,
    /// Decoder work counters for this run (expansions, pruning, frontier
    /// sizes) — what the decode *did*, complementing wall-time benches.
    pub decode_stats: DecodeStats,
    /// Stream-quality diagnostics: what the pipeline had to tolerate.
    pub degradation: DegradationReport,
}

impl PolarDraw {
    /// Build a tracker (exact f64 decode kernel — the batch-equivalence
    /// default every golden trace pins).
    pub fn new(config: PolarDrawConfig) -> PolarDraw {
        PolarDraw { config, kernel: crate::hmm::KernelOptions::exact() }
    }

    /// Same tracker decoding through `kernel` — e.g.
    /// [`KernelOptions::fast`](crate::hmm::KernelOptions::fast) for the
    /// f32-table + adaptive-beam path. Non-exact kernels trade the
    /// bit-exact batch contract for speed under the tolerance oracle
    /// (`tests/kernel_equivalence.rs`); run-to-run determinism is kept
    /// by every kernel.
    pub fn with_kernel(mut self, kernel: crate::hmm::KernelOptions) -> PolarDraw {
        self.kernel = kernel;
        self
    }

    /// The decode kernel this tracker batches with.
    pub fn kernel(&self) -> crate::hmm::KernelOptions {
        self.kernel
    }

    /// Run the full pipeline, keeping diagnostics.
    ///
    /// Batch mode is a thin wrapper over the streaming engine: an
    /// [`OnlineTracker`](crate::online::OnlineTracker) with infinite
    /// lag and infinite hold, fed the whole stream, then finalized.
    /// `crate::online`'s module docs carry the stage-by-stage
    /// equivalence argument; the decoder-level contract is pinned by
    /// the golden-trace and equivalence test suites.
    pub fn track_with_diagnostics(&self, reports: &[TagReport]) -> TrackOutput {
        let options = crate::online::OnlineOptions::batch().with_kernel(self.kernel);
        let mut online = crate::online::OnlineTracker::new(self.config, options);
        online.extend(reports);
        online.finalize()
    }
}

impl TrajectoryTracker for PolarDraw {
    fn name(&self) -> &str {
        if self.config.use_polarization {
            "PolarDraw (2-antenna)"
        } else {
            "PolarDraw w/o polarization"
        }
    }

    fn antenna_count(&self) -> usize {
        2
    }

    fn track(&self, reports: &[TagReport]) -> Trail {
        self.track_with_diagnostics(reports).trail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(t: f64, antenna: usize, rssi: f64, phase: f64) -> TagReport {
        TagReport {
            t,
            antenna,
            rssi_dbm: rssi,
            phase_rad: rf_core::wrap_tau(phase),
            channel: 24,
            epc: 1,
        }
    }

    /// A synthetic stream: pen moving straight down (away from both
    /// antennas) at constant speed — both phases ramp up, RSS flat.
    fn downward_stream(n_windows: usize) -> Vec<TagReport> {
        let mut out = Vec::new();
        let lambda = 0.3276;
        let speed = 0.06; // m/s
        for i in 0..n_windows * 5 {
            let t = i as f64 * 0.01;
            let ant = i % 2;
            let phase = 4.0 * std::f64::consts::PI * speed * t / lambda + 1.0;
            out.push(report(t, ant, -40.0, phase));
        }
        out
    }

    #[test]
    fn downward_motion_is_classified_translational_down() {
        let pd = PolarDraw::new(PolarDrawConfig::default());
        let out = pd.track_with_diagnostics(&downward_stream(30));
        let downs = out
            .steps
            .iter()
            .filter(|s| matches!(s.kind, StepKind::Translational(Cardinal::Down)))
            .count();
        assert!(
            downs > out.steps.len() / 2,
            "majority of steps must decode Down, got {downs}/{}",
            out.steps.len()
        );
        // And the trail must actually head down (+Y).
        let first = out.trail.points.first().unwrap();
        let last = out.trail.points.last().unwrap();
        // The noise margin shrinks the per-window distance target, so
        // with a constant hyperbola field the synthetic stream descends
        // slowly but steadily.
        assert!(last.y > first.y + 0.008, "trail must descend: {first:?} → {last:?}");
    }

    #[test]
    fn trail_speed_respects_vmax() {
        let pd = PolarDraw::new(PolarDrawConfig::default());
        let out = pd.track_with_diagnostics(&downward_stream(30));
        for w in out.trail.points.windows(2) {
            let d = w[0].distance(w[1]);
            // One window is 50 ms; vmax 0.2 m/s ⇒ ≤ 1 cm (+ cell slack).
            assert!(d <= 0.012 + 0.015, "step {d} exceeds vmax bound");
        }
    }

    #[test]
    fn rss_swing_triggers_rotational_classification() {
        // Alternate windows with a strong RSS swing on both antennas:
        // sector-2-style opposite trends.
        let mut out = Vec::new();
        for i in 0..120 {
            let t = i as f64 * 0.01;
            let ant = i % 2;
            let swing = (t * 10.0).sin() * 5.0;
            let rssi = if ant == 0 { -40.0 - swing } else { -40.0 + swing };
            out.push(report(t, ant, rssi, 1.0));
        }
        let pd = PolarDraw::new(PolarDrawConfig::default());
        let diag = pd.track_with_diagnostics(&out);
        assert!(
            diag.steps.iter().any(|s| matches!(s.kind, StepKind::Rotational { .. })),
            "strong RSS trends must classify as rotational"
        );
    }

    #[test]
    fn no_polarization_mode_never_rotational() {
        let mut cfg = PolarDrawConfig::default();
        cfg.use_polarization = false;
        let mut stream = downward_stream(20);
        // Inject big RSS swings that WOULD trigger rotation.
        for (i, r) in stream.iter_mut().enumerate() {
            r.rssi_dbm += ((i / 10) % 2) as f64 * 6.0;
        }
        let pd = PolarDraw::new(cfg);
        let diag = pd.track_with_diagnostics(&stream);
        assert!(diag
            .steps
            .iter()
            .all(|s| !matches!(s.kind, StepKind::Rotational { .. })));
    }

    #[test]
    fn empty_reports_give_empty_trail() {
        let pd = PolarDraw::new(PolarDrawConfig::default());
        let trail = pd.track(&[]);
        assert!(trail.is_empty());
    }

    #[test]
    fn still_tag_stays_near_start() {
        let mut out = Vec::new();
        for i in 0..100 {
            let t = i as f64 * 0.01;
            out.push(report(t, i % 2, -40.0, 1.0));
        }
        let pd = PolarDraw::new(PolarDrawConfig::default());
        let trail = pd.track(&out);
        let start = PolarDrawConfig::default().start_hint;
        for p in &trail.points {
            assert!(p.distance(start) < 0.06, "still tag wandered to {p:?}");
        }
    }

    #[test]
    fn clean_stream_reports_no_degradation() {
        let pd = PolarDraw::new(PolarDrawConfig::default());
        let out = pd.track_with_diagnostics(&downward_stream(30));
        let d = &out.degradation;
        assert!(!d.is_degraded(), "clean synthetic stream flagged degraded: {d:?}");
        assert_eq!(d.gaps_bridged, 0);
        assert_eq!(d.largest_gap_bridged_s, 0.0);
        assert_eq!(d.duplicates_removed, 0);
        assert!(!d.input_unsorted);
    }

    #[test]
    fn total_outage_is_bridged_as_one_widened_step() {
        // 0.5 s of clean reads, a 0.5 s total outage, 0.5 s more reads.
        let mut stream = downward_stream(10); // 0.0 .. 0.5 s
        for r in downward_stream(30) {
            if r.t >= 1.0 {
                stream.push(r); // 1.0 .. 1.5 s
            }
        }
        let cfg = PolarDrawConfig::default();
        let pd = PolarDraw::new(cfg);
        let out = pd.track_with_diagnostics(&stream);
        let d = &out.degradation;
        assert!(d.is_degraded());
        assert_eq!(d.gaps_bridged, 1, "one interior outage: {d:?}");
        assert!(
            (0.4..=0.7).contains(&d.largest_gap_bridged_s),
            "bridged span should cover the ~0.5 s outage, got {}",
            d.largest_gap_bridged_s
        );
        // The bridged gap removes its empty windows from the step chain:
        // every empty window here is interior, so all are coalesced away.
        assert!(d.empty_windows > 0);
        assert_eq!(out.steps.len(), out.windows.len() - 1 - d.empty_windows);
        // The track stays finite and never teleports faster than vmax
        // allows across the bridged step.
        for (w, pts) in out.steps.windows(2).zip(out.trail.points.windows(2)) {
            let dt = w[1].t - w[0].t;
            let dist = pts[0].distance(pts[1]);
            assert!(dist.is_finite());
            assert!(
                dist <= cfg.distance.vmax_mps * dt + 3.0 * cfg.hmm.cell_m,
                "teleport across bridged step: {dist} m in {dt} s"
            );
        }
    }

    #[test]
    fn gap_bridging_can_be_disabled() {
        let mut stream = downward_stream(10);
        for r in downward_stream(30) {
            if r.t >= 1.0 {
                stream.push(r);
            }
        }
        let mut cfg = PolarDrawConfig::default();
        cfg.gap_bridge_min_windows = usize::MAX;
        let out = PolarDraw::new(cfg).track_with_diagnostics(&stream);
        assert_eq!(out.degradation.gaps_bridged, 0);
        assert_eq!(out.steps.len(), out.windows.len() - 1);
    }

    #[test]
    fn unsorted_duplicated_stream_is_tolerated_and_reported() {
        let mut stream = downward_stream(20);
        let dup = stream[7];
        stream.insert(8, dup);
        stream.swap(3, 12);
        let out = PolarDraw::new(PolarDrawConfig::default()).track_with_diagnostics(&stream);
        let d = &out.degradation;
        assert!(d.input_unsorted);
        assert_eq!(d.duplicates_removed, 1);
        assert!(d.is_degraded());
        assert!(out.trail.points.iter().all(|p| p.x.is_finite() && p.y.is_finite()));
    }

    #[test]
    fn tracker_reports_names_and_ports() {
        let pd = PolarDraw::new(PolarDrawConfig::default());
        assert_eq!(pd.antenna_count(), 2);
        assert!(pd.name().contains("PolarDraw"));
        let mut cfg = PolarDrawConfig::default();
        cfg.use_polarization = false;
        assert!(PolarDraw::new(cfg).name().contains("w/o"));
    }

    #[test]
    fn config_builders_propagate() {
        let cfg = PolarDrawConfig::default().with_wavelength(0.33).with_gamma(0.5);
        assert_eq!(cfg.translation.wavelength_m, 0.33);
        assert_eq!(cfg.distance.wavelength_m, 0.33);
        assert_eq!(cfg.hmm.wavelength_m, 0.33);
        assert_eq!(cfg.rotation.gamma_rad, 0.5);
    }
}
