//! Figure 21: recognition accuracy across users.
//!
//! Four writer profiles (User 2 deliberately "stiff" — minimal pen
//! rotation, the adversarial case for polarization sensing) × three
//! systems. The paper finds consistently high accuracy, with PolarDraw
//! degrading gracefully on the stiff writer.

use crate::exp::SWEEP_LETTERS;
use crate::report::Report;
use crate::runner::{letter_accuracy, run_letter_trials, RunOpts};
use crate::setup::{TrackerKind, TrialSetup};
use pen_sim::WriterProfile;

/// The systems compared.
pub const SYSTEMS: [TrackerKind; 3] =
    [TrackerKind::PolarDraw, TrackerKind::RfIdraw4, TrackerKind::Tagoram4];

/// Run the user panel.
pub fn run(opts: &RunOpts) -> Vec<Report> {
    let mut report = Report::new(
        "fig21",
        "Recognition accuracy across users",
        "consistent across users; User 2's stiff style degrades PolarDraw only slightly",
    )
    .headers(vec![
        "User",
        "PolarDraw 2-ant (%)",
        "RF-IDraw 4-ant (%)",
        "Tagoram 4-ant (%)",
    ]);
    let trials_per = opts.trials.div_ceil(2).max(1);
    for (ui, profile) in WriterProfile::panel().into_iter().enumerate() {
        let mut row = vec![format!("{} ({})", ui + 1, profile.name)];
        for kind in SYSTEMS {
            let conditions: Vec<(char, TrialSetup)> = SWEEP_LETTERS
                .iter()
                .map(|&ch| {
                    let mut s = TrialSetup::letter(ch).with_tracker(kind);
                    s.profile = profile;
                    (ch, s)
                })
                .collect();
            let trials = run_letter_trials(
                &conditions,
                trials_per,
                opts.seed.wrapping_add(500 + ui as u64),
                opts,
            );
            row.push(format!("{:.0}", 100.0 * letter_accuracy(&trials)));
        }
        report.push_row(row);
    }
    vec![report]
}

#[cfg(test)]
mod tests {
    use pen_sim::WriterProfile;

    #[test]
    fn panel_includes_the_stiff_user() {
        let panel = WriterProfile::panel();
        assert!(panel.iter().any(|p| p.name.contains("stiff")));
        assert_eq!(panel.len(), 4);
    }
}
