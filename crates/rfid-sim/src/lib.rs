//! # rfid-sim — EPC Gen2 UHF RFID reader/tag simulator
//!
//! Replaces the paper's ImpinJ Speedway R420 + Avery Dennison tag with a
//! protocol-level simulation. The tracking algorithms consume exactly
//! what LLRP delivers from real hardware — timestamped
//! `(antenna, RSSI, phase, channel)` tuples — so everything above this
//! crate is hardware-agnostic:
//!
//! * [`modulation`] — the Gen2 uplink encodings (FM0, Miller m = 2/4/8)
//!   with their link frequencies, bit durations and SNR→BER behaviour.
//!   The paper's §4 notes PolarDraw round-robins modulation schemes and
//!   picks the first whose phase variance is low enough; [`modselect`]
//!   reproduces that procedure.
//! * [`gen2`] — inventory-round timing: Query/QueryRep/ACK exchanges,
//!   the Q-algorithm slot counter, and the resulting read rate (~100 Hz
//!   aggregate, as the paper states).
//! * [`reader`] — the reader: multiplexes antenna ports, runs inventory
//!   rounds against the `rf-physics` channel, applies measurement noise
//!   and ImpinJ-style quantization (RSSI in 0.5 dB steps, phase in
//!   12-bit steps), and emits [`TagReport`]s.
//! * [`llrp`] — a compact LLRP-flavoured wire encoding of tag reports
//!   (RO_ACCESS_REPORT), so report streams can be serialized/replayed.
//! * [`tracking`] — the [`TrajectoryTracker`] trait implemented by
//!   `polardraw-core` and the `baselines` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen2;
pub mod llrp;
pub mod modselect;
pub mod modulation;
pub mod reader;
pub mod tracking;

pub use modulation::ModulationScheme;
pub use reader::{Reader, ReaderConfig};
pub use tracking::TrajectoryTracker;

use serde::{Deserialize, Serialize};

/// One successful tag interrogation, as delivered by LLRP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TagReport {
    /// Timestamp, seconds since session start.
    pub t: f64,
    /// Reader antenna port (0-based).
    pub antenna: usize,
    /// Received signal strength, dBm (quantized).
    pub rssi_dbm: f64,
    /// Backscatter phase, radians in `[0, 2π)` (quantized).
    pub phase_rad: f64,
    /// FCC channel index in use for this read.
    pub channel: usize,
    /// Tag EPC (truncated to 64 bits for compactness).
    pub epc: u64,
}

/// Split a report stream per antenna port, preserving order.
pub fn split_by_antenna(reports: &[TagReport], n_antennas: usize) -> Vec<Vec<TagReport>> {
    let mut out = vec![Vec::new(); n_antennas];
    for r in reports {
        if r.antenna < n_antennas {
            out[r.antenna].push(*r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(t: f64, antenna: usize) -> TagReport {
        TagReport { t, antenna, rssi_dbm: -40.0, phase_rad: 1.0, channel: 24, epc: 0xAB }
    }

    #[test]
    fn split_by_antenna_partitions_in_order() {
        let reports = vec![report(0.0, 0), report(0.01, 1), report(0.02, 0), report(0.03, 1)];
        let split = split_by_antenna(&reports, 2);
        assert_eq!(split[0].len(), 2);
        assert_eq!(split[1].len(), 2);
        assert!(split[0][0].t < split[0][1].t);
    }

    #[test]
    fn split_ignores_out_of_range_ports() {
        let reports = vec![report(0.0, 5)];
        let split = split_by_antenna(&reports, 2);
        assert!(split[0].is_empty() && split[1].is_empty());
    }
}
