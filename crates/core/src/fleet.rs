//! Sharded fleet front door: the layer above [`ServePool`].
//!
//! One [`ServePool`] is one rig's worker pool; a deployment serving
//! thousands of pens needs a front door that routes sessions across
//! many pools and *keeps serving under overload*. [`FleetRouter`]
//! provides three mechanisms (see DESIGN.md "Fleet serving & overload
//! control"):
//!
//! * **Shard routing with rig affinity.** Sessions are keyed by
//!   [`ShardKey`] — the exact rig fingerprint
//!   [`hmm::artifacts_for`](crate::hmm::artifacts_for) keys its
//!   process-wide cache on (board extent, grid cell, antennas,
//!   wavelength, as f64 bit patterns). Sessions sharing a key land on
//!   the same shard until it fills past a soft cap, so every shard
//!   resolves its rigs' `Arc<DecodeArtifacts>` once and cache hits are
//!   maximized.
//! * **Bounded ingest with backpressure, never drops.**
//!   [`offer`](FleetRouter::offer) admits reports up to a per-shard
//!   queue bound and returns how many it accepted; the rest stay with
//!   the producer (reader links already buffer — `resume_after` in
//!   `rfid_sim::session`). No report, and no session, is ever dropped
//!   by the fleet.
//! * **Adaptive degradation with hysteresis.** A declarative
//!   [`DegradePolicy`] ladder (shorter lag → tighter adaptive beam →
//!   f32 kernel) is applied per shard when ingest occupancy stays above
//!   a high watermark, and unwound when it stays below a low one. The
//!   controller keys on queue occupancy only — never wall-clock — so
//!   fleet runs are deterministic and testable.
//!
//! Live sessions migrate between shards with
//! [`migrate`](FleetRouter::migrate): release from the source pool
//! (tracker + un-drained queue), round-trip through the bitwise
//! `polardraw.online.checkpoint.v1` format, adopt into the target, and
//! carry the queued reports over in order. When no rung change happens
//! in flight, the migrated session's output is bit-identical to never
//! having moved — `tests/fleet.rs` proves this at every cut point and
//! at thread counts 1/2/8.
//!
//! ## Crash safety (see DESIGN.md "Durability & crash recovery")
//!
//! With a [`CheckpointStore`] attached
//! ([`attach_store`](FleetRouter::attach_store)), the router becomes
//! self-healing:
//!
//! * **Checkpoint policy.** At post-drain boundaries (queues empty),
//!   every live session on a shard is sealed into the store — every
//!   [`CheckpointPolicy::every_drains`]-th round, on migration, and on
//!   a degrade-rung change.
//! * **Escrow.** Every *admitted* report is also retained in an
//!   in-router escrow ledger spanning the store's retained
//!   generations, so recovery can replay exactly what a restored
//!   checkpoint has not yet seen. Report-loss-free by construction:
//!   a report is either still the producer's (deferred), in escrow,
//!   or covered by a durable checkpoint.
//! * **Kill + recover.** [`kill_shard`](FleetRouter::kill_shard)
//!   simulates a process crash (the pool and its in-memory controller
//!   state vanish); [`recover`](FleetRouter::recover) rebuilds each
//!   lost session from the newest good generation (walking back over
//!   corrupted ones) and re-queues its escrowed tail. The recovered
//!   session observes exactly the push sequence of an uncrashed run,
//!   so its output is bit-identical — `tests/chaos.rs` proves this at
//!   swept kill points under a deterministic chaos plan.
//! * **Quarantine.** A session whose `push` panics mid-drain
//!   (poisoned — see [`ServePool`]) or whose restore fails at every
//!   retained generation is isolated with its escrowed reports instead
//!   of taking the shard down, surfaced via [`FleetStats::quarantined`].

use crate::durability::{CheckpointStore, RestoreError};
use crate::hmm::{AdaptiveBeam, KernelPrecision};
use crate::online::{OnlineOptions, OnlineTracker};
use crate::serve::{DrainReport, PoolStats, ServePool, SessionId};
use crate::{PolarDrawConfig, TrackOutput};
use rfid_sim::TagReport;

/// Handle to one session behind the fleet front door (stable for the
/// router's lifetime, independent of which shard currently hosts it).
pub type FleetSessionId = usize;

/// The rig fingerprint used for shard affinity: exactly the fields
/// [`hmm::artifacts_for`](crate::hmm::artifacts_for) keys its
/// process-wide decode-artifact cache on, captured as f64 bit patterns
/// so keying is exact rather than approximate. Two sessions with equal
/// keys resolve to the same `Arc<DecodeArtifacts>` entry; a shard
/// hosting them pays for one emission table however many pens write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardKey {
    bits: [u64; 12],
}

impl ShardKey {
    /// The rig fingerprint of a session configuration.
    pub fn of(config: &PolarDrawConfig) -> ShardKey {
        let a = config.antennas;
        ShardKey {
            bits: [
                config.board_min.x.to_bits(),
                config.board_min.y.to_bits(),
                config.board_max.x.to_bits(),
                config.board_max.y.to_bits(),
                config.hmm.cell_m.to_bits(),
                config.hmm.wavelength_m.to_bits(),
                a[0].x.to_bits(),
                a[0].y.to_bits(),
                a[0].z.to_bits(),
                a[1].x.to_bits(),
                a[1].y.to_bits(),
                a[1].z.to_bits(),
            ],
        }
    }
}

/// One rung of the degradation ladder: the overrides that come into
/// effect when the controller steps down to (or past) this rung. Rungs
/// apply cumulatively — at level `k` every rung `0..k` is in effect —
/// and `None` fields leave the session's requested value untouched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradeRung {
    /// Cap the decoder decision lag at this many steps (commits come
    /// earlier; bounded-hindsight accuracy trade, no kernel change).
    pub max_lag: Option<usize>,
    /// Force the adaptive beam to (at least) this aggressive a setting.
    pub adaptive: Option<AdaptiveBeam>,
    /// Drop the kernel to f32 tables ([`KernelPrecision::F32Tolerance`]).
    pub f32_kernel: bool,
}

/// Declarative per-shard overload policy: watermark thresholds,
/// hysteresis counts, and the degradation ladder itself. The
/// controller runs once per [`FleetRouter::drain`] round on each
/// shard's ingest occupancy (queued reports ÷ `queue_cap`), entering
/// the round:
///
/// * occupancy ≥ `high_watermark` for `degrade_after` consecutive
///   rounds → step down one rung;
/// * occupancy ≤ `low_watermark` for `recover_after` consecutive
///   rounds → step back up one rung;
/// * anything in between resets both streaks (hysteresis — the fleet
///   neither flaps nor recovers into a still-loaded shard).
#[derive(Debug, Clone, PartialEq)]
pub struct DegradePolicy {
    /// Occupancy fraction at or above which a round counts as
    /// pressured.
    pub high_watermark: f64,
    /// Occupancy fraction at or below which a round counts as calm.
    pub low_watermark: f64,
    /// Consecutive pressured rounds before stepping down one rung.
    pub degrade_after: usize,
    /// Consecutive calm rounds before stepping back up one rung.
    pub recover_after: usize,
    /// The ladder, mildest first.
    pub ladder: Vec<DegradeRung>,
}

impl Default for DegradePolicy {
    fn default() -> DegradePolicy {
        DegradePolicy {
            high_watermark: 0.75,
            low_watermark: 0.25,
            degrade_after: 2,
            recover_after: 4,
            ladder: vec![
                // Rung 1: shorter hindsight. Pure latency/accuracy
                // trade, no kernel change — the mildest knob.
                DegradeRung { max_lag: Some(16), adaptive: None, f32_kernel: false },
                // Rung 2: tight adaptive beam — the frontier shrinks
                // wherever the survivor mass allows.
                DegradeRung {
                    max_lag: None,
                    adaptive: Some(AdaptiveBeam { margin: 4.0, min_keep: 64 }),
                    f32_kernel: false,
                },
                // Rung 3: f32 tables — the full fast kernel.
                DegradeRung { max_lag: None, adaptive: None, f32_kernel: true },
            ],
        }
    }
}

impl DegradePolicy {
    /// The effective streaming options at degradation `level` for a
    /// session that requested `requested` (level 0 = requested
    /// verbatim; levels clamp at the ladder length).
    pub fn options_at(&self, requested: OnlineOptions, level: usize) -> OnlineOptions {
        let mut out = requested;
        for rung in self.ladder.iter().take(level) {
            if let Some(cap) = rung.max_lag {
                out.lag = out.lag.min(cap.max(1));
            }
            if let Some(ab) = rung.adaptive {
                out.kernel.adaptive = Some(ab);
            }
            if rung.f32_kernel {
                out.kernel.precision = KernelPrecision::F32Tolerance;
            }
        }
        out
    }

    /// Number of rungs (the maximum degradation level).
    pub fn max_level(&self) -> usize {
        self.ladder.len()
    }
}

/// When the router seals live sessions into an attached
/// [`CheckpointStore`]. Checkpoints are only ever taken at post-drain
/// boundaries (every queue empty), so a sealed generation plus the
/// escrowed reports admitted after it reconstructs the exact push
/// sequence of an uncrashed run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointPolicy {
    /// Checkpoint every K-th drain round (0 disables the timer).
    pub every_drains: usize,
    /// Checkpoint a session as part of migrating it.
    pub on_migrate: bool,
    /// Checkpoint a shard's sessions when its degrade rung changes.
    pub on_rung_change: bool,
}

impl Default for CheckpointPolicy {
    fn default() -> CheckpointPolicy {
        CheckpointPolicy { every_drains: 8, on_migrate: true, on_rung_change: true }
    }
}

/// Front-door configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of [`ServePool`] shards.
    pub shards: usize,
    /// Worker threads per shard drain (thread count never changes any
    /// session's output — the `serve` bitwise contract).
    pub threads_per_shard: usize,
    /// Per-shard ingest bound: the most queued-but-undrained reports a
    /// shard accepts, summed over its sessions. [`FleetRouter::offer`]
    /// defers (returns short) past it.
    pub queue_cap: usize,
    /// Soft cap on live sessions per shard for affinity placement: a
    /// session whose rig already lives on a shard joins it only below
    /// this count, otherwise a new colony starts on the least-loaded
    /// shard (one giant rig must not pin the whole fleet to one shard).
    pub soft_session_cap: usize,
    /// Overload policy, applied independently per shard.
    pub policy: DegradePolicy,
    /// Durability checkpoint policy (inert until a store is attached
    /// via [`FleetRouter::attach_store`]).
    pub checkpoint: CheckpointPolicy,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            shards: 4,
            threads_per_shard: 1,
            queue_cap: 4096,
            soft_session_cap: 256,
            policy: DegradePolicy::default(),
            checkpoint: CheckpointPolicy::default(),
        }
    }
}

/// Where one fleet session currently lives and what it asked for.
#[derive(Debug, Clone, Copy)]
struct Route {
    shard: usize,
    local: SessionId,
    key: ShardKey,
    requested: OnlineOptions,
    /// Degradation level currently applied to the session's tracker.
    applied_level: usize,
    live: bool,
    /// Its hosting shard crashed and it has not been recovered yet
    /// (offers are deferred wholesale until then).
    crashed: bool,
    /// Isolated: its push panicked, or its restore failed at every
    /// retained generation. Escrowed reports are kept for inspection.
    quarantined: bool,
    offered: usize,
    admitted: usize,
}

/// Per-session escrow ledger: every admitted report since the oldest
/// checkpoint generation the store still retains, in admit order, plus
/// the marks that say how much of it each retained generation covers.
#[derive(Debug, Clone, Default)]
struct Escrow {
    reports: Vec<TagReport>,
    /// `(generation, covered)`: restoring `generation` must replay
    /// `reports[covered..]`.
    marks: Vec<(u64, usize)>,
}

/// One shard: a pool plus its controller state.
#[derive(Debug)]
struct Shard {
    pool: ServePool,
    /// Fleet session ids currently hosted here (live only).
    sessions: Vec<FleetSessionId>,
    /// Reports admitted since the last drain (the ingest occupancy
    /// numerator; a drain consumes every queue, so this resets to 0).
    pending: usize,
    peak_pending: usize,
    level: usize,
    pressured_rounds: usize,
    calm_rounds: usize,
    degrade_steps: usize,
    recover_steps: usize,
}

/// What one [`FleetRouter::drain`] round did, summed over shards.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FleetDrainReport {
    /// Sessions woken across all shards.
    pub woken: usize,
    /// Reports consumed.
    pub reports: usize,
    /// Trail points committed.
    pub newly_committed: usize,
    /// Highest shard degradation level after this round.
    pub max_level: usize,
    /// Shards that stepped down a rung this round.
    pub degraded: usize,
    /// Shards that stepped back up a rung this round.
    pub recovered: usize,
    /// Sessions quarantined this round (their `push` panicked).
    pub quarantined: usize,
    /// Durability checkpoints sealed this round.
    pub checkpoints: usize,
}

/// What one [`FleetRouter::recover`] call rebuilt.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoverReport {
    /// Sessions restored from a committed checkpoint generation.
    pub restored: usize,
    /// Sessions rebuilt from scratch (never checkpointed, or no store
    /// attached) with a full escrow replay.
    pub rebuilt: usize,
    /// Corrupted generations skipped during restore walk-backs.
    pub fallbacks: usize,
    /// Escrowed reports re-queued for replay.
    pub requeued_reports: usize,
    /// Sessions whose every retained generation failed to open —
    /// quarantined instead of restored.
    pub quarantined: usize,
}

/// Router-lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FleetStats {
    /// Sessions ever added.
    pub sessions: usize,
    /// Sessions still live (not finished). Migration never changes
    /// this — the fleet sheds fidelity, not sessions.
    pub live: usize,
    /// Reports offered through [`FleetRouter::offer`].
    pub offered: usize,
    /// Reports admitted (the difference was *deferred*, never dropped).
    pub admitted: usize,
    /// Live migrations performed.
    pub migrations: usize,
    /// Rung step-downs, summed over shards.
    pub degrade_steps: usize,
    /// Rung step-ups, summed over shards.
    pub recover_steps: usize,
    /// Highest degradation level any shard ever reached.
    pub peak_level: usize,
    /// Highest ingest occupancy (reports) any shard ever held.
    pub peak_pending: usize,
    /// Drain rounds run.
    pub drains: usize,
    /// Shard crashes simulated via [`FleetRouter::kill_shard`].
    pub shard_kills: usize,
    /// Sessions rebuilt by [`FleetRouter::recover`] (from a stored
    /// generation or, for never-checkpointed sessions, from scratch
    /// plus full escrow replay).
    pub recoveries: usize,
    /// Corrupted generations skipped during restore walk-backs — the
    /// "a checkpoint was bad but we kept serving" signal.
    pub restore_fallbacks: usize,
    /// Sessions isolated with their escrowed reports (poisoned push,
    /// or no retained generation would open).
    pub quarantined: usize,
    /// Durability checkpoints sealed over the router's lifetime.
    pub checkpoints: usize,
}

/// The sharded fleet front door. See the module docs.
///
/// ```
/// use polardraw_core::fleet::{FleetConfig, FleetRouter};
/// use polardraw_core::{OnlineOptions, PolarDrawConfig};
///
/// let mut fleet = FleetRouter::new(FleetConfig::default());
/// let pen = fleet.add_session(PolarDrawConfig::default(), OnlineOptions::default());
/// // … offer reports as they arrive (admission may be partial under
/// // load — re-offer what was deferred), then once per serving round:
/// let round = fleet.drain();
/// assert_eq!(round.woken, 0, "no reports yet");
/// let trails = fleet.finish();
/// assert_eq!(trails.len(), 1);
/// # let _ = pen;
/// ```
#[derive(Debug)]
pub struct FleetRouter {
    config: FleetConfig,
    shards: Vec<Shard>,
    routes: Vec<Route>,
    /// Parallel to `routes`: each session's configuration, kept so a
    /// crashed session can be rebuilt without a live tracker to ask.
    configs: Vec<PolarDrawConfig>,
    /// Parallel to `routes`: the escrow ledgers (empty when no store
    /// is attached, except for quarantined sessions' rescued queues).
    escrows: Vec<Escrow>,
    store: Option<CheckpointStore>,
    migrations: usize,
    peak_level: usize,
    drains: usize,
    shard_kills: usize,
    recoveries: usize,
    restore_fallbacks: usize,
    quarantined: usize,
    checkpoints: usize,
}

impl FleetRouter {
    /// Empty router with `config.shards` pools (clamped to ≥ 1).
    pub fn new(config: FleetConfig) -> FleetRouter {
        let n = config.shards.max(1);
        let shards = (0..n)
            .map(|_| Shard {
                pool: ServePool::new(config.threads_per_shard),
                sessions: Vec::new(),
                pending: 0,
                peak_pending: 0,
                level: 0,
                pressured_rounds: 0,
                calm_rounds: 0,
                degrade_steps: 0,
                recover_steps: 0,
            })
            .collect();
        FleetRouter {
            config,
            shards,
            routes: Vec::new(),
            configs: Vec::new(),
            escrows: Vec::new(),
            store: None,
            migrations: 0,
            peak_level: 0,
            drains: 0,
            shard_kills: 0,
            recoveries: 0,
            restore_fallbacks: 0,
            quarantined: 0,
            checkpoints: 0,
        }
    }

    /// Attach a durability store; from now on the checkpoint policy
    /// runs and every admitted report is escrowed until a checkpoint
    /// covers it. Attach before offering reports — escrow only covers
    /// what is admitted *after* the store is in place.
    pub fn attach_store(&mut self, store: CheckpointStore) {
        self.store = Some(store);
    }

    /// The attached durability store, if any.
    pub fn store(&self) -> Option<&CheckpointStore> {
        self.store.as_ref()
    }

    /// Mutable access to the attached durability store (the chaos
    /// harness corrupts generations through this).
    pub fn store_mut(&mut self) -> Option<&mut CheckpointStore> {
        self.store.as_mut()
    }

    /// The router's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Affinity placement: among shards already hosting this rig key
    /// and still under the soft session cap, the least loaded; else the
    /// least-loaded shard overall (first index wins ties, so placement
    /// is deterministic).
    fn place(&self, key: ShardKey) -> usize {
        let mut affinity: Option<usize> = None;
        for (si, shard) in self.shards.iter().enumerate() {
            if shard.sessions.len() >= self.config.soft_session_cap {
                continue;
            }
            if shard.sessions.iter().any(|&id| self.routes[id].key == key) {
                let better = affinity
                    .map(|b| shard.sessions.len() < self.shards[b].sessions.len())
                    .unwrap_or(true);
                if better {
                    affinity = Some(si);
                }
            }
        }
        affinity.unwrap_or_else(|| {
            (0..self.shards.len())
                .min_by_key(|&si| self.shards[si].sessions.len())
                .expect("router has ≥ 1 shard")
        })
    }

    /// Add a session, routing it by rig key; returns its fleet handle.
    /// If the hosting shard is already degraded, the session starts at
    /// the shard's current rung.
    pub fn add_session(
        &mut self,
        config: PolarDrawConfig,
        options: OnlineOptions,
    ) -> FleetSessionId {
        let key = ShardKey::of(&config);
        if !self.routes.iter().any(|r| r.key == key) {
            // First session on a never-seen rig fingerprint: build the
            // shared decode artifacts now, at admission, so the
            // emission-table cold start happens off the session's first
            // measurement-bearing drain. Same cache entry the decoder
            // resolves lazily (`hmm::artifacts_for`), so this is purely
            // a *when*, never a *what*.
            let grid = crate::hmm::Grid::covering(
                config.board_min,
                config.board_max,
                config.hmm.cell_m,
            );
            crate::hmm::artifacts_for(&grid, config.antennas, config.hmm.wavelength_m).prewarm();
        }
        let shard = self.place(key);
        let local = self.shards[shard].pool.add_session(config, options);
        let id = self.routes.len();
        self.routes.push(Route {
            shard,
            local,
            key,
            requested: options,
            applied_level: 0,
            live: true,
            crashed: false,
            quarantined: false,
            offered: 0,
            admitted: 0,
        });
        self.configs.push(config);
        self.escrows.push(Escrow::default());
        self.shards[shard].sessions.push(id);
        self.apply_level(id);
        id
    }

    /// Offer reports for a session. Admits at most the hosting shard's
    /// remaining ingest budget and returns how many were accepted, from
    /// the front of `reports` in order; the caller keeps the rest and
    /// re-offers after the next drain. Nothing is ever dropped here —
    /// a deferred report is still the producer's.
    pub fn offer(&mut self, id: FleetSessionId, reports: &[TagReport]) -> usize {
        let route = self.routes[id];
        if route.quarantined {
            // A quarantined session admits nothing; the producer keeps
            // every report (its escrow stays frozen for inspection).
            self.routes[id].offered += reports.len();
            return 0;
        }
        assert!(route.live, "session {id} already finished");
        if route.crashed {
            // Its shard is down: defer wholesale until `recover` runs.
            self.routes[id].offered += reports.len();
            return 0;
        }
        let shard = &mut self.shards[route.shard];
        let budget = self.config.queue_cap.saturating_sub(shard.pending);
        let take = reports.len().min(budget);
        self.routes[id].offered += reports.len();
        if take > 0 {
            shard.pool.enqueue_batch(route.local, &reports[..take]);
            shard.pending += take;
            shard.peak_pending = shard.peak_pending.max(shard.pending);
            self.routes[id].admitted += take;
            if self.store.is_some() {
                self.escrows[id].reports.extend_from_slice(&reports[..take]);
            }
        }
        take
    }

    /// Remaining ingest budget of the shard hosting `id` — how many
    /// reports the next [`offer`](Self::offer) for it would accept.
    pub fn budget_for(&self, id: FleetSessionId) -> usize {
        let shard = &self.shards[self.routes[id].shard];
        self.config.queue_cap.saturating_sub(shard.pending)
    }

    /// One serving round over every shard: run the load controller on
    /// the occupancy entering the round (the backlog this drain is
    /// about to face), apply any rung change to the shard's live
    /// sessions, then drain the shard's pool.
    pub fn drain(&mut self) -> FleetDrainReport {
        self.drains += 1;
        let mut report = FleetDrainReport::default();
        for si in 0..self.shards.len() {
            let changed = self.run_controller(si, &mut report);
            if changed {
                for k in 0..self.shards[si].sessions.len() {
                    let id = self.shards[si].sessions[k];
                    self.apply_level(id);
                }
            }
            let shard = &mut self.shards[si];
            let round: DrainReport = shard.pool.drain();
            shard.pending = 0;
            report.woken += round.woken;
            report.reports += round.reports;
            report.newly_committed += round.newly_committed;
            report.max_level = report.max_level.max(shard.level);
            // Isolate any session whose push panicked mid-drain before
            // a checkpoint could seal its (now suspect) state.
            let hosted: Vec<FleetSessionId> = self.shards[si].sessions.clone();
            for id in hosted {
                let local = self.routes[id].local;
                if self.shards[si].pool.poisoned(local) {
                    self.quarantine_session(id);
                    report.quarantined += 1;
                }
            }
            // Durability: this is a post-drain boundary (every queue
            // empty), the only place the policy seals checkpoints.
            let due = self.store.is_some()
                && ((self.config.checkpoint.every_drains > 0
                    && self.drains % self.config.checkpoint.every_drains == 0)
                    || (changed && self.config.checkpoint.on_rung_change));
            if due {
                let hosted: Vec<FleetSessionId> = self.shards[si].sessions.clone();
                for id in hosted {
                    self.checkpoint_session(id);
                    report.checkpoints += 1;
                }
            }
        }
        self.peak_level = self.peak_level.max(report.max_level);
        report
    }

    /// Seal one live session into the attached store and advance its
    /// escrow marks: the new generation covers everything admitted
    /// except what is still queued un-drained, and reports older than
    /// the store's oldest retained generation are released.
    fn checkpoint_session(&mut self, id: FleetSessionId) {
        let Some(store) = self.store.as_mut() else {
            return;
        };
        let route = self.routes[id];
        let generation =
            store.save(id as u64, self.shards[route.shard].pool.tracker(route.local));
        let oldest = store.oldest(id as u64).unwrap_or(generation);
        let queued = self.shards[route.shard].pool.pending(route.local);
        let escrow = &mut self.escrows[id];
        let covered = escrow.reports.len().saturating_sub(queued);
        escrow.marks.push((generation, covered));
        escrow.marks.retain(|&(g, _)| g >= oldest);
        let base = escrow.marks.iter().map(|&(_, c)| c).min().unwrap_or(0);
        escrow.reports.drain(..base);
        for m in &mut escrow.marks {
            m.1 -= base;
        }
        self.checkpoints += 1;
    }

    /// Isolate a poisoned session: pull its intact queue out of the
    /// pool, drop it from its shard, and freeze its escrow for
    /// inspection. The shard keeps serving everyone else.
    fn quarantine_session(&mut self, id: FleetSessionId) {
        let route = self.routes[id];
        let rescued = self.shards[route.shard].pool.discard(route.local);
        self.shards[route.shard].sessions.retain(|&s| s != id);
        if self.store.is_none() {
            // No escrow ledger was running; keep the rescued queue so
            // inspection still sees what the session never consumed.
            self.escrows[id].reports = rescued;
        }
        self.routes[id].live = false;
        self.routes[id].quarantined = true;
        self.quarantined += 1;
    }

    /// Simulate a process crash of one shard: its pool (trackers,
    /// queues) and in-memory controller state vanish; only the
    /// router's durable state (store + escrow) survives. Every hosted
    /// session is marked crashed — offers for it defer wholesale until
    /// [`recover`](Self::recover). Returns how many sessions were
    /// lost. Cumulative counters (degrade/recover steps, peaks)
    /// survive: they are the *router's* memory, not the shard's.
    pub fn kill_shard(&mut self, si: usize) -> usize {
        assert!(si < self.shards.len(), "no shard {si}");
        let shard = &mut self.shards[si];
        shard.pool = ServePool::new(self.config.threads_per_shard);
        shard.pending = 0;
        shard.level = 0;
        shard.pressured_rounds = 0;
        shard.calm_rounds = 0;
        let lost = std::mem::take(&mut shard.sessions);
        for &id in &lost {
            self.routes[id].crashed = true;
        }
        self.shard_kills += 1;
        lost.len()
    }

    /// Rebuild every crashed session of shard `si` from the attached
    /// store and re-queue its escrowed tail, so the recovered tracker
    /// observes exactly the push sequence of an uncrashed run:
    ///
    /// * newest generation that opens cleanly wins (walk-back over
    ///   corrupted ones is counted in [`FleetStats::restore_fallbacks`]);
    /// * a session with no committed generation (or no store at all)
    ///   is rebuilt from scratch and replays its whole escrow;
    /// * a session whose every retained generation fails to open is
    ///   quarantined with its escrow intact — never a panic, and never
    ///   the shard's problem.
    ///
    /// Idempotent: a second call finds no crashed sessions and is a
    /// no-op. Escrow replay bypasses the ingest budget — those reports
    /// were already admitted once.
    pub fn recover(&mut self, si: usize) -> RecoverReport {
        assert!(si < self.shards.len(), "no shard {si}");
        let mut out = RecoverReport::default();
        let crashed: Vec<FleetSessionId> = (0..self.routes.len())
            .filter(|&id| {
                let r = &self.routes[id];
                r.live && r.crashed && r.shard == si
            })
            .collect();
        for id in crashed {
            let config = self.configs[id];
            let requested = self.routes[id].requested;
            let attempt = self.store.as_ref().map(|s| s.recover(id as u64, config));
            let (tracker, replay_from) = match attempt {
                None | Some(Err(RestoreError::Missing)) => {
                    out.rebuilt += 1;
                    (OnlineTracker::new(config, requested), 0)
                }
                Some(Ok(rec)) => {
                    out.restored += 1;
                    out.fallbacks += rec.fallbacks;
                    self.restore_fallbacks += rec.fallbacks;
                    let from = self.escrows[id]
                        .marks
                        .iter()
                        .find(|&&(g, _)| g == rec.generation)
                        .map(|&(_, covered)| covered)
                        .unwrap_or(0);
                    (rec.tracker, from)
                }
                Some(Err(_)) => {
                    self.routes[id].live = false;
                    self.routes[id].crashed = false;
                    self.routes[id].quarantined = true;
                    self.quarantined += 1;
                    out.quarantined += 1;
                    continue;
                }
            };
            let local = self.shards[si].pool.adopt(tracker);
            let tail = &self.escrows[id].reports[replay_from..];
            if !tail.is_empty() {
                self.shards[si].pool.enqueue_batch(local, tail);
                self.shards[si].pending += tail.len();
                self.shards[si].peak_pending =
                    self.shards[si].peak_pending.max(self.shards[si].pending);
                out.requeued_reports += tail.len();
            }
            self.shards[si].sessions.push(id);
            self.routes[id].local = local;
            self.routes[id].crashed = false;
            self.recoveries += 1;
            // Resync to the (freshly reset) shard rung whatever
            // options the checkpoint carried; the sentinel defeats the
            // applied-level short-circuit.
            self.routes[id].applied_level = usize::MAX;
            self.apply_level(id);
        }
        out
    }

    /// Whether a session's shard crashed and it awaits
    /// [`recover`](Self::recover).
    pub fn crashed(&self, id: FleetSessionId) -> bool {
        self.routes[id].crashed
    }

    /// Whether a session has been quarantined (poisoned push, or no
    /// retained generation would restore).
    pub fn quarantined(&self, id: FleetSessionId) -> bool {
        self.routes[id].quarantined
    }

    /// A quarantined session's escrowed reports — what it admitted but
    /// never durably consumed, kept for inspection or re-driving.
    pub fn quarantined_reports(&self, id: FleetSessionId) -> &[TagReport] {
        assert!(self.routes[id].quarantined, "session {id} is not quarantined");
        &self.escrows[id].reports
    }

    /// The watermark/hysteresis controller for one shard. Returns
    /// whether the level changed.
    fn run_controller(&mut self, si: usize, report: &mut FleetDrainReport) -> bool {
        let policy = &self.config.policy;
        let cap = self.config.queue_cap.max(1);
        let shard = &mut self.shards[si];
        let occupancy = shard.pending as f64 / cap as f64;
        if occupancy >= policy.high_watermark {
            shard.calm_rounds = 0;
            shard.pressured_rounds += 1;
            if shard.pressured_rounds >= policy.degrade_after && shard.level < policy.ladder.len()
            {
                shard.level += 1;
                shard.pressured_rounds = 0;
                shard.degrade_steps += 1;
                report.degraded += 1;
                return true;
            }
        } else if occupancy <= policy.low_watermark {
            shard.pressured_rounds = 0;
            shard.calm_rounds += 1;
            if shard.calm_rounds >= policy.recover_after && shard.level > 0 {
                shard.level -= 1;
                shard.calm_rounds = 0;
                shard.recover_steps += 1;
                report.recovered += 1;
                return true;
            }
        } else {
            shard.pressured_rounds = 0;
            shard.calm_rounds = 0;
        }
        false
    }

    /// Sync one session's tracker to its hosting shard's current rung.
    fn apply_level(&mut self, id: FleetSessionId) {
        let (shard_idx, local, requested, applied) = {
            let r = &self.routes[id];
            (r.shard, r.local, r.requested, r.applied_level)
        };
        let level = self.shards[shard_idx].level;
        if applied == level {
            return;
        }
        let eff = self.config.policy.options_at(requested, level);
        let tracker = self.shards[shard_idx].pool.tracker_mut(local);
        tracker.set_kernel(eff.kernel);
        let _ = tracker.set_lag(eff.lag);
        self.routes[id].applied_level = level;
    }

    /// Live-migrate a session to `to_shard` through the bitwise
    /// `checkpoint.v1` round trip: release it from the source pool
    /// (tracker + un-drained queue), checkpoint, restore, adopt into
    /// the target, and carry the queued reports over in enqueue order.
    /// The migrated session observes exactly the push sequence it would
    /// have observed staying put, so when no rung change intervenes its
    /// output is bit-identical to never having moved (`tests/fleet.rs`
    /// proves this at every cut point). Carried reports bypass the
    /// target's ingest budget — migration must not lose what was
    /// already admitted. Afterwards the session runs the *target*
    /// shard's rung.
    ///
    /// Returns the checkpoint document's length in bytes (the migration
    /// payload). Migrating a session onto its own shard is a no-op
    /// returning 0.
    pub fn migrate(&mut self, id: FleetSessionId, to_shard: usize) -> usize {
        assert!(to_shard < self.shards.len(), "no shard {to_shard}");
        let route = self.routes[id];
        assert!(route.live, "session {id} already finished");
        if route.shard == to_shard {
            return 0;
        }
        let (tracker, queued) = self.shards[route.shard].pool.release(route.local);
        let config = *tracker.config();
        let text = tracker.checkpoint_string();
        // Restore BEFORE letting go of the original: if the round trip
        // ever failed, migration falls back to moving the live tracker
        // itself — loss-free either way, never a panic.
        let moved = match OnlineTracker::restore_from_str(config, &text) {
            Ok(restored) => restored,
            Err(_) => tracker,
        };
        let local = self.shards[to_shard].pool.adopt(moved);
        if !queued.is_empty() {
            self.shards[route.shard].pending -= queued.len();
            self.shards[to_shard].pool.enqueue_batch(local, &queued);
            self.shards[to_shard].pending += queued.len();
            self.shards[to_shard].peak_pending =
                self.shards[to_shard].peak_pending.max(self.shards[to_shard].pending);
        }
        self.shards[route.shard].sessions.retain(|&s| s != id);
        self.shards[to_shard].sessions.push(id);
        self.routes[id].shard = to_shard;
        self.routes[id].local = local;
        self.migrations += 1;
        // The target may run a different rung than the source did.
        self.apply_level(id);
        if self.store.is_some() && self.config.checkpoint.on_migrate {
            self.checkpoint_session(id);
        }
        text.len()
    }

    /// Which shard currently hosts a session.
    pub fn shard_of(&self, id: FleetSessionId) -> usize {
        self.routes[id].shard
    }

    /// A shard's current degradation level (0 = full fidelity).
    pub fn level(&self, shard: usize) -> usize {
        self.shards[shard].level
    }

    /// Reports queued on a shard, not yet drained.
    pub fn pending(&self, shard: usize) -> usize {
        self.shards[shard].pending
    }

    /// Live sessions hosted on a shard.
    pub fn sessions_on(&self, shard: usize) -> usize {
        self.shards[shard].sessions.len()
    }

    /// The streaming options a session's tracker is currently running
    /// (its request, degraded to the hosting shard's applied rung).
    pub fn effective_options(&self, id: FleetSessionId) -> OnlineOptions {
        let r = &self.routes[id];
        self.config.policy.options_at(r.requested, r.applied_level)
    }

    /// Read-only access to a live session's tracker (checkpointing,
    /// committed-trail peeking, artifact-sharing assertions).
    pub fn tracker(&self, id: FleetSessionId) -> &OnlineTracker {
        let r = &self.routes[id];
        self.shards[r.shard].pool.tracker(r.local)
    }

    /// (offered, admitted) report counts for one session; the
    /// difference was deferred back to the producer, never dropped.
    pub fn session_flow(&self, id: FleetSessionId) -> (usize, usize) {
        let r = &self.routes[id];
        (r.offered, r.admitted)
    }

    /// A shard's pool-lifetime counters.
    pub fn pool_stats(&self, shard: usize) -> PoolStats {
        self.shards[shard].pool.stats()
    }

    /// Router-lifetime counters.
    pub fn stats(&self) -> FleetStats {
        let mut s = FleetStats {
            sessions: self.routes.len(),
            live: self.routes.iter().filter(|r| r.live).count(),
            migrations: self.migrations,
            peak_level: self.peak_level,
            drains: self.drains,
            shard_kills: self.shard_kills,
            recoveries: self.recoveries,
            restore_fallbacks: self.restore_fallbacks,
            quarantined: self.quarantined,
            checkpoints: self.checkpoints,
            ..FleetStats::default()
        };
        for r in &self.routes {
            s.offered += r.offered;
            s.admitted += r.admitted;
        }
        for sh in &self.shards {
            s.degrade_steps += sh.degrade_steps;
            s.recover_steps += sh.recover_steps;
            s.peak_pending = s.peak_pending.max(sh.peak_pending);
        }
        s
    }

    /// Finish one session now: drain its remaining queue and finalize
    /// its trail. The handle stays allocated.
    pub fn finish_session(&mut self, id: FleetSessionId) -> TrackOutput {
        let route = self.routes[id];
        assert!(route.live, "session {id} already finished");
        assert!(!route.crashed, "session {id} crashed; recover its shard first");
        let shard = &mut self.shards[route.shard];
        shard.pending = shard.pending.saturating_sub(shard.pool.pending(route.local));
        shard.sessions.retain(|&s| s != id);
        self.routes[id].live = false;
        self.shards[route.shard].pool.finish_session(route.local)
    }

    /// Finalize every live session; trails in fleet-id order, paired
    /// with their ids (sessions finished earlier, quarantined, or
    /// still crashed-unrecovered are omitted).
    pub fn finish(mut self) -> Vec<(FleetSessionId, TrackOutput)> {
        let mut out = Vec::new();
        for id in 0..self.routes.len() {
            if self.routes[id].live && !self.routes[id].crashed {
                out.push((id, self.finish_session(id)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coarse_config() -> PolarDrawConfig {
        let mut cfg = PolarDrawConfig::default();
        cfg.hmm.cell_m *= 8.0;
        cfg
    }

    fn other_rig() -> PolarDrawConfig {
        let mut cfg = PolarDrawConfig::default();
        cfg.hmm.cell_m *= 4.0;
        cfg
    }

    fn stream(n: usize, t0: f64) -> Vec<TagReport> {
        (0..n)
            .map(|i| TagReport {
                t: t0 + i as f64 * 0.01,
                antenna: i % 2,
                rssi_dbm: -55.0,
                phase_rad: rf_core::wrap_tau(0.02 * i as f64),
                channel: 0,
                epc: 0xF1EE7,
            })
            .collect()
    }

    #[test]
    fn shard_key_is_the_rig_fingerprint() {
        assert_eq!(ShardKey::of(&coarse_config()), ShardKey::of(&coarse_config()));
        assert_ne!(ShardKey::of(&coarse_config()), ShardKey::of(&other_rig()));
        let mut moved = coarse_config();
        moved.antennas[1].x += 1e-12;
        assert_ne!(ShardKey::of(&coarse_config()), ShardKey::of(&moved), "keying is exact");
    }

    #[test]
    fn same_rig_sessions_share_a_shard_distinct_rigs_spread() {
        let mut fleet = FleetRouter::new(FleetConfig { shards: 3, ..FleetConfig::default() });
        let a0 = fleet.add_session(coarse_config(), OnlineOptions::default());
        let b0 = fleet.add_session(other_rig(), OnlineOptions::default());
        let a1 = fleet.add_session(coarse_config(), OnlineOptions::default());
        let b1 = fleet.add_session(other_rig(), OnlineOptions::default());
        assert_eq!(fleet.shard_of(a0), fleet.shard_of(a1), "rig affinity");
        assert_eq!(fleet.shard_of(b0), fleet.shard_of(b1), "rig affinity");
        assert_ne!(fleet.shard_of(a0), fleet.shard_of(b0), "distinct rigs spread");
    }

    #[test]
    fn soft_cap_spills_a_giant_rig_across_shards() {
        let mut fleet = FleetRouter::new(FleetConfig {
            shards: 4,
            soft_session_cap: 3,
            ..FleetConfig::default()
        });
        for _ in 0..12 {
            fleet.add_session(coarse_config(), OnlineOptions::default());
        }
        for si in 0..4 {
            assert_eq!(fleet.sessions_on(si), 3, "soft cap balances the colony");
        }
    }

    #[test]
    fn offer_defers_past_the_queue_cap_and_never_drops() {
        let mut fleet = FleetRouter::new(FleetConfig {
            shards: 1,
            queue_cap: 100,
            ..FleetConfig::default()
        });
        let id = fleet.add_session(coarse_config(), OnlineOptions::default());
        let reports = stream(250, 0.0);
        let took = fleet.offer(id, &reports);
        assert_eq!(took, 100, "admission stops at the cap");
        assert_eq!(fleet.pending(0), 100);
        assert_eq!(fleet.offer(id, &reports[took..]), 0, "shard is full until drained");
        fleet.drain();
        assert_eq!(fleet.pending(0), 0, "drain clears the backlog");
        let took2 = fleet.offer(id, &reports[took..]);
        assert_eq!(took2, 100);
        let (offered, admitted) = fleet.session_flow(id);
        assert_eq!(offered, 250 + 150 + 150, "every offer (including re-offers) counted");
        assert_eq!(admitted, 200, "deferred ≠ dropped: the rest is still the producer's");
    }

    #[test]
    fn controller_degrades_under_pressure_and_recovers_with_hysteresis() {
        let policy = DegradePolicy::default();
        let mut fleet = FleetRouter::new(FleetConfig {
            shards: 1,
            queue_cap: 100,
            policy: policy.clone(),
            ..FleetConfig::default()
        });
        let id = fleet.add_session(coarse_config(), OnlineOptions::default());
        let requested = fleet.effective_options(id);

        // Pressure: fill to the cap each round.
        let burst = stream(100, 0.0);
        let mut t = 0.0;
        let mut seen_levels = Vec::new();
        for _ in 0..10 {
            let burst: Vec<TagReport> = burst.iter().map(|r| {
                let mut r = *r;
                r.t += t;
                r
            }).collect();
            fleet.offer(id, &burst);
            fleet.drain();
            seen_levels.push(fleet.level(0));
            t += 2.0;
        }
        assert_eq!(fleet.level(0), policy.max_level(), "sustained overload walks the ladder");
        for w in seen_levels.windows(2) {
            assert!(w[1] >= w[0], "degradation is monotone under sustained pressure");
        }
        let degraded = fleet.effective_options(id);
        assert!(degraded.lag < requested.lag);
        assert_eq!(degraded.kernel.precision, KernelPrecision::F32Tolerance);
        assert!(degraded.kernel.adaptive.is_some());

        // Calm: empty rounds. Recovery needs `recover_after` calm
        // rounds per rung — count them.
        let mut rounds_to_recover = 0;
        while fleet.level(0) > 0 {
            fleet.drain();
            rounds_to_recover += 1;
            assert!(rounds_to_recover < 100, "recovery must terminate");
        }
        assert_eq!(
            rounds_to_recover,
            policy.recover_after * policy.max_level(),
            "hysteresis: one rung per {} calm rounds",
            policy.recover_after
        );
        assert_eq!(fleet.effective_options(id), requested, "full fidelity restored");
        let s = fleet.stats();
        assert_eq!(s.degrade_steps, policy.max_level());
        assert_eq!(s.recover_steps, policy.max_level());
        assert_eq!(s.peak_level, policy.max_level());
        assert_eq!(s.live, 1, "no session was dropped");
    }

    #[test]
    fn kill_and_recover_is_bit_identical_at_a_checkpoint_boundary() {
        let config = FleetConfig {
            shards: 1,
            queue_cap: 100_000,
            checkpoint: CheckpointPolicy { every_drains: 1, ..CheckpointPolicy::default() },
            ..FleetConfig::default()
        };
        let run = |kill: bool| -> (String, FleetStats) {
            let mut fleet = FleetRouter::new(config.clone());
            fleet.attach_store(CheckpointStore::in_memory(3));
            let id = fleet.add_session(coarse_config(), OnlineOptions::default());
            for round in 0..6 {
                fleet.offer(id, &stream(40, round as f64 * 0.4));
                fleet.drain();
                if kill && round == 3 {
                    assert_eq!(fleet.kill_shard(0), 1);
                    assert!(fleet.crashed(id));
                    assert_eq!(fleet.offer(id, &stream(5, 99.0)), 0, "crashed defers");
                    let rec = fleet.recover(0);
                    assert_eq!(rec.restored, 1);
                    assert_eq!(
                        rec.requeued_reports, 0,
                        "kill right after a checkpoint: escrow fully covered"
                    );
                    assert!(!fleet.crashed(id));
                    // Duplicate recovery is a no-op.
                    assert_eq!(fleet.recover(0), RecoverReport::default());
                }
            }
            let text = fleet.tracker(id).checkpoint_string();
            (text, fleet.stats())
        };
        let (calm, _) = run(false);
        let (crashed, stats) = run(true);
        assert_eq!(calm, crashed, "boundary-kill recovery is bitwise invisible");
        assert_eq!(stats.shard_kills, 1);
        assert_eq!(stats.recoveries, 1);
        assert_eq!(stats.restore_fallbacks, 0);
    }

    #[test]
    fn mid_window_kill_replays_the_escrow_tail() {
        let config = FleetConfig {
            shards: 1,
            queue_cap: 100_000,
            // Checkpoint every 2nd drain: a kill after an odd drain
            // lands one full round past the last sealed generation.
            checkpoint: CheckpointPolicy { every_drains: 2, ..CheckpointPolicy::default() },
            ..FleetConfig::default()
        };
        let run = |kill: bool| -> String {
            let mut fleet = FleetRouter::new(config.clone());
            fleet.attach_store(CheckpointStore::in_memory(3));
            let id = fleet.add_session(coarse_config(), OnlineOptions::default());
            for round in 0..6 {
                fleet.offer(id, &stream(40, round as f64 * 0.4));
                fleet.drain();
                if kill && round == 2 {
                    // drains == 3 (odd): the round-2 batch is past the
                    // last checkpoint and must come back via escrow.
                    fleet.kill_shard(0);
                    let rec = fleet.recover(0);
                    assert_eq!(rec.restored, 1);
                    assert_eq!(rec.requeued_reports, 40, "one un-sealed round replayed");
                }
            }
            fleet.tracker(id).checkpoint_string()
        };
        assert_eq!(run(false), run(true), "escrow replay reconstructs the push sequence");
    }

    #[test]
    fn corrupt_latest_generation_falls_back_and_still_matches() {
        let config = FleetConfig {
            shards: 1,
            queue_cap: 100_000,
            checkpoint: CheckpointPolicy { every_drains: 1, ..CheckpointPolicy::default() },
            ..FleetConfig::default()
        };
        let run = |corrupt: bool| -> String {
            let mut fleet = FleetRouter::new(config.clone());
            fleet.attach_store(CheckpointStore::in_memory(4));
            let id = fleet.add_session(coarse_config(), OnlineOptions::default());
            for round in 0..4 {
                fleet.offer(id, &stream(40, round as f64 * 0.4));
                fleet.drain();
            }
            if corrupt {
                let store = fleet.store_mut().unwrap();
                let newest = store.latest(id as u64).unwrap();
                let mut bytes = store.read(id as u64, newest).unwrap();
                bytes[60] ^= 0x04;
                store.overwrite(id as u64, newest, &bytes);
                fleet.kill_shard(0);
                let rec = fleet.recover(0);
                assert_eq!(rec.fallbacks, 1, "walked back over the rotten generation");
                assert_eq!(
                    rec.requeued_reports, 40,
                    "the round the older generation had not seen is replayed"
                );
                assert_eq!(fleet.stats().restore_fallbacks, 1, "failure surfaced");
            }
            fleet.offer(id, &stream(40, 1.6));
            fleet.drain();
            fleet.tracker(id).checkpoint_string()
        };
        assert_eq!(run(false), run(true), "fallback + escrow replay is still bit-identical");
    }

    #[test]
    fn poisoned_session_is_quarantined_and_the_fleet_keeps_serving() {
        let mut fleet = FleetRouter::new(FleetConfig {
            shards: 1,
            queue_cap: 100_000,
            ..FleetConfig::default()
        });
        let healthy = fleet.add_session(coarse_config(), OnlineOptions::default());
        let mut bad_cfg = coarse_config();
        bad_cfg.preprocess.window_s = 0.0; // first push panics
        let bad = fleet.add_session(bad_cfg, OnlineOptions::default());
        fleet.offer(healthy, &stream(40, 0.0));
        fleet.offer(bad, &stream(25, 0.0));
        let round = fleet.drain();
        assert_eq!(round.quarantined, 1);
        assert!(fleet.quarantined(bad));
        assert_eq!(fleet.quarantined_reports(bad).len(), 25, "escrowed, not lost");
        assert_eq!(fleet.offer(bad, &stream(5, 9.0)), 0, "quarantined admits nothing");
        // The healthy session is unaffected and the fleet still serves.
        fleet.offer(healthy, &stream(40, 0.4));
        fleet.drain();
        let stats = fleet.stats();
        assert_eq!(stats.quarantined, 1);
        assert_eq!(stats.live, 1);
        let trails = fleet.finish();
        assert_eq!(trails.len(), 1);
        assert_eq!(trails[0].0, healthy);
    }

    #[test]
    fn migration_moves_the_session_and_its_queue() {
        let mut fleet = FleetRouter::new(FleetConfig {
            shards: 2,
            queue_cap: 1000,
            ..FleetConfig::default()
        });
        let id = fleet.add_session(coarse_config(), OnlineOptions::default());
        let from = fleet.shard_of(id);
        let to = 1 - from;
        fleet.offer(id, &stream(50, 0.0));
        assert_eq!(fleet.pending(from), 50);
        let bytes = fleet.migrate(id, to);
        assert!(bytes > 0, "checkpoint payload measured");
        assert_eq!(fleet.shard_of(id), to);
        assert_eq!(fleet.pending(from), 0, "queue went with the session");
        assert_eq!(fleet.pending(to), 50);
        assert_eq!(fleet.sessions_on(from), 0);
        assert_eq!(fleet.sessions_on(to), 1);
        assert_eq!(fleet.migrate(id, to), 0, "same-shard migration is a no-op");
        let round = fleet.drain();
        assert_eq!(round.reports, 50, "carried reports are served on the target");
        assert_eq!(fleet.stats().migrations, 1);
    }
}
