//! Regulatory channel plan for the US UHF RFID band.
//!
//! FCC Part 15 readers hop pseudo-randomly across 50 channels of 500 kHz
//! between 902.75 and 927.25 MHz. Each hop shifts the carrier and
//! therefore the phase-vs-distance slope — a real complication for
//! phase-based trackers. The paper processes per-channel (fixed-channel
//! behaviour); we default to a fixed channel but expose the hopping
//! sequence so the ablation "what does hopping cost?" can be run.


/// Number of FCC channels.
pub const FCC_CHANNEL_COUNT: usize = 50;
/// First channel's centre frequency, Hz.
pub const FCC_FIRST_CENTER_HZ: f64 = 902.75e6;
/// Channel spacing, Hz.
pub const FCC_SPACING_HZ: f64 = 0.5e6;
/// FCC maximum dwell per channel within any 20 s window, seconds.
pub const FCC_MAX_DWELL_S: f64 = 0.4;

/// Carrier-frequency schedule for the reader.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelPlan {
    /// Stay on one channel index (0-based). The paper's effective mode.
    Fixed(usize),
    /// Hop through a permutation of all 50 channels, dwelling
    /// `dwell_s` on each (≤ 0.4 s per FCC).
    Hopping {
        /// Permutation of channel indices.
        sequence: Vec<usize>,
        /// Dwell time per channel, seconds.
        dwell_s: f64,
    },
}

impl ChannelPlan {
    /// The workspace default: fixed mid-band channel (~915 MHz).
    pub fn fixed_mid_band() -> ChannelPlan {
        ChannelPlan::Fixed(24)
    }

    /// A deterministic hopping plan derived from a seed (linear
    /// congruential shuffle — stable across releases).
    pub fn hopping_from_seed(seed: u64, dwell_s: f64) -> ChannelPlan {
        let mut seq: Vec<usize> = (0..FCC_CHANNEL_COUNT).collect();
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for i in (1..seq.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            seq.swap(i, j);
        }
        ChannelPlan::Hopping { sequence: seq, dwell_s: dwell_s.min(FCC_MAX_DWELL_S) }
    }

    /// Channel index active at time `t` seconds.
    pub fn channel_at(&self, t: f64) -> usize {
        match self {
            ChannelPlan::Fixed(idx) => *idx,
            ChannelPlan::Hopping { sequence, dwell_s } => {
                let slot = (t / dwell_s).floor() as usize % sequence.len();
                sequence[slot]
            }
        }
    }

    /// Carrier frequency in Hz at time `t`.
    pub fn frequency_at(&self, t: f64) -> f64 {
        channel_frequency(self.channel_at(t))
    }

    /// Wavelength in metres at time `t`.
    pub fn wavelength_at(&self, t: f64) -> f64 {
        rf_core::wavelength(self.frequency_at(t))
    }
}

/// Centre frequency of channel `idx` (clamped to the plan).
pub fn channel_frequency(idx: usize) -> f64 {
    let idx = idx.min(FCC_CHANNEL_COUNT - 1);
    FCC_FIRST_CENTER_HZ + idx as f64 * FCC_SPACING_HZ
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_edges() {
        assert_eq!(channel_frequency(0), 902.75e6);
        assert_eq!(channel_frequency(49), 927.25e6);
        // Out-of-range indices clamp instead of leaving the band.
        assert_eq!(channel_frequency(1000), 927.25e6);
    }

    #[test]
    fn fixed_plan_never_moves() {
        let p = ChannelPlan::fixed_mid_band();
        assert_eq!(p.channel_at(0.0), p.channel_at(123.4));
        let f = p.frequency_at(0.0);
        assert!((914.0e6..916.0e6).contains(&f), "mid-band ≈ 915 MHz, got {f}");
    }

    #[test]
    fn hopping_visits_all_channels() {
        let p = ChannelPlan::hopping_from_seed(7, 0.2);
        if let ChannelPlan::Hopping { sequence, .. } = &p {
            let mut seen = [false; FCC_CHANNEL_COUNT];
            for &c in sequence {
                seen[c] = true;
            }
            assert!(seen.iter().all(|&s| s), "a hop plan is a permutation");
        } else {
            panic!("expected hopping plan");
        }
    }

    #[test]
    fn hopping_changes_channel_between_dwells() {
        let p = ChannelPlan::hopping_from_seed(7, 0.2);
        let a = p.channel_at(0.0);
        let b = p.channel_at(0.25);
        assert_ne!(a, b, "dwell is 0.2 s; 0.25 s later we must have hopped");
        assert_eq!(p.channel_at(0.0), p.channel_at(0.19));
    }

    #[test]
    fn dwell_is_clamped_to_fcc_limit() {
        let p = ChannelPlan::hopping_from_seed(1, 5.0);
        if let ChannelPlan::Hopping { dwell_s, .. } = p {
            assert!(dwell_s <= FCC_MAX_DWELL_S);
        } else {
            panic!("expected hopping plan");
        }
    }

    #[test]
    fn hop_sequence_is_deterministic_per_seed() {
        assert_eq!(
            ChannelPlan::hopping_from_seed(3, 0.2),
            ChannelPlan::hopping_from_seed(3, 0.2)
        );
        assert_ne!(
            ChannelPlan::hopping_from_seed(3, 0.2),
            ChannelPlan::hopping_from_seed(4, 0.2)
        );
    }

    #[test]
    fn wavelength_tracks_channel() {
        let p = ChannelPlan::Fixed(0);
        assert!((p.wavelength_at(0.0) - rf_core::wavelength(902.75e6)).abs() < 1e-12);
    }
}
