//! Virtual blob storage for durable state.
//!
//! [`BlobStore`] is the narrow waist between anything that wants to
//! persist bytes (checkpoints, escrow ledgers) and where those bytes
//! actually live. The trait is object-safe on purpose: the durability
//! layer holds a `Box<dyn BlobStore>` so a router does not become
//! generic over its storage backend, and the chaos harness can wrap
//! any backend to inject corruption, torn writes, and lost commits
//! without the code under test knowing.
//!
//! Keys are flat strings; hierarchical layouts use `/`-separated
//! prefixes by convention (e.g. `ckpt/{session}/{generation}`) and
//! [`BlobStore::keys`] returns lexicographically sorted keys so a
//! fixed-width hex key scheme enumerates in logical order.
//!
//! [`MemBlobStore`] is the reference in-memory implementation; it is
//! what the fleet tests and the chaos soak run against.

use std::collections::BTreeMap;

/// An ordered key → bytes store. See the module docs for the contract.
///
/// Implementations must make `put` replace atomically from the
/// caller's point of view (`get` sees either the old or the new
/// bytes, never a mix); write-then-commit sequencing across *keys* is
/// the durability layer's job, not the store's.
pub trait BlobStore: std::fmt::Debug {
    /// Insert or replace the blob at `key`.
    fn put(&mut self, key: &str, bytes: &[u8]);
    /// Fetch a copy of the blob at `key`, if present.
    fn get(&self, key: &str) -> Option<Vec<u8>>;
    /// All keys, lexicographically sorted.
    fn keys(&self) -> Vec<String>;
    /// Remove the blob at `key`; returns whether it existed.
    fn remove(&mut self, key: &str) -> bool;
}

/// In-memory [`BlobStore`] over a `BTreeMap` (keys come back sorted
/// for free). Cloneable so tests can snapshot a store mid-scenario.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemBlobStore {
    blobs: BTreeMap<String, Vec<u8>>,
}

impl MemBlobStore {
    /// New empty store.
    pub fn new() -> MemBlobStore {
        MemBlobStore::default()
    }

    /// Number of blobs held.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// Whether the store holds no blobs.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    /// Mutable access to a blob's bytes in place — the corruption
    /// hook used by the chaos harness (a real backend would never
    /// offer this).
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Vec<u8>> {
        self.blobs.get_mut(key)
    }
}

impl BlobStore for MemBlobStore {
    fn put(&mut self, key: &str, bytes: &[u8]) {
        self.blobs.insert(key.to_string(), bytes.to_vec());
    }

    fn get(&self, key: &str) -> Option<Vec<u8>> {
        self.blobs.get(key).cloned()
    }

    fn keys(&self) -> Vec<String> {
        self.blobs.keys().cloned().collect()
    }

    fn remove(&mut self, key: &str) -> bool {
        self.blobs.remove(key).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_remove_round_trip() {
        let mut s = MemBlobStore::new();
        assert!(s.is_empty());
        s.put("a/1", b"one");
        s.put("a/2", b"two");
        assert_eq!(s.get("a/1").as_deref(), Some(&b"one"[..]));
        assert_eq!(s.get("missing"), None);
        s.put("a/1", b"uno");
        assert_eq!(s.get("a/1").as_deref(), Some(&b"uno"[..]));
        assert_eq!(s.len(), 2);
        assert!(s.remove("a/1"));
        assert!(!s.remove("a/1"));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn keys_are_sorted() {
        let mut s = MemBlobStore::new();
        for k in ["b", "a/2", "a/10", "a/1", "c"] {
            s.put(k, b"x");
        }
        let keys = s.keys();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        // Fixed-width keys enumerate in numeric order; "10" < "2"
        // lexicographically is exactly why the durability layer pads.
        assert_eq!(keys, vec!["a/1", "a/10", "a/2", "b", "c"]);
    }

    #[test]
    fn trait_object_usable() {
        let mut boxed: Box<dyn BlobStore> = Box::new(MemBlobStore::new());
        boxed.put("k", b"v");
        assert_eq!(boxed.get("k").as_deref(), Some(&b"v"[..]));
        assert_eq!(boxed.keys(), vec!["k"]);
    }
}
