//! Figure 16: impact of static and dynamic bystander multipath.
//!
//! A second person stands (static) or paces (dynamic) at 30/60/90 cm
//! from the whiteboard while the volunteer writes. The paper measures
//! graceful degradation: insensitive at 90 cm, ≥83 % even at 30 cm.

use crate::exp::SHORT_LETTERS;
use crate::report::Report;
use crate::runner::{letter_accuracy, run_letter_trials, RunOpts};
use crate::setup::TrialSetup;
use rf_core::Vec3;
use rf_physics::{Bystander, BystanderMotion};

/// Bystander standoff distances from the board, metres.
pub const STANDOFFS_M: [f64; 3] = [0.3, 0.6, 0.9];

fn bystander(standoff: f64, walking: bool) -> Bystander {
    Bystander {
        // Torso roughly level with the writing area, `standoff` out of
        // the board plane.
        position: Vec3::new(0.25, 0.6, standoff),
        motion: if walking {
            BystanderMotion::Walking { amplitude_m: 0.5, frequency_hz: 0.6 }
        } else {
            BystanderMotion::Static
        },
        scattering: 0.25,
        depolarization: 0.9,
    }
}

/// Run the interference sweep.
pub fn run(opts: &RunOpts) -> Vec<Report> {
    let mut report = Report::new(
        "fig16",
        "Bystander multipath: static vs dynamic, by standoff",
        "insensitive at 90 cm; ≥87 % static / ≥83 % dynamic at 30 cm",
    )
    .headers(vec!["Standoff (cm)", "Static multipath (%)", "Dynamic multipath (%)"]);
    let trials_per = opts.trials.div_ceil(2).max(1);
    for (si, &standoff) in STANDOFFS_M.iter().enumerate() {
        let mut accs = [0.0; 2];
        for (walking, slot) in [(false, 0), (true, 1)] {
            let conditions: Vec<(char, TrialSetup)> = SHORT_LETTERS
                .iter()
                .map(|&ch| {
                    let mut s = TrialSetup::letter(ch);
                    s.bystander = Some(bystander(standoff, walking));
                    (ch, s)
                })
                .collect();
            let trials = run_letter_trials(
                &conditions,
                trials_per,
                opts.seed.wrapping_add(300 + si as u64),
                opts,
            );
            accs[slot] = 100.0 * letter_accuracy(&trials);
        }
        report.push_row(vec![
            format!("{:.0}", standoff * 100.0),
            format!("{:.0}", accs[0]),
            format!("{:.0}", accs[1]),
        ]);
    }
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bystander_models_differ_by_motion() {
        let s = bystander(0.3, false);
        let d = bystander(0.3, true);
        assert_eq!(s.position_at(0.0), s.position_at(3.0));
        assert_ne!(d.position_at(0.4), d.position_at(0.0));
    }

    #[test]
    fn standoffs_match_the_paper() {
        assert_eq!(STANDOFFS_M, [0.3, 0.6, 0.9]);
    }
}
