//! Deterministic fault injection for [`TagReport`] streams.
//!
//! The reader model in [`crate::reader`] is a *healthy* reader: reports
//! arrive sorted, deduplicated, on schedule, from every configured
//! antenna port. Real LLRP deployments are not so kind — RF bursts
//! silence whole spans of reads, antenna cables fail, the network stack
//! duplicates and reorders RO_ACCESS_REPORTs, reader clocks jitter and
//! drift, and FCC channel hops step the measured phase. This module
//! injects exactly those degradations, deterministically, so the
//! tracking stack's graceful-degradation behaviour can be tested and
//! swept (see `experiments::exp::faults`).
//!
//! Design rules:
//!
//! * **Seed-driven.** A [`FaultInjector`] is a pure function of
//!   `(plan, seed, input stream)`. Same inputs, same faulty stream,
//!   bit for bit — the Determinism contract in DESIGN.md extends to
//!   faults.
//! * **Identity is a provable no-op.** [`FaultPlan::identity`] (also
//!   `FaultPlan::default`) makes [`FaultInjector::inject`] return an
//!   exact element-wise copy of its input without constructing a PRNG,
//!   so "faults configured off" and "faults absent" are the same code
//!   path. The golden-trace tests pin this.
//! * **Composable.** Each fault model is independently optional; a plan
//!   enables any subset. Stages draw from separately derived PRNG
//!   streams, so enabling one model never perturbs another's draws.
//!
//! Stage order (fixed, documented, relied on by tests): burst dropouts →
//! antenna-port outages → clock jitter/drift → per-channel phase offsets
//! → duplication → bounded reordering. Duplication runs after the clock
//! stage so duplicates are *exact* copies (as LLRP redelivery produces),
//! and reordering runs last because it permutes whatever survived.

use crate::TagReport;
use rf_core::rng::{derive_seed, rng_from_seed, Rng64};

/// Gilbert–Elliott two-state burst loss model.
///
/// The chain sits in a *good* or *bad* state and advances one step per
/// input report; each state drops reports with its own probability.
/// Short `p_exit` dwell gives the bursty, correlated losses that RF
/// interference produces (distinct from i.i.d. thinning, which the
/// reader's own `p_ok` already covers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// Per-report probability of transitioning good → bad.
    pub p_enter: f64,
    /// Per-report probability of transitioning bad → good.
    pub p_exit: f64,
    /// Drop probability while in the bad (burst) state.
    pub p_drop_bad: f64,
    /// Background drop probability in the good state.
    pub p_drop_good: f64,
}

/// A single-antenna-port failure window.
///
/// All reports from `antenna` whose timestamps fall inside
/// `[start_frac, end_frac]` of the stream's time span are dropped —
/// a loose cable or blown port, while the other port keeps reading.
/// Fractions (rather than absolute seconds) make one plan meaningful
/// across sessions of different lengths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PortOutage {
    /// The failed antenna port (0-based, matching [`TagReport::antenna`]).
    pub antenna: usize,
    /// Outage start, as a fraction of the stream time span in `[0, 1]`.
    pub start_frac: f64,
    /// Outage end, as a fraction of the stream time span in `[0, 1]`.
    pub end_frac: f64,
}

/// Report duplication (LLRP redelivery / retransmission).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Duplication {
    /// Per-report probability of being duplicated.
    pub p_duplicate: f64,
    /// Number of extra copies when a report is duplicated (≥ 1).
    pub max_copies: usize,
}

/// Bounded reordering: reports are delivered out of order, but no
/// report arrives more than `max_shift_s` of *timestamp* ahead of an
/// earlier one. Timestamps themselves are untouched — only the delivery
/// order changes, which is how network-induced reordering looks on the
/// wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reordering {
    /// Per-report probability of being displaced from its slot.
    pub p_displace: f64,
    /// Maximum forward displacement of a report's delivery slot, in
    /// seconds of stream time.
    pub max_shift_s: f64,
}

/// Reader clock imperfections applied to timestamps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockFaults {
    /// Gaussian timestamp jitter, standard deviation in seconds.
    /// Large jitter can locally invert timestamp order — the hardened
    /// preprocess sorts, so this is an intended pathology.
    pub jitter_std_s: f64,
    /// Linear clock drift in parts-per-million of elapsed stream time.
    pub drift_ppm: f64,
}

/// Per-channel phase offset steps.
///
/// Reader LO paths are not phase-matched across FCC channels; each hop
/// steps the reported phase by a channel-specific constant. Offsets are
/// drawn once per channel index from the injector seed (uniform in
/// `[-max_offset_rad, max_offset_rad]`), so a channel always gets the
/// same offset within a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelPhaseFaults {
    /// Largest per-channel offset magnitude, radians.
    pub max_offset_rad: f64,
}

/// A composable description of which faults to inject.
///
/// Every field is independently optional; the default value is the
/// identity plan (inject nothing).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Burst dropouts (Gilbert–Elliott), if any.
    pub dropouts: Option<GilbertElliott>,
    /// Antenna-port failure windows, if any.
    pub outages: Vec<PortOutage>,
    /// Report duplication, if any.
    pub duplication: Option<Duplication>,
    /// Bounded delivery reordering, if any.
    pub reordering: Option<Reordering>,
    /// Timestamp jitter/drift, if any.
    pub clock: Option<ClockFaults>,
    /// Per-channel phase offset steps, if any.
    pub channel_phase: Option<ChannelPhaseFaults>,
}

impl FaultPlan {
    /// The plan that injects nothing. [`FaultInjector::inject`] with
    /// this plan returns an exact copy of its input and never
    /// constructs a PRNG.
    pub fn identity() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when this plan is guaranteed to be a no-op.
    pub fn is_identity(&self) -> bool {
        self.dropouts.is_none()
            && self.outages.is_empty()
            && self.duplication.is_none()
            && self.reordering.is_none()
            && self.clock.is_none()
            && self.channel_phase.is_none()
    }

    /// A benign lab bench: clean power, short cables, idle spectrum.
    /// Identical to [`FaultPlan::identity`] — named so scenario code
    /// reads as a scenario, and pinned to stay a provable no-op.
    pub fn clean_lab() -> FaultPlan {
        FaultPlan::identity()
    }

    /// A realistic office deployment: light burst loss from people and
    /// Wi-Fi, occasional LLRP redelivery and reordering, mild clock
    /// jitter, per-channel phase steps. No port outages — cabling is
    /// fine, the RF environment is merely busy.
    pub fn flaky_office() -> FaultPlan {
        FaultPlan {
            dropouts: Some(GilbertElliott {
                p_enter: 0.04,
                p_exit: 0.30,
                p_drop_bad: 0.80,
                p_drop_good: 0.01,
            }),
            outages: Vec::new(),
            duplication: Some(Duplication { p_duplicate: 0.03, max_copies: 1 }),
            reordering: Some(Reordering { p_displace: 0.08, max_shift_s: 0.02 }),
            clock: Some(ClockFaults { jitter_std_s: 0.0005, drift_ppm: 50.0 }),
            channel_phase: Some(ChannelPhaseFaults { max_offset_rad: 0.15 }),
        }
    }

    /// A hostile session: heavy correlated loss, a mid-stream
    /// single-port outage (the degraded-mode trigger), aggressive
    /// duplication/reordering, and strong clock + channel-phase faults.
    /// Equivalent to [`FaultPlan::at_intensity`]`(1.0)` and pinned to
    /// stay so — the session tests' worst case is the sweep's worst
    /// case.
    pub fn hostile() -> FaultPlan {
        FaultPlan::at_intensity(1.0)
    }

    /// A composite plan with every fault model scaled by one intensity
    /// knob `x ∈ [0, 1]` — the axis the `faults` experiment sweeps.
    ///
    /// `x <= 0` returns [`FaultPlan::identity`] exactly (not a plan of
    /// zero-probability models), so intensity 0 in a sweep is provably
    /// the clean run. At `x = 1`: heavy burst loss, a 0.45–0.65
    /// single-port outage, 10 % duplication, 25 % reordering within
    /// 40 ms, 2 ms clock jitter with 200 ppm drift, and per-channel
    /// phase steps up to 0.3 rad.
    pub fn at_intensity(x: f64) -> FaultPlan {
        if x <= 0.0 {
            return FaultPlan::identity();
        }
        let x = x.min(1.0);
        FaultPlan {
            dropouts: Some(GilbertElliott {
                p_enter: 0.02 + 0.08 * x,
                p_exit: 0.20,
                p_drop_bad: 0.95,
                p_drop_good: 0.02 * x,
            }),
            outages: if x >= 0.5 {
                vec![PortOutage { antenna: 1, start_frac: 0.45, end_frac: 0.45 + 0.2 * x }]
            } else {
                Vec::new()
            },
            duplication: Some(Duplication { p_duplicate: 0.10 * x, max_copies: 2 }),
            reordering: Some(Reordering { p_displace: 0.25 * x, max_shift_s: 0.04 }),
            clock: Some(ClockFaults { jitter_std_s: 0.002 * x, drift_ppm: 200.0 * x }),
            channel_phase: Some(ChannelPhaseFaults { max_offset_rad: 0.3 * x }),
        }
    }
}

/// What the injector did to one stream — returned alongside the faulty
/// stream by [`FaultInjector::inject_with_log`] so sweeps can report
/// realized (not just configured) fault rates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultLog {
    /// Reports in the input stream.
    pub input_reports: usize,
    /// Reports in the output stream.
    pub output_reports: usize,
    /// Reports dropped by the Gilbert–Elliott burst model.
    pub dropped_burst: usize,
    /// Reports dropped by antenna-port outage windows.
    pub dropped_outage: usize,
    /// Extra copies inserted by duplication.
    pub duplicated: usize,
    /// Reports displaced from their delivery slot by reordering.
    pub displaced: usize,
    /// Reports whose phase was stepped by a channel offset.
    pub phase_stepped: usize,
}

/// Applies a [`FaultPlan`] to report streams, deterministically in a
/// seed. Stage PRNGs are derived per fault model, so two plans that
/// share a model make identical draws for it regardless of which other
/// models are enabled.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// The plan to apply.
    pub plan: FaultPlan,
    /// Root seed; stage streams are derived from it by label.
    pub seed: u64,
}

impl FaultInjector {
    /// Build an injector for `plan` rooted at `seed`.
    pub fn new(plan: FaultPlan, seed: u64) -> FaultInjector {
        FaultInjector { plan, seed }
    }

    /// Apply the plan to `reports`, returning the degraded stream.
    pub fn inject(&self, reports: &[TagReport]) -> Vec<TagReport> {
        self.inject_with_log(reports).0
    }

    /// Apply the plan and also report what was done.
    pub fn inject_with_log(&self, reports: &[TagReport]) -> (Vec<TagReport>, FaultLog) {
        let mut log = FaultLog { input_reports: reports.len(), ..FaultLog::default() };
        if self.plan.is_identity() {
            log.output_reports = reports.len();
            return (reports.to_vec(), log);
        }

        let mut out: Vec<TagReport> = reports.to_vec();
        let (first_t, last_t) = match (reports.first(), reports.last()) {
            (Some(f), Some(l)) => (f.t, l.t),
            _ => return (out, log),
        };
        let span = (last_t - first_t).max(0.0);

        if let Some(ge) = &self.plan.dropouts {
            let mut rng = self.stage_rng("dropout");
            let mut bad = false;
            let before = out.len();
            out.retain(|_| {
                if bad {
                    if rng.gen_bool(ge.p_exit) {
                        bad = false;
                    }
                } else if rng.gen_bool(ge.p_enter) {
                    bad = true;
                }
                let p_drop = if bad { ge.p_drop_bad } else { ge.p_drop_good };
                !rng.gen_bool(p_drop)
            });
            log.dropped_burst = before - out.len();
        }

        if !self.plan.outages.is_empty() {
            let before = out.len();
            out.retain(|r| {
                !self.plan.outages.iter().any(|o| {
                    let lo = first_t + span * o.start_frac.min(o.end_frac);
                    let hi = first_t + span * o.start_frac.max(o.end_frac);
                    r.antenna == o.antenna && r.t >= lo && r.t <= hi
                })
            });
            log.dropped_outage = before - out.len();
        }

        if let Some(clock) = &self.plan.clock {
            let mut rng = self.stage_rng("clock");
            let scale = 1.0 + clock.drift_ppm * 1e-6;
            for r in &mut out {
                r.t = first_t + (r.t - first_t) * scale + rng.gaussian(clock.jitter_std_s);
            }
        }

        if let Some(ch) = &self.plan.channel_phase {
            for r in &mut out {
                let offset = self.channel_offset(r.channel, ch.max_offset_rad);
                if offset != 0.0 {
                    r.phase_rad = (r.phase_rad + offset).rem_euclid(std::f64::consts::TAU);
                    log.phase_stepped += 1;
                }
            }
        }

        if let Some(dup) = &self.plan.duplication {
            let mut rng = self.stage_rng("dup");
            let mut with_dupes = Vec::with_capacity(out.len());
            for r in out {
                with_dupes.push(r);
                if dup.p_duplicate > 0.0 && rng.gen_bool(dup.p_duplicate) {
                    let copies = 1 + rng.gen_index(dup.max_copies.max(1));
                    for _ in 0..copies {
                        with_dupes.push(r);
                        log.duplicated += 1;
                    }
                }
            }
            out = with_dupes;
        }

        if let Some(re) = &self.plan.reordering {
            let mut rng = self.stage_rng("reorder");
            // Displace delivery *keys*, not timestamps: a displaced
            // report's key moves forward by up to max_shift_s, then a
            // stable sort by key yields a bounded permutation.
            let mut keyed: Vec<(f64, TagReport)> = out
                .into_iter()
                .map(|r| {
                    if re.p_displace > 0.0 && rng.gen_bool(re.p_displace) {
                        log.displaced += 1;
                        (r.t + rng.gen_range(0.0..re.max_shift_s.max(f64::MIN_POSITIVE)), r)
                    } else {
                        (r.t, r)
                    }
                })
                .collect();
            keyed.sort_by(|a, b| a.0.total_cmp(&b.0));
            out = keyed.into_iter().map(|(_, r)| r).collect();
        }

        log.output_reports = out.len();
        (out, log)
    }

    fn stage_rng(&self, stage: &str) -> Rng64 {
        rng_from_seed(derive_seed(self.seed, &format!("faults.{stage}")))
    }

    /// The stable phase offset for one channel index: a single uniform
    /// draw from a per-channel derived stream, so the offset depends
    /// only on `(seed, channel)`.
    fn channel_offset(&self, channel: usize, max_offset_rad: f64) -> f64 {
        if max_offset_rad <= 0.0 {
            return 0.0;
        }
        let mut rng = rng_from_seed(rf_core::rng::derive_seed_indexed(
            self.seed,
            "faults.chphase",
            channel as u64,
        ));
        rng.gen_range(-max_offset_rad..max_offset_rad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: usize, antennas: usize) -> Vec<TagReport> {
        (0..n)
            .map(|i| TagReport {
                t: i as f64 * 0.01,
                antenna: i % antennas,
                rssi_dbm: -30.0 - (i % 7) as f64 * 0.5,
                phase_rad: (i as f64 * 0.37).rem_euclid(std::f64::consts::TAU),
                channel: i % 3,
                epc: 0xE280,
            })
            .collect()
    }

    #[test]
    fn identity_plan_is_a_provable_noop() {
        let reports = stream(400, 2);
        let plan = FaultPlan::identity();
        assert!(plan.is_identity());
        assert!(FaultPlan::default().is_identity());
        assert!(FaultPlan::at_intensity(0.0).is_identity());
        assert!(FaultPlan::at_intensity(-3.0).is_identity());
        let (out, log) = FaultInjector::new(plan, 1234).inject_with_log(&reports);
        assert_eq!(out, reports);
        assert_eq!(log.input_reports, 400);
        assert_eq!(log.output_reports, 400);
        assert_eq!(
            log,
            FaultLog { input_reports: 400, output_reports: 400, ..FaultLog::default() }
        );
        // The seed must be irrelevant for the identity plan.
        assert_eq!(FaultInjector::new(FaultPlan::identity(), 9999).inject(&reports), out);
    }

    #[test]
    fn presets_have_their_pinned_shapes() {
        assert!(FaultPlan::clean_lab().is_identity());
        assert_eq!(FaultPlan::hostile(), FaultPlan::at_intensity(1.0));
        let office = FaultPlan::flaky_office();
        assert!(!office.is_identity());
        assert!(office.outages.is_empty(), "the office has working cables");
        // Office is strictly gentler than hostile on the loss axis.
        let reports = stream(2000, 2);
        let lost = |plan: FaultPlan| {
            let (out, _) = FaultInjector::new(plan, 31).inject_with_log(&reports);
            reports.len() as i64 - out.len() as i64
        };
        assert!(lost(FaultPlan::flaky_office()) < lost(FaultPlan::hostile()));
    }

    #[test]
    fn injection_is_deterministic_in_the_seed() {
        let reports = stream(600, 2);
        let plan = FaultPlan::at_intensity(0.7);
        let a = FaultInjector::new(plan.clone(), 42).inject(&reports);
        let b = FaultInjector::new(plan.clone(), 42).inject(&reports);
        assert_eq!(a, b);
        let c = FaultInjector::new(plan, 43).inject(&reports);
        assert_ne!(a, c, "a different seed must realize different faults");
    }

    #[test]
    fn burst_dropouts_thin_the_stream_with_bursts() {
        let reports = stream(2000, 2);
        let plan = FaultPlan {
            dropouts: Some(GilbertElliott {
                p_enter: 0.05,
                p_exit: 0.2,
                p_drop_bad: 0.95,
                p_drop_good: 0.0,
            }),
            ..FaultPlan::identity()
        };
        let (out, log) = FaultInjector::new(plan, 7).inject_with_log(&reports);
        assert!(log.dropped_burst > 0, "bursts must drop something");
        assert_eq!(out.len(), 2000 - log.dropped_burst);
        // Burstiness: at least one run of ≥ 3 consecutive input indices
        // missing (i.i.d. loss at this rate would rarely do that, a
        // Gilbert–Elliott bad state routinely does).
        let kept: std::collections::HashSet<u64> =
            out.iter().map(|r| (r.t / 0.01).round() as u64).collect();
        let longest_gap = (0..2000u64)
            .scan(0u64, |run, i| {
                *run = if kept.contains(&i) { 0 } else { *run + 1 };
                Some(*run)
            })
            .max()
            .unwrap();
        assert!(longest_gap >= 3, "expected a burst of ≥ 3 consecutive losses, got {longest_gap}");
    }

    #[test]
    fn port_outage_silences_exactly_the_configured_window() {
        let reports = stream(1000, 2);
        let plan = FaultPlan {
            outages: vec![PortOutage { antenna: 1, start_frac: 0.4, end_frac: 0.6 }],
            ..FaultPlan::identity()
        };
        let (out, log) = FaultInjector::new(plan, 7).inject_with_log(&reports);
        let span = reports.last().unwrap().t;
        let (lo, hi) = (0.4 * span, 0.6 * span);
        assert!(log.dropped_outage > 0);
        assert!(out.iter().all(|r| r.antenna != 1 || r.t < lo || r.t > hi));
        // Port 0 must be untouched.
        let port0_in = reports.iter().filter(|r| r.antenna == 0).count();
        let port0_out = out.iter().filter(|r| r.antenna == 0).count();
        assert_eq!(port0_in, port0_out);
    }

    #[test]
    fn duplication_inserts_exact_adjacent_copies() {
        let reports = stream(500, 2);
        let plan = FaultPlan {
            duplication: Some(Duplication { p_duplicate: 0.2, max_copies: 2 }),
            ..FaultPlan::identity()
        };
        let (out, log) = FaultInjector::new(plan, 11).inject_with_log(&reports);
        assert!(log.duplicated > 0);
        assert_eq!(out.len(), 500 + log.duplicated);
        // Every inserted copy sits directly after a report it equals.
        let mut dupes = 0;
        for w in out.windows(2) {
            if w[0] == w[1] {
                dupes += 1;
            }
        }
        assert!(dupes >= log.duplicated.min(1));
    }

    #[test]
    fn reordering_is_bounded_and_preserves_content() {
        let reports = stream(800, 2);
        let max_shift_s = 0.04;
        let plan = FaultPlan {
            reordering: Some(Reordering { p_displace: 0.3, max_shift_s }),
            ..FaultPlan::identity()
        };
        let (out, log) = FaultInjector::new(plan, 5).inject_with_log(&reports);
        assert!(log.displaced > 0);
        assert_eq!(out.len(), reports.len());
        // Same multiset of reports (timestamps untouched).
        let mut a = reports.clone();
        let mut b = out.clone();
        a.sort_by(|x, y| x.t.total_cmp(&y.t));
        b.sort_by(|x, y| x.t.total_cmp(&y.t));
        assert_eq!(a, b);
        // Bounded: any inversion spans at most max_shift_s of stream time.
        let mut inversions = 0;
        for i in 0..out.len() {
            for j in (i + 1)..out.len() {
                if out[i].t > out[j].t {
                    inversions += 1;
                    assert!(
                        out[i].t - out[j].t <= max_shift_s + 1e-12,
                        "inversion of {} s exceeds the bound",
                        out[i].t - out[j].t
                    );
                }
            }
        }
        assert!(inversions > 0, "displacements must actually reorder something");
    }

    #[test]
    fn clock_faults_perturb_timestamps_boundedly() {
        let reports = stream(500, 2);
        let jitter = 0.002;
        let plan = FaultPlan {
            clock: Some(ClockFaults { jitter_std_s: jitter, drift_ppm: 500.0 }),
            ..FaultPlan::identity()
        };
        let out = FaultInjector::new(plan, 3).inject(&reports);
        assert_eq!(out.len(), reports.len());
        let span = reports.last().unwrap().t;
        for (orig, faulty) in reports.iter().zip(&out) {
            let drifted = orig.t * (1.0 + 500.0e-6);
            assert!(
                (faulty.t - drifted).abs() < 8.0 * jitter,
                "timestamp moved beyond drift + 8σ jitter"
            );
        }
        // Drift is visible at the far end of the stream.
        assert!((out.last().unwrap().t - span).abs() > 1e-6);
    }

    #[test]
    fn channel_phase_offsets_are_stable_per_channel() {
        let reports = stream(300, 2);
        let plan = FaultPlan {
            channel_phase: Some(ChannelPhaseFaults { max_offset_rad: 0.3 }),
            ..FaultPlan::identity()
        };
        let out = FaultInjector::new(plan, 21).inject(&reports);
        // Collect realized offset per channel; each channel must map to
        // exactly one offset value, and phases must stay in [0, 2π).
        let mut per_channel: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
        for (orig, faulty) in reports.iter().zip(&out) {
            assert!((0.0..std::f64::consts::TAU).contains(&faulty.phase_rad));
            let delta = (faulty.phase_rad - orig.phase_rad)
                .rem_euclid(std::f64::consts::TAU);
            let canonical = if delta > std::f64::consts::PI {
                delta - std::f64::consts::TAU
            } else {
                delta
            };
            assert!(canonical.abs() <= 0.3 + 1e-12);
            let entry = per_channel.entry(orig.channel).or_insert(canonical);
            assert!((*entry - canonical).abs() < 1e-12, "offset must be stable per channel");
        }
        assert_eq!(per_channel.len(), 3);
    }

    #[test]
    fn intensity_scales_realized_loss_monotonically() {
        let reports = stream(3000, 2);
        let survivors: Vec<usize> = [0.0f64, 0.25, 0.5, 0.75, 1.0]
            .iter()
            .map(|&x| {
                let plan = FaultPlan {
                    // Dropout axis only: the monotonicity claim is about
                    // loss intensity, not the composite plan.
                    dropouts: FaultPlan::at_intensity(x.max(1e-9)).dropouts,
                    ..FaultPlan::identity()
                };
                FaultInjector::new(plan, 99).inject(&reports).len()
            })
            .collect();
        for w in survivors.windows(2) {
            assert!(
                w[1] <= w[0] + 60,
                "survivor count should not materially increase with intensity: {survivors:?}"
            );
        }
        assert!(
            survivors[4] < survivors[0],
            "full intensity must lose reports: {survivors:?}"
        );
    }

    #[test]
    fn empty_stream_is_handled() {
        let plan = FaultPlan::at_intensity(1.0);
        let (out, log) = FaultInjector::new(plan, 1).inject_with_log(&[]);
        assert!(out.is_empty());
        assert_eq!(log.output_reports, 0);
    }
}
