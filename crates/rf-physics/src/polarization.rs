//! Polarization coupling between a linearly-polarized antenna and a
//! dipole tag.
//!
//! A linearly-polarized wave propagating along unit vector `k` carries an
//! electric field confined to the plane transverse to `k` (Figure 1 of
//! the paper). The voltage induced on a dipole of unit orientation `u` is
//! proportional to `ê · u`, where `ê` is the unit field polarization in
//! that transverse plane. When antenna and tag are coplanar and broadside
//! (the whiteboard geometry), this reduces to `cos β` with `β` the
//! polarization mismatch angle — the quantity PolarDraw's rotational
//! estimator inverts.

use rf_core::Vec3;

/// Field polarization of a linearly-polarized antenna as radiated toward
/// direction `k` (unit vector from antenna to observation point): the
/// antenna's polarization axis projected onto the transverse plane and
/// renormalized.
///
/// Returns `None` when `k` is (anti)parallel to the polarization axis —
/// the antenna radiates no co-polarized field in that direction.
pub fn transverse_field(pol_axis: Vec3, k: Vec3) -> Option<Vec3> {
    pol_axis.reject_from(k).normalized()
}

/// Complex-free coupling factor between a linearly-polarized antenna
/// (axis `pol_axis`, at `antenna_pos`) and a dipole tag (axis `dipole`,
/// at `tag_pos`): `ê · u`, in `[−1, 1]`.
///
/// The magnitude is the `cos β` of the paper; the sign flips when the
/// dipole crosses the polarization plane (irrelevant to power, which is
/// `cos² β` per link leg, but kept for field superposition).
///
/// The dot is taken against the *full 3-D unit dipole* rather than its
/// normalized transverse projection, so the dipole's own pattern null
/// (no response along its axis) is captured for free.
pub fn coupling(antenna_pos: Vec3, pol_axis: Vec3, tag_pos: Vec3, dipole: Vec3) -> f64 {
    let k = match (tag_pos - antenna_pos).normalized() {
        Some(k) => k,
        None => return 0.0, // co-located: undefined geometry, no coupling
    };
    let e = match transverse_field(pol_axis, k) {
        Some(e) => e,
        None => return 0.0,
    };
    let u = match dipole.normalized() {
        Some(u) => u,
        None => return 0.0,
    };
    e.dot(u)
}

/// Polarization mismatch angle β in `[0, π/2]` between antenna and tag,
/// as would be measured by the RSS drop: `β = arccos |ê · u⊥̂|`, where
/// `u⊥̂` is the *normalized* transverse dipole component.
///
/// This isolates pure polarization mismatch from the dipole pattern
/// roll-off; use [`coupling`] for link-budget work.
pub fn mismatch_angle(antenna_pos: Vec3, pol_axis: Vec3, tag_pos: Vec3, dipole: Vec3) -> f64 {
    let k = match (tag_pos - antenna_pos).normalized() {
        Some(k) => k,
        None => return std::f64::consts::FRAC_PI_2,
    };
    let e = match transverse_field(pol_axis, k) {
        Some(e) => e,
        None => return std::f64::consts::FRAC_PI_2,
    };
    let u_t = match dipole.reject_from(k).normalized() {
        Some(u) => u,
        None => return std::f64::consts::FRAC_PI_2,
    };
    e.dot(u_t).abs().clamp(0.0, 1.0).acos()
}

/// Rotate a field vector `e` by `angle` radians about the propagation
/// axis `k` (Rodrigues' formula restricted to the transverse plane).
///
/// Reflections off walls and furniture partially rotate polarization;
/// this is how the multipath module injects cross-polarized energy that
/// survives when the line-of-sight coupling nulls out at β = 90°.
pub fn rotate_about_axis(e: Vec3, k: Vec3, angle: f64) -> Vec3 {
    let (s, c) = angle.sin_cos();
    e * c + k.cross(e) * s + k * (k.dot(e) * (1.0 - c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_core::deg_to_rad;
    use std::f64::consts::FRAC_PI_2;

    /// Broadside geometry used throughout: antenna above the origin on
    /// the +Z axis looking down, tag at the origin in the X–Y plane.
    fn broadside() -> (Vec3, Vec3) {
        (Vec3::new(0.0, 0.0, 2.5), Vec3::ZERO)
    }

    #[test]
    fn aligned_coupling_is_unity() {
        let (ant, tag) = broadside();
        let c = coupling(ant, Vec3::X, tag, Vec3::X);
        assert!((c.abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_coupling_is_zero() {
        let (ant, tag) = broadside();
        let c = coupling(ant, Vec3::X, tag, Vec3::Y);
        assert!(c.abs() < 1e-12);
    }

    #[test]
    fn coupling_follows_cos_beta_in_broadside() {
        // Rotating the tag in the transverse plane must trace cos β —
        // the law behind Figure 3(b).
        let (ant, tag) = broadside();
        for deg in [0.0, 15.0, 30.0, 45.0, 60.0, 75.0, 89.0] {
            let b = deg_to_rad(deg);
            let dipole = Vec3::new(b.cos(), b.sin(), 0.0);
            let c = coupling(ant, Vec3::X, tag, dipole);
            assert!(
                (c - b.cos()).abs() < 1e-12,
                "β = {deg}°: coupling {c} vs cos β {}",
                b.cos()
            );
        }
    }

    #[test]
    fn mismatch_angle_matches_rotation_in_broadside() {
        let (ant, tag) = broadside();
        for deg in [0.0, 10.0, 45.0, 80.0, 90.0] {
            let b = deg_to_rad(deg);
            let dipole = Vec3::new(b.cos(), b.sin(), 0.0);
            let m = mismatch_angle(ant, Vec3::X, tag, dipole);
            assert!((m - b.min(FRAC_PI_2)).abs() < 1e-9, "deg {deg} → {m}");
        }
    }

    #[test]
    fn dipole_along_los_has_no_coupling() {
        // A dipole pointing straight at the antenna is in its own pattern
        // null: no transverse component.
        let (ant, tag) = broadside();
        let c = coupling(ant, Vec3::X, tag, Vec3::Z);
        assert!(c.abs() < 1e-12);
    }

    #[test]
    fn tilted_dipole_couples_through_projection() {
        // Dipole tilted 45° out of the transverse plane, transverse
        // component along X: coupling is cos 45°, not 1.
        let (ant, tag) = broadside();
        let dipole = Vec3::new(1.0, 0.0, 1.0);
        let c = coupling(ant, Vec3::X, tag, dipole);
        assert!((c - FRAC_PI_2.sin() * 0.0f64.cos() / 2f64.sqrt() * 2.0 / 2f64.sqrt()).abs() < 0.3);
        assert!((c - 1.0 / 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mismatch_angle_ignores_elevation_tilt() {
        // Same tilted dipole: *mismatch angle* normalizes the transverse
        // component, so β = 0 even though coupling < 1.
        let (ant, tag) = broadside();
        let dipole = Vec3::new(1.0, 0.0, 1.0);
        let m = mismatch_angle(ant, Vec3::X, tag, dipole);
        assert!(m < 1e-9);
    }

    #[test]
    fn polarization_axis_parallel_to_los_is_null() {
        let ant = Vec3::new(0.0, 0.0, 2.5);
        // Antenna "polarized" along Z but the tag is straight below: no
        // transverse field at all.
        assert_eq!(transverse_field(Vec3::Z, -Vec3::Z), None);
        let c = coupling(ant, Vec3::Z, Vec3::ZERO, Vec3::X);
        assert_eq!(c, 0.0);
    }

    #[test]
    fn rotate_about_axis_quarter_turn() {
        let e = Vec3::X;
        let r = rotate_about_axis(e, Vec3::Z, FRAC_PI_2);
        assert!((r.x).abs() < 1e-12 && (r.y - 1.0).abs() < 1e-12 && r.z.abs() < 1e-12);
    }

    #[test]
    fn rotation_preserves_norm_and_transversality() {
        let k = Vec3::new(0.0, 0.0, 1.0);
        let e = Vec3::new(0.6, 0.8, 0.0);
        let r = rotate_about_axis(e, k, 1.234);
        assert!((r.norm() - 1.0).abs() < 1e-12);
        assert!(r.dot(k).abs() < 1e-12);
    }

    #[test]
    fn off_broadside_geometry_still_bounded() {
        // Oblique geometry: coupling must stay in [−1, 1].
        let ant = Vec3::new(0.3, -0.2, 1.0);
        for i in 0..50 {
            let a = i as f64 * 0.13;
            let dipole = Vec3::new(a.cos(), a.sin(), 0.3).normalized().unwrap();
            let c = coupling(ant, Vec3::new(0.2, 0.98, 0.0), Vec3::new(0.5, 0.3, 0.0), dipole);
            assert!((-1.0..=1.0).contains(&c));
        }
    }
}
