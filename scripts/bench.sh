#!/usr/bin/env bash
# Measure decode throughput and refresh the committed baseline.
#
# Runs the `decode` bench suite at full methodology (200 ms warmup,
# 11 samples, median-of-N — see crates/bench/src/harness.rs), copies
# the resulting report to BENCH_decode.json at the repo root (the
# committed point of the perf trajectory; see DESIGN.md "Decoder
# performance"), and enforces the optimized-vs-reference speedup floor
# at the paper-fidelity workload (cell 2.5 mm, beam 2500, 100 steps).
#
# Usage: scripts/bench.sh [--min-speedup X]   (default 3.0)
set -euo pipefail
cd "$(dirname "$0")/.."

MIN_SPEEDUP=3.0
while [ $# -gt 0 ]; do
    case "$1" in
        --min-speedup) MIN_SPEEDUP="$2"; shift 2 ;;
        *) echo "unknown flag: $1" >&2; exit 2 ;;
    esac
done

echo "== bench: decode suite (full methodology; takes a few minutes) =="
cargo bench --offline -p polardraw-bench --bench decode

cp results/bench_decode.json BENCH_decode.json
echo "== bench: wrote BENCH_decode.json =="

cargo run --release --offline -p polardraw-bench --bin bench_check -- \
    BENCH_decode.json --min-speedup "$MIN_SPEEDUP"
