//! A compact LLRP-flavoured wire format for tag report streams.
//!
//! The paper's implementation collects readings over the Low Level
//! Reader Protocol (LLRP, §4). We implement the subset that matters for
//! replay and storage: an `RO_ACCESS_REPORT`-style message carrying a
//! sequence of fixed-layout `TagReportData` records. The framing follows
//! LLRP conventions (big-endian, version-tagged header, message length
//! covering the whole frame) without dragging in the full TLV zoo.
//!
//! Record layout (24 bytes, big-endian):
//!
//! | field      | type | units                        |
//! |------------|------|------------------------------|
//! | epc        | u64  | truncated EPC                |
//! | t_us       | u64  | microseconds since session 0 |
//! | antenna    | u16  | port index                   |
//! | rssi_cdbm  | i16  | centi-dBm                    |
//! | phase_cnt  | u16  | 2π/65536 steps               |
//! | channel    | u16  | FCC channel index            |

use crate::TagReport;

/// LLRP protocol version field (1, as in LLRP 1.0/1.1 headers).
pub const LLRP_VERSION: u8 = 1;
/// Message type used for report frames (RO_ACCESS_REPORT = 61).
pub const MSG_RO_ACCESS_REPORT: u16 = 61;
/// Header: version/type (2) + length (4) + message id (4).
pub const HEADER_LEN: usize = 10;
/// Bytes per tag report record.
pub const RECORD_LEN: usize = 24;
/// Largest frame we accept: 16 Ki records (~384 KiB) plus the header.
/// Several seconds of reports at the reader's maximum rate fit with an
/// order of magnitude to spare; the header's u32 length field can claim
/// up to 4 GiB, and a hostile or corrupted length must never be able to
/// size an allocation.
pub const MAX_FRAME_LEN: usize = HEADER_LEN + 16_384 * RECORD_LEN;

/// Errors from decoding a report frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Frame shorter than a header.
    Truncated,
    /// Header length field disagrees with the buffer.
    LengthMismatch {
        /// Length claimed by the header.
        claimed: usize,
        /// Actual buffer length.
        actual: usize,
    },
    /// Unsupported version or message type.
    BadHeader,
    /// Payload is not a whole number of records.
    RaggedPayload,
    /// Header claims a frame larger than [`MAX_FRAME_LEN`] — rejected
    /// before any allocation is sized from it.
    Oversized {
        /// Length claimed by the header.
        claimed: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "frame shorter than LLRP header"),
            DecodeError::LengthMismatch { claimed, actual } => {
                write!(f, "header claims {claimed} bytes, buffer has {actual}")
            }
            DecodeError::BadHeader => write!(f, "unsupported LLRP version or message type"),
            DecodeError::RaggedPayload => write!(f, "payload is not a whole number of records"),
            DecodeError::Oversized { claimed } => {
                write!(f, "header claims {claimed} bytes, limit is {MAX_FRAME_LEN}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encode a report stream as one RO_ACCESS_REPORT frame.
///
/// Callers framing live streams should stay under [`MAX_FRAME_LEN`]
/// (16 Ki records); [`decode_report`] rejects anything larger.
pub fn encode_report(reports: &[TagReport], message_id: u32) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + reports.len() * RECORD_LEN);
    // Version (3 bits) + message type (13 bits), as LLRP packs them.
    let ver_type: u16 = (u16::from(LLRP_VERSION) << 10) | MSG_RO_ACCESS_REPORT;
    buf.extend_from_slice(&ver_type.to_be_bytes());
    let total = (HEADER_LEN + reports.len() * RECORD_LEN) as u32;
    buf.extend_from_slice(&total.to_be_bytes());
    buf.extend_from_slice(&message_id.to_be_bytes());
    for r in reports {
        buf.extend_from_slice(&r.epc.to_be_bytes());
        let t_us = (r.t * 1e6).round().clamp(0.0, u64::MAX as f64) as u64;
        buf.extend_from_slice(&t_us.to_be_bytes());
        buf.extend_from_slice(&(r.antenna as u16).to_be_bytes());
        let rssi_cdbm = (r.rssi_dbm * 100.0).round().clamp(-32768.0, 32767.0) as i16;
        buf.extend_from_slice(&rssi_cdbm.to_be_bytes());
        let phase_cnt =
            ((r.phase_rad / std::f64::consts::TAU * 65536.0).round() as u32 % 65536) as u16;
        buf.extend_from_slice(&phase_cnt.to_be_bytes());
        buf.extend_from_slice(&(r.channel as u16).to_be_bytes());
    }
    buf
}

/// Decode an RO_ACCESS_REPORT frame back into reports (plus message id).
pub fn decode_report(buf: &[u8]) -> Result<(u32, Vec<TagReport>), DecodeError> {
    if buf.len() < HEADER_LEN {
        return Err(DecodeError::Truncated);
    }
    let ver_type = u16::from_be_bytes([buf[0], buf[1]]);
    let version = (ver_type >> 10) as u8;
    let msg_type = ver_type & 0x03FF;
    if version != LLRP_VERSION || msg_type != MSG_RO_ACCESS_REPORT {
        return Err(DecodeError::BadHeader);
    }
    let claimed = u32::from_be_bytes([buf[2], buf[3], buf[4], buf[5]]) as usize;
    if claimed > MAX_FRAME_LEN {
        return Err(DecodeError::Oversized { claimed });
    }
    if claimed != buf.len() {
        return Err(DecodeError::LengthMismatch { claimed, actual: buf.len() });
    }
    let message_id = u32::from_be_bytes([buf[6], buf[7], buf[8], buf[9]]);
    let payload = &buf[HEADER_LEN..];
    if payload.len() % RECORD_LEN != 0 {
        return Err(DecodeError::RaggedPayload);
    }
    let mut reports = Vec::with_capacity(payload.len() / RECORD_LEN);
    for rec in payload.chunks_exact(RECORD_LEN) {
        let epc = u64::from_be_bytes(rec[0..8].try_into().expect("8 bytes"));
        let t_us = u64::from_be_bytes(rec[8..16].try_into().expect("8 bytes"));
        let antenna = u16::from_be_bytes([rec[16], rec[17]]) as usize;
        let rssi_cdbm = i16::from_be_bytes([rec[18], rec[19]]);
        let phase_cnt = u16::from_be_bytes([rec[20], rec[21]]);
        let channel = u16::from_be_bytes([rec[22], rec[23]]) as usize;
        reports.push(TagReport {
            t: t_us as f64 / 1e6,
            antenna,
            rssi_dbm: f64::from(rssi_cdbm) / 100.0,
            phase_rad: f64::from(phase_cnt) / 65536.0 * std::f64::consts::TAU,
            channel,
            epc,
        });
    }
    Ok((message_id, reports))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_reports() -> Vec<TagReport> {
        vec![
            TagReport {
                t: 0.000001,
                antenna: 0,
                rssi_dbm: -40.5,
                phase_rad: 1.25,
                channel: 24,
                epc: 0xE280_1160_6000_0001,
            },
            TagReport {
                t: 1.5,
                antenna: 3,
                rssi_dbm: -63.0,
                phase_rad: 6.1,
                channel: 0,
                epc: 0xE280_1160_6000_0001,
            },
        ]
    }

    #[test]
    fn round_trip_preserves_reports_within_wire_precision() {
        let reports = sample_reports();
        let frame = encode_report(&reports, 42);
        let (id, decoded) = decode_report(&frame).unwrap();
        assert_eq!(id, 42);
        assert_eq!(decoded.len(), reports.len());
        for (a, b) in reports.iter().zip(&decoded) {
            assert_eq!(a.antenna, b.antenna);
            assert_eq!(a.channel, b.channel);
            assert_eq!(a.epc, b.epc);
            assert!((a.t - b.t).abs() < 1e-6);
            assert!((a.rssi_dbm - b.rssi_dbm).abs() < 0.005 + 1e-12);
            assert!((a.phase_rad - b.phase_rad).abs() < std::f64::consts::TAU / 65536.0);
        }
    }

    #[test]
    fn empty_report_round_trips() {
        let frame = encode_report(&[], 7);
        assert_eq!(frame.len(), HEADER_LEN);
        let (id, decoded) = decode_report(&frame).unwrap();
        assert_eq!(id, 7);
        assert!(decoded.is_empty());
    }

    #[test]
    fn truncated_frame_is_rejected() {
        assert_eq!(decode_report(&[0; 5]), Err(DecodeError::Truncated));
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let mut frame = encode_report(&sample_reports(), 1);
        frame.push(0);
        assert!(matches!(
            decode_report(&frame),
            Err(DecodeError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn ragged_payload_is_rejected() {
        let mut frame = encode_report(&sample_reports(), 1);
        // Chop one byte off a record and fix up the header length.
        frame.truncate(frame.len() - 1);
        let total = frame.len() as u32;
        frame[2..6].copy_from_slice(&total.to_be_bytes());
        assert_eq!(decode_report(&frame), Err(DecodeError::RaggedPayload));
    }

    #[test]
    fn wrong_message_type_is_rejected() {
        let mut frame = encode_report(&[], 1);
        let ver_type: u16 = (u16::from(LLRP_VERSION) << 10) | 30;
        frame[0..2].copy_from_slice(&ver_type.to_be_bytes());
        assert_eq!(decode_report(&frame), Err(DecodeError::BadHeader));
    }

    #[test]
    fn error_messages_render() {
        let e = DecodeError::LengthMismatch { claimed: 10, actual: 11 };
        assert!(e.to_string().contains("10"));
        let e = DecodeError::Oversized { claimed: 1 << 30 };
        assert!(e.to_string().contains("limit"));
    }

    #[test]
    fn oversized_length_claim_is_rejected_before_any_allocation() {
        // A tiny buffer whose header claims 4 GiB: must fail Oversized,
        // not LengthMismatch, and certainly not size anything from it.
        let mut frame = encode_report(&[], 1);
        frame[2..6].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(
            decode_report(&frame),
            Err(DecodeError::Oversized { claimed: u32::MAX as usize })
        );
        // Largest accepted claim is exactly MAX_FRAME_LEN.
        let mut frame = encode_report(&[], 1);
        frame[2..6].copy_from_slice(&((MAX_FRAME_LEN + 1) as u32).to_be_bytes());
        assert_eq!(
            decode_report(&frame),
            Err(DecodeError::Oversized { claimed: MAX_FRAME_LEN + 1 })
        );
    }

    /// Property sweep: mutate valid frames every way the wire can —
    /// bit flips, truncation, garbage extension, length-field and
    /// header patches, random noise — and require that decode either
    /// returns a clean `Ok` or a `DecodeError`. No panics (the sweep
    /// would abort), and no allocation sized beyond what the actual
    /// buffer can hold.
    #[test]
    fn decode_survives_mutated_frames() {
        use rf_core::rng::{derive_seed_indexed, rng_from_seed};

        let base_reports: Vec<TagReport> = (0..40)
            .map(|i| TagReport {
                t: i as f64 * 0.013,
                antenna: i % 2,
                rssi_dbm: -45.0 + (i % 9) as f64,
                phase_rad: (i as f64 * 0.41).rem_euclid(std::f64::consts::TAU),
                channel: i % 16,
                epc: 0xE280_0000 + i as u64,
            })
            .collect();
        let valid = encode_report(&base_reports, 99);

        for case in 0..2000u64 {
            let mut rng = rng_from_seed(derive_seed_indexed(0x11F0, "llrp.mutate", case));
            let mut frame = valid.clone();
            match rng.gen_index(6) {
                // Flip 1–8 random bytes anywhere (header or payload).
                0 => {
                    for _ in 0..(1 + rng.gen_index(8)) {
                        let i = rng.gen_index(frame.len());
                        frame[i] ^= 1 << rng.gen_index(8);
                    }
                }
                // Truncate to a random prefix.
                1 => frame.truncate(rng.gen_index(frame.len() + 1)),
                // Append 1–64 garbage bytes.
                2 => {
                    for _ in 0..(1 + rng.gen_index(64)) {
                        frame.push((rng.next_u64() & 0xFF) as u8);
                    }
                }
                // Patch the length field with an arbitrary u32.
                3 => {
                    let claim = (rng.next_u64() & 0xFFFF_FFFF) as u32;
                    frame[2..6].copy_from_slice(&claim.to_be_bytes());
                }
                // Patch the version/type word.
                4 => {
                    let vt = (rng.next_u64() & 0xFFFF) as u16;
                    frame[0..2].copy_from_slice(&vt.to_be_bytes());
                }
                // Pure noise of random length (0–2·frame).
                5 => {
                    let n = rng.gen_index(2 * valid.len() + 1);
                    frame = (0..n).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
                }
                _ => unreachable!(),
            }
            match decode_report(&frame) {
                Ok((_, reports)) => {
                    // Any accepted frame's record count must be backed
                    // by actual buffer bytes — nothing header-sized.
                    assert!(reports.len() <= frame.len() / RECORD_LEN);
                }
                Err(e) => {
                    // Errors must render without panicking too.
                    let _ = e.to_string();
                }
            }
        }
    }
}
